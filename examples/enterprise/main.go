// Enterprise: the paper's closing prescription (Sections 1 and 8) —
// "to secure an enterprise network, one must install rate limiting
// filters at the edge routers as well as some portion of the internal
// hosts". This example builds an explicit enterprise topology (backbone
// mesh, edge routers, subnets) and releases a local-preferential worm
// (Blaster-style) under four defense postures:
//
//  1. no defense,
//  2. edge-router rate limiting only,
//  3. host throttles on 40% of desktops only,
//  4. edge-router limiting AND host throttles combined.
//
// The edge-only posture barely helps because the worm spreads
// subnet-locally; the combination is what contains it.
//
// Run with: go run ./examples/enterprise
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/worm"
)

func main() {
	g, roles, subnet, err := topology.Hierarchical(topology.HierarchicalConfig{
		Backbones:      3,
		EdgesPer:       4,
		HostsPerSubnet: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	localPref, err := worm.NewLocalPreferentialFactory(0.85)
	if err != nil {
		log.Fatal(err)
	}
	base := sim.Config{
		Graph:           g,
		Roles:           roles,
		Subnet:          subnet,
		Beta:            0.8,
		ScansPerTick:    10,
		Strategy:        localPref,
		InitialInfected: 1,
		Ticks:           400,
		Seed:            7,
		MaxQueue:        50,
	}
	uplinks := sim.DeployEdgeUplinks(g, roles, subnet)
	hosts, err := sim.DeployHostFraction(g, roles, 0.4, 7)
	if err != nil {
		log.Fatal(err)
	}
	throttle := make(map[int]float64, len(hosts))
	for _, h := range hosts {
		throttle[h] = 0.01 // Williamson-style: ~1 new contact per 100 ticks
	}

	postures := []struct {
		name string
		mod  func(*sim.Config)
	}{
		{"no defense", func(c *sim.Config) {}},
		{"edge routers only", func(c *sim.Config) {
			c.LimitedLinks = uplinks
			c.BaseRate = 0.2
		}},
		{"40% host throttles only", func(c *sim.Config) {
			c.ScanRateOverride = throttle
		}},
		{"edge routers + 40% host throttles", func(c *sim.Config) {
			c.LimitedLinks = uplinks
			c.BaseRate = 0.2
			c.ScanRateOverride = throttle
		}},
	}

	fmt.Println("Local-preferential worm in a 12-subnet enterprise (480 hosts)")
	fmt.Printf("%-36s %10s %10s %8s\n", "posture", "t(25%)", "t(50%)", "final")
	var t50 []float64
	for _, p := range postures {
		cfg := base
		p.mod(&cfg)
		// Replicas for each posture run concurrently on the bounded pool;
		// the averaged curves are identical for any job count.
		res, err := sim.MultiRunContext(context.Background(), cfg, 10, runner.WithJobs(4))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-36s %10.0f %10.0f %7.0f%%\n",
			p.name, res.TimeToLevel(0.25), res.TimeToLevel(0.5), res.FinalInfected()*100)
		t50 = append(t50, res.TimeToLevel(0.5))
	}
	fmt.Println()
	fmt.Printf("edge-only slowdown:      %.1fx\n", t50[1]/t50[0])
	fmt.Printf("hosts-only slowdown:     %.1fx\n", t50[2]/t50[0])
	fmt.Printf("combined slowdown:       %.1fx\n", t50[3]/t50[0])
	fmt.Println("\nThe paper's conclusion: neither layer suffices alone — deploy both.")
}
