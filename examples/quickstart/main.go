// Quickstart: simulate a random-propagation worm on a 1000-node
// power-law (AS-like) topology, with and without backbone rate
// limiting, and compare against the paper's analytical prediction.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/plot"
	"repro/internal/runner"
)

func main() {
	// A Code-Red-style worm: every tick each infected host makes 10
	// scan attempts, each hitting a uniformly random address with
	// probability β = 0.8.
	wormSpec := core.RandomWorm(0.8)
	wormSpec.ScansPerTick = 10

	open := core.Scenario{
		Topology:        core.PowerLaw(1000),
		Worm:            wormSpec,
		Ticks:           150,
		InitialInfected: 5,
	}
	defended := open
	defended.Defense = core.BackboneRateLimit(0.4)

	// Replicas run concurrently on a bounded worker pool; the averaged
	// series is identical for any job count. WithTimeout caps the whole
	// batch, and WithProgress reports throughput as replicas finish.
	ctx := context.Background()
	openRes, err := open.SimulateContext(ctx, 10,
		core.WithTimeout(2*time.Minute),
		core.WithProgress(func(s runner.Stats) {
			fmt.Fprintf(os.Stderr, "open: %d/%d runs (%.0f ticks/sec)\n",
				s.Completed, s.Runs, s.TicksPerSec())
		}))
	if err != nil {
		log.Fatal(err)
	}
	defRes, err := defended.SimulateContext(ctx, 10, core.WithJobs(4))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Dynamic Quarantine of Internet Worms — quickstart")
	fmt.Printf("no rate limiting:      50%% infected at tick %.0f\n", openRes.TimeToLevel(0.5))
	fmt.Printf("backbone rate limiting: 50%% infected at tick %.0f (%.1fx slower)\n",
		defRes.TimeToLevel(0.5), defRes.TimeToLevel(0.5)/openRes.TimeToLevel(0.5))

	// The matching analytical model (Equation 6). Its α is the path
	// coverage measured on this scenario's actual topology; the worm
	// still spreads through the rate-limited core at δ = min(Iβα,
	// rN/2³²), so compare predicted time-to-half, not the naive
	// all-or-nothing 1/(1-α).
	m, err := defended.Model()
	if err != nil {
		log.Fatal(err)
	}
	bb := m.(model.BackboneRL)
	fmt.Printf("analytical t50 for measured α=%.2f coverage: tick %.0f\n",
		bb.Alpha, bb.TimeToLevel(0.5))
	fmt.Println("(the model near-blocks covered paths; the simulator only throttles them,")
	fmt.Println(" so the simulated slowdown is the conservative number)")

	fig := plot.Figure{
		Title:  "Worm propagation with and without backbone rate limiting",
		XLabel: "time (ticks)",
		YLabel: "fraction infected",
		Series: []plot.Series{
			series("no rate limiting", openRes.Infected),
			series("backbone rate limiting", defRes.Infected),
		},
	}
	out, err := fig.RenderASCII(72, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}

func series(label string, ys []float64) plot.Series {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return plot.Series{Label: label, X: xs, Y: ys}
}
