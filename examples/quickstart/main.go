// Quickstart: simulate a random-propagation worm on a 1000-node
// power-law (AS-like) topology, with and without backbone rate
// limiting, and compare against the paper's analytical prediction.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/plot"
)

func main() {
	// A Code-Red-style worm: every tick each infected host makes 10
	// scan attempts, each hitting a uniformly random address with
	// probability β = 0.8.
	wormSpec := core.RandomWorm(0.8)
	wormSpec.ScansPerTick = 10

	open := core.Scenario{
		Topology:        core.PowerLaw(1000),
		Worm:            wormSpec,
		Ticks:           150,
		InitialInfected: 5,
	}
	defended := open
	defended.Defense = core.BackboneRateLimit(0.4)

	openRes, err := open.Simulate(10)
	if err != nil {
		log.Fatal(err)
	}
	defRes, err := defended.Simulate(10)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Dynamic Quarantine of Internet Worms — quickstart")
	fmt.Printf("no rate limiting:      50%% infected at tick %.0f\n", openRes.TimeToLevel(0.5))
	fmt.Printf("backbone rate limiting: 50%% infected at tick %.0f (%.1fx slower)\n",
		defRes.TimeToLevel(0.5), defRes.TimeToLevel(0.5)/openRes.TimeToLevel(0.5))

	// The matching analytical model (Equation 6 with λ = β(1-α)).
	m, err := defended.Model()
	if err != nil {
		log.Fatal(err)
	}
	bb := m.(model.BackboneRL)
	fmt.Printf("analytical slowdown for α=%.1f coverage: %.1fx\n",
		bb.Alpha, 1/(1-bb.Alpha))

	fig := plot.Figure{
		Title:  "Worm propagation with and without backbone rate limiting",
		XLabel: "time (ticks)",
		YLabel: "fraction infected",
		Series: []plot.Series{
			series("no rate limiting", openRes.Infected),
			series("backbone rate limiting", defRes.Infected),
		},
	}
	out, err := fig.RenderASCII(72, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(out)
}

func series(label string, ys []float64) plot.Series {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return plot.Series{Label: label, X: xs, Y: ys}
}
