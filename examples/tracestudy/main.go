// Tracestudy: the Section 7 pipeline end to end. Synthesizes a campus
// edge-router trace (999 normal clients, 17 servers, 33 P2P clients,
// 79 Blaster/Welchia-infected hosts), measures the contact-rate CDFs
// under the paper's three refinements, derives practical rate limits at
// the 99.9th percentile, detects and differentiates the two worms, and
// finally plugs the derived limits into the hub model to predict the
// slowdown (the paper's Figure 10).
//
// Run with: go run ./examples/tracestudy
package main

import (
	"fmt"
	"log"

	"repro/internal/model"
	"repro/internal/trace"
)

func main() {
	cfg := trace.DefaultGenConfig(time90min, 2003)
	tr, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthesized %d records over %d minutes for %d hosts\n\n",
		len(tr.Records), time90min/trace.Minute, cfg.NumHosts())

	// Contact-rate CDFs per class, 5-second windows.
	fmt.Println("aggregate contacts per 5 s (99.9th percentile):")
	fmt.Printf("%-10s %8s %10s %9s\n", "class", "all", "no-prior", "non-DNS")
	classes := []trace.Class{trace.ClassNormal, trace.ClassP2P, trace.ClassInfected}
	var normalNonDNS, normalAll int
	for _, cl := range classes {
		stats, err := trace.AnalyzeAggregate(tr, cfg.HostsOfClass(cl), 5*trace.Second)
		if err != nil {
			log.Fatal(err)
		}
		all, noPrior, nonDNS := stats.RecommendedLimits(0.999)
		fmt.Printf("%-10s %8d %10d %9d\n", cl, all, noPrior, nonDNS)
		if cl == trace.ClassNormal {
			normalAll, normalNonDNS = all, nonDNS
		}
	}

	ph, err := trace.AnalyzePerHost(tr, cfg.HostsOfClass(trace.ClassNormal), 5*trace.Second)
	if err != nil {
		log.Fatal(err)
	}
	hAll, _, hNonDNS := ph.RecommendedLimits(0.999)
	fmt.Printf("\nper-host (normal): all=%d non-DNS=%d per 5 s\n", hAll, hNonDNS)

	// Worm detection.
	reports := trace.Classify(tr)
	peak := map[trace.WormKind]int{}
	count := map[trace.WormKind]int{}
	for _, r := range reports {
		if r.Worm != trace.WormNone {
			count[r.Worm]++
			if r.PeakScanPerMinute > peak[r.Worm] {
				peak[r.Worm] = r.PeakScanPerMinute
			}
		}
	}
	fmt.Printf("\nworm detection: blaster on %d hosts (peak %d/min), welchia on %d hosts (peak %d/min)\n",
		count[trace.WormBlaster], peak[trace.WormBlaster],
		count[trace.WormWelchia], peak[trace.WormWelchia])

	// Figure 10: plug the measured ratio of per-host to aggregate rates
	// into the hub model. The DNS-based scheme yields a lower aggregate
	// rate than plain IP throttling.
	n := float64(cfg.NumHosts())
	gamma := 0.05
	ratioIP := float64(normalAll) / float64(hAll)                // ≈ the paper's 1:6-ish
	ratioDNS := float64(normalNonDNS) / float64(max(hNonDNS, 1)) // lower aggregate
	noRL := model.Homogeneous{Beta: 0.8, N: n, I0: 1}
	ipThrottle := model.HubRL{Beta: gamma * ratioIP, Gamma: gamma, N: n, I0: 1}
	dnsThrottle := model.HubRL{Beta: gamma * ratioDNS, Gamma: gamma, N: n, I0: 1}
	hostOnly := model.Homogeneous{Beta: gamma, N: n, I0: 1}

	fmt.Println("\npredicted time for a worm to infect half the enterprise:")
	fmt.Printf("  %-28s %10.0f ticks\n", "no rate limiting", noRL.TimeToLevel(0.5))
	fmt.Printf("  %-28s %10.0f ticks\n", "per-host limits only", hostOnly.TimeToLevel(0.5))
	fmt.Printf("  %-28s %10.0f ticks (γ:β = 1:%.1f)\n",
		"edge IP throttling", ipThrottle.TimeToLevel(0.5), ratioIP)
	fmt.Printf("  %-28s %10.0f ticks (γ:β = 1:%.1f)\n",
		"edge DNS-based throttling", dnsThrottle.TimeToLevel(0.5), ratioDNS)
	fmt.Println("\naggregated limiting at the edge beats per-host limits; DNS-based beats IP-based.")
}

const time90min = 90 * trace.Minute

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
