// Immunization: Section 6's question — how much does patching speed
// matter, and how much time does rate limiting buy the patchers?
// Sweeps the immunization start level with and without backbone rate
// limiting on the 1000-node power-law topology and reports the total
// ever-infected population, alongside the analytical predictions.
//
// Run with: go run ./examples/immunization
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/model"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/worm"
)

func main() {
	g, err := topology.BarabasiAlbert(1000, 1, rand.New(rand.NewSource(4)))
	if err != nil {
		log.Fatal(err)
	}
	roles, err := topology.AssignRoles(g, topology.PaperRoles)
	if err != nil {
		log.Fatal(err)
	}
	caps := make(map[int]int)
	for _, b := range sim.DeployBackbone(roles) {
		caps[b] = 40
	}
	base := sim.Config{
		Graph:           g,
		Roles:           roles,
		Beta:            0.8,
		Strategy:        worm.NewRandomFactory(),
		InitialInfected: 5,
		Ticks:           250,
		Seed:            11,
	}

	fmt.Println("Total ever-infected population vs immunization start (µ=0.05/tick)")
	fmt.Printf("%-22s %12s %16s %12s\n", "start level", "simulated", "sim + backboneRL", "analytical")
	ctx := context.Background()
	for _, level := range []float64{0.1, 0.2, 0.5, 0.8} {
		noRL := base
		noRL.Immunize = &sim.Immunization{StartTick: -1, StartLevel: level, Mu: 0.05}
		resNo, err := sim.MultiRunContext(ctx, noRL, 10, runner.WithJobs(4))
		if err != nil {
			log.Fatal(err)
		}
		withRL := noRL
		withRL.NodeCaps = caps
		resRL, err := sim.MultiRunContext(ctx, withRL, 10, runner.WithJobs(4))
		if err != nil {
			log.Fatal(err)
		}
		// The analytical counterpart (constant µ after the delay at
		// which the baseline reaches the level).
		m := model.DelayedImmunization{Beta: 0.8, Mu: 0.05, N: 1000, I0: 5}
		m.Delay = m.DelayForLevel(level)
		ever, err := m.EverInfected(300, 0.01)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %11.0f%% %15.0f%% %11.0f%%\n",
			fmt.Sprintf("%.0f%%", level*100),
			resNo.FinalEverInfected()*100, resRL.FinalEverInfected()*100, ever*100)
	}

	// The paper's extension remark: patching activity is really a bell
	// curve, not a constant. Compare the two at equal peak effort.
	constant := model.DelayedImmunization{Beta: 0.8, Mu: 0.05, Delay: 7, N: 1000, I0: 1}
	bell := model.VariableImmunization{
		Beta: 0.8, Peak: 0.05, TPeak: 15, Width: 8, Delay: 7, N: 1000, I0: 1,
	}
	ec, err := constant.EverInfected(300, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	eb, err := bell.EverInfected(300, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconstant µ=0.05 from tick 7:       %.0f%% ever infected\n", ec*100)
	fmt.Printf("bell-curve µ (peak 0.05 at t=15):  %.0f%% ever infected\n", eb*100)
	fmt.Println("a late-peaking bell curve lets the worm run further before patching bites.")
}
