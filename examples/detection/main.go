// Detection: Williamson's virus throttle doubles as a worm detector —
// legitimate traffic has enough destination locality that the throttle's
// delay queue stays empty, while a scanning worm's queue grows without
// bound. This example replays synthetic per-host traffic through real
// throttles (working set 5, one release per second, the HPL-2002-172
// defaults) and compares the queue-growth signal across host classes.
//
// Run with: go run ./examples/detection
package main

import (
	"fmt"
	"log"

	"repro/internal/ratelimit"
	"repro/internal/trace"
)

func main() {
	cfg := trace.GenConfig{
		Duration:        20 * trace.Minute,
		Seed:            17,
		NormalClients:   40,
		Servers:         2,
		P2PClients:      6,
		Infected:        8,
		BlasterFraction: 0.5,
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// One throttle per internal host; feed every outbound contact
	// through it and advance the drain clock each second.
	type hostState struct {
		throttle *ratelimit.WilliamsonThrottle
		peakQ    int
		blocked  int
		contacts int
	}
	hosts := make(map[int]*hostState)
	get := func(h int) *hostState {
		st, ok := hosts[h]
		if !ok {
			th, err := ratelimit.NewWilliamsonThrottle(5, trace.Second)
			if err != nil {
				log.Fatal(err)
			}
			st = &hostState{throttle: th}
			hosts[h] = st
		}
		return st
	}
	lastDrain := int64(0)
	for i := range tr.Records {
		r := &tr.Records[i]
		// Advance every throttle's drain clock once per elapsed second.
		for ; lastDrain <= r.Time; lastDrain += trace.Second {
			for _, st := range hosts {
				st.throttle.Tick(lastDrain)
				if q := st.throttle.QueueLen(); q > st.peakQ {
					st.peakQ = q
				}
			}
		}
		if !r.Outbound() {
			continue
		}
		st := get(trace.HostIndex(r.Src))
		st.contacts++
		if !st.throttle.Allow(r.Time, r.Dst) {
			st.blocked++
		}
		if q := st.throttle.QueueLen(); q > st.peakQ {
			st.peakQ = q
		}
	}

	// Aggregate the detection signal by true class.
	type classAgg struct {
		hosts, flagged int
		maxPeak        int
	}
	const detectionThreshold = 100 // queued contacts = Williamson's alarm
	agg := map[trace.Class]*classAgg{}
	for h, st := range hosts {
		cl := cfg.HostClass(h)
		a, ok := agg[cl]
		if !ok {
			a = &classAgg{}
			agg[cl] = a
		}
		a.hosts++
		if st.peakQ > a.maxPeak {
			a.maxPeak = st.peakQ
		}
		if st.peakQ >= detectionThreshold {
			a.flagged++
		}
	}

	fmt.Println("Williamson throttle as a worm detector (working set 5, 1 release/s)")
	fmt.Printf("%-10s %7s %14s %16s\n", "class", "hosts", "peak queue", "flagged (>100)")
	for _, cl := range []trace.Class{trace.ClassNormal, trace.ClassServer, trace.ClassP2P, trace.ClassInfected} {
		a := agg[cl]
		if a == nil {
			continue
		}
		fmt.Printf("%-10s %7d %14d %11d/%d\n", cl, a.hosts, a.maxPeak, a.flagged, a.hosts)
	}
	fmt.Println("\nworm queues explode; normal clients barely queue — the throttle both")
	fmt.Println("limits the contact rate AND raises the alarm the paper's defenses need.")
}
