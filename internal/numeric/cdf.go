package numeric

import (
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution function built from a
// sample. The zero value is unusable; construct with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// P returns the empirical P(X <= x), i.e. the fraction of samples that
// are <= x. NaN for an empty sample.
func (c *CDF) P(x float64) float64 {
	n := len(c.sorted)
	if n == 0 {
		return math.NaN()
	}
	// First index with value > x.
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(n)
}

// Quantile returns the smallest sample value v such that P(X <= v) >= q,
// i.e. the inverse CDF at q (the value to use as a rate limit so that a
// fraction q of observed windows are unaffected). NaN for an empty
// sample or q outside (0, 1].
func (c *CDF) Quantile(q float64) float64 {
	n := len(c.sorted)
	if n == 0 || q <= 0 || q > 1 {
		return math.NaN()
	}
	idx := int(math.Ceil(q*float64(n))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= n {
		idx = n - 1
	}
	return c.sorted[idx]
}

// Max returns the largest sample value (NaN for an empty sample).
func (c *CDF) Max() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[len(c.sorted)-1]
}

// Min returns the smallest sample value (NaN for an empty sample).
func (c *CDF) Min() float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	return c.sorted[0]
}

// Points returns up to max (x, P(X<=x)) pairs suitable for plotting the
// CDF as a step curve. Duplicate x values are collapsed to their final
// cumulative probability. If max <= 0 all distinct points are returned.
func (c *CDF) Points(max int) (xs, ps []float64) {
	n := len(c.sorted)
	if n == 0 {
		return nil, nil
	}
	for i := 0; i < n; i++ {
		if i+1 < n && c.sorted[i+1] == c.sorted[i] {
			continue
		}
		xs = append(xs, c.sorted[i])
		ps = append(ps, float64(i+1)/float64(n))
	}
	if max > 0 && len(xs) > max {
		step := float64(len(xs)-1) / float64(max-1)
		oxs := make([]float64, 0, max)
		ops := make([]float64, 0, max)
		for i := 0; i < max; i++ {
			j := int(math.Round(float64(i) * step))
			oxs = append(oxs, xs[j])
			ops = append(ops, ps[j])
		}
		return oxs, ops
	}
	return xs, ps
}
