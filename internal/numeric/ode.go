// Package numeric provides the small numerical-analysis substrate used by
// the analytical worm models and the experiment harness: fixed-step ODE
// integrators (including piecewise systems whose right-hand side switches
// at state- or time-dependent events), bisection root finding, logistic
// curve helpers, summary statistics, and empirical CDFs.
//
// The paper's analytical figures are solutions of small ODE systems
// (logistic epidemics with rate limiting and immunization terms). The
// closed forms printed in the paper are approximations; this package lets
// every model expose both its closed form and its exact ODE, and lets the
// tests cross-validate the two.
package numeric

import (
	"errors"
	"fmt"
	"math"
)

// RHS is the right-hand side of an autonomous-in-form ODE system
// dy/dt = f(t, y). Implementations must write the derivative of y into
// dst (len(dst) == len(y)) and must not retain either slice.
type RHS func(t float64, y, dst []float64)

// ErrBadStep reports an invalid integration configuration.
var ErrBadStep = errors.New("numeric: step size must be positive and finite")

// Solution is a dense fixed-step ODE solution: Times[i] is the time of
// sample i and States[i] the state vector at that time. States[0] is a
// copy of the initial condition.
type Solution struct {
	Times  []float64
	States [][]float64
}

// Component extracts component k of the state at every sample.
func (s *Solution) Component(k int) []float64 {
	out := make([]float64, len(s.States))
	for i, st := range s.States {
		out[i] = st[k]
	}
	return out
}

// At linearly interpolates the state at time t. Times outside the solved
// range clamp to the nearest endpoint.
func (s *Solution) At(t float64) []float64 {
	n := len(s.Times)
	if n == 0 {
		return nil
	}
	if t <= s.Times[0] {
		return append([]float64(nil), s.States[0]...)
	}
	if t >= s.Times[n-1] {
		return append([]float64(nil), s.States[n-1]...)
	}
	// Fixed-step grid: locate the bracketing interval directly.
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if s.Times[mid] <= t {
			lo = mid
		} else {
			hi = mid
		}
	}
	t0, t1 := s.Times[lo], s.Times[hi]
	w := (t - t0) / (t1 - t0)
	out := make([]float64, len(s.States[lo]))
	for k := range out {
		out[k] = (1-w)*s.States[lo][k] + w*s.States[hi][k]
	}
	return out
}

// RK4 integrates dy/dt = f from t0 to t1 with fixed step h using the
// classical fourth-order Runge–Kutta method, recording every step.
// The final step is shortened so the solution lands exactly on t1.
func RK4(f RHS, y0 []float64, t0, t1, h float64) (*Solution, error) {
	if !(h > 0) || math.IsInf(h, 0) || math.IsNaN(h) {
		return nil, ErrBadStep
	}
	if t1 < t0 {
		return nil, fmt.Errorf("numeric: t1 (%v) before t0 (%v)", t1, t0)
	}
	n := len(y0)
	y := append([]float64(nil), y0...)
	sol := &Solution{
		Times:  []float64{t0},
		States: [][]float64{append([]float64(nil), y...)},
	}
	k1 := make([]float64, n)
	k2 := make([]float64, n)
	k3 := make([]float64, n)
	k4 := make([]float64, n)
	tmp := make([]float64, n)

	t := t0
	for t < t1 {
		step := h
		if t+step > t1 {
			step = t1 - t
		}
		if step <= 0 {
			break
		}
		f(t, y, k1)
		for i := 0; i < n; i++ {
			tmp[i] = y[i] + step/2*k1[i]
		}
		f(t+step/2, tmp, k2)
		for i := 0; i < n; i++ {
			tmp[i] = y[i] + step/2*k2[i]
		}
		f(t+step/2, tmp, k3)
		for i := 0; i < n; i++ {
			tmp[i] = y[i] + step*k3[i]
		}
		f(t+step, tmp, k4)
		for i := 0; i < n; i++ {
			y[i] += step / 6 * (k1[i] + 2*k2[i] + 2*k3[i] + k4[i])
		}
		t += step
		sol.Times = append(sol.Times, t)
		sol.States = append(sol.States, append([]float64(nil), y...))
	}
	return sol, nil
}

// Euler integrates with the explicit Euler method. It exists mainly as a
// cross-check for RK4 in tests and for callers who want the exact
// per-tick discrete dynamics the simulator uses.
func Euler(f RHS, y0 []float64, t0, t1, h float64) (*Solution, error) {
	if !(h > 0) || math.IsInf(h, 0) || math.IsNaN(h) {
		return nil, ErrBadStep
	}
	if t1 < t0 {
		return nil, fmt.Errorf("numeric: t1 (%v) before t0 (%v)", t1, t0)
	}
	n := len(y0)
	y := append([]float64(nil), y0...)
	sol := &Solution{
		Times:  []float64{t0},
		States: [][]float64{append([]float64(nil), y...)},
	}
	d := make([]float64, n)
	t := t0
	for t < t1 {
		step := h
		if t+step > t1 {
			step = t1 - t
		}
		if step <= 0 {
			break
		}
		f(t, y, d)
		for i := 0; i < n; i++ {
			y[i] += step * d[i]
		}
		t += step
		sol.Times = append(sol.Times, t)
		sol.States = append(sol.States, append([]float64(nil), y...))
	}
	return sol, nil
}

// Piece is one regime of a piecewise ODE system: While reports whether the
// regime still applies at (t, y); F is the right-hand side used while it
// does. Pieces are evaluated in order and the first applicable one wins.
type Piece struct {
	While func(t float64, y []float64) bool
	F     RHS
}

// PiecewiseRHS builds a single RHS that dispatches to the first piece
// whose While predicate holds. If no piece applies the derivative is zero
// (the system freezes), which is the natural behaviour for epidemic
// models that have burned out.
func PiecewiseRHS(pieces []Piece) RHS {
	return func(t float64, y, dst []float64) {
		for _, p := range pieces {
			if p.While == nil || p.While(t, y) {
				p.F(t, y, dst)
				return
			}
		}
		for i := range dst {
			dst[i] = 0
		}
	}
}
