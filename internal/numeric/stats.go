package numeric

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN if len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Quantile returns the q-quantile (q in [0,1]) of xs using linear
// interpolation between order statistics (type-7, the numpy/R default).
// It does not modify xs. NaN for an empty slice or q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	w := pos - float64(lo)
	return (1-w)*s[lo] + w*s[hi]
}

// MeanSeries averages k same-length series element-wise. All series must
// have identical length; the result is nil if series is empty.
func MeanSeries(series [][]float64) []float64 {
	if len(series) == 0 {
		return nil
	}
	n := len(series[0])
	out := make([]float64, n)
	for _, s := range series {
		for i, v := range s {
			out[i] += v
		}
	}
	inv := 1 / float64(len(series))
	for i := range out {
		out[i] *= inv
	}
	return out
}

// Linspace returns n evenly spaced samples over [a, b], inclusive.
// n must be >= 2.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		return []float64{a}
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}

// Clamp restricts x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
