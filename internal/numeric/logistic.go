package numeric

import "math"

// Logistic evaluates the normalized logistic epidemic curve
//
//	i(t) = e^{λt} / (c + e^{λt})
//
// which solves di/dt = λ·i·(1−i). It is the solution form the paper
// derives for every pure rate-limited epidemic (Equations 1, 3, 4, 6),
// differing only in the effective exponent λ and the constant c fixed by
// the initial condition.
func Logistic(t, lambda, c float64) float64 {
	// Evaluate in a numerically safe form: for large λt, e^{λt} overflows,
	// but the value tends to 1/(1 + c·e^{−λt}).
	x := lambda * t
	if x > 500 {
		return 1
	}
	e := math.Exp(x)
	return e / (c + e)
}

// LogisticC returns the constant c such that Logistic(0, λ, c) = i0,
// i.e. c = (1 − i0)/i0. i0 must be in (0, 1).
func LogisticC(i0 float64) float64 {
	return (1 - i0) / i0
}

// LogisticTimeToLevel returns the time at which the logistic curve with
// exponent λ and constant c reaches fraction level ∈ (0, 1):
//
//	t = ln( c·level/(1−level) ) / λ
//
// For low initial infection (c ≈ N−1) and small target levels this
// reduces to the paper's t ≐ ln(α)/λ approximation (Equation 2).
func LogisticTimeToLevel(level, lambda, c float64) float64 {
	if level <= 0 || level >= 1 || lambda == 0 {
		return math.NaN()
	}
	return math.Log(c*level/(1-level)) / lambda
}

// SaturatingExp evaluates i(t) = 1 − c·e^{−βt/N}, the solution of the
// node-limited hub regime dI/dt = β(N−I)/N (Equation 5) normalized by N.
func SaturatingExp(t, beta, n, c float64) float64 {
	return 1 - c*math.Exp(-beta*t/n)
}
