package numeric

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"single", []float64{3}, 3},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-1, 1, -2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.in); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Mean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic set is 32/7.
	want := 32.0 / 7
	if got := Variance(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(want)) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, math.Sqrt(want))
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of singleton should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	if !math.IsNaN(Quantile(xs, 1.5)) {
		t.Error("Quantile(q>1) should be NaN")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	orig := append([]float64(nil), xs...)
	Quantile(xs, 0.9)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("input mutated at %d: %v vs %v", i, xs, orig)
		}
	}
}

func TestMeanSeries(t *testing.T) {
	got := MeanSeries([][]float64{{1, 2, 3}, {3, 4, 5}})
	want := []float64{2, 3, 4}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MeanSeries[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if MeanSeries(nil) != nil {
		t.Error("MeanSeries(nil) should be nil")
	}
}

func TestLinspace(t *testing.T) {
	got := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Linspace[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if got := Linspace(3, 9, 1); len(got) != 1 || got[0] != 3 {
		t.Errorf("Linspace n=1 = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

// Property: for any sample, quantile is monotone in q and bounded by
// min/max of the sample.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%50) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			if v < sorted[0]-1e-9 || v > sorted[m-1]+1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: mean lies between min and max.
func TestMeanBoundedProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%40) + 1
		xs := make([]float64, m)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = rng.Float64()*200 - 100
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		mean := Mean(xs)
		return mean >= lo-1e-9 && mean <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-10)
	if err != nil {
		t.Fatalf("Bisect: %v", err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-9 {
		t.Errorf("sqrt2 = %v, want %v", root, math.Sqrt2)
	}
	if _, err := Bisect(func(x float64) float64 { return 1 }, 0, 1, 1e-9); err == nil {
		t.Error("unbracketed root: want error")
	}
	// Endpoint roots.
	r, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-9)
	if err != nil || r != 0 {
		t.Errorf("endpoint root: got %v, %v", r, err)
	}
}

func TestFirstCrossing(t *testing.T) {
	times := []float64{0, 1, 2, 3}
	vals := []float64{0, 0.2, 0.6, 0.9}
	got := FirstCrossing(times, vals, 0.4)
	if math.Abs(got-1.5) > 1e-12 {
		t.Errorf("crossing = %v, want 1.5", got)
	}
	if !math.IsNaN(FirstCrossing(times, vals, 2)) {
		t.Error("unreached level should give NaN")
	}
	if got := FirstCrossing(times, vals, 0); got != 0 {
		t.Errorf("level at start: got %v, want 0", got)
	}
	if !math.IsNaN(FirstCrossing(nil, nil, 0.5)) {
		t.Error("empty series should give NaN")
	}
	// Flat segment at the level.
	got = FirstCrossing([]float64{0, 1, 2}, []float64{0, 0.5, 0.5}, 0.5)
	if got != 1 {
		t.Errorf("flat crossing = %v, want 1", got)
	}
}

func TestLogisticClosedForm(t *testing.T) {
	// At t=0, Logistic = 1/(c+1) = i0 by construction.
	i0 := 0.05
	c := LogisticC(i0)
	if got := Logistic(0, 0.8, c); math.Abs(got-i0) > 1e-12 {
		t.Errorf("Logistic(0) = %v, want %v", got, i0)
	}
	// Saturation.
	if got := Logistic(1e4, 0.8, c); math.Abs(got-1) > 1e-9 {
		t.Errorf("Logistic(inf) = %v, want 1", got)
	}
	// Overflow-safe branch.
	if got := Logistic(1e6, 1, c); got != 1 {
		t.Errorf("huge t: got %v, want 1", got)
	}
}

func TestLogisticTimeToLevel(t *testing.T) {
	const lambda = 0.8
	i0 := 1.0 / 200
	c := LogisticC(i0)
	for _, level := range []float64{0.1, 0.5, 0.9} {
		tt := LogisticTimeToLevel(level, lambda, c)
		if got := Logistic(tt, lambda, c); math.Abs(got-level) > 1e-9 {
			t.Errorf("roundtrip level %v: got %v", level, got)
		}
	}
	if !math.IsNaN(LogisticTimeToLevel(0, 1, 10)) || !math.IsNaN(LogisticTimeToLevel(1, 1, 10)) {
		t.Error("degenerate levels should give NaN")
	}
}

func TestSaturatingExp(t *testing.T) {
	// At t=0 with c=1: value 0. As t -> inf: value -> 1.
	if got := SaturatingExp(0, 0.5, 100, 1); got != 0 {
		t.Errorf("SaturatingExp(0) = %v, want 0", got)
	}
	if got := SaturatingExp(1e7, 0.5, 100, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("SaturatingExp(inf) = %v, want 1", got)
	}
}
