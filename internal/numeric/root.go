package numeric

import (
	"errors"
	"math"
)

// ErrNoBracket reports that a root-finding call was given an interval on
// which the function does not change sign.
var ErrNoBracket = errors.New("numeric: root is not bracketed")

// Bisect finds x in [a, b] with f(x) ≈ 0 by bisection. f(a) and f(b) must
// have opposite signs (or one endpoint must itself be a root). The result
// is accurate to tol in x.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	switch {
	case fa == 0:
		return a, nil
	case fb == 0:
		return b, nil
	case fa*fb > 0:
		return 0, ErrNoBracket
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for b-a > tol {
		mid := a + (b-a)/2
		if mid == a || mid == b {
			break // interval at floating-point resolution
		}
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if fa*fm < 0 {
			b, fb = mid, fm
		} else {
			a, fa = mid, fm
		}
	}
	_ = fb
	return a + (b-a)/2, nil
}

// FirstCrossing returns the first time t at which the monotone-enough
// series (times, values) crosses level, using linear interpolation
// between the bracketing samples. It returns NaN if the series never
// reaches level.
func FirstCrossing(times, values []float64, level float64) float64 {
	if len(times) == 0 || len(times) != len(values) {
		return math.NaN()
	}
	if values[0] >= level {
		return times[0]
	}
	for i := 1; i < len(values); i++ {
		if values[i] >= level {
			v0, v1 := values[i-1], values[i]
			if v1 == v0 {
				return times[i]
			}
			w := (level - v0) / (v1 - v0)
			return times[i-1] + w*(times[i]-times[i-1])
		}
	}
	return math.NaN()
}
