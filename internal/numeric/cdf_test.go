package numeric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3, 10})
	if c.Len() != 5 {
		t.Fatalf("Len = %d, want 5", c.Len())
	}
	tests := []struct {
		x, want float64
	}{
		{0, 0}, {1, 0.2}, {2, 0.6}, {2.5, 0.6}, {3, 0.8}, {10, 1}, {99, 1},
	}
	for _, tt := range tests {
		if got := c.P(tt.x); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("P(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if c.Min() != 1 || c.Max() != 10 {
		t.Errorf("Min/Max = %v/%v, want 1/10", c.Min(), c.Max())
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	tests := []struct {
		q, want float64
	}{
		{0.1, 1}, {0.5, 5}, {0.9, 9}, {0.999, 10}, {1, 10},
	}
	for _, tt := range tests {
		if got := c.Quantile(tt.q); got != tt.want {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(c.Quantile(0)) || !math.IsNaN(c.Quantile(1.1)) {
		t.Error("bad q should give NaN")
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if !math.IsNaN(c.P(1)) || !math.IsNaN(c.Quantile(0.5)) || !math.IsNaN(c.Max()) || !math.IsNaN(c.Min()) {
		t.Error("empty CDF should return NaN everywhere")
	}
	xs, ps := c.Points(10)
	if xs != nil || ps != nil {
		t.Error("empty CDF should have no points")
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{1, 1, 2, 3})
	xs, ps := c.Points(0)
	wantX := []float64{1, 2, 3}
	wantP := []float64{0.5, 0.75, 1}
	if len(xs) != len(wantX) {
		t.Fatalf("points = %v", xs)
	}
	for i := range wantX {
		if xs[i] != wantX[i] || math.Abs(ps[i]-wantP[i]) > 1e-12 {
			t.Errorf("point %d = (%v, %v), want (%v, %v)", i, xs[i], ps[i], wantX[i], wantP[i])
		}
	}
	// Downsampling keeps endpoints.
	big := make([]float64, 1000)
	for i := range big {
		big[i] = float64(i)
	}
	xs, ps = NewCDF(big).Points(10)
	if len(xs) != 10 || xs[0] != 0 || xs[9] != 999 || ps[9] != 1 {
		t.Errorf("downsampled points = %v %v", xs, ps)
	}
}

// Property: P is monotone non-decreasing and within [0, 1]; Quantile and
// P are approximate inverses.
func TestCDFProperties(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%60) + 1
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = math.Floor(rng.Float64() * 20)
		}
		c := NewCDF(xs)
		prev := -1.0
		for x := -1.0; x <= 21; x += 0.5 {
			p := c.P(x)
			if p < prev-1e-12 || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		for q := 0.05; q <= 1.0; q += 0.05 {
			v := c.Quantile(q)
			if c.P(v) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
