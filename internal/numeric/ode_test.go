package numeric

import (
	"math"
	"testing"
)

func TestRK4Exponential(t *testing.T) {
	// dy/dt = y, y(0)=1 -> y(t)=e^t.
	f := func(t float64, y, dst []float64) { dst[0] = y[0] }
	sol, err := RK4(f, []float64{1}, 0, 2, 0.01)
	if err != nil {
		t.Fatalf("RK4: %v", err)
	}
	got := sol.States[len(sol.States)-1][0]
	want := math.Exp(2)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("e^2: got %v want %v", got, want)
	}
}

func TestRK4Logistic(t *testing.T) {
	// di/dt = λ i (1 - i) matches Logistic closed form.
	const lambda = 0.8
	i0 := 0.01
	c := LogisticC(i0)
	f := func(t float64, y, dst []float64) { dst[0] = lambda * y[0] * (1 - y[0]) }
	sol, err := RK4(f, []float64{i0}, 0, 20, 0.05)
	if err != nil {
		t.Fatalf("RK4: %v", err)
	}
	for k, tt := range sol.Times {
		want := Logistic(tt, lambda, c)
		got := sol.States[k][0]
		if math.Abs(got-want) > 1e-5 {
			t.Fatalf("t=%v: got %v want %v", tt, got, want)
		}
	}
}

func TestRK4LandsExactlyOnT1(t *testing.T) {
	f := func(t float64, y, dst []float64) { dst[0] = 1 }
	sol, err := RK4(f, []float64{0}, 0, 1, 0.3) // 0.3 does not divide 1
	if err != nil {
		t.Fatalf("RK4: %v", err)
	}
	last := sol.Times[len(sol.Times)-1]
	if last != 1 {
		t.Errorf("final time = %v, want exactly 1", last)
	}
	y := sol.States[len(sol.States)-1][0]
	if math.Abs(y-1) > 1e-12 {
		t.Errorf("y(1) = %v, want 1", y)
	}
}

func TestRK4BadInputs(t *testing.T) {
	f := func(t float64, y, dst []float64) { dst[0] = 0 }
	if _, err := RK4(f, []float64{0}, 0, 1, 0); err == nil {
		t.Error("zero step: want error")
	}
	if _, err := RK4(f, []float64{0}, 0, 1, math.NaN()); err == nil {
		t.Error("NaN step: want error")
	}
	if _, err := RK4(f, []float64{0}, 1, 0, 0.1); err == nil {
		t.Error("t1 < t0: want error")
	}
}

func TestEulerMatchesRK4ForSmallStep(t *testing.T) {
	f := func(t float64, y, dst []float64) { dst[0] = -0.5 * y[0] }
	e, err := Euler(f, []float64{1}, 0, 5, 1e-4)
	if err != nil {
		t.Fatalf("Euler: %v", err)
	}
	r, err := RK4(f, []float64{1}, 0, 5, 0.01)
	if err != nil {
		t.Fatalf("RK4: %v", err)
	}
	ge := e.States[len(e.States)-1][0]
	gr := r.States[len(r.States)-1][0]
	if math.Abs(ge-gr) > 1e-3 {
		t.Errorf("Euler %v vs RK4 %v diverge", ge, gr)
	}
}

func TestSolutionAt(t *testing.T) {
	f := func(t float64, y, dst []float64) { dst[0] = 2 } // y = 2t
	sol, err := RK4(f, []float64{0}, 0, 10, 0.5)
	if err != nil {
		t.Fatalf("RK4: %v", err)
	}
	for _, tt := range []float64{0, 0.25, 3.7, 9.99, 10} {
		got := sol.At(tt)[0]
		if math.Abs(got-2*tt) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", tt, got, 2*tt)
		}
	}
	// Clamping beyond the range.
	if got := sol.At(-5)[0]; got != 0 {
		t.Errorf("At(-5) = %v, want 0", got)
	}
	if got := sol.At(50)[0]; math.Abs(got-20) > 1e-9 {
		t.Errorf("At(50) = %v, want 20", got)
	}
}

func TestSolutionComponent(t *testing.T) {
	f := func(t float64, y, dst []float64) { dst[0], dst[1] = 1, -1 }
	sol, err := RK4(f, []float64{0, 0}, 0, 1, 0.25)
	if err != nil {
		t.Fatalf("RK4: %v", err)
	}
	c0 := sol.Component(0)
	c1 := sol.Component(1)
	if len(c0) != len(sol.Times) || len(c1) != len(sol.Times) {
		t.Fatalf("component lengths %d/%d, want %d", len(c0), len(c1), len(sol.Times))
	}
	last := len(c0) - 1
	if math.Abs(c0[last]-1) > 1e-12 || math.Abs(c1[last]+1) > 1e-12 {
		t.Errorf("final components %v, %v; want 1, -1", c0[last], c1[last])
	}
}

func TestPiecewiseRHS(t *testing.T) {
	// Regime 1 while y < 5: dy/dt = 1. Regime 2 after: dy/dt = -1... but
	// first-match semantics mean once y >= 5 piece 2 applies.
	rhs := PiecewiseRHS([]Piece{
		{
			While: func(t float64, y []float64) bool { return y[0] < 5 },
			F:     func(t float64, y, dst []float64) { dst[0] = 1 },
		},
		{
			While: nil, // always
			F:     func(t float64, y, dst []float64) { dst[0] = 0 },
		},
	})
	sol, err := RK4(rhs, []float64{0}, 0, 20, 0.01)
	if err != nil {
		t.Fatalf("RK4: %v", err)
	}
	final := sol.States[len(sol.States)-1][0]
	if math.Abs(final-5) > 0.05 {
		t.Errorf("piecewise plateau = %v, want ~5", final)
	}
}

func TestPiecewiseRHSNoPieceFreezes(t *testing.T) {
	rhs := PiecewiseRHS([]Piece{{
		While: func(t float64, y []float64) bool { return false },
		F:     func(t float64, y, dst []float64) { dst[0] = 100 },
	}})
	dst := []float64{42}
	rhs(0, []float64{1}, dst)
	if dst[0] != 0 {
		t.Errorf("frozen derivative = %v, want 0", dst[0])
	}
}
