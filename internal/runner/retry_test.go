package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestRetryEventuallySucceeds(t *testing.T) {
	var calls [3]atomic.Int32
	p := New(WithJobs(2), WithRetry(3, time.Microsecond))
	stats, err := p.Run(context.Background(), 3, func(_ context.Context, i int) (Report, error) {
		// Task 1 fails its first two attempts, then succeeds.
		if i == 1 && calls[i].Add(1) <= 2 {
			return Report{}, errors.New("transient")
		}
		calls[i].Add(1)
		return Report{Ticks: 1}, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Completed != 3 || stats.Failed != 0 {
		t.Errorf("stats = %+v, want 3 completed", stats)
	}
	if stats.Retries != 2 {
		t.Errorf("retries = %d, want 2", stats.Retries)
	}
	if len(stats.Failures) != 0 {
		t.Errorf("failures = %v, want none", stats.Failures)
	}
}

func TestKeepGoingRecordsFailureAndFinishesBatch(t *testing.T) {
	const n = 8
	permanent := errors.New("permanently broken")
	p := New(WithJobs(3), WithRetry(2, 0), WithKeepGoing())
	var attempts atomic.Int32
	stats, err := p.Run(context.Background(), n, func(_ context.Context, i int) (Report, error) {
		if i == 4 {
			attempts.Add(1)
			return Report{}, permanent
		}
		return Report{Ticks: 1}, nil
	})
	if err != nil {
		t.Fatalf("keep-going Run returned error: %v", err)
	}
	if stats.Completed != n-1 || stats.Failed != 1 {
		t.Errorf("stats = %+v, want %d completed 1 failed", stats, n-1)
	}
	if got := attempts.Load(); got != 3 {
		t.Errorf("failing task attempted %d times, want 3 (1 + 2 retries)", got)
	}
	if len(stats.Failures) != 1 {
		t.Fatalf("failures = %v, want exactly one", stats.Failures)
	}
	f := stats.Failures[0]
	if f.Index != 4 || f.Attempts != 3 || !errors.Is(f.Err, permanent) {
		t.Errorf("failure = %+v, want index 4, 3 attempts, permanent error", f)
	}
}

func TestKeepGoingPanicIsolated(t *testing.T) {
	p := New(WithJobs(2), WithKeepGoing())
	stats, err := p.Run(context.Background(), 5, func(_ context.Context, i int) (Report, error) {
		if i == 2 {
			panic("injected")
		}
		return Report{}, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Completed != 4 || stats.Failed != 1 {
		t.Errorf("stats = %+v, want 4 completed 1 failed", stats)
	}
	var pe *PanicError
	if len(stats.Failures) != 1 || !errors.As(stats.Failures[0].Err, &pe) {
		t.Fatalf("failures = %v, want one PanicError", stats.Failures)
	}
	if pe.Index != 2 || len(pe.Stack) == 0 {
		t.Errorf("panic error = %+v, want index 2 with captured stack", pe)
	}
}

func TestTaskTimeoutAbandonsHungAttempt(t *testing.T) {
	p := New(WithJobs(2), WithTaskTimeout(20*time.Millisecond), WithKeepGoing())
	release := make(chan struct{})
	start := time.Now()
	stats, err := p.Run(context.Background(), 3, func(ctx context.Context, i int) (Report, error) {
		if i == 1 {
			// A stalled replica that ignores its deadline for a while.
			select {
			case <-release:
			case <-time.After(5 * time.Second):
			}
			return Report{}, nil
		}
		return Report{}, nil
	})
	close(release)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("hung task stalled the batch past its deadline")
	}
	if stats.Completed != 2 || stats.Failed != 1 {
		t.Errorf("stats = %+v, want 2 completed 1 failed", stats)
	}
	if len(stats.Failures) != 1 || !errors.Is(stats.Failures[0].Err, ErrTaskTimeout) {
		t.Errorf("failures = %v, want one ErrTaskTimeout", stats.Failures)
	}
}

func TestTaskTimeoutDoesNotFirePerBatch(t *testing.T) {
	// The per-task deadline is per attempt, not per batch: many tasks
	// each shorter than the deadline must all pass even though the batch
	// as a whole takes longer.
	p := New(WithJobs(1), WithTaskTimeout(50*time.Millisecond))
	stats, err := p.Run(context.Background(), 10, func(context.Context, int) (Report, error) {
		time.Sleep(10 * time.Millisecond)
		return Report{}, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Completed != 10 {
		t.Errorf("completed = %d, want 10", stats.Completed)
	}
}

func TestFailFastStillDefault(t *testing.T) {
	var started atomic.Int32
	p := New(WithJobs(1), WithRetry(1, 0))
	boom := errors.New("boom")
	_, err := p.Run(context.Background(), 100, func(_ context.Context, i int) (Report, error) {
		started.Add(1)
		if i == 0 {
			return Report{}, boom
		}
		return Report{}, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Index 0 attempted twice (one retry), then the batch aborted.
	if got := started.Load(); got > 3 {
		t.Errorf("%d task invocations after fail-fast abort, want <= 3", got)
	}
}

func TestBackoffCancelledMidSleep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := New(WithJobs(1), WithRetry(5, time.Hour), WithKeepGoing())
	done := make(chan struct{})
	var stats Stats
	go func() {
		defer close(done)
		stats, _ = p.Run(ctx, 1, func(context.Context, int) (Report, error) {
			return Report{}, errors.New("always fails")
		})
	}()
	time.Sleep(20 * time.Millisecond) // let it enter the hour-long backoff
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("backoff sleep ignored cancellation")
	}
	if stats.Failed != 1 {
		t.Errorf("stats = %+v, want the task recorded as failed", stats)
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	for _, idx := range []int{0, 1, 7} {
		a := splitmix64(uint64(idx)<<32 | 1)
		b := splitmix64(uint64(idx)<<32 | 1)
		if a != b {
			t.Fatalf("jitter hash not deterministic for index %d", idx)
		}
	}
	if splitmix64(1) == splitmix64(2) {
		t.Error("jitter hash collides on adjacent inputs")
	}
}

func TestProgressSnapshotFailuresPrivate(t *testing.T) {
	var seen []Failure
	p := New(WithJobs(1), WithKeepGoing(), WithProgress(func(s Stats) {
		if len(s.Failures) > 0 {
			seen = s.Failures
		}
	}))
	stats, err := p.Run(context.Background(), 3, func(_ context.Context, i int) (Report, error) {
		if i == 0 {
			return Report{}, fmt.Errorf("fail %d", i)
		}
		return Report{}, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seen) == 0 {
		t.Fatal("progress callback never saw the failure")
	}
	seen[0].Index = 999 // mutating the snapshot must not corrupt the final stats
	if stats.Failures[0].Index != 0 {
		t.Error("final stats share the progress snapshot's failure slice")
	}
}
