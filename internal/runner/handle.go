package runner

import (
	"context"
	"sync"
)

// Handle supervises a batch started asynchronously with Pool.Start: a
// live view of the batch's Stats while it runs, cancellation, and a
// Wait that returns the final Stats and error exactly as Pool.Run
// would have. The wormsimd daemon runs every job under a Handle, so a
// panicking job surfaces as a *PanicError on its handle instead of
// taking the process down, and a cancel request maps onto the batch's
// context without the caller having to thread its own.
type Handle struct {
	cancel context.CancelFunc
	done   chan struct{}

	mu    sync.Mutex
	last  Stats
	final bool
	err   error
}

// Start launches Run(ctx, runs, task) on its own goroutine and returns
// immediately with a Handle supervising it. The batch observes a
// context derived from ctx that Handle.Cancel also cancels. Progress
// snapshots feed the handle's live Stats (and still reach any
// WithProgress callback configured on the pool).
func (p *Pool) Start(ctx context.Context, runs int, task Task) *Handle {
	hctx, cancel := context.WithCancel(ctx)
	h := &Handle{cancel: cancel, done: make(chan struct{})}
	// Chain the handle into the pool's progress path on a private copy:
	// the original pool is stateless and stays reusable.
	sp := *p
	orig := sp.progress
	sp.progress = func(s Stats) {
		h.mu.Lock()
		if !h.final {
			h.last = s
		}
		h.mu.Unlock()
		if orig != nil {
			orig(s)
		}
	}
	go func() {
		stats, err := sp.Run(hctx, runs, task)
		h.mu.Lock()
		h.last, h.err, h.final = stats, err, true
		h.mu.Unlock()
		cancel()
		close(h.done)
	}()
	return h
}

// Stats returns the latest batch snapshot: live progress while the
// batch runs, the final Stats after it finishes. Snapshots are private
// copies, safe to retain.
func (h *Handle) Stats() Stats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last
}

// Cancel aborts the batch. Safe to call at any time, from any
// goroutine, and after completion (a no-op then). Cancellation is
// asynchronous: use Wait or Done to observe the batch actually ending.
func (h *Handle) Cancel() { h.cancel() }

// Done returns a channel closed when the batch has fully finished.
func (h *Handle) Done() <-chan struct{} { return h.done }

// Wait blocks until the batch finishes and returns its final Stats and
// error — the exact values a synchronous Pool.Run would have returned.
func (h *Handle) Wait() (Stats, error) {
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.last, h.err
}
