package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesEveryIndexOnce(t *testing.T) {
	const n = 50
	var hits [n]atomic.Int32
	p := New(WithJobs(4))
	stats, err := p.Run(context.Background(), n, func(_ context.Context, i int) (Report, error) {
		hits[i].Add(1)
		return Report{Ticks: 10}, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Errorf("index %d executed %d times, want 1", i, got)
		}
	}
	if stats.Runs != n || stats.Started != n || stats.Completed != n || stats.Failed != 0 {
		t.Errorf("stats = %+v, want %d started and completed", stats, n)
	}
	if stats.Ticks != 10*n {
		t.Errorf("ticks = %d, want %d", stats.Ticks, 10*n)
	}
	if !stats.Done() {
		t.Error("batch should report done")
	}
	if stats.Wall <= 0 {
		t.Errorf("wall = %v, want > 0", stats.Wall)
	}
}

func TestRunZeroRuns(t *testing.T) {
	p := New()
	stats, err := p.Run(context.Background(), 0, func(context.Context, int) (Report, error) {
		t.Error("task should never run")
		return Report{}, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Started != 0 || stats.Completed != 0 || stats.Failed != 0 || stats.Runs != 0 {
		t.Errorf("stats = %+v, want all zero", stats)
	}
	if !stats.Done() {
		t.Error("empty batch is trivially done")
	}
}

func TestRunMoreJobsThanRuns(t *testing.T) {
	var running, peak atomic.Int32
	p := New(WithJobs(16))
	stats, err := p.Run(context.Background(), 3, func(context.Context, int) (Report, error) {
		cur := running.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		running.Add(-1)
		return Report{}, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if stats.Completed != 3 {
		t.Errorf("completed = %d, want 3", stats.Completed)
	}
	if peak.Load() > 3 {
		t.Errorf("peak concurrency %d exceeds runs", peak.Load())
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	var running, peak atomic.Int32
	p := New(WithJobs(2))
	_, err := p.Run(context.Background(), 12, func(context.Context, int) (Report, error) {
		cur := running.Add(1)
		for {
			old := peak.Load()
			if cur <= old || peak.CompareAndSwap(old, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		running.Add(-1)
		return Report{}, nil
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d, want <= 2", p)
	}
}

func TestRunCancellationMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	p := New(WithJobs(2))
	stats, err := p.Run(ctx, 100, func(ctx context.Context, i int) (Report, error) {
		if done.Add(1) == 4 {
			cancel() // abort the batch from within
		}
		select {
		case <-ctx.Done():
			return Report{}, ctx.Err()
		case <-time.After(time.Millisecond):
			return Report{Ticks: 1}, nil
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Started >= 100 {
		t.Errorf("started = %d, cancellation should stop the batch early", stats.Started)
	}
	if stats.Completed+stats.Failed != stats.Started {
		t.Errorf("partial stats inconsistent: %+v", stats)
	}
}

func TestRunContextAlreadyCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New()
	stats, err := p.Run(ctx, 5, func(context.Context, int) (Report, error) {
		t.Error("task should never start")
		return Report{}, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.Started != 0 {
		t.Errorf("started = %d, want 0", stats.Started)
	}
}

func TestRunTimeout(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	p := New(WithJobs(1))
	_, err := p.Run(ctx, 1000, func(ctx context.Context, _ int) (Report, error) {
		select {
		case <-ctx.Done():
			return Report{}, ctx.Err()
		case <-time.After(time.Millisecond):
			return Report{Ticks: 1}, nil
		}
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}

func TestRunPanicIsolation(t *testing.T) {
	p := New(WithJobs(2))
	stats, err := p.Run(context.Background(), 10, func(_ context.Context, i int) (Report, error) {
		if i == 3 {
			panic("boom")
		}
		return Report{Ticks: 1}, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Index != 3 {
		t.Errorf("panic index = %d, want 3", pe.Index)
	}
	if pe.Value != "boom" {
		t.Errorf("panic value = %v, want boom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic error should carry a stack trace")
	}
	if stats.Failed == 0 {
		t.Errorf("stats = %+v, want a failure recorded", stats)
	}
}

func TestRunFailFast(t *testing.T) {
	sentinel := errors.New("replica exploded")
	p := New(WithJobs(1)) // serial: the failure must stop index 1+
	var ran atomic.Int32
	stats, err := p.Run(context.Background(), 100, func(_ context.Context, i int) (Report, error) {
		ran.Add(1)
		if i == 0 {
			return Report{}, sentinel
		}
		return Report{}, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got := ran.Load(); got != 1 {
		t.Errorf("tasks run = %d, want 1 (fail fast)", got)
	}
	if stats.Failed != 1 || stats.Started != 1 {
		t.Errorf("stats = %+v, want one started, one failed", stats)
	}
}

func TestRunProgressMonotonic(t *testing.T) {
	var mu sync.Mutex
	var snaps []Stats
	p := New(WithJobs(4), WithProgress(func(s Stats) {
		mu.Lock()
		snaps = append(snaps, s)
		mu.Unlock()
	}))
	const n = 20
	if _, err := p.Run(context.Background(), n, func(context.Context, int) (Report, error) {
		return Report{Ticks: 2}, nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(snaps) != n+1 { // one at start, one per finished task
		t.Fatalf("got %d snapshots, want %d", len(snaps), n+1)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Completed < snaps[i-1].Completed || snaps[i].Ticks < snaps[i-1].Ticks {
			t.Fatalf("snapshot %d regressed: %+v after %+v", i, snaps[i], snaps[i-1])
		}
	}
	last := snaps[len(snaps)-1]
	if last.Completed != n || last.Ticks != 2*n || !last.Done() {
		t.Errorf("final snapshot = %+v, want %d completed", last, n)
	}
}

func TestStatsTicksPerSec(t *testing.T) {
	s := Stats{Ticks: 500, Wall: 2 * time.Second}
	if got := s.TicksPerSec(); got != 250 {
		t.Errorf("TicksPerSec = %v, want 250", got)
	}
	if (Stats{}).TicksPerSec() != 0 {
		t.Error("zero stats should report zero throughput")
	}
}

func TestDefaultJobs(t *testing.T) {
	if got := New().Jobs(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default jobs = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := New(WithJobs(-5)).Jobs(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("non-positive jobs should keep the default, got %d", got)
	}
	if got := New(WithJobs(3)).Jobs(); got != 3 {
		t.Errorf("jobs = %d, want 3", got)
	}
}

func TestPanicErrorMessage(t *testing.T) {
	pe := &PanicError{Index: 7, Value: fmt.Errorf("bad")}
	if got := pe.Error(); got != "runner: task 7 panicked: bad" {
		t.Errorf("Error() = %q", got)
	}
}

func TestRunAggregatesCounters(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		p := New(WithJobs(jobs))
		var snaps []Stats
		p.progress = func(s Stats) { snaps = append(snaps, s) }
		stats, err := p.Run(context.Background(), 6, func(_ context.Context, i int) (Report, error) {
			return Report{
				Ticks:    1,
				Counters: map[string]int64{"scan_attempts": int64(10 * (i + 1)), "infections": 1},
			}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]int64{"scan_attempts": 10 + 20 + 30 + 40 + 50 + 60, "infections": 6}
		if !reflect.DeepEqual(stats.Counters, want) {
			t.Errorf("jobs=%d: Counters = %v, want %v", jobs, stats.Counters, want)
		}
		// Progress snapshots own private copies: mutating one must not
		// leak into the final aggregate.
		for _, s := range snaps {
			if s.Counters != nil {
				s.Counters["scan_attempts"] = -1
			}
		}
		if !reflect.DeepEqual(stats.Counters, want) {
			t.Errorf("jobs=%d: snapshot mutation leaked into final Counters", jobs)
		}
	}
}

func TestRunNoCountersStaysNil(t *testing.T) {
	p := New(WithJobs(2))
	stats, err := p.Run(context.Background(), 4, func(context.Context, int) (Report, error) {
		return Report{Ticks: 3}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Counters != nil {
		t.Errorf("Counters = %v, want nil when no task reports counters", stats.Counters)
	}
	if stats.Ticks != 12 {
		t.Errorf("Ticks = %d, want 12", stats.Ticks)
	}
}
