// Package runner is the run-orchestration layer: a bounded worker pool
// that executes indexed batches of deterministic work — simulation
// replicas, whole-figure experiment regenerations — with
// context.Context cancellation, per-worker panic capture, and live
// progress statistics. The pool itself is deliberately ignorant of
// what a task computes: determinism is the caller's contract (each
// task derives everything it needs, typically an RNG seed, from its
// index), which makes results independent of worker count and
// scheduling order.
//
// The pool serves two granularities: batches of whole replicas
// (sim.MultiRun, experiment.RunAll) and intra-run tick sharding
// (sim.Config.Workers), where each phase of a simulation tick fans its
// node/link ranges out as one pool run per tick phase.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Stats is a snapshot of batch progress. Counters are cumulative over
// one Pool.Run call.
type Stats struct {
	// Runs is the total number of tasks in the batch.
	Runs int
	// Started counts tasks handed to a worker (including ones that
	// later failed). Started never exceeds Runs; after a cancellation
	// it reports how far the batch got.
	Started int
	// Completed counts tasks that returned without error.
	Completed int
	// Failed counts tasks that returned an error or panicked.
	Failed int
	// Ticks is the total work units (simulation ticks) reported by
	// finished tasks. Zero when tasks do not report ticks.
	Ticks int64
	// Counters aggregates (by key-wise summation) the counter maps
	// finished tasks returned in their Reports — per-replica
	// observability stats such as scan attempts or dropped packets.
	// Nil when no task reported counters. Snapshots handed to progress
	// callbacks carry a private copy; the final Stats returned by Run
	// own theirs.
	Counters map[string]int64
	// Retries is the total number of retry attempts across the batch
	// (attempts beyond each task's first), whether or not they
	// eventually succeeded.
	Retries int
	// Failures records every task that exhausted its attempts, in
	// completion order. Snapshots handed to progress callbacks carry a
	// private copy.
	Failures []Failure
	// Wall is the elapsed time since the batch started.
	Wall time.Duration
}

// Failure describes one task that failed after all its attempts.
type Failure struct {
	// Index is the failed task's batch index.
	Index int
	// Attempts is how many times the task was tried (>= 1).
	Attempts int
	// Err is the final attempt's error. A *PanicError carries the
	// panicking goroutine's stack; ErrTaskTimeout marks an attempt that
	// exceeded the per-task deadline.
	Err error
}

// TicksPerSec is the batch's aggregate simulation throughput so far.
func (s Stats) TicksPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Ticks) / s.Wall.Seconds()
}

// Done reports whether every task in the batch has finished.
func (s Stats) Done() bool { return s.Completed+s.Failed == s.Runs }

// Report is what a finished task contributes to the batch Stats.
type Report struct {
	// Ticks is the work units (simulation ticks) the task performed;
	// it feeds Stats.Ticks and the throughput estimate. Zero when not
	// meaningful.
	Ticks int64
	// Counters are optional named stats summed key-wise into
	// Stats.Counters (key-wise summation is order-independent, so the
	// aggregate stays deterministic across worker counts). The pool
	// takes ownership of the map.
	Counters map[string]int64
}

// Task executes one indexed unit of a batch. index is dense in
// [0, runs); a task needing randomness must derive its seed from index
// so the batch result is independent of worker count. The returned
// Report feeds the batch Stats (return the zero Report when not
// meaningful). The context is cancelled when the batch is: long tasks
// should poll it.
type Task func(ctx context.Context, index int) (Report, error)

// PanicError wraps a panic recovered from a task so one crashing
// replica fails its batch with a diagnosable error instead of taking
// the process down.
type PanicError struct {
	// Index is the task index that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: task %d panicked: %v", e.Index, e.Value)
}

// ErrTaskTimeout marks a task attempt that exceeded the per-task
// deadline installed with WithTaskTimeout. The attempt's goroutine is
// abandoned (it exits when it next observes its cancelled context);
// the pool moves on — a hung replica cannot stall the batch.
var ErrTaskTimeout = errors.New("runner: task attempt exceeded deadline")

// Pool executes batches with a fixed number of worker goroutines.
// A Pool is stateless between Run calls and safe for concurrent use.
type Pool struct {
	jobs        int
	progress    func(Stats)
	retries     int
	backoff     time.Duration
	taskTimeout time.Duration
	keepGoing   bool
}

// Option configures a Pool.
type Option func(*Pool)

// WithJobs bounds the pool at n concurrent workers. n <= 0 selects the
// default, GOMAXPROCS.
func WithJobs(n int) Option {
	return func(p *Pool) {
		if n > 0 {
			p.jobs = n
		}
	}
}

// WithProgress installs a callback invoked with a snapshot after every
// task finishes (and once at batch start). Calls are serialized and
// snapshots are monotonic; the callback must not block for long — it
// runs on the worker that just finished.
func WithProgress(fn func(Stats)) Option {
	return func(p *Pool) { p.progress = fn }
}

// WithRetry retries a failed task up to max additional attempts,
// sleeping between attempts with exponential backoff (base, 2·base,
// 4·base, ... capped at 64·base) plus up to 50% deterministic jitter
// derived from the task index and attempt number — no global
// randomness, so retry schedules are reproducible. max <= 0 disables
// retries; base <= 0 retries immediately.
func WithRetry(max int, base time.Duration) Option {
	return func(p *Pool) {
		if max > 0 {
			p.retries = max
			p.backoff = base
		}
	}
}

// WithTaskTimeout gives every task attempt its own deadline, distinct
// from any batch-level timeout on the caller's context. An attempt
// exceeding it fails with an error wrapping ErrTaskTimeout and — since
// a hung task cannot be forcibly killed — its goroutine is abandoned to
// exit on its own when it observes the cancelled context. Abandoned
// attempts must therefore not mutate state the caller reads after
// Run returns without synchronization.
func WithTaskTimeout(d time.Duration) Option {
	return func(p *Pool) {
		if d > 0 {
			p.taskTimeout = d
		}
	}
}

// WithKeepGoing turns off fail-fast: a task that exhausts its attempts
// is recorded in Stats.Failures and the batch continues with the
// remaining tasks instead of aborting. Run then returns a nil error
// for task failures (inspect Stats.Failures); cancellation of the
// caller's context still aborts the batch and is still returned.
func WithKeepGoing() Option {
	return func(p *Pool) { p.keepGoing = true }
}

// New builds a pool. With no options it runs GOMAXPROCS workers and
// reports no progress.
func New(opts ...Option) *Pool {
	p := &Pool{jobs: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Jobs returns the configured worker bound.
func (p *Pool) Jobs() int { return p.jobs }

// batch is the mutable state of one Run call.
type batch struct {
	mu       sync.Mutex
	stats    Stats
	firstErr error
	start    time.Time
	progress func(Stats)
}

// snapshot refreshes Wall and invokes the progress callback while the
// lock is held, guaranteeing callers see monotonic snapshots. The
// callback gets a private copy of the counter map so later merges
// cannot race with a callback that retained its snapshot.
func (b *batch) snapshotLocked() {
	b.stats.Wall = time.Since(b.start)
	if b.progress != nil {
		b.progress(b.stats.withCounterCopy())
	}
}

// withCounterCopy returns s with Counters and Failures replaced by
// private copies.
func (s Stats) withCounterCopy() Stats {
	if s.Counters != nil {
		c := make(map[string]int64, len(s.Counters))
		for k, v := range s.Counters {
			c[k] = v
		}
		s.Counters = c
	}
	if s.Failures != nil {
		s.Failures = append([]Failure(nil), s.Failures...)
	}
	return s
}

func (b *batch) noteStarted() {
	b.mu.Lock()
	b.stats.Started++
	b.mu.Unlock()
}

func (b *batch) noteFinished(index, attempts int, rep Report, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Ticks += rep.Ticks
	b.stats.Retries += attempts - 1
	if len(rep.Counters) > 0 {
		if b.stats.Counters == nil {
			b.stats.Counters = make(map[string]int64, len(rep.Counters))
		}
		for k, v := range rep.Counters {
			b.stats.Counters[k] += v
		}
	}
	if err != nil {
		b.stats.Failed++
		b.stats.Failures = append(b.stats.Failures, Failure{Index: index, Attempts: attempts, Err: err})
		if b.firstErr == nil {
			b.firstErr = err
		}
	} else {
		b.stats.Completed++
	}
	b.snapshotLocked()
}

// Run executes runs tasks on the pool and blocks until they finish or
// the batch is aborted. By default the batch aborts on the first task
// error (fail-fast: the remaining tasks are cancelled via ctx and not
// started); with WithKeepGoing, failed tasks are recorded in
// Stats.Failures and the rest of the batch still runs. Failed tasks
// are first retried per WithRetry, and each attempt is bounded by
// WithTaskTimeout. Cancelling ctx always aborts the batch. The
// returned Stats are final for this batch — after an abort they
// describe the partial progress. The error is the first task error
// (fail-fast mode only), or ctx's error when the caller's context
// ended the batch, or nil.
func (p *Pool) Run(ctx context.Context, runs int, task Task) (Stats, error) {
	b := &batch{stats: Stats{Runs: runs}, start: time.Now(), progress: p.progress}
	if runs <= 0 {
		b.mu.Lock()
		b.snapshotLocked()
		b.mu.Unlock()
		return b.stats, nil
	}
	if err := ctx.Err(); err != nil {
		b.mu.Lock()
		b.snapshotLocked()
		b.mu.Unlock()
		return b.stats, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	b.mu.Lock()
	b.snapshotLocked() // initial snapshot: batch started
	b.mu.Unlock()

	jobs := p.jobs
	if jobs > runs {
		jobs = runs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if runCtx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= runs {
					return
				}
				b.noteStarted()
				rep, attempts, err := p.runWithRetry(runCtx, i, task)
				b.noteFinished(i, attempts, rep, err)
				if err != nil && !p.keepGoing {
					cancel() // fail fast: abort the rest of the batch
					return
				}
			}
		}()
	}
	wg.Wait()

	b.mu.Lock()
	b.stats.Wall = time.Since(b.start)
	stats, err := b.stats.withCounterCopy(), b.firstErr
	b.mu.Unlock()
	if p.keepGoing {
		// Task failures are data (Stats.Failures), not a batch error.
		err = nil
	}
	if cerr := ctx.Err(); cerr != nil {
		// The caller's context ended the batch; prefer reporting that
		// over the secondary errors it induced in in-flight tasks.
		err = cerr
	}
	return stats, err
}

// runWithRetry executes one task until it succeeds, exhausts the
// pool's retry budget, or the batch is cancelled. It returns the number
// of attempts made (>= 1) alongside the last attempt's report/error.
func (p *Pool) runWithRetry(ctx context.Context, index int, task Task) (Report, int, error) {
	attempts := 0
	for {
		attempts++
		rep, err := p.runAttempt(ctx, index, task)
		if err == nil || attempts > p.retries {
			return rep, attempts, err
		}
		if ctx.Err() != nil {
			// The batch is over; the attempt's error is a symptom of the
			// cancellation, not something a retry can fix.
			return rep, attempts, err
		}
		if !sleepBackoff(ctx, p.backoff, index, attempts) {
			return rep, attempts, err
		}
	}
}

// sleepBackoff waits the exponential-backoff-with-jitter delay before
// retry number attempt of the given task. Returns false when the batch
// was cancelled during the wait.
func sleepBackoff(ctx context.Context, base time.Duration, index, attempt int) bool {
	if base <= 0 {
		return ctx.Err() == nil
	}
	d := base << min(attempt-1, 6) // cap the exponent: 64·base
	// Up to +50% deterministic jitter, derived from (index, attempt) so
	// the schedule is reproducible and concurrent retries desynchronize.
	frac := float64(splitmix64(uint64(index)<<32|uint64(attempt))>>11) / (1 << 53)
	d += time.Duration(frac * 0.5 * float64(d))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// splitmix64 is the SplitMix64 mixing function — a tiny, seedable,
// statistically solid hash used only for retry jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// runAttempt invokes one task attempt under the pool's per-task
// deadline. Without a deadline the task runs inline on the worker; with
// one it runs on its own goroutine so an attempt that overstays can be
// abandoned — the goroutine exits when the task observes its cancelled
// context, and its eventual result is discarded.
func (p *Pool) runAttempt(ctx context.Context, index int, task Task) (Report, error) {
	if p.taskTimeout <= 0 {
		return runTask(ctx, index, task)
	}
	actx, cancel := context.WithTimeout(ctx, p.taskTimeout)
	defer cancel()
	type outcome struct {
		rep Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := runTask(actx, index, task)
		done <- outcome{rep, err}
	}()
	select {
	case o := <-done:
		return o.rep, o.err
	case <-actx.Done():
		if ctx.Err() != nil {
			// The batch itself ended; report that, not a task timeout.
			return Report{}, ctx.Err()
		}
		return Report{}, fmt.Errorf("task %d after %v: %w", index, p.taskTimeout, ErrTaskTimeout)
	}
}

// runTask invokes one task, converting a panic into a *PanicError.
func runTask(ctx context.Context, index int, task Task) (rep Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: index, Value: r, Stack: debug.Stack()}
		}
	}()
	return task(ctx, index)
}
