// Package runner is the run-orchestration layer: a bounded worker pool
// that executes indexed batches of deterministic work — simulation
// replicas, whole-figure experiment regenerations — with
// context.Context cancellation, per-worker panic capture, and live
// progress statistics. The pool itself is deliberately ignorant of
// what a task computes: determinism is the caller's contract (each
// task derives everything it needs, typically an RNG seed, from its
// index), which makes results independent of worker count and
// scheduling order.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Stats is a snapshot of batch progress. Counters are cumulative over
// one Pool.Run call.
type Stats struct {
	// Runs is the total number of tasks in the batch.
	Runs int
	// Started counts tasks handed to a worker (including ones that
	// later failed). Started never exceeds Runs; after a cancellation
	// it reports how far the batch got.
	Started int
	// Completed counts tasks that returned without error.
	Completed int
	// Failed counts tasks that returned an error or panicked.
	Failed int
	// Ticks is the total work units (simulation ticks) reported by
	// finished tasks. Zero when tasks do not report ticks.
	Ticks int64
	// Counters aggregates (by key-wise summation) the counter maps
	// finished tasks returned in their Reports — per-replica
	// observability stats such as scan attempts or dropped packets.
	// Nil when no task reported counters. Snapshots handed to progress
	// callbacks carry a private copy; the final Stats returned by Run
	// own theirs.
	Counters map[string]int64
	// Wall is the elapsed time since the batch started.
	Wall time.Duration
}

// TicksPerSec is the batch's aggregate simulation throughput so far.
func (s Stats) TicksPerSec() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.Ticks) / s.Wall.Seconds()
}

// Done reports whether every task in the batch has finished.
func (s Stats) Done() bool { return s.Completed+s.Failed == s.Runs }

// Report is what a finished task contributes to the batch Stats.
type Report struct {
	// Ticks is the work units (simulation ticks) the task performed;
	// it feeds Stats.Ticks and the throughput estimate. Zero when not
	// meaningful.
	Ticks int64
	// Counters are optional named stats summed key-wise into
	// Stats.Counters (key-wise summation is order-independent, so the
	// aggregate stays deterministic across worker counts). The pool
	// takes ownership of the map.
	Counters map[string]int64
}

// Task executes one indexed unit of a batch. index is dense in
// [0, runs); a task needing randomness must derive its seed from index
// so the batch result is independent of worker count. The returned
// Report feeds the batch Stats (return the zero Report when not
// meaningful). The context is cancelled when the batch is: long tasks
// should poll it.
type Task func(ctx context.Context, index int) (Report, error)

// PanicError wraps a panic recovered from a task so one crashing
// replica fails its batch with a diagnosable error instead of taking
// the process down.
type PanicError struct {
	// Index is the task index that panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: task %d panicked: %v", e.Index, e.Value)
}

// Pool executes batches with a fixed number of worker goroutines.
// A Pool is stateless between Run calls and safe for concurrent use.
type Pool struct {
	jobs     int
	progress func(Stats)
}

// Option configures a Pool.
type Option func(*Pool)

// WithJobs bounds the pool at n concurrent workers. n <= 0 selects the
// default, GOMAXPROCS.
func WithJobs(n int) Option {
	return func(p *Pool) {
		if n > 0 {
			p.jobs = n
		}
	}
}

// WithProgress installs a callback invoked with a snapshot after every
// task finishes (and once at batch start). Calls are serialized and
// snapshots are monotonic; the callback must not block for long — it
// runs on the worker that just finished.
func WithProgress(fn func(Stats)) Option {
	return func(p *Pool) { p.progress = fn }
}

// New builds a pool. With no options it runs GOMAXPROCS workers and
// reports no progress.
func New(opts ...Option) *Pool {
	p := &Pool{jobs: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Jobs returns the configured worker bound.
func (p *Pool) Jobs() int { return p.jobs }

// batch is the mutable state of one Run call.
type batch struct {
	mu       sync.Mutex
	stats    Stats
	firstErr error
	start    time.Time
	progress func(Stats)
}

// snapshot refreshes Wall and invokes the progress callback while the
// lock is held, guaranteeing callers see monotonic snapshots. The
// callback gets a private copy of the counter map so later merges
// cannot race with a callback that retained its snapshot.
func (b *batch) snapshotLocked() {
	b.stats.Wall = time.Since(b.start)
	if b.progress != nil {
		b.progress(b.stats.withCounterCopy())
	}
}

// withCounterCopy returns s with Counters replaced by a private copy.
func (s Stats) withCounterCopy() Stats {
	if s.Counters != nil {
		c := make(map[string]int64, len(s.Counters))
		for k, v := range s.Counters {
			c[k] = v
		}
		s.Counters = c
	}
	return s
}

func (b *batch) noteStarted() {
	b.mu.Lock()
	b.stats.Started++
	b.mu.Unlock()
}

func (b *batch) noteFinished(rep Report, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Ticks += rep.Ticks
	if len(rep.Counters) > 0 {
		if b.stats.Counters == nil {
			b.stats.Counters = make(map[string]int64, len(rep.Counters))
		}
		for k, v := range rep.Counters {
			b.stats.Counters[k] += v
		}
	}
	if err != nil {
		b.stats.Failed++
		if b.firstErr == nil {
			b.firstErr = err
		}
	} else {
		b.stats.Completed++
	}
	b.snapshotLocked()
}

// Run executes runs tasks on the pool and blocks until they finish or
// the batch is aborted. The batch aborts on the first task error (the
// remaining tasks are cancelled via ctx and not started) and when ctx
// is cancelled or times out. The returned Stats are final for this
// batch — after an abort they describe the partial progress. The error
// is the first task error, or ctx's error when the caller's context
// ended the batch, or nil.
func (p *Pool) Run(ctx context.Context, runs int, task Task) (Stats, error) {
	b := &batch{stats: Stats{Runs: runs}, start: time.Now(), progress: p.progress}
	if runs <= 0 {
		b.mu.Lock()
		b.snapshotLocked()
		b.mu.Unlock()
		return b.stats, nil
	}
	if err := ctx.Err(); err != nil {
		b.mu.Lock()
		b.snapshotLocked()
		b.mu.Unlock()
		return b.stats, err
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	b.mu.Lock()
	b.snapshotLocked() // initial snapshot: batch started
	b.mu.Unlock()

	jobs := p.jobs
	if jobs > runs {
		jobs = runs
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if runCtx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= runs {
					return
				}
				b.noteStarted()
				rep, err := runTask(runCtx, i, task)
				b.noteFinished(rep, err)
				if err != nil {
					cancel() // fail fast: abort the rest of the batch
					return
				}
			}
		}()
	}
	wg.Wait()

	b.mu.Lock()
	b.stats.Wall = time.Since(b.start)
	stats, err := b.stats.withCounterCopy(), b.firstErr
	b.mu.Unlock()
	if cerr := ctx.Err(); cerr != nil {
		// The caller's context ended the batch; prefer reporting that
		// over the secondary errors it induced in in-flight tasks.
		err = cerr
	}
	return stats, err
}

// runTask invokes one task, converting a panic into a *PanicError.
func runTask(ctx context.Context, index int, task Task) (rep Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Index: index, Value: r, Stack: debug.Stack()}
		}
	}()
	return task(ctx, index)
}
