package runner

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestHandleWaitMatchesRun: an asynchronously-started batch finishes
// with the same Stats and error a synchronous Run would produce.
func TestHandleWaitMatchesRun(t *testing.T) {
	task := func(ctx context.Context, i int) (Report, error) {
		return Report{Ticks: int64(i + 1)}, nil
	}
	p := New(WithJobs(2))
	want, werr := p.Run(context.Background(), 5, task)

	h := p.Start(context.Background(), 5, task)
	got, gerr := h.Wait()
	if !errors.Is(gerr, werr) {
		t.Fatalf("err = %v, want %v", gerr, werr)
	}
	if got.Completed != want.Completed || got.Ticks != want.Ticks || got.Runs != want.Runs {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
	// After Wait, Stats returns the final snapshot.
	if s := h.Stats(); !s.Done() || s.Ticks != want.Ticks {
		t.Fatalf("post-wait Stats() = %+v, want final snapshot", s)
	}
	select {
	case <-h.Done():
	default:
		t.Fatal("Done() not closed after Wait returned")
	}
}

// TestHandleCancelAbortsBatch: Cancel stops a running batch; Wait
// reports the cancellation and the batch's partial progress.
func TestHandleCancelAbortsBatch(t *testing.T) {
	started := make(chan struct{}, 64)
	task := func(ctx context.Context, i int) (Report, error) {
		started <- struct{}{}
		<-ctx.Done()
		return Report{}, ctx.Err()
	}
	h := New(WithJobs(1)).Start(context.Background(), 8, task)
	<-started // a worker is inside the first task
	h.Cancel()
	stats, err := h.Wait()
	if err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	if stats.Started == 0 {
		t.Fatalf("stats = %+v, want at least one started task", stats)
	}
	h.Cancel() // idempotent after completion
}

// TestHandleLiveStats: Stats observes monotonic progress while the
// batch runs, without waiting for completion.
func TestHandleLiveStats(t *testing.T) {
	release := make(chan struct{})
	var reached atomic.Int32
	task := func(ctx context.Context, i int) (Report, error) {
		if reached.Add(1) == 3 {
			// Third task: hold until the test has sampled live stats.
			select {
			case <-release:
			case <-ctx.Done():
			}
		}
		return Report{Ticks: 1}, nil
	}
	h := New(WithJobs(1)).Start(context.Background(), 4, task)
	defer h.Wait()

	deadline := time.After(5 * time.Second)
	for {
		if s := h.Stats(); s.Completed >= 2 && !s.Done() {
			break // live snapshot: partial progress observed mid-batch
		}
		select {
		case <-deadline:
			t.Fatal("never observed a live partial snapshot")
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	if stats, err := h.Wait(); err != nil || stats.Completed != 4 {
		t.Fatalf("final = %+v err=%v, want 4 completed", stats, err)
	}
}

// TestHandlePanicCaptured: a panicking task fails its handle with a
// *PanicError instead of crashing the process — the property the
// daemon leans on to survive a malformed job.
func TestHandlePanicCaptured(t *testing.T) {
	h := New(WithJobs(1)).Start(context.Background(), 1, func(ctx context.Context, i int) (Report, error) {
		panic("job gone wrong")
	})
	_, err := h.Wait()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
}
