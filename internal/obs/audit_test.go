package obs

import (
	"errors"
	"strings"
	"testing"
)

// validSnapshot builds a self-consistent snapshot: 3 packets queued on
// 2 links, 5 infected of 40, 7 ever infected, 2 removed, and a
// conserved packet flow.
func validSnapshot() Snapshot {
	return Snapshot{
		Tick:          9,
		Backlog:       3,
		QueuedPackets: 3,

		QueueBitsSet:          2,
		NonEmptyQueues:        2,
		NonEmptyQueuesFlagged: 2,

		Infected:         5,
		InfectedPopcount: 5,
		InfectedStates:   5,
		InfectedFlagged:  5,

		EverInfected: 7,
		Removed:      2,
		Population:   40,

		Generated: 100,
		Delivered: 90,
		Dropped:   7, // 90 + 7 + 3 queued = 100
	}
}

func TestAuditorAcceptsConsistentSnapshot(t *testing.T) {
	var a Auditor
	s := validSnapshot()
	if err := a.Check(&s); err != nil {
		t.Fatalf("consistent snapshot rejected: %v", err)
	}
}

// TestAuditorCatchesSeededCorruption is the mutation smoke test: every
// single-field corruption of a consistent snapshot must trip the audit,
// and the error must name the violated invariant.
func TestAuditorCatchesSeededCorruption(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Snapshot)
		want   string // substring of the violation message
	}{
		{"backlog counter drift", func(s *Snapshot) { s.Backlog++ }, "backlog counter"},
		{"queue lost a packet", func(s *Snapshot) { s.QueuedPackets-- }, "backlog counter"},
		{"stale queue bit", func(s *Snapshot) { s.QueueBitsSet++ }, "queue active set"},
		{"queue missing its bit", func(s *Snapshot) { s.NonEmptyQueuesFlagged-- }, "missing from the queue active set"},
		{"infected counter drift", func(s *Snapshot) { s.Infected++ }, "infected counter"},
		{"infected bitset drift", func(s *Snapshot) { s.InfectedPopcount-- }, "popcount"},
		{"infected state drift", func(s *Snapshot) { s.InfectedStates++ }, "infected state"},
		{"infected node missing its bit", func(s *Snapshot) { s.InfectedFlagged-- }, "missing from the infected active set"},
		{"packet leak", func(s *Snapshot) { s.Generated++ }, "packet conservation"},
		{"phantom delivery", func(s *Snapshot) { s.Delivered++ }, "packet conservation"},
		{"uncounted drop", func(s *Snapshot) { s.Dropped-- }, "packet conservation"},
		{"ever below infected", func(s *Snapshot) { s.EverInfected = s.Infected - 1 }, "ever-infected"},
		{"negative backlog", func(s *Snapshot) { s.Backlog = -1; s.QueuedPackets = -1 }, "negative count"},
		{"ever exceeds population", func(s *Snapshot) { s.EverInfected = s.Population + 1 }, "exceeds population"},
		{"infected+removed exceed population", func(s *Snapshot) {
			s.Infected = 30
			s.InfectedPopcount = 30
			s.InfectedStates = 30
			s.InfectedFlagged = 30
			s.EverInfected = 35
			s.Removed = 11
		}, "exceeds population"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var a Auditor
			s := validSnapshot()
			tt.mutate(&s)
			err := a.Check(&s)
			if err == nil {
				t.Fatal("corrupted snapshot passed the audit")
			}
			if !errors.Is(err, ErrInvariant) {
				t.Errorf("error does not match ErrInvariant: %v", err)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
			var ie *InvariantError
			if !errors.As(err, &ie) || ie.Tick != s.Tick {
				t.Errorf("error does not carry the audited tick: %v", err)
			}
		})
	}
}

func TestAuditorMonotoneEverInfected(t *testing.T) {
	var a Auditor
	s := validSnapshot()
	if err := a.Check(&s); err != nil {
		t.Fatal(err)
	}
	s.Tick++
	s.EverInfected-- // 6, still >= Infected (5): only monotonicity trips
	s.Infected = 5
	if err := a.Check(&s); err == nil {
		t.Fatal("decreasing ever-infected passed the audit")
	} else if !strings.Contains(err.Error(), "decreased") {
		t.Errorf("unexpected violation: %v", err)
	}

	// A fresh auditor has no history: the same snapshot passes.
	var fresh Auditor
	if err := fresh.Check(&s); err != nil {
		t.Errorf("fresh auditor rejected snapshot: %v", err)
	}
}

func TestAuditorReportsAllViolations(t *testing.T) {
	var a Auditor
	s := validSnapshot()
	s.Backlog += 2
	s.Generated += 5
	err := a.Check(&s)
	if err == nil {
		t.Fatal("want error")
	}
	var ie *InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("not an InvariantError: %v", err)
	}
	if len(ie.Violations) != 2 {
		t.Errorf("violations = %d (%v), want 2", len(ie.Violations), ie.Violations)
	}
}
