// Package obs is the engine observability layer: structured per-tick
// metrics, quarantine/immunization events, and the invariant audit the
// simulator runs under `-check`.
//
// The simulation engine fills a TickMetrics record every tick and hands
// it to a Collector when one is configured; with no collector the
// engine only maintains a handful of plain integer counters, so the
// hot path pays (near) nothing. Collectors in this package:
//
//   - Ring: keeps the last N ticks plus all events and a running
//     Summary — the per-replica store behind `wormsim -metrics`.
//   - Tally: keeps only the running Summary — the cheap aggregate
//     used when whole batches (cmd/figures) report totals.
//
// The invariant audit (Auditor.Check over an engine-built Snapshot)
// cross-checks the engine's O(1) counters and active-set bitmaps
// against ground truth recomputed from first principles every tick.
// It exists to make accounting bugs loud: the trigger-rate fix this
// layer shipped with was confirmed by exactly these checks.
package obs

// TickMetrics is one simulation tick's structured counters. All packet
// counts are for this tick alone (not cumulative); population counts
// (Infected, EverInfected, Immunized) are the state at the end of the
// tick.
type TickMetrics struct {
	// Tick is the 0-based simulation tick.
	Tick int `json:"tick"`
	// ScanAttempts counts worm scans measured at the monitor point:
	// after the β roll and self-target skip, before any host contact
	// limiter. This is the pre-throttle attempt stream a backbone
	// detector sees — the quantity quarantine triggers compare against.
	ScanAttempts int `json:"scan_attempts"`
	// ThrottledContacts counts scan attempts a host contact limiter
	// blocked this tick (always <= ScanAttempts).
	ThrottledContacts int `json:"throttled_contacts"`
	// BenignContacts counts background (normal/server/P2P) connection
	// attempts measured at the same monitor point as ScanAttempts.
	// Always zero for synthetic β-scan workloads; trace-replay
	// workloads fill it from the benign flows of the trace.
	BenignContacts int `json:"benign_contacts"`
	// BenignThrottled counts benign contacts a host contact limiter
	// blocked this tick (always <= BenignContacts) — the per-tick
	// collateral-damage signal of a rate-limiting defense.
	BenignThrottled int `json:"benign_throttled"`
	// PacketsGenerated counts packets injected into the network this
	// tick: surviving scans plus probe replies and probe-triggered
	// exploits.
	PacketsGenerated int `json:"packets_generated"`
	// PacketsDelivered counts packets that reached their destination.
	PacketsDelivered int `json:"packets_delivered"`
	// PacketsDropped counts packets lost to DropTail, drop policy, or
	// unreachable destinations.
	PacketsDropped int `json:"packets_dropped"`
	// Backlog is the number of packets queued on links at tick end.
	Backlog int `json:"backlog"`
	// Infected / EverInfected / Immunized are node counts at tick end.
	Infected     int `json:"infected"`
	EverInfected int `json:"ever_infected"`
	Immunized    int `json:"immunized"`
	// NewInfections / NewImmunized are this tick's state transitions.
	NewInfections int `json:"new_infections"`
	NewImmunized  int `json:"new_immunized"`
	// QuarantineActive reports whether the rate-limiting defense was in
	// force during this tick (always true for always-on deployments).
	QuarantineActive bool `json:"quarantine_active"`
}

// Event is a discrete state transition worth flagging in a metrics
// stream: quarantine trigger/activation, immunization onset.
type Event struct {
	// Tick is the tick the transition took effect.
	Tick int `json:"tick"`
	// Kind identifies the transition: "quarantine_triggered",
	// "quarantine_activated", "immunization_started".
	Kind string `json:"kind"`
	// Detail is an optional human-readable annotation.
	Detail string `json:"detail,omitempty"`
}

// Event kinds emitted by the engine.
const (
	EventQuarantineTriggered = "quarantine_triggered"
	EventQuarantineActivated = "quarantine_activated"
	EventImmunizationStarted = "immunization_started"
)

// Collector receives the engine's per-tick metrics and events. A
// collector is owned by exactly one engine (one simulation replica) and
// is called from that replica's goroutine only; implementations need no
// locking. MultiRun batches build one collector per replica.
type Collector interface {
	// Tick is called once at the end of every simulated tick.
	Tick(m TickMetrics)
	// Event is called when a discrete transition happens, before the
	// Tick call of the same tick.
	Event(ev Event)
}

// Summarizer is implemented by collectors that can report a running
// Summary; batch drivers use it to aggregate per-replica stats.
type Summarizer interface {
	Summary() Summary
}

// Summary is the running aggregate of a metrics stream.
type Summary struct {
	// Ticks is the number of ticks observed.
	Ticks int `json:"ticks"`
	// Totals over all observed ticks.
	ScanAttempts      int64 `json:"scan_attempts"`
	ThrottledContacts int64 `json:"throttled_contacts"`
	BenignContacts    int64 `json:"benign_contacts"`
	BenignThrottled   int64 `json:"benign_throttled"`
	PacketsGenerated  int64 `json:"packets_generated"`
	PacketsDelivered  int64 `json:"packets_delivered"`
	PacketsDropped    int64 `json:"packets_dropped"`
	Infections        int64 `json:"infections"`
	Immunizations     int64 `json:"immunizations"`
	// PeakBacklog is the maximum end-of-tick queue occupancy seen.
	PeakBacklog int `json:"peak_backlog"`
	// Final* are the population counts at the last observed tick.
	FinalInfected     int `json:"final_infected"`
	FinalEverInfected int `json:"final_ever_infected"`
	FinalImmunized    int `json:"final_immunized"`
	// QuarantineTick is the tick a quarantine_activated event fired
	// (-1 when none was observed).
	QuarantineTick int `json:"quarantine_tick"`
}

// observe folds one tick into the summary.
func (s *Summary) observe(m TickMetrics) {
	if s.Ticks == 0 && s.QuarantineTick == 0 {
		s.QuarantineTick = -1 // zero value means "not yet observed"
	}
	s.Ticks++
	s.ScanAttempts += int64(m.ScanAttempts)
	s.ThrottledContacts += int64(m.ThrottledContacts)
	s.BenignContacts += int64(m.BenignContacts)
	s.BenignThrottled += int64(m.BenignThrottled)
	s.PacketsGenerated += int64(m.PacketsGenerated)
	s.PacketsDelivered += int64(m.PacketsDelivered)
	s.PacketsDropped += int64(m.PacketsDropped)
	s.Infections += int64(m.NewInfections)
	s.Immunizations += int64(m.NewImmunized)
	if m.Backlog > s.PeakBacklog {
		s.PeakBacklog = m.Backlog
	}
	s.FinalInfected = m.Infected
	s.FinalEverInfected = m.EverInfected
	s.FinalImmunized = m.Immunized
}

// event folds one event into the summary.
func (s *Summary) event(ev Event) {
	if ev.Kind == EventQuarantineActivated {
		s.QuarantineTick = ev.Tick
	}
}

// Counters flattens the summed (mergeable-by-addition) totals into the
// map shape runner.Stats aggregates across tasks. Non-additive fields
// (peaks, finals, activation ticks) are deliberately excluded.
func (s Summary) Counters() map[string]int64 {
	return map[string]int64{
		"ticks":              int64(s.Ticks),
		"scan_attempts":      s.ScanAttempts,
		"throttled_contacts": s.ThrottledContacts,
		"benign_contacts":    s.BenignContacts,
		"benign_throttled":   s.BenignThrottled,
		"packets_generated":  s.PacketsGenerated,
		"packets_delivered":  s.PacketsDelivered,
		"packets_dropped":    s.PacketsDropped,
		"infections":         s.Infections,
		"immunizations":      s.Immunizations,
	}
}

// Tally is the minimal collector: it keeps only the running Summary.
// One Tally serves one replica; it is not safe for concurrent use.
type Tally struct {
	s Summary
}

// NewTally returns an empty summary-only collector.
func NewTally() *Tally {
	return &Tally{s: Summary{QuarantineTick: -1}}
}

// Tick implements Collector.
func (t *Tally) Tick(m TickMetrics) { t.s.observe(m) }

// Event implements Collector.
func (t *Tally) Event(ev Event) { t.s.event(ev) }

// Summary implements Summarizer.
func (t *Tally) Summary() Summary { return t.s }
