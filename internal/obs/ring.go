package obs

// Ring is a fixed-capacity collector keeping the most recent ticks of
// a metrics stream, every event, and a running Summary (the summary
// covers all observed ticks, including ones the ring has evicted).
// One Ring serves one replica; it is not safe for concurrent use.
type Ring struct {
	buf     []TickMetrics
	start   int // index of the oldest retained entry
	n       int // retained entries (<= cap(buf))
	events  []Event
	summary Summary
}

// NewRing returns a collector retaining the last capacity ticks
// (capacity < 1 is treated as 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{
		buf:     make([]TickMetrics, 0, capacity),
		summary: Summary{QuarantineTick: -1},
	}
}

// Tick implements Collector.
func (r *Ring) Tick(m TickMetrics) {
	r.summary.observe(m)
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, m)
		r.n++
		return
	}
	r.buf[r.start] = m // full: overwrite the oldest
	r.start = (r.start + 1) % len(r.buf)
}

// Event implements Collector. Events are never evicted.
func (r *Ring) Event(ev Event) {
	r.summary.event(ev)
	r.events = append(r.events, ev)
}

// Len is the number of retained tick records.
func (r *Ring) Len() int { return r.n }

// At returns the i-th oldest retained tick record, 0 <= i < Len().
func (r *Ring) At(i int) TickMetrics {
	return r.buf[(r.start+i)%len(r.buf)]
}

// Ticks copies the retained records out in chronological order.
func (r *Ring) Ticks() []TickMetrics {
	out := make([]TickMetrics, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.At(i)
	}
	return out
}

// Events returns the recorded events in emission order. The returned
// slice is the ring's own; callers must not modify it.
func (r *Ring) Events() []Event { return r.events }

// Summary implements Summarizer. It covers every observed tick, not
// just the retained window.
func (r *Ring) Summary() Summary { return r.summary }
