package obs

import (
	"errors"
	"fmt"
	"strings"
)

// ErrInvariant is the sentinel every invariant-audit failure matches
// via errors.Is.
var ErrInvariant = errors.New("obs: engine invariant violated")

// Snapshot is an engine's end-of-tick self-measurement for the
// invariant audit. It pairs every O(1) counter the hot path maintains
// with the same quantity recomputed from ground truth (full scans over
// queues, bitsets, and node states), so the audit is a pure value
// comparison with no access to engine internals.
type Snapshot struct {
	// Tick is the audited tick.
	Tick int
	// Backlog is the engine's incrementally-maintained queued-packet
	// counter; QueuedPackets is the recomputed sum of link queue
	// lengths. They must agree.
	Backlog       int
	QueuedPackets int
	// QueueBitsSet counts set bits in the non-empty-queue active set;
	// NonEmptyQueues counts links with a non-empty queue; and
	// NonEmptyQueuesFlagged counts non-empty queues whose bit is set.
	// All three must agree (equality of the two counts plus full
	// coverage implies the bitset and the queue set are identical).
	QueueBitsSet          int
	NonEmptyQueues        int
	NonEmptyQueuesFlagged int
	// Infected is the engine's counter; InfectedPopcount the popcount
	// of the infected-node bitset; InfectedStates the number of nodes
	// whose state is infected; InfectedFlagged the number of infected
	// nodes whose bit is set. All four must agree.
	Infected         int
	InfectedPopcount int
	InfectedStates   int
	InfectedFlagged  int
	// EverInfected and Removed are the cumulative infection and patch
	// counters; Population the susceptible population size.
	EverInfected int
	Removed      int
	Population   int
	// Generated / Delivered / Dropped are the cumulative packet flow
	// counters. Conservation requires
	// Generated == Delivered + Dropped + QueuedPackets.
	Generated uint64
	Delivered uint64
	Dropped   uint64
}

// InvariantError reports every invariant a Snapshot violated.
type InvariantError struct {
	// Tick is the tick at which the audit failed.
	Tick int
	// Violations describes each failed check.
	Violations []string
}

func (e *InvariantError) Error() string {
	return fmt.Sprintf("obs: engine invariant violated at tick %d: %s",
		e.Tick, strings.Join(e.Violations, "; "))
}

// Is makes errors.Is(err, ErrInvariant) match.
func (e *InvariantError) Is(target error) bool { return target == ErrInvariant }

// Auditor validates a sequence of Snapshots. The zero value is ready;
// cross-tick checks (monotone EverInfected) use the previously checked
// snapshot. One Auditor serves one engine.
type Auditor struct {
	started  bool
	prevEver int
}

// Check validates every invariant on s and returns an *InvariantError
// listing all violations, or nil. Snapshots must be checked in tick
// order for the cross-tick monotonicity check to be meaningful.
func (a *Auditor) Check(s *Snapshot) error {
	var v []string
	fail := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }

	if s.Backlog != s.QueuedPackets {
		fail("backlog counter %d != %d packets actually queued", s.Backlog, s.QueuedPackets)
	}
	if s.QueueBitsSet != s.NonEmptyQueues {
		fail("queue active set has %d bits set but %d queues are non-empty",
			s.QueueBitsSet, s.NonEmptyQueues)
	}
	if s.NonEmptyQueuesFlagged != s.NonEmptyQueues {
		fail("%d of %d non-empty queues are missing from the queue active set",
			s.NonEmptyQueues-s.NonEmptyQueuesFlagged, s.NonEmptyQueues)
	}
	if s.InfectedPopcount != s.Infected {
		fail("infected counter %d != active-set popcount %d", s.Infected, s.InfectedPopcount)
	}
	if s.InfectedStates != s.Infected {
		fail("infected counter %d != %d nodes in the infected state", s.Infected, s.InfectedStates)
	}
	if s.InfectedFlagged != s.InfectedStates {
		fail("%d of %d infected nodes are missing from the infected active set",
			s.InfectedStates-s.InfectedFlagged, s.InfectedStates)
	}
	if want := s.Delivered + s.Dropped + uint64(s.QueuedPackets); s.Generated != want {
		fail("packet conservation: generated %d != delivered %d + dropped %d + in-flight %d",
			s.Generated, s.Delivered, s.Dropped, s.QueuedPackets)
	}
	if s.EverInfected < s.Infected {
		fail("ever-infected %d < currently infected %d", s.EverInfected, s.Infected)
	}
	if a.started && s.EverInfected < a.prevEver {
		fail("ever-infected decreased: %d -> %d", a.prevEver, s.EverInfected)
	}
	if s.Infected < 0 || s.Removed < 0 || s.Backlog < 0 {
		fail("negative count: infected %d, removed %d, backlog %d", s.Infected, s.Removed, s.Backlog)
	}
	if s.Population > 0 {
		if s.EverInfected > s.Population {
			fail("ever-infected %d exceeds population %d", s.EverInfected, s.Population)
		}
		if s.Infected+s.Removed > s.Population {
			fail("infected %d + removed %d exceeds population %d", s.Infected, s.Removed, s.Population)
		}
	}

	a.started, a.prevEver = true, s.EverInfected
	if len(v) > 0 {
		return &InvariantError{Tick: s.Tick, Violations: v}
	}
	return nil
}
