package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSONL record shapes. Every line is one JSON object carrying a "type"
// discriminator so streams with mixed record kinds stay greppable:
//
//	{"type":"tick","run":0,"tick":3,"scan_attempts":17,...}
//	{"type":"event","run":0,"tick":12,"kind":"quarantine_activated"}
//	{"type":"summary","run":0,"ticks":150,"scan_attempts":48210,...}
type (
	tickRecord struct {
		Type string `json:"type"`
		Run  int    `json:"run"`
		TickMetrics
	}
	eventRecord struct {
		Type string `json:"type"`
		Run  int    `json:"run"`
		Event
	}
	summaryRecord struct {
		Type string `json:"type"`
		Run  int    `json:"run"`
		Summary
	}
)

// WriteJSONL emits one replica's collected metrics as JSON Lines: every
// retained tick record, every event, then the replica summary, each
// tagged with the replica index. The writer is not closed.
func WriteJSONL(w io.Writer, run int, r *Ring) error {
	enc := json.NewEncoder(w)
	for i := 0; i < r.Len(); i++ {
		if err := enc.Encode(tickRecord{Type: "tick", Run: run, TickMetrics: r.At(i)}); err != nil {
			return fmt.Errorf("obs: write tick record: %w", err)
		}
	}
	for _, ev := range r.Events() {
		if err := enc.Encode(eventRecord{Type: "event", Run: run, Event: ev}); err != nil {
			return fmt.Errorf("obs: write event record: %w", err)
		}
	}
	if err := enc.Encode(summaryRecord{Type: "summary", Run: run, Summary: r.Summary()}); err != nil {
		return fmt.Errorf("obs: write summary record: %w", err)
	}
	return nil
}
