package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// tick builds a minimal TickMetrics with distinguishable values.
func tick(i int) TickMetrics {
	return TickMetrics{
		Tick:             i,
		ScanAttempts:     10 * (i + 1),
		PacketsGenerated: 8 * (i + 1),
		PacketsDelivered: 7 * (i + 1),
		PacketsDropped:   i + 1,
		Backlog:          i,
		Infected:         i + 1,
		EverInfected:     i + 1,
		NewInfections:    1,
	}
}

func TestRingRetainsLastN(t *testing.T) {
	r := NewRing(3)
	for i := 0; i < 5; i++ {
		r.Tick(tick(i))
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Ticks()
	for i, m := range got {
		if want := 2 + i; m.Tick != want {
			t.Errorf("retained[%d].Tick = %d, want %d", i, m.Tick, want)
		}
	}
	if !reflect.DeepEqual(r.At(0), got[0]) {
		t.Error("At(0) disagrees with Ticks()[0]")
	}
	// The summary covers evicted ticks too.
	s := r.Summary()
	if s.Ticks != 5 {
		t.Errorf("summary ticks = %d, want 5", s.Ticks)
	}
	if want := int64(10 + 20 + 30 + 40 + 50); s.ScanAttempts != want {
		t.Errorf("summary scans = %d, want %d", s.ScanAttempts, want)
	}
	if s.FinalInfected != 5 {
		t.Errorf("final infected = %d, want 5", s.FinalInfected)
	}
	if s.PeakBacklog != 4 {
		t.Errorf("peak backlog = %d, want 4", s.PeakBacklog)
	}
}

func TestRingUnderfilled(t *testing.T) {
	r := NewRing(10)
	r.Tick(tick(0))
	r.Tick(tick(1))
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if got := r.Ticks(); got[0].Tick != 0 || got[1].Tick != 1 {
		t.Errorf("order wrong: %v", got)
	}
}

func TestSummaryQuarantineEvent(t *testing.T) {
	r := NewRing(4)
	r.Tick(tick(0))
	r.Event(Event{Tick: 1, Kind: EventQuarantineTriggered})
	r.Event(Event{Tick: 3, Kind: EventQuarantineActivated})
	r.Tick(tick(1))
	if got := r.Summary().QuarantineTick; got != 3 {
		t.Errorf("QuarantineTick = %d, want 3", got)
	}
	if len(r.Events()) != 2 {
		t.Errorf("events = %d, want 2", len(r.Events()))
	}

	tl := NewTally()
	tl.Tick(tick(0))
	if got := tl.Summary().QuarantineTick; got != -1 {
		t.Errorf("tally QuarantineTick = %d, want -1", got)
	}
	tl.Event(Event{Tick: 2, Kind: EventQuarantineActivated})
	if got := tl.Summary().QuarantineTick; got != 2 {
		t.Errorf("tally QuarantineTick = %d, want 2", got)
	}
}

func TestSummaryCountersAdditive(t *testing.T) {
	a, b := NewTally(), NewTally()
	for i := 0; i < 3; i++ {
		a.Tick(tick(i))
	}
	b.Tick(tick(7))
	merged := a.Summary().Counters()
	for k, v := range b.Summary().Counters() {
		merged[k] += v
	}
	if want := int64(10 + 20 + 30 + 80); merged["scan_attempts"] != want {
		t.Errorf("merged scan_attempts = %d, want %d", merged["scan_attempts"], want)
	}
	if merged["ticks"] != 4 {
		t.Errorf("merged ticks = %d, want 4", merged["ticks"])
	}
}

func TestWriteJSONL(t *testing.T) {
	r := NewRing(8)
	r.Tick(tick(0))
	r.Event(Event{Tick: 1, Kind: EventQuarantineActivated, Detail: "trigger fired at tick 0"})
	r.Tick(tick(1))

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, 2, r); err != nil {
		t.Fatal(err)
	}
	var types []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line not JSON: %v: %s", err, sc.Text())
		}
		if run, ok := rec["run"].(float64); !ok || int(run) != 2 {
			t.Errorf("record missing run tag: %v", rec)
		}
		types = append(types, rec["type"].(string))
	}
	want := []string{"tick", "tick", "event", "summary"}
	if !reflect.DeepEqual(types, want) {
		t.Errorf("record types = %v, want %v", types, want)
	}
}
