package worm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testEnv() *Env {
	// 12 nodes; nodes 0-3 subnet 0, 4-7 subnet 1, 8-11 subnet 2.
	subnet := make([]int32, 12)
	for i := range subnet {
		subnet[i] = int32(i / 4)
	}
	return &Env{N: 12, Subnet: subnet}
}

func TestRandomPickerUniform(t *testing.T) {
	env := testEnv()
	p := NewRandomFactory()(env, 3)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, env.N)
	const trials = 12000
	for i := 0; i < trials; i++ {
		tgt := p.Pick(rng, 3)
		if tgt < 0 || tgt >= env.N {
			t.Fatalf("target %d out of range", tgt)
		}
		counts[tgt]++
	}
	for node, c := range counts {
		frac := float64(c) / trials
		if frac < 0.05 || frac > 0.12 { // expected 1/12 ≈ 0.083
			t.Errorf("node %d hit fraction %v, want ~0.083", node, frac)
		}
	}
}

func TestRandomFactoryShares(t *testing.T) {
	env := testEnv()
	f := NewRandomFactory()
	a := f(env, 0)
	b := f(env, 5)
	if a != b {
		t.Error("random pickers for the same env should be shared")
	}
}

func TestRandomPickerEmptyEnv(t *testing.T) {
	p := NewRandomFactory()(&Env{}, 0)
	if got := p.Pick(rand.New(rand.NewSource(1)), 0); got != -1 {
		t.Errorf("empty env pick = %d, want -1", got)
	}
}

func TestLocalPreferentialBias(t *testing.T) {
	env := testEnv()
	f, err := NewLocalPreferentialFactory(0.8)
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	p := f(env, 1) // subnet 0
	rng := rand.New(rand.NewSource(2))
	local := 0
	const trials = 10000
	for i := 0; i < trials; i++ {
		tgt := p.Pick(rng, 1)
		if tgt < 0 || tgt >= env.N {
			t.Fatalf("target %d out of range", tgt)
		}
		if env.Subnet[tgt] == 0 {
			local++
		}
	}
	// Expected local fraction: 0.8 + 0.2*(4/12) ≈ 0.867.
	frac := float64(local) / trials
	if frac < 0.82 || frac > 0.91 {
		t.Errorf("local fraction = %v, want ~0.87", frac)
	}
}

func TestLocalPreferentialFactoryValidation(t *testing.T) {
	if _, err := NewLocalPreferentialFactory(-0.1); err == nil {
		t.Error("negative p should fail")
	}
	if _, err := NewLocalPreferentialFactory(1.1); err == nil {
		t.Error("p>1 should fail")
	}
}

func TestLocalPreferentialRouterFallsBack(t *testing.T) {
	// A node with subnet -1 (router) must fall back to random.
	env := testEnv()
	env.Subnet[0] = -1
	f, err := NewLocalPreferentialFactory(1.0)
	if err != nil {
		t.Fatal(err)
	}
	p := f(env, 0)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		tgt := p.Pick(rng, 0)
		if tgt < 0 || tgt >= env.N {
			t.Fatalf("router pick %d out of range", tgt)
		}
	}
}

func TestSequentialPicker(t *testing.T) {
	env := testEnv()
	p := NewSequentialFactory()(env, 10)
	rng := rand.New(rand.NewSource(4))
	want := []int{11, 0, 1, 2, 3}
	for i, w := range want {
		if got := p.Pick(rng, 10); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
	empty := NewSequentialFactory()(&Env{}, 0)
	if got := empty.Pick(rng, 0); got != -1 {
		t.Errorf("empty env sequential = %d, want -1", got)
	}
}

func TestSequentialPerHostState(t *testing.T) {
	env := testEnv()
	f := NewSequentialFactory()
	a := f(env, 0)
	b := f(env, 0)
	rng := rand.New(rand.NewSource(5))
	if a.Pick(rng, 0) != 1 || b.Pick(rng, 0) != 1 {
		t.Error("independent cursors should both start after self")
	}
}

// Property: every picker's targets stay in range for arbitrary seeds.
func TestPickersInRangeProperty(t *testing.T) {
	env := testEnv()
	lpf, err := NewLocalPreferentialFactory(0.5)
	if err != nil {
		t.Fatal(err)
	}
	factories := []Factory{NewRandomFactory(), lpf, NewSequentialFactory()}
	f := func(seed int64, selfRaw uint8) bool {
		self := int(selfRaw) % env.N
		rng := rand.New(rand.NewSource(seed))
		for _, fac := range factories {
			p := fac(env, self)
			for i := 0; i < 50; i++ {
				tgt := p.Pick(rng, self)
				if tgt < 0 || tgt >= env.N {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestProfiles(t *testing.T) {
	if len(KnownProfiles()) != 4 {
		t.Fatalf("profiles = %d, want 4", len(KnownProfiles()))
	}
	b, ok := ProfileByName("blaster")
	if !ok || b.DstPort != 135 || b.Proto != ProtoTCP {
		t.Errorf("blaster profile wrong: %+v ok=%v", b, ok)
	}
	w, ok := ProfileByName("welchia")
	if !ok || !w.ICMPProbe {
		t.Errorf("welchia profile wrong: %+v ok=%v", w, ok)
	}
	// The paper's footnote: Welchia's peak is an order of magnitude
	// above Blaster's.
	if w.PeakScanRate < 10*b.PeakScanRate {
		t.Errorf("welchia %d vs blaster %d: want >= 10x", w.PeakScanRate, b.PeakScanRate)
	}
	if _, ok := ProfileByName("nimda"); ok {
		t.Error("unknown profile should not resolve")
	}
}

func TestProtoString(t *testing.T) {
	tests := []struct {
		p    Proto
		want string
	}{
		{ProtoTCP, "tcp"}, {ProtoUDP, "udp"}, {ProtoICMP, "icmp"}, {Proto(0), "proto?"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.p, got, tt.want)
		}
	}
}
