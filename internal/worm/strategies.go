// Package worm defines worm target-selection strategies (shared by the
// discrete-event simulator) and behavioural profiles of the concrete
// worms the paper's trace study observed (Blaster, Welchia) plus the
// classic random scanners it cites (Code Red, Slammer), used by the
// synthetic trace generator.
package worm

import (
	"fmt"
	"math/rand"
	"sync"
)

// Env exposes the population structure a strategy may use to pick
// targets. Subnet[i] is the subnet index of node i (-1 for routers).
// Ids are int32 throughout: at internet scale the environment is a
// per-host cost, and halving it matters (DESIGN.md §14).
type Env struct {
	N      int
	Subnet []int32

	// members maps a subnet index to the node IDs inside it, in
	// ascending node order. It is built lazily on the first MembersOf
	// call: only subnet-aware strategies (LocalPreferential) pay its
	// footprint, and a uniform-random worm over ten million hosts pays
	// nothing.
	membersOnce sync.Once
	members     map[int32][]int32
}

// MembersOf returns the node IDs of subnet sub in ascending order, nil
// for unknown subnets. Safe for concurrent use: the engine's sharded
// generate sweep may call it from several workers at once.
func (e *Env) MembersOf(sub int32) []int32 {
	e.membersOnce.Do(func() {
		e.members = make(map[int32][]int32)
		for u, s := range e.Subnet {
			if s >= 0 {
				e.members[s] = append(e.members[s], int32(u))
			}
		}
	})
	return e.members[sub]
}

// Picker selects the next infection target for an infected node. A
// returned value of -1 means "no target this attempt" (e.g. the scan hit
// unused address space). Pickers may be stateful per infected host.
type Picker interface {
	Pick(rng *rand.Rand, self int) int
}

// SharedStatePicker marks pickers whose Pick mutates state shared
// across the hosts of one population (e.g. HitList's claim cursor).
// The simulator keeps its scan-generation sweep on a single goroutine
// for such strategies — sharding would race on the shared state and
// make the claim order depend on scheduling. Per-host-stateful pickers
// (Sequential) need no marker: each host's state is touched only while
// that host is simulated.
type SharedStatePicker interface {
	Picker
	// SharedPickerState is a marker method; it does nothing.
	SharedPickerState()
}

// Factory builds a picker for a newly infected host. Stateless
// strategies return a shared instance.
type Factory func(env *Env, self int) Picker

// Random picks targets uniformly at random over the whole population —
// the propagation model of Code Red I and the paper's default
// ("each infected node will attempt to infect everyone else").
type Random struct {
	env *Env
}

// NewRandomFactory returns a Factory producing uniform-random pickers.
// The factory may be shared by concurrent simulations (MultiRun hands
// one Config to every replica), so the one-entry picker cache is
// locked.
func NewRandomFactory() Factory {
	var mu sync.Mutex
	var shared *Random
	return func(env *Env, self int) Picker {
		mu.Lock()
		defer mu.Unlock()
		if shared == nil || shared.env != env {
			shared = &Random{env: env}
		}
		return shared
	}
}

// Pick implements Picker.
func (r *Random) Pick(rng *rand.Rand, self int) int {
	if r.env.N == 0 {
		return -1
	}
	return rng.Intn(r.env.N)
}

// LocalPreferential picks a target within the host's own subnet with
// probability P, and uniformly over the population otherwise — the
// subnet-preferential scanning the paper shows defeats edge-router rate
// limiting (Blaster and Welchia both scanned nearby address space).
type LocalPreferential struct {
	env  *Env
	p    float64
	self int
}

// NewLocalPreferentialFactory returns a Factory for subnet-preferential
// pickers with local probability p in [0, 1].
func NewLocalPreferentialFactory(p float64) (Factory, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("worm: local preference %v out of [0,1]", p)
	}
	return func(env *Env, self int) Picker {
		return &LocalPreferential{env: env, p: p, self: self}
	}, nil
}

// Pick implements Picker.
func (l *LocalPreferential) Pick(rng *rand.Rand, self int) int {
	env := l.env
	if env.N == 0 {
		return -1
	}
	if rng.Float64() < l.p {
		sub := int32(-1)
		if self >= 0 && self < len(env.Subnet) {
			sub = env.Subnet[self]
		}
		if members := env.MembersOf(sub); sub >= 0 && len(members) > 0 {
			return int(members[rng.Intn(len(members))])
		}
		// Routers (or hosts without a subnet) fall back to random.
	}
	return rng.Intn(env.N)
}

// Sequential scans node IDs in increasing order starting just after the
// host's own ID — the address-space walk Blaster actually performed
// (it picked a nearby /16 base and counted upward). Stateful per host.
type Sequential struct {
	env    *Env
	cursor int
}

// NewSequentialFactory returns a Factory producing per-host sequential
// scanners.
func NewSequentialFactory() Factory {
	return func(env *Env, self int) Picker {
		return &Sequential{env: env, cursor: self}
	}
}

// Pick implements Picker.
func (s *Sequential) Pick(rng *rand.Rand, self int) int {
	if s.env.N == 0 {
		return -1
	}
	s.cursor = (s.cursor + 1) % s.env.N
	return s.cursor
}

// HitList implements the "hit-list scanning" of Staniford et al.'s
// Warhol-worm analysis (the paper's [13]): the attacker seeds the worm
// with a list of known-vulnerable hosts, and infected instances *divide*
// the remaining list among themselves — each list entry is scanned by
// exactly one instance — before falling back to random scanning. The
// division is modelled with a cursor shared by all pickers of one
// population (one Env).
type HitList struct {
	env    *Env
	list   []int
	shared *hitCursor
}

// hitCursor is the per-population claim pointer into the shared list.
type hitCursor struct {
	next int
}

// NewHitListFactory builds pickers that divide the given hit list
// (copied) among the infected instances of each population, then fall
// back to uniform random scanning. The factory may be used across
// multiple concurrent simulations: each Env gets its own cursor.
func NewHitListFactory(list []int) (Factory, error) {
	if len(list) == 0 {
		return nil, fmt.Errorf("worm: hit list must be non-empty")
	}
	shared := append([]int(nil), list...)
	var mu sync.Mutex
	perEnv := make(map[*Env]*hitCursor)
	return func(env *Env, self int) Picker {
		mu.Lock()
		hc, ok := perEnv[env]
		if !ok {
			hc = &hitCursor{}
			perEnv[env] = hc
		}
		mu.Unlock()
		return &HitList{env: env, list: shared, shared: hc}
	}, nil
}

// SharedPickerState implements SharedStatePicker: the claim cursor is
// shared by every picker of one population, so the engine must not
// shard the generate sweep (see SharedStatePicker).
func (h *HitList) SharedPickerState() {}

// Pick implements Picker. The engine keeps pickers of a shared-state
// strategy on a single goroutine (SharedStatePicker), so the shared
// cursor needs no locking here.
func (h *HitList) Pick(rng *rand.Rand, self int) int {
	if h.env.N == 0 {
		return -1
	}
	for h.shared.next < len(h.list) {
		tgt := h.list[h.shared.next]
		h.shared.next++
		if tgt >= 0 && tgt < h.env.N {
			return tgt
		}
	}
	return rng.Intn(h.env.N)
}

var (
	_ Picker            = (*Random)(nil)
	_ Picker            = (*LocalPreferential)(nil)
	_ Picker            = (*Sequential)(nil)
	_ SharedStatePicker = (*HitList)(nil)
)
