package worm

// Proto is the transport/network protocol of a worm's scan packets.
type Proto uint8

// Protocols used by the profiled worms.
const (
	ProtoTCP Proto = iota + 1
	ProtoUDP
	ProtoICMP
)

// String implements fmt.Stringer.
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoICMP:
		return "icmp"
	default:
		return "proto?"
	}
}

// Profile is the observable behaviour of a concrete worm as it appears
// in network traces: which port/protocol it scans, how fast at peak, and
// whether it probes with ICMP echo before the exploit attempt (the
// signature the paper used to tell Welchia from Blaster).
type Profile struct {
	Name string
	// Proto and DstPort identify the exploit packets.
	Proto   Proto
	DstPort uint16
	// PeakScanRate is the peak number of distinct addresses contacted
	// per minute by one infected host, as observed in the traces
	// (Welchia: 7068/min; Blaster: 671/min).
	PeakScanRate int
	// ICMPProbe reports whether the worm pings targets first and only
	// attacks responders (Welchia's behaviour).
	ICMPProbe bool
	// LocalPreference is the probability a scan targets the local
	// address neighbourhood rather than a random address.
	LocalPreference float64
	// Persistent reports whether the worm retries unreachable targets
	// aggressively (the paper notes Blaster "was much more persistent").
	Persistent bool
}

// Profiles of the worms captured in or cited by the paper. Rates come
// from Section 7 (footnote 1) and the cited measurement studies.
var (
	// Blaster exploited the Windows DCOM RPC vulnerability via TCP/135,
	// scanning subnets sequentially. Peak observed: 671 hosts/minute.
	Blaster = Profile{
		Name:            "blaster",
		Proto:           ProtoTCP,
		DstPort:         135,
		PeakScanRate:    671,
		LocalPreference: 0.6,
		Persistent:      true,
	}
	// Welchia was the "patching worm": ICMP echo sweep, then infection,
	// patch, reboot. Peak observed: 7068 hosts/minute.
	Welchia = Profile{
		Name:            "welchia",
		Proto:           ProtoICMP,
		DstPort:         135, // exploit follows the ping on TCP/135
		PeakScanRate:    7068,
		ICMPProbe:       true,
		LocalPreference: 0.5,
	}
	// CodeRed is the canonical random-propagation worm of the models
	// (HTTP exploit, uniform random 32-bit targets).
	CodeRed = Profile{
		Name:         "codered",
		Proto:        ProtoTCP,
		DstPort:      80,
		PeakScanRate: 360,
	}
	// Slammer saturated links with single-packet UDP scans; it infected
	// 90% of vulnerable hosts within ten minutes.
	Slammer = Profile{
		Name:         "slammer",
		Proto:        ProtoUDP,
		DstPort:      1434,
		PeakScanRate: 240000,
	}
)

// KnownProfiles lists all built-in profiles, for CLI lookup.
func KnownProfiles() []Profile {
	return []Profile{Blaster, Welchia, CodeRed, Slammer}
}

// ProfileByName returns the built-in profile with the given name.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range KnownProfiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
