package worm

import (
	"math/rand"
	"testing"
)

func TestHitListWalksListFirst(t *testing.T) {
	env := testEnv()
	f, err := NewHitListFactory([]int{3, 7, 11})
	if err != nil {
		t.Fatalf("factory: %v", err)
	}
	p := f(env, 0) // start offset 0
	rng := rand.New(rand.NewSource(1))
	want := []int{3, 7, 11}
	for i, w := range want {
		if got := p.Pick(rng, 0); got != w {
			t.Fatalf("pick %d = %d, want %d", i, got, w)
		}
	}
	// After exhausting the list, picks are random but in range.
	for i := 0; i < 50; i++ {
		tgt := p.Pick(rng, 0)
		if tgt < 0 || tgt >= env.N {
			t.Fatalf("fallback pick %d out of range", tgt)
		}
	}
}

func TestHitListDividedAmongInstances(t *testing.T) {
	env := testEnv()
	f, err := NewHitListFactory([]int{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	// Two instances of the same population share the cursor: each list
	// entry is claimed exactly once across both.
	a := f(env, 0)
	b := f(env, 5)
	got := []int{a.Pick(rng, 0), b.Pick(rng, 5), b.Pick(rng, 5), a.Pick(rng, 0)}
	want := []int{1, 2, 3, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("divided picks = %v, want %v", got, want)
		}
	}
	// A different population (different Env) starts its own cursor.
	env2 := testEnv()
	c := f(env2, 0)
	if got := c.Pick(rng, 0); got != 1 {
		t.Errorf("fresh env should restart the list, got %d", got)
	}
}

func TestHitListSkipsInvalidEntries(t *testing.T) {
	env := testEnv() // N = 12
	f, err := NewHitListFactory([]int{99, -1, 5})
	if err != nil {
		t.Fatal(err)
	}
	p := f(env, 0)
	rng := rand.New(rand.NewSource(3))
	if got := p.Pick(rng, 0); got != 5 {
		t.Errorf("first valid pick = %d, want 5 (skipping out-of-range)", got)
	}
}

func TestHitListFactoryValidation(t *testing.T) {
	if _, err := NewHitListFactory(nil); err == nil {
		t.Error("empty hit list should fail")
	}
}

func TestHitListEmptyEnv(t *testing.T) {
	f, err := NewHitListFactory([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	p := f(&Env{}, 0)
	if got := p.Pick(rand.New(rand.NewSource(4)), 0); got != -1 {
		t.Errorf("empty env pick = %d, want -1", got)
	}
}

func TestHitListCopiesInput(t *testing.T) {
	list := []int{1, 2, 3}
	f, err := NewHitListFactory(list)
	if err != nil {
		t.Fatal(err)
	}
	list[0] = 9 // mutate the caller's slice
	p := f(testEnv(), 0)
	if got := p.Pick(rand.New(rand.NewSource(5)), 0); got != 1 {
		t.Errorf("factory should have copied the list: got %d, want 1", got)
	}
}
