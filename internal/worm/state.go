package worm

import "encoding/json"

// StateMarshaler is implemented by stateful pickers so an engine
// checkpoint can capture and restore their scan position. Stateless
// pickers (Random, LocalPreferential) do not implement it; the engine
// skips them — rebuilding via the Factory reproduces them exactly.
type StateMarshaler interface {
	// MarshalState serializes the picker's mutable state.
	MarshalState() ([]byte, error)
	// UnmarshalState restores state produced by MarshalState on a
	// freshly built picker of the same strategy.
	UnmarshalState(data []byte) error
}

type sequentialState struct {
	Cursor int `json:"cursor"`
}

// MarshalState implements StateMarshaler.
func (s *Sequential) MarshalState() ([]byte, error) {
	return json.Marshal(sequentialState{Cursor: s.cursor})
}

// UnmarshalState implements StateMarshaler.
func (s *Sequential) UnmarshalState(data []byte) error {
	var st sequentialState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	s.cursor = st.Cursor
	return nil
}

type hitListState struct {
	Next int `json:"next"`
}

// MarshalState implements StateMarshaler. The claim cursor is shared by
// every picker of one population, so each infected node records the
// same value; restoring any of them restores all.
func (h *HitList) MarshalState() ([]byte, error) {
	return json.Marshal(hitListState{Next: h.shared.next})
}

// UnmarshalState implements StateMarshaler.
func (h *HitList) UnmarshalState(data []byte) error {
	var st hitListState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	h.shared.next = st.Next
	return nil
}

var (
	_ StateMarshaler = (*Sequential)(nil)
	_ StateMarshaler = (*HitList)(nil)
)
