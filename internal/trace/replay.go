package trace

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/ratelimit"
	"repro/internal/worm"
)

// Contact is one connection attempt initiated by a monitored internal
// host — the unit the simulation engine's trace-replay driver consumes.
// A contact competes for the host's rate-limiter credits whether or not
// its destination lies inside the simulated network; only internal
// destinations become in-network packets.
type Contact struct {
	// Host is the internal host index (HostIndex of the source address).
	Host int32
	// Dst is the destination address, internal or external.
	Dst ratelimit.IP
	// Worm marks the contact as worm scan traffic (see WormFlow); all
	// other contacts are benign background load.
	Worm bool
}

// WormFlow classifies a record as worm scan traffic: a TCP SYN at the
// DCOM RPC port 135 (Blaster's exploit vector, also Welchia's follow-up
// exploit) or any ICMP packet (Welchia's ping sweep). Everything else —
// web, mail, DNS, P2P — is benign background load. The heuristic
// mirrors how the paper's Section 7 analysis separates the two worms
// from normal traffic in the campus traces.
func WormFlow(r *Record) bool {
	if r.Proto == worm.ProtoTCP && r.DstPort == 135 && r.Flags&FlagSYN != 0 {
		return true
	}
	return r.Proto == worm.ProtoICMP
}

// Replayer buckets a millisecond-timestamped contact stream into engine
// ticks: tick t covers trace times [t·msPerTick, (t+1)·msPerTick). It
// is the streaming adapter between trace time and the simulator's
// discrete clock — the whole trace is never materialized; the look-ahead
// held between calls is bounded by the source (one record for file
// streams, one generator event horizon for synthetic streams),
// independent of trace length.
//
// Contacts must be called with successive ticks (0, 1, 2, ... — or
// starting at n after Skip(n)); the returned slice is reused by the
// next call and must not be retained. A Replayer serves one replay run;
// build a fresh one per run.
type Replayer struct {
	msPerTick int64
	nextTick  int
	buf       []Contact
	fill      func(lo, hi int64, emit func(Contact)) error
}

// Contacts returns the tick's contact batch, grouped by host ascending
// with each host's stream order preserved — the canonical order the
// engine's determinism contract fixes.
func (r *Replayer) Contacts(tick int) ([]Contact, error) {
	if tick != r.nextTick {
		return nil, fmt.Errorf("trace: replay tick %d out of order (stream is at tick %d)", tick, r.nextTick)
	}
	r.buf = r.buf[:0]
	lo := int64(tick) * r.msPerTick
	hi := lo + r.msPerTick
	if err := r.fill(lo, hi, func(c Contact) { r.buf = append(r.buf, c) }); err != nil {
		return nil, err
	}
	sort.SliceStable(r.buf, func(i, j int) bool { return r.buf[i].Host < r.buf[j].Host })
	r.nextTick++
	return r.buf, nil
}

// Skip advances the stream past ticks [nextTick, n) and returns the
// number of contacts skipped. Checkpoint restore uses it to reposition
// a fresh Replayer at a snapshot's tick boundary; the returned count is
// cross-checked against the snapshotted stream position, so resuming
// against a different trace fails loudly instead of silently diverging.
func (r *Replayer) Skip(n int) (int64, error) {
	if n < r.nextTick {
		return 0, fmt.Errorf("trace: cannot skip back to tick %d (stream is at tick %d)", n, r.nextTick)
	}
	var total int64
	for r.nextTick < n {
		batch, err := r.Contacts(r.nextTick)
		if err != nil {
			return total, err
		}
		total += int64(len(batch))
	}
	return total, nil
}

// NewRecordReplayer streams a serialized trace (the WriteTo format) as
// tick-bucketed contacts: every record whose source is a monitored
// internal host becomes one Contact, classified by WormFlow; inbound
// and external records are skipped. Records must be in time order (as
// WriteTo emits them); at most one record of look-ahead is held between
// ticks, so arbitrarily long traces replay in constant memory.
func NewRecordReplayer(rd io.Reader, msPerTick int64) (*Replayer, error) {
	if msPerTick <= 0 {
		return nil, fmt.Errorf("trace: replay ms per tick %d must be positive", msPerTick)
	}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var (
		pending     Contact
		pendingTime int64
		havePending bool
		lastTime    int64
		line        int
	)
	r := &Replayer{msPerTick: msPerTick}
	r.fill = func(_, hi int64, emit func(Contact)) error {
		if havePending {
			if pendingTime >= hi {
				return nil
			}
			emit(pending)
			havePending = false
		}
		for sc.Scan() {
			line++
			text := strings.TrimSpace(sc.Text())
			if text == "" {
				continue
			}
			rec, err := parseRecord(text)
			if err != nil {
				return fmt.Errorf("%w: line %d: %v", ErrBadRecord, line, err)
			}
			if rec.Time < lastTime {
				return fmt.Errorf("%w: line %d: record at %d ms after %d ms (replay requires time order)",
					ErrBadRecord, line, rec.Time, lastTime)
			}
			lastTime = rec.Time
			h := HostIndex(rec.Src)
			if h < 0 {
				continue // inbound or external-to-external: not a monitored host's contact
			}
			c := Contact{Host: int32(h), Dst: rec.Dst, Worm: WormFlow(&rec)}
			if rec.Time >= hi {
				pending, pendingTime, havePending = c, rec.Time, true
				return nil
			}
			emit(c)
		}
		if err := sc.Err(); err != nil {
			return fmt.Errorf("trace: replay read: %w", err)
		}
		return nil
	}
	return r, nil
}

// benignInternalProb is the fraction of benign synthetic-replay
// contacts aimed at internal hosts instead of the outside world. The
// trace generator proper (Generate) omits internal-internal flows — an
// edge router never sees them — but the replay profile simulates the
// whole subnet, so a slice of intranet traffic exercises the in-network
// packet path (queues, drops) alongside the limiter seam.
const benignInternalProb = 0.10

// synthContact is a generated contact waiting for its tick window.
type synthContact struct {
	time int64
	dst  ratelimit.IP
	worm bool
}

// synthProcKind names one host's traffic process in the synthetic
// replay profile.
type synthProcKind uint8

const (
	procNormal synthProcKind = iota
	procServerIn
	procServerOut
	procP2P
	procWorm
)

// Per-process seed salts, so a host's processes draw independent
// streams (an infected host runs a background process and a worm
// process side by side).
const (
	replaySaltNormal    int64 = 0x243F6A8885A308D3
	replaySaltServerIn  int64 = 0x13198A2E03707344
	replaySaltServerOut int64 = 0x2B7E151628AED2A6
	replaySaltP2P       int64 = 0x452821E638D01377
	replaySaltWorm      int64 = 0x082EFA98EC4E6C89
)

// synthProc is one host's resumable traffic process: next is the time
// of its next top-level event (browsing session, inbound request, P2P
// contact, worm minute), and pend holds contacts already generated but
// beyond the current tick window. pend is bounded by one event's span
// (a session, a burst, one worm minute) — the constant-memory window of
// the synthetic stream.
type synthProc struct {
	host    int32
	kind    synthProcKind
	rng     *rand.Rand
	next    int64
	pend    []synthContact
	blaster bool
}

// NewSyntheticReplayer streams the generator's traffic profile
// (GenConfig's four host classes, the same calibrated behavioural
// constants as Generate) directly as tick-bucketed contacts, without
// ever materializing a trace: each host's processes are advanced lazily
// one tick window at a time. Two deliberate differences from Generate:
// worm scans include the internal sweep share (wormLocalPref) that an
// edge trace never records — that is what propagates infection inside
// the simulated subnet — and a benignInternalProb slice of benign
// contacts stays internal for the same reason.
func NewSyntheticReplayer(cfg GenConfig, msPerTick int64) (*Replayer, error) {
	if msPerTick <= 0 {
		return nil, fmt.Errorf("trace: replay ms per tick %d must be positive", msPerTick)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var procs []*synthProc
	add := func(h int, kind synthProcKind, salt int64) *synthProc {
		p := &synthProc{
			host: int32(h),
			kind: kind,
			rng:  rand.New(rand.NewSource(cfg.Seed ^ salt ^ (0x5E3779B97F4A7C15 * int64(h+1)))),
		}
		procs = append(procs, p)
		return p
	}
	for h := 0; h < cfg.NumHosts(); h++ {
		switch cfg.HostClass(h) {
		case ClassNormal:
			p := add(h, procNormal, replaySaltNormal)
			p.next = expDelay(p.rng, float64(Hour)/normalSessionsPerHour)
		case ClassServer:
			p := add(h, procServerIn, replaySaltServerIn)
			p.next = expDelay(p.rng, float64(Minute)/serverInboundPerMinute)
			q := add(h, procServerOut, replaySaltServerOut)
			q.next = expDelay(q.rng, float64(Hour)/serverOutboundPerHour)
		case ClassP2P:
			p := add(h, procP2P, replaySaltP2P)
			p.next = expDelay(p.rng, float64(Minute)/p2pContactsPerMinute)
		case ClassInfected:
			p := add(h, procNormal, replaySaltNormal)
			p.next = expDelay(p.rng, float64(Hour)/normalSessionsPerHour)
			w := add(h, procWorm, replaySaltWorm)
			w.blaster = w.rng.Float64() < cfg.BlasterFraction
			w.next = cfg.WormOnset / Minute * Minute
		}
	}
	r := &Replayer{msPerTick: msPerTick}
	r.fill = func(_, hi int64, emit func(Contact)) error {
		for _, p := range procs {
			p.advance(&cfg, hi, emit)
		}
		return nil
	}
	return r, nil
}

// benignTarget draws a benign contact's destination: usually external,
// occasionally an internal host (see benignInternalProb).
func (p *synthProc) benignTarget(cfg *GenConfig) ratelimit.IP {
	if p.rng.Float64() < benignInternalProb {
		return HostIP(p.rng.Intn(cfg.NumHosts()))
	}
	return externalIP(p.rng)
}

// advance emits the process's contacts with time < hi: first the held
// look-ahead entries that fell into the window, then every top-level
// event with start time < hi (an event's trailing contacts land in
// pend for later windows). Successive windows must be contiguous —
// Replayer guarantees that.
func (p *synthProc) advance(cfg *GenConfig, hi int64, emit func(Contact)) {
	kept := p.pend[:0]
	for _, c := range p.pend {
		if c.time < hi {
			emit(Contact{Host: p.host, Dst: c.dst, Worm: c.worm})
		} else {
			kept = append(kept, c)
		}
	}
	p.pend = kept
	push := func(t int64, dst ratelimit.IP, wormScan bool) {
		if t >= cfg.Duration {
			return
		}
		if t < hi {
			emit(Contact{Host: p.host, Dst: dst, Worm: wormScan})
		} else {
			p.pend = append(p.pend, synthContact{time: t, dst: dst, worm: wormScan})
		}
	}
	for p.next < hi && p.next < cfg.Duration {
		t := p.next
		switch p.kind {
		case procNormal:
			// One browsing session: a page-load burst, then stragglers
			// (the genNormal shape, one contact per destination).
			n := 1 + p.rng.Intn(2*normalSessionContacts-1)
			burst := 2 + p.rng.Intn(normalBurstMax-1)
			if burst > n {
				burst = n
			}
			st := t
			for k := 0; k < n && st < cfg.Duration; k++ {
				push(st, p.benignTarget(cfg), false)
				if k < burst-1 {
					st += int64(1 + p.rng.Intn(300))
				} else {
					st += expDelay(p.rng, float64(normalSessionMeanMS)/float64(n))
				}
			}
			p.next += expDelay(p.rng, float64(Hour)/normalSessionsPerHour)
		case procServerIn:
			// Response to an inbound request: outbound traffic to a host
			// that contacted us first, never throttle-worthy novelty but
			// still a contact the limiter sees.
			push(t, externalIP(p.rng), false)
			p.next += expDelay(p.rng, float64(Minute)/serverInboundPerMinute)
		case procServerOut:
			push(t, p.benignTarget(cfg), false)
			p.next += expDelay(p.rng, float64(Hour)/serverOutboundPerHour)
		case procP2P:
			n := 1
			if p.rng.Float64() < p2pBurstProb {
				n = 1 + p.rng.Intn(2*p2pBurstContacts)
			}
			st := t
			for k := 0; k < n && st < cfg.Duration; k++ {
				push(st, p.benignTarget(cfg), false)
				st += int64(1 + p.rng.Intn(400))
			}
			p.next += expDelay(p.rng, float64(Minute)/p2pContactsPerMinute)
		case procWorm:
			// One worm minute: a per-minute rate draw (peaks and lulls, as
			// in genWorm), scans spread uniformly over the minute. Unlike
			// the edge-trace generator, the local-preference share scans
			// internal hosts — the in-subnet sweep that spreads infection.
			var rate float64
			if p.blaster {
				rate = blasterMeanPerMinute * (0.5 + p.rng.Float64())
				if p.rng.Float64() < blasterPeakProb {
					rate = blasterPeakPerMinute
				}
			} else {
				rate = welchiaMeanPerMinute * (0.3 + 1.4*p.rng.Float64())
				if p.rng.Float64() < welchiaBurstProb {
					rate = welchiaPeakPerMinute
				}
			}
			n := int(rate)
			cursor := p.rng.Uint32()
			for k := 0; k < n; k++ {
				st := t + int64(p.rng.Intn(int(Minute)))
				cursor++
				tgt := ratelimit.IP(cursor)
				if p.rng.Float64() < wormLocalPref {
					tgt = HostIP(p.rng.Intn(cfg.NumHosts()))
				} else if Internal(tgt) || tgt == 0 {
					continue
				}
				push(st, tgt, true)
			}
			p.next += Minute
		}
	}
}
