package trace

import (
	"testing"

	"repro/internal/worm"
)

// smallConfig is a scaled-down population for fast tests (full-size
// calibration runs live in the benchmarks).
func smallConfig(duration int64) GenConfig {
	return GenConfig{
		Duration:        duration,
		Seed:            7,
		NormalClients:   60,
		Servers:         3,
		P2PClients:      5,
		Infected:        6,
		BlasterFraction: 0.5,
	}
}

func TestGenConfigValidate(t *testing.T) {
	ok := smallConfig(10 * Minute)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name string
		mod  func(*GenConfig)
	}{
		{"zero duration", func(c *GenConfig) { c.Duration = 0 }},
		{"negative class", func(c *GenConfig) { c.Servers = -1 }},
		{"no hosts", func(c *GenConfig) {
			c.NormalClients, c.Servers, c.P2PClients, c.Infected = 0, 0, 0, 0
		}},
		{"too many hosts", func(c *GenConfig) { c.NormalClients = 70000 }},
		{"bad blaster fraction", func(c *GenConfig) { c.BlasterFraction = 2 }},
		{"negative onset", func(c *GenConfig) { c.WormOnset = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := smallConfig(10 * Minute)
			tt.mod(&c)
			if err := c.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestHostClassLayout(t *testing.T) {
	cfg := smallConfig(Minute)
	if cfg.NumHosts() != 74 {
		t.Fatalf("NumHosts = %d", cfg.NumHosts())
	}
	if cfg.HostClass(0) != ClassNormal || cfg.HostClass(59) != ClassNormal {
		t.Error("normal block wrong")
	}
	if cfg.HostClass(60) != ClassServer || cfg.HostClass(62) != ClassServer {
		t.Error("server block wrong")
	}
	if cfg.HostClass(63) != ClassP2P || cfg.HostClass(67) != ClassP2P {
		t.Error("p2p block wrong")
	}
	if cfg.HostClass(68) != ClassInfected || cfg.HostClass(73) != ClassInfected {
		t.Error("infected block wrong")
	}
	if got := len(cfg.HostsOfClass(ClassInfected)); got != 6 {
		t.Errorf("infected hosts = %d, want 6", got)
	}
}

func TestGenerateBasics(t *testing.T) {
	cfg := smallConfig(10 * Minute)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if len(tr.Records) == 0 {
		t.Fatal("empty trace")
	}
	var dns, outbound, inbound, icmp, tcp135 int
	for i := range tr.Records {
		r := &tr.Records[i]
		if i > 0 && r.Time < tr.Records[i-1].Time {
			t.Fatal("trace not time-sorted")
		}
		if r.Time < 0 || r.Time >= cfg.Duration+Minute {
			t.Fatalf("record time %d out of range", r.Time)
		}
		// Every record must cross the edge router.
		if !r.Inbound() && !r.Outbound() {
			t.Fatalf("internal-only record in edge trace: %+v", *r)
		}
		if r.IsDNSResponse() {
			dns++
		}
		if r.Outbound() {
			outbound++
			if r.DstPort == 135 {
				tcp135++
			}
			if r.Proto == worm.ProtoICMP {
				icmp++
			}
		} else {
			inbound++
		}
	}
	if dns == 0 {
		t.Error("no DNS responses generated")
	}
	if outbound == 0 || inbound == 0 {
		t.Error("traffic should flow both ways")
	}
	if tcp135 == 0 {
		t.Error("no Blaster scanning generated")
	}
	if icmp == 0 {
		t.Error("no Welchia scanning generated")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig(5 * Minute)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
	cfg.Seed = 8
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Records) == len(a.Records) {
		same := true
		for i := range a.Records {
			if a.Records[i] != c.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestGenerateBadConfig(t *testing.T) {
	cfg := smallConfig(Minute)
	cfg.Duration = -1
	if _, err := Generate(cfg); err == nil {
		t.Error("invalid config should fail")
	}
}

func TestWormOnsetDelaysScanning(t *testing.T) {
	cfg := smallConfig(10 * Minute)
	cfg.NormalClients, cfg.Servers, cfg.P2PClients = 0, 0, 0
	cfg.WormOnset = 5 * Minute
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Infected hosts still emit normal background traffic before onset,
	// but no scan-signature records (TCP/135 SYN or outbound ICMP).
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Time >= cfg.WormOnset || !r.Outbound() {
			continue
		}
		if (r.DstPort == 135 && r.Flags&FlagSYN != 0) || r.Proto == worm.ProtoICMP {
			t.Fatalf("scan record at %d before onset %d: %+v", r.Time, cfg.WormOnset, *r)
		}
	}
}

// The classes must be separable by the analyzer: infected >> p2p >>
// normal in aggregate contact rate, and the refinements must cut normal
// clients' counts.
func TestClassSeparation(t *testing.T) {
	cfg := smallConfig(15 * Minute)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := func(cl Class) float64 {
		t.Helper()
		stats, err := AnalyzeAggregate(tr, cfg.HostsOfClass(cl), 5*Second)
		if err != nil {
			t.Fatalf("analyze %v: %v", cl, err)
		}
		// Normalize by population for a per-host comparison.
		return stats.All.Mean() / float64(len(cfg.HostsOfClass(cl)))
	}
	normal, p2p, infected := rate(ClassNormal), rate(ClassP2P), rate(ClassInfected)
	if !(normal < p2p && p2p < infected) {
		t.Errorf("per-host rates not ordered: normal=%v p2p=%v infected=%v", normal, p2p, infected)
	}
	if infected < 20*normal {
		t.Errorf("infected rate %v should dwarf normal %v", infected, normal)
	}
	// Refinements help normal clients.
	stats, err := AnalyzeAggregate(tr, cfg.HostsOfClass(ClassNormal), 5*Second)
	if err != nil {
		t.Fatal(err)
	}
	if !(stats.NonDNS.Mean() < stats.NoPrior.Mean() && stats.NoPrior.Mean() <= stats.All.Mean()) {
		t.Errorf("refinements should reduce counts: %v / %v / %v",
			stats.All.Mean(), stats.NoPrior.Mean(), stats.NonDNS.Mean())
	}
	// ...but barely matter for worm traffic (Figure 9(b)'s tight lines).
	wstats, err := AnalyzeAggregate(tr, cfg.HostsOfClass(ClassInfected), 5*Second)
	if err != nil {
		t.Fatal(err)
	}
	if wstats.NonDNS.Mean() < 0.9*wstats.All.Mean() {
		t.Errorf("worm traffic should spike all three metrics: %v vs %v",
			wstats.NonDNS.Mean(), wstats.All.Mean())
	}
}

func TestClassifyGeneratedTrace(t *testing.T) {
	cfg := smallConfig(15 * Minute)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reports := Classify(tr)
	byHost := make(map[int]HostReport, len(reports))
	for _, r := range reports {
		byHost[r.Host] = r
	}
	correct, total := 0, 0
	var blaster, welchia int
	for h := 0; h < cfg.NumHosts(); h++ {
		want := cfg.HostClass(h)
		rep, seen := byHost[h]
		if !seen {
			continue // host generated no traffic in the short window
		}
		total++
		if rep.Class == want {
			correct++
		}
		switch rep.Worm {
		case WormBlaster:
			blaster++
		case WormWelchia:
			welchia++
		}
	}
	if total == 0 {
		t.Fatal("no hosts classified")
	}
	acc := float64(correct) / float64(total)
	if acc < 0.9 {
		t.Errorf("classification accuracy %.2f, want >= 0.9", acc)
	}
	if blaster == 0 || welchia == 0 {
		t.Errorf("worm detection found blaster=%d welchia=%d, want both > 0", blaster, welchia)
	}
	// The Welchia peak should be roughly an order of magnitude above
	// Blaster's (paper footnote 1).
	maxB, maxW := 0, 0
	for _, r := range reports {
		switch r.Worm {
		case WormBlaster:
			if r.PeakScanPerMinute > maxB {
				maxB = r.PeakScanPerMinute
			}
		case WormWelchia:
			if r.PeakScanPerMinute > maxW {
				maxW = r.PeakScanPerMinute
			}
		}
	}
	if maxW < 4*maxB {
		t.Errorf("welchia peak %d should dwarf blaster peak %d", maxW, maxB)
	}
}
