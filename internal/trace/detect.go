package trace

import (
	"sort"

	"repro/internal/ratelimit"
	"repro/internal/worm"
)

// WormKind identifies a detected worm infection.
type WormKind uint8

// Detection outcomes. The paper differentiated the two worms "by
// looking for a large amount of ICMP echo requests intermixed with TCP
// SYNs to port 135".
const (
	WormNone WormKind = iota
	WormBlaster
	WormWelchia
)

// String implements fmt.Stringer.
func (w WormKind) String() string {
	switch w {
	case WormNone:
		return "none"
	case WormBlaster:
		return "blaster"
	case WormWelchia:
		return "welchia"
	default:
		return "worm?"
	}
}

// Detection thresholds (distinct destinations per minute). Normal
// clients peak around 4 distinct contacts per 5 seconds ≈ 48/minute;
// the worms scan in the hundreds to thousands.
const (
	blasterScanThreshold = 60  // distinct TCP/135 targets per minute
	welchiaPingThreshold = 100 // distinct ICMP targets per minute
)

// HostReport summarizes one internal host's observed behaviour.
type HostReport struct {
	Host int
	// Class is the behavioural classification.
	Class Class
	// Worm is the detected infection, if any.
	Worm WormKind
	// PeakScanPerMinute is the peak distinct external destinations
	// contacted in any minute (the paper's footnote metric: Welchia
	// 7068/min, Blaster 671/min).
	PeakScanPerMinute int
	// PeakTCP135PerMinute and PeakICMPPerMinute are the worm-signature
	// peaks.
	PeakTCP135PerMinute int
	PeakICMPPerMinute   int
	// FreshOutbound and InboundInitiated count distinct external peers
	// by who initiated.
	FreshOutbound    int
	InboundInitiated int
	// P2PFraction is the fraction of outbound packets on known P2P
	// ports.
	P2PFraction float64
}

// classifier thresholds for non-worm classes.
const (
	p2pPortFractionMin = 0.5
	p2pMinFresh        = 30
	serverInboundRatio = 5.0
)

// Classify analyzes a time-sorted trace and reports on every internal
// host that appears in it, sorted by host index. Classification rules:
// worm signatures first (TCP/135 or ICMP sweeps above threshold), then
// servers (inbound-initiated peers dominate), then P2P (sustained fresh
// contacts mostly on P2P application ports), else normal.
func Classify(t *Trace) []HostReport {
	type hostAgg struct {
		minuteDst   map[ratelimit.IP]struct{}
		minute135   map[ratelimit.IP]struct{}
		minuteICMP  map[ratelimit.IP]struct{}
		curMinute   int64
		peakAll     int
		peak135     int
		peakICMP    int
		freshOut    map[ratelimit.IP]struct{}
		inboundInit map[ratelimit.IP]struct{}
		outPackets  int
		p2pPackets  int
	}
	aggs := make(map[int]*hostAgg)
	get := func(h int) *hostAgg {
		a, ok := aggs[h]
		if !ok {
			a = &hostAgg{
				minuteDst:   make(map[ratelimit.IP]struct{}),
				minute135:   make(map[ratelimit.IP]struct{}),
				minuteICMP:  make(map[ratelimit.IP]struct{}),
				freshOut:    make(map[ratelimit.IP]struct{}),
				inboundInit: make(map[ratelimit.IP]struct{}),
			}
			aggs[h] = a
		}
		return a
	}
	roll := func(a *hostAgg, minute int64) {
		if minute == a.curMinute {
			return
		}
		if n := len(a.minuteDst); n > a.peakAll {
			a.peakAll = n
		}
		if n := len(a.minute135); n > a.peak135 {
			a.peak135 = n
		}
		if n := len(a.minuteICMP); n > a.peakICMP {
			a.peakICMP = n
		}
		clear(a.minuteDst)
		clear(a.minute135)
		clear(a.minuteICMP)
		a.curMinute = minute
	}

	seenFirstInbound := make(map[ratelimit.IP]struct{})
	seenAny := make(map[ratelimit.IP]struct{})
	isP2PPort := make(map[uint16]bool, len(p2pPorts))
	for _, p := range p2pPorts {
		isP2PPort[p] = true
	}

	for i := range t.Records {
		r := &t.Records[i]
		switch {
		case r.Inbound():
			if _, ok := seenAny[r.Src]; !ok {
				seenAny[r.Src] = struct{}{}
				seenFirstInbound[r.Src] = struct{}{}
			}
			a := get(HostIndex(r.Dst))
			if _, init := seenFirstInbound[r.Src]; init {
				a.inboundInit[r.Src] = struct{}{}
			}
		case r.Outbound():
			if _, ok := seenAny[r.Dst]; !ok {
				seenAny[r.Dst] = struct{}{}
			}
			a := get(HostIndex(r.Src))
			roll(a, r.Time/Minute)
			a.minuteDst[r.Dst] = struct{}{}
			if r.DstPort == 135 && r.Flags&FlagSYN != 0 {
				a.minute135[r.Dst] = struct{}{}
			}
			if r.Proto == worm.ProtoICMP {
				a.minuteICMP[r.Dst] = struct{}{}
			}
			a.outPackets++
			if isP2PPort[r.DstPort] {
				a.p2pPackets++
			}
			if _, init := seenFirstInbound[r.Dst]; !init {
				a.freshOut[r.Dst] = struct{}{}
			}
		}
	}

	reports := make([]HostReport, 0, len(aggs))
	for h, a := range aggs {
		roll(a, a.curMinute+1) // final flush
		rep := HostReport{
			Host:                h,
			PeakScanPerMinute:   a.peakAll,
			PeakTCP135PerMinute: a.peak135,
			PeakICMPPerMinute:   a.peakICMP,
			FreshOutbound:       len(a.freshOut),
			InboundInitiated:    len(a.inboundInit),
		}
		if a.outPackets > 0 {
			rep.P2PFraction = float64(a.p2pPackets) / float64(a.outPackets)
		}
		switch {
		case rep.PeakICMPPerMinute >= welchiaPingThreshold:
			rep.Worm = WormWelchia
			rep.Class = ClassInfected
		case rep.PeakTCP135PerMinute >= blasterScanThreshold:
			rep.Worm = WormBlaster
			rep.Class = ClassInfected
		case rep.FreshOutbound > 0 &&
			float64(rep.InboundInitiated) >= serverInboundRatio*float64(rep.FreshOutbound):
			rep.Class = ClassServer
		case rep.InboundInitiated > 0 && rep.FreshOutbound == 0:
			rep.Class = ClassServer
		case rep.P2PFraction >= p2pPortFractionMin && rep.FreshOutbound >= p2pMinFresh:
			rep.Class = ClassP2P
		default:
			rep.Class = ClassNormal
		}
		reports = append(reports, rep)
	}
	sort.Slice(reports, func(i, j int) bool { return reports[i].Host < reports[j].Host })
	return reports
}
