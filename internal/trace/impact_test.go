package trace

import (
	"math"
	"testing"
)

func TestEvaluateLimitHandTrace(t *testing.T) {
	tr := handTrace() // window counts (all): 3,1,0,0,1
	im, err := EvaluateLimit(tr, []int{0}, 5*Second, 2, RefAll)
	if err != nil {
		t.Fatalf("EvaluateLimit: %v", err)
	}
	if im.Windows != 5 {
		t.Fatalf("windows = %d, want 5", im.Windows)
	}
	if im.AffectedWindows != 1 {
		t.Errorf("affected = %d, want 1 (the 3-contact window)", im.AffectedWindows)
	}
	if im.Contacts != 5 {
		t.Errorf("contacts = %d, want 5", im.Contacts)
	}
	if im.BlockedContacts != 1 {
		t.Errorf("blocked = %d, want 1", im.BlockedContacts)
	}
	if got := im.AffectedWindowFraction(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("affected fraction = %v, want 0.2", got)
	}
	if got := im.BlockedContactFraction(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("blocked fraction = %v, want 0.2", got)
	}
}

func TestEvaluateLimitRefinements(t *testing.T) {
	tr := handTrace() // nonDNS counts: 1,1,0,0,1
	im, err := EvaluateLimit(tr, []int{0}, 5*Second, 0, RefNonDNS)
	if err != nil {
		t.Fatal(err)
	}
	if im.Contacts != 3 || im.BlockedContacts != 3 || im.AffectedWindows != 3 {
		t.Errorf("nonDNS at limit 0: %+v", im)
	}
	// A generous limit affects nothing.
	im, err = EvaluateLimit(tr, []int{0}, 5*Second, 100, RefNoPrior)
	if err != nil {
		t.Fatal(err)
	}
	if im.AffectedWindows != 0 || im.BlockedContacts != 0 {
		t.Errorf("generous limit should not engage: %+v", im)
	}
}

func TestEvaluateLimitErrors(t *testing.T) {
	tr := handTrace()
	if _, err := EvaluateLimit(tr, []int{0}, 0, 5, RefAll); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := EvaluateLimit(tr, []int{0}, 5*Second, -1, RefAll); err == nil {
		t.Error("negative limit should fail")
	}
	if _, err := EvaluateLimit(tr, []int{0}, 5*Second, 5, Refinement(9)); err == nil {
		t.Error("unknown refinement should fail")
	}
}

func TestImpactZeroValues(t *testing.T) {
	var im Impact
	if im.AffectedWindowFraction() != 0 || im.BlockedContactFraction() != 0 {
		t.Error("zero impact should report zero fractions")
	}
}

func TestRefinementString(t *testing.T) {
	tests := []struct {
		r    Refinement
		want string
	}{
		{RefAll, "all"}, {RefNoPrior, "no-prior"}, {RefNonDNS, "non-DNS"},
		{Refinement(7), "Refinement(7)"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

// The paper's central practical claim: a limit at the normal clients'
// 99.9th percentile barely touches legitimate traffic but shreds worm
// traffic.
func TestLimitHurtsWormsNotClients(t *testing.T) {
	cfg := smallConfig(15 * Minute)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	normal := cfg.HostsOfClass(ClassNormal)
	infected := cfg.HostsOfClass(ClassInfected)
	stats, err := AnalyzeAggregate(tr, normal, 5*Second)
	if err != nil {
		t.Fatal(err)
	}
	limit := stats.All.Quantile(0.999)
	imNormal, err := EvaluateLimit(tr, normal, 5*Second, limit, RefAll)
	if err != nil {
		t.Fatal(err)
	}
	imWorm, err := EvaluateLimit(tr, infected, 5*Second, limit, RefAll)
	if err != nil {
		t.Fatal(err)
	}
	if f := imNormal.AffectedWindowFraction(); f > 0.005 {
		t.Errorf("limit affects %.3f of legitimate windows, want ~0.001", f)
	}
	if f := imWorm.BlockedContactFraction(); f < 0.5 {
		t.Errorf("limit blocks only %.2f of worm contacts, want most", f)
	}
}
