package trace

import (
	"strings"
	"testing"

	"repro/internal/ratelimit"
	"repro/internal/worm"
)

// FuzzParseRecord ensures the record parser never panics and that every
// successfully parsed record round-trips through WriteTo/Read.
func FuzzParseRecord(f *testing.F) {
	f.Add("1\t2\t3\t1\t5\t6\t0\t0\t0")
	f.Add("0\t167772160\t134744072\t2\t53\t32768\t0\t134744073\t7200000")
	f.Add("")
	f.Add("x\ty")
	f.Add("1\t2\t3\t4\t5\t6\t7\t8\t9\t10")
	f.Add("-1\t2\t3\t4\t5\t6\t7\t8\t9")
	f.Add("18446744073709551615\t2\t3\t4\t5\t6\t7\t8\t9")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := parseRecord(line)
		if err != nil {
			return // malformed input is fine as long as it doesn't panic
		}
		// Round trip: serialize and re-parse.
		tr := &Trace{Records: []Record{rec}}
		var b strings.Builder
		if _, err := tr.WriteTo(&b); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		got, err := Read(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if len(got.Records) != 1 || got.Records[0] != rec {
			t.Fatalf("round trip changed record: %+v vs %+v", got.Records[0], rec)
		}
	})
}

// FuzzAnalyzerRobustness feeds arbitrary (but time-ordered) records into
// the aggregate analyzer: it must never panic and always produce
// consistent histograms.
func FuzzAnalyzerRobustness(f *testing.F) {
	f.Add(uint32(0x0A000001), uint32(0x08080808), uint8(1), uint16(80), int64(1000))
	f.Add(uint32(0x08080808), uint32(0x0A000001), uint8(2), uint16(53), int64(0))
	f.Fuzz(func(t *testing.T, src, dst uint32, proto uint8, port uint16, dt int64) {
		if dt < 0 {
			dt = -dt
		}
		an, err := NewAggregateAnalyzer([]int{0, 1, 2}, 5*Second)
		if err != nil {
			t.Fatal(err)
		}
		now := int64(0)
		for i := 0; i < 5; i++ {
			rec := Record{
				Time:    now,
				Src:     ratelimit.IP(src + uint32(i)),
				Dst:     ratelimit.IP(dst - uint32(i)),
				Proto:   worm.Proto(proto),
				DstPort: port,
			}
			if err := an.Feed(&rec); err != nil {
				t.Fatalf("Feed: %v", err)
			}
			now += dt % (20 * Second)
		}
		stats := an.Finish()
		if stats.All.Total() < 1 {
			t.Fatal("no windows recorded")
		}
		if stats.NonDNS.Max() > stats.All.Max() {
			t.Fatal("refinement exceeded raw count")
		}
	})
}
