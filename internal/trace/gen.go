package trace

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ratelimit"
	"repro/internal/worm"
)

// Paper host-class sizes (Section 7, CMU ECE subnet, 1128 hosts).
const (
	PaperNormalClients = 999
	PaperServers       = 17
	PaperP2PClients    = 33
	PaperInfected      = 79
)

// Class is a host's behavioural class.
type Class uint8

// Host classes observed in the paper's traces.
const (
	ClassNormal Class = iota
	ClassServer
	ClassP2P
	ClassInfected
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassNormal:
		return "normal"
	case ClassServer:
		return "server"
	case ClassP2P:
		return "p2p"
	case ClassInfected:
		return "infected"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// GenConfig configures the synthetic trace generator. The zero value is
// not usable; start from DefaultGenConfig.
type GenConfig struct {
	// Duration is the trace length in milliseconds.
	Duration int64
	// Seed drives all randomness.
	Seed int64
	// Class populations (defaults: the paper's 999/17/33/79).
	NormalClients, Servers, P2PClients, Infected int
	// BlasterFraction of the infected hosts run Blaster; the rest run
	// Welchia. The paper saw both (some hosts had both).
	BlasterFraction float64
	// WormOnset is when infected hosts begin scanning.
	WormOnset int64
}

// DefaultGenConfig returns the paper-shaped configuration for the given
// duration and seed.
func DefaultGenConfig(duration int64, seed int64) GenConfig {
	return GenConfig{
		Duration:        duration,
		Seed:            seed,
		NormalClients:   PaperNormalClients,
		Servers:         PaperServers,
		P2PClients:      PaperP2PClients,
		Infected:        PaperInfected,
		BlasterFraction: 0.6,
	}
}

// Validate checks the configuration.
func (c *GenConfig) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("trace: duration %d must be positive", c.Duration)
	}
	if c.NormalClients < 0 || c.Servers < 0 || c.P2PClients < 0 || c.Infected < 0 {
		return fmt.Errorf("trace: negative class population")
	}
	total := c.NormalClients + c.Servers + c.P2PClients + c.Infected
	if total == 0 {
		return fmt.Errorf("trace: no hosts configured")
	}
	if total > 0xFFFF {
		return fmt.Errorf("trace: %d hosts exceed the internal address block", total)
	}
	if c.BlasterFraction < 0 || c.BlasterFraction > 1 {
		return fmt.Errorf("trace: blaster fraction %v out of [0,1]", c.BlasterFraction)
	}
	if c.WormOnset < 0 {
		return fmt.Errorf("trace: worm onset %d must be >= 0", c.WormOnset)
	}
	return nil
}

// NumHosts returns the total internal host count.
func (c *GenConfig) NumHosts() int {
	return c.NormalClients + c.Servers + c.P2PClients + c.Infected
}

// HostClass returns the class of internal host index i (layout: normal,
// then servers, then P2P, then infected).
func (c *GenConfig) HostClass(i int) Class {
	switch {
	case i < c.NormalClients:
		return ClassNormal
	case i < c.NormalClients+c.Servers:
		return ClassServer
	case i < c.NormalClients+c.Servers+c.P2PClients:
		return ClassP2P
	default:
		return ClassInfected
	}
}

// HostsOfClass returns the indices of all hosts in class cl.
func (c *GenConfig) HostsOfClass(cl Class) []int {
	var out []int
	for i := 0; i < c.NumHosts(); i++ {
		if c.HostClass(i) == cl {
			out = append(out, i)
		}
	}
	return out
}

// DNSServerHost is the index offset (within the server block) of the
// departmental DNS server whose upstream resolutions the edge router
// sees.
const DNSServerHost = 0

// Behavioural constants, tuned so the analyzer reproduces the paper's
// published percentiles (see calibration tests and EXPERIMENTS.md).
const (
	// Normal clients: browsing sessions. A session front-loads a "page
	// load" burst of destinations, then trickles the rest.
	normalSessionsPerHour = 0.8
	normalSessionMeanMS   = 30 * Second
	normalSessionContacts = 4    // mean distinct destinations per session
	normalBurstMax        = 4    // destinations in the initial page-load burst
	normalDNSProb         = 0.66 // contacts preceded by a DNS translation
	normalPriorProb       = 0.18 // contacts to hosts that contacted us first
	normalRepeatPackets   = 2    // packets per contact

	// P2P clients: continuous peer churn.
	p2pContactsPerMinute = 7.0
	p2pDNSProb           = 0.58
	p2pPriorProb         = 0.33
	p2pBurstProb         = 0.03 // occasional search bursts
	p2pBurstContacts     = 18

	// Servers: almost all traffic is inbound-initiated.
	serverInboundPerMinute = 20.0
	serverOutboundPerHour  = 6.0 // fresh outbound (SMTP relay etc.)
	serverOutboundDNSProb  = 0.8

	// Worm behaviour (per §7 footnote: Welchia peak 7068/min, Blaster
	// peak 671/min; Blaster more persistent). Raw scan rates are scaled
	// up by 1/(1-wormLocalPref) so the *edge-visible* peak matches the
	// paper's numbers, since local scans never cross the edge router.
	blasterMeanPerMinute = 180.0
	blasterPeakPerMinute = 960.0 // ≈ 671 visible
	welchiaMeanPerMinute = 800.0
	welchiaPeakPerMinute = 10100.0 // ≈ 7068 visible
	welchiaBurstProb     = 0.02    // fraction of minutes at peak rate
	blasterPeakProb      = 0.05
	wormLocalPref        = 0.30 // scans at internal targets (invisible at edge)
	welchiaReplyProb     = 0.05 // probed targets that answer the ping

	dnsUpstreamTTL = 2 * Hour
)

// P2P application ports (Kazaa, Gnutella, Bittorrent, edonkey) used to
// label P2P traffic so the classifier can recognize it.
var p2pPorts = []uint16{1214, 6346, 6881, 4662}

// intent is a planned outbound contact before DNS/prior-contact
// bookkeeping expands it into records.
type intent struct {
	time    int64
	host    int
	target  ratelimit.IP
	proto   worm.Proto
	dstPort uint16
	flags   TCPFlag
	needDNS bool
	prior   bool // target should have initiated contact beforehand
	packets int
	reply   bool // target answers (Welchia ping probe)
}

// Generate synthesizes a trace per cfg. The result is time-sorted.
func Generate(cfg GenConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	var intents []intent
	for h := 0; h < cfg.NumHosts(); h++ {
		rng := rand.New(rand.NewSource(cfg.Seed ^ (0x5E3779B97F4A7C15 * int64(h+1))))
		switch cfg.HostClass(h) {
		case ClassNormal:
			intents = append(intents, genNormal(cfg, h, rng)...)
		case ClassServer:
			intents = append(intents, genServer(cfg, h, rng)...)
		case ClassP2P:
			intents = append(intents, genP2P(cfg, h, rng)...)
		case ClassInfected:
			intents = append(intents, genNormal(cfg, h, rng)...) // background
			intents = append(intents, genWorm(cfg, h, rng)...)
		}
	}
	sort.SliceStable(intents, func(i, j int) bool { return intents[i].time < intents[j].time })
	return expand(cfg, intents), nil
}

// externalIP draws a random address outside the monitored network.
func externalIP(rng *rand.Rand) ratelimit.IP {
	for {
		addr := ratelimit.IP(rng.Uint32())
		if !Internal(addr) && addr != 0 {
			return addr
		}
	}
}

// expDelay draws an exponential inter-arrival time in ms with the given
// mean.
func expDelay(rng *rand.Rand, meanMS float64) int64 {
	d := int64(rng.ExpFloat64() * meanMS)
	if d < 1 {
		d = 1
	}
	return d
}

// genNormal plans a desktop client's browsing sessions.
func genNormal(cfg GenConfig, h int, rng *rand.Rand) []intent {
	var out []intent
	sessionGap := float64(Hour) / normalSessionsPerHour
	for t := expDelay(rng, sessionGap); t < cfg.Duration; t += expDelay(rng, sessionGap) {
		// One browsing session: a page-load burst of destinations within
		// ~1 s, then stragglers over ~30 s.
		n := 1 + rng.Intn(2*normalSessionContacts-1) // mean ≈ normalSessionContacts
		burst := 2 + rng.Intn(normalBurstMax-1)
		if burst > n {
			burst = n
		}
		st := t
		for k := 0; k < n && st < cfg.Duration; k++ {
			out = append(out, intent{
				time:    st,
				host:    h,
				target:  externalIP(rng),
				proto:   worm.ProtoTCP,
				dstPort: 80,
				flags:   FlagSYN,
				needDNS: rng.Float64() < normalDNSProb,
				prior:   rng.Float64() < normalPriorProb,
				packets: 1 + rng.Intn(normalRepeatPackets),
			})
			if k < burst-1 {
				st += int64(1 + rng.Intn(300)) // within the page load
			} else {
				st += expDelay(rng, float64(normalSessionMeanMS)/float64(n))
			}
		}
	}
	return out
}

// genServer plans a server's traffic: heavy inbound, rare fresh
// outbound.
func genServer(cfg GenConfig, h int, rng *rand.Rand) []intent {
	var out []intent
	// Inbound requests (planned as prior-contact replies: the expansion
	// pass emits the inbound packet first, then our response).
	gap := float64(Minute) / serverInboundPerMinute
	for t := expDelay(rng, gap); t < cfg.Duration; t += expDelay(rng, gap) {
		out = append(out, intent{
			time:    t,
			host:    h,
			target:  externalIP(rng),
			proto:   worm.ProtoTCP,
			dstPort: 25,
			flags:   FlagACK,
			prior:   true, // response to an inbound request
			packets: 2,
		})
	}
	// Fresh outbound (mail relay, upstream fetches).
	gap = float64(Hour) / serverOutboundPerHour
	for t := expDelay(rng, gap); t < cfg.Duration; t += expDelay(rng, gap) {
		out = append(out, intent{
			time:    t,
			host:    h,
			target:  externalIP(rng),
			proto:   worm.ProtoTCP,
			dstPort: 25,
			flags:   FlagSYN,
			needDNS: rng.Float64() < serverOutboundDNSProb,
			packets: 2,
		})
	}
	return out
}

// genP2P plans a peer-to-peer client's churn.
func genP2P(cfg GenConfig, h int, rng *rand.Rand) []intent {
	var out []intent
	port := p2pPorts[rng.Intn(len(p2pPorts))]
	gap := float64(Minute) / p2pContactsPerMinute
	for t := expDelay(rng, gap); t < cfg.Duration; t += expDelay(rng, gap) {
		n := 1
		if rng.Float64() < p2pBurstProb {
			n = 1 + rng.Intn(2*p2pBurstContacts)
		}
		st := t
		for k := 0; k < n && st < cfg.Duration; k++ {
			out = append(out, intent{
				time:    st,
				host:    h,
				target:  externalIP(rng),
				proto:   worm.ProtoTCP,
				dstPort: port,
				flags:   FlagSYN,
				needDNS: rng.Float64() < p2pDNSProb,
				prior:   rng.Float64() < p2pPriorProb,
				packets: 1,
			})
			st += int64(1 + rng.Intn(400))
		}
	}
	return out
}

// genWorm plans an infected host's scanning.
func genWorm(cfg GenConfig, h int, rng *rand.Rand) []intent {
	blaster := rng.Float64() < cfg.BlasterFraction
	var out []intent
	// Scan minute by minute with a per-minute rate draw, so peak bursts
	// and lulls both appear, as in the paper's footnote.
	for minute := cfg.WormOnset / Minute; minute*Minute < cfg.Duration; minute++ {
		var rate float64
		if blaster {
			rate = blasterMeanPerMinute * (0.5 + rng.Float64())
			if rng.Float64() < blasterPeakProb {
				rate = blasterPeakPerMinute
			}
		} else {
			rate = welchiaMeanPerMinute * (0.3 + 1.4*rng.Float64())
			if rng.Float64() < welchiaBurstProb {
				rate = welchiaPeakPerMinute
			}
		}
		base := minute * Minute
		n := int(rate)
		// Sequential scanning from a random base (Blaster's real walk);
		// Welchia sweeps ranges too.
		cursor := rng.Uint32()
		for k := 0; k < n; k++ {
			t := base + int64(rng.Intn(int(Minute)))
			if t >= cfg.Duration {
				continue
			}
			cursor++
			tgt := ratelimit.IP(cursor)
			if rng.Float64() < wormLocalPref || Internal(tgt) || tgt == 0 {
				continue // internal scans never cross the edge router
			}
			if blaster {
				out = append(out, intent{
					time: t, host: h, target: tgt,
					proto: worm.ProtoTCP, dstPort: 135, flags: FlagSYN, packets: 1,
				})
			} else {
				out = append(out, intent{
					time: t, host: h, target: tgt,
					proto: worm.ProtoICMP, packets: 1,
					reply: rng.Float64() < welchiaReplyProb,
				})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].time < out[j].time })
	return out
}

// expand turns time-ordered intents into records, inserting upstream DNS
// resolutions (shared network cache), inbound precursors for
// prior-contact targets, and Welchia ping replies + exploit follow-ups.
func expand(cfg GenConfig, intents []intent) *Trace {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5DEECE66D))
	dnsServer := HostIP(cfg.NormalClients + DNSServerHost)
	hasDNSServer := cfg.Servers > 0
	dnsCache := make(map[ratelimit.IP]int64) // external -> expiry
	initiated := make(map[ratelimit.IP]struct{})
	upstream := externalIP(rng) // the upstream resolver

	t := &Trace{Records: make([]Record, 0, len(intents)*2)}
	for i := range intents {
		in := &intents[i]
		src := HostIP(in.host)
		if in.needDNS && hasDNSServer {
			if exp, ok := dnsCache[in.target]; !ok || in.time > exp {
				// Upstream query + response, visible at the edge.
				q := in.time - int64(20+rng.Intn(60))
				if q < 0 {
					q = 0
				}
				t.Records = append(t.Records,
					Record{Time: q, Src: dnsServer, Dst: upstream,
						Proto: worm.ProtoUDP, SrcPort: 32768, DstPort: 53},
					Record{Time: q + int64(5+rng.Intn(40)), Src: upstream, Dst: dnsServer,
						Proto: worm.ProtoUDP, SrcPort: 53, DstPort: 32768,
						DNSAnswer: in.target, DNSTTL: dnsUpstreamTTL},
				)
				dnsCache[in.target] = in.time + dnsUpstreamTTL
			}
		}
		if in.prior {
			if _, ok := initiated[in.target]; !ok {
				p := in.time - int64(100+rng.Intn(5000))
				if p < 0 {
					p = 0
				}
				t.Records = append(t.Records, Record{
					Time: p, Src: in.target, Dst: src,
					Proto: in.proto, SrcPort: in.dstPort, DstPort: 30000, Flags: FlagSYN,
				})
				initiated[in.target] = struct{}{}
			}
		}
		for k := 0; k < in.packets; k++ {
			t.Records = append(t.Records, Record{
				Time: in.time + int64(k*15), Src: src, Dst: in.target,
				Proto: in.proto, SrcPort: 30000, DstPort: in.dstPort, Flags: in.flags,
			})
		}
		if in.reply {
			// Welchia: ping reply comes back, exploit follows on TCP/135.
			rt := in.time + int64(30+rng.Intn(200))
			t.Records = append(t.Records,
				Record{Time: rt, Src: in.target, Dst: src, Proto: worm.ProtoICMP},
				Record{Time: rt + int64(10+rng.Intn(50)), Src: src, Dst: in.target,
					Proto: worm.ProtoTCP, SrcPort: 30000, DstPort: 135, Flags: FlagSYN},
			)
		}
	}
	t.Sort()
	return t
}
