package trace

import (
	"fmt"
	"io"

	"repro/internal/ratelimit"
)

// PerHostAnalyzer is the incremental form of AnalyzePerHost: feed
// time-ordered records, then Finish. Each sample of the resulting
// statistics is one (host, window) pair, idle windows included as
// zeros.
type PerHostAnalyzer struct {
	a     *analyzer
	set   hostSet
	stats *ContactStats

	all        map[perHostKey]struct{}
	noPrior    map[perHostKey]struct{}
	nonDNS     map[perHostKey]struct{}
	perAll     map[int]int
	perNoPrior map[int]int
	perNonDNS  map[int]int
	done       bool
}

type perHostKey struct {
	host int
	dst  ratelimit.IP
}

// NewPerHostAnalyzer builds an incremental per-host analyzer over the
// given internal hosts and window (milliseconds).
func NewPerHostAnalyzer(hosts []int, window int64) (*PerHostAnalyzer, error) {
	if window <= 0 {
		return nil, fmt.Errorf("trace: window %d must be positive", window)
	}
	return &PerHostAnalyzer{
		a:          newAnalyzer(window),
		set:        makeHostSet(hosts),
		stats:      &ContactStats{Window: window},
		all:        make(map[perHostKey]struct{}),
		noPrior:    make(map[perHostKey]struct{}),
		nonDNS:     make(map[perHostKey]struct{}),
		perAll:     make(map[int]int),
		perNoPrior: make(map[int]int),
		perNonDNS:  make(map[int]int),
	}, nil
}

func (s *PerHostAnalyzer) flush() {
	for _, c := range s.perAll {
		s.stats.All.Add(c)
	}
	for _, c := range s.perNoPrior {
		s.stats.NoPrior.Add(c)
	}
	for _, c := range s.perNonDNS {
		s.stats.NonDNS.Add(c)
	}
	s.stats.All.AddZeros(len(s.set) - len(s.perAll))
	s.stats.NoPrior.AddZeros(len(s.set) - len(s.perNoPrior))
	s.stats.NonDNS.AddZeros(len(s.set) - len(s.perNonDNS))
	clear(s.all)
	clear(s.noPrior)
	clear(s.nonDNS)
	clear(s.perAll)
	clear(s.perNoPrior)
	clear(s.perNonDNS)
}

// Feed processes one record. Records must arrive in time order.
func (s *PerHostAnalyzer) Feed(r *Record) error {
	if s.done {
		return fmt.Errorf("trace: analyzer already finished")
	}
	if r.Time < s.a.winStart {
		return fmt.Errorf("trace: out-of-order record at %d (window start %d)", r.Time, s.a.winStart)
	}
	for r.Time-s.a.winStart >= s.a.window {
		s.flush()
		s.a.winStart += s.a.window
	}
	s.a.observe(r)
	if !r.Outbound() {
		return nil
	}
	h := HostIndex(r.Src)
	if _, ok := s.set[h]; !ok {
		return nil
	}
	k := perHostKey{host: h, dst: r.Dst}
	if _, dup := s.all[k]; !dup {
		s.all[k] = struct{}{}
		s.perAll[h]++
	}
	np, nd := s.a.classify(r)
	if np {
		if _, dup := s.noPrior[k]; !dup {
			s.noPrior[k] = struct{}{}
			s.perNoPrior[h]++
		}
	}
	if nd {
		if _, dup := s.nonDNS[k]; !dup {
			s.nonDNS[k] = struct{}{}
			s.perNonDNS[h]++
		}
	}
	return nil
}

// Finish flushes the final window and returns the statistics.
func (s *PerHostAnalyzer) Finish() *ContactStats {
	if !s.done {
		s.flush()
		s.done = true
	}
	return s.stats
}

// StreamPerHost runs the per-host analysis over a serialized trace
// stream with constant memory.
func StreamPerHost(r io.Reader, hosts []int, window int64) (*ContactStats, error) {
	an, err := NewPerHostAnalyzer(hosts, window)
	if err != nil {
		return nil, err
	}
	if err := ReadFunc(r, an.Feed); err != nil {
		return nil, err
	}
	return an.Finish(), nil
}
