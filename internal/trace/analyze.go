package trace

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/ratelimit"
)

// Histogram is a distribution over non-negative integer counts with
// explicit accounting of zero samples, so quantiles over mostly-idle
// windows stay cheap.
type Histogram struct {
	counts map[int]int
	total  int
}

// Add records one sample.
func (h *Histogram) Add(v int) {
	if h.counts == nil {
		h.counts = make(map[int]int)
	}
	h.counts[v]++
	h.total++
}

// AddZeros records n zero samples.
func (h *Histogram) AddZeros(n int) {
	if n <= 0 {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int]int)
	}
	h.counts[0] += n
	h.total += n
}

// Total returns the number of samples.
func (h *Histogram) Total() int { return h.total }

// Mean returns the sample mean (NaN if empty).
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return math.NaN()
	}
	sum := 0
	for v, c := range h.counts {
		sum += v * c
	}
	return float64(sum) / float64(h.total)
}

// Max returns the largest sample (0 if empty).
func (h *Histogram) Max() int {
	max := 0
	for v := range h.counts {
		if v > max {
			max = v
		}
	}
	return max
}

// Quantile returns the smallest count v with P(X <= v) >= q — the rate
// limit that would leave a fraction q of windows unaffected. -1 for an
// empty histogram or q outside (0, 1].
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 || q <= 0 || q > 1 {
		return -1
	}
	keys := make([]int, 0, len(h.counts))
	for v := range h.counts {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	need := int(math.Ceil(q * float64(h.total)))
	cum := 0
	for _, v := range keys {
		cum += h.counts[v]
		if cum >= need {
			return v
		}
	}
	return keys[len(keys)-1]
}

// Points returns the (value, cumulative fraction) pairs of the CDF,
// value-ascending — the curves of Figure 9.
func (h *Histogram) Points() (xs []int, ps []float64) {
	keys := make([]int, 0, len(h.counts))
	for v := range h.counts {
		keys = append(keys, v)
	}
	sort.Ints(keys)
	cum := 0
	for _, v := range keys {
		cum += h.counts[v]
		xs = append(xs, v)
		ps = append(ps, float64(cum)/float64(h.total))
	}
	return xs, ps
}

// ContactStats holds the per-window contact-count distributions under
// the paper's three refinements: all distinct external destinations,
// those that did not initiate contact first, and those that in addition
// had no valid DNS translation.
type ContactStats struct {
	// Window is the window length in milliseconds.
	Window int64
	// All counts distinct external destinations per window.
	All Histogram
	// NoPrior excludes destinations that initiated contact with the
	// monitored network first.
	NoPrior Histogram
	// NonDNS further excludes destinations with a valid DNS translation
	// at contact time.
	NonDNS Histogram
}

// RecommendedLimits returns the q-quantile rate limits for the three
// refinements — e.g. q=0.999 reproduces the paper's "16 / 14 / 9 per
// five seconds" for normal clients.
func (s *ContactStats) RecommendedLimits(q float64) (all, noPrior, nonDNS int) {
	return s.All.Quantile(q), s.NoPrior.Quantile(q), s.NonDNS.Quantile(q)
}

// analyzer is the shared streaming state of an analysis pass.
type analyzer struct {
	window   int64
	winStart int64

	dnsCache  map[ratelimit.IP]int64 // external addr -> expiry time
	seenAny   map[ratelimit.IP]struct{}
	initiated map[ratelimit.IP]struct{} // externals whose first packet was inbound
}

func newAnalyzer(window int64) *analyzer {
	return &analyzer{
		window:    window,
		dnsCache:  make(map[ratelimit.IP]int64),
		seenAny:   make(map[ratelimit.IP]struct{}),
		initiated: make(map[ratelimit.IP]struct{}),
	}
}

// observe updates DNS and first-contact state for one record.
func (a *analyzer) observe(r *Record) {
	if r.IsDNSResponse() {
		if exp, ok := a.dnsCache[r.DNSAnswer]; !ok || r.Time+r.DNSTTL > exp {
			a.dnsCache[r.DNSAnswer] = r.Time + r.DNSTTL
		}
	}
	switch {
	case r.Inbound():
		if _, ok := a.seenAny[r.Src]; !ok {
			a.seenAny[r.Src] = struct{}{}
			a.initiated[r.Src] = struct{}{}
		}
	case r.Outbound():
		if _, ok := a.seenAny[r.Dst]; !ok {
			a.seenAny[r.Dst] = struct{}{}
		}
	}
}

// classify reports which refinements an outbound contact falls under.
func (a *analyzer) classify(r *Record) (noPrior, nonDNS bool) {
	if _, ok := a.initiated[r.Dst]; ok {
		return false, false
	}
	if exp, ok := a.dnsCache[r.Dst]; ok && r.Time <= exp {
		return true, false
	}
	return true, true
}

// hostSet is the filter of internal host indices under analysis.
type hostSet map[int]struct{}

func makeHostSet(hosts []int) hostSet {
	s := make(hostSet, len(hosts))
	for _, h := range hosts {
		s[h] = struct{}{}
	}
	return s
}

// AnalyzeAggregate measures the aggregate (edge-router view) contact
// counts of the given internal hosts per tumbling window: the union of
// distinct external destinations contacted by any of them. This is the
// measurement behind Figure 9 and the edge-router rate limits. The
// trace must be time-sorted.
func AnalyzeAggregate(t *Trace, hosts []int, window int64) (*ContactStats, error) {
	if window <= 0 {
		return nil, fmt.Errorf("trace: window %d must be positive", window)
	}
	set := makeHostSet(hosts)
	a := newAnalyzer(window)
	stats := &ContactStats{Window: window}

	all := make(map[ratelimit.IP]struct{})
	noPrior := make(map[ratelimit.IP]struct{})
	nonDNS := make(map[ratelimit.IP]struct{})
	flush := func() {
		stats.All.Add(len(all))
		stats.NoPrior.Add(len(noPrior))
		stats.NonDNS.Add(len(nonDNS))
		clear(all)
		clear(noPrior)
		clear(nonDNS)
	}

	for i := range t.Records {
		r := &t.Records[i]
		for r.Time-a.winStart >= window {
			flush()
			a.winStart += window
		}
		a.observe(r)
		if !r.Outbound() {
			continue
		}
		if _, ok := set[HostIndex(r.Src)]; !ok {
			continue
		}
		all[r.Dst] = struct{}{}
		np, nd := a.classify(r)
		if np {
			noPrior[r.Dst] = struct{}{}
		}
		if nd {
			nonDNS[r.Dst] = struct{}{}
		}
	}
	flush()
	return stats, nil
}

// AnalyzePerHost measures per-host contact counts: each sample is one
// (host, window) pair, including idle windows as zeros — the basis of
// the paper's per-host limits ("four unique IP addresses per five
// seconds ... one unique non-DNS-translated"). The trace must be
// time-sorted.
func AnalyzePerHost(t *Trace, hosts []int, window int64) (*ContactStats, error) {
	if window <= 0 {
		return nil, fmt.Errorf("trace: window %d must be positive", window)
	}
	set := makeHostSet(hosts)
	a := newAnalyzer(window)
	stats := &ContactStats{Window: window}

	type key struct {
		host int
		dst  ratelimit.IP
	}
	all := make(map[key]struct{})
	noPrior := make(map[key]struct{})
	nonDNS := make(map[key]struct{})
	perAll := make(map[int]int)
	perNoPrior := make(map[int]int)
	perNonDNS := make(map[int]int)
	windows := 0
	flush := func() {
		windows++
		for _, c := range perAll {
			stats.All.Add(c)
		}
		for _, c := range perNoPrior {
			stats.NoPrior.Add(c)
		}
		for _, c := range perNonDNS {
			stats.NonDNS.Add(c)
		}
		stats.All.AddZeros(len(set) - len(perAll))
		stats.NoPrior.AddZeros(len(set) - len(perNoPrior))
		stats.NonDNS.AddZeros(len(set) - len(perNonDNS))
		clear(all)
		clear(noPrior)
		clear(nonDNS)
		clear(perAll)
		clear(perNoPrior)
		clear(perNonDNS)
	}

	for i := range t.Records {
		r := &t.Records[i]
		for r.Time-a.winStart >= window {
			flush()
			a.winStart += window
		}
		a.observe(r)
		if !r.Outbound() {
			continue
		}
		h := HostIndex(r.Src)
		if _, ok := set[h]; !ok {
			continue
		}
		k := key{host: h, dst: r.Dst}
		if _, dup := all[k]; !dup {
			all[k] = struct{}{}
			perAll[h]++
		}
		np, nd := a.classify(r)
		if np {
			if _, dup := noPrior[k]; !dup {
				noPrior[k] = struct{}{}
				perNoPrior[h]++
			}
		}
		if nd {
			if _, dup := nonDNS[k]; !dup {
				nonDNS[k] = struct{}{}
				perNonDNS[h]++
			}
		}
	}
	flush()
	return stats, nil
}
