package trace

import (
	"strings"
	"testing"
)

func TestReadFuncMatchesRead(t *testing.T) {
	tr := handTrace()
	var b strings.Builder
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	var streamed []Record
	if err := ReadFunc(strings.NewReader(b.String()), func(r *Record) error {
		streamed = append(streamed, *r)
		return nil
	}); err != nil {
		t.Fatalf("ReadFunc: %v", err)
	}
	if len(streamed) != len(tr.Records) {
		t.Fatalf("streamed %d records, want %d", len(streamed), len(tr.Records))
	}
	for i := range streamed {
		if streamed[i] != tr.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestReadFuncAbortsOnCallbackError(t *testing.T) {
	tr := handTrace()
	var b strings.Builder
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	calls := 0
	err := ReadFunc(strings.NewReader(b.String()), func(r *Record) error {
		calls++
		if calls == 2 {
			return errStop
		}
		return nil
	})
	if err != errStop || calls != 2 {
		t.Errorf("err=%v calls=%d, want errStop after 2", err, calls)
	}
}

var errStop = &stopError{}

type stopError struct{}

func (*stopError) Error() string { return "stop" }

func TestReadFuncMalformed(t *testing.T) {
	if err := ReadFunc(strings.NewReader("1\t2\n"), func(*Record) error { return nil }); err == nil {
		t.Error("short line should fail")
	}
}

func TestStreamAggregateMatchesInMemory(t *testing.T) {
	tr := handTrace()
	want, err := AnalyzeAggregate(tr, []int{0}, 5*Second)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	got, err := StreamAggregate(strings.NewReader(b.String()), []int{0}, 5*Second)
	if err != nil {
		t.Fatalf("StreamAggregate: %v", err)
	}
	for q := 0.1; q <= 1.0; q += 0.1 {
		if got.All.Quantile(q) != want.All.Quantile(q) ||
			got.NoPrior.Quantile(q) != want.NoPrior.Quantile(q) ||
			got.NonDNS.Quantile(q) != want.NonDNS.Quantile(q) {
			t.Fatalf("stream and in-memory disagree at q=%v", q)
		}
	}
	if got.All.Total() != want.All.Total() {
		t.Errorf("window counts differ: %d vs %d", got.All.Total(), want.All.Total())
	}
}

func TestStreamAggregateOnGeneratedTrace(t *testing.T) {
	cfg := smallConfig(5 * Minute)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := AnalyzeAggregate(tr, cfg.HostsOfClass(ClassInfected), 5*Second)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	got, err := StreamAggregate(strings.NewReader(b.String()),
		cfg.HostsOfClass(ClassInfected), 5*Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.All.Quantile(0.999) != want.All.Quantile(0.999) {
		t.Errorf("P99.9 differs: %d vs %d", got.All.Quantile(0.999), want.All.Quantile(0.999))
	}
}

func TestStreamPerHostMatchesInMemory(t *testing.T) {
	tr := handTrace()
	want, err := AnalyzePerHost(tr, []int{0, 1}, 5*Second)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	got, err := StreamPerHost(strings.NewReader(b.String()), []int{0, 1}, 5*Second)
	if err != nil {
		t.Fatalf("StreamPerHost: %v", err)
	}
	if got.All.Total() != want.All.Total() {
		t.Fatalf("sample counts differ: %d vs %d", got.All.Total(), want.All.Total())
	}
	for q := 0.1; q <= 1.0; q += 0.1 {
		if got.All.Quantile(q) != want.All.Quantile(q) ||
			got.NonDNS.Quantile(q) != want.NonDNS.Quantile(q) {
			t.Fatalf("stream and in-memory per-host disagree at q=%v", q)
		}
	}
}

func TestPerHostAnalyzerErrors(t *testing.T) {
	if _, err := NewPerHostAnalyzer([]int{0}, 0); err == nil {
		t.Error("zero window should fail")
	}
	an, err := NewPerHostAnalyzer([]int{0}, 5*Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Feed(&Record{Time: 10 * Second}); err != nil {
		t.Fatal(err)
	}
	if err := an.Feed(&Record{Time: 1}); err == nil {
		t.Error("out-of-order record should fail")
	}
	an.Finish()
	if err := an.Feed(&Record{Time: 20 * Second}); err == nil {
		t.Error("feeding after Finish should fail")
	}
}

func TestAggregateAnalyzerErrors(t *testing.T) {
	if _, err := NewAggregateAnalyzer([]int{0}, 0); err == nil {
		t.Error("zero window should fail")
	}
	an, err := NewAggregateAnalyzer([]int{0}, 5*Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := an.Feed(&Record{Time: 10 * Second}); err != nil {
		t.Fatal(err)
	}
	if err := an.Feed(&Record{Time: 1}); err == nil {
		t.Error("out-of-order record should fail")
	}
	an.Finish()
	if err := an.Feed(&Record{Time: 20 * Second}); err == nil {
		t.Error("feeding after Finish should fail")
	}
	// Finish is idempotent.
	a := an.Finish()
	b := an.Finish()
	if a != b {
		t.Error("Finish should return the same stats")
	}
}
