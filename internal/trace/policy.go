package trace

import (
	"fmt"
	"sort"
)

// ClassLimit is one class's derived aggregate rate limit.
type ClassLimit struct {
	Class Class
	// Limit is the distinct-destination budget per window under the
	// chosen refinement.
	Limit int
	// Hosts is how many hosts the class holds.
	Hosts int
}

// Policy is the paper's "categorize systems and give them distinct rate
// limits" administrator model (§7): per-class aggregate limits derived
// from observed traffic, tightly restricting most systems while letting
// the pre-approved chatty ones (servers, P2P) run hotter.
type Policy struct {
	// Window is the measurement window in milliseconds.
	Window int64
	// Refinement is the contact classification the limits apply to.
	Refinement Refinement
	// Limits holds one entry per class that had any traffic.
	Limits []ClassLimit
}

// DerivePolicy classifies the hosts in a trace, measures each class's
// aggregate contact-rate distribution, and sets each class's limit at
// the given quantile (the paper uses 99.9%). Worm-infected hosts get no
// allowance: their limit is the normal-client limit, which is what
// quarantines them.
func DerivePolicy(t *Trace, window int64, ref Refinement, quantile float64) (*Policy, error) {
	if window <= 0 {
		return nil, fmt.Errorf("trace: window %d must be positive", window)
	}
	if quantile <= 0 || quantile > 1 {
		return nil, fmt.Errorf("trace: quantile %v out of (0,1]", quantile)
	}
	reports := Classify(t)
	byClass := make(map[Class][]int)
	for _, r := range reports {
		byClass[r.Class] = append(byClass[r.Class], r.Host)
	}
	pol := &Policy{Window: window, Refinement: ref}
	pick := func(s *ContactStats) int {
		switch ref {
		case RefNoPrior:
			return s.NoPrior.Quantile(quantile)
		case RefNonDNS:
			return s.NonDNS.Quantile(quantile)
		default:
			return s.All.Quantile(quantile)
		}
	}
	var normalLimit int
	for _, cl := range []Class{ClassNormal, ClassServer, ClassP2P} {
		hosts := byClass[cl]
		if len(hosts) == 0 {
			continue
		}
		sort.Ints(hosts)
		stats, err := AnalyzeAggregate(t, hosts, window)
		if err != nil {
			return nil, fmt.Errorf("trace: policy for %v: %w", cl, err)
		}
		limit := pick(stats)
		if limit < 1 {
			limit = 1
		}
		if cl == ClassNormal {
			normalLimit = limit
		}
		pol.Limits = append(pol.Limits, ClassLimit{Class: cl, Limit: limit, Hosts: len(hosts)})
	}
	// Infected hosts are not a legitimate class: they get the normal
	// clients' budget, i.e. the quarantine.
	if hosts := byClass[ClassInfected]; len(hosts) > 0 {
		if normalLimit < 1 {
			normalLimit = 1
		}
		pol.Limits = append(pol.Limits, ClassLimit{
			Class: ClassInfected, Limit: normalLimit, Hosts: len(hosts),
		})
	}
	if len(pol.Limits) == 0 {
		return nil, fmt.Errorf("trace: no classifiable traffic")
	}
	return pol, nil
}

// LimitFor returns the policy's limit for a class (ok=false if the
// class had no traffic when the policy was derived).
func (p *Policy) LimitFor(cl Class) (int, bool) {
	for _, l := range p.Limits {
		if l.Class == cl {
			return l.Limit, true
		}
	}
	return 0, false
}

// Evaluate replays the trace against the policy and reports the impact
// per class: how often each class's limit would have engaged. For
// legitimate classes this is the collateral damage; for the infected
// class it is the quarantine's bite.
func (p *Policy) Evaluate(t *Trace) (map[Class]Impact, error) {
	reports := Classify(t)
	byClass := make(map[Class][]int)
	for _, r := range reports {
		byClass[r.Class] = append(byClass[r.Class], r.Host)
	}
	out := make(map[Class]Impact, len(p.Limits))
	for _, l := range p.Limits {
		hosts := byClass[l.Class]
		if len(hosts) == 0 {
			continue
		}
		sort.Ints(hosts)
		im, err := EvaluateLimit(t, hosts, p.Window, l.Limit, p.Refinement)
		if err != nil {
			return nil, fmt.Errorf("trace: evaluate %v: %w", l.Class, err)
		}
		out[l.Class] = im
	}
	return out, nil
}
