package trace

import (
	"fmt"
	"math"
)

// Onset is a detected outbreak start.
type Onset struct {
	// Time is the start of the first window that tripped the detector.
	Time int64
	// Rate is that window's distinct-contact count.
	Rate int
	// Baseline is the trailing mean the detector compared against.
	Baseline float64
}

// DetectOnset finds the earliest window in which the aggregate
// distinct-contact rate of the given hosts jumps to at least factor ×
// the trailing mean (over the preceding history, with a minimum
// absolute rate floor to suppress cold-start noise). This is the signal
// an automated quarantine system would use to start the Section 6
// immunization clock: the gap between true worm onset and detected
// onset is the paper's delay d.
//
// Returns ok=false if no window trips the detector.
func DetectOnset(t *Trace, hosts []int, window int64, factor float64, minRate int) (Onset, bool, error) {
	if window <= 0 {
		return Onset{}, false, fmt.Errorf("trace: window %d must be positive", window)
	}
	if factor <= 1 {
		return Onset{}, false, fmt.Errorf("trace: factor %v must exceed 1", factor)
	}
	set := makeHostSet(hosts)
	a := newAnalyzer(window)
	counted := make(map[uint64]struct{})

	var (
		sum     float64
		windows int
	)
	flushCheck := func(winStart int64) (Onset, bool) {
		rate := len(counted)
		clear(counted)
		baseline := 0.0
		if windows > 0 {
			baseline = sum / float64(windows)
		}
		trip := windows >= 3 && rate >= minRate &&
			float64(rate) >= factor*math.Max(baseline, 1)
		sum += float64(rate)
		windows++
		if trip {
			return Onset{Time: winStart, Rate: rate, Baseline: baseline}, true
		}
		return Onset{}, false
	}

	for i := range t.Records {
		r := &t.Records[i]
		for r.Time-a.winStart >= window {
			if on, ok := flushCheck(a.winStart); ok {
				return on, true, nil
			}
			a.winStart += window
		}
		a.observe(r)
		if !r.Outbound() {
			continue
		}
		if _, ok := set[HostIndex(r.Src)]; !ok {
			continue
		}
		counted[uint64(r.Src)<<32|uint64(r.Dst)] = struct{}{}
	}
	if on, ok := flushCheck(a.winStart); ok {
		return on, true, nil
	}
	return Onset{}, false, nil
}
