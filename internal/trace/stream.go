package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/ratelimit"
	"repro/internal/worm"
)

// ReadFunc parses records serialized by WriteTo and invokes fn on each,
// without materializing the whole trace — the constant-memory path for
// multi-day traces. fn returning an error aborts the scan.
func ReadFunc(r io.Reader, fn func(*Record) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		rec, err := parseRecord(text)
		if err != nil {
			return fmt.Errorf("%w: line %d: %v", ErrBadRecord, line, err)
		}
		if err := fn(&rec); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("trace: read: %w", err)
	}
	return nil
}

// parseRecord parses one WriteTo line with per-field bounds checking:
// times and TTLs must fit non-negative int64, addresses 32 bits,
// protocol and flags 8 bits, ports 16 bits.
func parseRecord(text string) (Record, error) {
	fields := strings.Split(text, "\t")
	if len(fields) != 9 {
		return Record{}, fmt.Errorf("%d fields, want 9", len(fields))
	}
	bits := [9]int{63, 32, 32, 8, 16, 16, 8, 32, 63}
	var vals [9]uint64
	for i, f := range fields {
		v, err := strconv.ParseUint(f, 10, bits[i])
		if err != nil {
			return Record{}, fmt.Errorf("field %d: %v", i, err)
		}
		vals[i] = v
	}
	return Record{
		Time:      int64(vals[0]),
		Src:       ratelimit.IP(vals[1]),
		Dst:       ratelimit.IP(vals[2]),
		Proto:     worm.Proto(vals[3]),
		SrcPort:   uint16(vals[4]),
		DstPort:   uint16(vals[5]),
		Flags:     TCPFlag(vals[6]),
		DNSAnswer: ratelimit.IP(vals[7]),
		DNSTTL:    int64(vals[8]),
	}, nil
}

// AggregateAnalyzer is the incremental form of AnalyzeAggregate: feed
// time-ordered records one at a time, then call Finish. Useful for
// analyzing traces too large to hold in memory.
type AggregateAnalyzer struct {
	a     *analyzer
	set   hostSet
	stats *ContactStats

	all     map[ratelimit.IP]struct{}
	noPrior map[ratelimit.IP]struct{}
	nonDNS  map[ratelimit.IP]struct{}
	done    bool
}

// NewAggregateAnalyzer builds an incremental aggregate analyzer over
// the given internal hosts and window (milliseconds).
func NewAggregateAnalyzer(hosts []int, window int64) (*AggregateAnalyzer, error) {
	if window <= 0 {
		return nil, fmt.Errorf("trace: window %d must be positive", window)
	}
	return &AggregateAnalyzer{
		a:       newAnalyzer(window),
		set:     makeHostSet(hosts),
		stats:   &ContactStats{Window: window},
		all:     make(map[ratelimit.IP]struct{}),
		noPrior: make(map[ratelimit.IP]struct{}),
		nonDNS:  make(map[ratelimit.IP]struct{}),
	}, nil
}

func (s *AggregateAnalyzer) flush() {
	s.stats.All.Add(len(s.all))
	s.stats.NoPrior.Add(len(s.noPrior))
	s.stats.NonDNS.Add(len(s.nonDNS))
	clear(s.all)
	clear(s.noPrior)
	clear(s.nonDNS)
}

// Feed processes one record. Records must arrive in time order.
func (s *AggregateAnalyzer) Feed(r *Record) error {
	if s.done {
		return fmt.Errorf("trace: analyzer already finished")
	}
	if r.Time < s.a.winStart {
		return fmt.Errorf("trace: out-of-order record at %d (window start %d)", r.Time, s.a.winStart)
	}
	for r.Time-s.a.winStart >= s.a.window {
		s.flush()
		s.a.winStart += s.a.window
	}
	s.a.observe(r)
	if !r.Outbound() {
		return nil
	}
	if _, ok := s.set[HostIndex(r.Src)]; !ok {
		return nil
	}
	s.all[r.Dst] = struct{}{}
	np, nd := s.a.classify(r)
	if np {
		s.noPrior[r.Dst] = struct{}{}
	}
	if nd {
		s.nonDNS[r.Dst] = struct{}{}
	}
	return nil
}

// Finish flushes the final window and returns the statistics. The
// analyzer cannot be reused afterwards.
func (s *AggregateAnalyzer) Finish() *ContactStats {
	if !s.done {
		s.flush()
		s.done = true
	}
	return s.stats
}

// StreamAggregate runs the aggregate analysis directly over a
// serialized trace stream with constant memory.
func StreamAggregate(r io.Reader, hosts []int, window int64) (*ContactStats, error) {
	an, err := NewAggregateAnalyzer(hosts, window)
	if err != nil {
		return nil, err
	}
	if err := ReadFunc(r, an.Feed); err != nil {
		return nil, err
	}
	return an.Finish(), nil
}
