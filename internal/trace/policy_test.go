package trace

import "testing"

func TestDerivePolicy(t *testing.T) {
	cfg := smallConfig(15 * Minute)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := DerivePolicy(tr, 5*Second, RefAll, 0.999)
	if err != nil {
		t.Fatalf("DerivePolicy: %v", err)
	}
	normal, ok := pol.LimitFor(ClassNormal)
	if !ok || normal < 1 {
		t.Fatalf("normal limit = %d, ok=%v", normal, ok)
	}
	p2p, ok := pol.LimitFor(ClassP2P)
	if !ok {
		t.Fatal("p2p class missing from policy")
	}
	if p2p <= normal {
		t.Errorf("p2p limit %d should exceed normal %d (they are 'special')", p2p, normal)
	}
	// Infected hosts get the normal budget — the quarantine.
	worm, ok := pol.LimitFor(ClassInfected)
	if !ok || worm != normal {
		t.Errorf("infected limit = %d (ok=%v), want the normal budget %d", worm, ok, normal)
	}
}

func TestPolicyEvaluate(t *testing.T) {
	cfg := smallConfig(15 * Minute)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := DerivePolicy(tr, 5*Second, RefAll, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	impacts, err := pol.Evaluate(tr)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// Legitimate classes: within their own 99.9% quantile by
	// construction.
	for _, cl := range []Class{ClassNormal, ClassP2P} {
		im, ok := impacts[cl]
		if !ok {
			t.Fatalf("no impact entry for %v", cl)
		}
		if f := im.AffectedWindowFraction(); f > 0.002 {
			t.Errorf("%v affected fraction %v, want ~<=0.001", cl, f)
		}
	}
	// The worm class gets shredded.
	worm, ok := impacts[ClassInfected]
	if !ok {
		t.Fatal("no impact entry for infected")
	}
	if f := worm.BlockedContactFraction(); f < 0.5 {
		t.Errorf("quarantine blocks only %v of worm contacts", f)
	}
}

func TestDerivePolicyErrors(t *testing.T) {
	tr := handTrace()
	if _, err := DerivePolicy(tr, 0, RefAll, 0.999); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := DerivePolicy(tr, 5*Second, RefAll, 0); err == nil {
		t.Error("zero quantile should fail")
	}
	if _, err := DerivePolicy(&Trace{}, 5*Second, RefAll, 0.999); err == nil {
		t.Error("empty trace should fail")
	}
}

func TestDerivePolicyRefinements(t *testing.T) {
	cfg := smallConfig(10 * Minute)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all, err := DerivePolicy(tr, 5*Second, RefAll, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := DerivePolicy(tr, 5*Second, RefNonDNS, 0.999)
	if err != nil {
		t.Fatal(err)
	}
	la, _ := all.LimitFor(ClassNormal)
	ln, _ := nd.LimitFor(ClassNormal)
	if ln > la {
		t.Errorf("non-DNS limit %d should not exceed all-contacts limit %d", ln, la)
	}
	if _, ok := all.LimitFor(Class(9)); ok {
		t.Error("unknown class should not resolve")
	}
}
