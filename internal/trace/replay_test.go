package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/worm"
)

func TestWormFlow(t *testing.T) {
	cases := []struct {
		name string
		rec  Record
		want bool
	}{
		{"blaster syn", Record{Proto: worm.ProtoTCP, DstPort: 135, Flags: FlagSYN}, true},
		{"port 135 established", Record{Proto: worm.ProtoTCP, DstPort: 135, Flags: FlagACK}, false},
		{"web", Record{Proto: worm.ProtoTCP, DstPort: 80, Flags: FlagSYN}, false},
		{"welchia ping", Record{Proto: worm.ProtoICMP}, true},
		{"dns", Record{Proto: worm.ProtoUDP, DstPort: 53}, false},
	}
	for _, c := range cases {
		if got := WormFlow(&c.rec); got != c.want {
			t.Errorf("%s: WormFlow = %v, want %v", c.name, got, c.want)
		}
	}
}

// testGen is a small four-class profile shared by the replay tests.
func testGen(duration int64) GenConfig {
	return GenConfig{
		Duration:        duration,
		Seed:            42,
		NormalClients:   8,
		Servers:         2,
		P2PClients:      2,
		Infected:        2,
		BlasterFraction: 0.5,
	}
}

// drain consumes every tick of a replayer, returning a deep copy of
// each tick's batch.
func drain(t *testing.T, r *Replayer, ticks int) [][]Contact {
	t.Helper()
	out := make([][]Contact, ticks)
	for tick := 0; tick < ticks; tick++ {
		batch, err := r.Contacts(tick)
		if err != nil {
			t.Fatalf("tick %d: %v", tick, err)
		}
		out[tick] = append([]Contact(nil), batch...)
	}
	return out
}

// TestRecordReplayerRoundTrip: streaming a serialized trace through
// NewRecordReplayer must reproduce, tick by tick, exactly the contacts
// a whole-trace pass over the records computes.
func TestRecordReplayerRoundTrip(t *testing.T) {
	cfg := testGen(2 * Minute)
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	const msPerTick = int64(1000)
	ticks := int(cfg.Duration / msPerTick)
	want := make([][]Contact, ticks)
	for i := range tr.Records {
		rec := &tr.Records[i]
		h := HostIndex(rec.Src)
		if h < 0 {
			continue
		}
		tick := int(rec.Time / msPerTick)
		if tick >= ticks {
			continue
		}
		want[tick] = append(want[tick], Contact{Host: int32(h), Dst: rec.Dst, Worm: WormFlow(rec)})
	}

	rp, err := NewRecordReplayer(&buf, msPerTick)
	if err != nil {
		t.Fatal(err)
	}
	got := drain(t, rp, ticks)
	for tick := range want {
		// Records arrive time-ordered; the replayer re-groups each tick
		// by host (stable), so compare against the same grouping.
		w := append([]Contact(nil), want[tick]...)
		stableByHost(w)
		g := got[tick]
		if len(g) == 0 && len(w) == 0 {
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Fatalf("tick %d: replayed contacts diverge from the whole-trace pass\n got %v\nwant %v", tick, g, w)
		}
	}
}

// stableByHost mirrors the replayer's canonical batch order.
func stableByHost(cs []Contact) {
	// insertion sort: stable and tiny inputs only (test helper)
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j-1].Host > cs[j].Host; j-- {
			cs[j-1], cs[j] = cs[j], cs[j-1]
		}
	}
}

func TestRecordReplayerRejectsTimeDisorder(t *testing.T) {
	// Two internal-source TCP SYNs (WriteTo's numeric format) with the
	// second record 1s earlier than the first.
	trace := "5000\t167772161\t16909060\t1\t1000\t80\t1\t0\t0\n" +
		"4000\t167772161\t16909060\t1\t1001\t80\t1\t0\t0\n"
	rp, err := NewRecordReplayer(strings.NewReader(trace), 1000)
	if err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for tick := 0; tick < 10; tick++ {
		if _, firstErr = rp.Contacts(tick); firstErr != nil {
			break
		}
	}
	if firstErr == nil {
		t.Fatal("time-disordered trace replayed without error")
	}
}

func TestReplayerTickOrder(t *testing.T) {
	rp, err := NewSyntheticReplayer(testGen(Minute), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rp.Contacts(1); err == nil {
		t.Error("starting at tick 1 accepted; stream begins at 0")
	}
	if _, err := rp.Contacts(0); err != nil {
		t.Fatal(err)
	}
	if _, err := rp.Contacts(0); err == nil {
		t.Error("repeating tick 0 accepted; batches are not replayable")
	}
	if _, err := rp.Contacts(2); err == nil {
		t.Error("skipping tick 1 accepted; ticks must be successive")
	}
}

// TestReplayerSkip: Skip(n) on a fresh stream must land exactly where
// n Contacts calls land, and report the same cumulative contact count —
// the invariant checkpoint restore relies on.
func TestReplayerSkip(t *testing.T) {
	cfg := testGen(2 * Minute)
	a, err := NewSyntheticReplayer(cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSyntheticReplayer(cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	const cut = 45
	var consumed int64
	for tick := 0; tick < cut; tick++ {
		batch, err := a.Contacts(tick)
		if err != nil {
			t.Fatal(err)
		}
		consumed += int64(len(batch))
	}
	skipped, err := b.Skip(cut)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != consumed {
		t.Fatalf("Skip(%d) skipped %d contacts; consuming tick-by-tick saw %d", cut, skipped, consumed)
	}
	ba, err := a.Contacts(cut)
	if err != nil {
		t.Fatal(err)
	}
	ga := append([]Contact(nil), ba...)
	bb, err := b.Contacts(cut)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ga, append([]Contact(nil), bb...)) {
		t.Fatalf("tick %d after Skip diverges from tick-by-tick stream", cut)
	}
	if _, err := b.Skip(cut); err == nil {
		t.Error("skipping backwards accepted")
	}
}

// TestSyntheticReplayerDeterminism: two streams from the same config
// must be byte-identical — the property snapshot restore depends on.
func TestSyntheticReplayerDeterminism(t *testing.T) {
	cfg := testGen(90 * Second)
	a, err := NewSyntheticReplayer(cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSyntheticReplayer(cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ticks := int(cfg.Duration / 1000)
	if !reflect.DeepEqual(drain(t, a, ticks), drain(t, b, ticks)) {
		t.Fatal("two synthetic streams from the same config diverged")
	}
}

// TestSyntheticReplayerProfile: class behaviour sanity — worm contacts
// come only from infected hosts, every class generates benign load, and
// the worm's local-preference share targets internal hosts.
func TestSyntheticReplayerProfile(t *testing.T) {
	cfg := testGen(5 * Minute)
	rp, err := NewSyntheticReplayer(cfg, 1000)
	if err != nil {
		t.Fatal(err)
	}
	var benign, wormN, wormInternal int
	for _, batch := range drain(t, rp, int(cfg.Duration/1000)) {
		for _, c := range batch {
			if c.Worm {
				if cfg.HostClass(int(c.Host)) != ClassInfected {
					t.Fatalf("worm contact from host %d of class %v", c.Host, cfg.HostClass(int(c.Host)))
				}
				wormN++
				if Internal(c.Dst) {
					wormInternal++
				}
			} else {
				benign++
			}
		}
	}
	if benign == 0 || wormN == 0 {
		t.Fatalf("degenerate profile: %d benign, %d worm contacts", benign, wormN)
	}
	if wormInternal == 0 {
		t.Error("no internal worm scans; the local-preference sweep is dead")
	}
	frac := float64(wormInternal) / float64(wormN)
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("internal worm share %.2f far from wormLocalPref %.2f", frac, wormLocalPref)
	}
}

// TestReplayerConstantMemory is the streaming guarantee: per-tick
// allocations must not grow with trace length. A 3-hour stream must
// cost the same per tick as a 10-minute stream — the look-ahead window
// is bounded by one generator event horizon, not by the trace.
func TestReplayerConstantMemory(t *testing.T) {
	perTick := func(duration int64) float64 {
		rp, err := NewSyntheticReplayer(testGen(duration), 1000)
		if err != nil {
			t.Fatal(err)
		}
		tick := 0
		// Warm-up lets the batch and look-ahead buffers reach steady
		// state before measuring.
		for ; tick < 60; tick++ {
			if _, err := rp.Contacts(tick); err != nil {
				t.Fatal(err)
			}
		}
		var ferr error
		avg := testing.AllocsPerRun(120, func() {
			if ferr != nil {
				return
			}
			_, ferr = rp.Contacts(tick)
			tick++
		})
		if ferr != nil {
			t.Fatal(ferr)
		}
		return avg
	}
	short := perTick(10 * Minute)
	long := perTick(3 * Hour)
	if long > 2*short+8 {
		t.Errorf("per-tick allocations scale with trace length: %.1f (3h) vs %.1f (10m)", long, short)
	}
}

func BenchmarkReplayTick(b *testing.B) {
	cfg := testGen(24 * Hour)
	rp, err := NewSyntheticReplayer(cfg, 1000)
	if err != nil {
		b.Fatal(err)
	}
	maxTick := int(cfg.Duration / 1000)
	tick := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tick == maxTick {
			b.StopTimer()
			if rp, err = NewSyntheticReplayer(cfg, 1000); err != nil {
				b.Fatal(err)
			}
			tick = 0
			b.StartTimer()
		}
		if _, err := rp.Contacts(tick); err != nil {
			b.Fatal(err)
		}
		tick++
	}
}
