package trace

import "testing"

func TestDetectOnsetFindsDelayedWorm(t *testing.T) {
	cfg := smallConfig(12 * Minute)
	cfg.WormOnset = 6 * Minute
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, cfg.NumHosts())
	for i := range all {
		all[i] = i
	}
	on, ok, err := DetectOnset(tr, all, 30*Second, 3, 50)
	if err != nil {
		t.Fatalf("DetectOnset: %v", err)
	}
	if !ok {
		t.Fatal("worm onset not detected")
	}
	// Detection should land at or shortly after the true onset — the
	// gap is the paper's immunization delay d.
	if on.Time < cfg.WormOnset-30*Second {
		t.Errorf("detected at %d, before true onset %d", on.Time, cfg.WormOnset)
	}
	if on.Time > cfg.WormOnset+2*Minute {
		t.Errorf("detected at %d, too long after onset %d", on.Time, cfg.WormOnset)
	}
	if float64(on.Rate) < 3*on.Baseline {
		t.Errorf("trip rate %d vs baseline %v inconsistent", on.Rate, on.Baseline)
	}
}

func TestDetectOnsetQuietTrace(t *testing.T) {
	cfg := smallConfig(10 * Minute)
	cfg.Infected = 0 // no worms at all
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, cfg.NumHosts())
	for i := range all {
		all[i] = i
	}
	_, ok, err := DetectOnset(tr, all, 30*Second, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("quiet trace should not trip the detector")
	}
}

func TestDetectOnsetErrors(t *testing.T) {
	tr := handTrace()
	if _, _, err := DetectOnset(tr, []int{0}, 0, 3, 5); err == nil {
		t.Error("zero window should fail")
	}
	if _, _, err := DetectOnset(tr, []int{0}, 5*Second, 1, 5); err == nil {
		t.Error("factor <= 1 should fail")
	}
}
