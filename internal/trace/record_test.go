package trace

import (
	"strings"
	"testing"

	"repro/internal/worm"
)

func TestInternalAddressing(t *testing.T) {
	if !Internal(HostIP(0)) || !Internal(HostIP(1127)) {
		t.Error("host IPs should be internal")
	}
	if Internal(0x08080808) {
		t.Error("8.8.8.8 should be external")
	}
	if got := HostIndex(HostIP(42)); got != 42 {
		t.Errorf("HostIndex = %d, want 42", got)
	}
	if got := HostIndex(0x08080808); got != -1 {
		t.Errorf("external HostIndex = %d, want -1", got)
	}
}

func TestRecordDirection(t *testing.T) {
	out := Record{Src: HostIP(1), Dst: 0x08080808}
	if !out.Outbound() || out.Inbound() {
		t.Error("outbound record misclassified")
	}
	in := Record{Src: 0x08080808, Dst: HostIP(1)}
	if !in.Inbound() || in.Outbound() {
		t.Error("inbound record misclassified")
	}
	internal := Record{Src: HostIP(1), Dst: HostIP(2)}
	if internal.Inbound() || internal.Outbound() {
		t.Error("internal record should be neither")
	}
}

func TestIsDNSResponse(t *testing.T) {
	r := Record{Proto: worm.ProtoUDP, SrcPort: 53, DNSAnswer: 5}
	if !r.IsDNSResponse() {
		t.Error("DNS response not recognized")
	}
	r.DNSAnswer = 0
	if r.IsDNSResponse() {
		t.Error("response without answer should not count")
	}
	q := Record{Proto: worm.ProtoUDP, DstPort: 53}
	if q.IsDNSResponse() {
		t.Error("query should not count")
	}
}

func TestTraceSortAndDuration(t *testing.T) {
	tr := &Trace{Records: []Record{{Time: 5}, {Time: 1}, {Time: 3}}}
	tr.Sort()
	if tr.Records[0].Time != 1 || tr.Records[2].Time != 5 {
		t.Error("sort failed")
	}
	if tr.Duration() != 5 {
		t.Errorf("Duration = %d, want 5", tr.Duration())
	}
	if (&Trace{}).Duration() != 0 {
		t.Error("empty trace duration should be 0")
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{Records: []Record{
		{Time: 1, Src: HostIP(0), Dst: 0x08080808, Proto: worm.ProtoTCP,
			SrcPort: 30000, DstPort: 80, Flags: FlagSYN},
		{Time: 2, Src: 0x01020304, Dst: HostIP(3), Proto: worm.ProtoUDP,
			SrcPort: 53, DstPort: 32768, DNSAnswer: 0x05060708, DNSTTL: 60000},
		{Time: 3, Src: HostIP(9), Dst: 0x0B0C0D0E, Proto: worm.ProtoICMP},
	}}
	var b strings.Builder
	if _, err := tr.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip lost records: %d vs %d", len(got.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d: got %+v want %+v", i, got.Records[i], tr.Records[i])
		}
	}
}

func TestReadMalformed(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"too few fields", "1\t2\t3\n"},
		{"non-numeric", "1\t2\t3\tx\t5\t6\t7\t8\t9\n"},
		{"negative", "-1\t2\t3\t4\t5\t6\t7\t8\t9\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Read(strings.NewReader(tt.in)); err == nil {
				t.Error("want parse error")
			}
		})
	}
	// Blank lines are tolerated.
	got, err := Read(strings.NewReader("\n\n1\t2\t3\t1\t5\t6\t0\t0\t0\n\n"))
	if err != nil || len(got.Records) != 1 {
		t.Errorf("blank lines: %v, %d records", err, len(got.Records))
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != -1 {
		t.Error("empty histogram quantile should be -1")
	}
	for _, v := range []int{1, 2, 2, 3, 10} {
		h.Add(v)
	}
	if h.Total() != 5 || h.Max() != 10 {
		t.Errorf("Total=%d Max=%d", h.Total(), h.Max())
	}
	if got := h.Mean(); got != 18.0/5 {
		t.Errorf("Mean = %v", got)
	}
	if h.Quantile(0.5) != 2 || h.Quantile(1) != 10 || h.Quantile(0.2) != 1 {
		t.Errorf("quantiles wrong: %d %d %d", h.Quantile(0.5), h.Quantile(1), h.Quantile(0.2))
	}
	h.AddZeros(5)
	if h.Total() != 10 || h.Quantile(0.5) != 0 || h.Quantile(0.6) != 1 {
		t.Errorf("after zeros: total=%d q50=%d q60=%d",
			h.Total(), h.Quantile(0.5), h.Quantile(0.6))
	}
	h.AddZeros(-3) // no-op
	if h.Total() != 10 {
		t.Error("negative AddZeros should be ignored")
	}
	xs, ps := h.Points()
	if len(xs) == 0 || xs[0] != 0 || ps[len(ps)-1] != 1 {
		t.Errorf("points: %v %v", xs, ps)
	}
	if h.Quantile(0) != -1 || h.Quantile(1.5) != -1 {
		t.Error("bad q should be -1")
	}
}
