// Package trace provides the Section 7 case-study substrate: flow
// records in the shape of the paper's anonymized campus traces, a
// synthetic generator for the four observed host classes (normal
// desktop clients, servers, peer-to-peer clients, and Blaster/Welchia-
// infected machines) calibrated to the published contact-rate
// percentiles, an analyzer that measures contact-rate CDFs under the
// paper's three refinements, classifies hosts, detects the two worms,
// and derives practical rate limits — and a streaming replay adapter
// (Replayer, NewRecordReplayer, NewSyntheticReplayer) that buckets a
// record stream into engine ticks so the simulator can be driven by
// trace traffic instead of β draws, with benign flows competing for
// the same rate-limiter credits as worm scans (DESIGN.md §17).
//
// The real traces (23 days from CMU ECE's edge router, August 15 –
// September 7, 2003) are not available; the generator synthesizes
// traffic whose analyzer-visible statistics match the numbers the paper
// reports, which is the part of the data the paper's conclusions rest
// on. See DESIGN.md for the substitution argument.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/ratelimit"
	"repro/internal/worm"
)

// Millisecond time units used throughout the package.
const (
	Second = int64(1000)
	Minute = 60 * Second
	Hour   = 60 * Minute
	Day    = 24 * Hour
)

// InternalPrefix is the anonymized address block of the monitored
// network: addresses with this upper half are "inside". The monitored
// subnet holds 1128 hosts in the paper.
const InternalPrefix = ratelimit.IP(0x0A000000)

// InternalMask selects the prefix bits of InternalPrefix.
const InternalMask = ratelimit.IP(0xFFFF0000)

// Internal reports whether addr belongs to the monitored network.
func Internal(addr ratelimit.IP) bool {
	return addr&InternalMask == InternalPrefix
}

// HostIP returns the internal address of host index i.
func HostIP(i int) ratelimit.IP {
	return InternalPrefix | ratelimit.IP(i&0xFFFF)
}

// HostIndex inverts HostIP (-1 for external addresses).
func HostIndex(addr ratelimit.IP) int {
	if !Internal(addr) {
		return -1
	}
	return int(addr &^ InternalMask)
}

// TCPFlag bits recorded for TCP packets.
type TCPFlag uint8

// TCP header flags.
const (
	FlagSYN TCPFlag = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

// Record is one observed packet/flow event at the edge router. The
// paper's traces recorded IP and transport headers plus full DNS
// contents; DNSAnswer carries the resolved address for DNS responses so
// the analyzer can rebuild per-host DNS caches.
type Record struct {
	// Time is milliseconds since trace start.
	Time int64
	// Src and Dst are anonymized IPv4 addresses.
	Src, Dst ratelimit.IP
	// Proto is the transport (or ICMP).
	Proto worm.Proto
	// SrcPort and DstPort are transport ports (0 for ICMP).
	SrcPort, DstPort uint16
	// Flags carries TCP flags (TCP only).
	Flags TCPFlag
	// DNSAnswer is the address resolved by a DNS response (records with
	// SrcPort 53 and a non-zero answer), with DNSTTL milliseconds of
	// validity.
	DNSAnswer ratelimit.IP
	// DNSTTL is the answer's validity in milliseconds.
	DNSTTL int64
}

// IsDNSResponse reports whether the record is a DNS response carrying
// an answer.
func (r *Record) IsDNSResponse() bool {
	return r.Proto == worm.ProtoUDP && r.SrcPort == 53 && r.DNSAnswer != 0
}

// Outbound reports whether the record leaves the monitored network.
func (r *Record) Outbound() bool { return Internal(r.Src) && !Internal(r.Dst) }

// Inbound reports whether the record enters the monitored network.
func (r *Record) Inbound() bool { return !Internal(r.Src) && Internal(r.Dst) }

// Trace is a time-ordered sequence of records.
type Trace struct {
	Records []Record
}

// Sort orders the records by time (stable, so same-timestamp records
// keep generation order).
func (t *Trace) Sort() {
	sort.SliceStable(t.Records, func(i, j int) bool {
		return t.Records[i].Time < t.Records[j].Time
	})
}

// Duration returns the time of the last record (0 for an empty trace).
func (t *Trace) Duration() int64 {
	if len(t.Records) == 0 {
		return 0
	}
	return t.Records[len(t.Records)-1].Time
}

// ErrBadRecord reports a malformed serialized record.
var ErrBadRecord = errors.New("trace: malformed record")

// WriteTo serializes the trace as tab-separated text, one record per
// line: time src dst proto sport dport flags dnsAnswer dnsTTL.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for i := range t.Records {
		r := &t.Records[i]
		c, err := fmt.Fprintf(bw, "%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Time, uint32(r.Src), uint32(r.Dst), r.Proto, r.SrcPort, r.DstPort,
			r.Flags, uint32(r.DNSAnswer), r.DNSTTL)
		n += int64(c)
		if err != nil {
			return n, fmt.Errorf("trace: write record %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("trace: flush: %w", err)
	}
	return n, nil
}

// Read parses a trace serialized by WriteTo, materializing every
// record. For constant-memory processing of large traces use ReadFunc
// or StreamAggregate.
func Read(r io.Reader) (*Trace, error) {
	t := &Trace{}
	if err := ReadFunc(r, func(rec *Record) error {
		t.Records = append(t.Records, *rec)
		return nil
	}); err != nil {
		return nil, err
	}
	return t, nil
}
