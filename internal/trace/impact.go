package trace

import (
	"fmt"

	"repro/internal/ratelimit"
)

// Refinement selects which contacts count against a rate limit.
type Refinement uint8

// The paper's three contact classifications (Figure 9's three lines).
const (
	// RefAll counts every distinct destination (Williamson's throttle).
	RefAll Refinement = iota
	// RefNoPrior exempts destinations that initiated contact first.
	RefNoPrior
	// RefNonDNS additionally exempts destinations with a valid DNS
	// translation (Ganger's scheme).
	RefNonDNS
)

// String implements fmt.Stringer.
func (r Refinement) String() string {
	switch r {
	case RefAll:
		return "all"
	case RefNoPrior:
		return "no-prior"
	case RefNonDNS:
		return "non-DNS"
	default:
		return fmt.Sprintf("Refinement(%d)", uint8(r))
	}
}

// Impact reports what a concrete rate limit would have done to the
// given hosts' traffic in a trace: the fraction of windows in which the
// limit would have engaged (delaying or blocking something) and the
// fraction of counted contacts that exceeded the budget.
type Impact struct {
	// Windows is the number of windows observed.
	Windows int
	// AffectedWindows is the number of windows whose counted distinct
	// contacts exceeded the limit.
	AffectedWindows int
	// Contacts is the number of counted (limit-relevant) distinct
	// contacts.
	Contacts int
	// BlockedContacts is how many of them were over budget.
	BlockedContacts int
}

// AffectedWindowFraction returns AffectedWindows/Windows (0 if none).
func (im Impact) AffectedWindowFraction() float64 {
	if im.Windows == 0 {
		return 0
	}
	return float64(im.AffectedWindows) / float64(im.Windows)
}

// BlockedContactFraction returns BlockedContacts/Contacts (0 if none).
func (im Impact) BlockedContactFraction() float64 {
	if im.Contacts == 0 {
		return 0
	}
	return float64(im.BlockedContacts) / float64(im.Contacts)
}

// EvaluateLimit replays the aggregate outbound traffic of the given
// hosts against a limit of `limit` distinct destinations per window
// under the given refinement, and reports the impact. Running it over
// a class of legitimate hosts quantifies the collateral damage of a
// proposed limit ("16 per five seconds would almost never affect
// legitimate traffic"); over the infected hosts, its bite on the worm.
func EvaluateLimit(t *Trace, hosts []int, window int64, limit int, ref Refinement) (Impact, error) {
	if window <= 0 {
		return Impact{}, fmt.Errorf("trace: window %d must be positive", window)
	}
	if limit < 0 {
		return Impact{}, fmt.Errorf("trace: limit %d must be >= 0", limit)
	}
	set := makeHostSet(hosts)
	a := newAnalyzer(window)
	var im Impact
	counted := make(map[ratelimit.IP]struct{})
	flush := func() {
		im.Windows++
		n := len(counted)
		im.Contacts += n
		if n > limit {
			im.AffectedWindows++
			im.BlockedContacts += n - limit
		}
		clear(counted)
	}
	for i := range t.Records {
		r := &t.Records[i]
		for r.Time-a.winStart >= window {
			flush()
			a.winStart += window
		}
		a.observe(r)
		if !r.Outbound() {
			continue
		}
		if _, ok := set[HostIndex(r.Src)]; !ok {
			continue
		}
		np, nd := a.classify(r)
		switch ref {
		case RefAll:
		case RefNoPrior:
			if !np {
				continue
			}
		case RefNonDNS:
			if !nd {
				continue
			}
		default:
			return Impact{}, fmt.Errorf("trace: unknown refinement %d", ref)
		}
		counted[r.Dst] = struct{}{}
	}
	flush()
	return im, nil
}
