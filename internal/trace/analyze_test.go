package trace

import (
	"testing"

	"repro/internal/ratelimit"
	"repro/internal/worm"
)

// handTrace builds a fully deterministic trace for exact analyzer
// expectations (window = 5 s):
//
//	w0: host0 contacts ext1 (DNS-valid), ext2 (which contacted us
//	    first), ext3 (fresh, non-DNS)      -> all=3 noPrior=2 nonDNS=1
//	w1: host0 contacts ext3 again          -> all=1 noPrior=1 nonDNS=1
//	w2, w3: idle                           -> zeros
//	w4: host0 contacts ext1 after its DNS entry expired
//	                                       -> all=1 noPrior=1 nonDNS=1
func handTrace() *Trace {
	const (
		ext1     = ratelimit.IP(0x08080801)
		ext2     = ratelimit.IP(0x08080802)
		ext3     = ratelimit.IP(0x08080803)
		upstream = ratelimit.IP(0x08080844)
	)
	h0 := HostIP(0)
	return &Trace{Records: []Record{
		// DNS response for ext1, valid until t=10000.
		{Time: 0, Src: upstream, Dst: HostIP(1), Proto: worm.ProtoUDP,
			SrcPort: 53, DstPort: 32768, DNSAnswer: ext1, DNSTTL: 10 * Second},
		{Time: 1000, Src: h0, Dst: ext1, Proto: worm.ProtoTCP, DstPort: 80, Flags: FlagSYN},
		{Time: 2000, Src: ext2, Dst: h0, Proto: worm.ProtoTCP, SrcPort: 80, Flags: FlagSYN},
		{Time: 3000, Src: h0, Dst: ext2, Proto: worm.ProtoTCP, DstPort: 80, Flags: FlagACK},
		{Time: 4000, Src: h0, Dst: ext3, Proto: worm.ProtoTCP, DstPort: 80, Flags: FlagSYN},
		{Time: 6000, Src: h0, Dst: ext3, Proto: worm.ProtoTCP, DstPort: 80, Flags: FlagSYN},
		{Time: 20000, Src: h0, Dst: ext1, Proto: worm.ProtoTCP, DstPort: 80, Flags: FlagSYN},
	}}
}

// histToSlice reconstructs value->count pairs from a histogram's CDF
// points.
func histToSlice(h *Histogram) map[int]int {
	out := make(map[int]int)
	xs, ps := h.Points()
	cum := 0
	for i, x := range xs {
		c := int(ps[i]*float64(h.Total()) + 0.5)
		out[x] = c - cum
		cum = c
	}
	return out
}

func TestAnalyzeAggregateHandTrace(t *testing.T) {
	stats, err := AnalyzeAggregate(handTrace(), []int{0}, 5*Second)
	if err != nil {
		t.Fatalf("AnalyzeAggregate: %v", err)
	}
	// 5 windows total (0..4).
	if got := stats.All.Total(); got != 5 {
		t.Fatalf("windows = %d, want 5", got)
	}
	all := histToSlice(&stats.All)
	if all[3] != 1 || all[1] != 2 || all[0] != 2 {
		t.Errorf("all histogram = %v, want {3:1, 1:2, 0:2}", all)
	}
	noPrior := histToSlice(&stats.NoPrior)
	if noPrior[2] != 1 || noPrior[1] != 2 || noPrior[0] != 2 {
		t.Errorf("noPrior histogram = %v, want {2:1, 1:2, 0:2}", noPrior)
	}
	nonDNS := histToSlice(&stats.NonDNS)
	if nonDNS[1] != 3 || nonDNS[0] != 2 {
		t.Errorf("nonDNS histogram = %v, want {1:3, 0:2}", nonDNS)
	}
}

func TestAnalyzeAggregateHostFilter(t *testing.T) {
	// Analyzing a different host sees nothing.
	stats, err := AnalyzeAggregate(handTrace(), []int{5}, 5*Second)
	if err != nil {
		t.Fatal(err)
	}
	if stats.All.Max() != 0 {
		t.Errorf("filtered analysis saw contacts: max=%d", stats.All.Max())
	}
}

func TestAnalyzeBadWindow(t *testing.T) {
	if _, err := AnalyzeAggregate(handTrace(), []int{0}, 0); err == nil {
		t.Error("zero window should fail")
	}
	if _, err := AnalyzePerHost(handTrace(), []int{0}, -5); err == nil {
		t.Error("negative window should fail")
	}
}

func TestAnalyzePerHostHandTrace(t *testing.T) {
	stats, err := AnalyzePerHost(handTrace(), []int{0, 1}, 5*Second)
	if err != nil {
		t.Fatalf("AnalyzePerHost: %v", err)
	}
	// 5 windows x 2 hosts = 10 samples; host 1 contributes only zeros.
	if got := stats.All.Total(); got != 10 {
		t.Fatalf("samples = %d, want 10", got)
	}
	all := histToSlice(&stats.All)
	if all[3] != 1 || all[1] != 2 || all[0] != 7 {
		t.Errorf("per-host all = %v, want {3:1, 1:2, 0:7}", all)
	}
	if stats.NonDNS.Max() != 1 {
		t.Errorf("per-host nonDNS max = %d, want 1", stats.NonDNS.Max())
	}
}

func TestRecommendedLimits(t *testing.T) {
	stats, err := AnalyzeAggregate(handTrace(), []int{0}, 5*Second)
	if err != nil {
		t.Fatal(err)
	}
	all, noPrior, nonDNS := stats.RecommendedLimits(1.0)
	if all != 3 || noPrior != 2 || nonDNS != 1 {
		t.Errorf("limits = %d/%d/%d, want 3/2/1", all, noPrior, nonDNS)
	}
}

func TestClassDescriptions(t *testing.T) {
	tests := []struct {
		c    Class
		want string
	}{
		{ClassNormal, "normal"}, {ClassServer, "server"},
		{ClassP2P, "p2p"}, {ClassInfected, "infected"}, {Class(9), "Class(9)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.c, got, tt.want)
		}
	}
	for _, tt := range []struct {
		w    WormKind
		want string
	}{
		{WormNone, "none"}, {WormBlaster, "blaster"}, {WormWelchia, "welchia"}, {WormKind(9), "worm?"},
	} {
		if got := tt.w.String(); got != tt.want {
			t.Errorf("WormKind(%d).String() = %q, want %q", tt.w, got, tt.want)
		}
	}
}
