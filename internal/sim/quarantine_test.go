package sim

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
	"repro/internal/worm"
)

func TestQuarantineValidation(t *testing.T) {
	cfg := baseConfig(t, 60)
	cfg.Quarantine = &Quarantine{}
	if err := cfg.Validate(); err == nil {
		t.Error("quarantine without trigger should fail")
	}
	cfg.Quarantine = &Quarantine{TriggerLevel: 2}
	if err := cfg.Validate(); err == nil {
		t.Error("trigger level > 1 should fail")
	}
	cfg.Quarantine = &Quarantine{TriggerLevel: 0.1, Delay: -1}
	if err := cfg.Validate(); err == nil {
		t.Error("negative delay should fail")
	}
	cfg.Quarantine = &Quarantine{TriggerScansPerTick: 10, Delay: 2}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid quarantine rejected: %v", err)
	}
}

func TestQuarantineActivates(t *testing.T) {
	// A core-concentrated (m=1) topology where backbone limits bite.
	g, err := topology.BarabasiAlbert(500, 1, rand.New(rand.NewSource(41)))
	if err != nil {
		t.Fatal(err)
	}
	roles, err := topology.AssignRoles(g, topology.PaperRoles)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Graph: g, Roles: roles, Beta: 0.8,
		Strategy:        worm.NewRandomFactory(),
		InitialInfected: 3, Seed: 1,
		Ticks: 250, ScansPerTick: 10, MaxQueue: 50,
		LimitedNodes: DeployBackbone(roles), BaseRate: 0.4,
	}

	alwaysOn, err := MultiRun(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if alwaysOn.QuarantineTick != 0 {
		t.Errorf("always-on deployment tick = %d, want 0", alwaysOn.QuarantineTick)
	}

	// Dynamic: same limits, activated when the scan detector fires.
	dyn := cfg
	dyn.Quarantine = &Quarantine{TriggerScansPerTick: 50, Delay: 2}
	dynamic, err := MultiRun(dyn, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dynamic.QuarantineTick <= 0 {
		t.Fatalf("dynamic quarantine never activated: tick %d", dynamic.QuarantineTick)
	}

	// No defense at all.
	open := cfg
	open.LimitedNodes = nil
	openRes, err := MultiRun(open, 3)
	if err != nil {
		t.Fatal(err)
	}

	tOpen := openRes.TimeToLevel(0.5)
	tDyn := dynamic.TimeToLevel(0.5)
	tAlways := alwaysOn.TimeToLevel(0.5)
	// Dynamic quarantine sits between no defense and always-on: the worm
	// runs free until detection, then faces the same limits.
	if !(tDyn > tOpen) {
		t.Errorf("dynamic quarantine should slow the worm: %v vs open %v", tDyn, tOpen)
	}
	if tDyn > tAlways+1 {
		t.Errorf("dynamic %v should not exceed always-on %v (same limits, later start)",
			tDyn, tAlways)
	}
}

func TestQuarantineLevelTriggerAndNeverFires(t *testing.T) {
	cfg := baseConfig(t, 100)
	cfg.Ticks = 80
	cfg.LimitedNodes = DeployBackbone(cfg.Roles)
	cfg.BaseRate = 0.4
	cfg.Quarantine = &Quarantine{TriggerLevel: 0.3}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if res.QuarantineTick <= 0 {
		t.Errorf("level trigger never fired: %d", res.QuarantineTick)
	}
	// An unreachable scan threshold never activates.
	cfg.Quarantine = &Quarantine{TriggerScansPerTick: 1 << 30}
	eng, err = New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res = eng.Run()
	if res.QuarantineTick != -1 {
		t.Errorf("unreachable trigger activated at %d", res.QuarantineTick)
	}
}
