package sim

import (
	"testing"
)

func TestProbeFirstStillSaturates(t *testing.T) {
	cfg := baseConfig(t, 100)
	cfg.ProbeFirst = true
	cfg.Ticks = 120
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if got := res.FinalInfected(); got < 0.99 {
		t.Errorf("probe-first epidemic should still saturate, got %v", got)
	}
}

func TestProbeFirstSlowerThanDirect(t *testing.T) {
	cfg := baseConfig(t, 150)
	cfg.Ticks = 100
	direct, err := MultiRun(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ProbeFirst = true
	probed, err := MultiRun(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	tDirect := direct.TimeToLevel(0.5)
	tProbed := probed.TimeToLevel(0.5)
	// Three one-way trips instead of one: expect a clear but bounded
	// latency penalty.
	if !(tProbed > tDirect) {
		t.Errorf("probe-first %v should be slower than direct %v", tProbed, tDirect)
	}
	if tProbed > 5*tDirect {
		t.Errorf("probe-first %v implausibly slow vs %v", tProbed, tDirect)
	}
}

func TestProbeFirstMoreVulnerableToRateLimiting(t *testing.T) {
	cfg := baseConfig(t, 150)
	cfg.Ticks = 250
	cfg.ScansPerTick = 10
	cfg.MaxQueue = 50
	cfg.BaseRate = 0.4
	cfg.LimitedNodes = DeployBackbone(cfg.Roles)

	direct, err := MultiRun(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ProbeFirst = true
	probed, err := MultiRun(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Probe, reply, and exploit all cross the limited backbone: the
	// probe-first worm suffers at least as much from rate limiting.
	if probed.TimeToLevel(0.5) < direct.TimeToLevel(0.5) {
		t.Errorf("probe-first under RL (%v) should not beat direct (%v)",
			probed.TimeToLevel(0.5), direct.TimeToLevel(0.5))
	}
}

func TestProbeFirstGenealogyAttribution(t *testing.T) {
	cfg := baseConfig(t, 80)
	cfg.ProbeFirst = true
	cfg.RecordInfections = true
	cfg.Ticks = 120
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	nonSeed := 0
	for _, inf := range res.Infections {
		if inf.Source >= 0 {
			nonSeed++
			if inf.Source == inf.Victim {
				t.Fatalf("self-infection recorded: %+v", inf)
			}
		}
	}
	if nonSeed == 0 {
		t.Error("probe-first infections should still carry source attribution")
	}
}
