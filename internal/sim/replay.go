package sim

import (
	"fmt"

	"repro/internal/ratelimit"
	"repro/internal/trace"
)

// Workload is the scan-source seam of the trace-replay driver: a
// tick-bucketed stream of connection attempts by simulated hosts. The
// engine's default β-draw generate phase is the implicit synthetic
// source; a Config with a Replay section swaps it for a Workload —
// typically a trace.Replayer over a generated profile or an imported
// trace file. Contract (see trace.Replayer): Contacts is called with
// successive ticks, the returned slice is only valid until the next
// call, and Skip repositions a fresh stream for checkpoint restore,
// returning the contact count skipped so the restore can verify the
// stream is the one the snapshot was taken over.
type Workload interface {
	Contacts(tick int) ([]trace.Contact, error)
	Skip(n int) (int64, error)
}

// ReplayConfig drives the engine's generate phase from a trace-replay
// workload instead of β draws: worm scans and benign background flows
// come from the workload tick by tick, competing for the same host
// rate-limiter credits, while routing, queueing, delivery, infection,
// and immunization run unchanged. Replay consumes no engine RNG — the
// workload carries its own determinism — so a replay run is reproducible
// from (Config, workload) alone and Workers-count invariant by
// construction.
type ReplayConfig struct {
	// NewWorkload builds the contact stream for one run. It is a factory
	// because every engine build needs a fresh stream positioned at tick
	// 0 (MultiRun replicas, retries, checkpoint restores); it must yield
	// the identical stream on every call.
	NewWorkload func() (Workload, error)
	// Hosts maps trace host index -> node id (-1 = unmapped; contacts of
	// unmapped hosts are ignored). Nil means identity: trace host i is
	// node i. Scenario lowering maps trace hosts onto the topology's
	// RoleHost nodes in ascending order.
	Hosts []int32
	// WormHosts lists the trace host indices seeded infected before tick
	// 0 (the trace's infected class). When non-empty it replaces the
	// random InitialInfected placement — Config.InitialInfected must then
	// be 0 — and draws no RNG, keeping seeding aligned with the trace's
	// notion of who scans.
	WormHosts []int
}

// validate checks the replay section against the graph size.
func (rc *ReplayConfig) validate(n int) error {
	if rc.NewWorkload == nil {
		return fmt.Errorf("sim: replay config requires a workload factory")
	}
	for i, u := range rc.Hosts {
		if u < -1 || int(u) >= n {
			return fmt.Errorf("sim: replay host %d maps to node %d out of [-1,%d)", i, u, n)
		}
	}
	for _, h := range rc.WormHosts {
		if h < 0 {
			return fmt.Errorf("sim: replay worm host %d negative", h)
		}
		if rc.Hosts != nil && h >= len(rc.Hosts) {
			return fmt.Errorf("sim: replay worm host %d outside the %d-entry host map", h, len(rc.Hosts))
		}
		if rc.Hosts == nil && h >= n {
			return fmt.Errorf("sim: replay worm host %d outside the %d-node identity map", h, n)
		}
	}
	return nil
}

// buildReplay materializes the replay state of a fresh engine: the
// run's workload stream (positioned at tick 0) and the host map.
func (e *Engine) buildReplay() error {
	rc := e.cfg.Replay
	w, err := rc.NewWorkload()
	if err != nil {
		return fmt.Errorf("sim: build replay workload: %w", err)
	}
	e.workload = w
	if rc.Hosts != nil {
		e.replayHosts = rc.Hosts
	} else {
		e.replayHosts = make([]int32, e.n)
		for i := range e.replayHosts {
			e.replayHosts[i] = int32(i)
		}
	}
	return nil
}

// seedReplayInfections infects the mapped WormHosts (in list order,
// consuming no RNG) in place of random seed placement.
func (e *Engine) seedReplayInfections(hosts []int) error {
	for _, h := range hosts {
		u := int(e.replayHosts[h])
		if u < 0 {
			return fmt.Errorf("sim: replay worm host %d is not mapped to a node", h)
		}
		if e.stateOf(u) == stateExcluded {
			return fmt.Errorf("sim: replay worm host %d maps to excluded node %d", h, u)
		}
		e.infect(u, -1)
	}
	if e.infected == 0 {
		return fmt.Errorf("sim: replay workload seeded no infections")
	}
	return nil
}

// generateReplay is the generate phase of a replay run: it consumes the
// tick's contact batch and turns each contact into the same monitor-
// point accounting, limiter check, and packet emission the β path
// performs — with benign contacts counted separately (the collateral-
// damage signal) and emitted as kindBenign packets when their
// destination is inside the simulated network.
//
// The sweep is serial (contacts arrive host-ascending from the
// workload; replay traces are small next to the engine's host ceiling),
// so worker-count invariance of this phase is structural; transmit and
// deliver still shard. State gating ties the trace to the simulation:
// a worm contact from a node that is no longer infected (patched by
// the immunization process) is suppressed — the trace recorded the
// scan, but the simulated defense stopped the scanner.
func (e *Engine) generateReplay() {
	batch, err := e.workload.Contacts(e.tick)
	if err != nil {
		e.workloadErr = fmt.Errorf("sim: replay workload at tick %d: %w", e.tick, err)
		return
	}
	e.replayRecords += int64(len(batch))
	for i := range batch {
		c := &batch[i]
		if c.Host < 0 || int(c.Host) >= len(e.replayHosts) {
			continue // host outside the mapped range: not simulated
		}
		u := int(e.replayHosts[c.Host])
		if u < 0 {
			continue
		}
		st := e.stateOf(u)
		if c.Worm {
			if st != stateInfected {
				continue // patched or never seeded: the scanner is silent
			}
			e.scansThisTick++
		} else {
			if st == stateExcluded {
				continue
			}
			e.benignThisTick++
		}
		// Same monitor-point-then-limiter order as generateRange: the
		// attempt is counted pre-throttle, then the host limiter gates
		// it. Replay hands the limiter the contact's real destination
		// address, so distinct external targets fill a Williamson
		// working set exactly as they would on the wire.
		var limiter ratelimit.ContactLimiter
		if e.limiterSlot != nil {
			if ls := e.limiterSlot[u]; ls >= 0 {
				limiter = e.limiterTab[ls]
			}
		}
		if limiter != nil && !e.limitsDown && !limiter.Allow(int64(e.tick), c.Dst) {
			if c.Worm {
				e.throttledThisTick++
			} else {
				e.benignThrottledThisTick++
			}
			continue
		}
		// Only contacts at simulated hosts become in-network packets;
		// externally-bound traffic has spent its limiter credit and
		// leaves the edge.
		hi := trace.HostIndex(c.Dst)
		if hi < 0 || hi >= len(e.replayHosts) {
			continue
		}
		target := int(e.replayHosts[hi])
		if target < 0 || target == u {
			continue
		}
		kind := kindBenign
		if c.Worm {
			kind = kindExploit
		}
		e.genCount++
		e.routePacket(int32(u), packet{
			src: int32(u), dst: int32(target), kind: kind, birth: int32(e.tick),
		})
	}
}
