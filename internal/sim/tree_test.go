package sim

import "testing"

func genealogyResult(t *testing.T) *Result {
	t.Helper()
	cfg := baseConfig(t, 100)
	cfg.RecordInfections = true
	cfg.InitialInfected = 3
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng.Run()
}

func TestAnalyzeTree(t *testing.T) {
	res := genealogyResult(t)
	stats := AnalyzeTree(res)
	if stats.Total != len(res.Infections) {
		t.Fatalf("total = %d, want %d", stats.Total, len(res.Infections))
	}
	if stats.Seeds != 3 {
		t.Errorf("seeds = %d, want 3", stats.Seeds)
	}
	if stats.MaxDepth < 2 {
		t.Errorf("max depth = %d, want a real chain", stats.MaxDepth)
	}
	if stats.MeanDepth <= 0 || stats.MeanDepth > float64(stats.MaxDepth) {
		t.Errorf("mean depth = %v out of (0, %d]", stats.MeanDepth, stats.MaxDepth)
	}
	if stats.MaxSecondary < 1 {
		t.Errorf("max secondary = %d, want >= 1", stats.MaxSecondary)
	}
	// In a saturated epidemic every non-seed was infected by someone, so
	// mean secondary = (Total-Seeds)/Total just below 1.
	if stats.MeanSecondary <= 0.9 || stats.MeanSecondary >= 1 {
		t.Errorf("mean secondary = %v, want just below 1", stats.MeanSecondary)
	}
	// Depth histogram sums to total.
	sum := 0
	for _, c := range stats.DepthHistogram {
		sum += c
	}
	if sum != stats.Total {
		t.Errorf("histogram sum = %d, want %d", sum, stats.Total)
	}
	if stats.DepthHistogram[0] != stats.Seeds {
		t.Errorf("depth-0 count = %d, want %d seeds", stats.DepthHistogram[0], stats.Seeds)
	}
}

func TestAnalyzeTreeEmpty(t *testing.T) {
	stats := AnalyzeTree(&Result{})
	if stats.Total != 0 || stats.DepthHistogram != nil {
		t.Errorf("empty genealogy stats = %+v", stats)
	}
}

func TestInfectionsPerTick(t *testing.T) {
	res := genealogyResult(t)
	series := InfectionsPerTick(res, 59)
	if len(series) != 60 {
		t.Fatalf("series length = %d", len(series))
	}
	total := 0
	for _, c := range series {
		total += c
	}
	// Everything except the 3 seeds lands on some tick.
	if want := len(res.Infections) - 3; total != want {
		t.Errorf("per-tick total = %d, want %d", total, want)
	}
}

func TestTopSpreaders(t *testing.T) {
	res := genealogyResult(t)
	top := TopSpreaders(res, 5)
	if len(top) == 0 || len(top) > 5 {
		t.Fatalf("top spreaders = %d entries", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Victims > top[i-1].Victims {
			t.Fatal("spreaders not sorted by victims desc")
		}
	}
	stats := AnalyzeTree(res)
	if top[0].Victims != stats.MaxSecondary {
		t.Errorf("top spreader %d != max secondary %d", top[0].Victims, stats.MaxSecondary)
	}
	// k <= 0 returns everyone.
	all := TopSpreaders(res, 0)
	if len(all) < len(top) {
		t.Error("k=0 should return all spreaders")
	}
}
