package sim

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/topology"
	"repro/internal/worm"
)

// runWithCheckpoints runs cfg to completion, snapshotting after every
// tick, and returns the full series plus the per-tick snapshots
// (snaps[i] resumes at tick i+1).
func runWithCheckpoints(t *testing.T, cfg Config) (*Result, []*Snapshot) {
	t.Helper()
	var snaps []*Snapshot
	cfg.CheckpointEvery = 1
	cfg.Checkpoint = func(s *Snapshot) error {
		snaps = append(snaps, s)
		return nil
	}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != cfg.Ticks {
		t.Fatalf("got %d snapshots for %d ticks", len(snaps), cfg.Ticks)
	}
	return res, snaps
}

// TestSnapshotResumeByteIdentical is the resume contract on every
// golden scenario: checkpoint at every tick, push each snapshot through
// the full file encoding, restore, finish the run — the result must be
// byte-identical to the uninterrupted run, wherever the cut falls.
func TestSnapshotResumeByteIdentical(t *testing.T) {
	for name, cfg := range goldenScenarios(t) {
		t.Run(name, func(t *testing.T) {
			full, snaps := runWithCheckpoints(t, cfg)
			for i, snap := range snaps {
				data, err := snap.Encode()
				if err != nil {
					t.Fatalf("encode snapshot %d: %v", i, err)
				}
				decoded, err := DecodeSnapshot(data)
				if err != nil {
					t.Fatalf("decode snapshot %d: %v", i, err)
				}
				eng, err := Restore(cfg, decoded)
				if err != nil {
					t.Fatalf("restore at tick %d: %v", i+1, err)
				}
				res, err := eng.RunContext(context.Background())
				if err != nil {
					t.Fatalf("resumed run from tick %d: %v", i+1, err)
				}
				if !reflect.DeepEqual(res, full) {
					t.Fatalf("resume from tick %d diverged from the uninterrupted run", i+1)
				}
			}
		})
	}
}

// TestSnapshotResumeWithFaults extends the resume contract to a run
// with an active domain-fault profile: the injector RNG state must ride
// along in the checkpoint.
func TestSnapshotResumeWithFaults(t *testing.T) {
	scenarios := goldenScenarios(t)
	cfg := scenarios["twolevel-host-throttle"]
	cfg.Faults = &fault.Profile{
		Seed:              5,
		FalseAlarmPerTick: 0.01,
		MissRate:          0.4,
		LimiterOutages:    []fault.Window{{Start: 30, End: 45}},
	}
	cfg.Immunize = &Immunization{StartTick: 20, Mu: 0.02}
	cfg.Faults.ImmunizationLossRate = 0.3
	cfg.Faults.ImmunizationDelay = 7

	full, snaps := runWithCheckpoints(t, cfg)
	for _, i := range []int{0, 10, 25, 35, 50, len(snaps) - 1} {
		eng, err := Restore(cfg, snaps[i])
		if err != nil {
			t.Fatalf("restore at tick %d: %v", i+1, err)
		}
		res, err := eng.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, full) {
			t.Fatalf("faulted resume from tick %d diverged", i+1)
		}
	}
}

// TestSnapshotFileRoundTrip pins the crash-safe file path: write,
// read, restore.
func TestSnapshotFileRoundTrip(t *testing.T) {
	cfg := goldenScenarios(t)["star-open"]
	full, snaps := runWithCheckpoints(t, cfg)
	path := filepath.Join(t.TempDir(), "ck.json")
	if err := WriteSnapshot(path, snaps[40]); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := Restore(cfg, snap)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, full) {
		t.Error("file round-trip resume diverged")
	}
}

// TestSnapshotRejectsCorruption flips bytes across the encoded file at
// many seeds: decode (or, where the damage slips past framing, restore)
// must fail with ErrSnapshot — never panic, never resume silently.
func TestSnapshotRejectsCorruption(t *testing.T) {
	cfg := goldenScenarios(t)["star-hub-capped"]
	_, snaps := runWithCheckpoints(t, cfg)
	data, err := snaps[60].Encode()
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 50; seed++ {
		corrupted := fault.Corrupt(data, seed)
		snap, derr := DecodeSnapshot(corrupted)
		if derr == nil {
			t.Fatalf("seed %d: corrupted snapshot decoded cleanly", seed)
		}
		if !errors.Is(derr, ErrSnapshot) {
			t.Fatalf("seed %d: decode error %v does not match ErrSnapshot", seed, derr)
		}
		if snap != nil {
			t.Fatalf("seed %d: decode returned a snapshot alongside an error", seed)
		}
	}
}

// TestSnapshotRejectsVersionSkew: a future-version checkpoint is
// rejected with a versioned ErrSnapshot, before any payload parsing.
func TestSnapshotRejectsVersionSkew(t *testing.T) {
	cfg := goldenScenarios(t)["star-open"]
	_, snaps := runWithCheckpoints(t, cfg)
	data, err := snaps[0].Encode()
	if err != nil {
		t.Fatal(err)
	}
	var env map[string]json.RawMessage
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env["version"] = json.RawMessage("99")
	bumped, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	_, derr := DecodeSnapshot(bumped)
	if !errors.Is(derr, ErrSnapshot) {
		t.Fatalf("version-skewed decode error = %v, want ErrSnapshot", derr)
	}

	// A stale version-1 checkpoint (single sequential RNG draw count,
	// pre stream-table) must be rejected too, not misread.
	env["version"] = json.RawMessage("1")
	stale, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, derr := DecodeSnapshot(stale); !errors.Is(derr, ErrSnapshot) {
		t.Fatalf("version-1 decode error = %v, want ErrSnapshot", derr)
	}

	// A version-2 checkpoint (dense per-node state bytes, dense RNG
	// stream array, per-link credit before the rank compaction) must be
	// rejected with an error that names both versions — there is no
	// migration path, and misreading it as a current-version file would
	// corrupt state.
	env["version"] = json.RawMessage("2")
	v2, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	_, derr = DecodeSnapshot(v2)
	if !errors.Is(derr, ErrSnapshot) {
		t.Fatalf("version-2 decode error = %v, want ErrSnapshot", derr)
	}
	if msg := derr.Error(); !strings.Contains(msg, "version 2") ||
		!strings.Contains(msg, fmt.Sprintf("version %d", SnapshotVersion)) {
		t.Fatalf("version-2 rejection %q does not name the versions", msg)
	}

	env["format"] = json.RawMessage(`"something-else"`)
	foreign, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, derr := DecodeSnapshot(foreign); !errors.Is(derr, ErrSnapshot) {
		t.Fatalf("foreign-format decode error = %v, want ErrSnapshot", derr)
	}
}

// TestSnapshotResumeLargeAcrossWorkerCounts exercises the v3 sparse
// encoding where it matters: a 100k-host two-level internet, where the
// RNG table must stay sparse (only touched streams encoded) and the
// packed states must survive a worker-count change on resume.
func TestSnapshotResumeLargeAcrossWorkerCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-host resume test skipped in -short mode")
	}
	g, roles, _, err := topology.TwoLevel(topology.TwoLevelConfig{
		ASes: 412, AttachM: 2, TransitFraction: 0.05, HostsPerStub: 256,
	}, rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Graph: g, Roles: roles,
		Beta: 0.8, ScansPerTick: 10,
		Strategy:        worm.NewRandomFactory(),
		InitialInfected: 100, Ticks: 8, Seed: 11,
		MaxQueue: 50, Workers: 4,
		LimitedNodes: DeployBackbone(roles), BaseRate: 0.4,
	}
	full, snaps := runWithCheckpoints(t, cfg)
	want := toGolden(full)
	snap := snaps[3]
	if n := g.N(); len(snap.StatesPacked) != (n+3)/4 {
		t.Fatalf("packed states %d bytes for %d nodes, want %d", len(snap.StatesPacked), n, (n+3)/4)
	}
	// Early in the epidemic only infected nodes have drawn from their
	// streams: the sparse RNG table must be far smaller than the node
	// count, or the encoding has degenerated to dense.
	if len(snap.RNGIdx) >= g.N()/10 {
		t.Fatalf("sparse RNG table holds %d of %d streams — not sparse", len(snap.RNGIdx), g.N())
	}
	data, err := snap.Encode()
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		rcfg := cfg
		rcfg.Workers = workers
		eng, err := Restore(rcfg, decoded)
		if err != nil {
			t.Fatalf("restore under workers=%d: %v", workers, err)
		}
		if got := toGolden(eng.Run()); !reflect.DeepEqual(got, want) {
			t.Errorf("100k-host resume under workers=%d diverged", workers)
		}
	}
}

// TestRestoreRejectsConfigMismatch: a snapshot must not restore into a
// run it does not belong to.
func TestRestoreRejectsConfigMismatch(t *testing.T) {
	scenarios := goldenScenarios(t)
	cfg := scenarios["star-open"]
	_, snaps := runWithCheckpoints(t, cfg)
	snap := snaps[10]

	for name, mutate := range map[string]func(*Config){
		"seed":   func(c *Config) { c.Seed++ },
		"ticks":  func(c *Config) { c.Ticks += 10 },
		"graph":  func(c *Config) { c.Graph = scenarios["powerlaw-drop-immunize"].Graph },
		"limits": func(c *Config) { c.LimitedNodes = []int{0} },
	} {
		bad := cfg
		mutate(&bad)
		if _, err := Restore(bad, snap); !errors.Is(err, ErrSnapshot) {
			t.Errorf("%s mismatch: Restore error = %v, want ErrSnapshot", name, err)
		}
	}

	// The matching config still restores.
	if _, err := Restore(cfg, snap); err != nil {
		t.Fatalf("matching config rejected: %v", err)
	}
}

// TestSnapshotStatefulPickers covers the strategies with per-host or
// shared scan state (Sequential cursors, hit-list claim pointer): the
// resumed scan positions must match exactly.
func TestSnapshotStatefulPickers(t *testing.T) {
	base := goldenScenarios(t)["star-open"]

	seqCfg := base
	seqCfg.Strategy = worm.NewSequentialFactory()

	hitList := make([]int, 40)
	for i := range hitList {
		hitList[i] = i + 5
	}
	hitFactory, err := worm.NewHitListFactory(hitList)
	if err != nil {
		t.Fatal(err)
	}
	hitCfg := base
	hitCfg.Strategy = hitFactory

	for name, cfg := range map[string]Config{"sequential": seqCfg, "hitlist": hitCfg} {
		t.Run(name, func(t *testing.T) {
			full, snaps := runWithCheckpoints(t, cfg)
			for _, i := range []int{4, 20, 55} {
				eng, err := Restore(cfg, snaps[i])
				if err != nil {
					t.Fatalf("restore at tick %d: %v", i+1, err)
				}
				res, err := eng.RunContext(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res, full) {
					t.Fatalf("resume from tick %d diverged", i+1)
				}
			}
		})
	}
}
