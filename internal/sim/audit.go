package sim

import (
	"fmt"
	"math/bits"

	"repro/internal/obs"
)

// auditSnapshot pairs every O(1) counter the hot path maintains with
// the same quantity recomputed from ground truth — full scans over the
// link queues, the active-set bitmaps, and the node states — so
// obs.Auditor can validate them by pure value comparison. O(links +
// nodes) per call; only run under Config.Check.
func (e *Engine) auditSnapshot() obs.Snapshot {
	queued, nonEmpty, flagged := 0, 0, 0
	for s, q := range e.queueTab {
		if len(q) == 0 {
			continue
		}
		queued += len(q)
		nonEmpty++
		li := e.queueLink[s]
		if e.queueBits[li>>6]&(1<<(uint(li)&63)) != 0 {
			flagged++
		}
	}
	bitsSet := 0
	for _, w := range e.queueBits {
		bitsSet += bits.OnesCount64(w)
	}
	infPop := 0
	for _, w := range e.infectedBits {
		infPop += bits.OnesCount64(w)
	}
	infStates, infFlagged := 0, 0
	for u := 0; u < e.n; u++ {
		if e.stateOf(u) != stateInfected {
			continue
		}
		infStates++
		if e.infectedBits[u>>6]&(1<<(uint(u)&63)) != 0 {
			infFlagged++
		}
	}
	return obs.Snapshot{
		Tick:          e.tick,
		Backlog:       e.backlog,
		QueuedPackets: queued,

		QueueBitsSet:          bitsSet,
		NonEmptyQueues:        nonEmpty,
		NonEmptyQueuesFlagged: flagged,

		Infected:         e.infected,
		InfectedPopcount: infPop,
		InfectedStates:   infStates,
		InfectedFlagged:  infFlagged,

		EverInfected: e.ever,
		Removed:      e.removed,
		Population:   e.popSize,

		Generated: e.genCount,
		Delivered: e.delivCount,
		Dropped:   e.dropCount,
	}
}

// audit cross-checks the engine's end-of-tick state against ground
// truth. The returned error wraps the obs.InvariantError, so it still
// matches errors.Is(err, obs.ErrInvariant).
func (e *Engine) audit() error {
	snap := e.auditSnapshot()
	if err := e.auditor.Check(&snap); err != nil {
		return fmt.Errorf("sim: invariant audit failed (engine state is corrupt): %w", err)
	}
	return nil
}
