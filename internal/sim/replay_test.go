package sim

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/ratelimit"
	"repro/internal/safeio"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/worm"
)

// The trace-replay determinism contract: a replay run is reproducible
// from (Config, workload) alone — the workload consumes no engine RNG
// and the replay sweep is serial — so the series, genealogy, and the
// collateral-damage counters must be byte-identical across worker
// counts and across a mid-run checkpoint/resume. The golden_replay
// fixture pins both the series and the counters.

const goldenReplayPath = "testdata/golden_replay.json"

// replayGen is the synthetic traffic profile behind every replay test:
// a small four-class population (12 normal, 2 servers, 3 P2P, 3
// infected) over a 90-second trace at one engine tick per second.
func replayGen() trace.GenConfig {
	return trace.GenConfig{
		Duration:        90 * trace.Second,
		Seed:            99,
		NormalClients:   12,
		Servers:         2,
		P2PClients:      3,
		Infected:        3,
		BlasterFraction: 0.5,
	}
}

// replayScenario maps the replayGen hosts onto a two-level hierarchy's
// RoleHost nodes, with Williamson throttles on every mapped host so
// worm scans and benign flows compete for the same credits.
func replayScenario(t testing.TB) Config {
	t.Helper()
	hg, hRoles, hSubnet, err := topology.Hierarchical(topology.HierarchicalConfig{
		Backbones: 1, EdgesPer: 2, HostsPerSubnet: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	gen := replayGen()
	hostNodes := topology.NodesWithRole(hRoles, topology.RoleHost)
	if len(hostNodes) < gen.NumHosts() {
		t.Fatalf("topology has %d hosts for %d trace hosts", len(hostNodes), gen.NumHosts())
	}
	hostMap := make([]int32, gen.NumHosts())
	for i := range hostMap {
		hostMap[i] = int32(hostNodes[i])
	}
	return Config{
		Graph: hg, Roles: hRoles, Subnet: hSubnet,
		Strategy:         worm.NewRandomFactory(),
		Ticks:            90, Seed: 7,
		MaxQueue:         50,
		RecordInfections: true,
		TrackSubnets:     true,
		HostLimiterNodes: hostNodes[:gen.NumHosts()],
		HostLimiterFactory: func() ratelimit.ContactLimiter {
			l, err := ratelimit.NewWilliamsonThrottle(4, 1)
			if err != nil {
				panic(err)
			}
			return l
		},
		Replay: &ReplayConfig{
			NewWorkload: func() (Workload, error) {
				return trace.NewSyntheticReplayer(gen, trace.Second)
			},
			Hosts:     hostMap,
			WormHosts: gen.HostsOfClass(trace.ClassInfected),
		},
	}
}

// goldenReplay is the fixture shape: the pinned series plus the full
// obs counter map (including benign_contacts / benign_throttled, the
// collateral-damage signal).
type goldenReplay struct {
	Series   goldenSeries     `json:"series"`
	Counters map[string]int64 `json:"counters"`
}

func TestGoldenReplay(t *testing.T) {
	cfg := replayScenario(t)
	series, counters := runTallied(t, cfg, 1)
	got := goldenReplay{Series: series, Counters: counters}

	if got.Counters["benign_contacts"] == 0 {
		t.Fatal("replay run saw no benign contacts; the background profile is dead")
	}
	if got.Counters["scan_attempts"] == 0 {
		t.Fatal("replay run saw no worm scans; the worm profile is dead")
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenReplayPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := safeio.WriteFile(goldenReplayPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenReplayPath)
		return
	}

	buf, err := os.ReadFile(goldenReplayPath)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update-golden): %v", err)
	}
	var want goldenReplay
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replay run diverged from golden fixture:\n got %+v\nwant %+v", got, want)
	}
}

// TestReplayWorkerInvariance: the replay generate phase is serial by
// construction, so worker count must not change a single counter.
func TestReplayWorkerInvariance(t *testing.T) {
	cfg := replayScenario(t)
	base, baseCounters := runTallied(t, cfg, 1)
	for _, workers := range []int{2, 8} {
		got, counters := runTallied(t, cfg, workers)
		if !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: replay series diverged from workers=1", workers)
		}
		if !reflect.DeepEqual(counters, baseCounters) {
			t.Errorf("workers=%d: replay obs counters diverged from workers=1:\n got %v\nwant %v",
				workers, counters, baseCounters)
		}
	}
}

// TestReplayCheckpointResume: the resume contract on a replay run. The
// snapshot carries the stream position (ReplayRecords); Restore builds
// a fresh workload, fast-forwards it with Skip, and the finished run
// must be byte-identical to the uninterrupted one, wherever the cut
// falls.
func TestReplayCheckpointResume(t *testing.T) {
	cfg := replayScenario(t)
	full, snaps := runWithCheckpoints(t, cfg)
	for i, snap := range snaps {
		data, err := snap.Encode()
		if err != nil {
			t.Fatalf("encode snapshot %d: %v", i, err)
		}
		decoded, err := DecodeSnapshot(data)
		if err != nil {
			t.Fatalf("decode snapshot %d: %v", i, err)
		}
		eng, err := Restore(cfg, decoded)
		if err != nil {
			t.Fatalf("restore at tick %d: %v", i+1, err)
		}
		res, err := eng.RunContext(context.Background())
		if err != nil {
			t.Fatalf("resumed replay from tick %d: %v", i+1, err)
		}
		if !reflect.DeepEqual(res, full) {
			t.Fatalf("replay resume from tick %d diverged from the uninterrupted run", i+1)
		}
	}
}

// TestReplayResumeAcrossWorkerCounts: a mid-run replay checkpoint must
// resume byte-identically under any worker count.
func TestReplayResumeAcrossWorkerCounts(t *testing.T) {
	cfg := replayScenario(t)
	cfg.Workers = 4
	full, snaps := runWithCheckpoints(t, cfg)
	cut := len(snaps) / 2
	data, err := snaps[cut].Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 8} {
		rcfg := cfg
		rcfg.Workers = workers
		eng, err := Restore(rcfg, snap)
		if err != nil {
			t.Fatalf("restore cut %d under workers=%d: %v", cut, workers, err)
		}
		res, err := eng.RunContext(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res, full) {
			t.Errorf("replay resume from cut %d under workers=%d diverged", cut, workers)
		}
	}
}

// TestReplaySnapshotRejectsWrongTrace: restoring a replay snapshot over
// a different workload must fail loudly (the skipped-contact count no
// longer matches the snapshotted stream position), and restoring it
// into a non-replay config must fail too — never silently diverge.
func TestReplaySnapshotRejectsWrongTrace(t *testing.T) {
	cfg := replayScenario(t)
	_, snaps := runWithCheckpoints(t, cfg)
	cut := len(snaps) / 2
	data, err := snaps[cut].Encode()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}

	// A near-empty trace: one normal client, no worm. Its cumulative
	// contact count can never match the snapshotted position.
	wrong := cfg
	wrong.Replay = &ReplayConfig{
		NewWorkload: func() (Workload, error) {
			return trace.NewSyntheticReplayer(trace.GenConfig{
				Duration: 90 * trace.Second, Seed: 1, NormalClients: 1,
			}, trace.Second)
		},
		Hosts:     cfg.Replay.Hosts[:1],
		WormHosts: nil,
	}
	wrong.InitialInfected = 1
	if _, err := Restore(wrong, snap); !errors.Is(err, ErrSnapshot) {
		t.Errorf("restore over a different trace: got %v, want ErrSnapshot", err)
	}

	noReplay := cfg
	noReplay.Replay = nil
	noReplay.Beta = 0.8
	noReplay.ScansPerTick = 2
	noReplay.InitialInfected = 1
	if _, err := Restore(noReplay, snap); !errors.Is(err, ErrSnapshot) {
		t.Errorf("restore into a non-replay config: got %v, want ErrSnapshot", err)
	}
}

// TestReplayConfigValidate covers the replay section's config errors.
func TestReplayConfigValidate(t *testing.T) {
	base := replayScenario(t)

	cfg := base
	cfg.Replay = &ReplayConfig{}
	if _, err := New(cfg); err == nil {
		t.Error("missing workload factory accepted")
	}

	cfg = base
	rc := *base.Replay
	rc.Hosts = []int32{0, int32(base.Graph.N())}
	cfg.Replay = &rc
	if _, err := New(cfg); err == nil {
		t.Error("out-of-range host map accepted")
	}

	cfg = base
	rc = *base.Replay
	rc.WormHosts = []int{len(rc.Hosts)}
	cfg.Replay = &rc
	if _, err := New(cfg); err == nil {
		t.Error("worm host outside the host map accepted")
	}

	cfg = base
	cfg.InitialInfected = 1
	if _, err := New(cfg); err == nil {
		t.Error("InitialInfected alongside replay WormHosts accepted")
	}
}

// TestReplayCollateralSignal: with throttles deployed, some benign
// traffic must be throttled (the collateral signal exists) and benign
// counters must stay internally consistent.
func TestReplayCollateralSignal(t *testing.T) {
	cfg := replayScenario(t)
	tally := obs.NewTally()
	cfg.Collector = tally
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	sum := tally.Summary()
	if sum.BenignContacts == 0 {
		t.Fatal("no benign contacts recorded")
	}
	if sum.BenignThrottled == 0 {
		t.Error("Williamson throttles under worm load throttled no benign traffic; expected collateral damage")
	}
	if sum.BenignThrottled > sum.BenignContacts {
		t.Errorf("benign_throttled %d exceeds benign_contacts %d", sum.BenignThrottled, sum.BenignContacts)
	}
	if sum.ThrottledContacts > sum.ScanAttempts {
		t.Errorf("throttled %d exceeds scan attempts %d", sum.ThrottledContacts, sum.ScanAttempts)
	}
}
