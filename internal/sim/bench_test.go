package sim

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
	"repro/internal/worm"
)

// Per-tick engine benchmarks over the three topology families, with and
// without rate limiting. Engine construction is excluded from the timed
// region (the routing table is prebuilt and shared, as MultiRun does),
// so ns/op ≈ cost of one full fixed-horizon run and the ns/tick metric
// is directly comparable across PRs. Baselines live in BENCH_engine.json
// at the repo root; compare with
//
//	go test ./internal/sim -run xxx -bench BenchmarkEngineTick -count 10 | benchstat old.txt -
func benchEngineTick(b *testing.B, cfg Config) {
	b.Helper()
	if err := cfg.Validate(); err != nil {
		b.Fatal(err)
	}
	ns := newNetState(cfg.Graph, resolveStructuralThreshold(cfg.StructuralThreshold))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := newEngine(cfg, ns)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		eng.Run()
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*cfg.Ticks), "ns/tick")
}

func benchStar(b *testing.B) *topology.Graph {
	b.Helper()
	g, err := topology.Star(1000)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchPowerLaw(b *testing.B) (*topology.Graph, []topology.Role, []int) {
	b.Helper()
	g, err := topology.BarabasiAlbert(1000, 1, rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	roles, err := topology.AssignRoles(g, topology.PaperRoles)
	if err != nil {
		b.Fatal(err)
	}
	return g, roles, topology.Subnets(g, roles)
}

func benchTwoLevel(b *testing.B) (*topology.Graph, []topology.Role, []int) {
	b.Helper()
	g, roles, subnet, err := topology.Hierarchical(topology.HierarchicalConfig{
		Backbones: 4, EdgesPer: 5, HostsPerSubnet: 48,
	})
	if err != nil {
		b.Fatal(err)
	}
	return g, roles, subnet
}

func BenchmarkEngineTick(b *testing.B) {
	b.Run("star/open", func(b *testing.B) {
		benchEngineTick(b, Config{
			Graph: benchStar(b), Beta: 0.8, ScansPerTick: 10,
			Strategy:        worm.NewRandomFactory(),
			InitialInfected: 5, Ticks: 100, Seed: 11, MaxQueue: 50,
		})
	})
	b.Run("star/limited", func(b *testing.B) {
		benchEngineTick(b, Config{
			Graph: benchStar(b), Beta: 0.8, ScansPerTick: 10,
			Strategy:        worm.NewRandomFactory(),
			InitialInfected: 5, Ticks: 100, Seed: 11, MaxQueue: 50,
			LimitedNodes: []int{0}, BaseRate: 5,
		})
	})
	b.Run("powerlaw/open", func(b *testing.B) {
		g, roles, subnet := benchPowerLaw(b)
		benchEngineTick(b, Config{
			Graph: g, Roles: roles, Subnet: subnet,
			Beta: 0.8, ScansPerTick: 10,
			Strategy:        worm.NewRandomFactory(),
			InitialInfected: 5, Ticks: 100, Seed: 11, MaxQueue: 50,
		})
	})
	// The acceptance scenario: 1000-node power law, backbone links
	// rate limited to congestion (matches BenchmarkMultiRunParallel's
	// per-replica work at the repo root).
	b.Run("powerlaw/limited", func(b *testing.B) {
		g, roles, subnet := benchPowerLaw(b)
		benchEngineTick(b, Config{
			Graph: g, Roles: roles, Subnet: subnet,
			Beta: 0.8, ScansPerTick: 10,
			Strategy:        worm.NewRandomFactory(),
			InitialInfected: 5, Ticks: 100, Seed: 11, MaxQueue: 50,
			LimitedNodes: DeployBackbone(roles), BaseRate: 0.4,
		})
	})
	b.Run("twolevel/open", func(b *testing.B) {
		g, roles, subnet := benchTwoLevel(b)
		benchEngineTick(b, Config{
			Graph: g, Roles: roles, Subnet: subnet,
			Beta: 0.8, ScansPerTick: 10,
			Strategy:        worm.NewRandomFactory(),
			InitialInfected: 5, Ticks: 100, Seed: 11, MaxQueue: 50,
		})
	})
	b.Run("twolevel/limited", func(b *testing.B) {
		g, roles, subnet := benchTwoLevel(b)
		benchEngineTick(b, Config{
			Graph: g, Roles: roles, Subnet: subnet,
			Beta: 0.8, ScansPerTick: 10,
			Strategy:        worm.NewRandomFactory(),
			InitialInfected: 5, Ticks: 100, Seed: 11, MaxQueue: 50,
			LimitedLinks: DeployEdgeUplinks(g, roles, subnet), BaseRate: 2,
		})
	})
}
