package sim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/topology"
	"repro/internal/worm"
)

func baseConfig(t *testing.T, n int) Config {
	t.Helper()
	g, err := topology.BarabasiAlbert(n, 2, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	roles, err := topology.AssignRoles(g, topology.PaperRoles)
	if err != nil {
		t.Fatalf("AssignRoles: %v", err)
	}
	return Config{
		Graph:           g,
		Roles:           roles,
		Beta:            0.8,
		Strategy:        worm.NewRandomFactory(),
		InitialInfected: 3,
		Ticks:           60,
		Seed:            1,
	}
}

func TestConfigValidate(t *testing.T) {
	ok := baseConfig(t, 100)
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	tests := []struct {
		name string
		mod  func(*Config)
	}{
		{"nil graph", func(c *Config) { c.Graph = nil }},
		{"nil strategy", func(c *Config) { c.Strategy = nil }},
		{"beta out of range", func(c *Config) { c.Beta = 1.5 }},
		{"no initial infections", func(c *Config) { c.InitialInfected = 0 }},
		{"too many initial", func(c *Config) { c.InitialInfected = 1000 }},
		{"no ticks", func(c *Config) { c.Ticks = 0 }},
		{"roles mismatch", func(c *Config) { c.Roles = make([]topology.Role, 3) }},
		{"subnet mismatch", func(c *Config) { c.Subnet = make([]int, 3) }},
		{"negative base rate", func(c *Config) { c.BaseRate = -1 }},
		{"limited node out of range", func(c *Config) { c.LimitedNodes = []int{-1} }},
		{"node cap out of range", func(c *Config) { c.NodeCaps = map[int]int{500: 1} }},
		{"negative node cap", func(c *Config) { c.NodeCaps = map[int]int{1: -1} }},
		{"bad immunization mu", func(c *Config) { c.Immunize = &Immunization{StartTick: 1, Mu: 2} }},
		{"immunization no trigger", func(c *Config) { c.Immunize = &Immunization{StartTick: -1, Mu: 0.1} }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := baseConfig(t, 100)
			tt.mod(&c)
			if err := c.Validate(); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestNewRejectsDisconnected(t *testing.T) {
	g := topology.New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Graph:           g,
		Beta:            0.5,
		Strategy:        worm.NewRandomFactory(),
		InitialInfected: 1,
		Ticks:           5,
	}
	if _, err := New(cfg); err == nil {
		t.Error("disconnected graph should be rejected")
	}
}

func TestEpidemicSaturates(t *testing.T) {
	cfg := baseConfig(t, 100)
	eng, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	res := eng.Run()
	if got := res.FinalInfected(); got < 0.99 {
		t.Errorf("final infected = %v, want saturation", got)
	}
	if got := res.FinalEverInfected(); got < 0.99 {
		t.Errorf("final ever infected = %v, want saturation", got)
	}
	// The curve is non-decreasing without immunization.
	for i := 1; i < len(res.Infected); i++ {
		if res.Infected[i] < res.Infected[i-1]-1e-12 {
			t.Fatalf("infected fraction decreased at tick %d", i)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	cfg := baseConfig(t, 100)
	run := func() *Result {
		eng, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return eng.Run()
	}
	a, b := run(), run()
	for i := range a.Infected {
		if a.Infected[i] != b.Infected[i] || a.Backlog[i] != b.Backlog[i] {
			t.Fatalf("runs with identical seeds diverge at tick %d", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 2
	eng, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	c := eng.Run()
	same := true
	for i := range a.Infected {
		if a.Infected[i] != c.Infected[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestInvariants(t *testing.T) {
	cfg := baseConfig(t, 100)
	cfg.Immunize = &Immunization{StartTick: 5, Mu: 0.05}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	for i := range res.Infected {
		// Currently infected + immunized <= 1, ever >= infected, all in [0,1].
		if res.Infected[i] < 0 || res.Infected[i] > 1 ||
			res.EverInfected[i] < res.Infected[i]-1e-12 ||
			res.Immunized[i] < 0 ||
			res.Infected[i]+res.Immunized[i] > 1+1e-12 {
			t.Fatalf("invariant violated at tick %d: I=%v E=%v R=%v",
				i, res.Infected[i], res.EverInfected[i], res.Immunized[i])
		}
		if i > 0 && res.EverInfected[i] < res.EverInfected[i-1]-1e-12 {
			t.Fatalf("ever-infected decreased at tick %d", i)
		}
		if i > 0 && res.Immunized[i] < res.Immunized[i-1]-1e-12 {
			t.Fatalf("immunized decreased at tick %d", i)
		}
	}
}

func TestImmunizationStopsEpidemic(t *testing.T) {
	cfg := baseConfig(t, 100)
	cfg.Ticks = 200
	cfg.Immunize = &Immunization{StartTick: -1, StartLevel: 0.2, Mu: 0.2}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if got := res.FinalInfected(); got > 0.01 {
		t.Errorf("final infected = %v, want epidemic extinguished", got)
	}
	if got := res.FinalEverInfected(); got >= 1 {
		t.Errorf("ever infected = %v, want < 1 (immunization saved some)", got)
	}
}

func TestHubNodeCapSlowsStar(t *testing.T) {
	g, err := topology.Star(100)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(nodeCap map[int]int) *Result {
		cfg := Config{
			Graph:           g,
			Beta:            0.8,
			Strategy:        worm.NewRandomFactory(),
			InitialInfected: 1,
			Ticks:           300,
			Seed:            7,
			NodeCaps:        nodeCap,
		}
		res, err := MultiRun(cfg, 5)
		if err != nil {
			t.Fatalf("MultiRun: %v", err)
		}
		return res
	}
	free := mk(nil)
	capped := mk(map[int]int{topology.Hub: 2})
	tFree := free.TimeToLevel(0.6)
	tCapped := capped.TimeToLevel(0.6)
	if math.IsNaN(tFree) || math.IsNaN(tCapped) {
		t.Fatalf("levels not reached: free=%v capped=%v", tFree, tCapped)
	}
	if tCapped < 2*tFree {
		t.Errorf("hub cap should slow >=2x: free %v vs capped %v", tFree, tCapped)
	}
}

func TestSmallHostDeploymentNegligible(t *testing.T) {
	cfg := baseConfig(t, 150)
	cfg.Ticks = 40
	noRL, err := MultiRun(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := DeployHostFraction(cfg.Graph, cfg.Roles, 0.05, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg5 := cfg
	cfg5.LimitedNodes = nodes
	host5, err := MultiRun(cfg5, 5)
	if err != nil {
		t.Fatal(err)
	}
	t0, t5 := noRL.TimeToLevel(0.5), host5.TimeToLevel(0.5)
	if math.IsNaN(t0) || math.IsNaN(t5) {
		t.Fatalf("levels not reached: %v %v", t0, t5)
	}
	if t5 > t0*1.5 {
		t.Errorf("5%% host RL should be negligible: %v vs %v", t5, t0)
	}
}

func TestHostsOnlyProtectsRouters(t *testing.T) {
	cfg := baseConfig(t, 100)
	cfg.HostsOnly = true
	cfg.InitialInfected = 2
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if got := res.FinalInfected(); got < 0.99 {
		t.Errorf("hosts should still saturate, got %v", got)
	}
	for u := 0; u < cfg.Graph.N(); u++ {
		if cfg.Roles[u] != topology.RoleHost && eng.stateOf(u) == stateInfected {
			t.Fatalf("router %d was infected", u)
		}
	}
}

func TestDropPolicyNoBacklog(t *testing.T) {
	cfg := baseConfig(t, 150)
	cfg.LimitedNodes = DeployBackbone(cfg.Roles)
	cfg.BaseRate = 1
	cfg.Policy = PolicyDrop
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	// With dropping, queues are cleared every tick: backlog only holds
	// packets enqueued this tick that exceeded nothing — i.e. packets
	// enqueued during deliver. It must stay small relative to queueing.
	cfgQ := cfg
	cfgQ.Policy = PolicyQueue
	engQ, err := New(cfgQ)
	if err != nil {
		t.Fatal(err)
	}
	resQ := engQ.Run()
	maxDrop, maxQueue := 0, 0
	for i := range res.Backlog {
		if res.Backlog[i] > maxDrop {
			maxDrop = res.Backlog[i]
		}
		if resQ.Backlog[i] > maxQueue {
			maxQueue = resQ.Backlog[i]
		}
	}
	if maxDrop >= maxQueue {
		t.Errorf("drop backlog %d should be below queue backlog %d", maxDrop, maxQueue)
	}
}

func TestLocalPreferentialStrategyInSim(t *testing.T) {
	cfg := baseConfig(t, 150)
	f, err := worm.NewLocalPreferentialFactory(0.8)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Strategy = f
	cfg.Subnet = topology.Subnets(cfg.Graph, cfg.Roles)
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if got := res.FinalInfected(); got < 0.95 {
		t.Errorf("local-pref epidemic should still saturate, got %v", got)
	}
}

func TestMultiRunAveragesAndErrors(t *testing.T) {
	cfg := baseConfig(t, 60)
	cfg.Ticks = 30
	res, err := MultiRun(cfg, 3)
	if err != nil {
		t.Fatalf("MultiRun: %v", err)
	}
	if len(res.Infected) != 30 {
		t.Fatalf("series length = %d", len(res.Infected))
	}
	if _, err := MultiRun(cfg, 0); err == nil {
		t.Error("runs=0 should fail")
	}
	bad := cfg
	bad.Ticks = 0
	if _, err := MultiRun(bad, 2); err == nil {
		t.Error("invalid config should propagate")
	}
}

func TestDeployHelpers(t *testing.T) {
	cfg := baseConfig(t, 200)
	hosts, err := DeployHostFraction(cfg.Graph, cfg.Roles, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	nHosts := len(topology.NodesWithRole(cfg.Roles, topology.RoleHost))
	if want := int(0.3 * float64(nHosts)); len(hosts) != want {
		t.Errorf("host deployment = %d, want %d", len(hosts), want)
	}
	for _, u := range hosts {
		if cfg.Roles[u] != topology.RoleHost {
			t.Fatalf("node %d in host deployment is %v", u, cfg.Roles[u])
		}
	}
	if _, err := DeployHostFraction(cfg.Graph, cfg.Roles, 1.2, 1); err == nil {
		t.Error("frac > 1 should fail")
	}
	// nil roles: all nodes are candidates.
	all, err := DeployHostFraction(cfg.Graph, nil, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != cfg.Graph.N() {
		t.Errorf("nil-roles full deployment = %d, want %d", len(all), cfg.Graph.N())
	}
	if len(DeployEdgeRouters(cfg.Roles)) == 0 || len(DeployBackbone(cfg.Roles)) == 0 {
		t.Error("router deployments should be non-empty")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Infected: []float64{0.1, 0.4, 0.9}}
	if got := r.TimeToLevel(0.4); got != 2 {
		t.Errorf("TimeToLevel(0.4) = %v, want 2", got)
	}
	if !math.IsNaN(r.TimeToLevel(0.95)) {
		t.Error("unreached level should be NaN")
	}
	empty := &Result{}
	if !math.IsNaN(empty.FinalInfected()) || !math.IsNaN(empty.FinalEverInfected()) {
		t.Error("empty result finals should be NaN")
	}
}
