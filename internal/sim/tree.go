package sim

import "sort"

// TreeStats summarizes an infection genealogy (Config.RecordInfections).
type TreeStats struct {
	// Total is the number of ever-infected nodes including seeds.
	Total int
	// Seeds is the number of initial infections.
	Seeds int
	// MaxDepth is the deepest infection generation (seeds are 0).
	MaxDepth int
	// MeanDepth is the average generation over all infections.
	MeanDepth float64
	// MaxSecondary is the largest number of victims any single host
	// infected — the super-spreader count.
	MaxSecondary int
	// MeanSecondary is the average number of secondary infections per
	// *infecting-capable* host (every ever-infected host), the
	// genealogy's empirical reproduction estimate. In a saturating
	// epidemic this tends to (Total − Seeds)/Total ≈ 1.
	MeanSecondary float64
	// DepthHistogram maps generation -> count.
	DepthHistogram map[int]int
}

// AnalyzeTree computes TreeStats from a recorded genealogy. Returns the
// zero value when no genealogy was recorded.
func AnalyzeTree(r *Result) TreeStats {
	if len(r.Infections) == 0 {
		return TreeStats{}
	}
	depths := r.InfectionDepths()
	stats := TreeStats{
		Total:          len(r.Infections),
		DepthHistogram: make(map[int]int),
	}
	secondary := make(map[int]int)
	var depthSum int
	for _, inf := range r.Infections {
		d := depths[int(inf.Victim)]
		stats.DepthHistogram[d]++
		depthSum += d
		if d > stats.MaxDepth {
			stats.MaxDepth = d
		}
		if inf.Source < 0 {
			stats.Seeds++
			continue
		}
		secondary[int(inf.Source)]++
	}
	stats.MeanDepth = float64(depthSum) / float64(stats.Total)
	for _, c := range secondary {
		if c > stats.MaxSecondary {
			stats.MaxSecondary = c
		}
	}
	stats.MeanSecondary = float64(stats.Total-stats.Seeds) / float64(stats.Total)
	return stats
}

// InfectionsPerTick converts a genealogy into a per-tick new-infection
// count series over [0, maxTick], the discrete analogue of the models'
// dI/dt. Seed infections (tick -1) are excluded.
func InfectionsPerTick(r *Result, maxTick int) []int {
	out := make([]int, maxTick+1)
	for _, inf := range r.Infections {
		if inf.Tick >= 0 && int(inf.Tick) <= maxTick {
			out[inf.Tick]++
		}
	}
	return out
}

// TopSpreaders returns the k hosts with the most secondary infections,
// descending (ties by node ID ascending).
func TopSpreaders(r *Result, k int) []struct{ Node, Victims int } {
	secondary := make(map[int]int)
	for _, inf := range r.Infections {
		if inf.Source >= 0 {
			secondary[int(inf.Source)]++
		}
	}
	out := make([]struct{ Node, Victims int }, 0, len(secondary))
	for node, v := range secondary {
		out = append(out, struct{ Node, Victims int }{node, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Victims != out[j].Victims {
			return out[i].Victims > out[j].Victims
		}
		return out[i].Node < out[j].Node
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
