package sim

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/worm"
)

// checkActiveSets verifies the dense-layout invariants after a run: the
// infected bitset mirrors the state slice, the queue bitset marks
// exactly the non-empty queues, and the running backlog counter equals
// the true queued-packet total.
func checkActiveSets(t *testing.T, e *Engine) {
	t.Helper()
	for u := 0; u < e.n; u++ {
		bit := e.infectedBits[u>>6]&(1<<(uint(u)&63)) != 0
		if want := e.stateOf(u) == stateInfected; bit != want {
			t.Errorf("node %d: infected bit %v, state infected %v", u, bit, want)
		}
	}
	total := 0
	for li := 0; li < e.links.Count(); li++ {
		q := e.queueAt(li)
		total += len(q)
		bit := e.queueBits[li>>6]&(1<<(uint(li)&63)) != 0
		if want := len(q) > 0; bit != want {
			t.Errorf("link %d: queue bit %v, len %d", li, bit, len(q))
		}
	}
	if total != e.backlog {
		t.Errorf("backlog counter %d, queues hold %d", e.backlog, total)
	}
}

func TestActiveSetInvariantsAfterRun(t *testing.T) {
	for name, cfg := range goldenScenarios(t) {
		eng, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		eng.Run()
		checkActiveSets(t, eng)
	}
}

// starConfig wires a small star topology (center 0) for cap tests.
func starConfig(t *testing.T, n int) Config {
	t.Helper()
	g, err := topology.Star(n)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Graph: g, Beta: 1, ScansPerTick: 2,
		Strategy:        worm.NewRandomFactory(),
		InitialInfected: 1, Ticks: 40, Seed: 3,
	}
}

// A zero-budget node cap must freeze forwarding through the hub while
// packets keep queueing (PolicyQueue): the worm reaches at most the hub
// itself (delivery to the hub crosses no hub-owned queue) and the
// backlog grows without bound.
func TestNodeCapZeroBudgetQueues(t *testing.T) {
	cfg := starConfig(t, 12)
	cfg.NodeCaps = map[int]int{0: 0}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	pop := float64(cfg.Graph.N())
	if got := res.FinalEverInfected(); got > 2/pop+1e-12 {
		t.Errorf("ever infected %v, want <= %v (seed + hub only)", got, 2/pop)
	}
	last := res.Backlog[len(res.Backlog)-1]
	if last == 0 {
		t.Fatal("backlog empty despite a zero-budget hub")
	}
	for i := 1; i < len(res.Backlog); i++ {
		if res.Backlog[i] < res.Backlog[i-1] {
			t.Fatalf("backlog shrank at tick %d (%d -> %d) with no drain path",
				i, res.Backlog[i-1], res.Backlog[i])
		}
	}
	checkActiveSets(t, eng)
}

// With PolicyDrop the same zero-budget hub discards its queues every
// tick instead: the backlog stays bounded by one tick's arrivals and
// the infection is equally frozen.
func TestNodeCapZeroBudgetDrops(t *testing.T) {
	cfg := starConfig(t, 12)
	cfg.NodeCaps = map[int]int{0: 0}
	cfg.Policy = PolicyDrop
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	pop := float64(cfg.Graph.N())
	if got := res.FinalEverInfected(); got > 2/pop+1e-12 {
		t.Errorf("ever infected %v, want <= %v", got, 2/pop)
	}
	// At record time the backlog holds at most what this tick's deliver
	// staged into the hub's queues: 2 infected x 2 scans.
	for i, b := range res.Backlog {
		if b > 4 {
			t.Fatalf("tick %d: backlog %d, want <= 4 under PolicyDrop", i, b)
		}
	}
	checkActiveSets(t, eng)
}

// MaxQueue DropTail on the dense queues: buffers never exceed the bound
// and drops only slow the worm down, they do not stop it.
func TestMaxQueueDropTail(t *testing.T) {
	cfg := starConfig(t, 20)
	cfg.ScansPerTick = 10
	cfg.InitialInfected = 5
	cfg.MaxQueue = 1
	cfg.Ticks = 60
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Peek at queue occupancy every tick, not just at the end.
	maxLinks := 2 * cfg.Graph.M()
	res := &Result{}
	for tick := 0; tick < cfg.Ticks; tick++ {
		eng.tick = tick
		eng.scansThisTick = 0
		eng.generate()
		eng.updateQuarantine()
		eng.rechargeLinks()
		eng.transmit()
		eng.deliver()
		eng.immunize(tick)
		eng.record(res)
		for s, q := range eng.queueTab {
			if len(q) > cfg.MaxQueue {
				t.Fatalf("tick %d: link %d queue %d > MaxQueue %d", tick, eng.queueLink[s], len(q), cfg.MaxQueue)
			}
		}
		if b := res.Backlog[tick]; b > maxLinks*cfg.MaxQueue {
			t.Fatalf("tick %d: backlog %d exceeds %d bounded queues", tick, b, maxLinks)
		}
	}
	if got := res.FinalEverInfected(); got != 1 {
		t.Errorf("ever infected %v, want full saturation despite DropTail", got)
	}
	checkActiveSets(t, eng)
}

// Immunization with Mu=1 empties the infected active set mid-run: the
// infected series drops to zero, stays there, and no infection ever
// happens afterwards (in-flight exploits hit removed hosts).
func TestImmunizationEmptiesActiveSet(t *testing.T) {
	cfg := starConfig(t, 30)
	cfg.Ticks = 30
	cfg.InitialInfected = 3
	cfg.Immunize = &Immunization{StartTick: 5, Mu: 1}
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if res.Infected[4] == 0 {
		t.Fatal("worm died before immunization started; scenario is vacuous")
	}
	for tick := 5; tick < cfg.Ticks; tick++ {
		if res.Infected[tick] != 0 {
			t.Errorf("tick %d: infected %v after total immunization", tick, res.Infected[tick])
		}
		if res.Immunized[tick] != 1 {
			t.Errorf("tick %d: immunized %v, want 1", tick, res.Immunized[tick])
		}
		if res.EverInfected[tick] != res.EverInfected[5] {
			t.Errorf("tick %d: ever-infected grew after everyone was removed", tick)
		}
	}
	for w, word := range eng.infectedBits {
		if word != 0 {
			t.Errorf("infected bitset word %d = %x after total immunization", w, word)
		}
	}
	checkActiveSets(t, eng)
}

// A capped hub with a tiny budget still makes progress (round-robin
// serves every queue eventually) — guards the budget>0 scheduler path
// over the dense layout.
func TestNodeCapSmallBudgetProgresses(t *testing.T) {
	cfg := starConfig(t, 16)
	cfg.NodeCaps = map[int]int{0: 1}
	cfg.Ticks = 400
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if got := res.FinalEverInfected(); got != 1 {
		t.Errorf("ever infected %v, want 1 (cap 1 only delays saturation)", got)
	}
	checkActiveSets(t, eng)
}
