package sim

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/ratelimit"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/worm"
)

// triggerConfig is a fully deterministic scan-trigger scenario: β = 1
// skips every infection roll and the sequential worm picks targets
// without the RNG, so the only randomness is seed placement — identical
// across config variants with the same seed. The 4 seeds × 2 scans/tick
// cross the 8-scans threshold in tick 0.
func triggerConfig(t *testing.T) Config {
	t.Helper()
	g, err := topology.Star(60)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Graph: g, Beta: 1, ScansPerTick: 2,
		Strategy:        worm.NewSequentialFactory(),
		InitialInfected: 4, Ticks: 30, Seed: 5,
		Quarantine: &Quarantine{TriggerScansPerTick: 8, Delay: 0},
	}
}

// TestTriggerCountsPreThrottleAttempts is the regression test for the
// trigger-accounting bug: scan attempts are counted at the monitor
// point (after the β roll and self-target skip, before the host
// contact limiter), so the detector sees the same attempt stream
// whether or not hosts throttle their contacts. Under the old
// post-limiter accounting, the throttled run under-counted and
// triggered late (or never).
func TestTriggerCountsPreThrottleAttempts(t *testing.T) {
	open := triggerConfig(t)
	eng, err := New(open)
	if err != nil {
		t.Fatal(err)
	}
	unlimited := eng.Run()

	limited := triggerConfig(t)
	for u := 0; u < limited.Graph.N(); u++ {
		limited.HostLimiterNodes = append(limited.HostLimiterNodes, u)
	}
	limited.HostLimiterFactory = func() ratelimit.ContactLimiter {
		l, err := ratelimit.NewWilliamsonThrottle(1, 1)
		if err != nil {
			panic(err)
		}
		return l
	}
	eng, err = New(limited)
	if err != nil {
		t.Fatal(err)
	}
	throttled := eng.Run()

	// Tick 0 carries 4 seeds × 2 scans = 8 attempts at the monitor
	// point; the boundary evaluation fires the Delay=0 trigger at the
	// start of tick 1 — in both runs, although the Williamson(1,1)
	// throttle blocks half the contacts of the limited one.
	if unlimited.QuarantineTick != 1 {
		t.Errorf("unlimited run triggered at tick %d, want 1", unlimited.QuarantineTick)
	}
	if throttled.QuarantineTick != unlimited.QuarantineTick {
		t.Errorf("host-limited run triggered at tick %d, unlimited at %d: detector must see pre-throttle attempts",
			throttled.QuarantineTick, unlimited.QuarantineTick)
	}
	// And the throttle did bite: the limited epidemic is no faster.
	if throttled.FinalEverInfected() > unlimited.FinalEverInfected() {
		t.Errorf("throttled spread %.3f exceeds unlimited %.3f",
			throttled.FinalEverInfected(), unlimited.FinalEverInfected())
	}
}

// TestQuarantineDelayZeroNextTick pins the tick-boundary semantics:
// with Delay = 0 a threshold crossed during tick t activates the
// defense at the start of tick t+1 — a tick is fully open or fully
// defended, never retroactively gated.
func TestQuarantineDelayZeroNextTick(t *testing.T) {
	cfg := triggerConfig(t)
	cfg.LimitedNodes = []int{topology.Hub}
	cfg.BaseRate = 1
	ring := obs.NewRing(cfg.Ticks)
	cfg.Collector = ring
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if res.QuarantineTick != 1 {
		t.Fatalf("QuarantineTick = %d, want 1 (threshold crossed in tick 0, effective next tick)", res.QuarantineTick)
	}
	if ring.At(0).QuarantineActive {
		t.Error("tick 0 reported as defended; it crossed the threshold but must run open")
	}
	if !ring.At(1).QuarantineActive {
		t.Error("tick 1 not defended despite tick 0 crossing the threshold with Delay=0")
	}
	if got := ring.Summary().QuarantineTick; got != 1 {
		t.Errorf("activation event at tick %d, want 1", got)
	}
}

// TestQuarantineLevelPreCrossedMatchesAlwaysOn: when the seeds already
// satisfy a level trigger, the Delay=0 boundary evaluation activates
// the defense before tick 0 runs — the dynamic run is byte-identical
// to an always-on deployment of the same limits.
func TestQuarantineLevelPreCrossedMatchesAlwaysOn(t *testing.T) {
	base := triggerConfig(t)
	base.LimitedNodes = []int{topology.Hub}
	base.BaseRate = 1

	always := base
	always.Quarantine = nil
	eng, err := New(always)
	if err != nil {
		t.Fatal(err)
	}
	wantRes := eng.Run()

	dyn := base
	// 4 seeds / 60 nodes = 6.7% infected before tick 0.
	dyn.Quarantine = &Quarantine{TriggerLevel: 0.05, Delay: 0}
	eng, err = New(dyn)
	if err != nil {
		t.Fatal(err)
	}
	gotRes := eng.Run()

	if gotRes.QuarantineTick != 0 || wantRes.QuarantineTick != 0 {
		t.Errorf("quarantine ticks = %d (dynamic) / %d (always-on), want 0 / 0",
			gotRes.QuarantineTick, wantRes.QuarantineTick)
	}
	if !reflect.DeepEqual(gotRes, wantRes) {
		t.Error("pre-crossed Delay=0 quarantine diverged from always-on deployment")
	}
}

// countdownCtx reports an error from its K+1th Err() call — the engine
// polls Err once per tick, so exactly K ticks complete.
type countdownCtx struct {
	context.Context
	remaining int
	cause     error
}

func (c *countdownCtx) Err() error {
	if c.remaining <= 0 {
		return c.cause
	}
	c.remaining--
	return nil
}

// TestRunContextCancelPartials checks the truncation contract of a
// cancelled run: all four series stop at the same tick, the metrics
// ring stops with them, and per-run data (genealogy, activation tick)
// never refer past the last completed tick.
func TestRunContextCancelPartials(t *testing.T) {
	const ranTicks = 7
	cfg := multiRunConfig(t)
	cfg.RecordInfections = true
	cfg.Quarantine = &Quarantine{TriggerLevel: 0.01, Delay: 1}
	ring := obs.NewRing(cfg.Ticks)
	cfg.Collector = ring
	cfg.Check = true
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("deadline")
	ctx := &countdownCtx{Context: context.Background(), remaining: ranTicks, cause: sentinel}
	res, err := eng.RunContext(ctx)
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want the context cause", err)
	}
	for name, n := range map[string]int{
		"Infected":     len(res.Infected),
		"EverInfected": len(res.EverInfected),
		"Immunized":    len(res.Immunized),
		"Backlog":      len(res.Backlog),
	} {
		if n != ranTicks {
			t.Errorf("%s has %d entries, want %d", name, n, ranTicks)
		}
	}
	if ring.Len() != ranTicks {
		t.Errorf("metrics ring has %d ticks, want %d", ring.Len(), ranTicks)
	}
	if res.QuarantineTick >= ranTicks {
		t.Errorf("QuarantineTick %d refers past the %d completed ticks", res.QuarantineTick, ranTicks)
	}
	for _, inf := range res.Infections {
		if inf.Tick >= ranTicks {
			t.Errorf("infection at tick %d recorded after cancellation at %d", inf.Tick, ranTicks)
		}
	}
}

// TestGoldenSeriesAudited runs every golden scenario under the
// invariant audit with a full metrics ring attached and checks the
// series stay byte-identical to a plain run: observability must be a
// pure observer, and the audited engine state must be self-consistent
// on every tick of every feature cluster.
func TestGoldenSeriesAudited(t *testing.T) {
	for name, cfg := range goldenScenarios(t) {
		plainEng, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		plain := plainEng.Run()

		audited := cfg
		audited.Check = true
		ring := obs.NewRing(cfg.Ticks)
		audited.Collector = ring
		auditedEng, err := New(audited)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := auditedEng.RunContext(context.Background())
		if err != nil {
			t.Errorf("%s: audit failed: %v", name, err)
			continue
		}
		if !reflect.DeepEqual(toGolden(res), toGolden(plain)) {
			t.Errorf("%s: series with collector+audit diverged from plain run", name)
		}
		if ring.Len() != cfg.Ticks {
			t.Errorf("%s: ring has %d ticks, want %d", name, ring.Len(), cfg.Ticks)
		}
		// Per-tick flow consistency: every packet generated this tick
		// was a surviving scan attempt or a probe-path injection.
		for i := 0; i < ring.Len(); i++ {
			m := ring.At(i)
			passed := m.ScanAttempts - m.ThrottledContacts
			if !cfg.ProbeFirst && m.PacketsGenerated != passed {
				t.Errorf("%s tick %d: generated %d != attempts %d - throttled %d",
					name, m.Tick, m.PacketsGenerated, m.ScanAttempts, m.ThrottledContacts)
				break
			}
			if cfg.ProbeFirst && m.PacketsGenerated < passed {
				t.Errorf("%s tick %d: generated %d < surviving attempts %d",
					name, m.Tick, m.PacketsGenerated, passed)
				break
			}
		}
	}
}

// TestAuditCatchesCorruption seeds live engines with single-field
// state corruption and checks the per-tick audit reports it as an
// obs.ErrInvariant before the run completes.
func TestAuditCatchesCorruption(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(*Engine)
	}{
		{"backlog counter drift", func(e *Engine) { e.backlog += 3 }},
		{"infected counter drift", func(e *Engine) { e.infected++ }},
		{"phantom drop", func(e *Engine) { e.dropCount++ }},
		{"lost generation", func(e *Engine) { e.genCount += 5 }},
		{"missing infected bit", func(e *Engine) {
			// Drop one genuinely infected node from the active set: the
			// bitset popcount no longer matches the infected counter.
			for w, word := range e.infectedBits {
				if word != 0 {
					e.infectedBits[w] &= word - 1 // clear lowest set bit
					return
				}
			}
		}},
	}
	for _, tt := range corruptions {
		t.Run(tt.name, func(t *testing.T) {
			cfg := multiRunConfig(t)
			cfg.Check = true
			eng, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tt.corrupt(eng)
			res, err := eng.RunContext(context.Background())
			if err == nil {
				t.Fatal("corrupted engine completed its run under -check")
			}
			if !errors.Is(err, obs.ErrInvariant) {
				t.Errorf("error does not match obs.ErrInvariant: %v", err)
			}
			if len(res.Infected) >= cfg.Ticks {
				t.Errorf("run was not aborted: %d ticks recorded", len(res.Infected))
			}
		})
	}
}

// TestRunPanicsOnAuditFailure: Run has no error channel, so a violated
// invariant must not be silently dropped.
func TestRunPanicsOnAuditFailure(t *testing.T) {
	cfg := multiRunConfig(t)
	cfg.Check = true
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng.backlog += 7
	defer func() {
		if recover() == nil {
			t.Error("Run did not panic on a corrupted engine under Check")
		}
	}()
	eng.Run()
}

// TestMultiRunCounters: batch counter aggregation is deterministic
// across job counts, and attaching collectors never perturbs the
// averaged series.
func TestMultiRunCounters(t *testing.T) {
	cfg := multiRunConfig(t)
	const runs = 4
	plain, err := MultiRunContext(context.Background(), cfg, runs, runner.WithJobs(2))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Counters != nil {
		t.Errorf("counters without a collector factory: %v", plain.Counters)
	}

	cfg.CollectorFactory = func(int) obs.Collector { return obs.NewTally() }
	var byJobs []map[string]int64
	for _, jobs := range []int{1, 4} {
		res, err := MultiRunContext(context.Background(), cfg, runs, runner.WithJobs(jobs))
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(res.Infected, plain.Infected) || !reflect.DeepEqual(res.Backlog, plain.Backlog) {
			t.Errorf("jobs=%d: collectors perturbed the averaged series", jobs)
		}
		byJobs = append(byJobs, res.Counters)
	}
	if !reflect.DeepEqual(byJobs[0], byJobs[1]) {
		t.Errorf("counters differ across job counts:\n jobs=1: %v\n jobs=4: %v", byJobs[0], byJobs[1])
	}
	c := byJobs[0]
	if want := int64(runs * cfg.Ticks); c["ticks"] != want {
		t.Errorf("ticks counter = %d, want %d", c["ticks"], want)
	}
	if c["scan_attempts"] <= 0 || c["packets_generated"] <= 0 {
		t.Errorf("flow counters empty: %v", c)
	}
	if c["infections"] <= 0 {
		t.Errorf("no infections counted: %v", c)
	}
}
