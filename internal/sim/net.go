package sim

import "repro/internal/topology"

// Net is an opaque handle to the immutable graph-derived routing state
// (link enumeration plus dense hop table or structural router) that
// every replica of a configuration shares. MultiRun already builds one
// per batch; callers running *several* batches over the same graph —
// a parameter sweep where only the worm or defense varies between grid
// points — can build the Net once with BuildNet and hand it to each
// batch via Config.Net, skipping the all-pairs routing construction
// for every batch after the first. A Net is read-only after
// construction and safe for concurrent use by any number of engines.
type Net struct {
	graph *topology.Graph
	ns    *netState
	// threshold is the resolved structural threshold the state was
	// built with; Validate rejects a Config whose own threshold
	// resolves differently (the two would route with different
	// representations, and the config's knob would silently not apply).
	threshold int
}

// BuildNet constructs the shared routing state for g with the default
// structural threshold. The graph must not be mutated afterwards;
// engines assume the Net and the graph agree.
func BuildNet(g *topology.Graph) *Net {
	return BuildNetThreshold(g, 0)
}

// BuildNetThreshold is BuildNet with an explicit structural threshold,
// interpreted like Config.StructuralThreshold (0 default, -1 dense
// table at every size, >0 the switch point). Use it when the configs
// sharing the Net set a non-default threshold.
func BuildNetThreshold(g *topology.Graph, threshold int) *Net {
	thr := resolveStructuralThreshold(threshold)
	return &Net{graph: g, ns: newNetState(g, thr), threshold: thr}
}

// Graph returns the graph the Net was built from.
func (n *Net) Graph() *topology.Graph { return n.graph }

// state returns the wrapped routing state (nil receiver safe).
func (n *Net) state() *netState {
	if n == nil {
		return nil
	}
	return n.ns
}
