package sim

import "repro/internal/topology"

// Net is an opaque handle to the immutable graph-derived routing state
// (link enumeration plus dense hop table or structural router) that
// every replica of a configuration shares. MultiRun already builds one
// per batch; callers running *several* batches over the same graph —
// a parameter sweep where only the worm or defense varies between grid
// points — can build the Net once with BuildNet and hand it to each
// batch via Config.Net, skipping the all-pairs routing construction
// for every batch after the first. A Net is read-only after
// construction and safe for concurrent use by any number of engines.
type Net struct {
	graph *topology.Graph
	ns    *netState
}

// BuildNet constructs the shared routing state for g. The graph must
// not be mutated afterwards; engines assume the Net and the graph
// agree.
func BuildNet(g *topology.Graph) *Net {
	return &Net{graph: g, ns: newNetState(g)}
}

// Graph returns the graph the Net was built from.
func (n *Net) Graph() *topology.Graph { return n.graph }

// state returns the wrapped routing state (nil receiver safe).
func (n *Net) state() *netState {
	if n == nil {
		return nil
	}
	return n.ns
}
