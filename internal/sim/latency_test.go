package sim

import "testing"

func TestTrackLatencyOpenNetwork(t *testing.T) {
	cfg := baseConfig(t, 100)
	cfg.TrackLatency = true
	res, err := MultiRun(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MeanLatency) != cfg.Ticks {
		t.Fatalf("latency series length %d", len(res.MeanLatency))
	}
	// On an uncongested BA graph the latency is the shortest-path hop
	// count: small and stable.
	peak := 0.0
	for _, l := range res.MeanLatency {
		if l < 0 {
			t.Fatal("negative latency")
		}
		if l > peak {
			peak = l
		}
	}
	if peak < 1 || peak > 15 {
		t.Errorf("peak open-network latency %v, want a few hops", peak)
	}
}

func TestRateLimitingRaisesLatency(t *testing.T) {
	cfg := baseConfig(t, 150)
	cfg.TrackLatency = true
	cfg.ScansPerTick = 10
	cfg.MaxQueue = 50
	open, err := MultiRun(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.LimitedNodes = DeployBackbone(cfg.Roles)
	cfg.BaseRate = 0.4
	limited, err := MultiRun(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	maxOpen, maxLimited := 0.0, 0.0
	for i := range open.MeanLatency {
		if open.MeanLatency[i] > maxOpen {
			maxOpen = open.MeanLatency[i]
		}
		if limited.MeanLatency[i] > maxLimited {
			maxLimited = limited.MeanLatency[i]
		}
	}
	if maxLimited <= maxOpen {
		t.Errorf("rate limiting should raise queueing latency: %v vs %v", maxLimited, maxOpen)
	}
}
