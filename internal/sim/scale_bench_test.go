package sim

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"testing"
	"time"

	"repro/internal/topology"
	"repro/internal/worm"
)

// BenchmarkEngineTickScale measures the large-topology path: two-level
// AS graphs from 1k to 1M hosts, backbone rate limiting, 1 vs NumCPU
// intra-run workers. Reported metrics: ns/tick (worm dynamics, engine
// construction excluded) and B/host (steady engine + routing footprint,
// measured once per size; above the structural threshold there is no
// O(N²) hop table to blow it up). Results are recorded in
// BENCH_engine.json. The full suite — including the 1M-host size —
// runs under `make bench-scale`; with -short (the `make bench-smoke` /
// CI path) sizes above 10k hosts are skipped.
func BenchmarkEngineTickScale(b *testing.B) {
	for _, hosts := range []int{1_000, 10_000, 100_000, 1_000_000, 10_000_000} {
		if testing.Short() && hosts > 10_000 {
			continue
		}
		hosts := hosts
		// The topology is built inside the size group so a -bench filter
		// on one size never pays for the others' construction.
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			g, roles := scaleTopology(b, hosts)
			heap := measureHeap(b, func() any { return newNetState(g, DefaultStructuralThreshold) })
			ns := heap.v.(*netState)
			// workers=2 is always recorded so the multi-worker column
			// exists even on single-core recording machines (where it
			// honestly measures sharding overhead, not speedup); larger
			// machines add their full core count on top.
			workerCounts := []int{1, 2}
			if n := runtime.NumCPU(); n > 2 {
				workerCounts = append(workerCounts, n)
			}
			for _, workers := range workerCounts {
				cfg := Config{
					Graph: g, Roles: roles,
					Beta: 0.8, ScansPerTick: 10,
					Strategy:        worm.NewRandomFactory(),
					InitialInfected: max(hosts/100, 1), Ticks: 10, Seed: 11,
					MaxQueue: 50, Workers: workers,
					LimitedNodes: DeployBackbone(roles), BaseRate: 0.4,
				}
				b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
					if err := cfg.Validate(); err != nil {
						b.Fatal(err)
					}
					resetPeakRSS()
					var engBytes uint64
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						var eng *Engine
						h := measureHeap(b, func() any {
							e, err := newEngine(cfg, ns)
							if err != nil {
								b.Fatal(err)
							}
							return e
						})
						eng, engBytes = h.v.(*Engine), h.bytes
						b.StartTimer()
						eng.Run()
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*cfg.Ticks), "ns/tick")
					b.ReportMetric(float64(heap.bytes+engBytes)/float64(g.N()), "B/host")
					if kb := peakRSSKB(); kb > 0 {
						b.ReportMetric(float64(kb), "peakRSS-KB")
					}
				})
			}
		})
	}
}

// scaleTopology builds a two-level AS internet with roughly the given
// number of hosts (256 per stub AS; the AS core is ~1.6% of the total).
func scaleTopology(b *testing.B, hosts int) (*topology.Graph, []topology.Role) {
	b.Helper()
	const perStub = 256
	stubs := max(hosts/perStub, 4)
	ases := stubs * 20 / 19 // TransitFraction 0.05: transit ASes on top of the stubs
	g, roles, _, err := topology.TwoLevel(topology.TwoLevelConfig{
		ASes: ases, AttachM: 2, TransitFraction: 0.05, HostsPerStub: perStub,
	}, rand.New(rand.NewSource(42)))
	if err != nil {
		b.Fatal(err)
	}
	return g, roles
}

// BenchmarkEngineTickQuiescent measures the sparse-phase fast path: a
// tick with no infected nodes and no queued packets must skip the
// generate sweep, the transmit scan, and the immunization draws, so its
// cost is O(active work), not O(N). The benchmark pins that claim — the
// quiescent tick must be at least 10x cheaper than an active tick of
// the same-size scale workload, or the coalescing has regressed.
func BenchmarkEngineTickQuiescent(b *testing.B) {
	hosts := 100_000
	if testing.Short() {
		hosts = 10_000
	}
	g, roles := scaleTopology(b, hosts)
	ns := newNetState(g, DefaultStructuralThreshold)

	// Active reference: the scale-suite workload at the same size,
	// timed over its fixed 10-tick horizon.
	activeCfg := Config{
		Graph: g, Roles: roles,
		Beta: 0.8, ScansPerTick: 10,
		Strategy:        worm.NewRandomFactory(),
		InitialInfected: max(hosts/100, 1), Ticks: 10, Seed: 11,
		MaxQueue:     50,
		LimitedNodes: DeployBackbone(roles), BaseRate: 0.4,
	}
	if err := activeCfg.Validate(); err != nil {
		b.Fatal(err)
	}
	activeEng, err := newEngine(activeCfg, ns)
	if err != nil {
		b.Fatal(err)
	}
	start := time.Now()
	activeEng.Run()
	activeNs := float64(time.Since(start).Nanoseconds()) / float64(activeCfg.Ticks)

	// Quiescent engine: zero scan success and immediate full
	// immunization kill the epidemic inside the warm-up ticks; every
	// tick after that runs the coalesced fast path.
	quiCfg := activeCfg
	quiCfg.InitialInfected = 1
	quiCfg.Beta = 0
	quiCfg.Immunize = &Immunization{StartTick: 0, Mu: 1}
	quiCfg.Ticks = 4
	if err := quiCfg.Validate(); err != nil {
		b.Fatal(err)
	}
	eng, err := newEngine(quiCfg, ns)
	if err != nil {
		b.Fatal(err)
	}
	eng.Run()
	if eng.infected != 0 || eng.backlog != 0 {
		b.Fatalf("warm-up did not reach quiescence: %d infected, backlog %d", eng.infected, eng.backlog)
	}
	// RunContext resumes from nextTick, so extending the horizon by b.N
	// runs exactly b.N quiescent ticks through the real tick loop.
	eng.cfg.Ticks += b.N
	b.ResetTimer()
	if _, err := eng.RunContext(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	quiNs := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(quiNs, "ns/tick")
	b.ReportMetric(activeNs/quiNs, "active/quiescent")
	if quiNs*10 > activeNs {
		b.Errorf("quiescent tick %.0f ns is not >=10x cheaper than active tick %.0f ns", quiNs, activeNs)
	}
}

// resetPeakRSS clears the kernel's peak-RSS watermark (VmHWM) for this
// process by writing "5" to /proc/self/clear_refs (Linux >= 4.0), so
// each bench leaf's peak reading reflects only its own sizes — without
// the reset, a 1M-host leaf would report the 10M leaf's residue. The
// watermark resets to the *current* resident set, so freed-but-retained
// heap pages (construction garbage of earlier leaves) are returned to
// the OS first. Silently a no-op where the interface does not exist.
func resetPeakRSS() {
	debug.FreeOSMemory()
	_ = os.WriteFile("/proc/self/clear_refs", []byte("5"), 0)
}

// peakRSSKB reads the process peak resident set (VmHWM) in KB from
// /proc/self/status; 0 where the interface does not exist.
func peakRSSKB() int {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.Atoi(string(fields[0]))
		if err != nil {
			return 0
		}
		return kb
	}
	return 0
}

type heapMeasure struct {
	v     any
	bytes uint64
}

// measureHeap runs build and returns its result together with the heap
// growth it caused (GC'd before and after, so short-lived construction
// garbage is excluded).
func measureHeap(b *testing.B, build func() any) heapMeasure {
	b.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	v := build()
	runtime.GC()
	runtime.ReadMemStats(&after)
	bytes := uint64(0)
	if after.HeapAlloc > before.HeapAlloc {
		bytes = after.HeapAlloc - before.HeapAlloc
	}
	return heapMeasure{v: v, bytes: bytes}
}
