package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/topology"
	"repro/internal/worm"
)

// BenchmarkEngineTickScale measures the large-topology path: two-level
// AS graphs from 1k to 1M hosts, backbone rate limiting, 1 vs NumCPU
// intra-run workers. Reported metrics: ns/tick (worm dynamics, engine
// construction excluded) and B/host (steady engine + routing footprint,
// measured once per size; above the structural threshold there is no
// O(N²) hop table to blow it up). Results are recorded in
// BENCH_engine.json. The full suite — including the 1M-host size —
// runs under `make bench-scale`; with -short (the `make bench-smoke` /
// CI path) sizes above 10k hosts are skipped.
func BenchmarkEngineTickScale(b *testing.B) {
	for _, hosts := range []int{1_000, 10_000, 100_000, 1_000_000} {
		if testing.Short() && hosts > 10_000 {
			continue
		}
		hosts := hosts
		// The topology is built inside the size group so a -bench filter
		// on one size never pays for the others' construction.
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			g, roles := scaleTopology(b, hosts)
			heap := measureHeap(b, func() any { return newNetState(g) })
			ns := heap.v.(*netState)
			workerCounts := []int{1}
			if n := runtime.NumCPU(); n > 1 {
				workerCounts = append(workerCounts, n)
			}
			for _, workers := range workerCounts {
				cfg := Config{
					Graph: g, Roles: roles,
					Beta: 0.8, ScansPerTick: 10,
					Strategy:        worm.NewRandomFactory(),
					InitialInfected: max(hosts/100, 1), Ticks: 10, Seed: 11,
					MaxQueue: 50, Workers: workers,
					LimitedNodes: DeployBackbone(roles), BaseRate: 0.4,
				}
				b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
					if err := cfg.Validate(); err != nil {
						b.Fatal(err)
					}
					var engBytes uint64
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						var eng *Engine
						h := measureHeap(b, func() any {
							e, err := newEngine(cfg, ns)
							if err != nil {
								b.Fatal(err)
							}
							return e
						})
						eng, engBytes = h.v.(*Engine), h.bytes
						b.StartTimer()
						eng.Run()
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*cfg.Ticks), "ns/tick")
					b.ReportMetric(float64(heap.bytes+engBytes)/float64(g.N()), "B/host")
				})
			}
		})
	}
}

// scaleTopology builds a two-level AS internet with roughly the given
// number of hosts (256 per stub AS; the AS core is ~1.6% of the total).
func scaleTopology(b *testing.B, hosts int) (*topology.Graph, []topology.Role) {
	b.Helper()
	const perStub = 256
	stubs := max(hosts/perStub, 4)
	ases := stubs * 20 / 19 // TransitFraction 0.05: transit ASes on top of the stubs
	g, roles, _, err := topology.TwoLevel(topology.TwoLevelConfig{
		ASes: ases, AttachM: 2, TransitFraction: 0.05, HostsPerStub: perStub,
	}, rand.New(rand.NewSource(42)))
	if err != nil {
		b.Fatal(err)
	}
	return g, roles
}

type heapMeasure struct {
	v     any
	bytes uint64
}

// measureHeap runs build and returns its result together with the heap
// growth it caused (GC'd before and after, so short-lived construction
// garbage is excluded).
func measureHeap(b *testing.B, build func() any) heapMeasure {
	b.Helper()
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	v := build()
	runtime.GC()
	runtime.ReadMemStats(&after)
	bytes := uint64(0)
	if after.HeapAlloc > before.HeapAlloc {
		bytes = after.HeapAlloc - before.HeapAlloc
	}
	return heapMeasure{v: v, bytes: bytes}
}
