package sim

import (
	"context"

	"repro/internal/runner"
)

// Intra-run parallelism: every shardable tick phase (generate,
// transmit, immunize) is written once as a range worker plus a
// sequential merge. A range worker touches only state owned by its
// node/link range — its nodes' RNG streams, its links' queues and
// budgets — and stages everything order-sensitive in a per-worker
// buffer; the merge then folds the buffers into engine state in worker
// order, which equals ascending node/link order. The serial path is
// the same code run as one range, so worker count cannot change
// results: Workers=1, 2, and 8 consume identical per-node RNG
// sub-streams and apply identical side effects in an identical order
// (DESIGN.md §12).

// genBuf is one generate worker's staged output: emitted packets in
// ascending (node, scan) order plus the tick's attempt counters.
type genBuf struct {
	packets   []packet
	scans     int
	throttled int
}

func (b *genBuf) reset() {
	b.packets = b.packets[:0]
	b.scans = 0
	b.throttled = 0
}

// txBuf is one transmit worker's staged output: the arrivals of its
// link range in ascending link order plus the worker's backlog/drop
// deltas. Queue-bitset clears need no staging — shard boundaries are
// word indexes, so each worker owns its words outright and clears bits
// in place.
type txBuf struct {
	arrivals []arrival
	drained  int
	dropped  uint64
}

func (b *txBuf) reset() {
	b.arrivals = b.arrivals[:0]
	b.drained = 0
	b.dropped = 0
}

// forEachShard runs f(0) .. f(shards-1): inline for a single shard, on
// the engine's worker pool otherwise. Phase shards cannot fail — the
// only pool error is a recovered task panic, which is re-raised so a
// sharded run crashes exactly where a serial run would.
func (e *Engine) forEachShard(shards int, f func(shard int)) {
	if shards <= 1 {
		f(0)
		return
	}
	if _, err := e.pool.Run(context.Background(), shards, func(_ context.Context, i int) (runner.Report, error) {
		f(i)
		return runner.Report{}, nil
	}); err != nil {
		panic(err)
	}
}
