package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/routing"
	"repro/internal/topology"
)

// DeployHostFraction returns a deterministic random selection of frac of
// the host nodes (or all nodes if roles is nil) to rate limit —
// Section 5.1's "q percent of nodes install the filter".
func DeployHostFraction(g *topology.Graph, roles []topology.Role, frac float64, seed int64) ([]int, error) {
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("sim: host fraction %v out of [0,1]", frac)
	}
	var hosts []int
	if roles == nil {
		hosts = make([]int, g.N())
		for i := range hosts {
			hosts[i] = i
		}
	} else {
		hosts = topology.NodesWithRole(roles, topology.RoleHost)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	k := int(frac * float64(len(hosts)))
	return hosts[:k], nil
}

// DeployEdgeRouters returns all edge-router nodes — Section 5.2's
// deployment set.
func DeployEdgeRouters(roles []topology.Role) []int {
	return topology.NodesWithRole(roles, topology.RoleEdge)
}

// DeployBackbone returns all backbone-router nodes — Section 5.3's
// deployment set.
func DeployBackbone(roles []topology.Role) []int {
	return topology.NodesWithRole(roles, topology.RoleBackbone)
}

// DeployEdgeUplinks returns the links that carry traffic between an edge
// router's subnet and the rest of the network: every link from an edge
// router to a neighbor that is not a host of its own subnet. Limiting
// these (rather than all edge-router links) leaves intra-subnet traffic
// unthrottled, matching Section 5.2's model where worms "propagate much
// faster within the subnet than across the Internet".
func DeployEdgeUplinks(g *topology.Graph, roles []topology.Role, subnet []int) []routing.LinkID {
	edges := topology.NodesWithRole(roles, topology.RoleEdge)
	var out []routing.LinkID
	for idx, e := range edges {
		for _, v := range g.Neighbors(e) {
			if roles[v] == topology.RoleHost && subnet[v] == idx {
				continue // link into our own subnet
			}
			out = append(out, routing.MakeLinkID(e, int(v)))
		}
	}
	return out
}

// MultiRun executes runs replicas of cfg with seeds cfg.Seed,
// cfg.Seed+1, ... and returns the element-wise average of their series —
// the paper averages each simulated curve over 10 runs. Replicas run
// concurrently (they share no mutable state; each builds its own
// engine), bounded by GOMAXPROCS; the result is deterministic because
// each replica's seed is fixed by its index.
func MultiRun(cfg Config, runs int) (*Result, error) {
	if runs < 1 {
		return nil, fmt.Errorf("sim: runs %d must be >= 1", runs)
	}
	// Validate once up front so workers cannot fail on config errors.
	probe := cfg
	probe.Seed = cfg.Seed
	if err := probe.Validate(); err != nil {
		return nil, err
	}

	results := make([]*Result, runs)
	errs := make([]error, runs)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for r := 0; r < runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			c := cfg
			c.Seed = cfg.Seed + int64(r)
			eng, err := New(c)
			if err != nil {
				errs[r] = fmt.Errorf("sim: run %d: %w", r, err)
				return
			}
			results[r] = eng.Run()
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	agg := &Result{
		Infected:     make([]float64, cfg.Ticks),
		EverInfected: make([]float64, cfg.Ticks),
		Immunized:    make([]float64, cfg.Ticks),
		Backlog:      make([]int, cfg.Ticks),
	}
	if cfg.TrackSubnets {
		agg.WithinSubnet = make([]float64, cfg.Ticks)
	}
	if cfg.TrackLatency {
		agg.MeanLatency = make([]float64, cfg.Ticks)
	}
	for r, res := range results {
		for i := 0; i < cfg.Ticks; i++ {
			agg.Infected[i] += res.Infected[i]
			agg.EverInfected[i] += res.EverInfected[i]
			agg.Immunized[i] += res.Immunized[i]
			agg.Backlog[i] += res.Backlog[i]
			if cfg.TrackSubnets {
				agg.WithinSubnet[i] += res.WithinSubnet[i]
			}
			if cfg.TrackLatency {
				agg.MeanLatency[i] += res.MeanLatency[i]
			}
		}
		if r == 0 {
			// Genealogy and activation tick are per-run data; keep the
			// first run's values.
			agg.Infections = res.Infections
			agg.QuarantineTick = res.QuarantineTick
		}
	}
	inv := 1 / float64(runs)
	for i := 0; i < cfg.Ticks; i++ {
		agg.Infected[i] *= inv
		agg.EverInfected[i] *= inv
		agg.Immunized[i] *= inv
		agg.Backlog[i] /= runs
		if cfg.TrackSubnets {
			agg.WithinSubnet[i] *= inv
		}
		if cfg.TrackLatency {
			agg.MeanLatency[i] *= inv
		}
	}
	return agg, nil
}
