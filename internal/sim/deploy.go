package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/topology"
)

// DeployHostFraction returns a deterministic random selection of frac of
// the host nodes (or all nodes if roles is nil) to rate limit —
// Section 5.1's "q percent of nodes install the filter".
func DeployHostFraction(g *topology.Graph, roles []topology.Role, frac float64, seed int64) ([]int, error) {
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("sim: host fraction %v out of [0,1]", frac)
	}
	var hosts []int
	if roles == nil {
		hosts = make([]int, g.N())
		for i := range hosts {
			hosts[i] = i
		}
	} else {
		hosts = topology.NodesWithRole(roles, topology.RoleHost)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(hosts), func(i, j int) { hosts[i], hosts[j] = hosts[j], hosts[i] })
	k := int(frac * float64(len(hosts)))
	return hosts[:k], nil
}

// DeployEdgeRouters returns all edge-router nodes — Section 5.2's
// deployment set.
func DeployEdgeRouters(roles []topology.Role) []int {
	return topology.NodesWithRole(roles, topology.RoleEdge)
}

// DeployBackbone returns all backbone-router nodes — Section 5.3's
// deployment set.
func DeployBackbone(roles []topology.Role) []int {
	return topology.NodesWithRole(roles, topology.RoleBackbone)
}

// DeployEdgeUplinks returns the links that carry traffic between an edge
// router's subnet and the rest of the network: every link from an edge
// router to a neighbor that is not a host of its own subnet. Limiting
// these (rather than all edge-router links) leaves intra-subnet traffic
// unthrottled, matching Section 5.2's model where worms "propagate much
// faster within the subnet than across the Internet".
func DeployEdgeUplinks(g *topology.Graph, roles []topology.Role, subnet []int) []routing.LinkID {
	edges := topology.NodesWithRole(roles, topology.RoleEdge)
	var out []routing.LinkID
	for idx, e := range edges {
		for _, v := range g.Neighbors(e) {
			if roles[v] == topology.RoleHost && subnet[v] == idx {
				continue // link into our own subnet
			}
			out = append(out, routing.MakeLinkID(e, int(v)))
		}
	}
	return out
}

// MultiRun executes runs replicas of cfg with seeds cfg.Seed,
// cfg.Seed+1, ... and returns the element-wise average of their series —
// the paper averages each simulated curve over 10 runs. It is
// MultiRunContext with a background context and the default worker
// bound (GOMAXPROCS).
func MultiRun(cfg Config, runs int) (*Result, error) {
	return MultiRunContext(context.Background(), cfg, runs)
}

// MultiRunContext executes runs replicas of cfg on a bounded
// runner.Pool (configure with runner.WithJobs / runner.WithProgress)
// and returns the element-wise average of their series. Each replica
// gets the deterministic seed cfg.Seed + its index, so for a fixed
// seed the averaged series is byte-identical regardless of the job
// count or scheduling order. The replicas share one immutable routing
// table, built once up front. Cancelling ctx aborts the batch between
// ticks and returns ctx's error; a progress callback installed via
// runner.WithProgress observes partial runner.Stats in that case.
func MultiRunContext(ctx context.Context, cfg Config, runs int, opts ...runner.Option) (*Result, error) {
	res, _, err := MultiRunStats(ctx, cfg, runs, opts...)
	return res, err
}

// MultiRunStats is MultiRunContext returning the final runner.Stats
// alongside the aggregate, for callers that report batch health.
//
// Fault tolerance: with runner.WithKeepGoing the batch degrades
// gracefully — a replica that fails (after any configured retries) is
// recorded in Stats.Failures, and the aggregate averages over the
// replicas that completed; only a batch where *every* replica failed
// returns an error. With Config.CheckpointFactory each replica
// periodically writes snapshots through its own sink, and with
// Config.ResumeFactory each replica (including a retry of a crashed
// one) first asks for a snapshot to resume from, so a retried replica
// restarts from its own last checkpoint rather than tick zero.
func MultiRunStats(ctx context.Context, cfg Config, runs int, opts ...runner.Option) (*Result, runner.Stats, error) {
	if runs < 1 {
		return nil, runner.Stats{}, fmt.Errorf("sim: runs %d must be >= 1", runs)
	}
	// Validate once up front so workers cannot fail on config errors.
	if err := cfg.Validate(); err != nil {
		return nil, runner.Stats{}, err
	}
	if !cfg.Graph.Connected() {
		return nil, runner.Stats{}, topology.ErrDisconnected
	}
	// All replicas route over the same graph: build the shared routing
	// state (shortest-path table, link enumeration, hop table) once;
	// it is read-only after construction. A caller-supplied Config.Net
	// (a sweep sharing one topology across batches) is reused as-is.
	ns := cfg.Net.state()
	if ns == nil {
		ns = newNetState(cfg.Graph, resolveStructuralThreshold(cfg.StructuralThreshold))
	}

	// results/done are committed under mu: with a per-task deadline the
	// runner abandons a timed-out attempt's goroutine, which may still
	// finish concurrently with a retry of the same replica (both compute
	// the identical result — the lock makes the duplicate commit safe).
	var mu sync.Mutex
	results := make([]*Result, runs)
	done := make([]bool, runs)
	pool := runner.New(opts...)
	stats, err := pool.Run(ctx, runs, func(ctx context.Context, r int) (runner.Report, error) {
		c := cfg
		c.Seed = cfg.Seed + int64(r)
		if cfg.Faults != nil {
			// Replicas decorrelate their fault streams exactly like their
			// simulation streams: each gets the deterministic fault seed
			// Faults.Seed + its index (re-derived identically on a retry).
			p := *cfg.Faults
			p.Seed += int64(r)
			c.Faults = &p
		}
		if cfg.CollectorFactory != nil {
			c.Collector = cfg.CollectorFactory(r)
		}
		if cfg.CheckpointFactory != nil {
			c.Checkpoint = cfg.CheckpointFactory(r)
		}
		var eng *Engine
		if cfg.ResumeFactory != nil {
			snap, rerr := cfg.ResumeFactory(r)
			if rerr != nil {
				return runner.Report{}, fmt.Errorf("sim: run %d: resume: %w", r, rerr)
			}
			if snap != nil {
				eng, rerr = restoreEngine(c, snap, ns)
				if rerr != nil {
					return runner.Report{}, fmt.Errorf("sim: run %d: %w", r, rerr)
				}
			}
		}
		if eng == nil {
			var nerr error
			eng, nerr = newEngine(c, ns)
			if nerr != nil {
				return runner.Report{}, fmt.Errorf("sim: run %d: %w", r, nerr)
			}
		}
		res, rerr := eng.RunContext(ctx)
		if rerr != nil {
			// Partial series are not committed: a degraded batch must
			// average complete replicas only.
			return runner.Report{Ticks: int64(len(res.Infected))}, fmt.Errorf("sim: run %d: %w", r, rerr)
		}
		mu.Lock()
		results[r] = res
		done[r] = true
		mu.Unlock()
		rep := runner.Report{Ticks: int64(len(res.Infected))}
		if s, ok := c.Collector.(obs.Summarizer); ok {
			rep.Counters = s.Summary().Counters()
		}
		return rep, nil
	})
	if err != nil {
		return nil, stats, err
	}

	mu.Lock()
	defer mu.Unlock()
	completed := 0
	for _, ok := range done {
		if ok {
			completed++
		}
	}
	if completed == 0 {
		err := fmt.Errorf("sim: all %d replicas failed", runs)
		if len(stats.Failures) > 0 {
			err = fmt.Errorf("sim: all %d replicas failed; replica %d: %w",
				runs, stats.Failures[0].Index, stats.Failures[0].Err)
		}
		return nil, stats, err
	}

	agg := &Result{
		Infected:     make([]float64, cfg.Ticks),
		EverInfected: make([]float64, cfg.Ticks),
		Immunized:    make([]float64, cfg.Ticks),
		Backlog:      make([]int, cfg.Ticks),
	}
	if cfg.TrackSubnets {
		agg.WithinSubnet = make([]float64, cfg.Ticks)
	}
	if cfg.TrackLatency {
		agg.MeanLatency = make([]float64, cfg.Ticks)
	}
	first := true
	for r, res := range results {
		if !done[r] {
			continue
		}
		for i := 0; i < cfg.Ticks; i++ {
			agg.Infected[i] += res.Infected[i]
			agg.EverInfected[i] += res.EverInfected[i]
			agg.Immunized[i] += res.Immunized[i]
			agg.Backlog[i] += res.Backlog[i]
			if cfg.TrackSubnets {
				agg.WithinSubnet[i] += res.WithinSubnet[i]
			}
			if cfg.TrackLatency {
				agg.MeanLatency[i] += res.MeanLatency[i]
			}
		}
		if first {
			first = false
			// Genealogy and activation tick are per-run data; keep the
			// first completed run's values.
			agg.Infections = res.Infections
			agg.QuarantineTick = res.QuarantineTick
		}
	}
	// Key-wise summed counters are order-independent, so the aggregate
	// is identical for every job count. Failed replicas contribute no
	// counters (their Reports carry none).
	agg.Counters = stats.Counters
	inv := 1 / float64(completed)
	for i := 0; i < cfg.Ticks; i++ {
		agg.Infected[i] *= inv
		agg.EverInfected[i] *= inv
		agg.Immunized[i] *= inv
		agg.Backlog[i] /= completed
		if cfg.TrackSubnets {
			agg.WithinSubnet[i] *= inv
		}
		if cfg.TrackLatency {
			agg.MeanLatency[i] *= inv
		}
	}
	return agg, stats, nil
}
