package sim

import (
	"context"
	"fmt"
	"io"
	"math/bits"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/ratelimit"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/worm"
)

// Node states, stored as 2-bit fields packed 32 per uint64 word
// (Engine.stateBits): a 10M-node run keeps all S/I/R state in 2.5 MB
// instead of a byte slice plus a separate susceptibility mask.
const (
	stateSusceptible uint8 = iota
	stateInfected
	stateRemoved // patched/immunized
	// stateExcluded marks nodes outside the susceptible population
	// (HostsOnly routers): never infectable, never patched. Folding the
	// exclusion into the state field replaces the old susceptibleMask
	// byte-per-node slice.
	stateExcluded
)

// packetKind distinguishes the stages of a probe-first infection.
type packetKind uint8

const (
	// kindExploit is a direct infection attempt (the default worm).
	kindExploit packetKind = iota
	// kindProbe is a Welchia-style ICMP echo: the target must reply
	// before the exploit is sent.
	kindProbe
	// kindReply is the probe response travelling back to the scanner.
	kindReply
	// kindBenign is background (normal/server/P2P) traffic injected by a
	// trace-replay workload: it competes for queues and link budgets but
	// never infects — delivery is the end of its life.
	kindBenign
)

// packet is an in-flight worm packet: src is the scanning host (for
// the infection genealogy), dst the target, birth the tick the packet
// entered the network (for latency accounting).
type packet struct {
	src   int32
	dst   int32
	kind  packetKind
	birth int32
}

// arrival is a packet that crossed a link this tick and lands at node.
type arrival struct {
	node int32
	pkt  packet
}

// Engine executes one simulation run. Construct with New; it is not safe
// for concurrent use (run replicas in separate engines).
//
// All per-tick state is dense and index-addressed: directed links carry
// small-integer indexes (routing.Links, ascending by source then
// destination — the deterministic iteration order every series depends
// on), and nodes index flat slices. The hot path performs no map
// lookups; maps appear only at the construction boundary, translating
// Config's map-shaped options into slices. Sparse activity is tracked
// by two bitsets — infected nodes and non-empty link queues — scanned
// in ascending order, so idle nodes and idle links cost nothing while
// the visit order stays identical to a full scan.
type Engine struct {
	cfg Config
	// streams is the per-node counter-mode RNG table (index n is the
	// run-level stream), materialized lazily in 64-stream pages; rands
	// holds one reusable rand.Rand per worker, re-pointed at the stream
	// of the node being simulated (see rng.go).
	streams *streamTable
	rands   []*workerRand
	// workers is the resolved intra-run worker count (>= 1); pool is the
	// phase-sharding worker pool, nil when workers == 1. serialGen keeps
	// the generate sweep on one goroutine when a picker shares state
	// across hosts (worm.SharedStatePicker).
	workers   int
	pool      *runner.Pool
	serialGen bool
	links     *routing.Links
	// hopLink[u*n+d] is the directed-link index of u's next hop toward
	// d (-1 if unreachable): the entire routing decision of the
	// per-packet path is one slice load. Above the structural-routing
	// threshold hopLink is nil and structural computes the same answer
	// from O(n + core²) state instead of the O(n²) table.
	hopLink    []int32
	structural *routing.Structural
	n          int

	// stateBits packs every node's S/I/R/excluded state into 2 bits
	// (32 nodes per word); read through stateOf, written through
	// setState — and only from serial contexts (construction, the
	// generate/immunize merges, deliver): sharded phases at most read it.
	stateBits []uint64
	env       *worm.Env

	// pickerSlot[u] indexes node u's target picker in pickerTab (-1
	// before u's first infection). Pickers are two-word interface
	// values; keeping them in an ever-infected-order table instead of a
	// dense slice cuts 16 B/node to 4 B/node plus the infected set.
	pickerSlot []int32
	pickerTab  []worm.Picker

	// infectedBits is the infected-node active set (bit u set iff
	// stateOf(u) == stateInfected), maintained by infect/immunize and
	// scanned ascending by generate.
	infectedBits []uint64

	// queueSlot[li] indexes link li's packet queue in queueTab (-1
	// until the first packet ever enqueues there); queueLink is the
	// inverse map. Queues materialize lazily — in a sparse epidemic the
	// engine pays three slice headers per link that actually carried
	// traffic, not per link that exists.
	queueSlot []int32
	queueTab  [][]packet
	queueLink []int32
	// queueBits is the non-empty-queue active set (bit li set iff link
	// li's queue is non-empty), scanned ascending by transmit.
	queueBits []uint64
	// backlog is the running total of queued packets across all links,
	// so record() is O(1).
	backlog int

	// linkLimitedBits marks rate-limited directed links (bit li).
	// Limited links are rank-indexed: rank r = limitedRankBase of li's
	// word + popcount of the lower bits, and limitedIdx[r] = li
	// (ascending). linkRate[r] is the per-tick packet rate; fractional
	// rates accumulate in linkCredit[r], and linkBudget[r] is the
	// whole-packet allowance recomputed by rechargeLinks. rechargeDebt
	// counts recharges deferred across quiescent ticks (nothing queued
	// ⇒ nothing to spend against); the next tick with a backlog replays
	// them sequentially, so the credit trajectory is bit-identical to a
	// per-tick sweep. The rank slices are nil when nothing is limited.
	linkLimitedBits []uint64
	limitedRankBase []int32
	linkRate        []float64
	linkCredit      []float64
	linkBudget      []int32
	limitedIdx      []int32
	rechargeDebt    int

	// betaByNode folds Config.Beta and ScanRateOverride into one dense
	// per-node scan probability; nil without overrides (the scalar
	// cfg.Beta then serves every node).
	betaByNode []float64

	popSize int // nodes not stateExcluded

	// nodeCap[u] is u's per-tick forwarding cap, -1 when uncapped; nil
	// when no node caps are configured. rrPos[u] is the round-robin
	// resume index for capped routers, and cappedServed[u] marks the
	// tick u's capped scheduler already ran (transmit encounters a
	// capped node once per non-empty queue, but must serve it once).
	nodeCap      []int32
	rrPos        []int32
	cappedServed []int32

	infected   int
	ever       int
	removed    int
	immunizing bool
	// immunizePending is the tick at which a fault-delayed immunization
	// process actually starts (-1 = no delayed start scheduled).
	immunizePending int

	// Dynamic quarantine state: the configured limits only bite once
	// defenseActive is set. scansThisTick counts scan attempts at the
	// monitor point (post β roll and self-target skip, pre host limiter):
	// the pre-throttle stream a detector at the backbone would observe.
	// The trigger is evaluated at the *start* of a tick against the
	// previous tick's completed counters, so a tick is either fully open
	// or fully defended — detection can never react to traffic of the
	// tick it gates.
	defenseActive     bool
	triggerTick       int // tick at which activation is scheduled (-1 = not yet)
	activatedTick     int // tick at which the defense engaged (-1 = never)
	scansThisTick     int
	throttledThisTick int // contacts a host limiter blocked this tick

	// Trace-replay state (Config.Replay non-nil, see replay.go):
	// workload is this run's contact stream, replayHosts maps trace host
	// indices onto nodes, and replayRecords is the stream position —
	// total contacts consumed — snapshotted so a restore can verify it
	// resumes over the same trace. workloadErr aborts the run at the
	// next tick boundary (the tick loop has no error channel inside
	// generate). benignThisTick / benignThrottledThisTick are the
	// benign-traffic counterparts of scansThisTick / throttledThisTick:
	// the per-tick collateral-damage signal.
	workload                Workload
	replayHosts             []int32
	replayRecords           int64
	workloadErr             error
	benignThisTick          int
	benignThrottledThisTick int

	// faults is the domain fault injector (nil when Config.Faults is nil
	// or inert). It draws from its own RNG, never the engine's, so a
	// faulted run consumes the identical engine RNG stream as the
	// fault-free run. limitsDown marks ticks inside a limiter outage
	// window; limitsActive is the effective per-tick defense state
	// (defenseActive minus outages) the transmit path checks.
	faults       *fault.Injector
	limitsDown   bool
	limitsActive bool

	// Cumulative packet-flow counters (plain increments, kept with or
	// without a collector so the invariant audit can always check
	// conservation: genCount == delivCount + dropCount + backlog).
	genCount   uint64
	delivCount uint64
	dropCount  uint64

	// collector receives per-tick metrics and events when non-nil; the
	// prev* fields turn the cumulative counters into per-tick deltas.
	collector   obs.Collector
	auditor     obs.Auditor
	prevGen     uint64
	prevDeliv   uint64
	prevDrop    uint64
	prevEver    int
	prevRemoved int

	// limiterSlot[u] indexes node u's contact limiter in limiterTab
	// (-1 for unfiltered nodes); nil slice means no host limiting at
	// all. Same sparse-table layout as the pickers.
	limiterSlot []int32
	limiterTab  []ratelimit.ContactLimiter

	// subnetSize and subnetInfected track per-subnet infection when
	// TrackSubnets is on; dense slices indexed by subnet id so the
	// per-tick within-subnet average sums in a fixed order (float
	// addition is not associative; map iteration would make the series
	// nondeterministic across runs).
	subnetSize     []int32
	subnetInfected []int32

	// infections is the genealogy log when RecordInfections is on.
	infections []Infection
	tick       int

	// nextTick is the first tick RunContext still has to simulate: 0 for
	// a fresh engine, the checkpointed boundary after a restore. res is
	// the (possibly restored, partial) series RunContext appends to.
	nextTick int
	res      *Result

	// latSum/latCount accumulate this tick's delivered-packet latency.
	latSum   int64
	latCount int64

	arrivals []arrival // staging buffer reused across ticks
	// arrivalOff holds the per-shard prefix offsets of the parallel
	// arrival merge (one slot per worker, reused across ticks).
	arrivalOff []int
	// sentScratch is transmitCapped's per-adjacency-slot send counter,
	// reused across ticks.
	sentScratch []int32

	// Per-worker phase buffers (one per worker, reused across ticks):
	// each sharded phase writes worker-private results here and a
	// sequential merge in worker order folds them into engine state, so
	// every side effect lands in the same order regardless of worker
	// count (see parallel.go).
	genBufs []genBuf
	txBufs  []txBuf
	immBufs [][]int32
}

// DefaultStructuralThreshold is the node count above which routing
// switches to the structural mode when Config.StructuralThreshold is
// left zero: beyond a few thousand nodes the O(N²) hop table (and the
// all-pairs BFS that fills it) dominates memory and construction time.
// Below it the dense table is small and its tie-breaking is pinned by
// the golden fixtures.
const DefaultStructuralThreshold = 4096

// resolveStructuralThreshold maps the Config/spec knob onto the value
// newNetState compares against: 0 means the default, negative disables
// structural routing entirely (returned as 0, which no node count
// reaches per the `thr > 0` guard).
func resolveStructuralThreshold(v int) int {
	switch {
	case v < 0:
		return 0
	case v == 0:
		return DefaultStructuralThreshold
	default:
		return v
	}
}

// netState is the immutable, graph-derived routing state every replica
// of a config shares: the stable directed-link enumeration plus either
// the dense per-packet hop table (small graphs) or the structural
// router (large host-and-core graphs; see routing.Structural). Built
// once per graph (MultiRun shares one across all replicas; New builds a
// private one) and safe for concurrent readers.
type netState struct {
	links      *routing.Links
	hopLink    []int32
	structural *routing.Structural
}

// newNetState builds the routing state for g; thr is the resolved
// structural threshold (0 = structural routing disabled).
func newNetState(g *topology.Graph, thr int) *netState {
	links := routing.EnumerateLinks(g)
	if thr > 0 && g.N() >= thr {
		if st := routing.NewStructural(g, links); st != nil {
			return &netState{links: links, structural: st}
		}
	}
	tab := routing.Build(g)
	return &netState{links: links, hopLink: links.HopTable(tab)}
}

// stateOf reads node u's packed 2-bit state.
func (e *Engine) stateOf(u int) uint8 {
	return uint8(e.stateBits[u>>5]>>(uint(u&31)*2)) & 3
}

// setState writes node u's packed state. Serial contexts only: the
// read-modify-write touches the word shared by u's 31 neighbours.
func (e *Engine) setState(u int, s uint8) {
	sh := uint(u&31) * 2
	w := &e.stateBits[u>>5]
	*w = *w&^(3<<sh) | uint64(s)<<sh
}

// linkLimited reports whether directed link li is rate limited.
func (e *Engine) linkLimited(li int) bool {
	return e.linkLimitedBits[li>>6]&(1<<(uint(li)&63)) != 0
}

// limitedRank returns limited link li's index into the rank-ordered
// rate/credit/budget slices: the number of limited links before it,
// from the per-word prefix counts plus a popcount of the lower bits.
func (e *Engine) limitedRank(li int) int {
	w := li >> 6
	return int(e.limitedRankBase[w]) +
		bits.OnesCount64(e.linkLimitedBits[w]&(1<<(uint(li)&63)-1))
}

// queueAt returns link li's queue, nil if never materialized.
func (e *Engine) queueAt(li int) []packet {
	if s := e.queueSlot[li]; s >= 0 {
		return e.queueTab[s]
	}
	return nil
}

// New builds an engine from cfg. The topology must be connected.
func New(cfg Config) (*Engine, error) { return newEngine(cfg, nil) }

// newEngine builds an engine, reusing prebuilt shared routing state
// when supplied (replicas of the same config route over the same
// graph, so MultiRun builds the netState once for all of them).
func newEngine(cfg Config, ns *netState) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Graph.Connected() {
		return nil, topology.ErrDisconnected
	}
	if ns == nil {
		ns = cfg.Net.state()
	}
	if ns == nil {
		ns = newNetState(cfg.Graph, resolveStructuralThreshold(cfg.StructuralThreshold))
	}
	n := cfg.Graph.N()
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	e := &Engine{
		cfg:          cfg,
		streams:      newStreamTable(cfg.Seed, n),
		workers:      workers,
		links:        ns.links,
		hopLink:      ns.hopLink,
		structural:   ns.structural,
		n:            n,
		stateBits:    make([]uint64, (n+31)/32),
		pickerSlot:   make([]int32, n),
		infectedBits: make([]uint64, (n+63)/64),
	}
	for i := range e.pickerSlot {
		e.pickerSlot[i] = -1
	}
	// The run-level stream draws during construction (seed placement);
	// node pages materialize as nodes are infected.
	e.streams.ensure(n)
	e.rands = make([]*workerRand, workers)
	for i := range e.rands {
		e.rands[i] = newWorkerRand(e.streams)
	}
	e.genBufs = make([]genBuf, workers)
	e.txBufs = make([]txBuf, workers)
	e.immBufs = make([][]int32, workers)
	e.arrivalOff = make([]int, workers)
	if workers > 1 {
		e.pool = runner.New(runner.WithJobs(workers))
	}
	if e.cfg.BaseRate == 0 {
		e.cfg.BaseRate = DefaultBaseRate
	}

	e.buildEnv()
	e.buildStates()
	e.buildBeta()
	e.buildLinkState()
	e.buildNodeCaps()
	if len(cfg.HostLimiterNodes) > 0 {
		e.limiterSlot = make([]int32, n)
		for i := range e.limiterSlot {
			e.limiterSlot[i] = -1
		}
		for _, u := range cfg.HostLimiterNodes {
			if s := e.limiterSlot[u]; s >= 0 {
				e.limiterTab[s] = cfg.HostLimiterFactory()
				continue
			}
			e.limiterSlot[u] = int32(len(e.limiterTab))
			e.limiterTab = append(e.limiterTab, cfg.HostLimiterFactory())
		}
	}
	if cfg.TrackSubnets {
		maxSubnet := int32(-1)
		for _, s := range e.env.Subnet {
			if s > maxSubnet {
				maxSubnet = s
			}
		}
		e.subnetSize = make([]int32, maxSubnet+1)
		e.subnetInfected = make([]int32, maxSubnet+1)
		for _, s := range e.env.Subnet {
			if s >= 0 {
				e.subnetSize[s]++
			}
		}
	}
	e.defenseActive = cfg.Quarantine == nil
	e.triggerTick = -1
	e.activatedTick = -1
	if e.defenseActive {
		e.activatedTick = 0
	}
	e.faults = fault.NewInjector(cfg.Faults)
	e.immunizePending = -1
	e.collector = cfg.Collector
	if cfg.Replay != nil {
		if err := e.buildReplay(); err != nil {
			return nil, err
		}
	}
	e.tick = -1 // seed infections predate tick 0
	if err := e.seedInfections(); err != nil {
		return nil, err
	}
	// Seeds predate tick 0: NewInfections at tick 0 reports propagation
	// only, not the initial compromise.
	e.prevEver = e.ever
	return e, nil
}

// buildEnv assembles the worm.Env the strategy factories consume.
func (e *Engine) buildEnv() {
	subnet := make([]int32, e.n)
	switch {
	case e.cfg.Subnet != nil:
		for i, s := range e.cfg.Subnet {
			subnet[i] = int32(s)
		}
	case e.cfg.Roles != nil:
		for i, s := range topology.Subnets(e.cfg.Graph, e.cfg.Roles) {
			subnet[i] = int32(s)
		}
	default:
		// Zero-valued: one flat subnet.
	}
	e.env = &worm.Env{N: e.n, Subnet: subnet}
}

// buildStates seeds the packed state words: every node starts
// susceptible except the excluded (never-infectable) ones.
func (e *Engine) buildStates() {
	if e.cfg.HostsOnly && e.cfg.Roles != nil {
		for u := 0; u < e.n; u++ {
			if e.cfg.Roles[u] != topology.RoleHost {
				e.setState(u, stateExcluded)
			} else {
				e.popSize++
			}
		}
		return
	}
	e.popSize = e.n
}

// buildBeta folds per-node scan-rate overrides into a dense slice; with
// no overrides the slice stays nil and the scalar Config.Beta serves
// every node (8 B/node saved on homogeneous populations).
func (e *Engine) buildBeta() {
	if len(e.cfg.ScanRateOverride) == 0 {
		return
	}
	e.betaByNode = make([]float64, e.n)
	for u := range e.betaByNode {
		e.betaByNode[u] = e.cfg.Beta
	}
	for u, b := range e.cfg.ScanRateOverride {
		e.betaByNode[u] = b
	}
}

// buildLinkState sizes the per-link queue directory and assigns
// per-tick packet rates to every directed link incident to a
// rate-limited node. Rate/credit/budget live in rank-indexed slices
// sized by the limited-link count, not the link count.
func (e *Engine) buildLinkState() {
	nLinks := e.links.Count()
	e.queueSlot = make([]int32, nLinks)
	for i := range e.queueSlot {
		e.queueSlot[i] = -1
	}
	e.queueBits = make([]uint64, (nLinks+63)/64)
	e.linkLimitedBits = make([]uint64, (nLinks+63)/64)

	limited := make(map[int]bool, len(e.cfg.LimitedNodes))
	for _, u := range e.cfg.LimitedNodes {
		limited[u] = true
	}
	limitedLinks := make(map[routing.LinkID]bool, len(e.cfg.LimitedLinks))
	for _, l := range e.cfg.LimitedLinks {
		limitedLinks[routing.MakeLinkID(l.U, l.V)] = true
	}
	if len(limited) == 0 && len(limitedLinks) == 0 {
		return
	}
	for li := 0; li < nLinks; li++ {
		u, v := e.links.From(li), e.links.To(li)
		if !limited[u] && !limited[v] && !limitedLinks[routing.MakeLinkID(u, v)] {
			continue
		}
		w := 1.0
		if e.cfg.LinkWeights != nil {
			if lw, ok := e.cfg.LinkWeights[routing.MakeLinkID(u, v)]; ok {
				w = lw
			}
		}
		rate := e.cfg.BaseRate * w
		if rate <= 0 {
			rate = e.cfg.BaseRate
		}
		e.linkLimitedBits[li>>6] |= 1 << (uint(li) & 63)
		e.linkRate = append(e.linkRate, rate)
		e.limitedIdx = append(e.limitedIdx, int32(li))
	}
	e.limitedRankBase = make([]int32, len(e.linkLimitedBits))
	rank := int32(0)
	for w, word := range e.linkLimitedBits {
		e.limitedRankBase[w] = rank
		rank += int32(bits.OnesCount64(word))
	}
	e.linkCredit = make([]float64, len(e.limitedIdx))
	e.linkBudget = make([]int32, len(e.limitedIdx))
}

// buildNodeCaps converts the NodeCaps map into the dense cap slice and
// allocates the round-robin scheduler state.
func (e *Engine) buildNodeCaps() {
	if len(e.cfg.NodeCaps) == 0 {
		return
	}
	e.nodeCap = make([]int32, e.n)
	for u := range e.nodeCap {
		e.nodeCap[u] = -1
	}
	for u, c := range e.cfg.NodeCaps {
		e.nodeCap[u] = int32(c)
	}
	e.rrPos = make([]int32, e.n)
	e.cappedServed = make([]int32, e.n)
	for u := range e.cappedServed {
		e.cappedServed[u] = -1
	}
}

// rechargeLinks rebuilds every limited link's whole-packet budget for
// the coming tick from its accumulated fractional credit. On a
// quiescent tick — no packet queued anywhere, so transmit cannot spend
// — the sweep is deferred: rechargeDebt counts the owed recharges and
// the next busy tick replays them sequentially. The replay repeats the
// exact per-tick operation (add, then clamp) instead of adding
// rate×debt in one step: float addition is not associative, and the
// credit trajectory is pinned by the golden fixtures. The loop is
// bounded regardless of debt, because credit clamps at burst and stays
// there — once clamped, the remaining replays are identities.
func (e *Engine) rechargeLinks() {
	if len(e.limitedIdx) == 0 {
		return
	}
	if e.backlog == 0 {
		e.rechargeDebt++
		return
	}
	steps := e.rechargeDebt + 1
	e.rechargeDebt = 0
	for r := range e.limitedIdx {
		rate := e.linkRate[r]
		burst := rate + 1
		c := e.linkCredit[r]
		for j := 0; j < steps; j++ {
			c += rate
			if c > burst {
				c = burst // minimal bursting: banked credit caps at rate+1
				break     // fixed point: further recharges are identities
			}
		}
		e.linkCredit[r] = c
		e.linkBudget[r] = int32(c)
	}
}

// spendLink records n packets sent on the limited link of rank r this
// tick. Callers check linkLimited first: unlimited links carry no
// budget state.
func (e *Engine) spendLink(r int, n int) {
	e.linkBudget[r] -= int32(n)
	e.linkCredit[r] -= float64(n)
}

// clearQueue empties link li's queue (keeping the buffer for reuse)
// and maintains the active set and backlog counter. The queue must be
// materialized (callers reach it through a set queue bit).
func (e *Engine) clearQueue(li int) {
	s := e.queueSlot[li]
	e.backlog -= len(e.queueTab[s])
	e.queueTab[s] = e.queueTab[s][:0]
	e.queueBits[li>>6] &^= 1 << (uint(li) & 63)
}

// seedInfections infects InitialInfected distinct susceptible nodes —
// or, on a replay run with a declared infected class, exactly the
// mapped worm hosts (no RNG draw; see seedReplayInfections).
func (e *Engine) seedInfections() error {
	if rc := e.cfg.Replay; rc != nil && len(rc.WormHosts) > 0 {
		return e.seedReplayInfections(rc.WormHosts)
	}
	candidates := make([]int32, 0, e.popSize)
	for u := 0; u < e.n; u++ {
		if e.stateOf(u) == stateSusceptible {
			candidates = append(candidates, int32(u))
		}
	}
	if len(candidates) < e.cfg.InitialInfected {
		return fmt.Errorf("sim: %d susceptible nodes < %d initial infections",
			len(candidates), e.cfg.InitialInfected)
	}
	// Seed placement is run-level, not attributable to any node: it
	// draws from the dedicated run stream (table index n).
	e.runRand().Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	for _, u := range candidates[:e.cfg.InitialInfected] {
		e.infect(int(u), -1)
	}
	return nil
}

// infect transitions node u to the infected state; source is the
// scanning host responsible (-1 for seed infections). Serial contexts
// only (seeding, deliver): it writes packed state and materializes u's
// stream page for the sharded generate sweep to draw from.
func (e *Engine) infect(u, source int) {
	if e.stateOf(u) != stateSusceptible {
		return
	}
	e.setState(u, stateInfected)
	e.infectedBits[u>>6] |= 1 << (uint(u) & 63)
	e.infected++
	e.ever++
	e.streams.ensure(u)
	p := e.cfg.Strategy(e.env, u)
	e.pickerSlot[u] = int32(len(e.pickerTab))
	e.pickerTab = append(e.pickerTab, p)
	if !e.serialGen {
		if _, shared := p.(worm.SharedStatePicker); shared {
			// A picker with cross-host shared state (hit-list cursor):
			// sharding the generate sweep would race on it, so this run's
			// scan generation stays on one goroutine.
			e.serialGen = true
		}
	}
	if e.cfg.TrackSubnets {
		if s := e.env.Subnet[u]; s >= 0 {
			e.subnetInfected[s]++
		}
	}
	if e.cfg.RecordInfections {
		e.infections = append(e.infections, Infection{
			Tick: int32(e.tick), Victim: int32(u), Source: int32(source),
		})
	}
}

// Run executes the configured number of ticks and returns the series.
// With Config.Check set, an invariant-audit failure panics: it means
// the engine corrupted its own state, and Run has no error channel.
// Use RunContext to handle audit failures as errors.
func (e *Engine) Run() *Result {
	res, err := e.RunContext(context.Background())
	if err != nil {
		panic(err)
	}
	return res
}

// RunContext executes the configured number of ticks, checking ctx
// between ticks. On cancellation it returns the partial series
// simulated so far together with ctx's error; the per-tick slices then
// hold fewer than Config.Ticks entries. With Config.Check set, every
// tick ends with an invariant audit; a violation stops the run and
// returns the partial series with an error matching obs.ErrInvariant.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	if e.res == nil {
		e.res = &Result{
			Infected:     make([]float64, 0, e.cfg.Ticks),
			EverInfected: make([]float64, 0, e.cfg.Ticks),
			Immunized:    make([]float64, 0, e.cfg.Ticks),
			Backlog:      make([]int, 0, e.cfg.Ticks),
		}
	}
	res := e.res
	if c, ok := e.workload.(io.Closer); ok {
		// A file-backed workload stream ends with the run.
		defer c.Close() //nolint:errcheck // read-only stream
	}
	var err error
	for tick := e.nextTick; tick < e.cfg.Ticks; tick++ {
		if err = ctx.Err(); err != nil {
			// A cancelled run (shutdown drain, replica timeout) leaves a
			// final checkpoint at this boundary, best-effort: the resumed
			// run re-simulates zero ticks instead of up to
			// CheckpointEvery-1. Results are unaffected either way —
			// resume from any boundary is byte-identical.
			if e.cfg.CheckpointEvery > 0 && e.cfg.Checkpoint != nil && e.nextTick > 0 {
				if snap, serr := e.Snapshot(); serr == nil {
					e.cfg.Checkpoint(snap) //nolint:errcheck // already aborting
				}
			}
			break
		}
		e.tick = tick
		// Quarantine state updates at the tick boundary, judging the
		// previous tick's completed counters: detection cannot see the
		// traffic of the tick it is gating.
		e.updateQuarantine()
		// The effective defense state for this tick: an injected limiter
		// outage bypasses the whole rate-limiting deployment without
		// touching the trigger state machine.
		e.limitsDown = e.faults != nil && e.faults.LimiterDown(tick)
		e.limitsActive = e.defenseActive && !e.limitsDown
		e.scansThisTick = 0
		e.throttledThisTick = 0
		e.benignThisTick = 0
		e.benignThrottledThisTick = 0
		e.generate()
		if e.workloadErr != nil {
			// The replay stream failed (read error, out-of-order trace):
			// abort with the partial series, like an audit violation.
			err = e.workloadErr
			break
		}
		e.rechargeLinks()
		e.transmit()
		e.deliver()
		e.immunize(tick)
		e.record(res)
		e.observe()
		if e.cfg.Check {
			if aerr := e.audit(); aerr != nil {
				err = aerr
				break
			}
		}
		e.nextTick = tick + 1
		if e.cfg.CheckpointEvery > 0 && e.cfg.Checkpoint != nil && e.nextTick%e.cfg.CheckpointEvery == 0 {
			snap, serr := e.Snapshot()
			if serr == nil {
				serr = e.cfg.Checkpoint(snap)
			}
			if serr != nil {
				err = fmt.Errorf("sim: checkpoint after tick %d: %w", tick, serr)
				break
			}
		}
	}
	res.Infections = e.infections
	res.QuarantineTick = e.activatedTick
	return res, err
}

// updateQuarantine evaluates the dynamic-defense trigger and activates
// the configured limits once the detection condition (plus deployment
// delay) is met. It runs at the start of a tick, before the tick's
// counters are reset: the scan-rate trigger judges the previous tick's
// pre-throttle attempt stream, and the level trigger the infection
// state as of the previous tick's deliveries. With Delay == 0 the
// defense is therefore active for the whole first tick after the
// threshold crossing — never retroactively for the tick that crossed.
func (e *Engine) updateQuarantine() {
	q := e.cfg.Quarantine
	if q == nil || e.defenseActive {
		return
	}
	if e.triggerTick < 0 {
		fired := false
		if q.TriggerScansPerTick > 0 && e.scansThisTick >= q.TriggerScansPerTick {
			fired = true
		}
		if q.TriggerLevel > 0 && float64(e.infected)/float64(e.popSize) >= q.TriggerLevel {
			fired = true
		}
		if e.faults != nil {
			// Detector imperfections: a false alarm is drawn every armed
			// tick; a miss suppresses a genuine threshold crossing (the
			// detector gets another chance next tick). The false-alarm
			// draw happens unconditionally so the fault RNG stream does
			// not depend on whether the genuine condition held.
			falseAlarm := e.faults.FalseAlarm()
			if fired && e.faults.MissDetection() {
				fired = false
			}
			if falseAlarm {
				fired = true
			}
		}
		if fired {
			e.triggerTick = e.tick + q.Delay
			if e.collector != nil {
				e.collector.Event(obs.Event{
					Tick: e.tick, Kind: obs.EventQuarantineTriggered,
					Detail: fmt.Sprintf("activation scheduled for tick %d", e.triggerTick),
				})
			}
		}
	}
	if e.triggerTick >= 0 && e.tick >= e.triggerTick {
		e.defenseActive = true
		e.activatedTick = e.tick
		if e.collector != nil {
			e.collector.Event(obs.Event{Tick: e.tick, Kind: obs.EventQuarantineActivated})
		}
	}
}

// generate lets every infected node attempt one infection. The work is
// sharded over ranges of the infected bitset (serial = one range): each
// worker stages its nodes' emissions in a private buffer, drawing every
// node's randomness from that node's own stream, and a sequential merge
// routes the staged packets in ascending node order — the visit order,
// RNG consumption, and queueing order are identical for every worker
// count. Shared-state pickers force a single shard (see infect).
func (e *Engine) generate() {
	if e.workload != nil {
		// Trace-replay run: the workload is the scan source, dispatched
		// before the sparse shortcut — benign background traffic flows
		// even with zero infections.
		e.generateReplay()
		return
	}
	if e.infected == 0 {
		// Sparse-phase shortcut: no scanners means no draws and no
		// emissions — byte-identical to sweeping an empty bitset, at
		// O(1) instead of O(n/64).
		return
	}
	words := len(e.infectedBits)
	shards := 1
	if e.workers > 1 && !e.serialGen {
		shards = min(e.workers, max(words, 1))
	}
	e.forEachShard(shards, func(i int) {
		e.generateRange(i, i*words/shards, (i+1)*words/shards)
	})
	for i := 0; i < shards; i++ {
		buf := &e.genBufs[i]
		e.scansThisTick += buf.scans
		e.throttledThisTick += buf.throttled
		e.genCount += uint64(len(buf.packets))
		for _, pkt := range buf.packets {
			e.routePacket(pkt.src, pkt)
		}
	}
}

// generateRange runs worker w's share of the generate sweep: infected
// nodes of bitset words [loWord, hiWord), scanned ascending, staging
// emissions into the worker's private buffer. It touches only
// worker-owned state (the range's RNG streams and host limiters).
func (e *Engine) generateRange(w, loWord, hiWord int) {
	scans := e.cfg.ScansPerTick
	if scans == 0 {
		scans = 1
	}
	kind := kindExploit
	if e.cfg.ProbeFirst {
		kind = kindProbe
	}
	buf := &e.genBufs[w]
	buf.reset()
	for wi := loWord; wi < hiWord; wi++ {
		word := e.infectedBits[wi]
		for word != 0 {
			u := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			beta := e.cfg.Beta
			if e.betaByNode != nil {
				beta = e.betaByNode[u]
			}
			var limiter ratelimit.ContactLimiter
			if e.limiterSlot != nil {
				if ls := e.limiterSlot[u]; ls >= 0 {
					limiter = e.limiterTab[ls]
				}
			}
			picker := e.pickerTab[e.pickerSlot[u]]
			rng := e.nodeRand(w, u)
			for s := 0; s < scans; s++ {
				if beta < 1 && rng.Float64() >= beta {
					continue
				}
				target := picker.Pick(rng, u)
				if target < 0 || target == u {
					continue
				}
				// Monitor point: the attempt is counted before the host
				// limiter so the quarantine trigger sees the pre-throttle
				// scan stream. Host contact limiters are host-side filters
				// and apply whenever installed (like ScanRateOverride),
				// independent of the network-side quarantine state.
				buf.scans++
				if limiter != nil && !e.limitsDown && !limiter.Allow(int64(e.tick), ratelimit.IP(target)) {
					buf.throttled++
					continue // throttled: contact blocked this tick
				}
				buf.packets = append(buf.packets, packet{
					src: int32(u), dst: int32(target), kind: kind, birth: int32(e.tick),
				})
			}
		}
	}
}

// routePacket places a packet at node u heading for its destination:
// delivery if already there, otherwise the queue of u's next-hop link.
func (e *Engine) routePacket(u int32, pkt packet) {
	if u == pkt.dst {
		e.deliverAt(pkt)
		return
	}
	var li int32
	if e.hopLink != nil {
		li = e.hopLink[int(u)*e.n+int(pkt.dst)]
	} else {
		li = e.structural.HopLink(int(u), int(pkt.dst))
	}
	if li < 0 {
		e.dropCount++
		return // unreachable: scan packet lost
	}
	s := e.queueSlot[li]
	var q []packet
	if s >= 0 {
		q = e.queueTab[s]
	}
	if e.cfg.MaxQueue > 0 && len(q) >= e.cfg.MaxQueue {
		e.dropCount++
		return // DropTail: buffer full, packet lost
	}
	if s < 0 {
		// First packet ever on this link (serial context: routePacket
		// runs in generate's merge and in deliver only). The buffer
		// starts small and append grows it toward MaxQueue on demand —
		// sizing it at MaxQueue up front avoids regrowth on saturated
		// hubs but costs MaxQueue packets of capacity on every link a
		// single packet ever crossed, which at ten-million-host scale
		// dwarfs the queues' live content (DESIGN.md §14).
		c := e.cfg.MaxQueue
		if c == 0 || c > 8 {
			c = 8
		}
		s = int32(len(e.queueTab))
		e.queueSlot[li] = s
		e.queueTab = append(e.queueTab, make([]packet, 0, c))
		e.queueLink = append(e.queueLink, li)
		q = e.queueTab[s]
	}
	e.queueTab[s] = append(q, pkt)
	e.queueBits[li>>6] |= 1 << (uint(li) & 63)
	e.backlog++
}

// transmit moves packets across every directed link, respecting link
// caps and node forwarding caps, staging arrivals for deliver. Only
// non-empty queues are visited, via the queue bitset; ascending link
// index order equals the (source asc, destination asc) order the
// series determinism contract fixes. Links of a node-capped router are
// served together by its round-robin scheduler the first time one of
// its queues is encountered.
//
// With Workers > 1 and no node caps the sweep is sharded over ranges of
// the queue bitset: per-link state (queue, budget, credit) is owned by
// exactly one worker, arrivals are staged per worker, and the
// sequential merge concatenates them in worker order — global ascending
// link order, identical to the serial sweep. Node caps keep transmit
// serial: a capped router's round-robin scheduler spans all its links
// at once (hub scenarios are small; sharding buys nothing there).
func (e *Engine) transmit() {
	e.arrivals = e.arrivals[:0]
	if e.backlog == 0 {
		// Sparse-phase shortcut: nothing queued anywhere, so there is
		// nothing to move and no budget to spend — O(1) instead of a
		// sweep over the queue bitset.
		return
	}
	words := len(e.queueBits)
	if e.workers > 1 && e.nodeCap == nil && words > 1 {
		shards := min(e.workers, words)
		e.forEachShard(shards, func(i int) {
			e.transmitRange(i, i*words/shards, (i+1)*words/shards)
		})
		// Merge: the counters fold serially, then the staged arrival
		// runs are stitched together by prefix offsets and copied in
		// parallel — the serial per-shard append was the scaling cliff
		// of multi-worker hot-phase runs (the arrival stream is the
		// phase's entire output).
		total := 0
		for i := 0; i < shards; i++ {
			buf := &e.txBufs[i]
			e.arrivalOff[i] = total
			total += len(buf.arrivals)
			e.backlog -= buf.drained
			e.dropCount += buf.dropped
		}
		if cap(e.arrivals) < total {
			e.arrivals = make([]arrival, total)
		}
		e.arrivals = e.arrivals[:total]
		e.forEachShard(shards, func(i int) {
			copy(e.arrivals[e.arrivalOff[i]:], e.txBufs[i].arrivals)
		})
		return
	}
	tick := int32(e.tick)
	capped := e.limitsActive && e.nodeCap != nil
	for w, word := range e.queueBits {
		for word != 0 {
			li := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if capped {
				if u := e.links.From(li); e.nodeCap[u] >= 0 {
					if e.cappedServed[u] != tick {
						e.cappedServed[u] = tick
						e.transmitCapped(u, int(e.nodeCap[u]))
					}
					// Later queues of u keep their bits when packets
					// remain; the served mark prevents reprocessing.
					continue
				}
			}
			q := e.queueTab[e.queueSlot[li]]
			allowed := len(q)
			lr := -1
			if e.linkLimited(li) {
				lr = e.limitedRank(li)
				if e.limitsActive && int(e.linkBudget[lr]) < allowed {
					allowed = int(e.linkBudget[lr])
					if allowed < 0 {
						allowed = 0
					}
				}
			}
			to := int32(e.links.To(li))
			for _, pkt := range q[:allowed] {
				e.arrivals = append(e.arrivals, arrival{node: to, pkt: pkt})
			}
			if lr >= 0 {
				e.spendLink(lr, allowed)
			}
			switch {
			case allowed == len(q):
				e.clearQueue(li) // drained
			case e.cfg.Policy == PolicyDrop:
				e.dropCount += uint64(len(q) - allowed)
				e.clearQueue(li) // excess discarded
			default:
				e.queueTab[e.queueSlot[li]] = append(q[:0], q[allowed:]...)
				e.backlog -= allowed
			}
		}
	}
}

// transmitRange runs worker w's share of the transmit sweep: non-empty
// queues of bitset words [loWord, hiWord), ascending. The worker owns
// its links outright — it drains queues, spends budgets, and clears
// queue bits in place (the shard boundary is a word index, so every
// bitset word belongs to exactly one worker) — but defers the truly
// shared effects (the backlog and drop counters, the arrival stream)
// to its private buffer for the sequential merge.
func (e *Engine) transmitRange(w, loWord, hiWord int) {
	buf := &e.txBufs[w]
	buf.reset()
	for wi := loWord; wi < hiWord; wi++ {
		word := e.queueBits[wi]
		for word != 0 {
			li := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			q := e.queueTab[e.queueSlot[li]]
			allowed := len(q)
			lr := -1
			if e.linkLimited(li) {
				lr = e.limitedRank(li)
				if e.limitsActive && int(e.linkBudget[lr]) < allowed {
					allowed = int(e.linkBudget[lr])
					if allowed < 0 {
						allowed = 0
					}
				}
			}
			to := int32(e.links.To(li))
			for _, pkt := range q[:allowed] {
				buf.arrivals = append(buf.arrivals, arrival{node: to, pkt: pkt})
			}
			if lr >= 0 {
				e.spendLink(lr, allowed)
			}
			switch {
			case allowed == len(q):
				e.queueTab[e.queueSlot[li]] = q[:0] // drained
				e.queueBits[wi] &^= 1 << (uint(li) & 63)
				buf.drained += allowed
			case e.cfg.Policy == PolicyDrop:
				buf.dropped += uint64(len(q) - allowed)
				e.queueTab[e.queueSlot[li]] = q[:0] // excess discarded
				e.queueBits[wi] &^= 1 << (uint(li) & 63)
				buf.drained += len(q)
			default:
				e.queueTab[e.queueSlot[li]] = append(q[:0], q[allowed:]...)
				buf.drained += allowed
			}
		}
	}
}

// transmitCapped serves a node-capped router: its per-tick forwarding
// budget is spread round-robin across its non-empty output queues (one
// packet per queue per pass, resuming each tick where the last left
// off), mirroring a fair shared output scheduler. Without this, a
// strict low-ID-first drain lets one stale queue starve every other
// destination.
func (e *Engine) transmitCapped(u, budget int) {
	adj := e.links.Outgoing(u)
	base := e.links.OutStart(u)
	deg := len(adj)
	if deg == 0 || budget <= 0 {
		if e.cfg.Policy == PolicyDrop {
			for k := 0; k < deg; k++ {
				if li := base + k; len(e.queueAt(li)) > 0 {
					e.dropCount += uint64(len(e.queueAt(li)))
					e.clearQueue(li)
				}
			}
		}
		return
	}
	// Per-queue packets already sent this tick (also enforces link caps),
	// indexed by adjacency slot.
	if cap(e.sentScratch) < deg {
		e.sentScratch = make([]int32, deg)
	}
	sent := e.sentScratch[:deg]
	clear(sent)
	start := int(e.rrPos[u])
	served := true
	for budget > 0 && served {
		served = false
		for k := 0; k < deg && budget > 0; k++ {
			idx := (start + k) % deg
			li := base + idx
			q := e.queueAt(li)
			s := int(sent[idx])
			if s >= len(q) {
				continue
			}
			if e.linkLimited(li) && s >= int(e.linkBudget[e.limitedRank(li)]) {
				continue
			}
			e.arrivals = append(e.arrivals, arrival{node: adj[idx], pkt: q[s]})
			sent[idx] = int32(s + 1)
			budget--
			served = true
			e.rrPos[u] = int32((idx + 1) % deg)
		}
	}
	for k := 0; k < deg; k++ {
		li := base + k
		q := e.queueAt(li)
		s := int(sent[k])
		if e.linkLimited(li) {
			e.spendLink(e.limitedRank(li), s)
		}
		switch {
		case len(q) == 0:
		case s >= len(q):
			e.clearQueue(li) // drained
		case e.cfg.Policy == PolicyDrop:
			e.dropCount += uint64(len(q) - s)
			e.clearQueue(li) // excess discarded
		default:
			e.queueTab[e.queueSlot[li]] = append(q[:0], q[s:]...)
			e.backlog -= s
		}
	}
}

// deliver processes staged arrivals: handling at the destination, or
// enqueue on the next link (crossing at most one link per tick).
func (e *Engine) deliver() {
	staged := e.arrivals
	for _, a := range staged {
		if a.node == a.pkt.dst {
			e.deliverAt(a.pkt)
			continue
		}
		e.routePacket(a.node, a.pkt)
	}
}

// deliverAt handles a packet that reached its destination.
func (e *Engine) deliverAt(pkt packet) {
	e.delivCount++
	if e.cfg.TrackLatency {
		e.latSum += int64(e.tick) - int64(pkt.birth)
		e.latCount++
	}
	switch pkt.kind {
	case kindBenign:
		// Background traffic: delivery is the end of its life.
	case kindExploit:
		e.attemptInfect(int(pkt.dst), int(pkt.src))
	case kindProbe:
		// The probed target answers the ping; the echo reply travels
		// back to the scanner. Patched hosts still answer pings — only
		// the exploit fails against them.
		e.genCount++
		e.routePacket(pkt.dst, packet{
			src: pkt.dst, dst: pkt.src, kind: kindReply, birth: int32(e.tick),
		})
	case kindReply:
		// The scanner receives the echo reply and fires the exploit —
		// if it is still infected (it may have been patched meanwhile).
		scanner := pkt.dst
		target := pkt.src
		if e.stateOf(int(scanner)) == stateInfected {
			e.genCount++
			e.routePacket(scanner, packet{
				src: scanner, dst: target, kind: kindExploit, birth: int32(e.tick),
			})
		}
	}
}

// attemptInfect infects the destination if it is still susceptible.
func (e *Engine) attemptInfect(u, source int) {
	if e.stateOf(u) == stateSusceptible {
		e.infect(u, source)
	}
}

// immunize runs the delayed patching process for this tick.
func (e *Engine) immunize(tick int) {
	im := e.cfg.Immunize
	if im == nil {
		return
	}
	if !e.immunizing {
		if e.immunizePending >= 0 {
			// An injected dissemination lag: the trigger condition already
			// fired; patching waits out the delay.
			if tick < e.immunizePending {
				return
			}
		} else {
			met := false
			switch {
			case im.StartTick >= 0 && tick >= im.StartTick:
				met = true
			case im.StartTick < 0 && float64(e.infected)/float64(e.popSize) >= im.StartLevel:
				met = true
			}
			if !met {
				return
			}
			if e.faults != nil {
				if d := e.faults.ImmunizationDelay(); d > 0 {
					e.immunizePending = tick + d
					return
				}
			}
		}
		e.immunizing = true
		// From here on every live node rolls µ each tick: the whole
		// stream table becomes hot, so materialize it once, serially,
		// before the sharded sweeps start reading page pointers.
		e.streams.ensureAll()
		if e.collector != nil {
			e.collector.Event(obs.Event{Tick: tick, Kind: obs.EventImmunizationStarted})
		}
	}
	// Sparse-phase shortcut: with no candidates left (everyone patched,
	// or only infected hosts remain under SusceptibleOnly) the sweep
	// draws nothing and changes nothing — skip the fan-out.
	draws := e.popSize - e.removed - e.infected
	if !im.SusceptibleOnly {
		draws += e.infected
	}
	if draws == 0 {
		return
	}
	// The µ rolls are sharded over node ranges: each candidate's roll
	// comes from its own stream, so the pass-set is identical for every
	// worker count. State mutation and the injector's loss draws happen
	// in the sequential merge, in ascending node order — the injector's
	// single fault stream is consumed exactly as by a serial sweep.
	shards := 1
	if e.workers > 1 {
		shards = min(e.workers, e.n)
	}
	e.forEachShard(shards, func(i int) {
		e.immunizeRange(i, i*e.n/shards, (i+1)*e.n/shards)
	})
	for i := 0; i < shards; i++ {
		for _, u32 := range e.immBufs[i] {
			u := int(u32)
			// The engine-RNG µ roll happened for every candidate exactly
			// as in a fault-free run; the loss fault draws from the
			// injector's own stream, leaving the engine streams untouched.
			if e.faults != nil && e.faults.DropImmunization() {
				continue
			}
			if e.stateOf(u) == stateInfected {
				e.infected--
				e.infectedBits[u>>6] &^= 1 << (uint(u) & 63)
				if e.cfg.TrackSubnets {
					if s := e.env.Subnet[u]; s >= 0 {
						e.subnetInfected[s]--
					}
				}
			}
			e.setState(u, stateRemoved)
			e.removed++
		}
	}
}

// immunizeRange runs worker w's share of the µ rolls: candidates in
// [lo, hi) that pass are appended to the worker's private buffer. Node
// state is only read here; mutation happens in immunize's merge.
func (e *Engine) immunizeRange(w, lo, hi int) {
	im := e.cfg.Immunize
	buf := e.immBufs[w][:0]
	for u := lo; u < hi; u++ {
		switch e.stateOf(u) {
		case stateExcluded, stateRemoved:
			continue
		case stateInfected:
			if im.SusceptibleOnly {
				continue
			}
		}
		if e.nodeRand(w, u).Float64() >= im.Mu {
			continue
		}
		buf = append(buf, int32(u))
	}
	e.immBufs[w] = buf
}

// record appends this tick's metrics.
func (e *Engine) record(res *Result) {
	pop := float64(e.popSize)
	res.Infected = append(res.Infected, float64(e.infected)/pop)
	res.EverInfected = append(res.EverInfected, float64(e.ever)/pop)
	res.Immunized = append(res.Immunized, float64(e.removed)/pop)
	res.Backlog = append(res.Backlog, e.backlog)
	if e.cfg.TrackSubnets {
		within := 0.0
		if e.infected > 0 { // no infections ⇒ no infected subnets
			var sum float64
			n := 0
			for s, inf := range e.subnetInfected {
				if inf > 0 {
					sum += float64(inf) / float64(e.subnetSize[s])
					n++
				}
			}
			if n > 0 {
				within = sum / float64(n)
			}
		}
		res.WithinSubnet = append(res.WithinSubnet, within)
	}
	if e.cfg.TrackLatency {
		lat := 0.0
		if e.latCount > 0 {
			lat = float64(e.latSum) / float64(e.latCount)
		}
		res.MeanLatency = append(res.MeanLatency, lat)
		e.latSum, e.latCount = 0, 0
	}
}

// observe hands this tick's structured metrics to the collector. With
// no collector configured the method is a single nil check: the hot
// path's observability overhead is the handful of plain integer
// increments feeding the cumulative counters.
func (e *Engine) observe() {
	if e.collector == nil {
		return
	}
	e.collector.Tick(obs.TickMetrics{
		Tick:              e.tick,
		ScanAttempts:      e.scansThisTick,
		ThrottledContacts: e.throttledThisTick,
		BenignContacts:    e.benignThisTick,
		BenignThrottled:   e.benignThrottledThisTick,
		PacketsGenerated:  int(e.genCount - e.prevGen),
		PacketsDelivered:  int(e.delivCount - e.prevDeliv),
		PacketsDropped:    int(e.dropCount - e.prevDrop),
		Backlog:           e.backlog,
		Infected:          e.infected,
		EverInfected:      e.ever,
		Immunized:         e.removed,
		NewInfections:     e.ever - e.prevEver,
		NewImmunized:      e.removed - e.prevRemoved,
		QuarantineActive:  e.defenseActive,
	})
	e.prevGen, e.prevDeliv, e.prevDrop = e.genCount, e.delivCount, e.dropCount
	e.prevEver, e.prevRemoved = e.ever, e.removed
}
