package sim

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/ratelimit"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/worm"
)

// nodeState is the S/I/R state of one node.
type nodeState uint8

const (
	stateSusceptible nodeState = iota
	stateInfected
	stateRemoved // patched/immunized
)

// packetKind distinguishes the stages of a probe-first infection.
type packetKind uint8

const (
	// kindExploit is a direct infection attempt (the default worm).
	kindExploit packetKind = iota
	// kindProbe is a Welchia-style ICMP echo: the target must reply
	// before the exploit is sent.
	kindProbe
	// kindReply is the probe response travelling back to the scanner.
	kindReply
)

// packet is an in-flight worm packet: src is the scanning host (for
// the infection genealogy), dst the target, birth the tick the packet
// entered the network (for latency accounting).
type packet struct {
	src   int32
	dst   int32
	kind  packetKind
	birth int32
}

// arrival is a packet that crossed a link this tick and lands at node.
type arrival struct {
	node int32
	pkt  packet
}

// Engine executes one simulation run. Construct with New; it is not safe
// for concurrent use (run replicas in separate engines).
//
// All per-tick state is dense and index-addressed: directed links carry
// small-integer indexes (routing.Links, ascending by source then
// destination — the deterministic iteration order every series depends
// on), and nodes index flat slices. The hot path performs no map
// lookups; maps appear only at the construction boundary, translating
// Config's map-shaped options into slices. Sparse activity is tracked
// by two bitsets — infected nodes and non-empty link queues — scanned
// in ascending order, so idle nodes and idle links cost nothing while
// the visit order stays identical to a full scan.
type Engine struct {
	cfg Config
	// streams is the per-node counter-mode RNG table (index n is the
	// run-level stream); rands holds one reusable rand.Rand per worker,
	// re-pointed at the stream of the node being simulated (see rng.go).
	streams []uint64
	rands   []*workerRand
	// workers is the resolved intra-run worker count (>= 1); pool is the
	// phase-sharding worker pool, nil when workers == 1. serialGen keeps
	// the generate sweep on one goroutine when a picker shares state
	// across hosts (worm.SharedStatePicker).
	workers   int
	pool      *runner.Pool
	serialGen bool
	links     *routing.Links
	// hopLink[u*n+d] is the directed-link index of u's next hop toward
	// d (-1 if unreachable): the entire routing decision of the
	// per-packet path is one slice load. Above the structural-routing
	// threshold hopLink is nil and structural computes the same answer
	// from O(n + core²) state instead of the O(n²) table.
	hopLink    []int32
	structural *routing.Structural
	n          int

	state   []nodeState
	pickers []worm.Picker
	env     *worm.Env

	// infectedBits is the infected-node active set (bit u set iff
	// state[u] == stateInfected), maintained by infect/immunize and
	// scanned ascending by generate.
	infectedBits []uint64

	// queues[li] holds packets waiting to cross directed link li.
	queues [][]packet
	// queueBits is the non-empty-queue active set (bit li set iff
	// len(queues[li]) > 0), scanned ascending by transmit.
	queueBits []uint64
	// backlog is the running total of queued packets across all links,
	// so record() is O(1).
	backlog int

	// linkLimited marks rate-limited directed links. For those links
	// linkRate is the per-tick packet rate; fractional rates accumulate
	// in linkCredit, and linkBudget is the whole-packet allowance
	// recomputed at the start of every tick. limitedIdx lists the
	// limited link indexes (ascending) for the recharge sweep. The
	// rate/credit/budget slices are nil when nothing is limited.
	linkLimited []bool
	linkRate    []float64
	linkCredit  []float64
	linkBudget  []int
	limitedIdx  []int32

	// betaByNode folds Config.Beta and ScanRateOverride into one dense
	// per-node scan probability.
	betaByNode []float64

	susceptibleMask []bool // which nodes can be infected at all
	popSize         int    // |susceptibleMask|

	// nodeCap[u] is u's per-tick forwarding cap, -1 when uncapped; nil
	// when no node caps are configured. rrPos[u] is the round-robin
	// resume index for capped routers, and cappedServed[u] marks the
	// tick u's capped scheduler already ran (transmit encounters a
	// capped node once per non-empty queue, but must serve it once).
	nodeCap      []int32
	rrPos        []int32
	cappedServed []int32

	infected   int
	ever       int
	removed    int
	immunizing bool
	// immunizePending is the tick at which a fault-delayed immunization
	// process actually starts (-1 = no delayed start scheduled).
	immunizePending int

	// Dynamic quarantine state: the configured limits only bite once
	// defenseActive is set. scansThisTick counts scan attempts at the
	// monitor point (post β roll and self-target skip, pre host limiter):
	// the pre-throttle stream a detector at the backbone would observe.
	// The trigger is evaluated at the *start* of a tick against the
	// previous tick's completed counters, so a tick is either fully open
	// or fully defended — detection can never react to traffic of the
	// tick it gates.
	defenseActive     bool
	triggerTick       int // tick at which activation is scheduled (-1 = not yet)
	activatedTick     int // tick at which the defense engaged (-1 = never)
	scansThisTick     int
	throttledThisTick int // contacts a host limiter blocked this tick

	// faults is the domain fault injector (nil when Config.Faults is nil
	// or inert). It draws from its own RNG, never the engine's, so a
	// faulted run consumes the identical engine RNG stream as the
	// fault-free run. limitsDown marks ticks inside a limiter outage
	// window; limitsActive is the effective per-tick defense state
	// (defenseActive minus outages) the transmit path checks.
	faults       *fault.Injector
	limitsDown   bool
	limitsActive bool

	// Cumulative packet-flow counters (plain increments, kept with or
	// without a collector so the invariant audit can always check
	// conservation: genCount == delivCount + dropCount + backlog).
	genCount   uint64
	delivCount uint64
	dropCount  uint64

	// collector receives per-tick metrics and events when non-nil; the
	// prev* fields turn the cumulative counters into per-tick deltas.
	collector   obs.Collector
	auditor     obs.Auditor
	prevGen     uint64
	prevDeliv   uint64
	prevDrop    uint64
	prevEver    int
	prevRemoved int

	// hostLimiters gates outgoing scans of filtered hosts
	// (HostLimiterNodes); nil entries are unfiltered, nil slice means
	// no host limiting at all.
	hostLimiters []ratelimit.ContactLimiter

	// subnetSize and subnetInfected track per-subnet infection when
	// TrackSubnets is on; dense slices indexed by subnet id so the
	// per-tick within-subnet average sums in a fixed order (float
	// addition is not associative; map iteration would make the series
	// nondeterministic across runs).
	subnetSize     []int
	subnetInfected []int

	// infections is the genealogy log when RecordInfections is on.
	infections []Infection
	tick       int

	// nextTick is the first tick RunContext still has to simulate: 0 for
	// a fresh engine, the checkpointed boundary after a restore. res is
	// the (possibly restored, partial) series RunContext appends to.
	nextTick int
	res      *Result

	// latSum/latCount accumulate this tick's delivered-packet latency.
	latSum   int64
	latCount int64

	arrivals []arrival // staging buffer reused across ticks
	// sentScratch is transmitCapped's per-adjacency-slot send counter,
	// reused across ticks.
	sentScratch []int32

	// Per-worker phase buffers (one per worker, reused across ticks):
	// each sharded phase writes worker-private results here and a
	// sequential merge in worker order folds them into engine state, so
	// every side effect lands in the same order regardless of worker
	// count (see parallel.go).
	genBufs []genBuf
	txBufs  []txBuf
	immBufs [][]int32
}

// structuralThreshold is the node count above which newNetState prefers
// structural routing over the dense hop table: beyond a few thousand
// nodes the O(N²) table (and the all-pairs BFS that fills it) dominates
// memory and construction time. Below it the dense table is small and
// its tie-breaking is pinned by the golden fixtures.
const structuralThreshold = 4096

// netState is the immutable, graph-derived routing state every replica
// of a config shares: the stable directed-link enumeration plus either
// the dense per-packet hop table (small graphs) or the structural
// router (large host-and-core graphs; see routing.Structural). Built
// once per graph (MultiRun shares one across all replicas; New builds a
// private one) and safe for concurrent readers.
type netState struct {
	links      *routing.Links
	hopLink    []int32
	structural *routing.Structural
}

func newNetState(g *topology.Graph) *netState {
	links := routing.EnumerateLinks(g)
	if g.N() >= structuralThreshold {
		if st := routing.NewStructural(g, links); st != nil {
			return &netState{links: links, structural: st}
		}
	}
	tab := routing.Build(g)
	return &netState{links: links, hopLink: links.HopTable(tab)}
}

// New builds an engine from cfg. The topology must be connected.
func New(cfg Config) (*Engine, error) { return newEngine(cfg, nil) }

// newEngine builds an engine, reusing prebuilt shared routing state
// when supplied (replicas of the same config route over the same
// graph, so MultiRun builds the netState once for all of them).
func newEngine(cfg Config, ns *netState) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Graph.Connected() {
		return nil, topology.ErrDisconnected
	}
	if ns == nil {
		ns = cfg.Net.state()
	}
	if ns == nil {
		ns = newNetState(cfg.Graph)
	}
	n := cfg.Graph.N()
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	e := &Engine{
		cfg:          cfg,
		streams:      newStreams(cfg.Seed, n),
		workers:      workers,
		links:        ns.links,
		hopLink:      ns.hopLink,
		structural:   ns.structural,
		n:            n,
		state:        make([]nodeState, n),
		pickers:      make([]worm.Picker, n),
		infectedBits: make([]uint64, (n+63)/64),
	}
	e.rands = make([]*workerRand, workers)
	for i := range e.rands {
		e.rands[i] = newWorkerRand(e.streams)
	}
	e.genBufs = make([]genBuf, workers)
	e.txBufs = make([]txBuf, workers)
	e.immBufs = make([][]int32, workers)
	if workers > 1 {
		e.pool = runner.New(runner.WithJobs(workers))
	}
	if e.cfg.BaseRate == 0 {
		e.cfg.BaseRate = DefaultBaseRate
	}

	e.buildEnv()
	e.buildSusceptible()
	e.buildBeta()
	e.buildLinkState()
	e.buildNodeCaps()
	if len(cfg.HostLimiterNodes) > 0 {
		e.hostLimiters = make([]ratelimit.ContactLimiter, n)
		for _, u := range cfg.HostLimiterNodes {
			e.hostLimiters[u] = cfg.HostLimiterFactory()
		}
	}
	if cfg.TrackSubnets {
		maxSubnet := -1
		for _, s := range e.env.Subnet {
			if s > maxSubnet {
				maxSubnet = s
			}
		}
		e.subnetSize = make([]int, maxSubnet+1)
		e.subnetInfected = make([]int, maxSubnet+1)
		for _, s := range e.env.Subnet {
			if s >= 0 {
				e.subnetSize[s]++
			}
		}
	}
	e.defenseActive = cfg.Quarantine == nil
	e.triggerTick = -1
	e.activatedTick = -1
	if e.defenseActive {
		e.activatedTick = 0
	}
	e.faults = fault.NewInjector(cfg.Faults)
	e.immunizePending = -1
	e.collector = cfg.Collector
	e.tick = -1 // seed infections predate tick 0
	if err := e.seedInfections(); err != nil {
		return nil, err
	}
	// Seeds predate tick 0: NewInfections at tick 0 reports propagation
	// only, not the initial compromise.
	e.prevEver = e.ever
	return e, nil
}

// buildEnv assembles the worm.Env the strategy factories consume.
func (e *Engine) buildEnv() {
	subnet := e.cfg.Subnet
	if subnet == nil {
		if e.cfg.Roles != nil {
			subnet = topology.Subnets(e.cfg.Graph, e.cfg.Roles)
		} else {
			subnet = make([]int, e.n)
			for i := range subnet {
				subnet[i] = 0 // one flat subnet
			}
		}
	}
	members := make(map[int][]int)
	for u, s := range subnet {
		if s >= 0 {
			members[s] = append(members[s], u)
		}
	}
	e.env = &worm.Env{N: e.n, Subnet: subnet, Members: members}
}

// buildSusceptible marks which nodes can ever be infected.
func (e *Engine) buildSusceptible() {
	e.susceptibleMask = make([]bool, e.n)
	for u := 0; u < e.n; u++ {
		if e.cfg.HostsOnly && e.cfg.Roles != nil && e.cfg.Roles[u] != topology.RoleHost {
			continue
		}
		e.susceptibleMask[u] = true
		e.popSize++
	}
}

// buildBeta folds the base scan probability and per-node overrides into
// one dense slice.
func (e *Engine) buildBeta() {
	e.betaByNode = make([]float64, e.n)
	for u := range e.betaByNode {
		e.betaByNode[u] = e.cfg.Beta
	}
	for u, b := range e.cfg.ScanRateOverride {
		e.betaByNode[u] = b
	}
}

// buildLinkState sizes the dense per-link queue state and assigns
// per-tick packet rates to every directed link incident to a
// rate-limited node.
func (e *Engine) buildLinkState() {
	nLinks := e.links.Count()
	e.queues = make([][]packet, nLinks)
	e.queueBits = make([]uint64, (nLinks+63)/64)
	e.linkLimited = make([]bool, nLinks)

	limited := make(map[int]bool, len(e.cfg.LimitedNodes))
	for _, u := range e.cfg.LimitedNodes {
		limited[u] = true
	}
	limitedLinks := make(map[routing.LinkID]bool, len(e.cfg.LimitedLinks))
	for _, l := range e.cfg.LimitedLinks {
		limitedLinks[routing.MakeLinkID(l.U, l.V)] = true
	}
	if len(limited) == 0 && len(limitedLinks) == 0 {
		return
	}
	e.linkRate = make([]float64, nLinks)
	e.linkCredit = make([]float64, nLinks)
	e.linkBudget = make([]int, nLinks)
	for li := 0; li < nLinks; li++ {
		u, v := e.links.From(li), e.links.To(li)
		if !limited[u] && !limited[v] && !limitedLinks[routing.MakeLinkID(u, v)] {
			continue
		}
		w := 1.0
		if e.cfg.LinkWeights != nil {
			if lw, ok := e.cfg.LinkWeights[routing.MakeLinkID(u, v)]; ok {
				w = lw
			}
		}
		rate := e.cfg.BaseRate * w
		if rate <= 0 {
			rate = e.cfg.BaseRate
		}
		e.linkLimited[li] = true
		e.linkRate[li] = rate
		e.limitedIdx = append(e.limitedIdx, int32(li))
	}
}

// buildNodeCaps converts the NodeCaps map into the dense cap slice and
// allocates the round-robin scheduler state.
func (e *Engine) buildNodeCaps() {
	if len(e.cfg.NodeCaps) == 0 {
		return
	}
	e.nodeCap = make([]int32, e.n)
	for u := range e.nodeCap {
		e.nodeCap[u] = -1
	}
	for u, c := range e.cfg.NodeCaps {
		e.nodeCap[u] = int32(c)
	}
	e.rrPos = make([]int32, e.n)
	e.cappedServed = make([]int32, e.n)
	for u := range e.cappedServed {
		e.cappedServed[u] = -1
	}
}

// rechargeLinks rebuilds every limited link's whole-packet budget for
// the coming tick from its accumulated fractional credit.
func (e *Engine) rechargeLinks() {
	for _, li := range e.limitedIdx {
		rate := e.linkRate[li]
		c := e.linkCredit[li] + rate
		if burst := rate + 1; c > burst {
			c = burst // minimal bursting: banked credit caps at rate+1
		}
		e.linkCredit[li] = c
		e.linkBudget[li] = int(c)
	}
}

// spendLink records n packets sent on a limited link this tick. Callers
// check linkLimited first: unlimited links carry no budget state.
func (e *Engine) spendLink(li int, n int) {
	e.linkBudget[li] -= n
	e.linkCredit[li] -= float64(n)
}

// clearQueue empties link li's queue (keeping the buffer for reuse)
// and maintains the active set and backlog counter.
func (e *Engine) clearQueue(li int) {
	e.backlog -= len(e.queues[li])
	e.queues[li] = e.queues[li][:0]
	e.queueBits[li>>6] &^= 1 << (uint(li) & 63)
}

// seedInfections infects InitialInfected distinct susceptible nodes.
func (e *Engine) seedInfections() error {
	candidates := make([]int, 0, e.popSize)
	for u := 0; u < e.n; u++ {
		if e.susceptibleMask[u] {
			candidates = append(candidates, u)
		}
	}
	if len(candidates) < e.cfg.InitialInfected {
		return fmt.Errorf("sim: %d susceptible nodes < %d initial infections",
			len(candidates), e.cfg.InitialInfected)
	}
	// Seed placement is run-level, not attributable to any node: it
	// draws from the dedicated run stream (table index n).
	e.runRand().Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	for _, u := range candidates[:e.cfg.InitialInfected] {
		e.infect(u, -1)
	}
	return nil
}

// infect transitions node u to the infected state; source is the
// scanning host responsible (-1 for seed infections).
func (e *Engine) infect(u, source int) {
	if e.state[u] != stateSusceptible || !e.susceptibleMask[u] {
		return
	}
	e.state[u] = stateInfected
	e.infectedBits[u>>6] |= 1 << (uint(u) & 63)
	e.infected++
	e.ever++
	e.pickers[u] = e.cfg.Strategy(e.env, u)
	if !e.serialGen {
		if _, shared := e.pickers[u].(worm.SharedStatePicker); shared {
			// A picker with cross-host shared state (hit-list cursor):
			// sharding the generate sweep would race on it, so this run's
			// scan generation stays on one goroutine.
			e.serialGen = true
		}
	}
	if e.cfg.TrackSubnets {
		if s := e.env.Subnet[u]; s >= 0 {
			e.subnetInfected[s]++
		}
	}
	if e.cfg.RecordInfections {
		e.infections = append(e.infections, Infection{Tick: e.tick, Victim: u, Source: source})
	}
}

// Run executes the configured number of ticks and returns the series.
// With Config.Check set, an invariant-audit failure panics: it means
// the engine corrupted its own state, and Run has no error channel.
// Use RunContext to handle audit failures as errors.
func (e *Engine) Run() *Result {
	res, err := e.RunContext(context.Background())
	if err != nil {
		panic(err)
	}
	return res
}

// RunContext executes the configured number of ticks, checking ctx
// between ticks. On cancellation it returns the partial series
// simulated so far together with ctx's error; the per-tick slices then
// hold fewer than Config.Ticks entries. With Config.Check set, every
// tick ends with an invariant audit; a violation stops the run and
// returns the partial series with an error matching obs.ErrInvariant.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	if e.res == nil {
		e.res = &Result{
			Infected:     make([]float64, 0, e.cfg.Ticks),
			EverInfected: make([]float64, 0, e.cfg.Ticks),
			Immunized:    make([]float64, 0, e.cfg.Ticks),
			Backlog:      make([]int, 0, e.cfg.Ticks),
		}
	}
	res := e.res
	var err error
	for tick := e.nextTick; tick < e.cfg.Ticks; tick++ {
		if err = ctx.Err(); err != nil {
			break
		}
		e.tick = tick
		// Quarantine state updates at the tick boundary, judging the
		// previous tick's completed counters: detection cannot see the
		// traffic of the tick it is gating.
		e.updateQuarantine()
		// The effective defense state for this tick: an injected limiter
		// outage bypasses the whole rate-limiting deployment without
		// touching the trigger state machine.
		e.limitsDown = e.faults != nil && e.faults.LimiterDown(tick)
		e.limitsActive = e.defenseActive && !e.limitsDown
		e.scansThisTick = 0
		e.throttledThisTick = 0
		e.generate()
		e.rechargeLinks()
		e.transmit()
		e.deliver()
		e.immunize(tick)
		e.record(res)
		e.observe()
		if e.cfg.Check {
			if aerr := e.audit(); aerr != nil {
				err = aerr
				break
			}
		}
		e.nextTick = tick + 1
		if e.cfg.CheckpointEvery > 0 && e.cfg.Checkpoint != nil && e.nextTick%e.cfg.CheckpointEvery == 0 {
			snap, serr := e.Snapshot()
			if serr == nil {
				serr = e.cfg.Checkpoint(snap)
			}
			if serr != nil {
				err = fmt.Errorf("sim: checkpoint after tick %d: %w", tick, serr)
				break
			}
		}
	}
	res.Infections = e.infections
	res.QuarantineTick = e.activatedTick
	return res, err
}

// updateQuarantine evaluates the dynamic-defense trigger and activates
// the configured limits once the detection condition (plus deployment
// delay) is met. It runs at the start of a tick, before the tick's
// counters are reset: the scan-rate trigger judges the previous tick's
// pre-throttle attempt stream, and the level trigger the infection
// state as of the previous tick's deliveries. With Delay == 0 the
// defense is therefore active for the whole first tick after the
// threshold crossing — never retroactively for the tick that crossed.
func (e *Engine) updateQuarantine() {
	q := e.cfg.Quarantine
	if q == nil || e.defenseActive {
		return
	}
	if e.triggerTick < 0 {
		fired := false
		if q.TriggerScansPerTick > 0 && e.scansThisTick >= q.TriggerScansPerTick {
			fired = true
		}
		if q.TriggerLevel > 0 && float64(e.infected)/float64(e.popSize) >= q.TriggerLevel {
			fired = true
		}
		if e.faults != nil {
			// Detector imperfections: a false alarm is drawn every armed
			// tick; a miss suppresses a genuine threshold crossing (the
			// detector gets another chance next tick). The false-alarm
			// draw happens unconditionally so the fault RNG stream does
			// not depend on whether the genuine condition held.
			falseAlarm := e.faults.FalseAlarm()
			if fired && e.faults.MissDetection() {
				fired = false
			}
			if falseAlarm {
				fired = true
			}
		}
		if fired {
			e.triggerTick = e.tick + q.Delay
			if e.collector != nil {
				e.collector.Event(obs.Event{
					Tick: e.tick, Kind: obs.EventQuarantineTriggered,
					Detail: fmt.Sprintf("activation scheduled for tick %d", e.triggerTick),
				})
			}
		}
	}
	if e.triggerTick >= 0 && e.tick >= e.triggerTick {
		e.defenseActive = true
		e.activatedTick = e.tick
		if e.collector != nil {
			e.collector.Event(obs.Event{Tick: e.tick, Kind: obs.EventQuarantineActivated})
		}
	}
}

// generate lets every infected node attempt one infection. The work is
// sharded over ranges of the infected bitset (serial = one range): each
// worker stages its nodes' emissions in a private buffer, drawing every
// node's randomness from that node's own stream, and a sequential merge
// routes the staged packets in ascending node order — the visit order,
// RNG consumption, and queueing order are identical for every worker
// count. Shared-state pickers force a single shard (see infect).
func (e *Engine) generate() {
	words := len(e.infectedBits)
	shards := 1
	if e.workers > 1 && !e.serialGen {
		shards = min(e.workers, max(words, 1))
	}
	e.forEachShard(shards, func(i int) {
		e.generateRange(i, i*words/shards, (i+1)*words/shards)
	})
	for i := 0; i < shards; i++ {
		buf := &e.genBufs[i]
		e.scansThisTick += buf.scans
		e.throttledThisTick += buf.throttled
		e.genCount += uint64(len(buf.packets))
		for _, pkt := range buf.packets {
			e.routePacket(pkt.src, pkt)
		}
	}
}

// generateRange runs worker w's share of the generate sweep: infected
// nodes of bitset words [loWord, hiWord), scanned ascending, staging
// emissions into the worker's private buffer. It touches only
// worker-owned state (the range's RNG streams and host limiters).
func (e *Engine) generateRange(w, loWord, hiWord int) {
	scans := e.cfg.ScansPerTick
	if scans == 0 {
		scans = 1
	}
	kind := kindExploit
	if e.cfg.ProbeFirst {
		kind = kindProbe
	}
	buf := &e.genBufs[w]
	buf.reset()
	for wi := loWord; wi < hiWord; wi++ {
		word := e.infectedBits[wi]
		for word != 0 {
			u := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			beta := e.betaByNode[u]
			var limiter ratelimit.ContactLimiter
			if e.hostLimiters != nil {
				limiter = e.hostLimiters[u]
			}
			rng := e.nodeRand(w, u)
			for s := 0; s < scans; s++ {
				if beta < 1 && rng.Float64() >= beta {
					continue
				}
				target := e.pickers[u].Pick(rng, u)
				if target < 0 || target == u {
					continue
				}
				// Monitor point: the attempt is counted before the host
				// limiter so the quarantine trigger sees the pre-throttle
				// scan stream. Host contact limiters are host-side filters
				// and apply whenever installed (like ScanRateOverride),
				// independent of the network-side quarantine state.
				buf.scans++
				if limiter != nil && !e.limitsDown && !limiter.Allow(int64(e.tick), ratelimit.IP(target)) {
					buf.throttled++
					continue // throttled: contact blocked this tick
				}
				buf.packets = append(buf.packets, packet{
					src: int32(u), dst: int32(target), kind: kind, birth: int32(e.tick),
				})
			}
		}
	}
}

// routePacket places a packet at node u heading for its destination:
// delivery if already there, otherwise the queue of u's next-hop link.
func (e *Engine) routePacket(u int32, pkt packet) {
	if u == pkt.dst {
		e.deliverAt(pkt)
		return
	}
	var li int32
	if e.hopLink != nil {
		li = e.hopLink[int(u)*e.n+int(pkt.dst)]
	} else {
		li = e.structural.HopLink(int(u), int(pkt.dst))
	}
	if li < 0 {
		e.dropCount++
		return // unreachable: scan packet lost
	}
	q := e.queues[li]
	if e.cfg.MaxQueue > 0 && len(q) >= e.cfg.MaxQueue {
		e.dropCount++
		return // DropTail: buffer full, packet lost
	}
	if q == nil {
		// First use of this link: size the buffer once — exactly
		// MaxQueue for bounded queues — instead of letting append grow
		// it in several steps. Buffers are reused (q[:0]) forever after.
		c := e.cfg.MaxQueue
		if c == 0 {
			c = 16
		}
		q = make([]packet, 0, c)
	}
	e.queues[li] = append(q, pkt)
	e.queueBits[li>>6] |= 1 << (uint(li) & 63)
	e.backlog++
}

// transmit moves packets across every directed link, respecting link
// caps and node forwarding caps, staging arrivals for deliver. Only
// non-empty queues are visited, via the queue bitset; ascending link
// index order equals the (source asc, destination asc) order the
// series determinism contract fixes. Links of a node-capped router are
// served together by its round-robin scheduler the first time one of
// its queues is encountered.
//
// With Workers > 1 and no node caps the sweep is sharded over ranges of
// the queue bitset: per-link state (queue, budget, credit) is owned by
// exactly one worker, arrivals are staged per worker, and the
// sequential merge concatenates them in worker order — global ascending
// link order, identical to the serial sweep. Node caps keep transmit
// serial: a capped router's round-robin scheduler spans all its links
// at once (hub scenarios are small; sharding buys nothing there).
func (e *Engine) transmit() {
	e.arrivals = e.arrivals[:0]
	words := len(e.queueBits)
	if e.workers > 1 && e.nodeCap == nil && words > 1 {
		shards := min(e.workers, words)
		e.forEachShard(shards, func(i int) {
			e.transmitRange(i, i*words/shards, (i+1)*words/shards)
		})
		for i := 0; i < shards; i++ {
			buf := &e.txBufs[i]
			for _, li := range buf.cleared {
				e.queueBits[li>>6] &^= 1 << (uint(li) & 63)
			}
			e.backlog -= buf.drained
			e.dropCount += buf.dropped
			e.arrivals = append(e.arrivals, buf.arrivals...)
		}
		return
	}
	tick := int32(e.tick)
	capped := e.limitsActive && e.nodeCap != nil
	for w, word := range e.queueBits {
		for word != 0 {
			li := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if capped {
				if u := e.links.From(li); e.nodeCap[u] >= 0 {
					if e.cappedServed[u] != tick {
						e.cappedServed[u] = tick
						e.transmitCapped(u, int(e.nodeCap[u]))
					}
					// Later queues of u keep their bits when packets
					// remain; the served mark prevents reprocessing.
					continue
				}
			}
			q := e.queues[li]
			allowed := len(q)
			if e.linkLimited[li] && e.limitsActive && e.linkBudget[li] < allowed {
				allowed = e.linkBudget[li]
				if allowed < 0 {
					allowed = 0
				}
			}
			to := int32(e.links.To(li))
			for _, pkt := range q[:allowed] {
				e.arrivals = append(e.arrivals, arrival{node: to, pkt: pkt})
			}
			if e.linkLimited[li] {
				e.spendLink(li, allowed)
			}
			switch {
			case allowed == len(q):
				e.clearQueue(li) // drained
			case e.cfg.Policy == PolicyDrop:
				e.dropCount += uint64(len(q) - allowed)
				e.clearQueue(li) // excess discarded
			default:
				e.queues[li] = append(q[:0], q[allowed:]...)
				e.backlog -= allowed
			}
		}
	}
}

// transmitRange runs worker w's share of the transmit sweep: non-empty
// queues of bitset words [loWord, hiWord), ascending. The worker owns
// its links outright — it drains queues and spends budgets in place —
// but defers the shared-state effects (queue-bitset clears, the backlog
// and drop counters, the arrival stream) to its private buffer for the
// sequential merge.
func (e *Engine) transmitRange(w, loWord, hiWord int) {
	buf := &e.txBufs[w]
	buf.reset()
	for wi := loWord; wi < hiWord; wi++ {
		word := e.queueBits[wi]
		for word != 0 {
			li := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			q := e.queues[li]
			allowed := len(q)
			if e.linkLimited[li] && e.limitsActive && e.linkBudget[li] < allowed {
				allowed = e.linkBudget[li]
				if allowed < 0 {
					allowed = 0
				}
			}
			to := int32(e.links.To(li))
			for _, pkt := range q[:allowed] {
				buf.arrivals = append(buf.arrivals, arrival{node: to, pkt: pkt})
			}
			if e.linkLimited[li] {
				e.spendLink(li, allowed)
			}
			switch {
			case allowed == len(q):
				e.queues[li] = q[:0] // drained
				buf.cleared = append(buf.cleared, int32(li))
				buf.drained += allowed
			case e.cfg.Policy == PolicyDrop:
				buf.dropped += uint64(len(q) - allowed)
				e.queues[li] = q[:0] // excess discarded
				buf.cleared = append(buf.cleared, int32(li))
				buf.drained += len(q)
			default:
				e.queues[li] = append(q[:0], q[allowed:]...)
				buf.drained += allowed
			}
		}
	}
}

// transmitCapped serves a node-capped router: its per-tick forwarding
// budget is spread round-robin across its non-empty output queues (one
// packet per queue per pass, resuming each tick where the last left
// off), mirroring a fair shared output scheduler. Without this, a
// strict low-ID-first drain lets one stale queue starve every other
// destination.
func (e *Engine) transmitCapped(u, budget int) {
	adj := e.links.Outgoing(u)
	base := e.links.OutStart(u)
	deg := len(adj)
	if deg == 0 || budget <= 0 {
		if e.cfg.Policy == PolicyDrop {
			for k := 0; k < deg; k++ {
				if li := base + k; len(e.queues[li]) > 0 {
					e.dropCount += uint64(len(e.queues[li]))
					e.clearQueue(li)
				}
			}
		}
		return
	}
	// Per-queue packets already sent this tick (also enforces link caps),
	// indexed by adjacency slot.
	if cap(e.sentScratch) < deg {
		e.sentScratch = make([]int32, deg)
	}
	sent := e.sentScratch[:deg]
	clear(sent)
	start := int(e.rrPos[u])
	served := true
	for budget > 0 && served {
		served = false
		for k := 0; k < deg && budget > 0; k++ {
			idx := (start + k) % deg
			li := base + idx
			q := e.queues[li]
			s := int(sent[idx])
			if s >= len(q) {
				continue
			}
			if e.linkLimited[li] && s >= e.linkBudget[li] {
				continue
			}
			e.arrivals = append(e.arrivals, arrival{node: adj[idx], pkt: q[s]})
			sent[idx] = int32(s + 1)
			budget--
			served = true
			e.rrPos[u] = int32((idx + 1) % deg)
		}
	}
	for k := 0; k < deg; k++ {
		li := base + k
		q := e.queues[li]
		s := int(sent[k])
		if e.linkLimited[li] {
			e.spendLink(li, s)
		}
		switch {
		case len(q) == 0:
		case s >= len(q):
			e.clearQueue(li) // drained
		case e.cfg.Policy == PolicyDrop:
			e.dropCount += uint64(len(q) - s)
			e.clearQueue(li) // excess discarded
		default:
			e.queues[li] = append(q[:0], q[s:]...)
			e.backlog -= s
		}
	}
}

// deliver processes staged arrivals: handling at the destination, or
// enqueue on the next link (crossing at most one link per tick).
func (e *Engine) deliver() {
	staged := e.arrivals
	for _, a := range staged {
		if a.node == a.pkt.dst {
			e.deliverAt(a.pkt)
			continue
		}
		e.routePacket(a.node, a.pkt)
	}
}

// deliverAt handles a packet that reached its destination.
func (e *Engine) deliverAt(pkt packet) {
	e.delivCount++
	if e.cfg.TrackLatency {
		e.latSum += int64(e.tick) - int64(pkt.birth)
		e.latCount++
	}
	switch pkt.kind {
	case kindExploit:
		e.attemptInfect(int(pkt.dst), int(pkt.src))
	case kindProbe:
		// The probed target answers the ping; the echo reply travels
		// back to the scanner. Patched hosts still answer pings — only
		// the exploit fails against them.
		e.genCount++
		e.routePacket(pkt.dst, packet{
			src: pkt.dst, dst: pkt.src, kind: kindReply, birth: int32(e.tick),
		})
	case kindReply:
		// The scanner receives the echo reply and fires the exploit —
		// if it is still infected (it may have been patched meanwhile).
		scanner := pkt.dst
		target := pkt.src
		if e.state[scanner] == stateInfected {
			e.genCount++
			e.routePacket(scanner, packet{
				src: scanner, dst: target, kind: kindExploit, birth: int32(e.tick),
			})
		}
	}
}

// attemptInfect infects the destination if it is still susceptible.
func (e *Engine) attemptInfect(u, source int) {
	if e.state[u] == stateSusceptible && e.susceptibleMask[u] {
		e.infect(u, source)
	}
}

// immunize runs the delayed patching process for this tick.
func (e *Engine) immunize(tick int) {
	im := e.cfg.Immunize
	if im == nil {
		return
	}
	if !e.immunizing {
		if e.immunizePending >= 0 {
			// An injected dissemination lag: the trigger condition already
			// fired; patching waits out the delay.
			if tick < e.immunizePending {
				return
			}
		} else {
			met := false
			switch {
			case im.StartTick >= 0 && tick >= im.StartTick:
				met = true
			case im.StartTick < 0 && float64(e.infected)/float64(e.popSize) >= im.StartLevel:
				met = true
			}
			if !met {
				return
			}
			if e.faults != nil {
				if d := e.faults.ImmunizationDelay(); d > 0 {
					e.immunizePending = tick + d
					return
				}
			}
		}
		e.immunizing = true
		if e.collector != nil {
			e.collector.Event(obs.Event{Tick: tick, Kind: obs.EventImmunizationStarted})
		}
	}
	// The µ rolls are sharded over node ranges: each candidate's roll
	// comes from its own stream, so the pass-set is identical for every
	// worker count. State mutation and the injector's loss draws happen
	// in the sequential merge, in ascending node order — the injector's
	// single fault stream is consumed exactly as by a serial sweep.
	shards := 1
	if e.workers > 1 {
		shards = min(e.workers, e.n)
	}
	e.forEachShard(shards, func(i int) {
		e.immunizeRange(i, i*e.n/shards, (i+1)*e.n/shards)
	})
	for i := 0; i < shards; i++ {
		for _, u32 := range e.immBufs[i] {
			u := int(u32)
			// The engine-RNG µ roll happened for every candidate exactly
			// as in a fault-free run; the loss fault draws from the
			// injector's own stream, leaving the engine streams untouched.
			if e.faults != nil && e.faults.DropImmunization() {
				continue
			}
			if e.state[u] == stateInfected {
				e.infected--
				e.infectedBits[u>>6] &^= 1 << (uint(u) & 63)
				if e.cfg.TrackSubnets {
					if s := e.env.Subnet[u]; s >= 0 {
						e.subnetInfected[s]--
					}
				}
			}
			e.state[u] = stateRemoved
			e.removed++
		}
	}
}

// immunizeRange runs worker w's share of the µ rolls: candidates in
// [lo, hi) that pass are appended to the worker's private buffer. Node
// state is only read here; mutation happens in immunize's merge.
func (e *Engine) immunizeRange(w, lo, hi int) {
	im := e.cfg.Immunize
	buf := e.immBufs[w][:0]
	for u := lo; u < hi; u++ {
		if !e.susceptibleMask[u] || e.state[u] == stateRemoved {
			continue
		}
		if im.SusceptibleOnly && e.state[u] == stateInfected {
			continue
		}
		if e.nodeRand(w, u).Float64() >= im.Mu {
			continue
		}
		buf = append(buf, int32(u))
	}
	e.immBufs[w] = buf
}

// record appends this tick's metrics.
func (e *Engine) record(res *Result) {
	pop := float64(e.popSize)
	res.Infected = append(res.Infected, float64(e.infected)/pop)
	res.EverInfected = append(res.EverInfected, float64(e.ever)/pop)
	res.Immunized = append(res.Immunized, float64(e.removed)/pop)
	res.Backlog = append(res.Backlog, e.backlog)
	if e.cfg.TrackSubnets {
		var sum float64
		n := 0
		for s, inf := range e.subnetInfected {
			if inf > 0 {
				sum += float64(inf) / float64(e.subnetSize[s])
				n++
			}
		}
		within := 0.0
		if n > 0 {
			within = sum / float64(n)
		}
		res.WithinSubnet = append(res.WithinSubnet, within)
	}
	if e.cfg.TrackLatency {
		lat := 0.0
		if e.latCount > 0 {
			lat = float64(e.latSum) / float64(e.latCount)
		}
		res.MeanLatency = append(res.MeanLatency, lat)
		e.latSum, e.latCount = 0, 0
	}
}

// observe hands this tick's structured metrics to the collector. With
// no collector configured the method is a single nil check: the hot
// path's observability overhead is the handful of plain integer
// increments feeding the cumulative counters.
func (e *Engine) observe() {
	if e.collector == nil {
		return
	}
	e.collector.Tick(obs.TickMetrics{
		Tick:              e.tick,
		ScanAttempts:      e.scansThisTick,
		ThrottledContacts: e.throttledThisTick,
		PacketsGenerated:  int(e.genCount - e.prevGen),
		PacketsDelivered:  int(e.delivCount - e.prevDeliv),
		PacketsDropped:    int(e.dropCount - e.prevDrop),
		Backlog:           e.backlog,
		Infected:          e.infected,
		EverInfected:      e.ever,
		Immunized:         e.removed,
		NewInfections:     e.ever - e.prevEver,
		NewImmunized:      e.removed - e.prevRemoved,
		QuarantineActive:  e.defenseActive,
	})
	e.prevGen, e.prevDeliv, e.prevDrop = e.genCount, e.delivCount, e.dropCount
	e.prevEver, e.prevRemoved = e.ever, e.removed
}
