package sim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/ratelimit"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/worm"
)

// nodeState is the S/I/R state of one node.
type nodeState uint8

const (
	stateSusceptible nodeState = iota
	stateInfected
	stateRemoved // patched/immunized
)

// packetKind distinguishes the stages of a probe-first infection.
type packetKind uint8

const (
	// kindExploit is a direct infection attempt (the default worm).
	kindExploit packetKind = iota
	// kindProbe is a Welchia-style ICMP echo: the target must reply
	// before the exploit is sent.
	kindProbe
	// kindReply is the probe response travelling back to the scanner.
	kindReply
)

// packet is an in-flight worm packet: src is the scanning host (for
// the infection genealogy), dst the target, birth the tick the packet
// entered the network (for latency accounting).
type packet struct {
	src   int32
	dst   int32
	kind  packetKind
	birth int32
}

// arrival is a packet that crossed a link this tick and lands at node.
type arrival struct {
	node int32
	pkt  packet
}

// Engine executes one simulation run. Construct with New; it is not safe
// for concurrent use (run replicas in separate engines).
type Engine struct {
	cfg Config
	rng *rand.Rand
	tab *routing.Table
	n   int

	state   []nodeState
	pickers []worm.Picker
	env     *worm.Env

	// sortedAdj[u] is u's neighbor list in ascending order, fixing the
	// per-tick link iteration order.
	sortedAdj [][]int32
	// queues[dirKey(u,v)] holds packets waiting to cross u->v.
	queues map[int64][]packet
	// linkRate[dirKey(u,v)] is the per-tick packet rate of a limited
	// link; absent means unlimited. Fractional rates accumulate in
	// linkCredit; linkBudget is the whole-packet allowance recomputed at
	// the start of every tick.
	linkRate   map[int64]float64
	linkCredit map[int64]float64
	linkBudget map[int64]int

	susceptibleMask []bool // which nodes can be infected at all
	popSize         int    // |susceptibleMask|

	// rrPos[u] is the round-robin resume index for node-capped routers.
	rrPos map[int]int

	infected   int
	ever       int
	removed    int
	immunizing bool

	// Dynamic quarantine state: the configured limits only bite once
	// defenseActive is set.
	defenseActive bool
	triggerTick   int // tick at which activation is scheduled (-1 = not yet)
	activatedTick int // tick at which the defense engaged (-1 = never)
	scansThisTick int

	// limiters gates outgoing scans of filtered hosts (HostLimiterNodes).
	limiters map[int]ratelimit.ContactLimiter

	// subnetSize and subnetInfected track per-subnet infection when
	// TrackSubnets is on; dense slices indexed by subnet id so the
	// per-tick within-subnet average sums in a fixed order (float
	// addition is not associative; map iteration would make the series
	// nondeterministic across runs).
	subnetSize     []int
	subnetInfected []int

	// infections is the genealogy log when RecordInfections is on.
	infections []Infection
	tick       int

	// latSum/latCount accumulate this tick's delivered-packet latency.
	latSum   int64
	latCount int64

	arrivals []arrival // staging buffer reused across ticks
	// sentScratch is transmitCapped's per-call send counter, reused
	// across ticks to avoid a map allocation per capped node per tick.
	sentScratch map[int64]int
}

func dirKey(u, v int32) int64 { return int64(u)<<32 | int64(v) }

// New builds an engine from cfg. The topology must be connected.
func New(cfg Config) (*Engine, error) { return newEngine(cfg, nil) }

// newEngine builds an engine, reusing a prebuilt routing table when one
// is supplied (replicas of the same config share the graph, so MultiRun
// builds the table once; Table is immutable after Build and safe to
// share across goroutines).
func newEngine(cfg Config, tab *routing.Table) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Graph.Connected() {
		return nil, topology.ErrDisconnected
	}
	if tab == nil {
		tab = routing.Build(cfg.Graph)
	}
	n := cfg.Graph.N()
	e := &Engine{
		cfg:        cfg,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		tab:        tab,
		n:          n,
		state:      make([]nodeState, n),
		pickers:    make([]worm.Picker, n),
		queues:     make(map[int64][]packet),
		linkRate:   make(map[int64]float64),
		linkCredit: make(map[int64]float64),
		linkBudget: make(map[int64]int),
		rrPos:      make(map[int]int),
	}
	if e.cfg.BaseRate == 0 {
		e.cfg.BaseRate = DefaultBaseRate
	}

	e.sortedAdj = make([][]int32, n)
	for u := 0; u < n; u++ {
		adj := append([]int32(nil), cfg.Graph.Neighbors(u)...)
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		e.sortedAdj[u] = adj
	}

	e.buildEnv()
	e.buildSusceptible()
	e.buildLinkCaps()
	if len(cfg.HostLimiterNodes) > 0 {
		e.limiters = make(map[int]ratelimit.ContactLimiter, len(cfg.HostLimiterNodes))
		for _, u := range cfg.HostLimiterNodes {
			e.limiters[u] = cfg.HostLimiterFactory()
		}
	}
	if cfg.TrackSubnets {
		maxSubnet := -1
		for _, s := range e.env.Subnet {
			if s > maxSubnet {
				maxSubnet = s
			}
		}
		e.subnetSize = make([]int, maxSubnet+1)
		e.subnetInfected = make([]int, maxSubnet+1)
		for _, s := range e.env.Subnet {
			if s >= 0 {
				e.subnetSize[s]++
			}
		}
	}
	e.defenseActive = cfg.Quarantine == nil
	e.triggerTick = -1
	e.activatedTick = -1
	if e.defenseActive {
		e.activatedTick = 0
	}
	e.tick = -1 // seed infections predate tick 0
	if err := e.seedInfections(); err != nil {
		return nil, err
	}
	return e, nil
}

// buildEnv assembles the worm.Env the strategy factories consume.
func (e *Engine) buildEnv() {
	subnet := e.cfg.Subnet
	if subnet == nil {
		if e.cfg.Roles != nil {
			subnet = topology.Subnets(e.cfg.Graph, e.cfg.Roles)
		} else {
			subnet = make([]int, e.n)
			for i := range subnet {
				subnet[i] = 0 // one flat subnet
			}
		}
	}
	members := make(map[int][]int)
	for u, s := range subnet {
		if s >= 0 {
			members[s] = append(members[s], u)
		}
	}
	e.env = &worm.Env{N: e.n, Subnet: subnet, Members: members}
}

// buildSusceptible marks which nodes can ever be infected.
func (e *Engine) buildSusceptible() {
	e.susceptibleMask = make([]bool, e.n)
	for u := 0; u < e.n; u++ {
		if e.cfg.HostsOnly && e.cfg.Roles != nil && e.cfg.Roles[u] != topology.RoleHost {
			continue
		}
		e.susceptibleMask[u] = true
		e.popSize++
	}
}

// buildLinkCaps assigns per-tick packet rates to every directed link
// incident to a rate-limited node.
func (e *Engine) buildLinkCaps() {
	limited := make(map[int]bool, len(e.cfg.LimitedNodes))
	for _, u := range e.cfg.LimitedNodes {
		limited[u] = true
	}
	limitedLinks := make(map[routing.LinkID]bool, len(e.cfg.LimitedLinks))
	for _, l := range e.cfg.LimitedLinks {
		limitedLinks[routing.MakeLinkID(l.U, l.V)] = true
	}
	for u := 0; u < e.n; u++ {
		for _, v := range e.sortedAdj[u] {
			if !limited[u] && !limited[int(v)] && !limitedLinks[routing.MakeLinkID(u, int(v))] {
				continue
			}
			w := 1.0
			if e.cfg.LinkWeights != nil {
				if lw, ok := e.cfg.LinkWeights[routing.MakeLinkID(u, int(v))]; ok {
					w = lw
				}
			}
			rate := e.cfg.BaseRate * w
			if rate <= 0 {
				rate = e.cfg.BaseRate
			}
			e.linkRate[dirKey(int32(u), v)] = rate
		}
	}
}

// rechargeLinks rebuilds every limited link's whole-packet budget for
// the coming tick from its accumulated fractional credit.
func (e *Engine) rechargeLinks() {
	for key, rate := range e.linkRate {
		c := e.linkCredit[key] + rate
		if burst := rate + 1; c > burst {
			c = burst // minimal bursting: banked credit caps at rate+1
		}
		e.linkCredit[key] = c
		e.linkBudget[key] = int(c)
	}
}

// spendLink records n packets sent on a limited link this tick.
func (e *Engine) spendLink(key int64, n int) {
	if _, ok := e.linkRate[key]; !ok {
		return
	}
	e.linkBudget[key] -= n
	e.linkCredit[key] -= float64(n)
}

// seedInfections infects InitialInfected distinct susceptible nodes.
func (e *Engine) seedInfections() error {
	candidates := make([]int, 0, e.popSize)
	for u := 0; u < e.n; u++ {
		if e.susceptibleMask[u] {
			candidates = append(candidates, u)
		}
	}
	if len(candidates) < e.cfg.InitialInfected {
		return fmt.Errorf("sim: %d susceptible nodes < %d initial infections",
			len(candidates), e.cfg.InitialInfected)
	}
	e.rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})
	for _, u := range candidates[:e.cfg.InitialInfected] {
		e.infect(u, -1)
	}
	return nil
}

// infect transitions node u to the infected state; source is the
// scanning host responsible (-1 for seed infections).
func (e *Engine) infect(u, source int) {
	if e.state[u] != stateSusceptible || !e.susceptibleMask[u] {
		return
	}
	e.state[u] = stateInfected
	e.infected++
	e.ever++
	e.pickers[u] = e.cfg.Strategy(e.env, u)
	if e.cfg.TrackSubnets {
		if s := e.env.Subnet[u]; s >= 0 {
			e.subnetInfected[s]++
		}
	}
	if e.cfg.RecordInfections {
		e.infections = append(e.infections, Infection{Tick: e.tick, Victim: u, Source: source})
	}
}

// Run executes the configured number of ticks and returns the series.
func (e *Engine) Run() *Result {
	res, _ := e.RunContext(context.Background())
	return res
}

// RunContext executes the configured number of ticks, checking ctx
// between ticks. On cancellation it returns the partial series
// simulated so far together with ctx's error; the per-tick slices then
// hold fewer than Config.Ticks entries.
func (e *Engine) RunContext(ctx context.Context) (*Result, error) {
	res := &Result{
		Infected:     make([]float64, 0, e.cfg.Ticks),
		EverInfected: make([]float64, 0, e.cfg.Ticks),
		Immunized:    make([]float64, 0, e.cfg.Ticks),
		Backlog:      make([]int, 0, e.cfg.Ticks),
	}
	var err error
	for tick := 0; tick < e.cfg.Ticks; tick++ {
		if err = ctx.Err(); err != nil {
			break
		}
		e.tick = tick
		e.scansThisTick = 0
		e.generate()
		e.updateQuarantine()
		e.rechargeLinks()
		e.transmit()
		e.deliver()
		e.immunize(tick)
		e.record(res)
	}
	res.Infections = e.infections
	res.QuarantineTick = e.activatedTick
	return res, err
}

// updateQuarantine evaluates the dynamic-defense trigger and activates
// the configured limits once the detection condition (plus deployment
// delay) is met.
func (e *Engine) updateQuarantine() {
	q := e.cfg.Quarantine
	if q == nil || e.defenseActive {
		return
	}
	if e.triggerTick < 0 {
		fired := false
		if q.TriggerScansPerTick > 0 && e.scansThisTick >= q.TriggerScansPerTick {
			fired = true
		}
		if q.TriggerLevel > 0 && float64(e.infected)/float64(e.popSize) >= q.TriggerLevel {
			fired = true
		}
		if fired {
			e.triggerTick = e.tick + q.Delay
		}
	}
	if e.triggerTick >= 0 && e.tick >= e.triggerTick {
		e.defenseActive = true
		e.activatedTick = e.tick
	}
}

// generate lets every infected node attempt one infection.
func (e *Engine) generate() {
	scans := e.cfg.ScansPerTick
	if scans == 0 {
		scans = 1
	}
	for u := 0; u < e.n; u++ {
		if e.state[u] != stateInfected {
			continue
		}
		beta := e.cfg.Beta
		if b, ok := e.cfg.ScanRateOverride[u]; ok {
			beta = b
		}
		limiter := e.limiters[u]
		for s := 0; s < scans; s++ {
			if beta < 1 && e.rng.Float64() >= beta {
				continue
			}
			target := e.pickers[u].Pick(e.rng, u)
			if target < 0 || target == u {
				continue
			}
			if e.defenseActive && limiter != nil && !limiter.Allow(int64(e.tick), ratelimit.IP(target)) {
				continue // throttled: contact blocked this tick
			}
			e.scansThisTick++
			kind := kindExploit
			if e.cfg.ProbeFirst {
				kind = kindProbe
			}
			e.routePacket(int32(u), packet{
				src: int32(u), dst: int32(target), kind: kind, birth: int32(e.tick),
			})
		}
	}
}

// routePacket places a packet at node u heading for its destination:
// delivery if already there, otherwise the queue of u's next-hop link.
func (e *Engine) routePacket(u int32, pkt packet) {
	if u == pkt.dst {
		e.deliverAt(pkt)
		return
	}
	nh := e.tab.NextHop(int(u), int(pkt.dst))
	if nh < 0 {
		return // unreachable: scan packet lost
	}
	key := dirKey(u, int32(nh))
	q := e.queues[key]
	if e.cfg.MaxQueue > 0 && len(q) >= e.cfg.MaxQueue {
		return // DropTail: buffer full, packet lost
	}
	e.queues[key] = append(q, pkt)
}

// transmit moves packets across every directed link, respecting link
// caps and node forwarding caps, staging arrivals for deliver.
func (e *Engine) transmit() {
	e.arrivals = e.arrivals[:0]
	for u := 0; u < e.n; u++ {
		if limit, ok := e.cfg.NodeCaps[u]; ok && e.defenseActive {
			e.transmitCapped(u, limit)
			continue
		}
		for _, v := range e.sortedAdj[u] {
			key := dirKey(int32(u), v)
			q := e.queues[key]
			if len(q) == 0 {
				continue
			}
			allowed := len(q)
			if _, limited := e.linkRate[key]; limited && e.defenseActive && e.linkBudget[key] < allowed {
				allowed = e.linkBudget[key]
				if allowed < 0 {
					allowed = 0
				}
			}
			for _, pkt := range q[:allowed] {
				e.arrivals = append(e.arrivals, arrival{node: v, pkt: pkt})
			}
			e.spendLink(key, allowed)
			switch {
			case allowed == len(q):
				e.queues[key] = q[:0] // drained: keep the buffer for reuse
			case e.cfg.Policy == PolicyDrop:
				e.queues[key] = q[:0] // excess discarded
			default:
				e.queues[key] = append(q[:0], q[allowed:]...)
			}
		}
	}
}

// transmitCapped serves a node-capped router: its per-tick forwarding
// budget is spread round-robin across its non-empty output queues (one
// packet per queue per pass, resuming each tick where the last left
// off), mirroring a fair shared output scheduler. Without this, a
// strict low-ID-first drain lets one stale queue starve every other
// destination.
func (e *Engine) transmitCapped(u, budget int) {
	adj := e.sortedAdj[u]
	deg := len(adj)
	if deg == 0 || budget <= 0 {
		if e.cfg.Policy == PolicyDrop {
			for _, v := range adj {
				key := dirKey(int32(u), v)
				if q, ok := e.queues[key]; ok {
					e.queues[key] = q[:0]
				}
			}
		}
		return
	}
	// Per-queue packets already sent this tick (also enforces link caps).
	if e.sentScratch == nil {
		e.sentScratch = make(map[int64]int, deg)
	}
	clear(e.sentScratch)
	sent := e.sentScratch
	start := e.rrPos[u]
	served := true
	for budget > 0 && served {
		served = false
		for k := 0; k < deg && budget > 0; k++ {
			idx := (start + k) % deg
			v := adj[idx]
			key := dirKey(int32(u), v)
			q := e.queues[key]
			s := sent[key]
			if s >= len(q) {
				continue
			}
			if _, limited := e.linkRate[key]; limited && s >= e.linkBudget[key] {
				continue
			}
			e.arrivals = append(e.arrivals, arrival{node: v, pkt: q[s]})
			sent[key] = s + 1
			budget--
			served = true
			e.rrPos[u] = (idx + 1) % deg
		}
	}
	for _, v := range adj {
		key := dirKey(int32(u), v)
		q := e.queues[key]
		s := sent[key]
		e.spendLink(key, s)
		switch {
		case len(q) == 0:
		case s >= len(q), e.cfg.Policy == PolicyDrop:
			e.queues[key] = q[:0] // drained or dropped: reuse the buffer
		default:
			e.queues[key] = append(q[:0], q[s:]...)
		}
	}
}

// deliver processes staged arrivals: handling at the destination, or
// enqueue on the next link (crossing at most one link per tick).
func (e *Engine) deliver() {
	staged := e.arrivals
	for _, a := range staged {
		if a.node == a.pkt.dst {
			e.deliverAt(a.pkt)
			continue
		}
		e.routePacket(a.node, a.pkt)
	}
}

// deliverAt handles a packet that reached its destination.
func (e *Engine) deliverAt(pkt packet) {
	if e.cfg.TrackLatency {
		e.latSum += int64(e.tick) - int64(pkt.birth)
		e.latCount++
	}
	switch pkt.kind {
	case kindExploit:
		e.attemptInfect(int(pkt.dst), int(pkt.src))
	case kindProbe:
		// The probed target answers the ping; the echo reply travels
		// back to the scanner. Patched hosts still answer pings — only
		// the exploit fails against them.
		e.routePacket(pkt.dst, packet{
			src: pkt.dst, dst: pkt.src, kind: kindReply, birth: int32(e.tick),
		})
	case kindReply:
		// The scanner receives the echo reply and fires the exploit —
		// if it is still infected (it may have been patched meanwhile).
		scanner := pkt.dst
		target := pkt.src
		if e.state[scanner] == stateInfected {
			e.routePacket(scanner, packet{
				src: scanner, dst: target, kind: kindExploit, birth: int32(e.tick),
			})
		}
	}
}

// attemptInfect infects the destination if it is still susceptible.
func (e *Engine) attemptInfect(u, source int) {
	if e.state[u] == stateSusceptible && e.susceptibleMask[u] {
		e.infect(u, source)
	}
}

// immunize runs the delayed patching process for this tick.
func (e *Engine) immunize(tick int) {
	im := e.cfg.Immunize
	if im == nil {
		return
	}
	if !e.immunizing {
		switch {
		case im.StartTick >= 0 && tick >= im.StartTick:
			e.immunizing = true
		case im.StartTick < 0 && float64(e.infected)/float64(e.popSize) >= im.StartLevel:
			e.immunizing = true
		default:
			return
		}
	}
	for u := 0; u < e.n; u++ {
		if !e.susceptibleMask[u] || e.state[u] == stateRemoved {
			continue
		}
		if im.SusceptibleOnly && e.state[u] == stateInfected {
			continue
		}
		if e.rng.Float64() >= im.Mu {
			continue
		}
		if e.state[u] == stateInfected {
			e.infected--
			if e.cfg.TrackSubnets {
				if s := e.env.Subnet[u]; s >= 0 {
					e.subnetInfected[s]--
				}
			}
		}
		e.state[u] = stateRemoved
		e.removed++
	}
}

// record appends this tick's metrics.
func (e *Engine) record(res *Result) {
	pop := float64(e.popSize)
	res.Infected = append(res.Infected, float64(e.infected)/pop)
	res.EverInfected = append(res.EverInfected, float64(e.ever)/pop)
	res.Immunized = append(res.Immunized, float64(e.removed)/pop)
	backlog := 0
	for _, q := range e.queues {
		backlog += len(q)
	}
	res.Backlog = append(res.Backlog, backlog)
	if e.cfg.TrackSubnets {
		var sum float64
		n := 0
		for s, inf := range e.subnetInfected {
			if inf > 0 {
				sum += float64(inf) / float64(e.subnetSize[s])
				n++
			}
		}
		within := 0.0
		if n > 0 {
			within = sum / float64(n)
		}
		res.WithinSubnet = append(res.WithinSubnet, within)
	}
	if e.cfg.TrackLatency {
		lat := 0.0
		if e.latCount > 0 {
			lat = float64(e.latSum) / float64(e.latCount)
		}
		res.MeanLatency = append(res.MeanLatency, lat)
		e.latSum, e.latCount = 0, 0
	}
}
