package sim

import (
	"encoding/json"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/ratelimit"
	"repro/internal/routing"
	"repro/internal/safeio"
	"repro/internal/topology"
	"repro/internal/worm"
)

// The golden-series fixtures pin the exact per-tick output of the
// engine for fixed seeds across all three topology families and every
// queueing/defense feature the hot path touches. Determinism is a hard
// invariant (PR 1): any refactor of the engine must reproduce these
// series byte-for-byte. Regenerate intentionally with
//
//	go test ./internal/sim -run TestGoldenSeries -update-golden
//
// and inspect the diff: a changed fixture means changed simulation
// behaviour, which needs an explicit justification in the PR.
var updateGolden = flag.Bool("update-golden", false, "rewrite the golden series fixtures")

const goldenPath = "testdata/golden_series.json"

// goldenSeries is the serialized subset of Result that the fixtures
// pin, plus the infection count (the full genealogy would bloat the
// fixture; its length and the series together pin the infection flow).
type goldenSeries struct {
	Infected       []float64 `json:"infected"`
	EverInfected   []float64 `json:"ever_infected"`
	Immunized      []float64 `json:"immunized"`
	Backlog        []int     `json:"backlog"`
	WithinSubnet   []float64 `json:"within_subnet,omitempty"`
	MeanLatency    []float64 `json:"mean_latency,omitempty"`
	QuarantineTick int       `json:"quarantine_tick"`
	Infections     int       `json:"infections"`
}

func toGolden(r *Result) goldenSeries {
	return goldenSeries{
		Infected:       r.Infected,
		EverInfected:   r.EverInfected,
		Immunized:      r.Immunized,
		Backlog:        r.Backlog,
		WithinSubnet:   r.WithinSubnet,
		MeanLatency:    r.MeanLatency,
		QuarantineTick: r.QuarantineTick,
		Infections:     len(r.Infections),
	}
}

// goldenScenarios builds one config per engine feature cluster. Every
// scenario must stay deterministic for its fixed seed.
func goldenScenarios(t testing.TB) map[string]Config {
	star, err := topology.Star(60)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := topology.BarabasiAlbert(200, 1, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	plRoles, err := topology.AssignRoles(pl, topology.PaperRoles)
	if err != nil {
		t.Fatal(err)
	}
	plSubnet := topology.Subnets(pl, plRoles)
	hg, hRoles, hSubnet, err := topology.Hierarchical(topology.HierarchicalConfig{
		Backbones: 2, EdgesPer: 4, HostsPerSubnet: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	plTab := routing.Build(pl)
	localPref, err := worm.NewLocalPreferentialFactory(0.7)
	if err != nil {
		t.Fatal(err)
	}

	scenarios := map[string]Config{
		// Star, no defense: the pure propagation path (generate /
		// route / deliver) with a hub forwarding every packet.
		"star-open": {
			Graph: star, Beta: 0.8, ScansPerTick: 2,
			Strategy:        worm.NewRandomFactory(),
			InitialInfected: 1, Ticks: 80, Seed: 7,
			RecordInfections: true, TrackLatency: true,
		},
		// Star with a zero-delay quarantine capping the hub: exercises
		// NodeCaps round-robin, dynamic activation, and DropTail.
		"star-hub-capped": {
			Graph: star, Beta: 0.8, ScansPerTick: 4,
			Strategy:        worm.NewRandomFactory(),
			InitialInfected: 2, Ticks: 120, Seed: 11,
			NodeCaps: map[int]int{0: 3}, MaxQueue: 40,
			Quarantine: &Quarantine{TriggerLevel: 0.05, Delay: 2},
		},
		// Power law with backbone rate limiting under congestion:
		// limited links, fractional credits, link weights, subnets.
		"powerlaw-backbone-limited": {
			Graph: pl, Roles: plRoles, Subnet: plSubnet,
			Beta: 0.8, ScansPerTick: 6,
			Strategy:        worm.NewRandomFactory(),
			InitialInfected: 3, Ticks: 120, Seed: 17,
			LimitedNodes: DeployBackbone(plRoles),
			BaseRate:     0.4, MaxQueue: 50,
			LinkWeights:  plTab.LinkWeights(pl),
			TrackSubnets: true,
		},
		// Power law with drop policy and immunization removing
		// infected hosts mid-run (the active set shrinks).
		"powerlaw-drop-immunize": {
			Graph: pl, Roles: plRoles, Subnet: plSubnet,
			Beta: 0.6, ScansPerTick: 4,
			Strategy:        worm.NewRandomFactory(),
			InitialInfected: 2, Ticks: 100, Seed: 23,
			LimitedNodes: DeployBackbone(plRoles),
			BaseRate:     1.5, Policy: PolicyDrop,
			Immunize:     &Immunization{StartTick: -1, StartLevel: 0.1, Mu: 0.05},
		},
		// Two-level hierarchy with edge-uplink limiting and a
		// probe-first worm: three one-way trips per infection.
		"twolevel-edge-probe": {
			Graph: hg, Roles: hRoles, Subnet: hSubnet,
			Beta: 0.8, ScansPerTick: 3,
			Strategy:        localPref,
			InitialInfected: 2, Ticks: 150, Seed: 31,
			LimitedLinks: DeployEdgeUplinks(hg, hRoles, hSubnet),
			BaseRate:     2, MaxQueue: 50, ProbeFirst: true,
			HostsOnly:    true,
			TrackSubnets: true, TrackLatency: true,
			Quarantine: &Quarantine{TriggerScansPerTick: 40, Delay: 5},
		},
		// Host-level defenses: per-node scan-rate overrides plus
		// concrete Williamson throttles gated by dynamic quarantine.
		"twolevel-host-throttle": {
			Graph: hg, Roles: hRoles, Subnet: hSubnet,
			Beta: 0.9, ScansPerTick: 5,
			Strategy:        worm.NewRandomFactory(),
			InitialInfected: 2, Ticks: 120, Seed: 41,
			ScanRateOverride: map[int]float64{10: 0.2, 20: 0.1, 30: 0.05},
			HostLimiterNodes: topology.NodesWithRole(hRoles, topology.RoleHost)[:40],
			HostLimiterFactory: func() ratelimit.ContactLimiter {
				l, err := ratelimit.NewWilliamsonThrottle(3, 1)
				if err != nil {
					panic(err)
				}
				return l
			},
			Quarantine: &Quarantine{TriggerLevel: 0.02, Delay: 0},
		},
	}
	return scenarios
}

func TestGoldenSeries(t *testing.T) {
	scenarios := goldenScenarios(t)
	got := make(map[string]goldenSeries, len(scenarios))
	for name, cfg := range scenarios {
		eng, err := New(cfg)
		if err != nil {
			t.Fatalf("%s: New: %v", name, err)
		}
		got[name] = toGolden(eng.Run())
	}

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "\t")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := safeio.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d scenarios", goldenPath, len(got))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read fixture (regenerate with -update-golden): %v", err)
	}
	var want map[string]goldenSeries
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	for name := range want {
		if _, ok := got[name]; !ok {
			t.Errorf("fixture scenario %s no longer produced", name)
		}
	}
	for name, g := range got {
		w, ok := want[name]
		if !ok {
			t.Errorf("%s: missing from fixture (regenerate with -update-golden)", name)
			continue
		}
		if !reflect.DeepEqual(g, w) {
			t.Errorf("%s: series diverged from golden fixture; the engine is no longer byte-identical", name)
		}
	}
}

// TestGoldenSeriesRerun guards within-process determinism: two engines
// built from the same config must agree exactly, independent of any
// global state a previous run left behind.
func TestGoldenSeriesRerun(t *testing.T) {
	for name, cfg := range goldenScenarios(t) {
		e1, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		e2, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(toGolden(e1.Run()), toGolden(e2.Run())) {
			t.Errorf("%s: rerun diverged", name)
		}
	}
}
