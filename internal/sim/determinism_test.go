package sim

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/worm"
)

// The cross-worker determinism contract (DESIGN.md §12): Config.Workers
// is a throughput knob, never a semantics knob. Every golden scenario
// must produce byte-identical series, genealogy, and observability
// counters at Workers=1, 2, and 8, and checkpoints taken under one
// worker count must resume under any other.

// runTallied runs cfg with the given worker count and a fresh Tally
// collector, returning the series and the run's counter totals.
func runTallied(t *testing.T, cfg Config, workers int) (goldenSeries, map[string]int64) {
	t.Helper()
	cfg.Workers = workers
	tally := obs.NewTally()
	cfg.Collector = tally
	eng, err := New(cfg)
	if err != nil {
		t.Fatalf("workers=%d: New: %v", workers, err)
	}
	res := eng.Run()
	sum := tally.Summary()
	return toGolden(res), sum.Counters()
}

func TestWorkerCountInvariance(t *testing.T) {
	for name, cfg := range goldenScenarios(t) {
		t.Run(name, func(t *testing.T) {
			base, baseCounters := runTallied(t, cfg, 1)
			for _, workers := range []int{2, 8} {
				got, counters := runTallied(t, cfg, workers)
				if !reflect.DeepEqual(got, base) {
					t.Errorf("workers=%d: series diverged from workers=1", workers)
				}
				if !reflect.DeepEqual(counters, baseCounters) {
					t.Errorf("workers=%d: obs counters diverged from workers=1:\n got %v\nwant %v",
						workers, counters, baseCounters)
				}
			}
		})
	}
}

// TestWorkerCountInvarianceSharedPicker: a hit-list worm shares a claim
// cursor across hosts, which forces the generate sweep serial — but the
// run as a whole (transmit/immunize still shard) must stay worker-count
// independent.
func TestWorkerCountInvarianceSharedPicker(t *testing.T) {
	base := goldenScenarios(t)["powerlaw-drop-immunize"]
	list := make([]int, 50)
	for i := range list {
		list[i] = (i * 3) % base.Graph.N()
	}
	hitlist, err := worm.NewHitListFactory(list)
	if err != nil {
		t.Fatal(err)
	}
	base.Strategy = hitlist
	want, wantCounters := runTallied(t, base, 1)
	for _, workers := range []int{2, 8} {
		got, counters := runTallied(t, base, workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: hit-list series diverged from workers=1", workers)
		}
		if !reflect.DeepEqual(counters, wantCounters) {
			t.Errorf("workers=%d: hit-list obs counters diverged from workers=1", workers)
		}
	}
}

// TestSnapshotResumeAcrossWorkerCounts: a snapshot is execution state,
// not execution configuration — checkpoints taken by a 4-worker run
// must resume byte-identically under 1, 4, or 8 workers.
func TestSnapshotResumeAcrossWorkerCounts(t *testing.T) {
	for _, name := range []string{"powerlaw-backbone-limited", "powerlaw-drop-immunize"} {
		cfg := goldenScenarios(t)[name]
		cfg.Workers = 4
		full, snaps := runWithCheckpoints(t, cfg)
		want := toGolden(full)
		for _, cut := range []int{0, len(snaps) / 2, len(snaps) - 1} {
			data, err := snaps[cut].Encode()
			if err != nil {
				t.Fatalf("%s: encode snapshot %d: %v", name, cut, err)
			}
			snap, err := DecodeSnapshot(data)
			if err != nil {
				t.Fatalf("%s: decode snapshot %d: %v", name, cut, err)
			}
			for _, workers := range []int{1, 4, 8} {
				rcfg := cfg
				rcfg.Workers = workers
				eng, err := Restore(rcfg, snap)
				if err != nil {
					t.Fatalf("%s: restore cut %d under workers=%d: %v", name, cut, workers, err)
				}
				if got := toGolden(eng.Run()); !reflect.DeepEqual(got, want) {
					t.Errorf("%s: resume from cut %d under workers=%d diverged", name, cut, workers)
				}
			}
		}
	}
}
