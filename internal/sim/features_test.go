package sim

import (
	"testing"

	"repro/internal/ratelimit"
	"repro/internal/topology"
	"repro/internal/worm"
)

func TestInfectionGenealogy(t *testing.T) {
	cfg := baseConfig(t, 80)
	cfg.RecordInfections = true
	cfg.InitialInfected = 2
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res := eng.Run()
	if len(res.Infections) == 0 {
		t.Fatal("no infections recorded")
	}
	seeds := 0
	seen := make(map[int]bool)
	for _, inf := range res.Infections {
		if seen[int(inf.Victim)] {
			t.Fatalf("victim %d infected twice", inf.Victim)
		}
		seen[int(inf.Victim)] = true
		if inf.Source < 0 {
			seeds++
			if inf.Tick != -1 {
				t.Errorf("seed infection at tick %d, want -1", inf.Tick)
			}
			continue
		}
		// Sources must have been infected before their victims.
		if !seen[int(inf.Source)] {
			t.Fatalf("victim %d infected by not-yet-infected %d", inf.Victim, inf.Source)
		}
	}
	if seeds != 2 {
		t.Errorf("seeds = %d, want 2", seeds)
	}
	// Genealogy count matches the ever-infected total.
	wantEver := int(res.FinalEverInfected() * float64(cfg.Graph.N()))
	if len(res.Infections) != wantEver {
		t.Errorf("genealogy entries %d != ever infected %d", len(res.Infections), wantEver)
	}
	depths := res.InfectionDepths()
	if len(depths) != len(res.Infections) {
		t.Fatalf("depths %d != infections %d", len(depths), len(res.Infections))
	}
	maxDepth := 0
	for _, inf := range res.Infections {
		d := depths[int(inf.Victim)]
		if inf.Source < 0 && d != 0 {
			t.Errorf("seed depth = %d", d)
		}
		if inf.Source >= 0 && d != depths[int(inf.Source)]+1 {
			t.Errorf("depth chain broken at %d", inf.Victim)
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	if maxDepth < 2 {
		t.Errorf("max depth %d too shallow for a full epidemic", maxDepth)
	}
}

func TestInfectionDepthsWithoutRecording(t *testing.T) {
	r := &Result{}
	if r.InfectionDepths() != nil {
		t.Error("no genealogy should give nil depths")
	}
}

func TestTrackSubnets(t *testing.T) {
	g, roles, subnet, err := topology.Hierarchical(topology.HierarchicalConfig{
		Backbones: 2, EdgesPer: 3, HostsPerSubnet: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	lp, err := worm.NewLocalPreferentialFactory(0.9)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Graph: g, Roles: roles, Subnet: subnet,
		Beta: 0.8, Strategy: lp, InitialInfected: 1,
		Ticks: 120, Seed: 3, TrackSubnets: true,
	}
	res, err := MultiRun(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WithinSubnet) != cfg.Ticks {
		t.Fatalf("within-subnet series length %d", len(res.WithinSubnet))
	}
	for i, v := range res.WithinSubnet {
		if v < 0 || v > 1 {
			t.Fatalf("within-subnet[%d] = %v out of range", i, v)
		}
	}
	// A local-preferential worm saturates its subnets faster than the
	// overall population: mid-epidemic the within-subnet fraction should
	// exceed the overall infected fraction.
	mid := -1
	for i, v := range res.Infected {
		if v > 0.2 && v < 0.7 {
			mid = i
			break
		}
	}
	if mid >= 0 && res.WithinSubnet[mid] <= res.Infected[mid] {
		t.Errorf("within-subnet %v should lead overall %v mid-epidemic",
			res.WithinSubnet[mid], res.Infected[mid])
	}
}

func TestHostLimiterIntegration(t *testing.T) {
	cfg := baseConfig(t, 120)
	cfg.Ticks = 80
	// Throttle every node with a Williamson-style unique-IP window: one
	// new destination per 5-tick window.
	nodes := make([]int, cfg.Graph.N())
	for i := range nodes {
		nodes[i] = i
	}
	open, err := MultiRun(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.HostLimiterNodes = nodes
	cfg.HostLimiterFactory = func() ratelimit.ContactLimiter {
		l, err := ratelimit.NewUniqueIPWindow(1, 5)
		if err != nil {
			panic(err) // impossible with constant arguments
		}
		return l
	}
	throttled, err := MultiRun(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	tOpen := open.TimeToLevel(0.5)
	tThrottled := throttled.TimeToLevel(0.5)
	if !(tThrottled > 1.5*tOpen) {
		t.Errorf("universal throttling should slow >1.5x: %v vs %v", tThrottled, tOpen)
	}
}

func TestHostLimiterValidation(t *testing.T) {
	cfg := baseConfig(t, 50)
	cfg.HostLimiterNodes = []int{1}
	if err := cfg.Validate(); err == nil {
		t.Error("limiter nodes without factory should fail")
	}
	cfg.HostLimiterFactory = func() ratelimit.ContactLimiter {
		l, _ := ratelimit.NewUniqueIPWindow(1, 5)
		return l
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid limiter config rejected: %v", err)
	}
	cfg.HostLimiterNodes = []int{-1}
	if err := cfg.Validate(); err == nil {
		t.Error("out-of-range limiter node should fail")
	}
}

func TestSusceptibleOnlyPatching(t *testing.T) {
	cfg := baseConfig(t, 150)
	cfg.Ticks = 200
	cfg.Immunize = &Immunization{StartTick: -1, StartLevel: 0.2, Mu: 0.1}
	both, err := MultiRun(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Immunize = &Immunization{StartTick: -1, StartLevel: 0.2, Mu: 0.1, SusceptibleOnly: true}
	susOnly, err := MultiRun(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Leaving infected hosts scanning infects more of the population.
	if !(susOnly.FinalEverInfected() > both.FinalEverInfected()) {
		t.Errorf("susceptible-only %v should infect more than patch-all %v",
			susOnly.FinalEverInfected(), both.FinalEverInfected())
	}
	// And the epidemic never dies out (infected stay infected).
	if susOnly.FinalInfected() == 0 {
		t.Error("susceptible-only patching cannot extinguish the infection")
	}
}
