package sim

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/topology"
	"repro/internal/worm"
)

// TestSharedNetByteIdentical: batches run over a caller-supplied Net
// must produce exactly the series of batches that build their own
// routing state — the Net is a pure construction-cost optimization.
func TestSharedNetByteIdentical(t *testing.T) {
	g, err := topology.BarabasiAlbert(150, 1, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Graph: g, Beta: 0.7, Strategy: worm.NewRandomFactory(),
		InitialInfected: 1, Ticks: 40, Seed: 9,
	}
	want, err := MultiRun(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	net := BuildNet(g)
	for _, beta := range []float64{0.7, 0.3} {
		c := cfg
		c.Beta = beta
		c.Net = net
		got, err := MultiRun(c, 3)
		if err != nil {
			t.Fatalf("beta %v with shared net: %v", beta, err)
		}
		if beta == 0.7 && !reflect.DeepEqual(got, want) {
			t.Error("shared-net batch diverged from the self-built batch")
		}
	}
}

// TestNetGraphMismatchRejected: a Net built from a different graph
// than Config.Graph is a config error, not a silent misroute.
func TestNetGraphMismatchRejected(t *testing.T) {
	g1, err := topology.Star(30)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := topology.Star(30)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Graph: g1, Net: BuildNet(g2), Beta: 0.5,
		Strategy:        worm.NewRandomFactory(),
		InitialInfected: 1, Ticks: 10, Seed: 1,
	}
	if err := cfg.Validate(); err == nil || !strings.Contains(err.Error(), "different graph") {
		t.Errorf("mismatched Net should fail validation, got %v", err)
	}
	if _, _, err := MultiRunStats(context.Background(), cfg, 1); err == nil {
		t.Error("MultiRun with mismatched Net should fail")
	}
}
