package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/bits"
	"os"

	"repro/internal/ratelimit"
	"repro/internal/safeio"
	"repro/internal/worm"
)

// SnapshotVersion is the checkpoint payload version this build writes
// and reads. The rule: any change to the payload schema, to what the
// engine stores versus recomputes, or to the meaning of a stored field
// bumps the version; old files are then rejected with a versioned
// error rather than misread. There is no cross-version migration — a
// checkpoint is a mid-run artifact, not an archive format.
//
// Version 2: the engine RNG became a per-node counter-mode stream
// table; checkpoints stored the stream states (RNGStates) instead of a
// single sequential draw count, and version-1 files were rejected.
//
// Version 3: the engine's hot-path state went compact (DESIGN.md §14).
// Node states are packed four to a byte (StatesPacked replaces the
// byte-per-node States), RNG streams are stored sparsely — only the
// counters that have advanced past their seed-derived initial value
// (RNGIdx/RNGVal replace the dense RNGStates) — and the deferred
// link-recharge count rides along (RechargeDebt). Version-2 files are
// rejected.
//
// Version 4: trace-replay workloads (DESIGN.md §17). The workload
// stream position rides along (ReplayRecords — restore re-creates the
// stream from the config and fast-forwards it, cross-checking the
// skipped contact count), as do the per-tick benign-traffic counters
// (BenignThisTick/BenignThrottledThisTick), and queued packets may
// carry a fourth kind (benign background traffic). Version-3 files are
// rejected.
const SnapshotVersion = 4

// snapshotFormat identifies checkpoint files regardless of version.
const snapshotFormat = "wormsim-checkpoint"

// ErrSnapshot marks every snapshot decode/restore failure: wrong
// format, wrong version, checksum mismatch, or a payload inconsistent
// with the restoring configuration. Corrupted checkpoints surface as
// errors.Is(err, ErrSnapshot) — never a panic, never a silent resume
// from garbage.
var ErrSnapshot = errors.New("sim: invalid snapshot")

// Snapshot is a complete serialized engine state at a tick boundary:
// restoring it into an engine built from the identical Config resumes
// the run with byte-identical remaining series. Only state that cannot
// be recomputed is stored; active-set bitmaps, per-subnet counts, and
// link budgets are rebuilt on restore. Fields are exported for JSON
// only — treat the struct as opaque.
type Snapshot struct {
	// Identity of the run this snapshot belongs to; Restore rejects a
	// snapshot whose identity does not match the rebuilding Config.
	Nodes    int   `json:"nodes"`
	Links    int   `json:"links"`
	Ticks    int   `json:"ticks"`
	Seed     int64 `json:"seed"`
	NextTick int   `json:"next_tick"`

	// RNGIdx/RNGVal are the engine's RNG stream table stored sparsely:
	// RNGVal[k] is the current counter of stream RNGIdx[k], listed in
	// strictly ascending index order, and only for streams whose counter
	// differs from its seed-derived initial value. A counter-mode stream
	// advances by the odd constant rngGamma per draw, so it can never
	// return to its initial value: "differs" is exactly "has drawn".
	// Stream n (nodes) is the run-level stream. FaultState is the fault
	// injector's RNG state.
	RNGIdx     []uint32 `json:"rng_idx,omitempty"`
	RNGVal     []uint64 `json:"rng_val,omitempty"`
	FaultState uint64   `json:"fault_state,omitempty"`

	// StatesPacked holds the 2-bit node states four to a byte, node u at
	// bits 2*(u%4) of byte u/4; trailing bits of the last byte are zero.
	StatesPacked []byte `json:"states_packed"`

	Infected int `json:"infected"`
	Ever     int `json:"ever"`
	Removed  int `json:"removed"`

	Immunizing        bool `json:"immunizing"`
	ImmunizePending   int  `json:"immunize_pending"`
	DefenseActive     bool `json:"defense_active"`
	TriggerTick       int  `json:"trigger_tick"`
	ActivatedTick     int  `json:"activated_tick"`
	ScansThisTick     int  `json:"scans_this_tick"`
	ThrottledThisTick int  `json:"throttled_this_tick"`

	// Replay state: the benign-traffic counterparts of the scan
	// counters, and the workload stream position — the total contacts
	// consumed before NextTick, which restore verifies against a
	// re-created stream (resuming over a different trace must fail, not
	// silently diverge).
	BenignThisTick          int   `json:"benign_this_tick,omitempty"`
	BenignThrottledThisTick int   `json:"benign_throttled_this_tick,omitempty"`
	ReplayRecords           int64 `json:"replay_records,omitempty"`

	GenCount    uint64 `json:"gen_count"`
	DelivCount  uint64 `json:"deliv_count"`
	DropCount   uint64 `json:"drop_count"`
	PrevGen     uint64 `json:"prev_gen"`
	PrevDeliv   uint64 `json:"prev_deliv"`
	PrevDrop    uint64 `json:"prev_drop"`
	PrevEver    int    `json:"prev_ever"`
	PrevRemoved int    `json:"prev_removed"`

	// LinkCredit holds the fractional credit of each limited link, in
	// limited-index (= rank) order; RechargeDebt is the number of
	// recharge sweeps deferred across trailing quiescent ticks (see
	// Engine.rechargeLinks). RRPos is the per-node round-robin resume
	// position when node caps are configured.
	LinkCredit   []float64 `json:"link_credit,omitempty"`
	RechargeDebt int       `json:"recharge_debt,omitempty"`
	RRPos        []int32   `json:"rr_pos,omitempty"`

	Queues   []queueSnap   `json:"queues,omitempty"`
	Limiters []limiterSnap `json:"limiters,omitempty"`
	Pickers  []pickerSnap  `json:"pickers,omitempty"`

	Infections []Infection `json:"infections,omitempty"`

	Series seriesSnap `json:"series"`
}

// queueSnap is one non-empty link queue: packets flattened as
// (src, dst, kind, birth) quads.
type queueSnap struct {
	Link int32   `json:"link"`
	Pkts []int32 `json:"pkts"`
}

// limiterSnap is one host contact limiter's serialized state.
type limiterSnap struct {
	Node  int             `json:"node"`
	State json.RawMessage `json:"state"`
}

// pickerSnap is one infected node's stateful-picker state.
type pickerSnap struct {
	Node  int             `json:"node"`
	State json.RawMessage `json:"state"`
}

// seriesSnap is the partial per-tick series recorded so far.
type seriesSnap struct {
	Infected     []float64 `json:"infected"`
	EverInfected []float64 `json:"ever_infected"`
	Immunized    []float64 `json:"immunized"`
	Backlog      []int     `json:"backlog"`
	WithinSubnet []float64 `json:"within_subnet,omitempty"`
	MeanLatency  []float64 `json:"mean_latency,omitempty"`
}

// snapshotEnvelope is the on-disk container: the payload plus enough
// framing to reject foreign files, future versions, and corruption.
type snapshotEnvelope struct {
	Format  string          `json:"format"`
	Version int             `json:"version"`
	SHA256  string          `json:"sha256"`
	Payload json.RawMessage `json:"payload"`
}

// Encode serializes the snapshot into its checksummed file format.
func (s *Snapshot) Encode() ([]byte, error) {
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("sim: encode snapshot: %w", err)
	}
	sum := sha256.Sum256(payload)
	return json.Marshal(snapshotEnvelope{
		Format:  snapshotFormat,
		Version: SnapshotVersion,
		SHA256:  hex.EncodeToString(sum[:]),
		Payload: payload,
	})
}

// DecodeSnapshot parses and verifies a checkpoint file. Every failure
// — not a checkpoint, a different version, a corrupted payload —
// returns an error matching ErrSnapshot.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	var env snapshotEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("%w: not a checkpoint file: %v", ErrSnapshot, err)
	}
	if env.Format != snapshotFormat {
		return nil, fmt.Errorf("%w: format %q, want %q", ErrSnapshot, env.Format, snapshotFormat)
	}
	if env.Version != SnapshotVersion {
		return nil, fmt.Errorf("%w: version %d (this build reads version %d)",
			ErrSnapshot, env.Version, SnapshotVersion)
	}
	sum := sha256.Sum256(env.Payload)
	if hex.EncodeToString(sum[:]) != env.SHA256 {
		return nil, fmt.Errorf("%w: payload checksum mismatch (file corrupted or truncated)", ErrSnapshot)
	}
	var s Snapshot
	if err := json.Unmarshal(env.Payload, &s); err != nil {
		return nil, fmt.Errorf("%w: payload: %v", ErrSnapshot, err)
	}
	return &s, nil
}

// WriteSnapshot writes the snapshot to path crash-safely (temp file in
// the same directory, fsync, atomic rename): a crash mid-write leaves
// the previous checkpoint intact, never a half-written file.
func WriteSnapshot(path string, s *Snapshot) error {
	data, err := s.Encode()
	if err != nil {
		return err
	}
	return safeio.WriteFile(path, data, 0o644)
}

// ReadSnapshot reads and verifies the checkpoint at path.
func ReadSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(data)
}

// Snapshot captures the engine's complete state at the current tick
// boundary. It fails if a configured host limiter or stateful picker
// cannot serialize its state; stateless pickers are skipped (the
// strategy factory rebuilds them).
func (e *Engine) Snapshot() (*Snapshot, error) {
	s := &Snapshot{
		Nodes:    e.n,
		Links:    e.links.Count(),
		Ticks:    e.cfg.Ticks,
		Seed:     e.cfg.Seed,
		NextTick: e.nextTick,

		StatesPacked: e.packStates(),

		Infected: e.infected,
		Ever:     e.ever,
		Removed:  e.removed,

		Immunizing:        e.immunizing,
		ImmunizePending:   e.immunizePending,
		DefenseActive:     e.defenseActive,
		TriggerTick:       e.triggerTick,
		ActivatedTick:     e.activatedTick,
		ScansThisTick:     e.scansThisTick,
		ThrottledThisTick: e.throttledThisTick,

		BenignThisTick:          e.benignThisTick,
		BenignThrottledThisTick: e.benignThrottledThisTick,
		ReplayRecords:           e.replayRecords,

		GenCount:    e.genCount,
		DelivCount:  e.delivCount,
		DropCount:   e.dropCount,
		PrevGen:     e.prevGen,
		PrevDeliv:   e.prevDeliv,
		PrevDrop:    e.prevDrop,
		PrevEver:    e.prevEver,
		PrevRemoved: e.prevRemoved,
	}
	// Sparse RNG: walk the materialized pages and record every counter
	// that moved off its initial value. Unmaterialized pages hold only
	// initial values by construction.
	for pi, page := range e.streams.pages {
		if page == nil {
			continue
		}
		base := pi << streamPageShift
		for k, cur := range page {
			i := base + k
			if i > e.n {
				break
			}
			if cur != e.streams.initial(i) {
				s.RNGIdx = append(s.RNGIdx, uint32(i))
				s.RNGVal = append(s.RNGVal, cur)
			}
		}
	}
	if e.faults != nil {
		s.FaultState = e.faults.State()
	}
	if len(e.limitedIdx) > 0 {
		s.LinkCredit = append([]float64(nil), e.linkCredit...)
		s.RechargeDebt = e.rechargeDebt
	}
	if e.rrPos != nil {
		s.RRPos = append([]int32(nil), e.rrPos...)
	}
	// Non-empty queues, in ascending link order via the active set (the
	// materialization order of queueTab is first-use order, which is
	// not canonical).
	for w, word := range e.queueBits {
		for word != 0 {
			li := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			q := e.queueTab[e.queueSlot[li]]
			pkts := make([]int32, 0, len(q)*4)
			for _, p := range q {
				pkts = append(pkts, p.src, p.dst, int32(p.kind), p.birth)
			}
			s.Queues = append(s.Queues, queueSnap{Link: int32(li), Pkts: pkts})
		}
	}
	// Host limiters, ascending by node (limiterTab is in configuration
	// order, so scan the slot directory instead).
	if e.limiterSlot != nil {
		for u := 0; u < e.n; u++ {
			ls := e.limiterSlot[u]
			if ls < 0 {
				continue
			}
			l := e.limiterTab[ls]
			m, ok := l.(ratelimit.StateMarshaler)
			if !ok {
				return nil, fmt.Errorf("sim: host limiter of node %d (%T) does not support snapshots", u, l)
			}
			data, err := m.MarshalState()
			if err != nil {
				return nil, fmt.Errorf("sim: snapshot limiter of node %d: %w", u, err)
			}
			s.Limiters = append(s.Limiters, limiterSnap{Node: u, State: data})
		}
	}
	// Stateful pickers of infected nodes, ascending via the active set.
	for w, word := range e.infectedBits {
		for word != 0 {
			u := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			m, ok := e.pickerTab[e.pickerSlot[u]].(worm.StateMarshaler)
			if !ok {
				continue // stateless picker: the factory rebuilds it exactly
			}
			data, err := m.MarshalState()
			if err != nil {
				return nil, fmt.Errorf("sim: snapshot picker of node %d: %w", u, err)
			}
			s.Pickers = append(s.Pickers, pickerSnap{Node: u, State: data})
		}
	}
	if e.cfg.RecordInfections {
		s.Infections = append([]Infection(nil), e.infections...)
	}
	if e.res != nil {
		s.Series = seriesSnap{
			Infected:     append([]float64(nil), e.res.Infected...),
			EverInfected: append([]float64(nil), e.res.EverInfected...),
			Immunized:    append([]float64(nil), e.res.Immunized...),
			Backlog:      append([]int(nil), e.res.Backlog...),
			WithinSubnet: append([]float64(nil), e.res.WithinSubnet...),
			MeanLatency:  append([]float64(nil), e.res.MeanLatency...),
		}
	}
	return s, nil
}

// packStates serializes the packed state words into the snapshot's
// four-nodes-per-byte layout (byte u/4, bits 2*(u%4) — the
// little-endian bytes of Engine.stateBits, truncated to ⌈n/4⌉).
func (e *Engine) packStates() []byte {
	b := make([]byte, (e.n+3)/4)
	for i := range b {
		b[i] = byte(e.stateBits[i>>3] >> (uint(i&7) * 8))
	}
	return b
}

// Restore builds an engine from cfg positioned at the snapshot's tick
// boundary. cfg must be the configuration the snapshot was taken under
// (same graph, parameters, seed); mismatches that are cheap to detect
// are rejected with ErrSnapshot, the rest are the caller's contract.
// The restored engine's RunContext continues at snapshot.NextTick and
// produces the byte-identical remaining series of an uninterrupted run.
func Restore(cfg Config, snap *Snapshot) (*Engine, error) {
	return restoreEngine(cfg, snap, nil)
}

// restoreEngine is Restore with an optional shared netState (MultiRun
// resumes replicas over the routing state it already built).
func restoreEngine(cfg Config, snap *Snapshot, ns *netState) (*Engine, error) {
	e, err := newEngine(cfg, ns)
	if err != nil {
		return nil, err
	}
	if err := e.restore(snap); err != nil {
		return nil, err
	}
	return e, nil
}

// restore overwrites a freshly built engine's mutable state with the
// snapshot's, validating everything the configuration lets it check.
func (e *Engine) restore(s *Snapshot) error {
	if s.Nodes != e.n || s.Links != e.links.Count() {
		return fmt.Errorf("%w: snapshot of %d nodes / %d links, config builds %d / %d",
			ErrSnapshot, s.Nodes, s.Links, e.n, e.links.Count())
	}
	if s.Seed != e.cfg.Seed {
		return fmt.Errorf("%w: snapshot of seed %d, config has seed %d", ErrSnapshot, s.Seed, e.cfg.Seed)
	}
	if s.Ticks != e.cfg.Ticks {
		return fmt.Errorf("%w: snapshot of a %d-tick run, config has %d", ErrSnapshot, s.Ticks, e.cfg.Ticks)
	}
	if s.NextTick < 0 || s.NextTick > e.cfg.Ticks {
		return fmt.Errorf("%w: next tick %d out of [0,%d]", ErrSnapshot, s.NextTick, e.cfg.Ticks)
	}
	if len(s.StatesPacked) != (e.n+3)/4 {
		return fmt.Errorf("%w: %d packed state bytes for %d nodes (want %d)",
			ErrSnapshot, len(s.StatesPacked), e.n, (e.n+3)/4)
	}
	if e.n%4 != 0 && len(s.StatesPacked) > 0 {
		if last := s.StatesPacked[len(s.StatesPacked)-1]; last>>(uint(e.n%4)*2) != 0 {
			return fmt.Errorf("%w: trailing state bits beyond node %d are set", ErrSnapshot, e.n-1)
		}
	}
	if len(s.RNGIdx) != len(s.RNGVal) {
		return fmt.Errorf("%w: %d RNG stream indexes with %d values",
			ErrSnapshot, len(s.RNGIdx), len(s.RNGVal))
	}
	for k, idx := range s.RNGIdx {
		if int(idx) > e.n {
			return fmt.Errorf("%w: RNG stream index %d beyond run stream %d", ErrSnapshot, idx, e.n)
		}
		if k > 0 && idx <= s.RNGIdx[k-1] {
			return fmt.Errorf("%w: RNG stream indexes not strictly ascending at %d", ErrSnapshot, idx)
		}
	}
	if len(s.Series.Infected) != s.NextTick || len(s.Series.EverInfected) != s.NextTick ||
		len(s.Series.Immunized) != s.NextTick || len(s.Series.Backlog) != s.NextTick {
		return fmt.Errorf("%w: series length != %d completed ticks", ErrSnapshot, s.NextTick)
	}
	if e.cfg.TrackSubnets && len(s.Series.WithinSubnet) != s.NextTick {
		return fmt.Errorf("%w: within-subnet series length %d != %d (was the snapshot taken without TrackSubnets?)",
			ErrSnapshot, len(s.Series.WithinSubnet), s.NextTick)
	}
	if e.cfg.TrackLatency && len(s.Series.MeanLatency) != s.NextTick {
		return fmt.Errorf("%w: latency series length %d != %d (was the snapshot taken without TrackLatency?)",
			ErrSnapshot, len(s.Series.MeanLatency), s.NextTick)
	}

	// Node states. The snapshot must agree with the configuration on
	// which nodes are excluded: exclusion is config-derived (HostsOnly ×
	// Roles), and the fresh engine's packed words hold exactly the
	// config's exclusion set (plus seed infections, which are never
	// excluded). Then the packed words are rebuilt wholesale, with the
	// derived counts and active sets cross-checked against the stored
	// totals.
	snapState := func(u int) uint8 {
		return s.StatesPacked[u>>2] >> (uint(u&3) * 2) & 3
	}
	for u := 0; u < e.n; u++ {
		if (snapState(u) == stateExcluded) != (e.stateOf(u) == stateExcluded) {
			return fmt.Errorf("%w: node %d exclusion disagrees with config (HostsOnly/Roles changed?)",
				ErrSnapshot, u)
		}
	}
	clear(e.stateBits)
	clear(e.infectedBits)
	for i := range e.subnetInfected {
		e.subnetInfected[i] = 0
	}
	nInfected, nRemoved := 0, 0
	for u := 0; u < e.n; u++ {
		st := snapState(u)
		switch st {
		case stateSusceptible:
			continue
		case stateInfected:
			nInfected++
			e.infectedBits[u>>6] |= 1 << (uint(u) & 63)
			if e.cfg.TrackSubnets {
				if sub := e.env.Subnet[u]; sub >= 0 {
					e.subnetInfected[sub]++
				}
			}
		case stateRemoved:
			nRemoved++
		}
		e.setState(u, st)
	}
	if nInfected != s.Infected || nRemoved != s.Removed {
		return fmt.Errorf("%w: stored counts (%d infected, %d removed) disagree with states (%d, %d)",
			ErrSnapshot, s.Infected, s.Removed, nInfected, nRemoved)
	}
	if s.Ever < nInfected || s.Ever > e.n {
		return fmt.Errorf("%w: ever-infected count %d out of [%d,%d]", ErrSnapshot, s.Ever, nInfected, e.n)
	}
	e.infected, e.ever, e.removed = s.Infected, s.Ever, s.Removed

	// Pickers: rebuild via the strategy factory for the restored
	// infected set (ascending node order; the table's slot order is not
	// observable), then overlay recorded stateful-picker state.
	e.pickerTab = e.pickerTab[:0]
	for u := 0; u < e.n; u++ {
		e.pickerSlot[u] = -1
		if e.stateOf(u) == stateInfected {
			e.pickerSlot[u] = int32(len(e.pickerTab))
			e.pickerTab = append(e.pickerTab, e.cfg.Strategy(e.env, u))
		}
	}
	for _, ps := range s.Pickers {
		if ps.Node < 0 || ps.Node >= e.n || e.stateOf(ps.Node) != stateInfected {
			return fmt.Errorf("%w: picker state for node %d which is not infected", ErrSnapshot, ps.Node)
		}
		m, ok := e.pickerTab[e.pickerSlot[ps.Node]].(worm.StateMarshaler)
		if !ok {
			return fmt.Errorf("%w: picker state recorded for node %d but the configured strategy is stateless",
				ErrSnapshot, ps.Node)
		}
		if err := m.UnmarshalState(ps.State); err != nil {
			return fmt.Errorf("%w: picker of node %d: %v", ErrSnapshot, ps.Node, err)
		}
	}

	// Link queues: drop every materialized queue and rebuild from the
	// snapshot (slot order is restore order here, first-use order on a
	// live run; neither is observable).
	nLinks := e.links.Count()
	for i := range e.queueSlot {
		e.queueSlot[i] = -1
	}
	e.queueTab = e.queueTab[:0]
	e.queueLink = e.queueLink[:0]
	clear(e.queueBits)
	e.backlog = 0
	for _, qs := range s.Queues {
		li := int(qs.Link)
		if li < 0 || li >= nLinks {
			return fmt.Errorf("%w: queue for link %d out of [0,%d)", ErrSnapshot, li, nLinks)
		}
		if len(qs.Pkts)%4 != 0 || len(qs.Pkts) == 0 {
			return fmt.Errorf("%w: link %d queue has %d values (not non-empty quads)", ErrSnapshot, li, len(qs.Pkts))
		}
		if e.queueSlot[li] >= 0 {
			return fmt.Errorf("%w: duplicate queue entry for link %d", ErrSnapshot, li)
		}
		q := make([]packet, 0, len(qs.Pkts)/4)
		for i := 0; i < len(qs.Pkts); i += 4 {
			p := packet{src: qs.Pkts[i], dst: qs.Pkts[i+1], kind: packetKind(qs.Pkts[i+2]), birth: qs.Pkts[i+3]}
			if p.src < 0 || int(p.src) >= e.n || p.dst < 0 || int(p.dst) >= e.n {
				return fmt.Errorf("%w: link %d carries packet with endpoints %d->%d", ErrSnapshot, li, p.src, p.dst)
			}
			if p.kind > kindBenign {
				return fmt.Errorf("%w: link %d carries packet of unknown kind %d", ErrSnapshot, li, p.kind)
			}
			q = append(q, p)
		}
		e.queueSlot[li] = int32(len(e.queueTab))
		e.queueTab = append(e.queueTab, q)
		e.queueLink = append(e.queueLink, int32(li))
		e.queueBits[li>>6] |= 1 << (uint(li) & 63)
		e.backlog += len(q)
	}

	// Host limiter state: every configured limiter must have been
	// recorded, and every recorded limiter must still be configured.
	if len(s.Limiters) != len(e.limiterTab) {
		return fmt.Errorf("%w: %d limiter states for %d configured host limiters",
			ErrSnapshot, len(s.Limiters), len(e.limiterTab))
	}
	for _, ls := range s.Limiters {
		if ls.Node < 0 || ls.Node >= e.n || e.limiterSlot == nil || e.limiterSlot[ls.Node] < 0 {
			return fmt.Errorf("%w: limiter state for node %d which has no host limiter", ErrSnapshot, ls.Node)
		}
		l := e.limiterTab[e.limiterSlot[ls.Node]]
		m, ok := l.(ratelimit.StateMarshaler)
		if !ok {
			return fmt.Errorf("%w: host limiter of node %d (%T) does not support snapshots",
				ErrSnapshot, ls.Node, l)
		}
		if err := m.UnmarshalState(ls.State); err != nil {
			return fmt.Errorf("%w: limiter of node %d: %v", ErrSnapshot, ls.Node, err)
		}
	}

	// Link credits, deferred recharges, and round-robin positions.
	if len(s.LinkCredit) != len(e.limitedIdx) {
		return fmt.Errorf("%w: %d link credits for %d limited links", ErrSnapshot, len(s.LinkCredit), len(e.limitedIdx))
	}
	if s.RechargeDebt < 0 {
		return fmt.Errorf("%w: negative recharge debt %d", ErrSnapshot, s.RechargeDebt)
	}
	copy(e.linkCredit, s.LinkCredit)
	e.rechargeDebt = s.RechargeDebt
	if (e.rrPos == nil) != (len(s.RRPos) == 0) {
		return fmt.Errorf("%w: node-cap scheduler state disagrees with configured NodeCaps", ErrSnapshot)
	}
	if e.rrPos != nil {
		if len(s.RRPos) != e.n {
			return fmt.Errorf("%w: %d round-robin positions for %d nodes", ErrSnapshot, len(s.RRPos), e.n)
		}
		copy(e.rrPos, s.RRPos)
		for u := range e.cappedServed {
			e.cappedServed[u] = -1
		}
	}

	// Defense, immunization, and counter state.
	e.immunizing = s.Immunizing
	e.immunizePending = s.ImmunizePending
	e.defenseActive = s.DefenseActive
	e.triggerTick = s.TriggerTick
	e.activatedTick = s.ActivatedTick
	e.scansThisTick = s.ScansThisTick
	e.throttledThisTick = s.ThrottledThisTick
	e.benignThisTick = s.BenignThisTick
	e.benignThrottledThisTick = s.BenignThrottledThisTick
	e.genCount, e.delivCount, e.dropCount = s.GenCount, s.DelivCount, s.DropCount
	e.prevGen, e.prevDeliv, e.prevDrop = s.PrevGen, s.PrevDeliv, s.PrevDrop
	e.prevEver, e.prevRemoved = s.PrevEver, s.PrevRemoved
	e.latSum, e.latCount = 0, 0

	if e.cfg.RecordInfections {
		e.infections = append(e.infections[:0], s.Infections...)
	}
	if e.faults != nil {
		e.faults.SetState(s.FaultState)
	}

	// Replay workload: the fresh engine's stream sits at tick 0;
	// fast-forward it to the snapshot boundary and verify it yields
	// exactly the contact count the snapshot consumed — a different
	// trace (edited file, changed generator profile) fails here instead
	// of silently diverging from the checkpointed run.
	if e.workload != nil {
		skipped, err := e.workload.Skip(s.NextTick)
		if err != nil {
			return fmt.Errorf("%w: replay skip to tick %d: %v", ErrSnapshot, s.NextTick, err)
		}
		if skipped != s.ReplayRecords {
			return fmt.Errorf("%w: replay stream yields %d contacts before tick %d, snapshot consumed %d (different trace?)",
				ErrSnapshot, skipped, s.NextTick, s.ReplayRecords)
		}
		e.replayRecords = s.ReplayRecords
	} else if s.ReplayRecords != 0 {
		return fmt.Errorf("%w: snapshot of a trace-replay run, but the config has no replay workload", ErrSnapshot)
	}

	// RNG: reset the lazily-materialized stream table, re-materialize
	// the pages the restored run will read from a sharded phase — the
	// run stream, every infected node's page, and the whole table once
	// immunization is rolling — then overlay the checkpointed counters
	// (ensuring each one's page: a counter may belong to a node that
	// drew and was since patched). The per-worker rand.Rands alias the
	// table, so they see the restored positions immediately.
	e.streams.reset()
	e.streams.ensure(e.n)
	if e.immunizing {
		e.streams.ensureAll()
	} else {
		for w, word := range e.infectedBits {
			for word != 0 {
				u := w<<6 + bits.TrailingZeros64(word)
				word &= word - 1
				e.streams.ensure(u)
			}
		}
	}
	for k, idx := range s.RNGIdx {
		e.streams.ensure(int(idx))
		e.streams.pages[idx>>streamPageShift][idx&(streamPageLen-1)] = s.RNGVal[k]
	}

	// Partial series; RunContext appends the remaining ticks.
	e.res = &Result{
		Infected:     append(make([]float64, 0, e.cfg.Ticks), s.Series.Infected...),
		EverInfected: append(make([]float64, 0, e.cfg.Ticks), s.Series.EverInfected...),
		Immunized:    append(make([]float64, 0, e.cfg.Ticks), s.Series.Immunized...),
		Backlog:      append(make([]int, 0, e.cfg.Ticks), s.Series.Backlog...),
	}
	if e.cfg.TrackSubnets {
		e.res.WithinSubnet = append(make([]float64, 0, e.cfg.Ticks), s.Series.WithinSubnet...)
	}
	if e.cfg.TrackLatency {
		e.res.MeanLatency = append(make([]float64, 0, e.cfg.Ticks), s.Series.MeanLatency...)
	}
	e.nextTick = s.NextTick
	e.tick = s.NextTick - 1
	return nil
}
