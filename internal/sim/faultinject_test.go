package sim

import (
	"reflect"
	"testing"

	"repro/internal/fault"
)

// faultBase is a quarantined scenario whose genuine trigger fires
// quickly under fault-free detection.
func faultBase(t *testing.T) Config {
	cfg := goldenScenarios(t)["star-hub-capped"]
	if cfg.Quarantine == nil {
		t.Fatal("scenario lost its quarantine config")
	}
	return cfg
}

// unreachable disables the genuine trigger without removing the
// quarantine state machine.
func unreachable(cfg Config) Config {
	q := *cfg.Quarantine
	q.TriggerLevel = 0
	q.TriggerScansPerTick = 1 << 30
	cfg.Quarantine = &q
	return cfg
}

func TestFalseAlarmFiresQuarantineWithoutWorSignal(t *testing.T) {
	cfg := unreachable(faultBase(t))
	cfg.Faults = &fault.Profile{Seed: 3, FalseAlarmPerTick: 0.2}
	res := mustRun(t, cfg)
	if res.QuarantineTick < 0 {
		t.Error("false alarms never fired the unreachable trigger")
	}

	cfg.Faults = nil
	if mustRun(t, cfg).QuarantineTick != -1 {
		t.Error("unreachable trigger fired without faults — test premise broken")
	}
}

func TestMissedDetectionSuppressesTrigger(t *testing.T) {
	cfg := faultBase(t)
	cfg.Faults = &fault.Profile{Seed: 9, MissRate: 1}
	missed := mustRun(t, cfg)
	if missed.QuarantineTick != -1 {
		t.Fatalf("quarantine activated at %d despite a detector that misses everything", missed.QuarantineTick)
	}

	// The engine RNG stream is untouched by the fault draws: a run whose
	// detector misses everything is tick-for-tick identical to a run
	// whose trigger is simply unreachable.
	blind := mustRun(t, unreachable(faultBase(t)))
	if !reflect.DeepEqual(missed.Infected, blind.Infected) ||
		!reflect.DeepEqual(missed.Backlog, blind.Backlog) {
		t.Error("miss-everything run diverged from unreachable-trigger run: fault draws leaked into the engine stream")
	}
}

func TestLimiterOutageBypassesDefense(t *testing.T) {
	cfg := faultBase(t)
	cfg.Faults = &fault.Profile{
		LimiterOutages: []fault.Window{{Start: 0, End: cfg.Ticks}},
	}
	outage := mustRun(t, cfg)
	if outage.QuarantineTick < 0 {
		t.Fatal("trigger should still fire during an outage — detection and enforcement are separate")
	}

	// With enforcement down for the whole run, the dynamics must equal a
	// run where the defense never activates at all.
	open := mustRun(t, unreachable(faultBase(t)))
	if !reflect.DeepEqual(outage.Infected, open.Infected) ||
		!reflect.DeepEqual(outage.Backlog, open.Backlog) {
		t.Error("full-run outage did not reproduce the undefended dynamics")
	}

	// Sanity: the defense does change the dynamics when enforced.
	defended := mustRun(t, faultBase(t))
	if reflect.DeepEqual(defended.Infected, open.Infected) && reflect.DeepEqual(defended.Backlog, open.Backlog) {
		t.Error("defended and undefended runs identical — outage test proves nothing")
	}
}

func TestImmunizationDelayPostponesPatching(t *testing.T) {
	cfg := goldenScenarios(t)["star-open"]
	cfg.Immunize = &Immunization{StartTick: 10, Mu: 0.5}
	cfg.Faults = &fault.Profile{Seed: 4, ImmunizationDelay: 5}
	res := mustRun(t, cfg)
	first := -1
	for i, v := range res.Immunized {
		if v > 0 {
			first = i
			break
		}
	}
	if first != 15 {
		t.Errorf("first patched fraction at tick %d, want 15 (start 10 + delay 5)", first)
	}
}

func TestImmunizationLossDropsPatches(t *testing.T) {
	cfg := goldenScenarios(t)["star-open"]
	cfg.Immunize = &Immunization{StartTick: 10, Mu: 0.5}
	cfg.Faults = &fault.Profile{Seed: 4, ImmunizationLossRate: 1}
	res := mustRun(t, cfg)
	for i, v := range res.Immunized {
		if v != 0 {
			t.Fatalf("tick %d: patched fraction %v despite total message loss", i, v)
		}
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	eng, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng.Run()
}
