// Package sim is the discrete-event worm-propagation simulator, the
// stand-in for the ns-2 substrate the paper built on. It reproduces the
// mechanics of Section 5.4: at every tick each infected node attempts an
// infection with probability β against a strategy-chosen target; the
// infection packet is routed hop-by-hop along shortest paths; links
// incident to rate-limited nodes carry at most a capped number of
// packets per tick (base rate 10, scaled by routing-table link weight)
// and queue the excess; an optional node-level cap models hub-style
// limiting; and an optional delayed-immunization process patches both
// susceptible and infected nodes with probability µ per tick.
//
// Config's map-shaped options (NodeCaps, ScanRateOverride, LimitedNodes,
// LimitedLinks) are translated into dense index-addressed slices when
// the engine is built; the per-tick hot path performs no map lookups
// (see DESIGN.md, "Engine data layout").
//
// A run is deterministic by construction: every node draws from its own
// counter-mode RNG stream, and Config.Workers shards the tick phases
// across a worker pool without changing any result — Workers=1 and
// Workers=8 produce byte-identical series (DESIGN.md §12, "Determinism
// contract"). Above a few thousand nodes routing switches to a
// structural mode that avoids the O(N²) hop table, so topologies with
// hundreds of thousands of hosts fit in memory.
package sim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/ratelimit"
	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/worm"
)

// QueuePolicy controls what happens to packets beyond a link's per-tick
// capacity.
type QueuePolicy uint8

const (
	// PolicyQueue keeps excess packets in the link's FIFO queue (the
	// paper's behaviour: "queuing the remaining packets").
	PolicyQueue QueuePolicy = iota
	// PolicyDrop discards packets beyond the per-tick capacity — the
	// ablation alternative.
	PolicyDrop
)

// DefaultBaseRate is the paper's base communication rate for
// rate-limited links: 10 packets per tick.
const DefaultBaseRate = 10

// MinShardNodes is the topology size from which Config.Workers > 1
// starts to pay off: below it, the per-tick cost of fanning a phase out
// to the worker pool rivals the phase itself. Sharding smaller runs is
// still correct (results never depend on Workers) — callers surface a
// warning instead of refusing.
const MinShardNodes = 4096

// Immunization configures the delayed patching process of Section 6.
type Immunization struct {
	// StartTick starts patching at this tick if >= 0.
	StartTick int
	// StartLevel starts patching when the infected fraction first
	// reaches this level, if in (0, 1]. Used when StartTick < 0.
	StartLevel float64
	// Mu is the per-tick patch probability applied to every live node
	// (susceptible and infected) once started.
	Mu float64
	// SusceptibleOnly restricts patching to still-susceptible nodes —
	// the ablation counterpart to the paper's model, which removes
	// infected hosts too (its dI/dt carries a −µI term).
	SusceptibleOnly bool
}

// validate checks the immunization parameters.
func (im *Immunization) validate() error {
	if im.Mu < 0 || im.Mu > 1 {
		return fmt.Errorf("sim: immunization mu %v out of [0,1]", im.Mu)
	}
	if im.StartTick < 0 && (im.StartLevel <= 0 || im.StartLevel > 1) {
		return fmt.Errorf("sim: immunization needs StartTick >= 0 or StartLevel in (0,1], got %d/%v",
			im.StartTick, im.StartLevel)
	}
	return nil
}

// Quarantine configures dynamic activation of the rate-limiting
// defense: nothing is throttled until the worm is detected.
type Quarantine struct {
	// TriggerScansPerTick activates the defense when the total worm
	// packets generated in one tick reach this count — the signal a
	// backbone scan detector would see. <= 0 disables this trigger.
	TriggerScansPerTick int
	// TriggerLevel activates the defense when the infected fraction
	// reaches this level (a perfect-knowledge trigger, for comparing
	// against detector-driven activation). <= 0 disables this trigger.
	TriggerLevel float64
	// Delay postpones activation this many ticks after the trigger
	// fires — detector reporting plus filter-deployment lag.
	Delay int
}

// validate checks the quarantine parameters.
func (q *Quarantine) validate() error {
	if q.TriggerScansPerTick <= 0 && q.TriggerLevel <= 0 {
		return fmt.Errorf("sim: quarantine needs a trigger (scans/tick or level)")
	}
	if q.TriggerLevel > 1 {
		return fmt.Errorf("sim: quarantine trigger level %v out of (0,1]", q.TriggerLevel)
	}
	if q.Delay < 0 {
		return fmt.Errorf("sim: quarantine delay %d must be >= 0", q.Delay)
	}
	return nil
}

// Config fully describes one simulation run.
type Config struct {
	// Graph is the network topology (required, connected).
	Graph *topology.Graph
	// Roles labels each node (optional; defaults to all hosts).
	Roles []topology.Role
	// Subnet is the subnet index of each node (optional; computed from
	// Roles when nil and needed by the strategy).
	Subnet []int
	// Net, when non-nil, supplies prebuilt shared routing state for
	// Graph (see BuildNet). It must have been built from this exact
	// Graph; Validate rejects a mismatched pair. Use it to amortize
	// routing construction across several runs or batches over the
	// same topology — e.g. the grid points of a parameter sweep.
	Net *Net

	// Beta is the per-scan probability that an infected node emits an
	// infection packet (the paper's β, e.g. 0.8).
	Beta float64
	// ScansPerTick is how many scan attempts an infected node makes per
	// tick (default 1). The paper's "attempt to infect everyone else
	// with infection probability β" implies many attempts per tick; the
	// figure harness uses a moderate value so that router rate limits
	// carry real load, as in the ns-2 experiments.
	ScansPerTick int
	// Strategy picks infection targets (required; e.g.
	// worm.NewRandomFactory()).
	Strategy worm.Factory
	// InitialInfected is the number of seed infections (>= 1), placed
	// uniformly at random.
	InitialInfected int
	// Ticks is the simulation horizon.
	Ticks int
	// Seed drives all randomness; identical configs with identical seeds
	// produce identical results.
	Seed int64
	// Workers shards each tick's generate/transmit/immunize phases
	// across this many goroutines (0 or 1 = serial). Results are
	// byte-identical for every worker count: randomness is per-node
	// streams and all order-sensitive effects are merged sequentially.
	// Worth using from ~MinShardNodes nodes up; below that the per-tick
	// fan-out overhead outweighs the sharded work.
	Workers int
	// StructuralThreshold sets the node count from which routing uses
	// the structural mode instead of the dense O(N²) hop table: 0 means
	// the default (DefaultStructuralThreshold), -1 forces the dense
	// table at every size (an ablation/debugging aid — memory grows
	// quadratically), and any positive value is the switch point. Both
	// modes route identically on graphs the structural mode accepts;
	// graphs it rejects (no degree-1 host majority) fall back to the
	// dense table regardless. Must match the threshold a prebuilt Net
	// was built with.
	StructuralThreshold int

	// LimitedNodes lists nodes whose incident links are rate limited.
	LimitedNodes []int
	// LimitedLinks lists individual links to rate limit, in addition to
	// the links implied by LimitedNodes. Edge-router deployments use
	// this to limit only subnet uplinks: traffic between two hosts of
	// the same subnet transits the edge router without leaving the
	// subnet and is not throttled (Section 5.2's model).
	LimitedLinks []routing.LinkID
	// BaseRate is the per-tick packet budget of a weight-1 limited link
	// (default DefaultBaseRate). Fractional rates are honoured via a
	// credit accumulator: 0.1 means one packet every ten ticks.
	BaseRate float64
	// LinkWeights scales each limited link's budget (nil = uniform 1).
	// Use routing.Table.LinkWeights to reproduce the paper's
	// routing-table-proportional weights.
	LinkWeights map[routing.LinkID]float64
	// NodeCaps limits the total packets a node may forward per tick
	// (hub-style node-level rate limiting). Zero/absent = unlimited.
	NodeCaps map[int]int
	// ScanRateOverride replaces Beta for specific nodes: host-level rate
	// limiting à la Williamson reduces a filtered host's outgoing
	// contact rate to β2 (the model's "contact rate allowed by the
	// filter") rather than capping a link.
	ScanRateOverride map[int]float64
	// HostLimiterNodes lists nodes whose outgoing scans are gated by a
	// concrete contact limiter (a Williamson throttle, unique-IP window,
	// DNS throttle, ...) built per node by HostLimiterFactory. This is
	// the mechanism-level alternative to ScanRateOverride: the limiter
	// sees the actual per-tick contact stream.
	HostLimiterNodes []int
	// HostLimiterFactory builds one limiter per node in
	// HostLimiterNodes (required when that list is non-empty).
	HostLimiterFactory func() ratelimit.ContactLimiter
	// Policy selects queueing or dropping at capacity (default queue).
	Policy QueuePolicy
	// MaxQueue bounds each link's FIFO queue (0 = unbounded). ns-2's
	// default DropTail buffer is 50 packets; packets arriving at a full
	// queue are dropped.
	MaxQueue int

	// Immunize, when non-nil, enables delayed immunization.
	Immunize *Immunization

	// Quarantine, when non-nil, makes the rate-limiting deployment
	// *dynamic* (the paper's title): the limits in LimitedNodes /
	// LimitedLinks / NodeCaps stay inactive until the detection
	// condition fires, modeling automated detection and response
	// rather than an always-on deployment.
	Quarantine *Quarantine

	// Replay, when non-nil, drives the generate phase from a trace-replay
	// workload (see replay.go): worm scans and benign background flows
	// come from the configured Workload stream instead of β draws,
	// competing for the same host rate-limiter credits. Beta, Strategy,
	// ScansPerTick, and ProbeFirst are ignored on a replay run (Strategy
	// must still be set — restored engines rebuild pickers through it).
	Replay *ReplayConfig

	// Faults, when non-nil, injects domain faults into the defense: an
	// imperfect detector (false alarms, misses), limiter outage windows,
	// and lost or delayed immunization. The injector draws from its own
	// seeded RNG, never the engine's, so the worm dynamics of a faulted
	// run diverge only through the fault *effects*, and the fault RNG
	// state rides along in checkpoints.
	Faults *fault.Profile

	// CheckpointEvery, when > 0, snapshots the engine after every
	// CheckpointEvery-th completed tick and hands the snapshot to
	// Checkpoint. A checkpoint failure aborts the run.
	CheckpointEvery int
	// Checkpoint receives periodic snapshots (required when
	// CheckpointEvery > 0 for single-engine runs; MultiRun fills it per
	// replica from CheckpointFactory). Typically sim.WriteSnapshot into
	// a run directory.
	Checkpoint func(*Snapshot) error
	// CheckpointFactory builds the per-replica checkpoint sink for
	// MultiRun batches (run is the replica index). Called from worker
	// goroutines; must be safe for concurrent calls with distinct run
	// values. Single-engine runs ignore it.
	CheckpointFactory func(run int) func(*Snapshot) error
	// ResumeFactory, when non-nil, lets MultiRun resume replicas from
	// checkpoints: it returns the snapshot to resume replica run from,
	// or nil to start that replica fresh. Single-engine runs ignore it
	// (use Restore directly).
	ResumeFactory func(run int) (*Snapshot, error)

	// HostsOnly restricts infection to RoleHost nodes (routers are
	// infrastructure). Default false: every node is susceptible, as in
	// the paper's "percentage of nodes infected" plots.
	HostsOnly bool

	// ProbeFirst makes the worm probe each target (ICMP echo) and wait
	// for the reply before sending the exploit — Welchia's behaviour.
	// Each infection then needs three one-way trips instead of one,
	// tripling the traffic exposed to rate limiting.
	ProbeFirst bool

	// Collector, when non-nil, receives structured per-tick metrics and
	// events (see internal/obs). It is owned by this run's engine and
	// called from the engine's goroutine only. With no collector the
	// engine skips all metrics assembly.
	Collector obs.Collector
	// CollectorFactory, when non-nil, builds one collector per replica
	// for MultiRun batches (run is the replica index, 0-based). It is
	// called from worker goroutines and must be safe for concurrent
	// calls with distinct run values. Single-engine runs ignore it.
	CollectorFactory func(run int) obs.Collector
	// Check enables the per-tick invariant audit: every tick the
	// engine's O(1) counters and active-set bitmaps are cross-checked
	// against ground truth recomputed from first principles. A violation
	// aborts the run with an error matching obs.ErrInvariant. Costs
	// O(links + nodes) per tick; meant for tests, CI, and debugging.
	Check bool

	// RecordInfections keeps a per-infection genealogy log (tick, victim,
	// source) in the result — who infected whom, enabling
	// infection-tree analysis. Off by default (costs memory).
	RecordInfections bool
	// TrackSubnets records the per-tick mean infected fraction *within
	// infected subnets* (the metric of Figures 3(b) and 5). Requires
	// subnet information (Subnet or Roles).
	TrackSubnets bool
	// TrackLatency records the per-tick mean end-to-end delivery latency
	// of worm packets — the "rate limiting buys time" signal: congested
	// limited links show up as rising latency before they show up in
	// the infection curve.
	TrackLatency bool
}

// Common configuration errors.
var (
	ErrNoGraph    = errors.New("sim: config requires a graph")
	ErrNoStrategy = errors.New("sim: config requires a target strategy")
)

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Graph == nil {
		return ErrNoGraph
	}
	if c.Strategy == nil {
		return ErrNoStrategy
	}
	if c.StructuralThreshold < -1 {
		return fmt.Errorf("sim: structural threshold %d invalid (use -1 to disable, 0 for the default)",
			c.StructuralThreshold)
	}
	if c.Net != nil && c.Net.graph != c.Graph {
		return fmt.Errorf("sim: config.Net was built from a different graph than config.Graph")
	}
	if c.Net != nil && c.Net.threshold != resolveStructuralThreshold(c.StructuralThreshold) {
		return fmt.Errorf("sim: config.Net was built with structural threshold %d, config resolves to %d",
			c.Net.threshold, resolveStructuralThreshold(c.StructuralThreshold))
	}
	if c.Beta < 0 || c.Beta > 1 {
		return fmt.Errorf("sim: beta %v out of [0,1]", c.Beta)
	}
	if c.Replay != nil {
		if err := c.Replay.validate(c.Graph.N()); err != nil {
			return err
		}
	}
	if c.Replay != nil && len(c.Replay.WormHosts) > 0 {
		// The trace's infected class seeds the run; random placement
		// would double-seed.
		if c.InitialInfected != 0 {
			return fmt.Errorf("sim: replay worm hosts replace random seeding; set InitialInfected to 0, got %d",
				c.InitialInfected)
		}
	} else if c.InitialInfected < 1 || c.InitialInfected > c.Graph.N() {
		return fmt.Errorf("sim: initial infected %d out of [1,%d]", c.InitialInfected, c.Graph.N())
	}
	if c.Ticks < 1 {
		return fmt.Errorf("sim: ticks %d must be >= 1", c.Ticks)
	}
	if c.Workers < 0 {
		return fmt.Errorf("sim: workers %d must be >= 0 (0 = serial)", c.Workers)
	}
	if c.Roles != nil && len(c.Roles) != c.Graph.N() {
		return fmt.Errorf("sim: roles length %d != nodes %d", len(c.Roles), c.Graph.N())
	}
	if c.Subnet != nil && len(c.Subnet) != c.Graph.N() {
		return fmt.Errorf("sim: subnet length %d != nodes %d", len(c.Subnet), c.Graph.N())
	}
	if c.BaseRate < 0 {
		return fmt.Errorf("sim: base rate %v must be >= 0", c.BaseRate)
	}
	if c.ScansPerTick < 0 {
		return fmt.Errorf("sim: scans per tick %d must be >= 0", c.ScansPerTick)
	}
	if c.MaxQueue < 0 {
		return fmt.Errorf("sim: max queue %d must be >= 0", c.MaxQueue)
	}
	for _, u := range c.LimitedNodes {
		if u < 0 || u >= c.Graph.N() {
			return fmt.Errorf("sim: limited node %d out of range", u)
		}
	}
	for _, l := range c.LimitedLinks {
		if !c.Graph.HasEdge(l.U, l.V) {
			return fmt.Errorf("sim: limited link %v does not exist", l)
		}
	}
	for u, cap := range c.NodeCaps {
		if u < 0 || u >= c.Graph.N() {
			return fmt.Errorf("sim: node cap for %d out of range", u)
		}
		if cap < 0 {
			return fmt.Errorf("sim: node cap %d for node %d must be >= 0", cap, u)
		}
	}
	for u, b := range c.ScanRateOverride {
		if u < 0 || u >= c.Graph.N() {
			return fmt.Errorf("sim: scan rate override for %d out of range", u)
		}
		if b < 0 || b > 1 {
			return fmt.Errorf("sim: scan rate override %v for node %d out of [0,1]", b, u)
		}
	}
	if len(c.HostLimiterNodes) > 0 && c.HostLimiterFactory == nil {
		return fmt.Errorf("sim: host limiter nodes set without a factory")
	}
	for _, u := range c.HostLimiterNodes {
		if u < 0 || u >= c.Graph.N() {
			return fmt.Errorf("sim: host limiter node %d out of range", u)
		}
	}
	if c.Immunize != nil {
		if err := c.Immunize.validate(); err != nil {
			return err
		}
	}
	if c.Quarantine != nil {
		if err := c.Quarantine.validate(); err != nil {
			return err
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if c.CheckpointEvery < 0 {
		return fmt.Errorf("sim: checkpoint interval %d must be >= 0", c.CheckpointEvery)
	}
	if c.CheckpointEvery > 0 && c.Checkpoint == nil && c.CheckpointFactory == nil {
		return fmt.Errorf("sim: checkpoint interval set without a checkpoint sink")
	}
	return nil
}

// Infection is one entry of the infection genealogy: Source's scan
// infected Victim at Tick. Seed infections have Source -1 and Tick -1.
// Fields are int32: with RecordInfections on, the log holds one entry
// per ever-infected node, and at millions of hosts the narrow fields
// halve its footprint.
type Infection struct {
	Tick   int32
	Victim int32
	Source int32
}

// Result holds the per-tick series of one run (index 0 = state after the
// first tick; all fractions are over the susceptible population size).
type Result struct {
	// Infected is the currently infected fraction per tick.
	Infected []float64
	// EverInfected is the cumulative ever-infected fraction per tick —
	// Figure 8's "total percentage of nodes ever infected".
	EverInfected []float64
	// Immunized is the removed (patched) fraction per tick.
	Immunized []float64
	// Backlog is the total number of queued packets per tick, the
	// congestion signal of rate-limited deployments.
	Backlog []int
	// WithinSubnet is the per-tick mean infected fraction within subnets
	// that have at least one infection (Config.TrackSubnets).
	WithinSubnet []float64
	// MeanLatency is the per-tick mean delivery latency of worm packets
	// in ticks (Config.TrackLatency); 0 for ticks with no deliveries.
	MeanLatency []float64
	// Infections is the genealogy log (Config.RecordInfections). It is
	// per-run data and is not averaged by MultiRun (the first run's log
	// is kept).
	Infections []Infection
	// QuarantineTick is the tick the dynamic defense engaged: 0 for an
	// always-on deployment, -1 if a configured quarantine never
	// triggered. Per-run data; MultiRun keeps the first run's value.
	QuarantineTick int
	// Counters are the batch-level observability totals, summed key-wise
	// across replicas (see obs.Summary.Counters for the key set). Only
	// populated by MultiRun when Config.CollectorFactory builds
	// collectors implementing obs.Summarizer; nil otherwise. Key-wise
	// summation is order-independent, so the map is identical for every
	// job count.
	Counters map[string]int64
}

// InfectionDepths returns, for every ever-infected node, its generation
// depth in the infection tree (seeds are depth 0). Requires a recorded
// genealogy; returns nil otherwise.
func (r *Result) InfectionDepths() map[int]int {
	if len(r.Infections) == 0 {
		return nil
	}
	depth := make(map[int]int, len(r.Infections))
	for _, inf := range r.Infections {
		if inf.Source < 0 {
			depth[int(inf.Victim)] = 0
			continue
		}
		depth[int(inf.Victim)] = depth[int(inf.Source)] + 1
	}
	return depth
}

// FinalInfected returns the last currently-infected fraction.
func (r *Result) FinalInfected() float64 {
	if len(r.Infected) == 0 {
		return math.NaN()
	}
	return r.Infected[len(r.Infected)-1]
}

// FinalEverInfected returns the last ever-infected fraction.
func (r *Result) FinalEverInfected() float64 {
	if len(r.EverInfected) == 0 {
		return math.NaN()
	}
	return r.EverInfected[len(r.EverInfected)-1]
}

// TimeToLevel returns the first tick (1-based, interpolated) at which
// the infected fraction reaches level, or NaN if never.
func (r *Result) TimeToLevel(level float64) float64 {
	for i, v := range r.Infected {
		if v >= level {
			return float64(i + 1)
		}
	}
	return math.NaN()
}
