package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/routing"
	"repro/internal/topology"
	"repro/internal/worm"
)

// TestStructuralRoutingEquivalence: above the structural threshold the
// engine routes without the dense hop table. On an open network (no
// rate limits, no bounded queues) every packet still crosses one link
// per tick along a shortest path, so the series must match a forced
// dense-table engine exactly — path tie-breaks cannot show up without
// link contention.
func TestStructuralRoutingEquivalence(t *testing.T) {
	g, _, _, err := topology.TwoLevel(topology.TwoLevelConfig{
		ASes: 40, AttachM: 2, TransitFraction: 0.2, HostsPerStub: 128,
	}, rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < DefaultStructuralThreshold {
		t.Fatalf("test graph has %d nodes, below the structural threshold %d", g.N(), DefaultStructuralThreshold)
	}
	cfg := Config{
		Graph: g, Beta: 0.5, ScansPerTick: 2,
		Strategy:        worm.NewRandomFactory(),
		InitialInfected: 4, Ticks: 40, Seed: 19,
		TrackLatency: true, Check: true,
	}

	auto, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if auto.hopLink != nil || auto.structural == nil {
		t.Fatal("engine above the threshold did not select structural routing")
	}

	links := routing.EnumerateLinks(g)
	dense := &netState{links: links, hopLink: links.HopTable(routing.Build(g))}
	forced, err := newEngine(cfg, dense)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(toGolden(auto.Run()), toGolden(forced.Run())) {
		t.Error("structural-routing series diverged from dense-table series")
	}
}
