package sim

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/runner"
)

// crashCollector panics at a chosen tick — injected through
// CollectorFactory, it crashes one replica mid-run without any
// engine-side test hooks.
type crashCollector struct {
	at int
}

func (c *crashCollector) Tick(m obs.TickMetrics) {
	if m.Tick == c.at {
		panic(fmt.Sprintf("chaos: injected collector panic at tick %d", m.Tick))
	}
}

func (c *crashCollector) Event(obs.Event) {}

type nopCollector struct{}

func (nopCollector) Tick(obs.TickMetrics) {}
func (nopCollector) Event(obs.Event)      {}

// TestMultiRunDegradesOnReplicaPanic: with keep-going, a replica that
// panics mid-run is reported in Stats.Failures and the aggregate is
// the exact average of the replicas that completed.
func TestMultiRunDegradesOnReplicaPanic(t *testing.T) {
	cfg := goldenScenarios(t)["star-open"]
	const runs = 4
	const crashed = 2
	cfg.CollectorFactory = func(run int) obs.Collector {
		if run == crashed {
			return &crashCollector{at: 30}
		}
		return nil
	}

	agg, stats, err := MultiRunStats(context.Background(), cfg, runs,
		runner.WithJobs(2), runner.WithKeepGoing())
	if err != nil {
		t.Fatalf("degraded batch returned error: %v", err)
	}
	if stats.Completed != runs-1 || stats.Failed != 1 {
		t.Fatalf("stats = %+v, want %d completed 1 failed", stats, runs-1)
	}
	var pe *runner.PanicError
	if len(stats.Failures) != 1 || stats.Failures[0].Index != crashed ||
		!errors.As(stats.Failures[0].Err, &pe) {
		t.Fatalf("failures = %+v, want replica %d with a captured panic", stats.Failures, crashed)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic failure carries no stack trace")
	}

	// The degraded aggregate must equal the hand-built average of the
	// surviving replicas, byte for byte.
	want := make([]float64, cfg.Ticks)
	n := 0
	for r := 0; r < runs; r++ {
		if r == crashed {
			continue
		}
		c := cfg
		c.Seed = cfg.Seed + int64(r)
		c.CollectorFactory = nil
		res := mustRun(t, c)
		for i, v := range res.Infected {
			want[i] += v
		}
		n++
	}
	inv := 1 / float64(n)
	for i := range want {
		want[i] *= inv
	}
	if !reflect.DeepEqual(agg.Infected, want) {
		t.Error("degraded aggregate is not the exact average of the completed replicas")
	}
}

// TestMultiRunAllReplicasFailed: total failure is an error even under
// keep-going — there is nothing to aggregate.
func TestMultiRunAllReplicasFailed(t *testing.T) {
	cfg := goldenScenarios(t)["star-open"]
	cfg.CollectorFactory = func(run int) obs.Collector {
		return &crashCollector{at: 5}
	}
	_, stats, err := MultiRunStats(context.Background(), cfg, 3,
		runner.WithJobs(3), runner.WithKeepGoing())
	if err == nil {
		t.Fatal("batch with zero completed replicas must error")
	}
	if stats.Failed != 3 {
		t.Errorf("stats = %+v, want 3 failed", stats)
	}
}

// cancelAtCollector cancels a context from inside the engine loop at a
// chosen tick — a deterministic stand-in for a daemon drain or replica
// timeout landing mid-run.
type cancelAtCollector struct {
	at     int
	cancel context.CancelFunc
}

func (c cancelAtCollector) Tick(m obs.TickMetrics) {
	if m.Tick == c.at {
		c.cancel()
	}
}
func (c cancelAtCollector) Event(obs.Event) {}

// TestCancelWritesFinalCheckpoint pins the drain contract: a cancelled
// run leaves a best-effort checkpoint at the exact tick boundary it
// stopped on — not just the last CheckpointEvery multiple — so a
// drained daemon resumes with zero re-simulated ticks. The resumed run
// still finishes identical to an uninterrupted one.
func TestCancelWritesFinalCheckpoint(t *testing.T) {
	cfg := goldenScenarios(t)["star-open"]
	path := filepath.Join(t.TempDir(), "replica-000.ckpt")

	clean, _, err := MultiRunStats(context.Background(), cfg, 1, runner.WithJobs(1))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	chaos := cfg
	chaos.CheckpointEvery = 10
	chaos.CheckpointFactory = func(run int) func(*Snapshot) error {
		return func(s *Snapshot) error { return WriteSnapshot(path, s) }
	}
	chaos.CollectorFactory = func(run int) obs.Collector {
		return cancelAtCollector{at: 25, cancel: cancel}
	}
	if _, _, err := MultiRunStats(ctx, chaos, 1, runner.WithJobs(1)); err == nil {
		t.Fatal("cancelled batch returned nil error")
	}
	snap, err := ReadSnapshot(path)
	if err != nil {
		t.Fatalf("no final checkpoint after cancellation: %v", err)
	}
	// Cancel fires inside tick 25; the loop notices at the tick-26
	// boundary and must snapshot there, past the periodic point at 20.
	if snap.NextTick != 26 {
		t.Fatalf("final checkpoint at tick %d, want 26 (the cancellation boundary)", snap.NextTick)
	}

	resumed := cfg
	resumed.ResumeFactory = func(run int) (*Snapshot, error) { return ReadSnapshot(path) }
	agg, _, err := MultiRunStats(context.Background(), resumed, 1, runner.WithJobs(1))
	if err != nil {
		t.Fatalf("resume from drain checkpoint: %v", err)
	}
	if !reflect.DeepEqual(agg.Infected, clean.Infected) ||
		!reflect.DeepEqual(agg.Backlog, clean.Backlog) {
		t.Error("run resumed from the drain checkpoint diverged from the uninterrupted run")
	}
}

// TestMultiRunRetryResumesFromCheckpoint is the full crash-recovery
// loop: a replica panics on its first attempt after writing
// checkpoints; the retry resumes from the replica's last checkpoint
// (not tick zero) and the batch still produces the byte-identical
// clean aggregate.
func TestMultiRunRetryResumesFromCheckpoint(t *testing.T) {
	cfg := goldenScenarios(t)["star-hub-capped"]
	const runs = 3
	const victim = 1
	dir := t.TempDir()
	ckpt := func(r int) string { return filepath.Join(dir, fmt.Sprintf("replica-%03d.ckpt", r)) }

	clean, _, err := MultiRunStats(context.Background(), cfg, runs, runner.WithJobs(1))
	if err != nil {
		t.Fatal(err)
	}

	var attempts atomic.Int32
	var mu sync.Mutex
	resumedFrom := -1
	chaos := cfg
	chaos.CheckpointEvery = 10
	chaos.CheckpointFactory = func(run int) func(*Snapshot) error {
		path := ckpt(run)
		return func(s *Snapshot) error { return WriteSnapshot(path, s) }
	}
	chaos.ResumeFactory = func(run int) (*Snapshot, error) {
		s, err := ReadSnapshot(ckpt(run))
		if err != nil {
			return nil, nil // no checkpoint yet: start fresh
		}
		if run == victim {
			mu.Lock()
			if s.NextTick > resumedFrom {
				resumedFrom = s.NextTick
			}
			mu.Unlock()
		}
		return s, nil
	}
	chaos.CollectorFactory = func(run int) obs.Collector {
		if run == victim && attempts.Add(1) == 1 {
			return &crashCollector{at: 25} // first attempt dies after checkpoints at 10 and 20
		}
		return nil
	}

	agg, stats, err := MultiRunStats(context.Background(), chaos, runs,
		runner.WithJobs(1), runner.WithRetry(2, 0), runner.WithKeepGoing())
	if err != nil {
		t.Fatalf("chaos batch: %v", err)
	}
	if stats.Completed != runs || stats.Failed != 0 {
		t.Fatalf("stats = %+v, want full recovery", stats)
	}
	if stats.Retries == 0 {
		t.Error("expected at least one retry")
	}
	if resumedFrom != 20 {
		t.Errorf("victim resumed from tick %d, want 20 (last checkpoint before the crash)", resumedFrom)
	}
	if !reflect.DeepEqual(agg.Infected, clean.Infected) ||
		!reflect.DeepEqual(agg.Backlog, clean.Backlog) {
		t.Error("recovered batch diverged from the clean batch")
	}
}
