package sim

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/runner"
	"repro/internal/topology"
	"repro/internal/worm"
)

// multiRunConfig is a small congested scenario exercising queues, rate
// limits, and subnet/latency tracking — every averaged series.
func multiRunConfig(t *testing.T) Config {
	t.Helper()
	g, err := topology.BarabasiAlbert(120, 1, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	roles, err := topology.AssignRoles(g, topology.PaperRoles)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Graph: g, Roles: roles, Subnet: topology.Subnets(g, roles),
		Beta: 0.8, ScansPerTick: 5, MaxQueue: 50,
		Strategy:        worm.NewRandomFactory(),
		InitialInfected: 2, Ticks: 60, Seed: 3,
		LimitedNodes: DeployBackbone(roles), BaseRate: 0.4,
		TrackSubnets: true, TrackLatency: true,
	}
}

// TestMultiRunDeterministicAcrossJobs is the regression guard for the
// pool rework: the averaged series must be byte-identical for jobs=1
// and jobs=GOMAXPROCS (and any job count in between), because each
// replica's RNG stream is fixed by its index, not by scheduling.
func TestMultiRunDeterministicAcrossJobs(t *testing.T) {
	cfg := multiRunConfig(t)
	const runs = 6
	serial, err := MultiRunContext(context.Background(), cfg, runs, runner.WithJobs(1))
	if err != nil {
		t.Fatalf("jobs=1: %v", err)
	}
	for _, jobs := range []int{2, 3, runtime.GOMAXPROCS(0)} {
		parallel, err := MultiRunContext(context.Background(), cfg, runs, runner.WithJobs(jobs))
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("jobs=%d result differs from jobs=1", jobs)
		}
	}
	// And the compatibility wrapper sees the same series.
	wrapped, err := MultiRun(cfg, runs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, wrapped) {
		t.Fatal("MultiRun wrapper differs from MultiRunContext")
	}
}

func TestMultiRunContextCancellation(t *testing.T) {
	cfg := multiRunConfig(t)
	cfg.Ticks = 3000 // long enough that cancellation lands mid-run

	ctx, cancel := context.WithCancel(context.Background())
	var last runner.Stats
	started := make(chan struct{}, 64)
	go func() {
		<-started
		cancel()
	}()
	_, err := MultiRunContext(ctx, cfg, 8,
		runner.WithJobs(2),
		runner.WithProgress(func(s runner.Stats) {
			select {
			case started <- struct{}{}:
			default:
			}
			last = s
		}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if last.Runs != 8 {
		t.Errorf("stats.Runs = %d, want 8", last.Runs)
	}
	if last.Completed == 8 {
		t.Error("cancellation should leave the batch incomplete")
	}
}

func TestMultiRunContextAlreadyCancelled(t *testing.T) {
	cfg := multiRunConfig(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MultiRunContext(ctx, cfg, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestMultiRunContextProgressStats(t *testing.T) {
	cfg := multiRunConfig(t)
	var final runner.Stats
	res, err := MultiRunContext(context.Background(), cfg, 4,
		runner.WithJobs(2),
		runner.WithProgress(func(s runner.Stats) { final = s }))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Infected) != cfg.Ticks {
		t.Fatalf("series length %d, want %d", len(res.Infected), cfg.Ticks)
	}
	if final.Completed != 4 || final.Failed != 0 {
		t.Errorf("final stats = %+v, want 4 completed", final)
	}
	if want := int64(4 * cfg.Ticks); final.Ticks != want {
		t.Errorf("ticks = %d, want %d", final.Ticks, want)
	}
	if final.Wall <= 0 || final.TicksPerSec() <= 0 {
		t.Errorf("throughput not measured: %+v", final)
	}
}
