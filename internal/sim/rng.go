package sim

import "math/rand"

// countedSource wraps math/rand's seeded source and counts the draws
// taken from it, making the engine RNG checkpointable as (seed, draw
// count): restore re-seeds and fast-forwards. It deliberately
// implements only rand.Source — not Source64 — so rand.Rand derives
// every value (Float64, Intn, Shuffle, ...) from Int63 alone, exactly
// as it does for the bare rand.NewSource; the stream, and therefore
// every golden series, is unchanged by the wrapper.
type countedSource struct {
	src   rand.Source
	draws uint64
}

func newCountedSource(seed int64) *countedSource {
	return &countedSource{src: rand.NewSource(seed)}
}

// Int63 implements rand.Source.
func (c *countedSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

// Seed implements rand.Source.
func (c *countedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.draws = 0
}

// fastForward discards n draws from the underlying source and pins the
// counter at n, positioning a freshly seeded source at a checkpointed
// stream offset.
func (c *countedSource) fastForward(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Int63()
	}
	c.draws = n
}
