package sim

import "math/rand"

// The engine's randomness is a table of independent counter-mode
// SplitMix64 streams — the same generator internal/fault uses — one per
// node plus one run-level stream. Node u's β rolls and target picks
// draw only from stream u, and the run stream covers everything that is
// not attributable to a single node (today: the seed-infection
// shuffle). Because a node's draws depend only on its own counter, the
// generate/immunize sweeps can be sharded across workers in any order
// and still consume exactly the per-node sub-streams a sequential sweep
// would: worker count cannot change results (DESIGN.md §12).
//
// Each stream's whole state is one uint64 counter, so a checkpoint
// stores the table verbatim (Snapshot.RNGStates) instead of replaying
// draws to reposition a sequential source.

// rngGamma is the SplitMix64 increment (golden-ratio constant), shared
// with internal/fault's generator.
const rngGamma = 0x9e3779b97f4a7c15

// rngMix is the SplitMix64 output function (identical to fault.mix;
// duplicated to keep the engine free of a fault-package dependency for
// its own randomness).
func rngMix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// newStreams builds the stream table for a run: streams[u] is node u's
// counter for u in [0, n), streams[n] the run-level stream. Each stream
// is decorrelated from the seed and from its neighbors by mixing the
// seed hash with a per-stream offset.
func newStreams(seed int64, n int) []uint64 {
	base := rngMix(uint64(seed))
	s := make([]uint64, n+1)
	for i := range s {
		s[i] = rngMix(base ^ (uint64(i)+1)*rngGamma)
	}
	return s
}

// streamSource adapts one stream of the shared table to rand.Source so
// the existing worm.Picker interface (*rand.Rand) keeps working. The
// active stream is selected by setting idx before drawing; advancing
// mutates streams[idx] in place, so the table always holds the current
// position of every stream. It deliberately implements only
// rand.Source — not Source64 — so rand.Rand derives every value
// (Float64, Intn, Shuffle, ...) from Int63 alone and keeps no hidden
// state between calls; swapping idx mid-use is therefore safe.
type streamSource struct {
	streams []uint64
	idx     int
}

// Int63 implements rand.Source: one counter-mode SplitMix64 draw from
// the selected stream, truncated to 63 bits.
func (s *streamSource) Int63() int64 {
	st := s.streams[s.idx] + rngGamma
	s.streams[s.idx] = st
	return int64(rngMix(st) >> 1)
}

// Seed implements rand.Source. Stream positions are set by the table,
// never re-seeded through math/rand.
func (s *streamSource) Seed(int64) {}

// workerRand is one worker's view of the stream table: a reusable
// rand.Rand whose source is re-pointed at the stream of whichever node
// the worker is currently simulating. Workers of one tick phase own
// disjoint node ranges, so they touch disjoint table entries.
type workerRand struct {
	src streamSource
	rng *rand.Rand
}

func newWorkerRand(streams []uint64) *workerRand {
	w := &workerRand{src: streamSource{streams: streams}}
	w.rng = rand.New(&w.src)
	return w
}

// nodeRand returns worker w's rand.Rand positioned on node u's stream.
func (e *Engine) nodeRand(w, u int) *rand.Rand {
	r := e.rands[w]
	r.src.idx = u
	return r.rng
}

// runRand returns the run-level stream (table index n) on worker 0's
// rand.Rand. Only serial, whole-run draws use it.
func (e *Engine) runRand() *rand.Rand { return e.nodeRand(0, e.n) }
