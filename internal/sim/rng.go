package sim

import "math/rand"

// The engine's randomness is a table of independent counter-mode
// SplitMix64 streams — the same generator internal/fault uses — one per
// node plus one run-level stream. Node u's β rolls and target picks
// draw only from stream u, and the run stream covers everything that is
// not attributable to a single node (today: the seed-infection
// shuffle). Because a node's draws depend only on its own counter, the
// generate/immunize sweeps can be sharded across workers in any order
// and still consume exactly the per-node sub-streams a sequential sweep
// would: worker count cannot change results (DESIGN.md §12).
//
// The table is materialized lazily in 64-stream pages: a stream's
// initial counter is a pure function of the seed and the stream index,
// so a page is allocated only when one of its streams is first needed —
// a node being infected, the immunization process starting (every live
// node then rolls µ), or the run stream drawing. A 10M-host run with 1%
// seeded infections pays for the seeds' pages, not 80 MB of counters
// for nodes that never draw (DESIGN.md §14).
//
// Pages are materialized ONLY from serial contexts (construction,
// the infect/restore paths, the immunization start) — never from a
// sharded phase. Sharded phases read the page-pointer array and
// advance counters of their own nodes; pages span exactly one 64-bit
// word of the node bitsets, so the word-aligned shard boundaries of
// generate can never split a page between workers, and the
// entry-level writes of the node-range immunize shards land on
// distinct uint64s even when a page straddles two ranges.
//
// Each stream's whole state is one uint64 counter, so a checkpoint
// stores the sparse set of counters that have advanced past their
// initial value (Snapshot.RNGIdx/RNGVal) — counter-mode state only
// increments by the odd constant rngGamma, so "counter != initial" is
// exactly "this stream has drawn".

// rngGamma is the SplitMix64 increment (golden-ratio constant), shared
// with internal/fault's generator.
const rngGamma = 0x9e3779b97f4a7c15

// streamPageShift sizes a page at 64 streams — one bitset word, so the
// word-aligned shard boundaries of the generate phase align with page
// boundaries.
const (
	streamPageShift = 6
	streamPageLen   = 1 << streamPageShift
)

// rngMix is the SplitMix64 output function (identical to fault.mix;
// duplicated to keep the engine free of a fault-package dependency for
// its own randomness).
func rngMix(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// streamTable is the lazily-materialized stream table for a run:
// stream u is node u's counter for u in [0, n), stream n the run-level
// stream.
type streamTable struct {
	base  uint64
	n     int
	pages []*[streamPageLen]uint64
}

func newStreamTable(seed int64, n int) *streamTable {
	return &streamTable{
		base:  rngMix(uint64(seed)),
		n:     n,
		pages: make([]*[streamPageLen]uint64, (n+1+streamPageLen-1)/streamPageLen),
	}
}

// initial returns stream i's initial counter: decorrelated from the
// seed and from its neighbors by mixing the seed hash with a
// per-stream offset. The formula is pinned by the golden fixtures.
func (t *streamTable) initial(i int) uint64 {
	return rngMix(t.base ^ (uint64(i)+1)*rngGamma)
}

// ensure materializes the page holding stream i. Must only be called
// from a serial context (see the package comment above); sharded
// phases rely on every stream they touch having been ensured before
// the phase fanned out.
func (t *streamTable) ensure(i int) {
	pi := i >> streamPageShift
	if t.pages[pi] != nil {
		return
	}
	p := new([streamPageLen]uint64)
	base := pi << streamPageShift
	for k := range p {
		p[k] = t.initial(base + k)
	}
	t.pages[pi] = p
}

// ensureAll materializes every page — the immunization process rolls µ
// for every live node, so once it starts the whole table is hot.
func (t *streamTable) ensureAll() {
	for i := 0; i <= t.n; i += streamPageLen {
		t.ensure(i)
	}
}

// reset drops every materialized page (restore rebuilds the sparse set
// a snapshot implies).
func (t *streamTable) reset() {
	clear(t.pages)
}

// streamSource adapts one stream of the shared table to rand.Source so
// the existing worm.Picker interface (*rand.Rand) keeps working. The
// active stream is selected by setting idx before drawing; advancing
// mutates the stream's page entry in place, so the table always holds
// the current position of every stream. It deliberately implements
// only rand.Source — not Source64 — so rand.Rand derives every value
// (Float64, Intn, Shuffle, ...) from Int63 alone and keeps no hidden
// state between calls; swapping idx mid-use is therefore safe. A draw
// from a stream whose page was never ensured is an engine bug and
// panics on the nil page.
type streamSource struct {
	t   *streamTable
	idx int
}

// Int63 implements rand.Source: one counter-mode SplitMix64 draw from
// the selected stream, truncated to 63 bits.
func (s *streamSource) Int63() int64 {
	p := s.t.pages[s.idx>>streamPageShift]
	k := s.idx & (streamPageLen - 1)
	st := p[k] + rngGamma
	p[k] = st
	return int64(rngMix(st) >> 1)
}

// Seed implements rand.Source. Stream positions are set by the table,
// never re-seeded through math/rand.
func (s *streamSource) Seed(int64) {}

// workerRand is one worker's view of the stream table: a reusable
// rand.Rand whose source is re-pointed at the stream of whichever node
// the worker is currently simulating. Workers of one tick phase own
// disjoint node ranges, so they touch disjoint table entries.
type workerRand struct {
	src streamSource
	rng *rand.Rand
}

func newWorkerRand(t *streamTable) *workerRand {
	w := &workerRand{src: streamSource{t: t}}
	w.rng = rand.New(&w.src)
	return w
}

// nodeRand returns worker w's rand.Rand positioned on node u's stream.
func (e *Engine) nodeRand(w, u int) *rand.Rand {
	r := e.rands[w]
	r.src.idx = u
	return r.rng
}

// runRand returns the run-level stream (table index n) on worker 0's
// rand.Rand. Only serial, whole-run draws use it.
func (e *Engine) runRand() *rand.Rand { return e.nodeRand(0, e.n) }
