package core

import (
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
)

// RunOptions is the one declarative description of how a batch of
// replicas executes: parallelism, deadlines, fault tolerance,
// checkpointing, and observability. It is the single source of truth
// for every run knob — the With* functional options are thin setters
// over it, experiment.Options embeds it, BindRunFlags exposes it on a
// command line, and the spec compiler (internal/spec) produces it from
// a scenario file. The zero value runs with library defaults
// (GOMAXPROCS replica workers, serial ticks, no timeout, fail fast).
//
// RunOptions lowers to the runner's own options in exactly one place,
// RunnerOptions; nothing else in the module translates run knobs.
type RunOptions struct {
	// Jobs bounds the replica worker pool (0 = GOMAXPROCS). The
	// averaged result is identical for every job count.
	Jobs int
	// Workers shards each replica's per-tick work across this many
	// goroutines (0 or 1 = serial). The series is byte-identical for
	// every worker count (DESIGN.md §12); this is a throughput knob
	// for large topologies, orthogonal to Jobs (replica parallelism).
	Workers int
	// Timeout aborts the whole batch after this duration, returning
	// context.DeadlineExceeded (0 = none).
	Timeout time.Duration
	// Check runs every replica under the engine's per-tick invariant
	// audit; a violated invariant aborts the batch with an error
	// matching obs.ErrInvariant.
	Check bool
	// KeepGoing degrades gracefully instead of aborting the batch when
	// a replica fails after its retries: the averaged result covers
	// the replicas that completed, and the returned runner.Stats name
	// what was lost. A batch where every replica failed still errors.
	KeepGoing bool
	// Retries re-runs a failed replica (error, panic, or timeout) up
	// to this many extra attempts with exponential backoff (0 = fail
	// on the first error).
	Retries int
	// RetryBackoff is the base delay of the retry backoff (0 means
	// 500ms; attempt k waits base<<k plus deterministic jitter).
	RetryBackoff time.Duration
	// ReplicaTimeout bounds the wall-clock time of one replica
	// attempt; an attempt that exceeds it fails with
	// runner.ErrTaskTimeout and is retried under Retries (0 = none).
	ReplicaTimeout time.Duration
	// Checkpoint, when set, writes each replica's engine snapshot into
	// this directory (replica-NNN.ckpt) every CheckpointEvery ticks,
	// through the atomic safeio path.
	Checkpoint string
	// CheckpointEvery is the tick interval between checkpoints (0
	// means 10).
	CheckpointEvery int
	// Resume restarts replicas from previously written checkpoints:
	// a checkpoint directory (each replica loads its own
	// replica-NNN.ckpt; replicas without one start fresh) or, for
	// single-replica batches, one checkpoint file. A checkpoint that
	// exists but fails verification fails its replica explicitly.
	Resume string
	// StructuralThreshold sets the node count at which routing switches
	// from the dense all-pairs hop table to the structural router
	// (sim.Config.StructuralThreshold): 0 picks the library default
	// (sim.DefaultStructuralThreshold), -1 forces the dense table at
	// every size (an ablation/debugging knob), and any positive value
	// is the switch point. Results are identical either way; this
	// trades construction memory against per-hop lookup cost.
	StructuralThreshold int
	// Workload, when non-nil, replaces the worm's β-draw scan source
	// with a trace-replay workload (see WorkloadSpec): worm scans and
	// benign background flows stream from a synthetic traffic profile
	// or a trace file, competing for the same rate-limiter credits, and
	// the run reports collateral damage (benign contacts throttled) via
	// the obs counters.
	Workload *WorkloadSpec

	// Progress, when non-nil, observes live runner.Stats after every
	// finished replica. Not serializable; CLI- or caller-supplied.
	Progress func(runner.Stats)
	// OnCheckpointError, when non-nil, is consulted before a failed
	// checkpoint write aborts its replica. Returning nil swallows the
	// failure and the run continues (the caller accepted losing that
	// checkpoint — e.g. the daemon skipping checkpoints under disk
	// pressure, errors.Is(err, safeio.ErrNoSpace)); returning an error
	// aborts the replica as before. Not serializable; caller-supplied.
	OnCheckpointError func(run int, err error) error
	// Collectors, when non-nil, builds a per-replica metrics collector
	// (see internal/obs); called from worker goroutines and must be
	// safe for concurrent calls with distinct run indices. Not
	// serializable; caller-supplied.
	Collectors func(run int) obs.Collector
	// Net, when non-nil, supplies prebuilt topology state (graph,
	// roles, routing tables) for the scenario, skipping
	// materialization — see Scenario.BuildNet. The Net's key must
	// match the scenario's NetKey; sweeps use this to share one
	// routing construction across grid points.
	Net *Net
}

// Validate checks every knob. Error messages name the command-line
// flag each knob binds to (BindRunFlags), so CLI validation can
// surface them unchanged.
func (o *RunOptions) Validate() error {
	switch {
	case o.Jobs < 0:
		return fmt.Errorf("core: -jobs must be >= 0 (0 = GOMAXPROCS), got %d", o.Jobs)
	case o.Workers < 0:
		return fmt.Errorf("core: -workers must be >= 0 (0 = serial), got %d", o.Workers)
	case o.Timeout < 0:
		return fmt.Errorf("core: -timeout must be >= 0, got %v", o.Timeout)
	case o.Retries < 0:
		return fmt.Errorf("core: -retries must be >= 0, got %d", o.Retries)
	case o.RetryBackoff < 0:
		return fmt.Errorf("core: -retry-backoff must be >= 0, got %v", o.RetryBackoff)
	case o.ReplicaTimeout < 0:
		return fmt.Errorf("core: -replica-timeout must be >= 0, got %v", o.ReplicaTimeout)
	case o.CheckpointEvery < 0:
		return fmt.Errorf("core: -checkpoint-every must be >= 0 (0 = default), got %d", o.CheckpointEvery)
	case o.StructuralThreshold < -1:
		return fmt.Errorf("core: -structural-threshold must be >= -1 (-1 = dense routing at every size, 0 = default), got %d", o.StructuralThreshold)
	}
	if o.Workload != nil {
		return o.Workload.Validate()
	}
	return nil
}

// RunnerOptions lowers the declarative options to the runner pool's
// option set. This is the only place in the module where run knobs
// translate to runner.Options — core batches and experiment figure
// batches both lower through it.
func (o *RunOptions) RunnerOptions() []runner.Option {
	opts := []runner.Option{runner.WithJobs(o.Jobs)}
	if o.Progress != nil {
		opts = append(opts, runner.WithProgress(o.Progress))
	}
	if o.Retries > 0 {
		base := o.RetryBackoff
		if base <= 0 {
			base = DefaultRetryBackoff
		}
		opts = append(opts, runner.WithRetry(o.Retries, base))
	}
	if o.ReplicaTimeout > 0 {
		opts = append(opts, runner.WithTaskTimeout(o.ReplicaTimeout))
	}
	if o.KeepGoing {
		opts = append(opts, runner.WithKeepGoing())
	}
	return opts
}

// ReplicaCheckpoint is the per-replica checkpoint naming scheme shared
// by every checkpoint layout in the module (core's flat directory,
// experiment's per-figure batches): replica run of a batch rooted at
// dir checkpoints to dir/replica-NNN.ckpt.
func ReplicaCheckpoint(dir string, run int) string {
	return filepath.Join(dir, fmt.Sprintf("replica-%03d.ckpt", run))
}

// RunOption tunes how SimulateContext executes a batch of replicas.
// Each option sets one field of a RunOptions; callers who prefer the
// declarative form pass a RunOptions to SimulateOptions directly.
type RunOption func(*RunOptions)

// WithJobs bounds the replica worker pool at n concurrent simulations
// (default GOMAXPROCS). The averaged result is identical for every job
// count; only wall time changes.
func WithJobs(n int) RunOption {
	return func(o *RunOptions) { o.Jobs = n }
}

// WithWorkers shards each replica's per-tick work across n goroutines
// (0 or 1 = serial). Results are byte-identical for every worker
// count; see DESIGN.md §12.
func WithWorkers(n int) RunOption {
	return func(o *RunOptions) { o.Workers = n }
}

// WithTimeout aborts the batch after d, returning
// context.DeadlineExceeded. Zero or negative means no timeout.
func WithTimeout(d time.Duration) RunOption {
	return func(o *RunOptions) { o.Timeout = d }
}

// WithProgress installs a callback observing live runner.Stats (runs
// completed, ticks simulated, ticks/sec) after every finished replica.
func WithProgress(fn func(runner.Stats)) RunOption {
	return func(o *RunOptions) { o.Progress = fn }
}

// WithCollectors installs a per-replica metrics collector factory (see
// internal/obs): factory(r) builds replica r's collector before its
// engine starts. The factory is called from worker goroutines and must
// be safe for concurrent calls with distinct r.
func WithCollectors(factory func(run int) obs.Collector) RunOption {
	return func(o *RunOptions) { o.Collectors = factory }
}

// WithCheck runs every replica under the engine's per-tick invariant
// audit; a violated invariant aborts the batch with an error matching
// obs.ErrInvariant.
func WithCheck() RunOption {
	return func(o *RunOptions) { o.Check = true }
}

// WithRetry retries a failed replica (error, panic, or timeout) up to
// max extra attempts with exponential backoff from base (0 means
// 500ms) plus deterministic jitter. Combined with WithCheckpoints and
// WithResume, a retried replica restarts from its own last checkpoint
// rather than tick zero.
func WithRetry(max int, base time.Duration) RunOption {
	return func(o *RunOptions) {
		o.Retries = max
		o.RetryBackoff = base
	}
}

// WithReplicaTimeout bounds the wall-clock time of one replica attempt;
// an attempt that exceeds it fails with runner.ErrTaskTimeout (and is
// retried under WithRetry).
func WithReplicaTimeout(d time.Duration) RunOption {
	return func(o *RunOptions) { o.ReplicaTimeout = d }
}

// WithKeepGoing degrades gracefully instead of aborting the batch when
// a replica fails after its retries: the averaged result covers the
// replicas that completed, and SimulateStats' runner.Stats.Failures
// names what was lost. A batch where every replica failed still
// errors.
func WithKeepGoing() RunOption {
	return func(o *RunOptions) { o.KeepGoing = true }
}

// WithCheckpoints writes each replica's engine snapshot into dir (one
// file per replica, replica-NNN.ckpt) every `every` ticks (0 means
// 10), through the atomic safeio path: a crash mid-write never leaves
// a truncated checkpoint.
func WithCheckpoints(dir string, every int) RunOption {
	return func(o *RunOptions) {
		o.Checkpoint = dir
		o.CheckpointEvery = every
	}
}

// WithResume resumes each replica from a previously written
// checkpoint. path is either a checkpoint directory (each replica
// loads its own replica-NNN.ckpt; replicas without one start fresh)
// or, for single-replica batches, one checkpoint file. A checkpoint
// that exists but fails verification (corruption, version skew, or a
// config mismatch) fails the replica explicitly — it is never silently
// ignored.
func WithResume(path string) RunOption {
	return func(o *RunOptions) { o.Resume = path }
}

// WithStructuralThreshold sets the node count at which routing switches
// from the dense all-pairs hop table to the structural router: 0 picks
// the library default, -1 forces the dense table at every size. Results
// are identical either way (a memory/speed trade); a prebuilt Net must
// have been built with the same threshold.
func WithStructuralThreshold(n int) RunOption {
	return func(o *RunOptions) { o.StructuralThreshold = n }
}

// WithWorkload replaces the worm's β-draw scan source with a
// trace-replay workload (see WorkloadSpec): scans and benign
// background flows stream from a traffic profile or trace file and
// compete for the same rate-limiter credits.
func WithWorkload(w *WorkloadSpec) RunOption {
	return func(o *RunOptions) { o.Workload = w }
}

// WithNet runs the batch over prebuilt topology state (see
// Scenario.BuildNet), skipping graph materialization and routing
// construction. The Net must have been built from a scenario with the
// same NetKey.
func WithNet(n *Net) RunOption {
	return func(o *RunOptions) { o.Net = n }
}
