package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/runner"
)

func smallScenario() Scenario {
	w := RandomWorm(0.8)
	w.ScansPerTick = 5
	return Scenario{
		Topology: PowerLaw(150),
		Worm:     w,
		Defense:  BackboneRateLimit(0.4),
		Ticks:    40,
		Seed:     9,
	}
}

func TestSimulateContextMatchesSimulate(t *testing.T) {
	sc := smallScenario()
	plain, err := sc.Simulate(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 4} {
		ctxRes, err := sc.SimulateContext(context.Background(), 3, WithJobs(jobs))
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if !reflect.DeepEqual(plain, ctxRes) {
			t.Fatalf("jobs=%d: SimulateContext differs from Simulate", jobs)
		}
	}
}

func TestSimulateContextProgress(t *testing.T) {
	sc := smallScenario()
	var final runner.Stats
	if _, err := sc.SimulateContext(context.Background(), 4,
		WithJobs(2),
		WithProgress(func(s runner.Stats) { final = s })); err != nil {
		t.Fatal(err)
	}
	if final.Completed != 4 || final.Runs != 4 {
		t.Errorf("final stats = %+v, want 4/4 completed", final)
	}
	if final.Ticks != int64(4*sc.Ticks) {
		t.Errorf("ticks = %d, want %d", final.Ticks, 4*sc.Ticks)
	}
}

func TestSimulateContextTimeout(t *testing.T) {
	sc := smallScenario()
	sc.Ticks = 100000 // far beyond anything a nanosecond budget allows
	_, err := sc.SimulateContext(context.Background(), 4, WithTimeout(time.Nanosecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestSimulateContextCancelled(t *testing.T) {
	sc := smallScenario()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sc.SimulateContext(ctx, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestValidate(t *testing.T) {
	sc := smallScenario()
	if err := sc.Validate(); err != nil {
		t.Errorf("valid scenario: %v", err)
	}
	if err := (&Scenario{Worm: RandomWorm(0.8)}).Validate(); err == nil {
		t.Error("missing topology should fail validation")
	}
	if err := (&Scenario{Topology: Star(10)}).Validate(); err == nil {
		t.Error("missing worm should fail validation")
	}
	bad := smallScenario()
	bad.Worm = LocalPreferentialWorm(0.8, 2)
	if err := bad.Validate(); err == nil {
		t.Error("invalid worm spec should fail validation")
	}
	hubOnPL := smallScenario()
	hubOnPL.Defense = HubCap(2)
	if err := hubOnPL.Validate(); !errors.Is(err, ErrUnsupported) {
		t.Errorf("hub cap on power-law should be unsupported, got %v", err)
	}
	neg := smallScenario()
	neg.InitialInfected = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative initial infections should fail validation")
	}
}

func TestScenarioWorkers(t *testing.T) {
	bad := RunOptions{Workers: -1}
	if err := bad.Validate(); err == nil {
		t.Error("Workers=-1 should fail options validation")
	}

	small := smallScenario()
	if w := small.Warnings(RunOptions{Workers: 4}); len(w) == 0 {
		t.Error("Workers=4 on a 150-node topology should warn about unprofitable sharding")
	}
	if w := small.Warnings(RunOptions{Workers: 1}); len(w) != 0 {
		t.Errorf("Workers=1 should not warn, got %v", w)
	}

	// The worker count is a throughput knob only: the averaged series
	// must be byte-identical to the serial run.
	sc := smallScenario()
	want, err := sc.Simulate(2)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sc.SimulateOptions(context.Background(), 2, RunOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Infected, want.Infected) || !reflect.DeepEqual(got.Backlog, want.Backlog) {
		t.Error("Workers=4 series diverged from serial")
	}
}

func TestScenarioStructuralThreshold(t *testing.T) {
	bad := RunOptions{StructuralThreshold: -2}
	if err := bad.Validate(); err == nil {
		t.Error("StructuralThreshold=-2 should fail options validation")
	}

	// The threshold is a representation knob only: forcing the dense
	// table (-1) and forcing the structural router (1, below any real
	// topology size) must produce byte-identical series.
	sc := smallScenario()
	want, _, err := sc.SimulateOptions(context.Background(), 2, RunOptions{StructuralThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sc.SimulateOptions(context.Background(), 2, RunOptions{StructuralThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Infected, want.Infected) || !reflect.DeepEqual(got.Backlog, want.Backlog) {
		t.Error("structural routing series diverged from the dense table")
	}

	// A prebuilt Net carries its threshold: running it under options
	// that resolve to a different threshold must be rejected, not
	// silently routed with the wrong representation.
	net, err := sc.BuildNetThreshold(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sc.SimulateOptions(context.Background(), 1, RunOptions{Net: net, StructuralThreshold: -1}); err == nil {
		t.Error("prebuilt net with mismatched threshold should fail validation")
	}
	if _, _, err := sc.SimulateOptions(context.Background(), 1, RunOptions{Net: net, StructuralThreshold: 1}); err != nil {
		t.Errorf("prebuilt net with matching threshold rejected: %v", err)
	}
}
