package core

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/trace"
)

// replayTestScenario is an enterprise topology with Williamson
// throttles on its hosts — the deployment the collateral-damage
// measurement targets.
func replayTestScenario() Scenario {
	return Scenario{
		Topology: Enterprise(topology.HierarchicalConfig{
			Backbones: 1, EdgesPer: 2, HostsPerSubnet: 12,
		}),
		Worm:    RandomWorm(0.8),
		Defense: HostContactThrottle(4, 1, 20),
		Ticks:   60,
		Seed:    5,
	}
}

func TestWorkloadFlagBinding(t *testing.T) {
	var o RunOptions
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	BindRunFlags(fs, &o)
	if err := fs.Parse([]string{"-trace-replay", "synthetic", "-trace-tick-ms", "500"}); err != nil {
		t.Fatal(err)
	}
	if o.Workload == nil || o.Workload.Kind != WorkloadSynthetic || o.Workload.TickMS != 500 {
		t.Fatalf("flags parsed to %+v", o.Workload)
	}

	var o2 RunOptions
	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	BindRunFlags(fs2, &o2)
	if err := fs2.Parse([]string{"-trace-replay", "trace.log"}); err != nil {
		t.Fatal(err)
	}
	if o2.Workload == nil || o2.Workload.Kind != WorkloadTrace || o2.Workload.Path != "trace.log" {
		t.Fatalf("flags parsed to %+v", o2.Workload)
	}
}

// TestMergeRunFlagsWorkload: a spec-supplied workload keeps its
// profile when the command line overrides only the tick mapping, and
// the merge never mutates the base spec in place.
func TestMergeRunFlagsWorkload(t *testing.T) {
	base := RunOptions{Workload: &WorkloadSpec{
		Kind: WorkloadSynthetic, Infected: 3, Normal: 10, TickMS: 1000,
	}}
	var cli RunOptions
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	BindRunFlags(fs, &cli)
	if err := fs.Parse([]string{"-trace-tick-ms", "250"}); err != nil {
		t.Fatal(err)
	}
	out := MergeRunFlags(fs, base, cli)
	if out.Workload.TickMS != 250 {
		t.Errorf("merged TickMS = %d, want 250", out.Workload.TickMS)
	}
	if out.Workload.Infected != 3 || out.Workload.Normal != 10 {
		t.Errorf("merge dropped the spec profile: %+v", out.Workload)
	}
	if base.Workload.TickMS != 1000 {
		t.Errorf("merge mutated the base workload: TickMS = %d", base.Workload.TickMS)
	}
}

func TestWorkloadSpecValidate(t *testing.T) {
	bad := []WorkloadSpec{
		{},
		{Kind: "replay"},
		{Kind: WorkloadTrace},
		{Kind: WorkloadSynthetic, Path: "x"},
		{Kind: WorkloadSynthetic, TickMS: -1},
		{Kind: WorkloadSynthetic, BlasterFraction: 1.5},
		{Kind: WorkloadSynthetic, Infected: -1},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, w)
		}
	}
	ok := WorkloadSpec{Kind: WorkloadSynthetic, TickMS: 500, Infected: 2, Normal: 8}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestSimulateSyntheticWorkload runs a whole batch over the synthetic
// replay workload and checks the collateral counters flow through the
// collector seam.
func TestSimulateSyntheticWorkload(t *testing.T) {
	sc := replayTestScenario()
	tally := obs.NewTally()
	res, _, err := sc.SimulateOptions(context.Background(), 1, RunOptions{
		Check: true,
		Collectors: func(int) obs.Collector { return tally },
		Workload: &WorkloadSpec{
			Kind: WorkloadSynthetic, Normal: 12, Servers: 2, P2P: 3, Infected: 3,
			BlasterFraction: 0.5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Infected) != 60 {
		t.Fatalf("got %d ticks", len(res.Infected))
	}
	sum := tally.Summary()
	if sum.BenignContacts == 0 || sum.ScanAttempts == 0 {
		t.Fatalf("dead workload: %d benign, %d scans", sum.BenignContacts, sum.ScanAttempts)
	}
	if res.Infected[0] == 0 {
		t.Error("workload worm hosts were not seeded")
	}
}

// TestSimulateTraceFileWorkload: generate a trace, replay it from
// disk, and check the trace's worm hosts replace random seeding.
func TestSimulateTraceFileWorkload(t *testing.T) {
	gen := trace.GenConfig{
		Duration: 60 * trace.Second, Seed: 42,
		NormalClients: 12, Servers: 2, P2PClients: 3, Infected: 3,
		BlasterFraction: 0.5,
	}
	tr, err := trace.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	sc := replayTestScenario()
	tally := obs.NewTally()
	res, _, err := sc.SimulateOptions(context.Background(), 1, RunOptions{
		Check: true,
		Collectors: func(int) obs.Collector { return tally },
		Workload:   &WorkloadSpec{Kind: WorkloadTrace, Path: path},
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := tally.Summary()
	if sum.BenignContacts == 0 {
		t.Error("file replay saw no benign contacts")
	}
	if sum.ScanAttempts == 0 {
		t.Error("file replay saw no worm scans; worm-host detection failed")
	}
	if res.Infected[0] == 0 {
		t.Error("trace worm hosts were not seeded")
	}
}
