// Package core is the library facade: a Scenario ties together a
// topology, a worm, a rate-limiting defense deployment, and an optional
// immunization process, and can be run both as a packet-level
// simulation and as the paper's matching analytical model. It is the
// one-import entry point for downstream users; the specialised packages
// (model, sim, trace, ratelimit) remain available for finer control.
//
//	sc := core.Scenario{
//	    Topology: core.PowerLaw(1000),
//	    Worm:     core.RandomWorm(0.8),
//	    Defense:  core.BackboneRateLimit(0.4),
//	}
//	res, err := sc.Simulate(10)
//
// Long batches take a context and run options — either functional
// options or the declarative core.RunOptions struct (the two are
// interchangeable; the functional options are setters over RunOptions):
//
//	res, err := sc.SimulateContext(ctx, 10,
//	    core.WithJobs(4),
//	    core.WithTimeout(time.Minute),
//	    core.WithProgress(func(s runner.Stats) { ... }))
//
//	res, stats, err := sc.SimulateOptions(ctx, 10, core.RunOptions{
//	    Jobs: 4, Timeout: time.Minute,
//	})
//
// Scenarios also have a declarative file format — a versioned JSON/YAML
// spec compiled by internal/spec — which is how the CLIs accept
// scenarios from disk and how parameter sweeps are described.
package core

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"

	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/ratelimit"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/worm"
)

// TopologySpec describes how to build the network.
type TopologySpec struct {
	kind     string
	n        int
	m        int
	hier     topology.HierarchicalConfig
	twolevel topology.TwoLevelConfig
}

// Star specifies an n-node star (one hub, n-1 leaves).
func Star(n int) TopologySpec { return TopologySpec{kind: "star", n: n} }

// PowerLaw specifies an n-node preferential-attachment (AS-like) graph.
func PowerLaw(n int) TopologySpec { return TopologySpec{kind: "powerlaw", n: n, m: 1} }

// PowerLawM specifies a preferential-attachment graph with m edges per
// new node.
func PowerLawM(n, m int) TopologySpec { return TopologySpec{kind: "powerlaw", n: n, m: m} }

// Enterprise specifies an explicit backbone/edge/subnet hierarchy.
func Enterprise(cfg topology.HierarchicalConfig) TopologySpec {
	return TopologySpec{kind: "hier", hier: cfg}
}

// ASInternet specifies a BRITE-style two-level topology: a power-law
// AS core whose stub ASes each serve a host subnet.
func ASInternet(cfg topology.TwoLevelConfig) TopologySpec {
	return TopologySpec{kind: "twolevel", twolevel: cfg}
}

// WormSpec describes the worm's contact rate and targeting.
type WormSpec struct {
	// Beta is the per-scan infection probability (the paper's β).
	Beta float64
	// ScansPerTick is the scan attempts per tick (default 1).
	ScansPerTick int
	// ProbeFirst makes the worm ping targets and await the reply before
	// exploiting (Welchia's behaviour).
	ProbeFirst bool
	// strategy builds the target picker.
	strategy worm.Factory
	// localPref is recorded for the analytic mapping.
	localPref float64
	err       error
}

// RandomWorm scans uniformly random targets (Code Red style).
func RandomWorm(beta float64) WormSpec {
	return WormSpec{Beta: beta, strategy: worm.NewRandomFactory()}
}

// LocalPreferentialWorm scans its own subnet with probability p
// (Blaster/Welchia style).
func LocalPreferentialWorm(beta, p float64) WormSpec {
	f, err := worm.NewLocalPreferentialFactory(p)
	return WormSpec{Beta: beta, strategy: f, localPref: p, err: err}
}

// SequentialWorm walks the address space in order.
func SequentialWorm(beta float64) WormSpec {
	return WormSpec{Beta: beta, strategy: worm.NewSequentialFactory()}
}

// DefenseSpec describes a rate-limiting deployment.
type DefenseSpec struct {
	kind      string
	fraction  float64         // host deployment fraction
	rate      float64         // link rate or filtered scan rate
	cap       int             // node cap for hub defenses
	weighted  bool            // backbone: routing-proportional link weights
	overrides map[int]float64 // explicit per-node scan-rate overrides
	limWS     int             // throttle: working-set size
	limPeriod int64           // throttle: refresh period in ticks
	limHosts  int             // throttle: number of hosts to protect
}

// NoDefense leaves the network open.
func NoDefense() DefenseSpec { return DefenseSpec{kind: "none"} }

// HostRateLimit installs Williamson-style throttles on a fraction of
// hosts, cutting their scan rate to beta2.
func HostRateLimit(fraction, beta2 float64) DefenseSpec {
	return DefenseSpec{kind: "host", fraction: fraction, rate: beta2}
}

// EdgeRateLimit limits every subnet uplink to rate packets/tick.
func EdgeRateLimit(rate float64) DefenseSpec {
	return DefenseSpec{kind: "edge", rate: rate}
}

// BackboneRateLimit limits every backbone-incident link to rate
// packets/tick.
func BackboneRateLimit(rate float64) DefenseSpec {
	return DefenseSpec{kind: "backbone", rate: rate}
}

// BackboneRateLimitWeighted is BackboneRateLimit with each link's
// budget scaled by its routing-table weight (routing.Table.LinkWeights)
// — the paper's deployment, where heavily routed backbone links get a
// proportionally larger packet budget.
func BackboneRateLimitWeighted(rate float64) DefenseSpec {
	return DefenseSpec{kind: "backbone", rate: rate, weighted: true}
}

// HubCap caps the star hub's forwarding at cap packets/tick.
func HubCap(cap int) DefenseSpec { return DefenseSpec{kind: "hub", cap: cap} }

// ScanRateOverrides pins specific nodes to explicit filtered scan
// rates — the hand-placed counterpart of HostRateLimit's random
// deployment. Keys are node IDs, values replace the worm's β for that
// node's outgoing scans.
func ScanRateOverrides(rates map[int]float64) DefenseSpec {
	return DefenseSpec{kind: "overrides", overrides: rates}
}

// HostContactThrottle installs a mechanism-level Williamson contact
// throttle (working set of workingSet destinations, refreshed every
// period ticks) on the first hosts host-role nodes. Unlike
// HostRateLimit, which rescales β, the throttle sees the actual
// per-tick contact stream. Requires a routed topology.
func HostContactThrottle(workingSet int, period int64, hosts int) DefenseSpec {
	return DefenseSpec{kind: "throttle", limWS: workingSet, limPeriod: period, limHosts: hosts}
}

// QuarantineSpec configures dynamic (detection-triggered) activation of
// the scenario's defense.
type QuarantineSpec struct {
	// TriggerScansPerTick fires the detector when one tick carries this
	// many worm packets.
	TriggerScansPerTick int
	// TriggerLevel fires the detector when the infected fraction
	// reaches this level — a perfect-knowledge trigger for comparing
	// against detector-driven activation. <= 0 disables it.
	TriggerLevel float64
	// Delay is the detection-to-deployment lag in ticks.
	Delay int
}

// ImmunizationSpec configures delayed patching.
type ImmunizationSpec struct {
	// StartLevel triggers patching when the infected fraction reaches
	// this level (used when StartTick is 0 or negative).
	StartLevel float64
	// StartTick triggers patching at a fixed tick when positive.
	StartTick int
	// Mu is the per-tick patch probability.
	Mu float64
}

// Scenario is a complete experiment description. Zero values get
// sensible defaults where noted.
type Scenario struct {
	Topology TopologySpec
	Worm     WormSpec
	// Defense is the primary rate-limiting deployment; it is also the
	// defense the analytic mapping (Model) describes.
	Defense DefenseSpec
	// Defenses stacks further deployments on top of Defense — e.g. a
	// backbone rate limit plus hand-placed host overrides. All stacked
	// defenses share the scenario's DynamicQuarantine trigger.
	Defenses []DefenseSpec
	// Immunize enables delayed patching when non-nil.
	Immunize *ImmunizationSpec
	// DynamicQuarantine, when non-nil, keeps the Defense inactive until
	// the worm is detected (the paper's title scenario): the defense
	// engages when any single tick carries at least TriggerScansPerTick
	// worm packets, after Delay further ticks.
	DynamicQuarantine *QuarantineSpec
	// Faults, when non-nil, injects domain faults into the defense
	// (imperfect detector, limiter outages, lost or delayed
	// immunization) — see fault.Profile. Replicas decorrelate their
	// fault streams exactly like their simulation streams.
	Faults *fault.Profile
	// Ticks is the horizon (default 150).
	Ticks int
	// Seed fixes the randomness (default 1).
	Seed int64
	// TopologySeed, when non-zero, seeds randomized topology generation
	// (powerlaw, twolevel) independently of Seed, so a sweep can vary
	// the simulation seed while holding the graph fixed — or vice
	// versa. Zero means the graph derives from Seed, as before.
	TopologySeed int64
	// InitialInfected seeds the epidemic (default 1).
	InitialInfected int
	// MaxQueue bounds link buffers (default 50; negative = unbounded).
	MaxQueue int
	// Drop discards packets beyond a limited link's per-tick capacity
	// instead of queueing them (the ablation alternative to the
	// paper's "queuing the remaining packets").
	Drop bool
	// HostsOnly restricts infection to host-role nodes (routers are
	// infrastructure).
	HostsOnly bool
	// RecordInfections keeps the per-infection genealogy log (tick,
	// victim, source) in the result.
	RecordInfections bool
	// TrackSubnets records the per-tick mean infected fraction within
	// infected subnets (Figures 3(b) and 5). Requires a routed
	// topology.
	TrackSubnets bool
	// TrackLatency records the per-tick mean end-to-end delivery
	// latency of worm packets.
	TrackLatency bool
}

// ErrUnsupported reports a scenario combination with no implementation.
var ErrUnsupported = errors.New("core: unsupported scenario combination")

// seed returns the scenario's effective random seed (default 1).
func (s *Scenario) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// topoSeed returns the seed for randomized topology generation:
// TopologySeed when set, otherwise the scenario seed.
func (s *Scenario) topoSeed() int64 {
	if s.TopologySeed != 0 {
		return s.TopologySeed
	}
	return s.seed()
}

// materialize builds the scenario's concrete topology with roles and
// subnet partition (nil roles/subnet for unrouted topologies). Both the
// simulation config and the analytical mapping derive from the same
// materialized graph, so they agree on every structural quantity.
func (s *Scenario) materialize() (*topology.Graph, []topology.Role, []int, error) {
	var (
		g      *topology.Graph
		roles  []topology.Role
		subnet []int
		err    error
	)
	switch s.Topology.kind {
	case "star":
		g, err = topology.Star(s.Topology.n)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: topology: %w", err)
		}
	case "powerlaw":
		g, err = topology.BarabasiAlbert(s.Topology.n, s.Topology.m, rand.New(rand.NewSource(s.topoSeed())))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: topology: %w", err)
		}
		roles, err = topology.AssignRoles(g, topology.PaperRoles)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: roles: %w", err)
		}
		subnet = topology.Subnets(g, roles)
	case "hier":
		g, roles, subnet, err = topology.Hierarchical(s.Topology.hier)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: topology: %w", err)
		}
	case "twolevel":
		g, roles, subnet, err = topology.TwoLevel(s.Topology.twolevel, rand.New(rand.NewSource(s.topoSeed())))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: topology: %w", err)
		}
	default:
		return nil, nil, nil, errors.New("core: scenario needs a topology (use Star, PowerLaw, Enterprise, ASInternet)")
	}
	return g, roles, subnet, nil
}

// NetKey identifies the immutable topology state (graph, roles, routing
// tables) a scenario materializes: two scenarios with equal keys build
// byte-identical nets, so a sweep can share one BuildNet result across
// every grid point whose key matches. The key covers the topology shape
// parameters and — for randomized generators only — the effective
// topology seed; worm, defense, and run parameters never enter it.
func (s *Scenario) NetKey() (string, error) {
	switch s.Topology.kind {
	case "star":
		return fmt.Sprintf("star/n=%d", s.Topology.n), nil
	case "powerlaw":
		return fmt.Sprintf("powerlaw/n=%d,m=%d,seed=%d", s.Topology.n, s.Topology.m, s.topoSeed()), nil
	case "hier":
		h := s.Topology.hier
		return fmt.Sprintf("hier/b=%d,e=%d,h=%d", h.Backbones, h.EdgesPer, h.HostsPerSubnet), nil
	case "twolevel":
		tl := s.Topology.twolevel
		return fmt.Sprintf("twolevel/ases=%d,m=%d,tf=%g,hps=%d,seed=%d",
			tl.ASes, tl.AttachM, tl.TransitFraction, tl.HostsPerStub, s.topoSeed()), nil
	default:
		return "", errors.New("core: scenario needs a topology")
	}
}

// Net is prebuilt topology state: the materialized graph with roles and
// subnet partition plus the shared routing tables every replica uses.
// Build one with Scenario.BuildNet and pass it to SimulateOptions via
// RunOptions.Net (or WithNet) to amortize graph generation and all-pairs
// routing across several batches over the same topology — the grid
// points of a parameter sweep. A Net is read-only after construction
// and safe for concurrent use.
type Net struct {
	key    string
	graph  *topology.Graph
	roles  []topology.Role
	subnet []int
	net    *sim.Net
}

// Key returns the NetKey of the scenario the Net was built from.
func (n *Net) Key() string { return n.key }

// BuildNet materializes the scenario's topology once — graph, roles,
// subnet partition, and routing state — for reuse across batches via
// RunOptions.Net. Any scenario whose NetKey equals this scenario's can
// run over the returned Net.
func (s *Scenario) BuildNet() (*Net, error) {
	return s.BuildNetThreshold(0)
}

// BuildNetThreshold is BuildNet with an explicit structural threshold,
// interpreted like RunOptions.StructuralThreshold (0 default, -1 dense
// table at every size, >0 the switch point). Batches running over the
// returned Net must use the same threshold in their RunOptions — a
// mismatched pair is rejected at validation, since the knob could not
// apply to the prebuilt routing state.
func (s *Scenario) BuildNetThreshold(threshold int) (*Net, error) {
	key, err := s.NetKey()
	if err != nil {
		return nil, err
	}
	g, roles, subnet, err := s.materialize()
	if err != nil {
		return nil, err
	}
	return &Net{key: key, graph: g, roles: roles, subnet: subnet, net: sim.BuildNetThreshold(g, threshold)}, nil
}

// applyDefense translates one DefenseSpec onto the simulation config.
func (s *Scenario) applyDefense(cfg *sim.Config, d DefenseSpec, seed int64) error {
	g, roles, subnet := cfg.Graph, cfg.Roles, cfg.Subnet
	switch d.kind {
	case "", "none":
	case "host":
		hosts, err := sim.DeployHostFraction(g, roles, d.fraction, seed)
		if err != nil {
			return fmt.Errorf("core: defense: %w", err)
		}
		if cfg.ScanRateOverride == nil {
			cfg.ScanRateOverride = make(map[int]float64, len(hosts))
		}
		for _, h := range hosts {
			cfg.ScanRateOverride[h] = d.rate
		}
	case "overrides":
		if cfg.ScanRateOverride == nil {
			cfg.ScanRateOverride = make(map[int]float64, len(d.overrides))
		}
		for h, r := range d.overrides {
			cfg.ScanRateOverride[h] = r
		}
	case "edge":
		if roles == nil {
			return fmt.Errorf("%w: edge rate limiting needs a routed topology", ErrUnsupported)
		}
		cfg.LimitedLinks = append(cfg.LimitedLinks, sim.DeployEdgeUplinks(g, roles, subnet)...)
		cfg.BaseRate = d.rate
	case "backbone":
		if roles == nil {
			return fmt.Errorf("%w: backbone rate limiting needs a routed topology", ErrUnsupported)
		}
		cfg.LimitedNodes = append(cfg.LimitedNodes, sim.DeployBackbone(roles)...)
		cfg.BaseRate = d.rate
		if d.weighted {
			cfg.LinkWeights = routing.Build(g).LinkWeights(g)
		}
	case "hub":
		if s.Topology.kind != "star" {
			return fmt.Errorf("%w: hub caps apply to star topologies", ErrUnsupported)
		}
		if cfg.NodeCaps == nil {
			cfg.NodeCaps = make(map[int]int, 1)
		}
		cfg.NodeCaps[topology.Hub] = d.cap
	case "throttle":
		if roles == nil {
			return fmt.Errorf("%w: host contact throttles need a routed topology", ErrUnsupported)
		}
		hosts := topology.NodesWithRole(roles, topology.RoleHost)
		if d.limHosts < 0 || d.limHosts > len(hosts) {
			return fmt.Errorf("core: defense: throttle wants %d hosts, topology has %d", d.limHosts, len(hosts))
		}
		// Construct one throttle eagerly so bad parameters surface as a
		// config error, not a panic inside a worker goroutine.
		if _, err := ratelimit.NewWilliamsonThrottle(d.limWS, d.limPeriod); err != nil {
			return fmt.Errorf("core: defense: %w", err)
		}
		ws, period := d.limWS, d.limPeriod
		cfg.HostLimiterNodes = append(cfg.HostLimiterNodes, hosts[:d.limHosts]...)
		cfg.HostLimiterFactory = func() ratelimit.ContactLimiter {
			l, err := ratelimit.NewWilliamsonThrottle(ws, period)
			if err != nil {
				panic(err) // unreachable: parameters validated above
			}
			return l
		}
	default:
		return fmt.Errorf("%w: defense %q", ErrUnsupported, d.kind)
	}
	return nil
}

// build materializes the simulation config. A non-nil net supplies the
// prebuilt topology (its key must match the scenario's); nil builds
// from scratch.
func (s *Scenario) build(net *Net) (sim.Config, error) {
	var cfg sim.Config
	if s.Worm.err != nil {
		return cfg, fmt.Errorf("core: worm: %w", s.Worm.err)
	}
	if s.Worm.strategy == nil {
		return cfg, errors.New("core: scenario needs a worm (use RandomWorm et al.)")
	}

	var (
		g      *topology.Graph
		roles  []topology.Role
		subnet []int
		err    error
	)
	if net != nil {
		key, kerr := s.NetKey()
		if kerr != nil {
			return cfg, kerr
		}
		if key != net.key {
			return cfg, fmt.Errorf("core: prebuilt net %q does not match scenario topology %q", net.key, key)
		}
		g, roles, subnet = net.graph, net.roles, net.subnet
	} else {
		g, roles, subnet, err = s.materialize()
		if err != nil {
			return cfg, err
		}
	}
	seed := s.seed()

	ticks := s.Ticks
	if ticks == 0 {
		ticks = 150
	}
	initial := s.InitialInfected
	if initial == 0 {
		initial = 1
	}
	maxQ := s.MaxQueue
	switch {
	case maxQ == 0:
		maxQ = 50
	case maxQ < 0:
		maxQ = 0 // sim-level 0 = unbounded
	}
	cfg = sim.Config{
		Graph:            g,
		Roles:            roles,
		Subnet:           subnet,
		Beta:             s.Worm.Beta,
		ScansPerTick:     s.Worm.ScansPerTick,
		ProbeFirst:       s.Worm.ProbeFirst,
		Strategy:         s.Worm.strategy,
		InitialInfected:  initial,
		Ticks:            ticks,
		Seed:             seed,
		MaxQueue:         maxQ,
		HostsOnly:        s.HostsOnly,
		RecordInfections: s.RecordInfections,
		TrackSubnets:     s.TrackSubnets,
		TrackLatency:     s.TrackLatency,
		Faults:           s.Faults,
	}
	if net != nil {
		cfg.Net = net.net
	}
	if s.Drop {
		cfg.Policy = sim.PolicyDrop
	}

	if err := s.applyDefense(&cfg, s.Defense, seed); err != nil {
		return cfg, err
	}
	for _, d := range s.Defenses {
		if err := s.applyDefense(&cfg, d, seed); err != nil {
			return cfg, err
		}
	}

	if s.Immunize != nil {
		im := &sim.Immunization{Mu: s.Immunize.Mu, StartTick: -1, StartLevel: s.Immunize.StartLevel}
		if s.Immunize.StartTick > 0 {
			im.StartTick = s.Immunize.StartTick
		}
		cfg.Immunize = im
	}
	if s.DynamicQuarantine != nil {
		cfg.Quarantine = &sim.Quarantine{
			TriggerScansPerTick: s.DynamicQuarantine.TriggerScansPerTick,
			TriggerLevel:        s.DynamicQuarantine.TriggerLevel,
			Delay:               s.DynamicQuarantine.Delay,
		}
	}
	return cfg, nil
}

// Simulate runs the scenario `runs` times (averaging the series) and
// returns the per-tick result. It is SimulateContext with a background
// context and default options.
func (s *Scenario) Simulate(runs int) (*sim.Result, error) {
	return s.SimulateContext(context.Background(), runs)
}

// SimulateContext runs the scenario `runs` times on a bounded worker
// pool (averaging the series) and returns the per-tick result. Each
// replica seeds its RNG from the scenario seed plus its index, so the
// result is deterministic and independent of the job count. Cancelling
// ctx (or exceeding WithTimeout) aborts the batch between simulation
// ticks and returns the context's error.
func (s *Scenario) SimulateContext(ctx context.Context, runs int, opts ...RunOption) (*sim.Result, error) {
	res, _, err := s.SimulateStats(ctx, runs, opts...)
	return res, err
}

// SimulateStats is SimulateContext returning the batch's final
// runner.Stats (replicas completed/failed/retried, ticks simulated,
// failure details) alongside the averaged result, for callers that
// report batch health. It folds the functional options into a
// RunOptions and delegates to SimulateOptions.
func (s *Scenario) SimulateStats(ctx context.Context, runs int, opts ...RunOption) (*sim.Result, runner.Stats, error) {
	var o RunOptions
	for _, opt := range opts {
		opt(&o)
	}
	return s.SimulateOptions(ctx, runs, o)
}

// SimulateOptions runs the scenario `runs` times under a declarative
// RunOptions — the entry point the CLIs, the spec compiler, and the
// sweep engine share. It validates the options, applies the batch
// timeout, wires checkpoint/resume sinks, lowers the remaining knobs
// through RunOptions.RunnerOptions, and executes on sim.MultiRunStats.
func (s *Scenario) SimulateOptions(ctx context.Context, runs int, o RunOptions) (*sim.Result, runner.Stats, error) {
	if err := o.Validate(); err != nil {
		return nil, runner.Stats{}, err
	}
	if o.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, o.Timeout)
		defer cancel()
	}
	cfg, err := s.build(o.Net)
	if err != nil {
		return nil, runner.Stats{}, err
	}
	cfg.Workers = o.Workers
	cfg.StructuralThreshold = o.StructuralThreshold
	cfg.CollectorFactory = o.Collectors
	cfg.Check = o.Check
	if o.Workload != nil {
		if err := applyWorkload(&cfg, o.Workload); err != nil {
			return nil, runner.Stats{}, err
		}
	}
	if o.Checkpoint != "" {
		if err := os.MkdirAll(o.Checkpoint, 0o755); err != nil {
			return nil, runner.Stats{}, fmt.Errorf("core: checkpoint dir: %w", err)
		}
		cfg.CheckpointEvery = o.CheckpointEvery
		if cfg.CheckpointEvery <= 0 {
			cfg.CheckpointEvery = 10
		}
		dir := o.Checkpoint
		onErr := o.OnCheckpointError
		cfg.CheckpointFactory = func(run int) func(*sim.Snapshot) error {
			path := ReplicaCheckpoint(dir, run)
			return func(snap *sim.Snapshot) error {
				err := sim.WriteSnapshot(path, snap)
				if err != nil && onErr != nil {
					// The caller decides whether losing this checkpoint
					// is survivable (e.g. skip-under-ENOSPC) or fatal.
					err = onErr(run, err)
				}
				return err
			}
		}
	}
	if o.Resume != "" {
		resume := o.Resume
		info, statErr := os.Stat(resume)
		fromFile := statErr == nil && !info.IsDir()
		if fromFile && runs != 1 {
			return nil, runner.Stats{}, fmt.Errorf("core: -resume with a single checkpoint file needs runs=1, got %d (pass the checkpoint directory instead)", runs)
		}
		cfg.ResumeFactory = func(run int) (*sim.Snapshot, error) {
			path := ReplicaCheckpoint(resume, run)
			if fromFile {
				path = resume
			}
			snap, err := sim.ReadSnapshot(path)
			if errors.Is(err, fs.ErrNotExist) {
				return nil, nil // no checkpoint for this replica: start fresh
			}
			return snap, err
		}
	}
	return sim.MultiRunStats(ctx, cfg, runs, o.RunnerOptions()...)
}

// Validate checks the scenario spec without running anything: topology
// construction, worm and defense compatibility, and every simulation
// parameter are verified, so spec errors surface before a batch is
// scheduled. A nil error means Simulate will not fail on the spec.
func (s *Scenario) Validate() error {
	cfg, err := s.build(nil)
	if err != nil {
		return err
	}
	return cfg.Validate()
}

// specNodes computes the scenario topology's node count from the spec
// alone, without materializing the graph.
func (s *Scenario) specNodes() (int, error) {
	switch s.Topology.kind {
	case "star", "powerlaw":
		return s.Topology.n, nil
	case "hier":
		h := s.Topology.hier
		return h.Backbones + h.Backbones*h.EdgesPer*(1+h.HostsPerSubnet), nil
	case "twolevel":
		tl := s.Topology.twolevel
		nTransit := int(tl.TransitFraction * float64(tl.ASes))
		if tl.TransitFraction > 0 && nTransit == 0 {
			nTransit = 1
		}
		return tl.ASes + (tl.ASes-nTransit)*tl.HostsPerStub, nil
	default:
		return 0, errors.New("core: scenario needs a topology")
	}
}

// Warnings reports advisory (non-fatal) issues with the scenario under
// the given run options: configurations that will run correctly but
// probably not the way the user hoped. Currently it flags intra-run
// workers on topologies too small to shard profitably — the result is
// identical either way (DESIGN.md §12), but the goroutine handoff costs
// more than it saves below sim.MinShardNodes nodes — and tracking
// options that need structure the topology does not have.
func (s *Scenario) Warnings(o RunOptions) []string {
	var warns []string
	if o.Workers > 1 {
		if n, err := s.specNodes(); err == nil && n > 0 && n < sim.MinShardNodes {
			warns = append(warns, fmt.Sprintf(
				"core: %d workers on a %d-node topology: sharding pays off above ~%d nodes; expect serial-or-worse speed (results are unaffected)",
				o.Workers, n, sim.MinShardNodes))
		}
	}
	if s.TrackSubnets && s.Topology.kind == "star" {
		warns = append(warns, "core: track-subnets on a star topology: stars have no subnet partition; the within-subnet series will be empty")
	}
	return warns
}

// Model returns the paper's analytical model matching the scenario
// (topology size N, worm β, defense), where one exists. Scenarios with
// no closed-form counterpart return ErrUnsupported. Only the primary
// Defense maps; stacked Defenses have no closed form.
func (s *Scenario) Model() (model.Curve, error) {
	if s.Worm.strategy == nil {
		return nil, errors.New("core: scenario needs a worm")
	}
	if len(s.Defenses) > 0 {
		return nil, fmt.Errorf("%w: no analytical model for stacked defenses", ErrUnsupported)
	}
	nodes, err := s.specNodes()
	if err != nil {
		return nil, err
	}
	n := float64(nodes)
	i0 := float64(s.InitialInfected)
	if i0 == 0 {
		i0 = 1
	}
	switch s.Defense.kind {
	case "", "none":
		m := model.Homogeneous{Beta: s.Worm.Beta, N: n, I0: i0}
		return m, m.Validate()
	case "host":
		m := model.HostRL{
			Q: s.Defense.fraction, Beta1: s.Worm.Beta, Beta2: s.Defense.rate, N: n, I0: i0,
		}
		return m, m.Validate()
	case "hub":
		m := model.HubRL{Beta: float64(s.Defense.cap), Gamma: s.Worm.Beta, N: n, I0: i0}
		return m, m.Validate()
	case "backbone":
		// Measure the coverage α of Equation 6 on the scenario's actual
		// topology: the fraction of source–destination paths that
		// transit a backbone router, computed from the same routing
		// tables the simulation forwards packets over. The analytic
		// counterpart then matches the simulated deployment with no
		// free parameter.
		g, roles, _, err := s.materialize()
		if err != nil {
			return nil, err
		}
		if roles == nil {
			return nil, fmt.Errorf("%w: backbone rate limiting needs a routed topology", ErrUnsupported)
		}
		alpha, err := routing.Build(g).PathCoverage(sim.DeployBackbone(roles))
		if err != nil {
			return nil, fmt.Errorf("core: coverage: %w", err)
		}
		m := model.BackboneRL{Beta: s.Worm.Beta, Alpha: alpha, R: s.Defense.rate, N: n, I0: i0}
		return m, m.Validate()
	default:
		return nil, fmt.Errorf("%w: no analytical model for defense %q", ErrUnsupported, s.Defense.kind)
	}
}
