// Package core is the library facade: a Scenario ties together a
// topology, a worm, a rate-limiting defense deployment, and an optional
// immunization process, and can be run both as a packet-level
// simulation and as the paper's matching analytical model. It is the
// one-import entry point for downstream users; the specialised packages
// (model, sim, trace, ratelimit) remain available for finer control.
//
//	sc := core.Scenario{
//	    Topology: core.PowerLaw(1000),
//	    Worm:     core.RandomWorm(0.8),
//	    Defense:  core.BackboneRateLimit(0.4),
//	}
//	res, err := sc.Simulate(10)
//
// Long batches take a context and run options:
//
//	res, err := sc.SimulateContext(ctx, 10,
//	    core.WithJobs(4),
//	    core.WithTimeout(time.Minute),
//	    core.WithProgress(func(s runner.Stats) { ... }))
package core

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/routing"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/worm"
)

// TopologySpec describes how to build the network.
type TopologySpec struct {
	kind     string
	n        int
	m        int
	hier     topology.HierarchicalConfig
	twolevel topology.TwoLevelConfig
}

// Star specifies an n-node star (one hub, n-1 leaves).
func Star(n int) TopologySpec { return TopologySpec{kind: "star", n: n} }

// PowerLaw specifies an n-node preferential-attachment (AS-like) graph.
func PowerLaw(n int) TopologySpec { return TopologySpec{kind: "powerlaw", n: n, m: 1} }

// PowerLawM specifies a preferential-attachment graph with m edges per
// new node.
func PowerLawM(n, m int) TopologySpec { return TopologySpec{kind: "powerlaw", n: n, m: m} }

// Enterprise specifies an explicit backbone/edge/subnet hierarchy.
func Enterprise(cfg topology.HierarchicalConfig) TopologySpec {
	return TopologySpec{kind: "hier", hier: cfg}
}

// ASInternet specifies a BRITE-style two-level topology: a power-law
// AS core whose stub ASes each serve a host subnet.
func ASInternet(cfg topology.TwoLevelConfig) TopologySpec {
	return TopologySpec{kind: "twolevel", twolevel: cfg}
}

// WormSpec describes the worm's contact rate and targeting.
type WormSpec struct {
	// Beta is the per-scan infection probability (the paper's β).
	Beta float64
	// ScansPerTick is the scan attempts per tick (default 1).
	ScansPerTick int
	// ProbeFirst makes the worm ping targets and await the reply before
	// exploiting (Welchia's behaviour).
	ProbeFirst bool
	// strategy builds the target picker.
	strategy worm.Factory
	// localPref is recorded for the analytic mapping.
	localPref float64
	err       error
}

// RandomWorm scans uniformly random targets (Code Red style).
func RandomWorm(beta float64) WormSpec {
	return WormSpec{Beta: beta, strategy: worm.NewRandomFactory()}
}

// LocalPreferentialWorm scans its own subnet with probability p
// (Blaster/Welchia style).
func LocalPreferentialWorm(beta, p float64) WormSpec {
	f, err := worm.NewLocalPreferentialFactory(p)
	return WormSpec{Beta: beta, strategy: f, localPref: p, err: err}
}

// SequentialWorm walks the address space in order.
func SequentialWorm(beta float64) WormSpec {
	return WormSpec{Beta: beta, strategy: worm.NewSequentialFactory()}
}

// DefenseSpec describes a rate-limiting deployment.
type DefenseSpec struct {
	kind     string
	fraction float64 // host deployment fraction
	rate     float64 // link rate or filtered scan rate
	cap      int     // node cap for hub defenses
}

// NoDefense leaves the network open.
func NoDefense() DefenseSpec { return DefenseSpec{kind: "none"} }

// HostRateLimit installs Williamson-style throttles on a fraction of
// hosts, cutting their scan rate to beta2.
func HostRateLimit(fraction, beta2 float64) DefenseSpec {
	return DefenseSpec{kind: "host", fraction: fraction, rate: beta2}
}

// EdgeRateLimit limits every subnet uplink to rate packets/tick.
func EdgeRateLimit(rate float64) DefenseSpec {
	return DefenseSpec{kind: "edge", rate: rate}
}

// BackboneRateLimit limits every backbone-incident link to rate
// packets/tick.
func BackboneRateLimit(rate float64) DefenseSpec {
	return DefenseSpec{kind: "backbone", rate: rate}
}

// HubCap caps the star hub's forwarding at cap packets/tick.
func HubCap(cap int) DefenseSpec { return DefenseSpec{kind: "hub", cap: cap} }

// QuarantineSpec configures dynamic (detection-triggered) activation of
// the scenario's defense.
type QuarantineSpec struct {
	// TriggerScansPerTick fires the detector when one tick carries this
	// many worm packets.
	TriggerScansPerTick int
	// Delay is the detection-to-deployment lag in ticks.
	Delay int
}

// ImmunizationSpec configures delayed patching.
type ImmunizationSpec struct {
	// StartLevel triggers patching when the infected fraction reaches
	// this level (used when StartTick is 0 or negative).
	StartLevel float64
	// StartTick triggers patching at a fixed tick when positive.
	StartTick int
	// Mu is the per-tick patch probability.
	Mu float64
}

// Scenario is a complete experiment description. Zero values get
// sensible defaults where noted.
type Scenario struct {
	Topology TopologySpec
	Worm     WormSpec
	Defense  DefenseSpec
	// Immunize enables delayed patching when non-nil.
	Immunize *ImmunizationSpec
	// DynamicQuarantine, when non-nil, keeps the Defense inactive until
	// the worm is detected (the paper's title scenario): the defense
	// engages when any single tick carries at least TriggerScansPerTick
	// worm packets, after Delay further ticks.
	DynamicQuarantine *QuarantineSpec
	// Ticks is the horizon (default 150).
	Ticks int
	// Seed fixes the randomness (default 1).
	Seed int64
	// InitialInfected seeds the epidemic (default 1).
	InitialInfected int
	// MaxQueue bounds link buffers (default 50).
	MaxQueue int
	// Workers shards each replica's per-tick work across this many
	// goroutines (0 or 1 = serial). The series is byte-identical for
	// every worker count — see DESIGN.md §12; this is a throughput knob
	// for large topologies, orthogonal to WithJobs (replica
	// parallelism).
	Workers int
}

// ErrUnsupported reports a scenario combination with no implementation.
var ErrUnsupported = errors.New("core: unsupported scenario combination")

// seed returns the scenario's effective random seed (default 1).
func (s *Scenario) seed() int64 {
	if s.Seed == 0 {
		return 1
	}
	return s.Seed
}

// materialize builds the scenario's concrete topology with roles and
// subnet partition (nil roles/subnet for unrouted topologies). Both the
// simulation config and the analytical mapping derive from the same
// materialized graph, so they agree on every structural quantity.
func (s *Scenario) materialize() (*topology.Graph, []topology.Role, []int, error) {
	var (
		g      *topology.Graph
		roles  []topology.Role
		subnet []int
		err    error
	)
	switch s.Topology.kind {
	case "star":
		g, err = topology.Star(s.Topology.n)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: topology: %w", err)
		}
	case "powerlaw":
		g, err = topology.BarabasiAlbert(s.Topology.n, s.Topology.m, rand.New(rand.NewSource(s.seed())))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: topology: %w", err)
		}
		roles, err = topology.AssignRoles(g, topology.PaperRoles)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: roles: %w", err)
		}
		subnet = topology.Subnets(g, roles)
	case "hier":
		g, roles, subnet, err = topology.Hierarchical(s.Topology.hier)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: topology: %w", err)
		}
	case "twolevel":
		g, roles, subnet, err = topology.TwoLevel(s.Topology.twolevel, rand.New(rand.NewSource(s.seed())))
		if err != nil {
			return nil, nil, nil, fmt.Errorf("core: topology: %w", err)
		}
	default:
		return nil, nil, nil, errors.New("core: scenario needs a topology (use Star, PowerLaw, Enterprise, ASInternet)")
	}
	return g, roles, subnet, nil
}

// build materializes the simulation config.
func (s *Scenario) build() (sim.Config, error) {
	var cfg sim.Config
	if s.Worm.err != nil {
		return cfg, fmt.Errorf("core: worm: %w", s.Worm.err)
	}
	if s.Worm.strategy == nil {
		return cfg, errors.New("core: scenario needs a worm (use RandomWorm et al.)")
	}

	g, roles, subnet, err := s.materialize()
	if err != nil {
		return cfg, err
	}
	seed := s.seed()

	ticks := s.Ticks
	if ticks == 0 {
		ticks = 150
	}
	initial := s.InitialInfected
	if initial == 0 {
		initial = 1
	}
	maxQ := s.MaxQueue
	if maxQ == 0 {
		maxQ = 50
	}
	cfg = sim.Config{
		Graph:           g,
		Roles:           roles,
		Subnet:          subnet,
		Beta:            s.Worm.Beta,
		ScansPerTick:    s.Worm.ScansPerTick,
		ProbeFirst:      s.Worm.ProbeFirst,
		Strategy:        s.Worm.strategy,
		InitialInfected: initial,
		Ticks:           ticks,
		Seed:            seed,
		MaxQueue:        maxQ,
		Workers:         s.Workers,
	}

	switch s.Defense.kind {
	case "", "none":
	case "host":
		hosts, err := sim.DeployHostFraction(g, roles, s.Defense.fraction, seed)
		if err != nil {
			return cfg, fmt.Errorf("core: defense: %w", err)
		}
		o := make(map[int]float64, len(hosts))
		for _, h := range hosts {
			o[h] = s.Defense.rate
		}
		cfg.ScanRateOverride = o
	case "edge":
		if roles == nil {
			return cfg, fmt.Errorf("%w: edge rate limiting needs a routed topology", ErrUnsupported)
		}
		cfg.LimitedLinks = sim.DeployEdgeUplinks(g, roles, subnet)
		cfg.BaseRate = s.Defense.rate
	case "backbone":
		if roles == nil {
			return cfg, fmt.Errorf("%w: backbone rate limiting needs a routed topology", ErrUnsupported)
		}
		cfg.LimitedNodes = sim.DeployBackbone(roles)
		cfg.BaseRate = s.Defense.rate
	case "hub":
		if s.Topology.kind != "star" {
			return cfg, fmt.Errorf("%w: hub caps apply to star topologies", ErrUnsupported)
		}
		cfg.NodeCaps = map[int]int{topology.Hub: s.Defense.cap}
	default:
		return cfg, fmt.Errorf("%w: defense %q", ErrUnsupported, s.Defense.kind)
	}

	if s.Immunize != nil {
		im := &sim.Immunization{Mu: s.Immunize.Mu, StartTick: -1, StartLevel: s.Immunize.StartLevel}
		if s.Immunize.StartTick > 0 {
			im.StartTick = s.Immunize.StartTick
		}
		cfg.Immunize = im
	}
	if s.DynamicQuarantine != nil {
		cfg.Quarantine = &sim.Quarantine{
			TriggerScansPerTick: s.DynamicQuarantine.TriggerScansPerTick,
			Delay:               s.DynamicQuarantine.Delay,
		}
	}
	return cfg, nil
}

// RunOption tunes how SimulateContext executes a batch of replicas.
type RunOption func(*runConfig)

// runConfig is the resolved option set of one SimulateContext call.
type runConfig struct {
	jobs           int
	timeout        time.Duration
	progress       func(runner.Stats)
	collectors     func(run int) obs.Collector
	check          bool
	retries        int
	retryBackoff   time.Duration
	replicaTimeout time.Duration
	keepGoing      bool
	checkpointDir  string
	checkpointN    int
	resumePath     string
}

// WithJobs bounds the replica worker pool at n concurrent simulations
// (default GOMAXPROCS). The averaged result is identical for every job
// count; only wall time changes.
func WithJobs(n int) RunOption {
	return func(c *runConfig) { c.jobs = n }
}

// WithTimeout aborts the batch after d, returning
// context.DeadlineExceeded. Zero or negative means no timeout.
func WithTimeout(d time.Duration) RunOption {
	return func(c *runConfig) { c.timeout = d }
}

// WithProgress installs a callback observing live runner.Stats (runs
// completed, ticks simulated, ticks/sec) after every finished replica.
func WithProgress(fn func(runner.Stats)) RunOption {
	return func(c *runConfig) { c.progress = fn }
}

// WithCollectors installs a per-replica metrics collector factory (see
// internal/obs): factory(r) builds replica r's collector before its
// engine starts. The factory is called from worker goroutines and must
// be safe for concurrent calls with distinct r.
func WithCollectors(factory func(run int) obs.Collector) RunOption {
	return func(c *runConfig) { c.collectors = factory }
}

// WithCheck runs every replica under the engine's per-tick invariant
// audit; a violated invariant aborts the batch with an error matching
// obs.ErrInvariant.
func WithCheck() RunOption {
	return func(c *runConfig) { c.check = true }
}

// WithRetry retries a failed replica (error, panic, or timeout) up to
// max extra attempts with exponential backoff from base (0 means
// 500ms) plus deterministic jitter. Combined with WithCheckpoints and
// WithResume, a retried replica restarts from its own last checkpoint
// rather than tick zero.
func WithRetry(max int, base time.Duration) RunOption {
	return func(c *runConfig) {
		c.retries = max
		c.retryBackoff = base
	}
}

// WithReplicaTimeout bounds the wall-clock time of one replica attempt;
// an attempt that exceeds it fails with runner.ErrTaskTimeout (and is
// retried under WithRetry).
func WithReplicaTimeout(d time.Duration) RunOption {
	return func(c *runConfig) { c.replicaTimeout = d }
}

// WithKeepGoing degrades gracefully instead of aborting the batch when
// a replica fails after its retries: the averaged result covers the
// replicas that completed, and SimulateStats' runner.Stats.Failures
// names what was lost. A batch where every replica failed still
// errors.
func WithKeepGoing() RunOption {
	return func(c *runConfig) { c.keepGoing = true }
}

// WithCheckpoints writes each replica's engine snapshot into dir (one
// file per replica, replica-NNN.ckpt) every `every` ticks (0 means
// 10), through the atomic safeio path: a crash mid-write never leaves
// a truncated checkpoint.
func WithCheckpoints(dir string, every int) RunOption {
	return func(c *runConfig) {
		c.checkpointDir = dir
		c.checkpointN = every
	}
}

// WithResume resumes each replica from a previously written
// checkpoint. path is either a checkpoint directory (each replica
// loads its own replica-NNN.ckpt; replicas without one start fresh)
// or, for single-replica batches, one checkpoint file. A checkpoint
// that exists but fails verification (corruption, version skew, or a
// config mismatch) fails the replica explicitly — it is never silently
// ignored.
func WithResume(path string) RunOption {
	return func(c *runConfig) { c.resumePath = path }
}

// checkpointFile is the per-replica checkpoint naming scheme shared by
// WithCheckpoints and WithResume.
func checkpointFile(dir string, run int) string {
	return filepath.Join(dir, fmt.Sprintf("replica-%03d.ckpt", run))
}

// Simulate runs the scenario `runs` times (averaging the series) and
// returns the per-tick result. It is SimulateContext with a background
// context and default options.
func (s *Scenario) Simulate(runs int) (*sim.Result, error) {
	return s.SimulateContext(context.Background(), runs)
}

// SimulateContext runs the scenario `runs` times on a bounded worker
// pool (averaging the series) and returns the per-tick result. Each
// replica seeds its RNG from the scenario seed plus its index, so the
// result is deterministic and independent of the job count. Cancelling
// ctx (or exceeding WithTimeout) aborts the batch between simulation
// ticks and returns the context's error.
func (s *Scenario) SimulateContext(ctx context.Context, runs int, opts ...RunOption) (*sim.Result, error) {
	res, _, err := s.SimulateStats(ctx, runs, opts...)
	return res, err
}

// SimulateStats is SimulateContext returning the batch's final
// runner.Stats (replicas completed/failed/retried, ticks simulated,
// failure details) alongside the averaged result, for callers that
// report batch health.
func (s *Scenario) SimulateStats(ctx context.Context, runs int, opts ...RunOption) (*sim.Result, runner.Stats, error) {
	var rc runConfig
	for _, o := range opts {
		o(&rc)
	}
	if rc.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rc.timeout)
		defer cancel()
	}
	cfg, err := s.build()
	if err != nil {
		return nil, runner.Stats{}, err
	}
	cfg.CollectorFactory = rc.collectors
	cfg.Check = rc.check
	if rc.checkpointDir != "" {
		if err := os.MkdirAll(rc.checkpointDir, 0o755); err != nil {
			return nil, runner.Stats{}, fmt.Errorf("core: checkpoint dir: %w", err)
		}
		cfg.CheckpointEvery = rc.checkpointN
		if cfg.CheckpointEvery <= 0 {
			cfg.CheckpointEvery = 10
		}
		dir := rc.checkpointDir
		cfg.CheckpointFactory = func(run int) func(*sim.Snapshot) error {
			path := checkpointFile(dir, run)
			return func(snap *sim.Snapshot) error { return sim.WriteSnapshot(path, snap) }
		}
	}
	if rc.resumePath != "" {
		resume := rc.resumePath
		info, statErr := os.Stat(resume)
		fromFile := statErr == nil && !info.IsDir()
		if fromFile && runs != 1 {
			return nil, runner.Stats{}, fmt.Errorf("core: -resume with a single checkpoint file needs runs=1, got %d (pass the checkpoint directory instead)", runs)
		}
		cfg.ResumeFactory = func(run int) (*sim.Snapshot, error) {
			path := checkpointFile(resume, run)
			if fromFile {
				path = resume
			}
			snap, err := sim.ReadSnapshot(path)
			if errors.Is(err, fs.ErrNotExist) {
				return nil, nil // no checkpoint for this replica: start fresh
			}
			return snap, err
		}
	}
	var ropts []runner.Option
	if rc.jobs > 0 {
		ropts = append(ropts, runner.WithJobs(rc.jobs))
	}
	if rc.progress != nil {
		ropts = append(ropts, runner.WithProgress(rc.progress))
	}
	if rc.retries > 0 {
		base := rc.retryBackoff
		if base <= 0 {
			base = 500 * time.Millisecond
		}
		ropts = append(ropts, runner.WithRetry(rc.retries, base))
	}
	if rc.replicaTimeout > 0 {
		ropts = append(ropts, runner.WithTaskTimeout(rc.replicaTimeout))
	}
	if rc.keepGoing {
		ropts = append(ropts, runner.WithKeepGoing())
	}
	return sim.MultiRunStats(ctx, cfg, runs, ropts...)
}

// Validate checks the scenario spec without running anything: topology
// construction, worm and defense compatibility, and every simulation
// parameter are verified, so spec errors surface before a batch is
// scheduled. A nil error means Simulate will not fail on the spec.
func (s *Scenario) Validate() error {
	cfg, err := s.build()
	if err != nil {
		return err
	}
	return cfg.Validate()
}

// specNodes computes the scenario topology's node count from the spec
// alone, without materializing the graph.
func (s *Scenario) specNodes() (int, error) {
	switch s.Topology.kind {
	case "star", "powerlaw":
		return s.Topology.n, nil
	case "hier":
		h := s.Topology.hier
		return h.Backbones + h.Backbones*h.EdgesPer*(1+h.HostsPerSubnet), nil
	case "twolevel":
		tl := s.Topology.twolevel
		nTransit := int(tl.TransitFraction * float64(tl.ASes))
		if tl.TransitFraction > 0 && nTransit == 0 {
			nTransit = 1
		}
		return tl.ASes + (tl.ASes-nTransit)*tl.HostsPerStub, nil
	default:
		return 0, errors.New("core: scenario needs a topology")
	}
}

// Warnings reports advisory (non-fatal) spec issues: configurations
// that will run correctly but probably not the way the user hoped.
// Currently it flags intra-run workers on topologies too small to
// shard profitably — the result is identical either way (DESIGN.md
// §12), but the goroutine handoff costs more than it saves below
// sim.MinShardNodes nodes.
func (s *Scenario) Warnings() []string {
	var warns []string
	if s.Workers > 1 {
		if n, err := s.specNodes(); err == nil && n > 0 && n < sim.MinShardNodes {
			warns = append(warns, fmt.Sprintf(
				"core: %d workers on a %d-node topology: sharding pays off above ~%d nodes; expect serial-or-worse speed (results are unaffected)",
				s.Workers, n, sim.MinShardNodes))
		}
	}
	return warns
}

// Model returns the paper's analytical model matching the scenario
// (topology size N, worm β, defense), where one exists. Scenarios with
// no closed-form counterpart return ErrUnsupported.
func (s *Scenario) Model() (model.Curve, error) {
	if s.Worm.strategy == nil {
		return nil, errors.New("core: scenario needs a worm")
	}
	nodes, err := s.specNodes()
	if err != nil {
		return nil, err
	}
	n := float64(nodes)
	i0 := float64(s.InitialInfected)
	if i0 == 0 {
		i0 = 1
	}
	switch s.Defense.kind {
	case "", "none":
		m := model.Homogeneous{Beta: s.Worm.Beta, N: n, I0: i0}
		return m, m.Validate()
	case "host":
		m := model.HostRL{
			Q: s.Defense.fraction, Beta1: s.Worm.Beta, Beta2: s.Defense.rate, N: n, I0: i0,
		}
		return m, m.Validate()
	case "hub":
		m := model.HubRL{Beta: float64(s.Defense.cap), Gamma: s.Worm.Beta, N: n, I0: i0}
		return m, m.Validate()
	case "backbone":
		// Measure the coverage α of Equation 6 on the scenario's actual
		// topology: the fraction of source–destination paths that
		// transit a backbone router, computed from the same routing
		// tables the simulation forwards packets over. The analytic
		// counterpart then matches the simulated deployment with no
		// free parameter.
		g, roles, _, err := s.materialize()
		if err != nil {
			return nil, err
		}
		if roles == nil {
			return nil, fmt.Errorf("%w: backbone rate limiting needs a routed topology", ErrUnsupported)
		}
		alpha, err := routing.Build(g).PathCoverage(sim.DeployBackbone(roles))
		if err != nil {
			return nil, fmt.Errorf("core: coverage: %w", err)
		}
		m := model.BackboneRL{Beta: s.Worm.Beta, Alpha: alpha, R: s.Defense.rate, N: n, I0: i0}
		return m, m.Validate()
	default:
		return nil, fmt.Errorf("%w: no analytical model for defense %q", ErrUnsupported, s.Defense.kind)
	}
}
