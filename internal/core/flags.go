package core

import (
	"flag"
	"strconv"
	"time"
)

// BindRunFlags registers one command-line flag per RunOptions knob on
// fs, storing parsed values directly into o. Both CLIs (wormsim,
// figures) bind their run flags through this single helper, so every
// knob exists on every command with one name, one type, and one help
// string; o's pre-set fields become the flag defaults, which is how the
// CLIs keep their different keep-going defaults. Progress, Collectors,
// and Net are runtime hooks, not flags, and are left untouched.
func BindRunFlags(fs *flag.FlagSet, o *RunOptions) {
	fs.IntVar(&o.Jobs, "jobs", o.Jobs, "max concurrent replica simulations (0 = GOMAXPROCS)")
	fs.IntVar(&o.Workers, "workers", o.Workers, "goroutines sharding each replica's per-tick work (0 = serial; results are identical for every value)")
	fs.DurationVar(&o.Timeout, "timeout", o.Timeout, "abort the whole batch after this duration (0 = none)")
	fs.BoolVar(&o.Check, "check", o.Check, "run every replica under the per-tick invariant audit (slower; catches engine bugs)")
	fs.BoolVar(&o.KeepGoing, "keep-going", o.KeepGoing, "average over completed replicas when some fail instead of aborting the batch")
	fs.IntVar(&o.Retries, "retries", o.Retries, "retry a failed replica up to this many extra attempts")
	fs.DurationVar(&o.RetryBackoff, "retry-backoff", o.RetryBackoff, "base delay of the exponential retry backoff (0 = 500ms)")
	fs.DurationVar(&o.ReplicaTimeout, "replica-timeout", o.ReplicaTimeout, "wall-clock bound per replica attempt (0 = none)")
	fs.StringVar(&o.Checkpoint, "checkpoint", o.Checkpoint, "directory for periodic per-replica snapshots (empty = off)")
	fs.IntVar(&o.CheckpointEvery, "checkpoint-every", o.CheckpointEvery, "ticks between checkpoints (0 = default 10)")
	fs.StringVar(&o.Resume, "resume", o.Resume, "resume replicas from this checkpoint directory (or single .ckpt file when runs=1)")
	fs.IntVar(&o.StructuralThreshold, "structural-threshold", o.StructuralThreshold, "node count at which routing switches to the structural router (0 = library default, -1 = dense table at every size; results are identical)")
	fs.Func("trace-replay", "drive scans from a trace-replay workload: a trace file path, or 'synthetic' for the generator's traffic profile (empty = β draws)", func(v string) error {
		w := ensureWorkload(o)
		if v == WorkloadSynthetic {
			w.Kind, w.Path = WorkloadSynthetic, ""
		} else {
			w.Kind, w.Path = WorkloadTrace, v
		}
		return nil
	})
	fs.Func("trace-tick-ms", "trace milliseconds one engine tick spans under -trace-replay (0 = 1000)", func(v string) error {
		ms, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return err
		}
		ensureWorkload(o).TickMS = ms
		return nil
	})
}

// ensureWorkload returns o's workload spec, allocating it on first use
// so the two -trace-* flags compose in either order.
func ensureWorkload(o *RunOptions) *WorkloadSpec {
	if o.Workload == nil {
		o.Workload = &WorkloadSpec{}
	}
	return o.Workload
}

// runFlagNames lists the flags BindRunFlags registers, in registration
// order, so MergeRunFlags can tell explicitly-set flags apart from
// defaults.
var runFlagNames = map[string]bool{
	"jobs": true, "workers": true, "timeout": true, "check": true,
	"keep-going": true, "retries": true, "retry-backoff": true,
	"replica-timeout": true, "checkpoint": true, "checkpoint-every": true,
	"resume": true, "structural-threshold": true,
	"trace-replay": true, "trace-tick-ms": true,
}

// MergeRunFlags overlays the run flags the user explicitly set on the
// command line onto base and returns the result. This is how a spec
// file and the command line compose: the spec's run section supplies
// base, and only flags actually present in the invocation override it —
// an untouched flag's default never clobbers a spec value. fs must have
// been populated by BindRunFlags(fs, cli) and parsed.
func MergeRunFlags(fs *flag.FlagSet, base, cli RunOptions) RunOptions {
	out := base
	fs.Visit(func(f *flag.Flag) {
		if !runFlagNames[f.Name] {
			return
		}
		switch f.Name {
		case "jobs":
			out.Jobs = cli.Jobs
		case "workers":
			out.Workers = cli.Workers
		case "timeout":
			out.Timeout = cli.Timeout
		case "check":
			out.Check = cli.Check
		case "keep-going":
			out.KeepGoing = cli.KeepGoing
		case "retries":
			out.Retries = cli.Retries
		case "retry-backoff":
			out.RetryBackoff = cli.RetryBackoff
		case "replica-timeout":
			out.ReplicaTimeout = cli.ReplicaTimeout
		case "checkpoint":
			out.Checkpoint = cli.Checkpoint
		case "checkpoint-every":
			out.CheckpointEvery = cli.CheckpointEvery
		case "resume":
			out.Resume = cli.Resume
		case "structural-threshold":
			out.StructuralThreshold = cli.StructuralThreshold
		case "trace-replay":
			// The flag decides the source; everything else (tick
			// mapping, populations) stays with the spec's workload.
			w := out.Workload.clone()
			if w == nil {
				w = &WorkloadSpec{}
			}
			w.Kind, w.Path = cli.Workload.Kind, cli.Workload.Path
			out.Workload = w
		case "trace-tick-ms":
			w := out.Workload.clone()
			if w == nil {
				w = &WorkloadSpec{}
			}
			w.TickMS = cli.Workload.TickMS
			out.Workload = w
		}
	})
	return out
}

// DefaultRetryBackoff is the base delay RunnerOptions substitutes when
// Retries is set but RetryBackoff is zero.
const DefaultRetryBackoff = 500 * time.Millisecond
