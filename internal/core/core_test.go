package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestScenarioSimulateStar(t *testing.T) {
	sc := Scenario{
		Topology: Star(100),
		Worm:     RandomWorm(0.8),
		Ticks:    120,
	}
	res, err := sc.Simulate(3)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.FinalInfected() < 0.95 {
		t.Errorf("open star should saturate: %v", res.FinalInfected())
	}
}

func TestScenarioHubDefense(t *testing.T) {
	open := Scenario{Topology: Star(100), Worm: RandomWorm(0.8), Ticks: 250}
	capped := open
	capped.Defense = HubCap(2)
	ro, err := open.Simulate(3)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := capped.Simulate(3)
	if err != nil {
		t.Fatal(err)
	}
	if !(rc.TimeToLevel(0.5) > 1.5*ro.TimeToLevel(0.5)) {
		t.Errorf("hub cap should slow the worm: %v vs %v",
			rc.TimeToLevel(0.5), ro.TimeToLevel(0.5))
	}
}

func TestScenarioPowerLawDefenses(t *testing.T) {
	base := Scenario{
		Topology: PowerLaw(300),
		Worm: func() WormSpec {
			w := RandomWorm(0.8)
			w.ScansPerTick = 10
			return w
		}(),
		Ticks: 120,
	}
	open, err := base.Simulate(2)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	bb := base
	bb.Defense = BackboneRateLimit(0.4)
	limited, err := bb.Simulate(2)
	if err != nil {
		t.Fatalf("backbone: %v", err)
	}
	if !(limited.TimeToLevel(0.5) > open.TimeToLevel(0.5)) {
		t.Errorf("backbone RL should slow: %v vs %v",
			limited.TimeToLevel(0.5), open.TimeToLevel(0.5))
	}
	edge := base
	edge.Defense = EdgeRateLimit(0.2)
	if _, err := edge.Simulate(2); err != nil {
		t.Fatalf("edge: %v", err)
	}
	host := base
	host.Defense = HostRateLimit(0.3, 0.01)
	if _, err := host.Simulate(2); err != nil {
		t.Fatalf("host: %v", err)
	}
}

func TestScenarioEnterprise(t *testing.T) {
	sc := Scenario{
		Topology: Enterprise(topology.HierarchicalConfig{
			Backbones: 2, EdgesPer: 3, HostsPerSubnet: 20,
		}),
		Worm:  LocalPreferentialWorm(0.8, 0.8),
		Ticks: 150,
	}
	res, err := sc.Simulate(3)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.FinalInfected() < 0.9 {
		t.Errorf("open enterprise should saturate: %v", res.FinalInfected())
	}
}

func TestScenarioImmunization(t *testing.T) {
	sc := Scenario{
		Topology: PowerLaw(300),
		Worm:     RandomWorm(0.8),
		Immunize: &ImmunizationSpec{StartLevel: 0.2, Mu: 0.1},
		Ticks:    200,
	}
	res, err := sc.Simulate(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalEverInfected() >= 1 {
		t.Errorf("immunization should save some hosts: %v", res.FinalEverInfected())
	}
	if res.FinalInfected() > 0.05 {
		t.Errorf("epidemic should die out: %v", res.FinalInfected())
	}
	// Fixed-tick trigger path.
	sc.Immunize = &ImmunizationSpec{StartTick: 10, Mu: 0.1}
	if _, err := sc.Simulate(2); err != nil {
		t.Fatalf("fixed-tick immunization: %v", err)
	}
}

func TestScenarioASInternet(t *testing.T) {
	sc := Scenario{
		Topology: ASInternet(topology.TwoLevelConfig{
			ASes: 40, AttachM: 1, TransitFraction: 0.1, HostsPerStub: 6,
		}),
		Worm:    SequentialWorm(0.8),
		Defense: NoDefense(),
		Ticks:   500, // sequential scanning covers the space slowly
	}
	res, err := sc.Simulate(3)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.FinalInfected() < 0.9 {
		t.Errorf("open AS-internet should saturate, got %v", res.FinalInfected())
	}
	// The analytical mapping knows the expanded population size.
	m, err := sc.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	hm, ok := m.(model.Homogeneous)
	if !ok {
		t.Fatalf("model type %T", m)
	}
	if want := 40.0 + 36*6; hm.N != want {
		t.Errorf("model N = %v, want %v", hm.N, want)
	}
	// Backbone defense works on the two-level topology too.
	sc.Defense = BackboneRateLimit(0.4)
	if _, err := sc.Simulate(2); err != nil {
		t.Fatalf("backbone on AS-internet: %v", err)
	}
}

func TestScenarioPowerLawM(t *testing.T) {
	sc := Scenario{Topology: PowerLawM(200, 2), Worm: RandomWorm(0.8), Ticks: 60}
	res, err := sc.Simulate(2)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.FinalInfected() < 0.9 {
		t.Errorf("m=2 power law should saturate, got %v", res.FinalInfected())
	}
}

func TestScenarioModelErrors(t *testing.T) {
	// Model without a worm.
	sc := Scenario{Topology: Star(10)}
	if _, err := sc.Model(); err == nil {
		t.Error("model without worm should fail")
	}
	// Model without a topology.
	sc = Scenario{Worm: RandomWorm(0.5)}
	if _, err := sc.Model(); err == nil {
		t.Error("model without topology should fail")
	}
	// Enterprise population arithmetic.
	sc = Scenario{
		Topology: Enterprise(topology.HierarchicalConfig{
			Backbones: 2, EdgesPer: 3, HostsPerSubnet: 10,
		}),
		Worm: RandomWorm(0.5),
	}
	m, err := sc.Model()
	if err != nil {
		t.Fatal(err)
	}
	if hm := m.(model.Homogeneous); hm.N != 2+6+60 {
		t.Errorf("enterprise model N = %v, want 68", hm.N)
	}
}

func TestScenarioErrors(t *testing.T) {
	if _, err := (&Scenario{Worm: RandomWorm(0.8)}).Simulate(1); err == nil {
		t.Error("missing topology should fail")
	}
	if _, err := (&Scenario{Topology: Star(10)}).Simulate(1); err == nil {
		t.Error("missing worm should fail")
	}
	bad := Scenario{Topology: Star(10), Worm: LocalPreferentialWorm(0.8, 2)}
	if _, err := bad.Simulate(1); err == nil {
		t.Error("invalid worm spec should fail")
	}
	hubOnPL := Scenario{Topology: PowerLaw(50), Worm: RandomWorm(0.5), Defense: HubCap(2)}
	if _, err := hubOnPL.Simulate(1); !errors.Is(err, ErrUnsupported) {
		t.Errorf("hub cap on power-law should be unsupported, got %v", err)
	}
	edgeOnStar := Scenario{Topology: Star(10), Worm: RandomWorm(0.5), Defense: EdgeRateLimit(1)}
	if _, err := edgeOnStar.Simulate(1); !errors.Is(err, ErrUnsupported) {
		t.Errorf("edge RL on star should be unsupported, got %v", err)
	}
}

func TestScenarioDynamicQuarantine(t *testing.T) {
	worm10 := RandomWorm(0.8)
	worm10.ScansPerTick = 10
	sc := Scenario{
		Topology:          PowerLaw(400),
		Worm:              worm10,
		Defense:           BackboneRateLimit(0.4),
		DynamicQuarantine: &QuarantineSpec{TriggerScansPerTick: 40, Delay: 2},
		Ticks:             200,
		InitialInfected:   3,
	}
	res, err := sc.Simulate(3)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.QuarantineTick <= 0 {
		t.Errorf("dynamic quarantine never engaged: tick %d", res.QuarantineTick)
	}
}

func TestScenarioModelMapping(t *testing.T) {
	sc := Scenario{Topology: Star(200), Worm: RandomWorm(0.8)}
	m, err := sc.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	if _, ok := m.(model.Homogeneous); !ok {
		t.Errorf("open scenario should map to Homogeneous, got %T", m)
	}
	sc.Defense = HostRateLimit(0.3, 0.01)
	m, err = sc.Model()
	if err != nil {
		t.Fatal(err)
	}
	hm, ok := m.(model.HostRL)
	if !ok || hm.Q != 0.3 {
		t.Errorf("host defense should map to HostRL{Q:0.3}, got %#v", m)
	}
	sc.Defense = HubCap(2)
	if _, err := sc.Model(); err != nil {
		t.Errorf("hub model: %v", err)
	}
	// Backbone RL on an unrouted star is unsupported, matching Simulate.
	sc.Defense = BackboneRateLimit(0.4)
	if _, err := sc.Model(); !errors.Is(err, ErrUnsupported) {
		t.Errorf("backbone model on star should be unsupported, got %v", err)
	}
	sc.Defense = EdgeRateLimit(0.4)
	if _, err := sc.Model(); !errors.Is(err, ErrUnsupported) {
		t.Errorf("edge defense has no single closed form, got %v", err)
	}
}

// TestModelBackboneAlphaMeasured guards the Alpha bugfix: the analytic
// backbone model must carry the path coverage measured on the
// scenario's actual topology, not a hardcoded constant.
func TestModelBackboneAlphaMeasured(t *testing.T) {
	sc := Scenario{
		Topology: PowerLaw(300),
		Worm:     RandomWorm(0.8),
		Defense:  BackboneRateLimit(0.4),
		Seed:     4,
	}
	m, err := sc.Model()
	if err != nil {
		t.Fatalf("Model: %v", err)
	}
	bb, ok := m.(model.BackboneRL)
	if !ok {
		t.Fatalf("model type %T, want BackboneRL", m)
	}
	if bb.Alpha <= 0 || bb.Alpha > 1 {
		t.Fatalf("alpha = %v, want in (0,1]", bb.Alpha)
	}
	// Cross-check against a direct measurement on the same topology.
	g, roles, _, err := sc.materialize()
	if err != nil {
		t.Fatal(err)
	}
	want, err := routing.Build(g).PathCoverage(sim.DeployBackbone(roles))
	if err != nil {
		t.Fatal(err)
	}
	if bb.Alpha != want {
		t.Errorf("alpha = %v, want measured coverage %v", bb.Alpha, want)
	}
	// On the paper's power-law topology nearly all inter-host paths
	// transit the top-degree core.
	if bb.Alpha < 0.5 {
		t.Errorf("alpha = %v, expected the core to cover most paths", bb.Alpha)
	}
}

// Cross-validation: the simulated open epidemic should roughly track
// the analytical logistic in time-to-half (within a small factor; the
// sim adds per-hop latency the model lacks).
func TestScenarioSimVsModel(t *testing.T) {
	sc := Scenario{Topology: Star(200), Worm: RandomWorm(0.8), Ticks: 60, Seed: 5}
	res, err := sc.Simulate(5)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sc.Model()
	if err != nil {
		t.Fatal(err)
	}
	simT50 := res.TimeToLevel(0.5)
	modelT50 := m.(model.Homogeneous).TimeToLevel(0.5)
	if math.IsNaN(simT50) {
		t.Fatal("sim never reached 50%")
	}
	ratio := simT50 / modelT50
	if ratio < 0.8 || ratio > 3 {
		t.Errorf("sim/model t50 ratio = %v (sim %v, model %v), want within ~2-hop latency",
			ratio, simT50, modelT50)
	}
}
