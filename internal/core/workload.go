package core

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Workload kinds.
const (
	// WorkloadSynthetic streams the trace generator's four-class traffic
	// profile (internal/trace.GenConfig) directly, without materializing
	// a trace file.
	WorkloadSynthetic = "synthetic"
	// WorkloadTrace replays a serialized trace file (the tracegen /
	// trace.WriteTo format).
	WorkloadTrace = "trace"
)

// paperClassTotal is the trace generator's paper population (999
// normal + 17 servers + 33 P2P + 79 infected hosts); the synthetic
// workload defaults scale this mix down to the scenario's host count.
const paperClassTotal = trace.PaperNormalClients + trace.PaperServers +
	trace.PaperP2PClients + trace.PaperInfected

// WorkloadSpec replaces the engine's β-draw scan source with a
// trace-replay workload: worm scans and benign background flows
// (normal clients, servers, P2P) stream tick by tick from a trace and
// compete for the same rate-limiter credits, so a run measures
// collateral damage — benign traffic a defense falsely throttles —
// alongside containment. The trace's millisecond timeline maps onto
// engine ticks via TickMS (tick t covers [t·TickMS, (t+1)·TickMS)).
//
// Replay replaces scan generation only: the scenario's worm section
// still defines Beta for the analytic model and the target strategy
// required by checkpoint restore, but neither is consulted for scans
// during replay.
type WorkloadSpec struct {
	// Kind selects the source: WorkloadSynthetic or WorkloadTrace.
	Kind string
	// Path is the trace file for WorkloadTrace.
	Path string
	// TickMS is the trace time one engine tick spans (0 = 1000, one
	// simulated second per tick).
	TickMS int64
	// DurationMS bounds the synthetic stream (0 = the scenario horizon,
	// Ticks·TickMS).
	DurationMS int64
	// Seed drives the synthetic generator (0 = the scenario seed).
	Seed int64
	// Normal, Servers, P2P, and Infected are the synthetic class
	// populations. All zero means the paper's traffic mix scaled down
	// to the scenario's host count.
	Normal, Servers, P2P, Infected int
	// BlasterFraction of the synthetic infected hosts run Blaster; the
	// rest run Welchia.
	BlasterFraction float64
	// WormOnsetMS is when synthetic infected hosts begin scanning.
	WormOnsetMS int64
}

// Validate checks the workload spec; error messages name the
// command-line flags (BindRunFlags).
func (w *WorkloadSpec) Validate() error {
	switch w.Kind {
	case WorkloadSynthetic:
		if w.Path != "" {
			return fmt.Errorf("core: -trace-replay synthetic does not take a trace path (got %q)", w.Path)
		}
	case WorkloadTrace:
		if w.Path == "" {
			return fmt.Errorf("core: -trace-replay with a trace workload needs a trace file path")
		}
	case "":
		return fmt.Errorf("core: workload needs a source; pass -trace-replay synthetic or -trace-replay <trace file>")
	default:
		return fmt.Errorf("core: -trace-replay workload kind %q (want %q or a trace file path)", w.Kind, WorkloadSynthetic)
	}
	switch {
	case w.TickMS < 0:
		return fmt.Errorf("core: -trace-tick-ms must be >= 0 (0 = 1000), got %d", w.TickMS)
	case w.DurationMS < 0:
		return fmt.Errorf("core: workload duration_ms must be >= 0, got %d", w.DurationMS)
	case w.Normal < 0 || w.Servers < 0 || w.P2P < 0 || w.Infected < 0:
		return fmt.Errorf("core: workload class populations must be >= 0")
	case w.BlasterFraction < 0 || w.BlasterFraction > 1:
		return fmt.Errorf("core: workload blaster_fraction %v out of [0,1]", w.BlasterFraction)
	case w.WormOnsetMS < 0:
		return fmt.Errorf("core: workload worm_onset_ms must be >= 0, got %d", w.WormOnsetMS)
	}
	return nil
}

// clone returns a copy, so flag merging never mutates a spec-owned
// workload in place.
func (w *WorkloadSpec) clone() *WorkloadSpec {
	if w == nil {
		return nil
	}
	c := *w
	return &c
}

// tickMS returns the effective trace milliseconds per tick.
func (w *WorkloadSpec) tickMS() int64 {
	if w.TickMS == 0 {
		return 1000
	}
	return w.TickMS
}

// fileWorkload is a record replayer plus the file it streams, closed by
// the engine when the run finishes.
type fileWorkload struct {
	*trace.Replayer
	f *os.File
}

func (w *fileWorkload) Close() error { return w.f.Close() }

// replayHostNodes returns the simulation nodes trace hosts map onto:
// the topology's host-role nodes in ascending order (every node for
// unrouted topologies), capped at the trace format's host ceiling.
func replayHostNodes(cfg *sim.Config) []int {
	var hosts []int
	if cfg.Roles != nil {
		hosts = topology.NodesWithRole(cfg.Roles, topology.RoleHost)
	} else {
		hosts = make([]int, cfg.Graph.N())
		for i := range hosts {
			hosts[i] = i
		}
	}
	if len(hosts) > 1<<16 {
		hosts = hosts[:1<<16]
	}
	return hosts
}

// applyWorkload lowers the workload spec onto the simulation config:
// it builds the host map (trace host i → i-th host-role node), the
// workload factory, and — when the workload knows who is infected —
// replaces random seeding with the trace's infected set.
func applyWorkload(cfg *sim.Config, w *WorkloadSpec) error {
	if err := w.Validate(); err != nil {
		return err
	}
	tick := w.tickMS()
	hostNodes := replayHostNodes(cfg)
	if len(hostNodes) == 0 {
		return fmt.Errorf("core: trace replay needs host nodes; the topology has none")
	}

	var (
		hostMap   []int32
		wormHosts []int
		factory   func() (sim.Workload, error)
	)
	switch w.Kind {
	case WorkloadSynthetic:
		gen := trace.GenConfig{
			Duration:        w.DurationMS,
			Seed:            w.Seed,
			NormalClients:   w.Normal,
			Servers:         w.Servers,
			P2PClients:      w.P2P,
			Infected:        w.Infected,
			BlasterFraction: w.BlasterFraction,
			WormOnset:       w.WormOnsetMS,
		}
		if gen.Duration == 0 {
			gen.Duration = int64(cfg.Ticks) * tick
		}
		if gen.Seed == 0 {
			gen.Seed = cfg.Seed
		}
		if gen.NormalClients+gen.Servers+gen.P2PClients+gen.Infected == 0 {
			scalePaperClasses(&gen, len(hostNodes))
		}
		if gen.NumHosts() > len(hostNodes) {
			return fmt.Errorf("core: workload has %d trace hosts but the topology has %d host nodes",
				gen.NumHosts(), len(hostNodes))
		}
		// Build one stream eagerly so bad parameters surface as a config
		// error, not inside a replica.
		if _, err := trace.NewSyntheticReplayer(gen, tick); err != nil {
			return fmt.Errorf("core: workload: %w", err)
		}
		hostMap = make([]int32, gen.NumHosts())
		wormHosts = gen.HostsOfClass(trace.ClassInfected)
		factory = func() (sim.Workload, error) {
			return trace.NewSyntheticReplayer(gen, tick)
		}
	case WorkloadTrace:
		var err error
		wormHosts, err = scanWormHosts(w.Path, len(hostNodes))
		if err != nil {
			return err
		}
		hostMap = make([]int32, len(hostNodes))
		path := w.Path
		factory = func() (sim.Workload, error) {
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			rp, err := trace.NewRecordReplayer(f, tick)
			if err != nil {
				f.Close()
				return nil, err
			}
			return &fileWorkload{Replayer: rp, f: f}, nil
		}
	}
	for i := range hostMap {
		hostMap[i] = int32(hostNodes[i])
	}
	cfg.Replay = &sim.ReplayConfig{
		NewWorkload: factory,
		Hosts:       hostMap,
		WormHosts:   wormHosts,
	}
	if len(wormHosts) > 0 {
		// The trace decides who is infected; random seeding is off. A
		// workload with no worm traffic keeps the scenario's random
		// seeding — a benign-only baseline for false-throttle rates.
		cfg.InitialInfected = 0
	}
	return nil
}

// scalePaperClasses fills in the default synthetic populations: the
// paper's 999/17/33/79 mix scaled down to the scenario's host count,
// with at least one host per class.
func scalePaperClasses(gen *trace.GenConfig, hosts int) {
	if hosts < 4 {
		gen.NormalClients = hosts // too small for four classes: all normal
		return
	}
	scale := func(class int) int {
		n := hosts * class / paperClassTotal
		if n < 1 {
			n = 1
		}
		return n
	}
	gen.Servers = scale(trace.PaperServers)
	gen.P2PClients = scale(trace.PaperP2PClients)
	gen.Infected = scale(trace.PaperInfected)
	gen.NormalClients = hosts - gen.Servers - gen.P2PClients - gen.Infected
}

// scanWormHosts streams the trace once at config-build time and
// returns the ascending set of in-range hosts that emit worm flows
// (trace.WormFlow) — the trace's infected population, which replaces
// random seed placement so the simulation agrees with the trace about
// who scans.
func scanWormHosts(path string, limit int) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: workload trace: %w", err)
	}
	defer f.Close()
	seen := make(map[int]bool)
	err = trace.ReadFunc(f, func(rec *trace.Record) error {
		if h := trace.HostIndex(rec.Src); h >= 0 && h < limit && trace.WormFlow(rec) {
			seen[h] = true
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: workload trace %s: %w", path, err)
	}
	hosts := make([]int, 0, len(seen))
	for h := range seen {
		hosts = append(hosts, h)
	}
	sort.Ints(hosts)
	return hosts, nil
}
