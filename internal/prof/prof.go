// Package prof wires the standard Go CPU and heap profilers into the
// CLIs: every tool that runs simulations accepts -cpuprofile and
// -memprofile flags so hot-path regressions can be diagnosed on the
// exact workload that exposed them (`go tool pprof <binary> <file>`),
// not just on the benchmark suite.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath when non-empty and returns a
// stop function that finishes the CPU profile and, when memPath is
// non-empty, snapshots the heap there. Call stop exactly once after
// the profiled work; both paths empty makes Start and stop no-ops.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize final allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: write heap profile: %w", err)
			}
		}
		return nil
	}, nil
}
