package plot

import (
	"strings"
	"testing"
)

func sampleFigure() Figure {
	return Figure{
		Title:  "test figure",
		XLabel: "time",
		YLabel: "fraction",
		Series: []Series{
			{Label: "a", X: []float64{0, 1, 2}, Y: []float64{0, 0.5, 1}},
			{Label: "b", X: []float64{0, 1, 2}, Y: []float64{0, 0.2, 0.4}},
		},
	}
}

func TestWriteDat(t *testing.T) {
	f := sampleFigure()
	var b strings.Builder
	if err := f.WriteDat(&b); err != nil {
		t.Fatalf("WriteDat: %v", err)
	}
	out := b.String()
	for _, want := range []string{"# test figure", "# a", "# b", "1 0.5", "2 0.4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDatBadSeries(t *testing.T) {
	f := Figure{Series: []Series{{Label: "bad", X: []float64{1}, Y: nil}}}
	var b strings.Builder
	if err := f.WriteDat(&b); err == nil {
		t.Error("mismatched series should fail")
	}
}

func TestRenderASCII(t *testing.T) {
	f := sampleFigure()
	out, err := f.RenderASCII(60, 12)
	if err != nil {
		t.Fatalf("RenderASCII: %v", err)
	}
	if !strings.Contains(out, "test figure") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Error("no points plotted")
	}
}

func TestRenderASCIIErrors(t *testing.T) {
	f := sampleFigure()
	if _, err := f.RenderASCII(4, 2); err == nil {
		t.Error("tiny canvas should fail")
	}
	empty := Figure{Title: "empty"}
	if _, err := empty.RenderASCII(60, 10); err == nil {
		t.Error("empty figure should fail")
	}
}

func TestRenderASCIILogX(t *testing.T) {
	f := Figure{
		Title:  "log",
		XLabel: "t",
		YLabel: "v",
		LogX:   true,
		Series: []Series{{Label: "s", X: []float64{1, 10, 100, 1000}, Y: []float64{0, 1, 2, 3}}},
	}
	out, err := f.RenderASCII(60, 10)
	if err != nil {
		t.Fatalf("RenderASCII: %v", err)
	}
	if !strings.Contains(out, "(log10)") {
		t.Error("log scale not indicated")
	}
	// A zero x must not break the log transform.
	f.Series[0].X[0] = 0
	if _, err := f.RenderASCII(60, 10); err != nil {
		t.Errorf("log plot with zero x: %v", err)
	}
}

func TestRenderASCIIFlatSeries(t *testing.T) {
	f := Figure{
		Title:  "flat",
		Series: []Series{{Label: "c", X: []float64{1, 1}, Y: []float64{2, 2}}},
	}
	if _, err := f.RenderASCII(40, 6); err != nil {
		t.Errorf("degenerate ranges should still render: %v", err)
	}
}
