// Package plot renders labelled data series as terminal ASCII plots and
// writes them as gnuplot-style .dat files, the output format of the
// experiment harness (cmd/figures) and the benchmark reports.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labelled curve.
type Series struct {
	Label string
	X, Y  []float64
}

// Validate checks that X and Y are parallel and non-empty.
func (s *Series) Validate() error {
	if len(s.X) == 0 || len(s.X) != len(s.Y) {
		return fmt.Errorf("plot: series %q has %d/%d points", s.Label, len(s.X), len(s.Y))
	}
	return nil
}

// Figure is a set of series sharing axes.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	// LogX renders the x axis on a log10 scale (Figure 10 in the paper).
	LogX   bool
	Series []Series
}

// WriteDat writes the figure in gnuplot-friendly form: a comment header,
// then one block per series ("# label" followed by "x y" lines)
// separated by blank lines.
func (f *Figure) WriteDat(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n# x: %s\n# y: %s\n", f.Title, f.XLabel, f.YLabel); err != nil {
		return fmt.Errorf("plot: write header: %w", err)
	}
	for i := range f.Series {
		s := &f.Series[i]
		if err := s.Validate(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "\n# %s\n", s.Label); err != nil {
			return fmt.Errorf("plot: write series %q: %w", s.Label, err)
		}
		for k := range s.X {
			if _, err := fmt.Fprintf(w, "%g %g\n", s.X[k], s.Y[k]); err != nil {
				return fmt.Errorf("plot: write series %q: %w", s.Label, err)
			}
		}
	}
	return nil
}

// glyphs mark the successive series of an ASCII plot.
var glyphs = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// RenderASCII draws the figure as a width x height character plot with a
// legend, suitable for terminal inspection of curve shapes.
func (f *Figure) RenderASCII(width, height int) (string, error) {
	if width < 16 || height < 4 {
		return "", fmt.Errorf("plot: canvas %dx%d too small", width, height)
	}
	if len(f.Series) == 0 {
		return "", fmt.Errorf("plot: figure %q has no series", f.Title)
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i := range f.Series {
		s := &f.Series[i]
		if err := s.Validate(); err != nil {
			return "", err
		}
		for k := range s.X {
			x := f.xval(s.X[k])
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(s.Y[k]) {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, s.Y[k]), math.Max(maxY, s.Y[k])
		}
	}
	if minX > maxX || minY > maxY {
		return "", fmt.Errorf("plot: figure %q has no finite points", f.Title)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", width))
	}
	for i := range f.Series {
		s := &f.Series[i]
		g := glyphs[i%len(glyphs)]
		for k := range s.X {
			x := f.xval(s.X[k])
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(s.Y[k]) {
				continue
			}
			col := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((s.Y[k]-minY)/(maxY-minY)*float64(height-1)))
			if col >= 0 && col < width && row >= 0 && row < height {
				canvas[row][col] = g
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	for r, rowBytes := range canvas {
		yv := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%8.3f |%s|\n", yv, rowBytes)
	}
	xAxis := fmt.Sprintf("%-*s", width, fmt.Sprintf("%.6g%s%.6g", minX,
		strings.Repeat(" ", max(1, width-24)), maxX))
	fmt.Fprintf(&b, "%8s  %s\n", "", xAxis[:width])
	scale := ""
	if f.LogX {
		scale = " (log10)"
	}
	fmt.Fprintf(&b, "%8s  x: %s%s, y: %s\n", "", f.XLabel, scale, f.YLabel)
	for i := range f.Series {
		fmt.Fprintf(&b, "%8s  %c %s\n", "", glyphs[i%len(glyphs)], f.Series[i].Label)
	}
	return b.String(), nil
}

// xval applies the x-axis transform.
func (f *Figure) xval(x float64) float64 {
	if f.LogX {
		if x <= 0 {
			return math.NaN()
		}
		return math.Log10(x)
	}
	return x
}
