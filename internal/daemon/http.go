package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/spec"
)

// maxSpecBytes bounds a submitted spec body. Specs are small
// declarative documents; anything larger is a client error.
const maxSpecBytes = 1 << 20

// JobView is the JSON representation of a job over the HTTP API.
type JobView struct {
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	State       string `json:"state"`
	Priority    int    `json:"priority"`
	PointsTotal int    `json:"points_total"`
	PointsDone  int    `json:"points_done"`
	Error       string `json:"error,omitempty"`
	Submitted   string `json:"submitted,omitempty"`
	// Live batch progress of the current grid point, present while the
	// job runs.
	Ticks     int64 `json:"ticks,omitempty"`
	Completed int   `json:"completed,omitempty"`
	Runs      int   `json:"runs,omitempty"`
}

// ServerStats is the /stats payload.
type ServerStats struct {
	Jobs      map[string]int `json:"jobs"`
	Queued    int            `json:"queued"`
	Executors int            `json:"executors"`
	QueueCap  int            `json:"queue_cap"`
	// QueueHighWater is the deepest the queue has been since startup —
	// the sizing signal for QueueCap.
	QueueHighWater int `json:"queue_high_water"`
	// StreamDrops counts subscribers disconnected for falling behind a
	// job's progress stream (summed over the jobs still in the table).
	StreamDrops int64              `json:"stream_drops"`
	NetCache    spec.NetCacheStats `json:"net_cache"`
	Robustness  RobustnessStats    `json:"robustness"`
}

// RobustnessStats are the self-healing counters: what the scrubber,
// janitor, and watchdog have done since startup, and how the daemon has
// degraded under disk pressure.
type RobustnessStats struct {
	Quarantined      int64 `json:"quarantined"`
	TempCleaned      int64 `json:"temp_cleaned"`
	GCRemoved        int64 `json:"gc_removed"`
	CheckpointSkips  int64 `json:"checkpoint_skips"`
	PersistErrors    int64 `json:"persist_errors"`
	WatchdogStuck    int64 `json:"watchdog_stuck"`
	WatchdogRequeues int64 `json:"watchdog_requeues"`
}

// Handler returns the daemon's HTTP API:
//
//	POST   /jobs            submit a spec (JSON or YAML body; ?priority=N)
//	GET    /jobs            list jobs
//	GET    /jobs/{id}        one job's state
//	DELETE /jobs/{id}        cancel a job
//	GET    /jobs/{id}/stream progress stream (JSONL; SSE on Accept or ?sse=1)
//	GET    /jobs/{id}/result result.json of a finished job
//	GET    /stats            scheduler + topology-cache counters
//	GET    /healthz          liveness probe
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) newMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// handleHealthz is the liveness/readiness probe. "ok" is healthy;
// "degraded" means the daemon is serving but has quarantined artifacts,
// shed checkpoints, or failed persists worth an operator's look (still
// 200 — degraded is an alert, not an outage); "draining" (503) means
// Close has begun and new submissions are being rejected.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	status, code := "ok", http.StatusOK
	degraded := s.quarantined.Load() > 0 || s.checkpointSkips.Load() > 0 ||
		s.persistErrors.Load() > 0 || s.watchdogStuck.Load() > 0
	if degraded {
		status = "degraded"
	}
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"status": status})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	priority := 0
	if p := r.URL.Query().Get("priority"); p != "" {
		v, err := strconv.Atoi(p)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("priority %q: %w", p, err))
			return
		}
		priority = v
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if len(body) > maxSpecBytes {
		httpError(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("spec exceeds %d bytes", maxSpecBytes))
		return
	}
	j, err := s.Submit(body, priority)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Jittered so a herd of 429'd clients doesn't retry in lockstep
		// and slam the queue again on the same second.
		w.Header().Set("Retry-After", strconv.Itoa(1+rand.IntN(4)))
		httpError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+j.id)
	writeJSON(w, http.StatusCreated, s.view(j))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, s.view(j))
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	writeJSON(w, http.StatusOK, s.view(j))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	err := s.Cancel(id)
	switch {
	case errors.Is(err, ErrNotFound):
		httpError(w, http.StatusNotFound, err)
		return
	case errors.Is(err, ErrFinished):
		httpError(w, http.StatusConflict, err)
		return
	case err != nil:
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusAccepted, s.view(s.lookup(id)))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	s.mu.Lock()
	state := j.state
	s.mu.Unlock()
	if state != StateDone {
		httpError(w, http.StatusNotFound,
			fmt.Errorf("daemon: job %s is %s; result exists only for done jobs", j.id, state))
		return
	}
	data, err := os.ReadFile(filepath.Join(j.dir, "result.json"))
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleStream replays a job's record history and then follows the live
// stream until the job reaches a terminal state or the client goes
// away. Content negotiation: JSONL by default, server-sent events when
// the client asks (Accept: text/event-stream, or ?sse=1 for curl
// convenience).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, ErrNotFound)
		return
	}
	sse := r.URL.Query().Get("sse") == "1" ||
		strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
	}
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	write := func(rec StreamRecord) error {
		data, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		if sse {
			_, err = fmt.Fprintf(w, "data: %s\n\n", data)
		} else {
			_, err = fmt.Fprintf(w, "%s\n", data)
		}
		return err
	}

	history, live, stop := j.broker.subscribe()
	defer stop()
	for _, rec := range history {
		if write(rec) != nil {
			return
		}
	}
	flush()
	if live == nil {
		return // stream already ended; history included the terminal record
	}
	for {
		select {
		case rec, ok := <-live:
			if !ok {
				return // terminal record delivered (or subscriber dropped)
			}
			if write(rec) != nil {
				return
			}
			// Flush opportunistically: drain whatever is already queued
			// before paying the flush, so a fast producer doesn't force
			// a syscall per tick.
			if len(live) == 0 {
				flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	st := ServerStats{
		Jobs:           make(map[string]int),
		Queued:         s.queuedCount,
		Executors:      s.cfg.Executors,
		QueueCap:       s.cfg.QueueCap,
		QueueHighWater: s.queueHighWater,
	}
	for _, j := range s.jobs {
		st.Jobs[j.state]++
		st.StreamDrops += j.broker.dropped()
	}
	s.mu.Unlock()
	st.NetCache = s.cache.Stats()
	st.Robustness = RobustnessStats{
		Quarantined:      s.quarantined.Load(),
		TempCleaned:      s.tempCleaned.Load(),
		GCRemoved:        s.gcRemoved.Load(),
		CheckpointSkips:  s.checkpointSkips.Load(),
		PersistErrors:    s.persistErrors.Load(),
		WatchdogStuck:    s.watchdogStuck.Load(),
		WatchdogRequeues: s.watchdogRequeues.Load(),
	}
	writeJSON(w, http.StatusOK, st)
}

// lookup returns the job by id, or nil.
func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// view snapshots a job into its API representation.
func (s *Server) view(j *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := JobView{
		ID:          j.id,
		Name:        j.name,
		State:       j.state,
		Priority:    j.priority,
		PointsTotal: j.pointsTotal,
		PointsDone:  j.pointsDone,
		Error:       j.err,
		Submitted:   j.submitted,
	}
	if v.State == StateRunning {
		v.Ticks = j.lastStats.Ticks
		v.Completed = j.lastStats.Completed
		v.Runs = j.lastStats.Runs
	}
	return v
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
