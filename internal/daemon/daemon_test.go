package daemon

import (
	"bufio"
	"bytes"
	"container/heap"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// testSpec renders a small scenario spec with the given shape. extra is
// spliced into the document verbatim (e.g. a grid clause).
func testSpec(name string, nodes, ticks, runs int, extra string) []byte {
	return []byte(fmt.Sprintf(`{
  "format": "wormsim-scenario",
  "version": 1,
  "name": %q,
  "topology": {"kind": "star", "nodes": %d},
  "worm": {"kind": "random", "beta": 0.5},
  "ticks": %d,
  "seed": 7,
  "run": {"runs": %d, "jobs": 1}%s
}`, name, nodes, ticks, runs, extra))
}

// newTestServer starts a daemon over a fresh temp dir and its HTTP
// front end, with cleanup registered.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, base string, spec []byte, query string) JobView {
	t.Helper()
	resp, err := http.Post(base+"/jobs"+query, "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("submit: status %d (%v)", resp.StatusCode, e)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func getJob(t *testing.T, base, id string) JobView {
	t.Helper()
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitJobState polls until the job reaches want (fatal on a terminal
// state that isn't want, or on timeout).
func waitJobState(t *testing.T, base, id, want string, timeout time.Duration) JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getJob(t, base, id)
		if v.State == want {
			return v
		}
		switch v.State {
		case StateDone, StateFailed, StateCanceled:
			t.Fatalf("job %s settled as %s (error %q), want %s", id, v.State, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonJobRoundTrip drives the full happy path over HTTP: submit a
// two-point grid, follow the JSONL stream to completion, fetch the
// result document, and check the job listing.
func TestDaemonJobRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{CheckpointEvery: 50})
	doc := testSpec("roundtrip", 40, 60, 2,
		`,
  "grid": [{"path": "worm.beta", "values": [0.3, 0.6]}]`)
	v := submit(t, ts.URL, doc, "")
	if v.State != StateQueued && v.State != StateRunning {
		t.Fatalf("fresh job state = %q", v.State)
	}
	if v.PointsTotal != 2 {
		t.Fatalf("points_total = %d, want 2", v.PointsTotal)
	}

	// The stream ends when the job does; read it to EOF.
	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "jsonl") {
		t.Fatalf("stream content type = %q, want jsonl", ct)
	}
	var ticks, points int
	var last StreamRecord
	var lastSeq uint64
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		var rec StreamRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if rec.Seq <= lastSeq {
			t.Fatalf("stream seq not increasing: %d after %d", rec.Seq, lastSeq)
		}
		lastSeq = rec.Seq
		switch rec.Type {
		case "tick":
			ticks++
			if rec.Tick == nil {
				t.Fatal("tick record without payload")
			}
		case "point":
			points++
		}
		last = rec
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if ticks == 0 {
		t.Fatal("stream carried no tick records")
	}
	if points != 2 {
		t.Fatalf("stream carried %d point records, want 2", points)
	}
	if last.Type != "job" || last.State != StateDone {
		t.Fatalf("terminal record = %+v, want job/done", last)
	}

	// Result document.
	rr, err := http.Get(ts.URL + "/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d", rr.StatusCode)
	}
	var doc2 resultDoc
	if err := json.NewDecoder(rr.Body).Decode(&doc2); err != nil {
		t.Fatal(err)
	}
	if doc2.Name != "roundtrip" || len(doc2.Points) != 2 {
		t.Fatalf("result = %q with %d points, want roundtrip with 2", doc2.Name, len(doc2.Points))
	}
	for _, p := range doc2.Points {
		if len(p.Infected) == 0 || p.Error != "" {
			t.Fatalf("point %s: error=%q series=%d", p.Name, p.Error, len(p.Infected))
		}
	}

	// Listing and final job state.
	final := waitJobState(t, ts.URL, v.ID, StateDone, 5*time.Second)
	if final.PointsDone != 2 {
		t.Fatalf("points_done = %d, want 2", final.PointsDone)
	}
	lr, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer lr.Body.Close()
	var list []JobView
	if err := json.NewDecoder(lr.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != v.ID {
		t.Fatalf("listing = %+v, want exactly the submitted job", list)
	}
}

// TestDaemonSSEStream: the same stream negotiates server-sent events.
func TestDaemonSSEStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	v := submit(t, ts.URL, testSpec("sse", 20, 20, 1, ""), "")
	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/stream?sse=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	frames := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "data: ") {
			t.Fatalf("non-SSE line %q", line)
		}
		var rec StreamRecord
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rec); err != nil {
			t.Fatal(err)
		}
		frames++
	}
	if frames == 0 {
		t.Fatal("no SSE frames")
	}
}

// TestDaemonBackpressure: with a single busy executor and a queue of
// one, the second waiting submission bounces with 429 and a Retry-After
// hint; cancels then drain both live jobs.
func TestDaemonBackpressure(t *testing.T) {
	_, ts := newTestServer(t, Config{QueueCap: 1, Executors: 1})
	// Slow enough to still be running when the probes land.
	slow := testSpec("slow", 20, 1_000_000, 1, "")
	a := submit(t, ts.URL, slow, "")
	waitJobState(t, ts.URL, a.ID, StateRunning, 10*time.Second)
	b := submit(t, ts.URL, slow, "") // fills the queue

	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(slow))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	} else if n, err := strconv.Atoi(ra); err != nil || n < 1 || n > 4 {
		t.Fatalf("Retry-After = %q, want a jittered 1..4 seconds", ra)
	}

	// The rejected burst is visible in the sizing stats.
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var st ServerStats
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.QueueHighWater < 1 {
		t.Fatalf("queue_high_water = %d, want >= 1", st.QueueHighWater)
	}

	// Cancel the queued job: settles immediately, frees the queue slot.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+b.ID, nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued: status %d", dr.StatusCode)
	}
	if v := getJob(t, ts.URL, b.ID); v.State != StateCanceled {
		t.Fatalf("queued job after cancel: %q", v.State)
	}
	// A slot is free again.
	c := submit(t, ts.URL, slow, "")

	// Cancel the running job; it winds down asynchronously.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+a.ID, nil)
	dr, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	deadline := time.Now().Add(15 * time.Second)
	for getJob(t, ts.URL, a.ID).State != StateCanceled {
		if time.Now().After(deadline) {
			t.Fatalf("running job never settled canceled: %+v", getJob(t, ts.URL, a.ID))
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the follow-up job too, so Close doesn't wait on a long run.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+c.ID, nil)
	dr, _ = http.DefaultClient.Do(req)
	if dr != nil {
		dr.Body.Close()
	}
}

// TestDaemonNetCacheShared pins the acceptance criterion on topology
// reuse: two jobs over the same topology build its net state exactly
// once, the second served from the shared cache — with byte-identical
// results.
func TestDaemonNetCacheShared(t *testing.T) {
	_, ts := newTestServer(t, Config{Executors: 1})
	doc := testSpec("cached", 50, 30, 2, "")
	a := submit(t, ts.URL, doc, "")
	b := submit(t, ts.URL, doc, "")
	waitJobState(t, ts.URL, a.ID, StateDone, 15*time.Second)
	waitJobState(t, ts.URL, b.ID, StateDone, 15*time.Second)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.NetCache.Builds != 1 {
		t.Fatalf("net cache builds = %d, want 1 (second job must reuse the first's topology)", st.NetCache.Builds)
	}
	if st.NetCache.Hits < 1 {
		t.Fatalf("net cache hits = %d, want >= 1", st.NetCache.Hits)
	}
	if st.Jobs[StateDone] != 2 {
		t.Fatalf("jobs done = %d, want 2", st.Jobs[StateDone])
	}

	ra, err := http.Get(ts.URL + "/jobs/" + a.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer ra.Body.Close()
	rb, err := http.Get(ts.URL + "/jobs/" + b.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rb.Body.Close()
	ba, _ := io.ReadAll(ra.Body)
	bb, _ := io.ReadAll(rb.Body)
	if !bytes.Equal(ba, bb) {
		t.Fatal("identical specs produced different result documents")
	}
}

// TestServerRestartResume is the graceful half of the restart story: a
// daemon closed mid-job leaves its checkpoints and a "running" record
// behind; a new daemon over the same data dir re-enqueues the job,
// resumes from the checkpoints, and the final result.json is
// byte-identical to an uninterrupted run's.
func TestServerRestartResume(t *testing.T) {
	dataDir := t.TempDir()
	doc := testSpec("resume", 150, 20000, 2, "")
	cfg := Config{DataDir: dataDir, CheckpointEvery: 100}

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := s1.Submit(doc, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the first engine checkpoint is durably on disk, then
	// stop the daemon mid-run.
	ckptDir := filepath.Join(j.dir, "checkpoints", "point-000")
	deadline := time.Now().Add(20 * time.Second)
	for {
		if ents, err := os.ReadDir(ckptDir); err == nil && len(ents) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	s1.Close()
	if _, err := os.Stat(filepath.Join(j.dir, "result.json")); !os.IsNotExist(err) {
		t.Fatalf("interrupted job must not have a result.json (stat err %v)", err)
	}
	var rec jobRecord
	data, err := os.ReadFile(filepath.Join(j.dir, "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	if json.Unmarshal(data, &rec); rec.State != StateRunning {
		t.Fatalf("persisted state after shutdown = %q, want running", rec.State)
	}

	// Restart over the same data dir: the job resumes and completes.
	_, ts2 := newTestServer(t, cfg)
	waitJobState(t, ts2.URL, j.id, StateDone, 60*time.Second)
	resumed, err := os.ReadFile(filepath.Join(j.dir, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(j.dir, "checkpoints")); !os.IsNotExist(err) {
		t.Fatal("checkpoints not cleaned up after completion")
	}

	// Control: the same spec, uninterrupted, on a fresh daemon.
	_, ts3 := newTestServer(t, Config{CheckpointEvery: 100})
	cv := submit(t, ts3.URL, doc, "")
	waitJobState(t, ts3.URL, cv.ID, StateDone, 60*time.Second)
	rr, err := http.Get(ts3.URL + "/jobs/" + cv.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	control, _ := io.ReadAll(rr.Body)

	if !bytes.Equal(resumed, control) {
		t.Fatalf("resumed result diverged from uninterrupted run:\nresumed %d bytes\ncontrol %d bytes", len(resumed), len(control))
	}
}

// TestDaemonErrorPaths covers the HTTP error mapping.
func TestDaemonErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Garbage spec: 400.
	resp, _ := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{nope"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage spec: %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Bad priority: 400.
	resp, _ = http.Post(ts.URL+"/jobs?priority=high", "application/json",
		bytes.NewReader(testSpec("p", 10, 5, 1, "")))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad priority: %d, want 400", resp.StatusCode)
	}
	resp.Body.Close()

	// Unknown job: 404 everywhere.
	for _, path := range []string{"/jobs/j999999", "/jobs/j999999/stream", "/jobs/j999999/result"} {
		resp, _ = http.Get(ts.URL + path)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", path, resp.StatusCode)
		}
		resp.Body.Close()
	}

	// Result of an unfinished (canceled) job: 404. Cancel of a settled
	// job: 409.
	v := submit(t, ts.URL, testSpec("quick", 10, 5, 1, ""), "")
	waitJobState(t, ts.URL, v.ID, StateDone, 10*time.Second)
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+v.ID, nil)
	dr, _ := http.DefaultClient.Do(req)
	if dr.StatusCode != http.StatusConflict {
		t.Fatalf("cancel done job: %d, want 409", dr.StatusCode)
	}
	dr.Body.Close()

	// Healthz.
	hr, _ := http.Get(ts.URL + "/healthz")
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", hr.StatusCode)
	}
	hr.Body.Close()
}

// TestJobQueueOrdering pins the scheduler's ordering contract: higher
// priority first, submission order within a priority.
func TestJobQueueOrdering(t *testing.T) {
	var q jobQueue
	push := func(seq, prio int) {
		heap.Push(&q, &Job{id: fmt.Sprintf("j%06d", seq), seq: seq, priority: prio, state: StateQueued})
	}
	push(1, 0)
	push(2, 5)
	push(3, 0)
	push(4, 5)
	var got []int
	for q.Len() > 0 {
		got = append(got, heap.Pop(&q).(*Job).seq)
	}
	want := []int{2, 4, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}
