package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/safeio"
	"repro/internal/sim"
	"repro/internal/spec"
)

// This file is the daemon's self-healing: the startup scrub that
// quarantines damaged artifacts so a restart always comes up serving,
// the TTL garbage collector that keeps the data dir bounded, and the
// watchdog that kills wedged runs. The scrub exists for damage safeio
// cannot prevent — external truncation, bit rot, another process's
// partial writes — plus the two kinds of debris our own crashes do
// leave: orphaned temp files and job directories created but never
// populated (a crash inside Submit between MkdirAll and the first
// commit).

// scrub sweeps the jobs tree before the rescan: safeio temp debris is
// deleted, empty half-created job directories are removed, and any job
// directory whose durable artifacts (job.json, spec.json, result.json)
// are missing or unparseable moves wholesale into DataDir/quarantine/
// with a sidecar .error.json naming what was wrong. Damaged checkpoint
// files are quarantined individually — resume treats a missing
// checkpoint as "start fresh", so losing one costs re-simulated ticks,
// not the job. Only an unusable data dir (unreadable, unwritable) is
// fatal.
func (s *Server) scrub() error {
	qdir := filepath.Join(s.cfg.DataDir, "quarantine")
	entries, err := os.ReadDir(s.jobsDir)
	if err != nil {
		return fmt.Errorf("daemon: scan %s: %w", s.jobsDir, err)
	}
	for _, e := range entries {
		path := filepath.Join(s.jobsDir, e.Name())
		if !e.IsDir() {
			if safeio.IsTempName(e.Name()) {
				if os.Remove(path) == nil {
					s.tempCleaned.Add(1)
				}
			}
			continue
		}
		if err := s.scrubJobDir(path, qdir); err != nil {
			return err
		}
	}
	return nil
}

// scrubJobDir heals one job directory (see scrub).
func (s *Server) scrubJobDir(dir, qdir string) error {
	s.sweepTemps(dir)

	reason := jobDirDamage(dir)
	if reason == "empty" {
		// A crash between MkdirAll and writeSpecFile: the submission was
		// never acknowledged, there is nothing to preserve.
		os.Remove(dir)
		return nil
	}
	if reason != "" {
		return s.quarantine(dir, qdir, reason)
	}

	// Artifacts are sound; now vet the checkpoints individually.
	ckroot := filepath.Join(dir, "checkpoints")
	var bad []string
	err := filepath.WalkDir(ckroot, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".ckpt") {
			return nil //nolint:nilerr // a vanished entry is not damage
		}
		if _, rerr := sim.ReadSnapshot(path); rerr != nil {
			bad = append(bad, path)
		}
		return nil
	})
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("daemon: scrub %s: %w", ckroot, err)
	}
	for _, path := range bad {
		if err := s.quarantine(path, qdir, "checkpoint failed verification"); err != nil {
			return err
		}
	}
	return nil
}

// sweepTemps deletes safeio temp debris (interrupted commits) anywhere
// under dir.
func (s *Server) sweepTemps(dir string) {
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error { //nolint:errcheck
		if err == nil && !d.IsDir() && safeio.IsTempName(d.Name()) {
			if os.Remove(path) == nil {
				s.tempCleaned.Add(1)
			}
		}
		return nil
	})
}

// jobDirDamage inspects a job directory's durable artifacts and returns
// a reason string when the directory cannot be trusted: "" means sound,
// "empty" means safely removable, anything else is a quarantine reason.
func jobDirDamage(dir string) string {
	data, err := os.ReadFile(filepath.Join(dir, "job.json"))
	if errors.Is(err, fs.ErrNotExist) {
		entries, rerr := os.ReadDir(dir)
		if rerr == nil && len(entries) == 0 {
			return "empty"
		}
		return "job.json missing"
	}
	if err != nil {
		return "job.json unreadable: " + err.Error()
	}
	var rec jobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return "job.json corrupt: " + err.Error()
	}
	var seq int
	if _, err := fmt.Sscanf(rec.ID, "j%d", &seq); err != nil {
		return fmt.Sprintf("job.json corrupt: id %q", rec.ID)
	}

	specData, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return "spec.json unreadable: " + err.Error()
	}
	if _, err := spec.Parse(specData); err != nil {
		return "spec.json corrupt: " + err.Error()
	}

	if data, err := os.ReadFile(filepath.Join(dir, "result.json")); err == nil {
		if !json.Valid(data) {
			return "result.json corrupt"
		}
	} else if !errors.Is(err, fs.ErrNotExist) {
		return "result.json unreadable: " + err.Error()
	}
	return ""
}

// quarantine moves one damaged artifact (file or whole job directory)
// into qdir under a collision-free name and writes a structured
// .error.json beside it so the operator can tell what was wrong and
// where it came from without trusting daemon logs.
func (s *Server) quarantine(path, qdir, reason string) error {
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("daemon: quarantine: %w", err)
	}
	base := filepath.Base(path)
	dest := filepath.Join(qdir, base)
	for n := 1; ; n++ {
		if _, err := os.Lstat(dest); errors.Is(err, fs.ErrNotExist) {
			break
		}
		// Restarts reuse job ids and every replica checkpoint is named
		// replica-NNN.ckpt, so collisions are routine.
		dest = filepath.Join(qdir, fmt.Sprintf("%s.%d", base, n))
	}
	if err := os.Rename(path, dest); err != nil {
		return fmt.Errorf("daemon: quarantine %s: %w", path, err)
	}
	s.quarantined.Add(1)
	note, err := json.MarshalIndent(struct {
		Artifact string `json:"artifact"`
		Reason   string `json:"reason"`
		Time     string `json:"time"`
	}{path, reason, time.Now().UTC().Format(time.RFC3339)}, "", "  ")
	if err == nil {
		err = safeio.WriteFile(dest+".error.json", append(note, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wormsimd: quarantine note for %s: %v\n", dest, err)
	}
	fmt.Fprintf(os.Stderr, "wormsimd: quarantined %s: %s\n", path, reason)
	return nil
}

// gcExpired removes settled jobs whose TTL has lapsed: the job
// directory is deleted and the job leaves the table (its stream history
// with it). Queued and running jobs are never touched.
func (s *Server) gcExpired(now time.Time) {
	if s.cfg.TTL <= 0 {
		return
	}
	s.mu.Lock()
	var expired []*Job
	for id, j := range s.jobs {
		switch j.state {
		case StateDone, StateFailed, StateCanceled:
			if !j.settled.IsZero() && now.Sub(j.settled) >= s.cfg.TTL {
				expired = append(expired, j)
				delete(s.jobs, id)
			}
		}
	}
	s.mu.Unlock()
	for _, j := range expired {
		// A canceled-while-queued job may still sit in the heap; the
		// executor skips non-queued entries, so dropping it from the
		// table here is safe.
		if err := os.RemoveAll(j.dir); err != nil {
			fmt.Fprintf(os.Stderr, "wormsimd: gc %s: %v\n", j.id, err)
		}
		s.gcRemoved.Add(1)
	}
}

// sweepStuck is the watchdog: a running job whose engines have not
// ticked within StuckAfter is cancelled. The settle path in runJob then
// classifies it via Job.stuck — failed, or re-enqueued to resume from
// its checkpoints when StuckRequeue is set.
func (s *Server) sweepStuck(now time.Time) {
	if s.cfg.StuckAfter <= 0 {
		return
	}
	s.mu.Lock()
	var cancels []context.CancelFunc
	for _, j := range s.jobs {
		if j.state != StateRunning || j.stuck {
			continue
		}
		beat := j.lastBeat.Load()
		if beat == 0 || now.Sub(time.Unix(0, beat)) < s.cfg.StuckAfter {
			continue
		}
		j.stuck = true
		s.watchdogStuck.Add(1)
		if j.cancel != nil {
			cancels = append(cancels, j.cancel)
		}
	}
	s.mu.Unlock()
	for _, cancel := range cancels {
		cancel()
	}
}

// janitor periodically runs the TTL garbage collector and the stuck-job
// watchdog until the server closes. Started by New only when TTL or
// StuckAfter enables it.
func (s *Server) janitor() {
	defer s.wg.Done()
	interval := s.cfg.GCInterval
	if s.cfg.StuckAfter > 0 && s.cfg.StuckAfter < interval {
		// The watchdog must sample at least as often as its deadline or
		// a stuck job waits up to GCInterval extra.
		interval = s.cfg.StuckAfter
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case now := <-t.C:
			s.gcExpired(now)
			s.sweepStuck(now)
		}
	}
}
