package daemon

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/safeio"
	"repro/internal/spec"
)

// jobRecord is the persisted face of a Job: everything a restarted
// daemon needs to rebuild its schedule. It lives in the job directory
// as job.json, written atomically (and crash-durably — the parent-dir
// fsync in safeio exists exactly for this file and the checkpoints
// beside it) at every state transition. Timestamps and other
// nondeterministic detail stay here, never in result.json.
type jobRecord struct {
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	Priority    int    `json:"priority"`
	State       string `json:"state"`
	Error       string `json:"error,omitempty"`
	PointsTotal int    `json:"points_total"`
	PointsDone  int    `json:"points_done"`
	Submitted   string `json:"submitted,omitempty"`
	// Settled is when the job reached a terminal state (RFC3339;
	// omitted while queued/running) — the TTL garbage collector's
	// clock. Additive: records written before this field existed load
	// fine and fall back to job.json's mtime.
	Settled string `json:"settled,omitempty"`
}

// persistLocked writes the job's current state to its job.json. Called
// with Server.mu held. A persistence failure is reported on stderr and
// remembered on the job rather than crashing the daemon: the in-memory
// schedule stays authoritative for this process, and the operator sees
// the disk problem.
func (s *Server) persistLocked(j *Job) {
	rec := jobRecord{
		ID:          j.id,
		Name:        j.name,
		Priority:    j.priority,
		State:       j.state,
		Error:       j.err,
		PointsTotal: j.pointsTotal,
		PointsDone:  j.pointsDone,
		Submitted:   j.submitted,
	}
	if !j.settled.IsZero() {
		rec.Settled = j.settled.UTC().Format(time.RFC3339)
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err == nil {
		data = append(data, '\n')
		err = safeio.WriteFile(filepath.Join(j.dir, "job.json"), data, 0o644)
	}
	if err != nil {
		s.persistErrors.Add(1)
		fmt.Fprintf(os.Stderr, "wormsimd: persist %s: %v\n", j.id, err)
	}
}

// loadJobs scans the data directory and rebuilds the job table: done,
// failed, and canceled jobs become read-only history; queued and
// running jobs are re-enqueued — a job that was mid-run when the
// daemon died resumes from its checkpoints, because its checkpoint
// directories are passed back as RunOptions.Resume when it runs again.
// A job directory with unreadable state is reported and skipped, never
// fatal: one corrupt entry must not keep the daemon down.
func (s *Server) loadJobs() error {
	entries, err := os.ReadDir(s.jobsDir)
	if err != nil {
		return fmt.Errorf("daemon: scan %s: %w", s.jobsDir, err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		dir := filepath.Join(s.jobsDir, name)
		j, rec, err := loadJob(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wormsimd: skipping job dir %s: %v\n", dir, err)
			continue
		}
		s.jobs[j.id] = j
		if j.seq >= s.nextSeq {
			s.nextSeq = j.seq + 1
		}
		switch rec.State {
		case StateQueued, StateRunning:
			// Interrupted or never started: back on the queue. PointsDone
			// restarts at zero — the points re-run (fast, from their
			// checkpoints) and the counter tracks this execution.
			j.state = StateQueued
			j.pointsDone = 0
			j.broker.publish(StreamRecord{Type: "job", State: StateQueued})
			s.pushLocked(j)
		default:
			// Terminal states replay as a single closed-stream record.
			j.broker.close(StreamRecord{Type: "job", State: j.state, Error: j.err})
		}
	}
	return nil
}

// loadJob reads one persisted job (job.json + spec.json) back into
// memory.
func loadJob(dir string) (*Job, jobRecord, error) {
	var rec jobRecord
	data, err := os.ReadFile(filepath.Join(dir, "job.json"))
	if err != nil {
		return nil, rec, err
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, rec, fmt.Errorf("job.json: %w", err)
	}
	var seq int
	if _, err := fmt.Sscanf(rec.ID, "j%d", &seq); err != nil {
		return nil, rec, fmt.Errorf("job id %q: %w", rec.ID, err)
	}
	specData, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		return nil, rec, err
	}
	ps, err := spec.Parse(specData)
	if err != nil {
		return nil, rec, fmt.Errorf("spec.json: %w", err)
	}
	points, err := ps.Expand()
	if err != nil {
		return nil, rec, fmt.Errorf("spec.json: %w", err)
	}
	j := &Job{
		id:          rec.ID,
		seq:         seq,
		name:        rec.Name,
		priority:    rec.Priority,
		submitted:   rec.Submitted,
		dir:         dir,
		spec:        ps,
		broker:      newBroker(defaultHistory),
		state:       rec.State,
		err:         rec.Error,
		pointsTotal: len(points),
		pointsDone:  rec.PointsDone,
	}
	switch rec.State {
	case StateDone, StateFailed, StateCanceled:
		if t, err := time.Parse(time.RFC3339, rec.Settled); err == nil {
			j.settled = t
		} else if fi, err := os.Stat(filepath.Join(dir, "job.json")); err == nil {
			// Terminal record predating the Settled field: its job.json
			// was last written at settlement, so the mtime is the
			// settlement time.
			j.settled = fi.ModTime()
		}
	}
	return j, rec, nil
}

// resultDoc is the payload of result.json: the job's complete outcome,
// deterministic in the spec alone. No job IDs, timestamps, wall-clock
// stats, or cache counters belong here — the restart-resume guarantee
// is that an interrupted-and-resumed job produces a result.json
// byte-identical to an uninterrupted run's, and anything
// environment-dependent would break that.
type resultDoc struct {
	Name   string        `json:"name"`
	Points []resultPoint `json:"points"`
}

// resultPoint is one grid point's outcome.
type resultPoint struct {
	Name     string   `json:"name"`
	Error    string   `json:"error,omitempty"`
	Warnings []string `json:"warnings,omitempty"`
	// T50 is the first tick the infected fraction reached 0.5
	// (interpolated); -1 when it never did. Final/Ever are the last
	// tick's infected and ever-infected fractions.
	T50   float64 `json:"t50"`
	Final float64 `json:"final_infected"`
	Ever  float64 `json:"ever_infected"`
	// The averaged per-tick series (index 0 = after the first tick).
	Infected   []float64 `json:"infected,omitempty"`
	EverSeries []float64 `json:"ever,omitempty"`
	Immunized  []float64 `json:"immunized,omitempty"`
	Backlog    []int     `json:"backlog,omitempty"`
}

// writeResult renders the sweep outcome and commits it atomically as
// the job's result.json.
func (s *Server) writeResult(j *Job, results []spec.PointResult) error {
	doc := resultDoc{Name: j.spec.Name, Points: make([]resultPoint, 0, len(results))}
	if doc.Name == "" {
		doc.Name = "scenario"
	}
	for _, r := range results {
		p := resultPoint{Name: r.Point.Name, Warnings: r.Warnings, T50: -1, Final: -1, Ever: -1}
		if r.Err != nil {
			p.Error = r.Err.Error()
		}
		if r.Result != nil {
			p.T50 = finiteOr(r.Result.TimeToLevel(0.5), -1)
			p.Final = finiteOr(r.Result.FinalInfected(), -1)
			p.Ever = finiteOr(r.Result.FinalEverInfected(), -1)
			p.Infected = r.Result.Infected
			p.EverSeries = r.Result.EverInfected
			p.Immunized = r.Result.Immunized
			p.Backlog = r.Result.Backlog
		}
		doc.Points = append(doc.Points, p)
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return fmt.Errorf("daemon: marshal result: %w", err)
	}
	data = append(data, '\n')
	return safeio.WriteFile(filepath.Join(j.dir, "result.json"), data, 0o644)
}

// finiteOr replaces NaN (JSON has no encoding for it) with a sentinel.
func finiteOr(v, sentinel float64) float64 {
	if math.IsNaN(v) {
		return sentinel
	}
	return v
}
