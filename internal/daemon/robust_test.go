package daemon

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// TestScrubQuarantinesCorruptArtifacts hand-damages a data directory
// the way safeio never would — truncated JSON, garbage checkpoints,
// stray temp debris, a half-created job dir — and requires the restart
// to come up serving: healthy jobs intact, damaged artifacts moved to
// quarantine/ with structured sidecar errors, and the job with only a
// bad checkpoint re-run to completion rather than failed.
func TestScrubQuarantinesCorruptArtifacts(t *testing.T) {
	dataDir := t.TempDir()
	healthyDir := runLifecycle(t, dataDir)
	specBytes, err := os.ReadFile(filepath.Join(healthyDir, "spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	jobsDir := filepath.Join(dataDir, "jobs")
	mkJob := func(id string, rec jobRecord, spec []byte) string {
		dir := filepath.Join(jobsDir, id)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if rec.ID != "" {
			data, _ := json.Marshal(rec)
			if err := os.WriteFile(filepath.Join(dir, "job.json"), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if spec != nil {
			if err := os.WriteFile(filepath.Join(dir, "spec.json"), spec, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return dir
	}

	// j000002: torn job.json (truncated mid-document).
	dir2 := mkJob("j000002", jobRecord{}, nil)
	os.WriteFile(filepath.Join(dir2, "job.json"), []byte(`{"id": "j0000`), 0o644)
	// j000003: sound job.json, corrupt spec.json.
	mkJob("j000003", jobRecord{ID: "j000003", State: StateDone, PointsTotal: 1},
		[]byte("not a spec"))
	// j000004: created but never populated (crash inside Submit).
	mkJob("j000004", jobRecord{}, nil)
	// j000005: interrupted mid-run with a garbage checkpoint — the
	// checkpoint alone is quarantined and the job re-runs from scratch.
	dir5 := mkJob("j000005", jobRecord{ID: "j000005", State: StateRunning, PointsTotal: 1}, specBytes)
	ckptDir := filepath.Join(dir5, "checkpoints", "point-000")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	badCkpt := filepath.Join(ckptDir, "replica-000.ckpt")
	os.WriteFile(badCkpt, []byte("garbage snapshot"), 0o644)
	// Temp debris from an interrupted safeio commit.
	debris := filepath.Join(healthyDir, ".job.json.tmp-12345")
	os.WriteFile(debris, []byte("partial"), 0o644)

	srv, err := New(Config{DataDir: dataDir, CheckpointEvery: crashCheckpointEvery})
	if err != nil {
		t.Fatalf("restart over damaged data dir: %v", err)
	}
	defer srv.Close()

	// Healthy job untouched, damaged siblings gone from the table.
	if st, _ := jobState(srv, "j000001"); st != StateDone {
		t.Fatalf("healthy job state after scrub = %q, want done", st)
	}
	for _, id := range []string{"j000002", "j000003", "j000004"} {
		if st, _ := jobState(srv, id); st != "" {
			t.Fatalf("damaged job %s still in table (state %q)", id, st)
		}
	}
	// The bad-checkpoint job resumed (from scratch) and completes.
	waitDone(t, srv, "j000005", 30*time.Second)

	// Quarantine holds the two damaged dirs plus the bad checkpoint,
	// each with a sidecar note.
	qdir := filepath.Join(dataDir, "quarantine")
	ents, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	var artifacts, notes int
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".error.json") {
			notes++
			data, err := os.ReadFile(filepath.Join(qdir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			var note struct{ Artifact, Reason, Time string }
			if err := json.Unmarshal(data, &note); err != nil {
				t.Fatalf("sidecar %s not structured: %v", e.Name(), err)
			}
			if note.Artifact == "" || note.Reason == "" || note.Time == "" {
				t.Fatalf("sidecar %s incomplete: %+v", e.Name(), note)
			}
		} else {
			artifacts++
		}
	}
	if artifacts != 3 || notes != 3 {
		t.Fatalf("quarantine holds %d artifacts + %d notes, want 3 + 3 (%v)", artifacts, notes, ents)
	}
	if got := srv.quarantined.Load(); got != 3 {
		t.Fatalf("quarantined counter = %d, want 3", got)
	}
	if got := srv.tempCleaned.Load(); got < 1 {
		t.Fatalf("tempCleaned counter = %d, want >= 1", got)
	}
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatal("temp debris survived the scrub")
	}
	if _, err := os.Stat(filepath.Join(jobsDir, "j000004")); !os.IsNotExist(err) {
		t.Fatal("empty half-created job dir survived the scrub")
	}
	if _, err := os.Stat(badCkpt); !os.IsNotExist(err) {
		t.Fatal("garbage checkpoint left in place")
	}

	// Degraded, but serving.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health map[string]string
	json.NewDecoder(hr.Body).Decode(&health)
	if hr.StatusCode != http.StatusOK || health["status"] != "degraded" {
		t.Fatalf("healthz after scrub = %d %q, want 200 degraded", hr.StatusCode, health["status"])
	}
	rr, err := http.Get(ts.URL + "/jobs/j000001/result")
	if err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("healthy job's result not served after scrub: %d", rr.StatusCode)
	}
}

// TestWatchdogFailsStuckJob: a running job with no tick progress past
// StuckAfter is cancelled and settles failed with a watchdog error.
// Stuckness is simulated by sweeping with a far-future clock — the
// engine is healthy but its heartbeat is "old" relative to it.
func TestWatchdogFailsStuckJob(t *testing.T) {
	srv, ts := newTestServer(t, Config{StuckAfter: time.Hour})
	v := submit(t, ts.URL, testSpec("wedge", 20, 1_000_000, 1, ""), "")
	waitJobState(t, ts.URL, v.ID, StateRunning, 10*time.Second)

	srv.sweepStuck(time.Now().Add(2 * time.Hour))

	waitSettled(t, srv, v.ID, 15*time.Second)
	st, jerr := jobState(srv, v.ID)
	if st != StateFailed || !strings.Contains(jerr, "watchdog") {
		t.Fatalf("stuck job settled %s (%q), want failed with a watchdog error", st, jerr)
	}
	if got := srv.watchdogStuck.Load(); got != 1 {
		t.Fatalf("watchdogStuck = %d, want 1", got)
	}
	// Persisted verbatim: a restart must not resurrect a watchdog kill.
	data, err := os.ReadFile(filepath.Join(srv.jobsDir, v.ID, "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec jobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != StateFailed || rec.Settled == "" {
		t.Fatalf("persisted record = %+v, want failed with a settled timestamp", rec)
	}
}

// TestWatchdogRequeuesStuckJob: with StuckRequeue, the kill becomes a
// re-enqueue and the job runs again instead of failing.
func TestWatchdogRequeuesStuckJob(t *testing.T) {
	srv, ts := newTestServer(t, Config{StuckAfter: time.Hour, StuckRequeue: true})
	v := submit(t, ts.URL, testSpec("wedge", 20, 1_000_000, 1, ""), "")
	waitJobState(t, ts.URL, v.ID, StateRunning, 10*time.Second)

	srv.sweepStuck(time.Now().Add(2 * time.Hour))

	// The job must come back: queued by the settle path, then running
	// again under a fresh heartbeat.
	deadline := time.Now().Add(15 * time.Second)
	for srv.watchdogRequeues.Load() == 0 {
		if time.Now().After(deadline) {
			st, jerr := jobState(srv, v.ID)
			t.Fatalf("stuck job never re-enqueued (state %s, err %q)", st, jerr)
		}
		time.Sleep(time.Millisecond)
	}
	waitJobState(t, ts.URL, v.ID, StateRunning, 15*time.Second)
	if err := srv.Cancel(v.ID); err != nil {
		t.Fatal(err)
	}
	waitSettled(t, srv, v.ID, 15*time.Second)
}

// TestTTLGarbageCollection: settled jobs age out — directory removed,
// job gone from the table — while the janitor runs on its own clock.
func TestTTLGarbageCollection(t *testing.T) {
	srv, ts := newTestServer(t, Config{TTL: 50 * time.Millisecond, GCInterval: 10 * time.Millisecond})
	v := submit(t, ts.URL, testSpec("ttl", 10, 5, 1, ""), "")
	waitJobState(t, ts.URL, v.ID, StateDone, 10*time.Second)

	// The settled timestamp is durable (it is the GC clock).
	dir := filepath.Join(srv.jobsDir, v.ID)
	data, err := os.ReadFile(filepath.Join(dir, "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec jobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Settled == "" {
		t.Fatal("done job persisted without a settled timestamp")
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		if st, _ := jobState(srv, v.ID); st == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("settled job never garbage-collected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("job dir survived GC (stat err %v)", err)
	}
	if got := srv.gcRemoved.Load(); got < 1 {
		t.Fatalf("gcRemoved = %d, want >= 1", got)
	}
	// 404 after GC, and a fresh submission still works.
	gr, err := http.Get(ts.URL + "/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	gr.Body.Close()
	if gr.StatusCode != http.StatusNotFound {
		t.Fatalf("GC'd job GET = %d, want 404", gr.StatusCode)
	}
	w := submit(t, ts.URL, testSpec("ttl2", 10, 5, 1, ""), "")
	waitJobState(t, ts.URL, w.ID, StateDone, 10*time.Second)
}

// TestDrainLeavesResumableState pins the graceful-drain contract: after
// Close, the HTTP side still answers — health reports draining with
// 503, submissions bounce with 503 — and the interrupted job's disk
// state is resumable: record still "running", with a verified
// checkpoint at the tick boundary the engine stopped on.
func TestDrainLeavesResumableState(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	v := submit(t, ts.URL, testSpec("drain", 150, 1_000_000, 1, ""), "")
	waitJobState(t, ts.URL, v.ID, StateRunning, 10*time.Second)
	// Let the engine tick before draining, so the cancellation-boundary
	// checkpoint has progress to save.
	j := srv.lookup(v.ID)
	start := j.lastBeat.Load()
	deadline := time.Now().Add(10 * time.Second)
	for j.lastBeat.Load() == start {
		if time.Now().After(deadline) {
			t.Fatal("engine never ticked")
		}
		time.Sleep(time.Millisecond)
	}

	srv.Close()

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var health map[string]string
	json.NewDecoder(hr.Body).Decode(&health)
	if hr.StatusCode != http.StatusServiceUnavailable || health["status"] != "draining" {
		t.Fatalf("healthz during drain = %d %q, want 503 draining", hr.StatusCode, health["status"])
	}
	pr, err := http.Post(ts.URL+"/jobs", "application/json",
		bytes.NewReader(testSpec("late", 10, 5, 1, "")))
	if err != nil {
		t.Fatal(err)
	}
	pr.Body.Close()
	if pr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", pr.StatusCode)
	}

	data, err := os.ReadFile(filepath.Join(srv.jobsDir, v.ID, "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rec jobRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.State != StateRunning {
		t.Fatalf("drained job persisted as %q, want running (resumable)", rec.State)
	}
	ckpt := filepath.Join(srv.jobsDir, v.ID, "checkpoints", "point-000", "replica-000.ckpt")
	snap, err := sim.ReadSnapshot(ckpt)
	if err != nil {
		t.Fatalf("no verified checkpoint after drain: %v", err)
	}
	if snap.NextTick <= 0 {
		t.Fatalf("drain checkpoint at tick %d, want > 0", snap.NextTick)
	}
}

// TestCancelRacesSettlement fires DELETE at jobs that are about to
// finish on their own: whatever interleaving wins, the API answers 202
// or 409, the job settles exactly once, and the daemon stays
// consistent.
func TestCancelRacesSettlement(t *testing.T) {
	srv, ts := newTestServer(t, Config{Executors: 2})
	quick := testSpec("race", 10, 5, 1, "")
	for i := 0; i < 20; i++ {
		v := submit(t, ts.URL, quick, "")
		// Stagger the cancel across the whole lifecycle: immediate on
		// some rounds, mid-run or post-done on others.
		time.Sleep(time.Duration(i%5) * 2 * time.Millisecond)
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+v.ID, nil)
		dr, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		dr.Body.Close()
		if dr.StatusCode != http.StatusAccepted && dr.StatusCode != http.StatusConflict {
			t.Fatalf("round %d: DELETE = %d, want 202 or 409", i, dr.StatusCode)
		}
		waitSettled(t, srv, v.ID, 15*time.Second)
		st, jerr := jobState(srv, v.ID)
		if st != StateDone && st != StateCanceled {
			t.Fatalf("round %d: raced job settled %s (%q)", i, st, jerr)
		}
		// A done job must have its result regardless of the race.
		if st == StateDone {
			if _, err := os.Stat(filepath.Join(srv.jobsDir, v.ID, "result.json")); err != nil {
				t.Fatalf("round %d: done job without result: %v", i, err)
			}
		}
	}
}

// TestRestartFreshAndEmptyDataDirs: a daemon must start over a data dir
// that does not exist yet, one that exists but is empty, and one whose
// jobs were all GC'd away (empty jobs/ plus a leftover quarantine/).
func TestRestartFreshAndEmptyDataDirs(t *testing.T) {
	nested := filepath.Join(t.TempDir(), "deep", "fresh")
	srv, err := New(Config{DataDir: nested})
	if err != nil {
		t.Fatalf("fresh nested data dir: %v", err)
	}
	j, err := srv.Submit(testSpec("fresh", 10, 5, 1, ""), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv, j.id, 10*time.Second)
	srv.Close()

	emptied := t.TempDir()
	if err := os.MkdirAll(filepath.Join(emptied, "jobs"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(emptied, "quarantine"), 0o755); err != nil {
		t.Fatal(err)
	}
	srv2, err := New(Config{DataDir: emptied})
	if err != nil {
		t.Fatalf("emptied data dir: %v", err)
	}
	defer srv2.Close()
	j2, err := srv2.Submit(testSpec("fresh2", 10, 5, 1, ""), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv2, j2.id, 10*time.Second)
}

// TestBrokerCountsSlowSubscriberDrops: a subscriber that never reads is
// disconnected once its buffer fills, and the drop is counted for
// /stats.
func TestBrokerCountsSlowSubscriberDrops(t *testing.T) {
	b := newBroker(16)
	_, live, stop := b.subscribe()
	defer stop()
	for i := 0; i < subBuffer+2; i++ {
		b.publish(StreamRecord{Type: "tick"})
	}
	if got := b.dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	// The channel was closed at the drop; drain to the close marker.
	n := 0
	for range live {
		n++
	}
	if n != subBuffer {
		t.Fatalf("slow subscriber received %d records, want the %d buffered", n, subBuffer)
	}
}
