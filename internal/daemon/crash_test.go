package daemon

import (
	"bytes"
	"encoding/json"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/crashfs"
	"repro/internal/safeio"
	"repro/internal/sim"
)

// The crash-point sweeper: the daemon's durable state is driven through
// a full job lifecycle with crashfs counting every durability point,
// then the same workload is replayed once per point with the write
// stream killed exactly there. After every crash the disk must satisfy
// the recovery invariants (no torn artifact, checkpoints old-or-new,
// result.json absent-or-exact) and a restarted daemon must finish the
// job with a result byte-identical to an uninterrupted run's.

// crashSpec is the sweep workload: small enough that one lifecycle is
// cheap, structured enough to exercise every artifact class (spec.json,
// job.json transitions, three engine checkpoints, result.json).
func crashSpec() []byte { return testSpec("crashsweep", 16, 24, 1, "") }

const crashCheckpointEvery = 8

// runLifecycle drives one complete submit-to-done lifecycle on a fresh
// daemon over dataDir and returns the job's directory.
func runLifecycle(t *testing.T, dataDir string) string {
	t.Helper()
	srv, err := New(Config{DataDir: dataDir, CheckpointEvery: crashCheckpointEvery})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	j, err := srv.Submit(crashSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitSettled(t, srv, j.id, 30*time.Second)
	if st, jerr := jobState(srv, j.id); st != StateDone {
		t.Fatalf("control job settled %s (%s), want done", st, jerr)
	}
	return j.dir
}

// jobState reads a job's in-memory state (empty when the job is not in
// the table).
func jobState(s *Server, id string) (state, errText string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return "", ""
	}
	return j.state, j.err
}

// waitSettled polls until the job reaches any terminal state.
func waitSettled(t *testing.T, s *Server, id string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		switch st, _ := jobState(s, id); st {
		case StateDone, StateFailed, StateCanceled:
			return
		}
		if time.Now().After(deadline) {
			st, jerr := jobState(s, id)
			t.Fatalf("job %s never settled (state %s, err %q)", id, st, jerr)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitDone is waitSettled that additionally requires success.
func waitDone(t *testing.T, s *Server, id string, timeout time.Duration) {
	t.Helper()
	waitSettled(t, s, id, timeout)
	if st, jerr := jobState(s, id); st != StateDone {
		t.Fatalf("job %s settled %s (%s), want done", id, st, jerr)
	}
}

// crashControl runs the uninterrupted lifecycle on the real filesystem
// and returns the canonical spec.json and result.json bytes every sweep
// iteration is held to.
func crashControl(t *testing.T) (specBytes, resultBytes []byte) {
	t.Helper()
	dir := runLifecycle(t, t.TempDir())
	specBytes, err := os.ReadFile(filepath.Join(dir, "spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	resultBytes, err = os.ReadFile(filepath.Join(dir, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	return specBytes, resultBytes
}

// enumerateCrashPoints replays the lifecycle with crashfs in counting
// mode (At: 0) and returns the full durability-point trace.
func enumerateCrashPoints(t *testing.T) []crashfs.Record {
	t.Helper()
	cfs := crashfs.New(crashfs.Config{})
	restore := safeio.SetFS(cfs)
	defer restore()
	runLifecycle(t, t.TempDir())
	return cfs.Ops()
}

// checkDiskInvariants asserts the post-crash disk state is never torn:
// every surviving artifact is either absent or exactly what an atomic
// commit would have left.
func checkDiskInvariants(t *testing.T, k int, jobDir string, wantSpec, wantResult []byte) {
	t.Helper()
	if data, err := os.ReadFile(filepath.Join(jobDir, "spec.json")); err == nil {
		if !bytes.Equal(data, wantSpec) {
			t.Fatalf("crash at %d: torn spec.json (%d bytes)", k, len(data))
		}
	}
	if data, err := os.ReadFile(filepath.Join(jobDir, "job.json")); err == nil {
		var rec jobRecord
		if err := json.Unmarshal(data, &rec); err != nil {
			t.Fatalf("crash at %d: torn job.json: %v\n%s", k, err, data)
		}
		switch rec.State {
		case StateQueued, StateRunning, StateDone:
		default:
			t.Fatalf("crash at %d: job.json persisted unexpected state %q", k, rec.State)
		}
	}
	if data, err := os.ReadFile(filepath.Join(jobDir, "result.json")); err == nil {
		if !bytes.Equal(data, wantResult) {
			t.Fatalf("crash at %d: torn result.json (%d bytes, want %d)", k, len(data), len(wantResult))
		}
	}
	// Checkpoints are old-or-new: any surviving .ckpt must verify.
	filepath.WalkDir(filepath.Join(jobDir, "checkpoints"), func(path string, d fs.DirEntry, err error) error { //nolint:errcheck
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".ckpt") ||
			safeio.IsTempName(d.Name()) {
			return nil //nolint:nilerr
		}
		if _, rerr := sim.ReadSnapshot(path); rerr != nil {
			t.Fatalf("crash at %d: torn checkpoint %s: %v", k, path, rerr)
		}
		return nil
	})
}

// TestCrashPointSweep is the tentpole: kill the write stream at every
// enumerated durability point, restart, and require full recovery to a
// byte-identical result.
func TestCrashPointSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps every durability point; skipped under -short")
	}
	wantSpec, wantResult := crashControl(t)
	trace := enumerateCrashPoints(t)
	n := len(trace)
	if n < 30 {
		t.Fatalf("enumerated only %d durability points; the lifecycle should commit at least 5 artifacts", n)
	}
	if n%6 != 0 {
		t.Fatalf("durability points = %d, want a multiple of 6 (create,write,sync,chmod,rename,syncdir per commit)", n)
	}
	t.Logf("sweeping %d durability points: %v ... %v", n, trace[0], trace[n-1])

	doc := crashSpec()
	cfg := Config{CheckpointEvery: crashCheckpointEvery}
	for k := 1; k <= n; k++ {
		dataDir := t.TempDir()
		cfg.DataDir = dataDir
		jobDir := filepath.Join(dataDir, "jobs", "j000001")

		// Phase 1: run with the write stream armed to die at point k.
		// LoseRenames models the harshest power cut: directory entries
		// not yet fsynced are lost too.
		cfs := crashfs.New(crashfs.Config{At: k, Kind: crashfs.Crash, LoseRenames: true})
		restore := safeio.SetFS(cfs)
		srv, err := New(cfg)
		if err != nil {
			restore()
			t.Fatalf("crash at %d: New on a fresh dir: %v", k, err)
		}
		if j, err := srv.Submit(doc, 0); err == nil {
			waitSettled(t, srv, j.id, 30*time.Second)
		}
		srv.Close()
		restore()
		if !cfs.Fired() {
			t.Fatalf("crash at %d: lifecycle ended before the armed point (only %d ops)", k, len(cfs.Ops()))
		}

		// Phase 2: the disk is now exactly what a restart would find.
		checkDiskInvariants(t, k, jobDir, wantSpec, wantResult)

		// Phase 3: restart on the healthy filesystem. Startup must always
		// succeed — whatever the crash left, the scrub absorbs it — and
		// the job must reach done, resubmitted if the crash predated its
		// durable existence.
		srv2, err := New(cfg)
		if err != nil {
			t.Fatalf("crash at %d: restart: %v", k, err)
		}
		id := "j000001"
		switch st, jerr := jobState(srv2, id); st {
		case "":
			j2, err := srv2.Submit(doc, 0)
			if err != nil {
				srv2.Close()
				t.Fatalf("crash at %d: resubmit after restart: %v", k, err)
			}
			id = j2.id
			waitDone(t, srv2, id, 30*time.Second)
		case StateDone:
			// Settled before the crash point; nothing to recover.
		case StateQueued, StateRunning:
			waitDone(t, srv2, id, 30*time.Second)
		default:
			srv2.Close()
			t.Fatalf("crash at %d: restart loaded job as %s (%s)", k, st, jerr)
		}
		srv2.Close()

		got, err := os.ReadFile(filepath.Join(dataDir, "jobs", id, "result.json"))
		if err != nil {
			t.Fatalf("crash at %d: no result after recovery: %v", k, err)
		}
		if !bytes.Equal(got, wantResult) {
			t.Fatalf("crash at %d: recovered result diverged (%d bytes, want %d)", k, len(got), len(wantResult))
		}
	}
}

// TestTransientIOErrSweep injects a one-shot EIO at every durability
// point. Unlike a crash, the daemon must stay alive through each: the
// job either completes anyway (persist failures are absorbed) or fails
// cleanly, and in every case a follow-up submission on the same daemon
// produces the byte-identical result.
func TestTransientIOErrSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps every durability point; skipped under -short")
	}
	_, wantResult := crashControl(t)
	n := len(enumerateCrashPoints(t))
	doc := crashSpec()
	for k := 1; k <= n; k++ {
		dataDir := t.TempDir()
		cfs := crashfs.New(crashfs.Config{At: k, Kind: crashfs.IOErr})
		restore := safeio.SetFS(cfs)
		srv, err := New(Config{DataDir: dataDir, CheckpointEvery: crashCheckpointEvery})
		if err != nil {
			restore()
			t.Fatalf("eio at %d: New: %v", k, err)
		}
		doneID := ""
		if j, err := srv.Submit(doc, 0); err == nil {
			waitSettled(t, srv, j.id, 30*time.Second)
			if st, _ := jobState(srv, j.id); st == StateDone {
				doneID = j.id
			}
		}
		if doneID == "" {
			// The fault consumed the first job; the daemon must still be
			// serving and the retry must succeed (the fault was one-shot).
			j, err := srv.Submit(doc, 0)
			if err != nil {
				srv.Close()
				restore()
				t.Fatalf("eio at %d: daemon not serving after transient fault: %v", k, err)
			}
			waitDone(t, srv, j.id, 30*time.Second)
			doneID = j.id
		}
		srv.Close()
		restore()
		got, err := os.ReadFile(filepath.Join(dataDir, "jobs", doneID, "result.json"))
		if err != nil {
			t.Fatalf("eio at %d: %v", k, err)
		}
		if !bytes.Equal(got, wantResult) {
			t.Fatalf("eio at %d: result diverged", k)
		}
	}
}

// TestDaemonShedsCheckpointsUnderDiskPressure pins the degraded mode:
// when every checkpoint write hits ENOSPC, the job still completes with
// a byte-identical result, the skips are counted and streamed, and
// /healthz drops to "degraded" while staying 200.
func TestDaemonShedsCheckpointsUnderDiskPressure(t *testing.T) {
	_, wantResult := crashControl(t)
	cfs := crashfs.New(crashfs.Config{At: 1, Kind: crashfs.NoSpace, Persistent: true, Match: ".ckpt"})
	restore := safeio.SetFS(cfs)
	defer restore()

	srv, err := New(Config{DataDir: t.TempDir(), CheckpointEvery: crashCheckpointEvery})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	j, err := srv.Submit(crashSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv, j.id, 30*time.Second)

	if skips := srv.checkpointSkips.Load(); skips == 0 {
		t.Fatal("no checkpoint skips counted under persistent ENOSPC")
	}
	hist, _, stop := j.broker.subscribe()
	stop()
	streamed := false
	for _, rec := range hist {
		if rec.Type == "event" && strings.Contains(rec.Error, "checkpoint skipped") {
			streamed = true
			break
		}
	}
	if !streamed {
		t.Fatal("checkpoint skips not surfaced on the job stream")
	}

	got, err := os.ReadFile(filepath.Join(j.dir, "result.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantResult) {
		t.Fatal("result under disk pressure diverged from the clean run")
	}

	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz status = %d, want 200", hr.StatusCode)
	}
	var health map[string]string
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "degraded" {
		t.Fatalf("healthz status = %q, want degraded", health["status"])
	}

	var st ServerStats
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	if err := json.NewDecoder(sr.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Robustness.CheckpointSkips == 0 {
		t.Fatal("stats did not surface checkpoint skips")
	}
}

// TestShortWriteTearsNothing aims ShortWrite at result.json's write:
// the commit must fail without a torn destination, the job fails
// cleanly, and the next submission succeeds.
func TestShortWriteTearsNothing(t *testing.T) {
	cfs := crashfs.New(crashfs.Config{At: 2, Kind: crashfs.ShortWrite, Match: "result.json"})
	restore := safeio.SetFS(cfs)
	defer restore()

	srv, err := New(Config{DataDir: t.TempDir(), CheckpointEvery: crashCheckpointEvery})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	j, err := srv.Submit(crashSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitSettled(t, srv, j.id, 30*time.Second)
	if st, jerr := jobState(srv, j.id); st != StateFailed {
		t.Fatalf("job with torn result write settled %s (%s), want failed", st, jerr)
	}
	if !cfs.Fired() {
		t.Fatal("short write never fired")
	}
	if _, err := os.Stat(filepath.Join(j.dir, "result.json")); !os.IsNotExist(err) {
		t.Fatalf("torn result.json visible at destination (stat err %v)", err)
	}

	j2, err := srv.Submit(crashSpec(), 0)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, srv, j2.id, 30*time.Second)
}

// TestCrashSweepMatchesFixtureSpec sanity-checks the sweep's workload
// against the fixture the whole harness depends on: the counting pass
// and the control run enumerate identical traces, so arming point k in
// the sweep really breaks the k-th point of the same lifecycle.
func TestCrashSweepMatchesFixtureSpec(t *testing.T) {
	a := enumerateCrashPoints(t)
	b := enumerateCrashPoints(t)
	if len(a) != len(b) {
		t.Fatalf("lifecycle not deterministic: %d vs %d durability points", len(a), len(b))
	}
	for i := range a {
		if a[i].Op != b[i].Op || filepath.Base(a[i].Path) != filepath.Base(b[i].Path) {
			// Temp names embed random suffixes; compare op + base name.
			ab, bb := filepath.Base(a[i].Path), filepath.Base(b[i].Path)
			if trimTempSuffix(ab) != trimTempSuffix(bb) || a[i].Op != b[i].Op {
				t.Fatalf("point %d differs between runs: %v vs %v", i+1, a[i], b[i])
			}
		}
	}
}

// trimTempSuffix strips safeio's random temp suffix so two runs'
// temp-file paths compare equal.
func trimTempSuffix(name string) string {
	if i := strings.Index(name, ".tmp-"); i >= 0 {
		return name[:i]
	}
	return name
}
