// Package daemon implements wormsimd: a long-lived simulation service
// that accepts scenario-spec submissions over HTTP, schedules them on
// the runner pool with per-job priorities and a bounded queue, streams
// per-tick progress as JSONL/SSE, shares one LRU-capped topology cache
// across jobs, and persists enough state (job records + engine
// checkpoints, all through safeio's crash-durable commit path) that
// in-flight jobs resume after a restart — even an unclean one — and
// finish with a result byte-identical to an uninterrupted run.
package daemon

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/safeio"
	"repro/internal/spec"
)

// Job lifecycle states, persisted verbatim in job.json. "interrupted"
// is in-memory only: a job whose daemon is shutting down keeps state
// "running" on disk so the next daemon re-enqueues and resumes it.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateCanceled    = "canceled"
	StateInterrupted = "interrupted"
)

// Defaults for Config zero values.
const (
	DefaultQueueCap        = 64
	DefaultExecutors       = 1
	DefaultNetCacheCap     = 8
	DefaultCheckpointEvery = 200
	DefaultGCInterval      = time.Minute
)

// Config configures a daemon Server. The zero value of every field
// except DataDir picks a sensible default.
type Config struct {
	// DataDir is the root of the daemon's persistent state; jobs live
	// in DataDir/jobs/<id>/. Required.
	DataDir string
	// QueueCap bounds how many jobs may wait in the queue; submissions
	// beyond it are rejected (HTTP 429). Running jobs don't count.
	QueueCap int
	// Executors is how many jobs run concurrently. Each job's replica
	// parallelism is its own spec's run.jobs knob.
	Executors int
	// NetCacheCap bounds the shared topology cache (distinct nets kept
	// in memory across jobs); <0 means unbounded.
	NetCacheCap int
	// CheckpointEvery is the tick interval between engine checkpoints
	// for every job (the restart-recovery granularity).
	CheckpointEvery int
	// TTL, when > 0, garbage-collects settled jobs (done, failed,
	// canceled) once they have been settled at least this long: the
	// job directory is removed and the job leaves the table. 0 keeps
	// everything forever.
	TTL time.Duration
	// GCInterval is how often the janitor scans for expired jobs and
	// stuck runs (default one minute). Only meaningful when TTL or
	// StuckAfter enables the janitor.
	GCInterval time.Duration
	// StuckAfter, when > 0, is the watchdog deadline: a running job
	// whose engine reports no tick progress for this long is cancelled
	// and marked failed (or re-enqueued, see StuckRequeue). Must
	// comfortably exceed the scenario's topology construction time,
	// which ticks no heartbeats. 0 disables the watchdog.
	StuckAfter time.Duration
	// StuckRequeue re-enqueues a watchdog-killed job (to resume from
	// its checkpoints) instead of failing it — for wedges worth one
	// more try, e.g. an executor stalled by transient I/O.
	StuckRequeue bool
}

func (c Config) withDefaults() Config {
	if c.QueueCap == 0 {
		c.QueueCap = DefaultQueueCap
	}
	if c.Executors == 0 {
		c.Executors = DefaultExecutors
	}
	if c.NetCacheCap == 0 {
		c.NetCacheCap = DefaultNetCacheCap
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = DefaultCheckpointEvery
	}
	if c.GCInterval == 0 {
		c.GCInterval = DefaultGCInterval
	}
	return c
}

// Sentinel errors the HTTP layer maps onto status codes.
var (
	ErrQueueFull = errors.New("daemon: job queue full")
	ErrClosed    = errors.New("daemon: server closed")
	ErrNotFound  = errors.New("daemon: no such job")
	ErrFinished  = errors.New("daemon: job already finished")
)

// Job is one submitted scenario spec moving through the daemon.
// Immutable fields are set at creation; mutable state is guarded by
// Server.mu.
type Job struct {
	id        string
	seq       int
	name      string
	priority  int
	submitted string
	dir       string
	spec      *spec.Spec
	broker    *broker

	// Guarded by Server.mu.
	state       string
	err         string
	pointsTotal int
	pointsDone  int
	canceled    bool
	stuck       bool
	cancel      context.CancelFunc
	handle      *runner.Handle
	// settled is when the job reached a terminal state (zero while
	// queued/running); the TTL garbage collector measures age from it.
	settled time.Time
	// lastStats is the current grid point's live replica-batch
	// progress, refreshed by the sweep's Progress callback.
	lastStats runner.Stats

	// lastBeat is the watchdog heartbeat: unix-nano of the most recent
	// engine tick (or lifecycle transition). Atomic because engine
	// worker goroutines stamp it on the tick path without taking
	// Server.mu.
	lastBeat atomic.Int64
}

// Server is the daemon: scheduler, executors, job table, and shared
// topology cache. Create with New, serve its Handler, stop with Close.
type Server struct {
	cfg     Config
	jobsDir string
	cache   *spec.NetCache
	pool    *runner.Pool
	mux     *http.ServeMux

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	wake   chan struct{}

	mu          sync.Mutex
	jobs        map[string]*Job
	queue       jobQueue
	queuedCount int
	// queueHighWater is the deepest the queue has been — sizing signal
	// for QueueCap, surfaced in /stats.
	queueHighWater int
	nextSeq        int
	closed         bool

	// Robustness counters (atomic: bumped from executor, janitor, and
	// collector goroutines without Server.mu). Surfaced in /stats and
	// /healthz.
	quarantined      atomic.Int64 // artifacts moved to quarantine/ by the startup scrub
	tempCleaned      atomic.Int64 // stale safeio temp files removed by the scrub
	gcRemoved        atomic.Int64 // settled job dirs removed by the TTL janitor
	checkpointSkips  atomic.Int64 // checkpoints shed under disk pressure (ErrNoSpace)
	persistErrors    atomic.Int64 // job.json commits that failed (daemon kept going)
	watchdogStuck    atomic.Int64 // running jobs the watchdog killed
	watchdogRequeues atomic.Int64 // of those, how many were re-enqueued
}

// New builds a Server over cfg.DataDir, reloading any persisted jobs
// (interrupted ones are re-enqueued to resume from their checkpoints)
// and starting the executor goroutines.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, errors.New("daemon: Config.DataDir is required")
	}
	jobsDir := filepath.Join(cfg.DataDir, "jobs")
	if err := os.MkdirAll(jobsDir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		jobsDir: jobsDir,
		cache:   spec.NewNetCache(cfg.NetCacheCap),
		pool:    runner.New(runner.WithJobs(1)),
		ctx:     ctx,
		cancel:  cancel,
		wake:    make(chan struct{}, 1),
		jobs:    make(map[string]*Job),
		nextSeq: 1,
	}
	s.mux = s.newMux()
	// Scrub before the rescan: stale temp files go away, and corrupt or
	// half-created artifacts (a crash between mkdir and the first
	// commit, a truncated job.json, a damaged checkpoint) move to
	// quarantine/ so the rescan sees only loadable state. A scrub
	// failure is fatal only if the data dir itself is unusable.
	if err := s.scrub(); err != nil {
		cancel()
		return nil, err
	}
	s.mu.Lock()
	err := s.loadJobs()
	s.mu.Unlock()
	if err != nil {
		cancel()
		return nil, err
	}
	s.gcExpired(time.Now())
	for i := 0; i < cfg.Executors; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	if cfg.TTL > 0 || cfg.StuckAfter > 0 {
		s.wg.Add(1)
		go s.janitor()
	}
	return s, nil
}

// Close stops the daemon: new submissions are rejected, running jobs
// are cancelled, and Close blocks until the executors drain. Jobs that
// were mid-run keep their persisted state "running", so a subsequent
// New over the same DataDir re-enqueues them and they resume from
// their checkpoints.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
}

// Submit parses a spec (JSON or YAML), validates it, and enqueues it as
// a new job. Returns ErrQueueFull when the queue is at capacity and
// ErrClosed after Close; any other error means the spec was rejected.
func (s *Server) Submit(data []byte, priority int) (*Job, error) {
	ps, err := spec.Parse(data)
	if err != nil {
		return nil, err
	}
	points, err := ps.Expand()
	if err != nil {
		return nil, err
	}
	canonical, err := ps.Canonical()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.queuedCount >= s.cfg.QueueCap {
		return nil, ErrQueueFull
	}
	seq := s.nextSeq
	s.nextSeq++
	j := &Job{
		id:          fmt.Sprintf("j%06d", seq),
		seq:         seq,
		name:        ps.Name,
		priority:    priority,
		submitted:   time.Now().UTC().Format(time.RFC3339),
		spec:        ps,
		broker:      newBroker(defaultHistory),
		state:       StateQueued,
		pointsTotal: len(points),
	}
	j.dir = filepath.Join(s.jobsDir, j.id)
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: %w", err)
	}
	if err := writeSpecFile(j.dir, canonical); err != nil {
		return nil, err
	}
	s.jobs[j.id] = j
	s.persistLocked(j)
	j.broker.publish(StreamRecord{Type: "job", State: StateQueued})
	s.pushLocked(j)
	return j, nil
}

// Cancel stops a job: a queued job is dequeued immediately; a running
// job's context is cancelled and it winds down asynchronously (watch
// its stream or poll its state). Finished jobs return ErrFinished.
func (s *Server) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	switch j.state {
	case StateQueued:
		j.state = StateCanceled
		j.err = "canceled before start"
		j.canceled = true
		j.settled = time.Now()
		s.queuedCount-- // stays in the heap; the executor skips it
		s.persistLocked(j)
		j.broker.close(StreamRecord{Type: "job", State: StateCanceled, Error: j.err})
		s.mu.Unlock()
		return nil
	case StateRunning:
		j.canceled = true
		cancel := j.cancel
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		s.mu.Unlock()
		return ErrFinished
	}
}

// executor pulls jobs off the priority queue and runs them until the
// server closes.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		j := s.nextJob()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// nextJob blocks until a queued job is available (returning it in the
// running state) or the server closes (returning nil).
func (s *Server) nextJob() *Job {
	for {
		s.mu.Lock()
		for len(s.queue) > 0 {
			j := heap.Pop(&s.queue).(*Job)
			if j.state != StateQueued {
				continue // canceled while queued; already accounted
			}
			j.state = StateRunning
			s.queuedCount--
			s.persistLocked(j)
			more := len(s.queue) > 0
			s.mu.Unlock()
			if more {
				s.wakeUp() // other executors may still have work
			}
			return j
		}
		s.mu.Unlock()
		select {
		case <-s.ctx.Done():
			return nil
		case <-s.wake:
		}
	}
}

func (s *Server) wakeUp() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// runJob executes one job under a runner.Handle (so a panicking
// scenario fails the job, not the daemon) and settles its final state.
func (s *Server) runJob(j *Job) {
	jctx, cancel := context.WithCancel(s.ctx)
	defer cancel()

	s.mu.Lock()
	j.cancel = cancel
	s.mu.Unlock()
	// Arm the watchdog heartbeat at the start: a job must not count as
	// stuck before its first tick just because topology construction
	// takes a while.
	j.lastBeat.Store(time.Now().UnixNano())
	j.broker.publish(StreamRecord{Type: "job", State: StateRunning})

	h := s.pool.Start(jctx, 1, func(ctx context.Context, _ int) (runner.Report, error) {
		return s.execute(ctx, j)
	})
	s.mu.Lock()
	j.handle = h
	s.mu.Unlock()
	_, err := h.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	j.cancel, j.handle = nil, nil
	switch {
	case err == nil:
		j.state = StateDone
		j.settled = time.Now()
		s.persistLocked(j)
		j.broker.close(StreamRecord{Type: "job", State: StateDone})
	case j.canceled:
		j.state = StateCanceled
		j.err = "canceled"
		j.settled = time.Now()
		s.persistLocked(j)
		j.broker.close(StreamRecord{Type: "job", State: StateCanceled, Error: j.err})
	case s.ctx.Err() != nil:
		// Daemon shutdown, not job failure: leave the persisted state
		// "running" so the next daemon resumes this job from its
		// checkpoints. Close the broker so live streams end now.
		j.state = StateInterrupted
		j.broker.close(StreamRecord{Type: "job", State: StateInterrupted})
	case j.stuck && s.cfg.StuckRequeue:
		// Watchdog kill, re-enqueue policy: back on the queue to
		// resume from checkpoints, like a restart would.
		j.stuck = false
		j.state = StateQueued
		j.pointsDone = 0
		j.lastStats = runner.Stats{}
		s.watchdogRequeues.Add(1)
		s.persistLocked(j)
		j.broker.publish(StreamRecord{Type: "job", State: StateQueued,
			Error: fmt.Sprintf("watchdog: no tick progress within %v; re-enqueued", s.cfg.StuckAfter)})
		s.pushLocked(j)
	case j.stuck:
		j.state = StateFailed
		j.err = fmt.Sprintf("watchdog: no tick progress within %v", s.cfg.StuckAfter)
		j.settled = time.Now()
		s.persistLocked(j)
		j.broker.close(StreamRecord{Type: "job", State: StateFailed, Error: j.err})
	default:
		j.state = StateFailed
		j.err = err.Error()
		j.settled = time.Now()
		s.persistLocked(j)
		j.broker.close(StreamRecord{Type: "job", State: StateFailed, Error: j.err})
	}
}

// execute runs the job's sweep through the shared topology cache, with
// every grid point checkpointing into (and resuming from) its own
// directory under the job, and per-tick metrics flowing to the job's
// stream broker. On success it writes result.json and discards the
// checkpoints.
func (s *Server) execute(ctx context.Context, j *Job) (runner.Report, error) {
	pointIdx := 0
	mod := func(c *spec.Compiled) {
		// Sweep points run serially, so this counter needs no lock.
		dir := filepath.Join(j.dir, "checkpoints", fmt.Sprintf("point-%03d", pointIdx))
		pointIdx++
		point := c.Name
		c.Options.Checkpoint = dir
		c.Options.Resume = dir
		c.Options.CheckpointEvery = s.cfg.CheckpointEvery
		// Degrade under disk pressure instead of failing the replica: a
		// full disk costs recovery granularity (the next restart replays
		// from an older checkpoint), not the job. Any other write error
		// still aborts — it means durable state can't be trusted.
		c.Options.OnCheckpointError = func(run int, err error) error {
			if errors.Is(err, safeio.ErrNoSpace) {
				s.checkpointSkips.Add(1)
				j.broker.publish(StreamRecord{
					Type: "event", Point: point, Run: run,
					Error: "checkpoint skipped: " + err.Error(),
				})
				return nil
			}
			return err
		}
		c.Options.Collectors = func(run int) obs.Collector {
			return &streamCollector{b: j.broker, job: j, point: point, run: run}
		}
		c.Options.Progress = func(st runner.Stats) {
			s.mu.Lock()
			j.lastStats = st
			s.mu.Unlock()
			j.broker.publish(StreamRecord{
				Type: "progress", Point: point,
				Completed: st.Completed, Runs: st.Runs, Ticks: st.Ticks,
			})
			if st.Done() {
				s.pointDone(j, point, st)
			}
		}
	}

	results, _, err := spec.SweepCache(ctx, j.spec, mod, s.cache)
	if err != nil {
		return runner.Report{}, err
	}
	var ticks int64
	for _, r := range results {
		ticks += r.Stats.Ticks
	}
	if err := s.writeResult(j, results); err != nil {
		return runner.Report{}, err
	}
	// The result is durably committed; the checkpoints have served
	// their purpose.
	if err := os.RemoveAll(filepath.Join(j.dir, "checkpoints")); err != nil {
		fmt.Fprintf(os.Stderr, "wormsimd: clean checkpoints %s: %v\n", j.id, err)
	}
	return runner.Report{Ticks: ticks}, nil
}

// pointDone records one grid point's completion: bumps the persisted
// progress counter and emits a "point" stream record.
func (s *Server) pointDone(j *Job, point string, st runner.Stats) {
	s.mu.Lock()
	j.pointsDone++
	s.persistLocked(j)
	s.mu.Unlock()
	j.broker.publish(StreamRecord{
		Type: "point", Point: point,
		Completed: st.Completed, Runs: st.Runs, Ticks: st.Ticks,
	})
}

// jobQueue is a priority heap: higher priority first, submission order
// within a priority.
type jobQueue []*Job

func (q jobQueue) Len() int { return len(q) }
func (q jobQueue) Less(i, k int) bool {
	if q[i].priority != q[k].priority {
		return q[i].priority > q[k].priority
	}
	return q[i].seq < q[k].seq
}
func (q jobQueue) Swap(i, k int) { q[i], q[k] = q[k], q[i] }
func (q *jobQueue) Push(x any)   { *q = append(*q, x.(*Job)) }
func (q *jobQueue) Pop() any {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

// pushLocked enqueues a job (Server.mu held) and wakes an executor.
func (s *Server) pushLocked(j *Job) {
	heap.Push(&s.queue, j)
	s.queuedCount++
	if s.queuedCount > s.queueHighWater {
		s.queueHighWater = s.queuedCount
	}
	s.wakeUp()
}

// writeSpecFile commits the canonical spec into the job directory.
func writeSpecFile(dir string, canonical []byte) error {
	return safeio.WriteFile(filepath.Join(dir, "spec.json"), canonical, 0o644)
}
