package daemon

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// defaultHistory is how many stream records a job retains for replay to
// late subscribers. Long jobs overflow it; subscribers then see a
// truncated prefix plus everything live — acceptable for a progress
// stream, whose source of truth for outcomes is result.json.
const defaultHistory = 4096

// StreamRecord is one line of a job's progress stream, JSON-encoded as
// JSONL or an SSE data frame. Type discriminates the payload:
//
//	"job"      — lifecycle transition; State carries the new state.
//	"tick"     — one engine tick's obs.TickMetrics (Point/Run locate it).
//	"event"    — a discrete obs.Event (quarantine trigger, etc).
//	"progress" — replica-batch progress for one grid point.
//	"point"    — a grid point completed (Completed/Runs are final).
type StreamRecord struct {
	Type  string `json:"type"`
	Seq   uint64 `json:"seq"`
	Point string `json:"point,omitempty"`
	Run   int    `json:"run,omitempty"`
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`

	Tick  *obs.TickMetrics `json:"tick,omitempty"`
	Event *obs.Event       `json:"event,omitempty"`

	Completed int   `json:"completed,omitempty"`
	Runs      int   `json:"runs,omitempty"`
	Ticks     int64 `json:"ticks,omitempty"`
}

// broker fans one job's stream records out to any number of HTTP
// subscribers while keeping a bounded replay history. Publishers never
// block: a subscriber that falls more than its channel buffer behind is
// dropped (its channel closes) and can reconnect to replay history.
type broker struct {
	mu      sync.Mutex
	seq     uint64
	hist    []StreamRecord
	histCap int
	subs    map[chan StreamRecord]struct{}
	closed  bool
	// drops counts subscribers disconnected for falling behind — the
	// back-pressure signal /stats surfaces so operators can tell "client
	// too slow" from "network flaky". Atomic so stats never contends
	// with the collector path's publish lock.
	drops atomic.Int64
}

// dropped reports how many subscribers this broker has disconnected for
// falling behind.
func (b *broker) dropped() int64 { return b.drops.Load() }

// subBuffer is each subscriber's channel depth. The stream handler only
// does network writes between receives, so this bounds how far a slow
// client can lag before being dropped.
const subBuffer = 1024

func newBroker(histCap int) *broker {
	return &broker{histCap: histCap, subs: make(map[chan StreamRecord]struct{})}
}

// publish stamps the record with the next sequence number, appends it
// to history, and offers it to every live subscriber. After close it is
// a no-op.
func (b *broker) publish(rec StreamRecord) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.appendLocked(rec)
}

// close publishes a terminal record and ends the stream: subscriber
// channels close after the terminal record, and future subscribers get
// the history plus a nil live channel.
func (b *broker) close(rec StreamRecord) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.appendLocked(rec)
	for ch := range b.subs {
		close(ch)
	}
	b.subs = nil
	b.closed = true
}

func (b *broker) appendLocked(rec StreamRecord) {
	b.seq++
	rec.Seq = b.seq
	b.hist = append(b.hist, rec)
	if len(b.hist) > 2*b.histCap {
		// Trim lazily at 2x capacity so the copy amortizes to O(1) per
		// publish; a fresh slice is allocated so the backing array does
		// not pin the dropped prefix.
		b.hist = append([]StreamRecord(nil), b.hist[len(b.hist)-b.histCap:]...)
	}
	for ch := range b.subs {
		select {
		case ch <- rec:
		default:
			// Subscriber too slow: drop it rather than block the
			// simulation's collector path.
			delete(b.subs, ch)
			close(ch)
			b.drops.Add(1)
		}
	}
}

// subscribe returns a snapshot of the history and a live channel for
// records published afterwards. The channel is nil when the stream has
// already ended (the terminal record is the history's last entry).
// cancel detaches the subscriber; it is safe to call after the broker
// closed the channel.
func (b *broker) subscribe() (history []StreamRecord, live <-chan StreamRecord, cancel func()) {
	b.mu.Lock()
	defer b.mu.Unlock()
	history = append([]StreamRecord(nil), b.hist...)
	if b.closed {
		return history, nil, func() {}
	}
	ch := make(chan StreamRecord, subBuffer)
	b.subs[ch] = struct{}{}
	return history, ch, func() {
		b.mu.Lock()
		defer b.mu.Unlock()
		if _, ok := b.subs[ch]; ok {
			delete(b.subs, ch)
			close(ch)
		}
	}
}

// streamCollector adapts a job's broker to the obs.Collector interface:
// every engine tick and event of one replica becomes a stream record.
//
// It deliberately does NOT implement obs.Summarizer. Summaries would
// flow into Result.Counters, and a replica resumed from a checkpoint
// only observes post-resume ticks — its summary would differ from an
// uninterrupted run's, breaking the byte-identical result.json
// guarantee the daemon's restart recovery makes.
type streamCollector struct {
	b     *broker
	job   *Job // heartbeat target; nil in tests that stream without a job
	point string
	run   int
}

func (c *streamCollector) Tick(m obs.TickMetrics) {
	if c.job != nil {
		// Every engine tick feeds the watchdog: a job is stuck only when
		// NO replica of NO point has ticked within the deadline.
		c.job.lastBeat.Store(time.Now().UnixNano())
	}
	c.b.publish(StreamRecord{Type: "tick", Point: c.point, Run: c.run, Tick: &m})
}

func (c *streamCollector) Event(ev obs.Event) {
	c.b.publish(StreamRecord{Type: "event", Point: c.point, Run: c.run, Event: &ev})
}
