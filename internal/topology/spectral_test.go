package topology

import (
	"math"
	"math/rand"
	"testing"
)

// complete builds K_n, whose adjacency spectrum is known exactly:
// λ1 = n-1.
func complete(t *testing.T, n int) *Graph {
	t.Helper()
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if err := g.AddEdge(u, v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return g
}

func TestSpectralRadiusKnownGraphs(t *testing.T) {
	// K_n: λ1 = n-1.
	for _, n := range []int{2, 5, 30} {
		got := complete(t, n).SpectralRadius(0, 0)
		if want := float64(n - 1); math.Abs(got-want) > 1e-6 {
			t.Errorf("K_%d: λ1 = %v, want %v", n, got, want)
		}
	}

	// Star_n: λ1 = sqrt(n-1).
	for _, n := range []int{5, 50} {
		g, err := Star(n)
		if err != nil {
			t.Fatal(err)
		}
		got := g.SpectralRadius(0, 0)
		if want := math.Sqrt(float64(n - 1)); math.Abs(got-want) > 1e-6 {
			t.Errorf("Star_%d: λ1 = %v, want %v", n, got, want)
		}
	}

	// Path_3 (0-1-2): λ1 = sqrt(2).
	p := New(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}} {
		if err := p.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := p.SpectralRadius(0, 0), math.Sqrt2; math.Abs(got-want) > 1e-6 {
		t.Errorf("P_3: λ1 = %v, want %v", got, want)
	}
}

func TestSpectralRadiusBounds(t *testing.T) {
	// For any graph, meanDegree <= λ1 <= maxDegree.
	g, err := BarabasiAlbert(300, 2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	l := g.SpectralRadius(0, 0)
	if l < g.MeanDegree()-1e-9 || l > float64(g.MaxDegree())+1e-9 {
		t.Errorf("λ1 = %v outside [mean degree %v, max degree %d]", l, g.MeanDegree(), g.MaxDegree())
	}
}

func TestSpectralRadiusDegenerate(t *testing.T) {
	if got := New(0).SpectralRadius(0, 0); got != 0 {
		t.Errorf("empty graph: λ1 = %v, want 0", got)
	}
	if got := New(4).SpectralRadius(0, 0); got != 0 {
		t.Errorf("edgeless graph: λ1 = %v, want 0", got)
	}
}
