// Package topology provides the network-graph substrate for the worm
// experiments: an undirected graph type, generators (star, power-law via
// Barabási–Albert preferential attachment as used by BRITE, Erdős–Rényi,
// ring, grid, an explicit hierarchical subnet topology, and a
// BRITE-style two-level AS internet — a power-law AS core whose stub
// ASes each serve a host subnet), degree statistics, and the paper's
// degree-ranked role assignment (top 5% of nodes by degree are backbone
// routers, the next 10% edge routers, the remainder end hosts) with the
// induced subnet partition.
//
// The two-level generator is also the scale substrate: its
// host-majority shape is what lets the engine route structurally
// (routing.Structural) instead of materializing an O(N²) hop table, so
// graphs of 10⁵–10⁶ hosts stay memory-lean.
package topology

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is a simple undirected graph over nodes 0..N-1. The zero value is
// an empty graph with no nodes; construct with New.
type Graph struct {
	n     int
	adj   [][]int32
	edges int
	// edgeSet dedupes edges during construction; keyed by packed (u,v)
	// with u < v.
	edgeSet map[int64]struct{}
}

// New returns an empty graph with n nodes and no edges.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	return &Graph{
		n:       n,
		adj:     make([][]int32, n),
		edgeSet: make(map[int64]struct{}),
	}
}

func packEdge(u, v int) int64 {
	if u > v {
		u, v = v, u
	}
	return int64(u)<<32 | int64(v)
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of (undirected) edges.
func (g *Graph) M() int { return g.edges }

// AddEdge inserts the undirected edge (u, v). Self-loops and duplicate
// edges are rejected with an error; out-of-range nodes likewise.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("topology: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("topology: self-loop at node %d", u)
	}
	key := packEdge(u, v)
	if _, dup := g.edgeSet[key]; dup {
		return fmt.Errorf("topology: duplicate edge (%d,%d)", u, v)
	}
	g.edgeSet[key] = struct{}{}
	g.adj[u] = append(g.adj[u], int32(v))
	g.adj[v] = append(g.adj[v], int32(u))
	g.edges++
	return nil
}

// HasEdge reports whether the undirected edge (u, v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return false
	}
	_, ok := g.edgeSet[packEdge(u, v)]
	return ok
}

// Degree returns the degree of node u (0 for out-of-range nodes).
func (g *Graph) Degree(u int) int {
	if u < 0 || u >= g.n {
		return 0
	}
	return len(g.adj[u])
}

// Neighbors returns the adjacency list of u. The returned slice is owned
// by the graph and must not be modified.
func (g *Graph) Neighbors(u int) []int32 {
	if u < 0 || u >= g.n {
		return nil
	}
	return g.adj[u]
}

// Edges returns all edges as (u, v) pairs with u < v, in deterministic
// (sorted) order.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.edges)
	for key := range g.edgeSet {
		out = append(out, [2]int{int(key >> 32), int(key & 0xffffffff)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// ErrDisconnected reports that an operation requiring a connected graph
// was given a disconnected one.
var ErrDisconnected = errors.New("topology: graph is not connected")

// Connected reports whether the graph is connected (true for graphs with
// fewer than two nodes).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	seen := make([]bool, g.n)
	stack := []int32{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == g.n
}

// DegreeSequence returns the degrees of all nodes, indexed by node.
func (g *Graph) DegreeSequence() []int {
	out := make([]int, g.n)
	for u := range out {
		out[u] = len(g.adj[u])
	}
	return out
}

// MaxDegree returns the highest degree in the graph (0 if empty).
func (g *Graph) MaxDegree() int {
	max := 0
	for u := 0; u < g.n; u++ {
		if d := len(g.adj[u]); d > max {
			max = d
		}
	}
	return max
}

// NodesByDegreeDesc returns all node IDs sorted by degree descending,
// ties broken by node ID ascending (deterministic).
func (g *Graph) NodesByDegreeDesc() []int {
	out := make([]int, g.n)
	for i := range out {
		out[i] = i
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := len(g.adj[out[i]]), len(g.adj[out[j]])
		if di != dj {
			return di > dj
		}
		return out[i] < out[j]
	})
	return out
}
