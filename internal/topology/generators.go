package topology

import (
	"fmt"
	"math/rand"
)

// Star returns a star graph with one hub (node 0) and n-1 leaves, the
// topology of Section 4 of the paper. n must be >= 2.
func Star(n int) (*Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs >= 2 nodes, got %d", n)
	}
	g := New(n)
	for v := 1; v < n; v++ {
		if err := g.AddEdge(0, v); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Hub is the hub node ID of graphs produced by Star.
const Hub = 0

// BarabasiAlbert generates a power-law graph over n nodes by preferential
// attachment: each new node attaches m edges to existing nodes chosen
// with probability proportional to their current degree. This is the
// generative model behind BRITE's router-level topologies, which the
// paper used for its 1000-node AS-like graph. The graph is connected by
// construction. n must be > m and m >= 1.
func BarabasiAlbert(n, m int, rng *rand.Rand) (*Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("topology: BA attachment m must be >= 1, got %d", m)
	}
	if n <= m {
		return nil, fmt.Errorf("topology: BA needs n > m, got n=%d m=%d", n, m)
	}
	if rng == nil {
		return nil, fmt.Errorf("topology: BA needs a random source")
	}
	g := New(n)
	// Seed: a connected core of m+1 nodes (a clique keeps early degrees
	// nonzero and the graph connected).
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
		}
	}
	// Repeated-targets list: node u appears Degree(u) times. Drawing
	// uniformly from it is preferential attachment.
	targets := make([]int32, 0, 2*m*n)
	for u := 0; u <= m; u++ {
		for range g.adj[u] {
			targets = append(targets, int32(u))
		}
	}
	for u := m + 1; u < n; u++ {
		added := 0
		for added < m {
			v := int(targets[rng.Intn(len(targets))])
			if v == u || g.HasEdge(u, v) {
				continue
			}
			if err := g.AddEdge(u, v); err != nil {
				return nil, err
			}
			targets = append(targets, int32(u), int32(v))
			added++
		}
	}
	return g, nil
}

// ErdosRenyi generates a G(n, p) random graph, then (if requested) adds a
// random spanning chain to guarantee connectivity. It is a test/ablation
// substrate: the paper's results depend on the heavy-tailed degrees of
// the BA graph, and ER provides the homogeneous-degree contrast.
func ErdosRenyi(n int, p float64, connect bool, rng *rand.Rand) (*Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: ER needs >= 1 node, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("topology: ER probability %v out of [0,1]", p)
	}
	if rng == nil {
		return nil, fmt.Errorf("topology: ER needs a random source")
	}
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				if err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	if connect {
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			u, v := perm[i-1], perm[i]
			if !g.HasEdge(u, v) {
				if err := g.AddEdge(u, v); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Ring returns a cycle over n nodes (n >= 3).
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs >= 3 nodes, got %d", n)
	}
	g := New(n)
	for u := 0; u < n; u++ {
		if err := g.AddEdge(u, (u+1)%n); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Grid returns a rows x cols 2D lattice.
func Grid(rows, cols int) (*Graph, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("topology: grid needs positive dims, got %dx%d", rows, cols)
	}
	g := New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddEdge(id(r, c), id(r, c+1)); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddEdge(id(r, c), id(r+1, c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// HierarchicalConfig describes an explicit enterprise-style topology:
// a clique (or ring) of backbone routers, each serving several edge
// routers, each serving a subnet of hosts. It is the idealized version
// of the structure the paper induces on the BA graph by degree rank, and
// is used by the enterprise example and ablation benches.
type HierarchicalConfig struct {
	Backbones      int // number of backbone routers (>=1)
	EdgesPer       int // edge routers per backbone (>=1)
	HostsPerSubnet int // hosts per edge router (>=1)
}

// Hierarchical builds the topology described by cfg. Node IDs are
// assigned backbone-first, then edge routers, then hosts; the returned
// Roles slice gives the role of each node and Subnet the subnet index of
// each host (-1 for routers).
func Hierarchical(cfg HierarchicalConfig) (*Graph, []Role, []int, error) {
	if cfg.Backbones < 1 || cfg.EdgesPer < 1 || cfg.HostsPerSubnet < 1 {
		return nil, nil, nil, fmt.Errorf("topology: bad hierarchical config %+v", cfg)
	}
	nb := cfg.Backbones
	ne := nb * cfg.EdgesPer
	nh := ne * cfg.HostsPerSubnet
	n := nb + ne + nh
	g := New(n)
	roles := make([]Role, n)
	subnet := make([]int, n)
	for i := range subnet {
		subnet[i] = -1
	}
	// Backbone mesh (clique; for one backbone there is nothing to mesh).
	for u := 0; u < nb; u++ {
		roles[u] = RoleBackbone
		for v := u + 1; v < nb; v++ {
			if err := g.AddEdge(u, v); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	// Edge routers hang off their backbone.
	for e := 0; e < ne; e++ {
		id := nb + e
		roles[id] = RoleEdge
		if err := g.AddEdge(id, e/cfg.EdgesPer); err != nil {
			return nil, nil, nil, err
		}
	}
	// Hosts hang off their edge router; subnet index == edge router index.
	for h := 0; h < nh; h++ {
		id := nb + ne + h
		roles[id] = RoleHost
		sub := h / cfg.HostsPerSubnet
		subnet[id] = sub
		if err := g.AddEdge(id, nb+sub); err != nil {
			return nil, nil, nil, err
		}
	}
	return g, roles, subnet, nil
}
