package topology

import (
	"math"
	"sort"
)

// DegreeHistogram returns degree -> node count.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for u := 0; u < g.n; u++ {
		h[len(g.adj[u])]++
	}
	return h
}

// DegreeCCDF returns the complementary cumulative degree distribution:
// for each distinct degree d (ascending), the fraction of nodes with
// degree >= d. On a power-law graph the CCDF is a straight line in
// log-log space — the property the paper's BRITE topology shares with
// the Oregon RouteViews AS graph.
func (g *Graph) DegreeCCDF() (degrees []int, frac []float64) {
	if g.n == 0 {
		return nil, nil
	}
	hist := g.DegreeHistogram()
	degrees = make([]int, 0, len(hist))
	for d := range hist {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	frac = make([]float64, len(degrees))
	remaining := g.n
	for i, d := range degrees {
		frac[i] = float64(remaining) / float64(g.n)
		remaining -= hist[d]
	}
	return degrees, frac
}

// PowerLawExponent estimates the tail exponent γ of the degree
// distribution P(k) ∝ k^{−γ} with the discrete Hill (maximum
// likelihood) estimator over degrees >= kmin:
//
//	γ ≈ 1 + n / Σ ln(k_i / (kmin − 1/2))
//
// It returns NaN when fewer than 10 nodes reach kmin. Measured AS
// graphs have γ ≈ 2.1; Barabási–Albert generates γ ≈ 3.
func (g *Graph) PowerLawExponent(kmin int) float64 {
	if kmin < 1 {
		kmin = 1
	}
	var sum float64
	n := 0
	for u := 0; u < g.n; u++ {
		k := len(g.adj[u])
		if k >= kmin {
			sum += math.Log(float64(k) / (float64(kmin) - 0.5))
			n++
		}
	}
	if n < 10 || sum == 0 {
		return math.NaN()
	}
	return 1 + float64(n)/sum
}

// ClusteringCoefficient returns the global clustering coefficient
// (3 × triangles / connected triples). Star and tree topologies score
// 0; cliques score 1.
func (g *Graph) ClusteringCoefficient() float64 {
	triangles := 0
	triples := 0
	for u := 0; u < g.n; u++ {
		d := len(g.adj[u])
		triples += d * (d - 1) / 2
		for i := 0; i < d; i++ {
			for j := i + 1; j < d; j++ {
				if g.HasEdge(int(g.adj[u][i]), int(g.adj[u][j])) {
					triangles++
				}
			}
		}
	}
	if triples == 0 {
		return 0
	}
	// Each triangle is counted once per corner = 3 times.
	return float64(triangles) / float64(triples)
}

// MeanDegree returns the average node degree (0 for an empty graph).
func (g *Graph) MeanDegree() float64 {
	if g.n == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(g.n)
}

// AssortativityByDegree returns the Pearson correlation of degrees
// across edges (Newman's assortativity coefficient r). AS-like graphs
// are disassortative (r < 0): hubs connect to leaves.
func (g *Graph) AssortativityByDegree() float64 {
	m := g.M()
	if m == 0 {
		return math.NaN()
	}
	var sumProd, sumA, sumB, sumA2, sumB2 float64
	for _, e := range g.Edges() {
		// Count each undirected edge in both orientations so the
		// statistic is symmetric.
		for _, pair := range [2][2]int{{e[0], e[1]}, {e[1], e[0]}} {
			a := float64(g.Degree(pair[0]))
			b := float64(g.Degree(pair[1]))
			sumProd += a * b
			sumA += a
			sumB += b
			sumA2 += a * a
			sumB2 += b * b
		}
	}
	n := float64(2 * m)
	cov := sumProd/n - (sumA/n)*(sumB/n)
	varA := sumA2/n - (sumA/n)*(sumA/n)
	varB := sumB2/n - (sumB/n)*(sumB/n)
	den := math.Sqrt(varA * varB)
	if den == 0 {
		return math.NaN()
	}
	return cov / den
}
