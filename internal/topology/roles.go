package topology

import "fmt"

// Role classifies a node in the deployment experiments of Section 5:
// the paper designates the top 5% of nodes by degree as backbone routers
// and the next 10% as edge routers; the rest are end hosts.
type Role uint8

// Node roles. RoleHost is the zero value so that freshly allocated role
// slices default to "end host".
const (
	RoleHost Role = iota
	RoleEdge
	RoleBackbone
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleHost:
		return "host"
	case RoleEdge:
		return "edge"
	case RoleBackbone:
		return "backbone"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// RoleFractions configures the degree-ranked role split.
type RoleFractions struct {
	Backbone float64 // fraction of nodes designated backbone (paper: 0.05)
	Edge     float64 // fraction designated edge routers (paper: 0.10)
}

// PaperRoles is the split used throughout Section 5.4 of the paper.
var PaperRoles = RoleFractions{Backbone: 0.05, Edge: 0.10}

// AssignRoles labels every node of g using the degree-rank rule: the
// top frac.Backbone of nodes by degree become backbone routers, the next
// frac.Edge become edge routers, and the remainder are hosts. At least
// one node becomes backbone and one edge when the fractions are positive
// and the graph has enough nodes.
func AssignRoles(g *Graph, frac RoleFractions) ([]Role, error) {
	if frac.Backbone < 0 || frac.Edge < 0 || frac.Backbone+frac.Edge > 1 {
		return nil, fmt.Errorf("topology: bad role fractions %+v", frac)
	}
	n := g.N()
	roles := make([]Role, n)
	order := g.NodesByDegreeDesc()
	nb := int(frac.Backbone * float64(n))
	if frac.Backbone > 0 && nb == 0 && n > 0 {
		nb = 1
	}
	ne := int(frac.Edge * float64(n))
	if frac.Edge > 0 && ne == 0 && n > nb {
		ne = 1
	}
	for i, u := range order {
		switch {
		case i < nb:
			roles[u] = RoleBackbone
		case i < nb+ne:
			roles[u] = RoleEdge
		default:
			roles[u] = RoleHost
		}
	}
	return roles, nil
}

// NodesWithRole returns the IDs of all nodes holding role r, ascending.
func NodesWithRole(roles []Role, r Role) []int {
	var out []int
	for u, got := range roles {
		if got == r {
			out = append(out, u)
		}
	}
	return out
}

// Subnets assigns every host to the subnet of its nearest edge router
// (multi-source BFS from all edge routers; ties broken by BFS order,
// which is deterministic given the adjacency lists). Edge and backbone
// routers get subnet -1. The subnet index of a host is the index of its
// edge router within NodesWithRole(roles, RoleEdge).
//
// If the graph has no edge routers all hosts land in subnet 0 (one flat
// subnet), matching the paper's single-subnet approximation in Section 7.
func Subnets(g *Graph, roles []Role) []int {
	n := g.N()
	subnet := make([]int, n)
	for i := range subnet {
		subnet[i] = -1
	}
	edges := NodesWithRole(roles, RoleEdge)
	if len(edges) == 0 {
		for u := 0; u < n; u++ {
			if roles[u] == RoleHost {
				subnet[u] = 0
			}
		}
		return subnet
	}
	owner := make([]int, n)
	for i := range owner {
		owner[i] = -1
	}
	queue := make([]int32, 0, n)
	for idx, e := range edges {
		owner[e] = idx
		queue = append(queue, int32(e))
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range g.Neighbors(int(u)) {
			if owner[v] == -1 {
				owner[v] = owner[u]
				queue = append(queue, v)
			}
		}
	}
	for u := 0; u < n; u++ {
		if roles[u] == RoleHost && owner[u] >= 0 {
			subnet[u] = owner[u]
		}
	}
	return subnet
}

// SubnetMembers groups host IDs by subnet index. Hosts with subnet -1
// (unreachable from any edge router) are omitted.
func SubnetMembers(subnet []int, roles []Role) map[int][]int {
	out := make(map[int][]int)
	for u, s := range subnet {
		if s >= 0 && roles[u] == RoleHost {
			out[s] = append(out[s], u)
		}
	}
	return out
}
