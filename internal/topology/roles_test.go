package topology

import (
	"math/rand"
	"testing"
)

func mustBA(t *testing.T, n, m int, seed int64) *Graph {
	t.Helper()
	g, err := BarabasiAlbert(n, m, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	return g
}

func TestAssignRolesPaperSplit(t *testing.T) {
	g := mustBA(t, 1000, 2, 1)
	roles, err := AssignRoles(g, PaperRoles)
	if err != nil {
		t.Fatalf("AssignRoles: %v", err)
	}
	nb := len(NodesWithRole(roles, RoleBackbone))
	ne := len(NodesWithRole(roles, RoleEdge))
	nh := len(NodesWithRole(roles, RoleHost))
	if nb != 50 || ne != 100 || nh != 850 {
		t.Fatalf("split = %d/%d/%d, want 50/100/850", nb, ne, nh)
	}
	// Every backbone node has degree >= every edge node >= every host.
	minBackbone := 1 << 30
	for _, u := range NodesWithRole(roles, RoleBackbone) {
		if d := g.Degree(u); d < minBackbone {
			minBackbone = d
		}
	}
	maxEdge := 0
	for _, u := range NodesWithRole(roles, RoleEdge) {
		if d := g.Degree(u); d > maxEdge {
			maxEdge = d
		}
	}
	if maxEdge > minBackbone {
		t.Errorf("edge degree %d exceeds backbone degree %d", maxEdge, minBackbone)
	}
}

func TestAssignRolesSmallGraphGetsAtLeastOne(t *testing.T) {
	g, err := Star(10)
	if err != nil {
		t.Fatal(err)
	}
	roles, err := AssignRoles(g, PaperRoles)
	if err != nil {
		t.Fatal(err)
	}
	if len(NodesWithRole(roles, RoleBackbone)) != 1 {
		t.Error("want exactly one backbone on a 10-node graph at 5%")
	}
	if len(NodesWithRole(roles, RoleEdge)) != 1 {
		t.Error("want exactly one edge router on a 10-node graph at 10%")
	}
	// The hub has the highest degree, so it must be the backbone.
	if roles[Hub] != RoleBackbone {
		t.Errorf("hub role = %v, want backbone", roles[Hub])
	}
}

func TestAssignRolesBadFractions(t *testing.T) {
	g, err := Star(5)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []RoleFractions{
		{Backbone: -0.1, Edge: 0.1},
		{Backbone: 0.6, Edge: 0.6},
	} {
		if _, err := AssignRoles(g, frac); err == nil {
			t.Errorf("fractions %+v should fail", frac)
		}
	}
}

func TestRoleString(t *testing.T) {
	tests := []struct {
		r    Role
		want string
	}{
		{RoleHost, "host"},
		{RoleEdge, "edge"},
		{RoleBackbone, "backbone"},
		{Role(99), "Role(99)"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("%d.String() = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestSubnets(t *testing.T) {
	g := mustBA(t, 1000, 2, 5)
	roles, err := AssignRoles(g, PaperRoles)
	if err != nil {
		t.Fatal(err)
	}
	subnet := Subnets(g, roles)
	edgeCount := len(NodesWithRole(roles, RoleEdge))
	for u, s := range subnet {
		switch roles[u] {
		case RoleHost:
			if s < 0 || s >= edgeCount {
				t.Fatalf("host %d has subnet %d (edge routers: %d)", u, s, edgeCount)
			}
		default:
			if s != -1 {
				t.Fatalf("router %d has subnet %d, want -1", u, s)
			}
		}
	}
	members := SubnetMembers(subnet, roles)
	total := 0
	for _, hosts := range members {
		total += len(hosts)
	}
	if total != len(NodesWithRole(roles, RoleHost)) {
		t.Errorf("subnet members %d != hosts %d", total, len(NodesWithRole(roles, RoleHost)))
	}
}

func TestSubnetsNoEdgeRouters(t *testing.T) {
	g, err := Star(5)
	if err != nil {
		t.Fatal(err)
	}
	roles := make([]Role, 5) // all hosts
	subnet := Subnets(g, roles)
	for u, s := range subnet {
		if s != 0 {
			t.Errorf("node %d subnet = %d, want 0 (flat)", u, s)
		}
	}
}

func TestHierarchical(t *testing.T) {
	cfg := HierarchicalConfig{Backbones: 2, EdgesPer: 3, HostsPerSubnet: 10}
	g, roles, subnet, err := Hierarchical(cfg)
	if err != nil {
		t.Fatalf("Hierarchical: %v", err)
	}
	wantN := 2 + 6 + 60
	if g.N() != wantN {
		t.Fatalf("N = %d, want %d", g.N(), wantN)
	}
	if !g.Connected() {
		t.Error("hierarchical topology should be connected")
	}
	if len(NodesWithRole(roles, RoleBackbone)) != 2 ||
		len(NodesWithRole(roles, RoleEdge)) != 6 ||
		len(NodesWithRole(roles, RoleHost)) != 60 {
		t.Error("role counts wrong")
	}
	members := SubnetMembers(subnet, roles)
	if len(members) != 6 {
		t.Fatalf("subnets = %d, want 6", len(members))
	}
	for s, hosts := range members {
		if len(hosts) != 10 {
			t.Errorf("subnet %d has %d hosts, want 10", s, len(hosts))
		}
	}
	if _, _, _, err := Hierarchical(HierarchicalConfig{}); err == nil {
		t.Error("zero config should fail")
	}
}
