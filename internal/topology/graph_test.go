package topology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndAddEdge(t *testing.T) {
	g := New(4)
	if g.N() != 4 || g.M() != 0 {
		t.Fatalf("fresh graph N=%d M=%d", g.N(), g.M())
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge should exist in both directions")
	}
	if g.M() != 1 {
		t.Errorf("M = %d, want 1", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Error("degrees wrong after one edge")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	tests := []struct {
		name string
		u, v int
	}{
		{"self-loop", 1, 1},
		{"u out of range", -1, 0},
		{"v out of range", 0, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := g.AddEdge(tt.u, tt.v); err == nil {
				t.Errorf("AddEdge(%d,%d) should fail", tt.u, tt.v)
			}
		})
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := g.AddEdge(1, 0); err == nil {
		t.Error("duplicate (reversed) edge should fail")
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := New(4)
	for _, e := range [][2]int{{2, 3}, {0, 1}, {1, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	got := g.Edges()
	want := [][2]int{{0, 1}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("edges = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("edge %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestConnected(t *testing.T) {
	g := New(3)
	if g.Connected() {
		t.Error("3 isolated nodes are not connected")
	}
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Error("still disconnected")
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Error("path graph should be connected")
	}
	if !New(0).Connected() || !New(1).Connected() {
		t.Error("trivial graphs are connected")
	}
}

func TestDegreeOutOfRange(t *testing.T) {
	g := New(2)
	if g.Degree(-1) != 0 || g.Degree(5) != 0 {
		t.Error("out-of-range degree should be 0")
	}
	if g.Neighbors(-1) != nil || g.Neighbors(5) != nil {
		t.Error("out-of-range neighbors should be nil")
	}
	if g.HasEdge(-1, 0) || g.HasEdge(0, 0) {
		t.Error("degenerate HasEdge should be false")
	}
}

func TestStar(t *testing.T) {
	g, err := Star(200)
	if err != nil {
		t.Fatalf("Star: %v", err)
	}
	if g.N() != 200 || g.M() != 199 {
		t.Fatalf("star N=%d M=%d", g.N(), g.M())
	}
	if g.Degree(Hub) != 199 {
		t.Errorf("hub degree = %d, want 199", g.Degree(Hub))
	}
	for v := 1; v < 200; v++ {
		if g.Degree(v) != 1 {
			t.Fatalf("leaf %d degree = %d, want 1", v, g.Degree(v))
		}
	}
	if !g.Connected() {
		t.Error("star should be connected")
	}
	if _, err := Star(1); err == nil {
		t.Error("Star(1) should fail")
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, err := BarabasiAlbert(1000, 2, rng)
	if err != nil {
		t.Fatalf("BA: %v", err)
	}
	if g.N() != 1000 {
		t.Fatalf("N = %d", g.N())
	}
	if !g.Connected() {
		t.Error("BA graph should be connected")
	}
	// Expected edges: C(3,2)=3 seed + 2*(1000-3) new.
	wantM := 3 + 2*(1000-3)
	if g.M() != wantM {
		t.Errorf("M = %d, want %d", g.M(), wantM)
	}
	// Heavy tail: max degree should greatly exceed the mean (~4).
	if g.MaxDegree() < 20 {
		t.Errorf("max degree %d too small for a power-law graph", g.MaxDegree())
	}
}

func TestBarabasiAlbertErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BarabasiAlbert(5, 0, rng); err == nil {
		t.Error("m=0 should fail")
	}
	if _, err := BarabasiAlbert(2, 2, rng); err == nil {
		t.Error("n<=m should fail")
	}
	if _, err := BarabasiAlbert(10, 2, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	a, err := BarabasiAlbert(200, 2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := BarabasiAlbert(200, 2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatalf("edge counts differ: %d vs %d", len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestErdosRenyi(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := ErdosRenyi(100, 0.05, true, rng)
	if err != nil {
		t.Fatalf("ER: %v", err)
	}
	if !g.Connected() {
		t.Error("connect=true should force connectivity")
	}
	if _, err := ErdosRenyi(0, 0.5, false, rng); err == nil {
		t.Error("n=0 should fail")
	}
	if _, err := ErdosRenyi(10, 1.5, false, rng); err == nil {
		t.Error("p>1 should fail")
	}
	if _, err := ErdosRenyi(10, 0.5, false, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestRingAndGrid(t *testing.T) {
	r, err := Ring(10)
	if err != nil {
		t.Fatalf("Ring: %v", err)
	}
	if r.M() != 10 || !r.Connected() {
		t.Errorf("ring M=%d connected=%v", r.M(), r.Connected())
	}
	for u := 0; u < 10; u++ {
		if r.Degree(u) != 2 {
			t.Fatalf("ring degree(%d) = %d", u, r.Degree(u))
		}
	}
	if _, err := Ring(2); err == nil {
		t.Error("Ring(2) should fail")
	}

	g, err := Grid(3, 4)
	if err != nil {
		t.Fatalf("Grid: %v", err)
	}
	if g.N() != 12 || !g.Connected() {
		t.Errorf("grid N=%d connected=%v", g.N(), g.Connected())
	}
	// Edges in a rows x cols grid: rows*(cols-1) + cols*(rows-1).
	if want := 3*3 + 4*2; g.M() != want {
		t.Errorf("grid M=%d, want %d", g.M(), want)
	}
	if _, err := Grid(0, 5); err == nil {
		t.Error("Grid(0,5) should fail")
	}
}

// Property: handshake lemma — the degree sum is exactly twice the edge
// count, for arbitrary generated graphs.
func TestHandshakeProperty(t *testing.T) {
	f := func(seed int64, nn uint8, mm uint8) bool {
		n := int(nn%50) + 5
		m := int(mm%3) + 1
		if n <= m {
			n = m + 2
		}
		g, err := BarabasiAlbert(n, m, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		sum := 0
		for _, d := range g.DegreeSequence() {
			sum += d
		}
		return sum == 2*g.M()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: NodesByDegreeDesc is a permutation sorted by degree.
func TestDegreeOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		g, err := ErdosRenyi(40, 0.1, true, rand.New(rand.NewSource(seed)))
		if err != nil {
			return false
		}
		order := g.NodesByDegreeDesc()
		if len(order) != g.N() {
			return false
		}
		seen := make(map[int]bool, len(order))
		for i, u := range order {
			if seen[u] {
				return false
			}
			seen[u] = true
			if i > 0 && g.Degree(order[i-1]) < g.Degree(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
