package topology

import (
	"math/rand"
	"testing"
)

func TestTwoLevelBasics(t *testing.T) {
	cfg := TwoLevelConfig{ASes: 50, AttachM: 1, TransitFraction: 0.1, HostsPerStub: 8}
	g, roles, subnet, err := TwoLevel(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("TwoLevel: %v", err)
	}
	nTransit := 5
	nStub := 45
	wantN := 50 + nStub*8
	if g.N() != wantN {
		t.Fatalf("N = %d, want %d", g.N(), wantN)
	}
	if !g.Connected() {
		t.Error("two-level topology should be connected")
	}
	if got := len(NodesWithRole(roles, RoleBackbone)); got != nTransit {
		t.Errorf("transit ASes = %d, want %d", got, nTransit)
	}
	if got := len(NodesWithRole(roles, RoleEdge)); got != nStub {
		t.Errorf("stub ASes = %d, want %d", got, nStub)
	}
	if got := len(NodesWithRole(roles, RoleHost)); got != nStub*8 {
		t.Errorf("hosts = %d, want %d", got, nStub*8)
	}
	// Transit ASes are the high-degree core.
	minTransit := 1 << 30
	for _, u := range NodesWithRole(roles, RoleBackbone) {
		if d := g.Degree(u); d < minTransit {
			minTransit = d
		}
	}
	if minTransit < 2 {
		t.Errorf("transit min degree = %d, want the core", minTransit)
	}
	// Subnets: every host belongs to one; sizes are uniform.
	members := SubnetMembers(subnet, roles)
	if len(members) != nStub {
		t.Fatalf("subnets = %d, want %d", len(members), nStub)
	}
	for s, hosts := range members {
		if len(hosts) != 8 {
			t.Errorf("subnet %d size = %d, want 8", s, len(hosts))
		}
	}
	// Hosts are leaves (degree 1) hanging off their edge router.
	for _, h := range NodesWithRole(roles, RoleHost) {
		if g.Degree(h) != 1 {
			t.Fatalf("host %d degree = %d, want 1", h, g.Degree(h))
		}
		nb := int(g.Neighbors(h)[0])
		if roles[nb] != RoleEdge {
			t.Fatalf("host %d attaches to %v, want an edge router", h, roles[nb])
		}
	}
}

func TestTwoLevelErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		cfg  TwoLevelConfig
	}{
		{"too few ASes", TwoLevelConfig{ASes: 3, AttachM: 1, HostsPerStub: 2}},
		{"no hosts", TwoLevelConfig{ASes: 10, AttachM: 1, HostsPerStub: 0}},
		{"bad transit fraction", TwoLevelConfig{ASes: 10, AttachM: 1, TransitFraction: 1, HostsPerStub: 2}},
		{"bad attach", TwoLevelConfig{ASes: 10, AttachM: 0, HostsPerStub: 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, _, err := TwoLevel(tt.cfg, rng); err == nil {
				t.Error("want error")
			}
		})
	}
	if _, _, _, err := TwoLevel(TwoLevelConfig{ASes: 10, AttachM: 1, HostsPerStub: 2}, nil); err == nil {
		t.Error("nil rng should fail")
	}
}

func TestTwoLevelZeroTransit(t *testing.T) {
	cfg := TwoLevelConfig{ASes: 10, AttachM: 1, TransitFraction: 0, HostsPerStub: 3}
	_, roles, _, err := TwoLevel(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(NodesWithRole(roles, RoleBackbone)); got != 0 {
		t.Errorf("zero transit fraction gave %d backbone nodes", got)
	}
	if got := len(NodesWithRole(roles, RoleEdge)); got != 10 {
		t.Errorf("stubs = %d, want 10", got)
	}
}
