package topology

import "math"

// SpectralRadius estimates the largest eigenvalue λ1 of the graph's
// adjacency matrix by power iteration. λ1 is the epidemic-threshold
// quantity of Draief, Ganesh & Massoulié ("Thresholds for virus spread
// on networks"): an SIR epidemic with per-edge infection rate β and
// removal rate µ dies out quickly when β·λ1/µ < 1 and can take off
// when it exceeds 1. The spec fuzzer uses it as an independent oracle
// for sub/super-critical scenarios.
//
// The iteration actually runs on the shifted matrix A+I: bipartite
// graphs (stars, paths, trees) have -λ1 in their spectrum, which makes
// plain power iteration oscillate between the ±λ1 eigenspaces; the
// shift moves the dominant eigenvalue of A+I to λ1+1, strictly larger
// in magnitude than every other shifted eigenvalue, so convergence is
// unconditional for a non-negative start vector. maxIter caps the work
// (0 = default 200) and tol is the relative change at which the
// estimate is accepted (<= 0 = 1e-9).
func (g *Graph) SpectralRadius(maxIter int, tol float64) float64 {
	n := g.N()
	if n == 0 {
		return 0
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	if tol <= 0 {
		tol = 1e-9
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = 1 / math.Sqrt(float64(n))
	}
	lambda := 0.0
	for iter := 0; iter < maxIter; iter++ {
		// y = (A + I) x
		copy(y, x)
		for u := 0; u < n; u++ {
			xu := x[u]
			for _, v := range g.Neighbors(u) {
				y[v] += xu
			}
		}
		// Rayleigh quotient x·(A+I)x / x·x; x is unit, so just x·y.
		est := 0.0
		norm := 0.0
		for i := range y {
			est += x[i] * y[i]
			norm += y[i] * y[i]
		}
		norm = math.Sqrt(norm)
		for i := range y {
			x[i] = y[i] / norm
		}
		if lambda != 0 && math.Abs(est-lambda) <= tol*math.Abs(est) {
			return est - 1
		}
		lambda = est
	}
	return lambda - 1
}
