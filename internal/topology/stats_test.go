package topology

import (
	"math"
	"math/rand"
	"testing"
)

func TestDegreeHistogramAndCCDF(t *testing.T) {
	g, err := Star(5) // hub degree 4, four leaves degree 1
	if err != nil {
		t.Fatal(err)
	}
	h := g.DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Errorf("histogram = %v", h)
	}
	degrees, frac := g.DegreeCCDF()
	if len(degrees) != 2 || degrees[0] != 1 || degrees[1] != 4 {
		t.Fatalf("degrees = %v", degrees)
	}
	if frac[0] != 1 {
		t.Errorf("P(deg>=1) = %v, want 1", frac[0])
	}
	if math.Abs(frac[1]-0.2) > 1e-12 {
		t.Errorf("P(deg>=4) = %v, want 0.2", frac[1])
	}
	empty := New(0)
	if d, f := empty.DegreeCCDF(); d != nil || f != nil {
		t.Error("empty graph CCDF should be nil")
	}
}

func TestPowerLawExponentBA(t *testing.T) {
	g, err := BarabasiAlbert(3000, 2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	gamma := g.PowerLawExponent(4)
	// BA's theoretical exponent is 3; the Hill estimator on finite
	// samples lands nearby.
	if gamma < 2.2 || gamma > 4.0 {
		t.Errorf("BA exponent = %v, want ≈ 3", gamma)
	}
	// An ER graph's exponential tail yields a much larger "exponent".
	er, err := ErdosRenyi(3000, 4.0/3000, true, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	erGamma := er.PowerLawExponent(4)
	if !math.IsNaN(erGamma) && erGamma < gamma {
		t.Errorf("ER tail (%v) should not be heavier than BA (%v)", erGamma, gamma)
	}
}

func TestPowerLawExponentDegenerate(t *testing.T) {
	g, err := Star(5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(g.PowerLawExponent(10)) {
		t.Error("too few tail nodes should give NaN")
	}
	// kmin < 1 is clamped rather than crashing.
	if v := g.PowerLawExponent(0); math.IsInf(v, 0) {
		t.Errorf("kmin=0 gave %v", v)
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Triangle: coefficient 1.
	tri := New(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}} {
		if err := tri.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if got := tri.ClusteringCoefficient(); math.Abs(got-1) > 1e-12 {
		t.Errorf("triangle clustering = %v, want 1", got)
	}
	// Star: no triangles.
	star, err := Star(6)
	if err != nil {
		t.Fatal(err)
	}
	if got := star.ClusteringCoefficient(); got != 0 {
		t.Errorf("star clustering = %v, want 0", got)
	}
	// Edgeless graph.
	if got := New(4).ClusteringCoefficient(); got != 0 {
		t.Errorf("edgeless clustering = %v, want 0", got)
	}
}

func TestMeanDegree(t *testing.T) {
	g, err := Ring(10)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.MeanDegree(); math.Abs(got-2) > 1e-12 {
		t.Errorf("ring mean degree = %v, want 2", got)
	}
	if New(0).MeanDegree() != 0 {
		t.Error("empty graph mean degree should be 0")
	}
}

func TestAssortativity(t *testing.T) {
	// Stars are maximally disassortative.
	star, err := Star(20)
	if err != nil {
		t.Fatal(err)
	}
	if got := star.AssortativityByDegree(); !math.IsNaN(got) && got > -0.99 {
		// All edges connect degree-19 to degree-1: zero variance on each
		// side individually... both ends span {1,19} when counted in both
		// orientations, so r = -1.
		t.Errorf("star assortativity = %v, want -1", got)
	}
	// BA graphs trend disassortative like AS topologies.
	g, err := BarabasiAlbert(1000, 1, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.AssortativityByDegree(); got > 0 {
		t.Errorf("BA assortativity = %v, want <= 0 (AS-like)", got)
	}
	if v := New(3).AssortativityByDegree(); !math.IsNaN(v) {
		t.Errorf("edgeless assortativity = %v, want NaN", v)
	}
}

// The claim behind the whole Section 5.4 substitution: the generated
// topology is AS-like — heavy-tailed degrees, short paths, and a core
// that the degree-ranked backbone captures.
func TestASLikeness(t *testing.T) {
	g, err := BarabasiAlbert(1000, 1, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxDegree() < 30 {
		t.Errorf("max degree %d too small for a heavy tail", g.MaxDegree())
	}
	gamma := g.PowerLawExponent(3)
	if math.IsNaN(gamma) || gamma < 1.8 || gamma > 4.5 {
		t.Errorf("exponent %v outside the power-law band", gamma)
	}
}
