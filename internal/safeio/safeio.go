// Package safeio is the one atomic file-write helper every output path
// of the system goes through: metrics JSONL streams, golden-fixture
// regeneration, figure .dat/.metrics files, and engine checkpoints. A
// write happens into a temp file in the destination directory, is
// fsynced, and is renamed over the target only on success — so a crash,
// SIGKILL, or mid-write error never leaves a truncated or
// partially-written file at the destination: the old content (or
// nothing) survives intact.
package safeio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// File is an atomically-committed file. Writes go to a hidden temp file
// next to the destination; Commit fsyncs, closes, and renames it into
// place. Close before Commit aborts the write and removes the temp
// file, leaving any previous destination content untouched. After
// Commit, Close is a no-op, so `defer f.Close()` is always safe.
type File struct {
	tmp       *os.File
	path      string
	committed bool
	closed    bool
}

var _ io.WriteCloser = (*File)(nil)

// Create opens an atomic writer targeting path. The temp file lives in
// path's directory so the final rename cannot cross filesystems.
func Create(path string) (*File, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("safeio: create temp for %s: %w", path, err)
	}
	return &File{tmp: tmp, path: path}, nil
}

// Write implements io.Writer, appending to the temp file.
func (f *File) Write(p []byte) (int, error) { return f.tmp.Write(p) }

// Commit makes the written content durable and visible at the target
// path: fsync the temp file, close it, rename it over the destination.
// On any error the temp file is removed and the destination is left as
// it was.
func (f *File) Commit() error {
	if f.committed {
		return nil
	}
	if f.closed {
		return fmt.Errorf("safeio: commit after close: %s", f.path)
	}
	if err := f.tmp.Sync(); err != nil {
		f.abort()
		return fmt.Errorf("safeio: sync %s: %w", f.path, err)
	}
	if err := f.tmp.Close(); err != nil {
		f.closed = true
		os.Remove(f.tmp.Name())
		return fmt.Errorf("safeio: close %s: %w", f.path, err)
	}
	f.closed = true
	if err := os.Rename(f.tmp.Name(), f.path); err != nil {
		os.Remove(f.tmp.Name())
		return fmt.Errorf("safeio: rename %s: %w", f.path, err)
	}
	f.committed = true
	return nil
}

// Close aborts the write when Commit has not run: the temp file is
// removed and the destination keeps its previous content. After Commit
// it does nothing.
func (f *File) Close() error {
	if f.committed || f.closed {
		return nil
	}
	f.abort()
	return nil
}

// abort closes and removes the temp file.
func (f *File) abort() {
	f.tmp.Close()
	os.Remove(f.tmp.Name())
	f.closed = true
}

// Name returns the destination path the file commits to.
func (f *File) Name() string { return f.path }

// WriteFile atomically replaces path with data (temp file + fsync +
// rename): readers never observe a partial write, and a crash leaves
// either the old content or the new, never a mix.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return fmt.Errorf("safeio: write %s: %w", path, err)
	}
	if err := f.tmp.Chmod(perm); err != nil {
		return fmt.Errorf("safeio: chmod %s: %w", path, err)
	}
	return f.Commit()
}
