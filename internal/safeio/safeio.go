// Package safeio is the one atomic file-write helper every output path
// of the system goes through: metrics JSONL streams, golden-fixture
// regeneration, figure .dat/.metrics files, engine checkpoints, and the
// daemon's job state. A write happens into a temp file in the
// destination directory, is fsynced, and is renamed over the target only
// on success — so a crash, SIGKILL, or mid-write error never leaves a
// truncated or partially-written file at the destination: the old
// content (or nothing) survives intact. After the rename the parent
// directory is fsynced too, so the renamed entry itself is durable — a
// power cut shortly after Commit cannot lose the file.
//
// Every filesystem operation on the commit path goes through the FS
// interface (SetFS), so a test harness can enumerate the durability
// points — temp create, write, file fsync, chmod, rename, parent-dir
// fsync — and inject a failure at any one of them (internal/crashfs).
// Failures caused by a full filesystem are classified with ErrNoSpace,
// letting callers degrade (skip a checkpoint, shed an artifact) instead
// of treating disk pressure like corruption.
package safeio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"
)

// DefaultPerm is the file mode Create commits with: world-readable
// artifacts (metrics streams, figures, checkpoints) that a different
// user or a post-mortem tool can read, unlike os.CreateTemp's 0600.
const DefaultPerm os.FileMode = 0o644

// ErrNoSpace classifies a commit failure caused by a full filesystem
// (ENOSPC or a quota limit). Callers that can shed the write — a
// periodic checkpoint, a best-effort artifact — match it with errors.Is
// and degrade instead of failing the whole job; every other commit
// error still means the write is lost for an unknown reason.
var ErrNoSpace = errors.New("safeio: no space on device")

// FS is the filesystem surface the atomic-commit path runs on. The
// package default is the real OS; SetFS swaps in an instrumented or
// fault-injecting implementation (internal/crashfs) so tests can
// enumerate and break every durability point deterministically.
type FS interface {
	// CreateTemp creates the hidden temp file the write streams into
	// (durability point 1).
	CreateTemp(dir, pattern string) (FileHandle, error)
	// Rename moves the synced temp file over the destination
	// (durability point 5).
	Rename(oldpath, newpath string) error
	// Remove deletes a temp file on the abort path (not a durability
	// point: nothing committed depends on it).
	Remove(name string) error
	// SyncDir fsyncs the destination's parent directory after the
	// rename (durability point 6).
	SyncDir(dir string) error
}

// FileHandle is the open temp file an FS hands back: the write
// (durability point 2), fsync (3), and chmod (4) steps run on it.
type FileHandle interface {
	io.Writer
	Sync() error
	Chmod(mode os.FileMode) error
	Close() error
	Name() string
}

// fsys is the active filesystem. Package-level because safeio's callers
// (sim.WriteSnapshot, the daemon store, the CLIs) construct writes from
// many layers that never see each other — a single injection point is
// what lets one test harness break all of them at once.
var fsys FS = osFS{}

// SetFS swaps the package filesystem and returns a restore func. Only
// test harnesses call this; it is not safe to swap while commits are in
// flight on the old FS.
func SetFS(fs FS) (restore func()) {
	old := fsys
	fsys = fs
	return func() { fsys = old }
}

// osFS is the real filesystem.
type osFS struct{}

func (osFS) CreateTemp(dir, pattern string) (FileHandle, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) SyncDir(dir string) error             { return fsyncDir(dir) }

// File is an atomically-committed file. Writes go to a hidden temp file
// next to the destination; Commit fsyncs, closes, and renames it into
// place, then fsyncs the parent directory. Close before Commit aborts
// the write and removes the temp file, leaving any previous destination
// content untouched. After Commit, Close is a no-op, so
// `defer f.Close()` is always safe.
type File struct {
	fs        FS
	tmp       FileHandle
	path      string
	perm      os.FileMode
	committed bool
	closed    bool
}

var _ io.WriteCloser = (*File)(nil)

// Create opens an atomic writer targeting path, committing with
// DefaultPerm. The temp file lives in path's directory so the final
// rename cannot cross filesystems.
func Create(path string) (*File, error) {
	return CreateMode(path, DefaultPerm)
}

// CreateMode is Create with an explicit file mode for the committed
// destination. The mode is applied with chmod at Commit (not subject to
// the umask), replacing the 0600 the temp file is created with.
func CreateMode(path string, perm os.FileMode) (*File, error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	fs := fsys
	tmp, err := fs.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return nil, fmt.Errorf("safeio: create temp for %s: %w", path, classify(err))
	}
	return &File{fs: fs, tmp: tmp, path: path, perm: perm}, nil
}

// Write implements io.Writer, appending to the temp file.
func (f *File) Write(p []byte) (int, error) {
	n, err := f.tmp.Write(p)
	if err != nil {
		err = fmt.Errorf("safeio: write %s: %w", f.path, classify(err))
	}
	return n, err
}

// Commit makes the written content durable and visible at the target
// path: fsync the temp file, apply the destination mode, close, rename
// over the destination, and fsync the parent directory so the rename
// itself survives a crash. On any error before the rename the temp file
// is removed and the destination is left as it was; a directory-sync
// failure after the rename reports an error with the new content
// already in place (visible but possibly not yet durable).
func (f *File) Commit() error {
	if f.committed {
		return nil
	}
	if f.closed {
		return fmt.Errorf("safeio: commit after close: %s", f.path)
	}
	if err := f.tmp.Sync(); err != nil {
		f.abort()
		return fmt.Errorf("safeio: sync %s: %w", f.path, classify(err))
	}
	if err := f.tmp.Chmod(f.perm); err != nil {
		f.abort()
		return fmt.Errorf("safeio: chmod %s: %w", f.path, classify(err))
	}
	if err := f.tmp.Close(); err != nil {
		f.closed = true
		f.fs.Remove(f.tmp.Name())
		return fmt.Errorf("safeio: close %s: %w", f.path, classify(err))
	}
	f.closed = true
	if err := f.fs.Rename(f.tmp.Name(), f.path); err != nil {
		f.fs.Remove(f.tmp.Name())
		return fmt.Errorf("safeio: rename %s: %w", f.path, classify(err))
	}
	f.committed = true
	if err := f.fs.SyncDir(filepath.Dir(f.path)); err != nil {
		return fmt.Errorf("safeio: sync dir for %s: %w", f.path, classify(err))
	}
	return nil
}

// classify tags recognizable operational failures with a sentinel the
// caller can match: a full disk (or exhausted quota) becomes
// ErrNoSpace. The original error stays in the chain.
func classify(err error) error {
	if errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT) {
		return fmt.Errorf("%w: %w", ErrNoSpace, err)
	}
	return err
}

// fsyncDir makes a directory's entries durable after a rename. It is a
// package variable so the durability test can observe that Commit
// actually syncs the destination's parent.
var fsyncDir = syncDir

// syncDir opens dir and fsyncs its handle. Filesystems that cannot sync
// a directory handle (some network and FUSE mounts report EINVAL or
// ENOTSUP) are treated as success: the rename is already atomic there,
// and refusing to commit would make those mounts unusable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
			return nil
		}
		return err
	}
	return d.Close()
}

// Close aborts the write when Commit has not run: the temp file is
// removed and the destination keeps its previous content. After Commit
// it does nothing.
func (f *File) Close() error {
	if f.committed || f.closed {
		return nil
	}
	f.abort()
	return nil
}

// abort closes and removes the temp file.
func (f *File) abort() {
	f.tmp.Close()
	f.fs.Remove(f.tmp.Name())
	f.closed = true
}

// Name returns the destination path the file commits to.
func (f *File) Name() string { return f.path }

// WriteFile atomically replaces path with data (temp file + fsync +
// rename + parent-directory fsync): readers never observe a partial
// write, and a crash leaves either the old content or the new, never a
// mix — and never neither.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	f, err := CreateMode(path, perm)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Commit()
}

// IsTempName reports whether a directory entry is one of safeio's
// in-flight temp files (".<base>.tmp-<rand>"). Scanners and startup
// scrubbers use it to recognize — and clean up — debris a crash left
// behind mid-commit.
func IsTempName(name string) bool {
	if len(name) == 0 || name[0] != '.' {
		return false
	}
	for i := 1; i+5 <= len(name); i++ {
		if name[i:i+5] == ".tmp-" {
			return true
		}
	}
	return false
}
