package safeio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("content = %q, want hello", got)
	}
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("content = %q, want new", got)
	}
}

func TestCloseWithoutCommitPreservesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial garbage")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // abort, no Commit
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Fatalf("aborted write clobbered destination: %q", got)
	}
	leftovers(t, dir, "out.txt")
}

func TestCommitThenCloseIsNoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "data" {
		t.Fatalf("content = %q, want data", got)
	}
	leftovers(t, dir, "out.txt")
}

func TestCommitAfterCloseFails(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := f.Commit(); err == nil {
		t.Fatal("Commit after Close should fail")
	}
}

// leftovers fails the test if the directory holds anything besides the
// named files: an aborted or committed write must not leak temp files.
func leftovers(t *testing.T, dir string, keep ...string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		ok := false
		for _, k := range keep {
			if e.Name() == k {
				ok = true
			}
		}
		if !ok || strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover file %s", e.Name())
		}
	}
}
