package safeio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
)

func TestWriteFileCreatesContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("content = %q, want hello", got)
	}
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("content = %q, want new", got)
	}
}

func TestCloseWithoutCommitPreservesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial garbage")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // abort, no Commit
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Fatalf("aborted write clobbered destination: %q", got)
	}
	leftovers(t, dir, "out.txt")
}

func TestCommitThenCloseIsNoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "data" {
		t.Fatalf("content = %q, want data", got)
	}
	leftovers(t, dir, "out.txt")
}

func TestCommitAfterCloseFails(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := f.Commit(); err == nil {
		t.Fatal("Commit after Close should fail")
	}
}

// TestCommitSyncsParentDir pins the crash-durability fix: a committed
// rename is followed by an fsync of the destination's parent directory,
// so the new directory entry itself survives a power cut. The test
// intercepts the package's directory-sync hook and asserts Commit
// reaches it with the right directory (and that the default
// implementation succeeds on a real one).
func TestCommitSyncsParentDir(t *testing.T) {
	dir := t.TempDir()
	var synced []string
	orig := fsyncDir
	fsyncDir = func(d string) error {
		synced = append(synced, d)
		return orig(d)
	}
	defer func() { fsyncDir = orig }()

	if err := WriteFile(filepath.Join(dir, "out.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("parent dirs synced = %v, want exactly [%s]", synced, dir)
	}

	// The streaming path must sync the parent too.
	synced = nil
	f, err := Create(filepath.Join(dir, "stream.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("parent dirs synced = %v, want exactly [%s]", synced, dir)
	}

	// An aborted write must not sync anything: nothing was renamed.
	synced = nil
	g, err := Create(filepath.Join(dir, "aborted.txt"))
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if len(synced) != 0 {
		t.Fatalf("aborted write synced dirs %v, want none", synced)
	}
}

// TestCreateCommitsReadableMode pins the permission fix: files written
// via the streaming Create/Commit path end up with DefaultPerm (0644),
// not os.CreateTemp's private 0600 — metrics streams and figure outputs
// are readable artifacts.
func TestCreateCommitsReadableMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte(`{"type":"tick"}`)); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != DefaultPerm {
		t.Fatalf("committed mode = %o, want %o", got, DefaultPerm)
	}
}

// TestWriteFileAppliesCallerMode: the one-shot path keeps honoring an
// explicit caller mode, including one stricter than the default, and
// the mode is not subject to the process umask.
func TestWriteFileAppliesCallerMode(t *testing.T) {
	for _, perm := range []os.FileMode{0o600, 0o644} {
		path := filepath.Join(t.TempDir(), "out.bin")
		if err := WriteFile(path, []byte("x"), perm); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := info.Mode().Perm(); got != perm {
			t.Fatalf("mode = %o, want %o", got, perm)
		}
	}
}

// enospcFS fails a chosen operation with ENOSPC and passes everything
// else to the real filesystem — the minimal FS stub for the
// classification tests (the full injection harness is internal/crashfs).
type enospcFS struct {
	inner  FS
	failOp string // "create", "write", "sync", "rename", "syncdir"
}

func (e *enospcFS) CreateTemp(dir, pattern string) (FileHandle, error) {
	if e.failOp == "create" {
		return nil, syscall.ENOSPC
	}
	h, err := e.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &enospcHandle{FileHandle: h, fs: e}, nil
}
func (e *enospcFS) Rename(o, n string) error {
	if e.failOp == "rename" {
		return syscall.ENOSPC
	}
	return e.inner.Rename(o, n)
}
func (e *enospcFS) Remove(name string) error { return e.inner.Remove(name) }
func (e *enospcFS) SyncDir(dir string) error {
	if e.failOp == "syncdir" {
		return syscall.ENOSPC
	}
	return e.inner.SyncDir(dir)
}

type enospcHandle struct {
	FileHandle
	fs *enospcFS
}

func (h *enospcHandle) Write(p []byte) (int, error) {
	if h.fs.failOp == "write" {
		return 0, syscall.ENOSPC
	}
	return h.FileHandle.Write(p)
}
func (h *enospcHandle) Sync() error {
	if h.fs.failOp == "sync" {
		return syscall.ENOSPC
	}
	return h.FileHandle.Sync()
}

// TestClassifyNoSpace pins the error classification: a full-disk
// failure at any durability point surfaces as ErrNoSpace (with the
// original errno still in the chain), so callers can shed the write
// instead of treating disk pressure as corruption.
func TestClassifyNoSpace(t *testing.T) {
	dir := t.TempDir()
	for _, op := range []string{"create", "write", "sync", "rename", "syncdir"} {
		restore := SetFS(&enospcFS{inner: osFS{}, failOp: op})
		err := WriteFile(filepath.Join(dir, "out-"+op), []byte("x"), 0o644)
		restore()
		if err == nil {
			t.Fatalf("op %s: injected ENOSPC but WriteFile succeeded", op)
		}
		if !errors.Is(err, ErrNoSpace) {
			t.Fatalf("op %s: error %v does not match ErrNoSpace", op, err)
		}
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("op %s: error %v lost the underlying errno", op, err)
		}
	}
	// A destination with prior content keeps it across a failed commit.
	path := filepath.Join(dir, "kept")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	restore := SetFS(&enospcFS{inner: osFS{}, failOp: "sync"})
	if err := WriteFile(path, []byte("new"), 0o644); !errors.Is(err, ErrNoSpace) {
		restore()
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
	restore()
	if got, _ := os.ReadFile(path); string(got) != "old" {
		t.Fatalf("failed commit clobbered destination: %q", got)
	}
}

// TestSetFSRestores: the restore func returned by SetFS reinstates the
// previous filesystem, and commits made under the stub never ran on the
// real one.
func TestSetFSRestores(t *testing.T) {
	restore := SetFS(&enospcFS{inner: osFS{}, failOp: "create"})
	if _, err := Create(filepath.Join(t.TempDir(), "x")); err == nil {
		t.Fatal("stub FS not active after SetFS")
	}
	restore()
	path := filepath.Join(t.TempDir(), "y")
	if err := WriteFile(path, []byte("ok"), 0o644); err != nil {
		t.Fatalf("real FS not restored: %v", err)
	}
	if got, _ := os.ReadFile(path); string(got) != "ok" {
		t.Fatalf("content = %q", got)
	}
}

// TestIsTempName pins the temp-file naming contract scrubbers depend
// on: exactly the ".<base>.tmp-<rand>" pattern CreateMode uses.
func TestIsTempName(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "job.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if name := filepath.Base(f.tmp.Name()); !IsTempName(name) {
		t.Fatalf("IsTempName(%q) = false for a live temp file", name)
	}
	for name, want := range map[string]bool{
		".job.json.tmp-123":       true,
		".replica-000.ckpt.tmp-9": true,
		"job.json":                false,
		".hidden":                 false,
		"x.tmp-1":                 false, // no leading dot: not ours
		".tmp-1":                  false, // no base name
	} {
		if got := IsTempName(name); got != want {
			t.Errorf("IsTempName(%q) = %v, want %v", name, got, want)
		}
	}
}

// leftovers fails the test if the directory holds anything besides the
// named files: an aborted or committed write must not leak temp files.
func leftovers(t *testing.T, dir string, keep ...string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		ok := false
		for _, k := range keep {
			if e.Name() == k {
				ok = true
			}
		}
		if !ok || strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover file %s", e.Name())
		}
	}
}
