package safeio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileCreatesContent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := WriteFile(path, []byte("hello"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("content = %q, want hello", got)
	}
}

func TestWriteFileReplacesAtomically(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	if err := os.WriteFile(path, []byte("old"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, []byte("new"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "new" {
		t.Fatalf("content = %q, want new", got)
	}
}

func TestCloseWithoutCommitPreservesOldContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	if err := os.WriteFile(path, []byte("precious"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("partial garbage")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // abort, no Commit
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "precious" {
		t.Fatalf("aborted write clobbered destination: %q", got)
	}
	leftovers(t, dir, "out.txt")
}

func TestCommitThenCloseIsNoop(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if string(got) != "data" {
		t.Fatalf("content = %q, want data", got)
	}
	leftovers(t, dir, "out.txt")
}

func TestCommitAfterCloseFails(t *testing.T) {
	f, err := Create(filepath.Join(t.TempDir(), "out.txt"))
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := f.Commit(); err == nil {
		t.Fatal("Commit after Close should fail")
	}
}

// TestCommitSyncsParentDir pins the crash-durability fix: a committed
// rename is followed by an fsync of the destination's parent directory,
// so the new directory entry itself survives a power cut. The test
// intercepts the package's directory-sync hook and asserts Commit
// reaches it with the right directory (and that the default
// implementation succeeds on a real one).
func TestCommitSyncsParentDir(t *testing.T) {
	dir := t.TempDir()
	var synced []string
	orig := fsyncDir
	fsyncDir = func(d string) error {
		synced = append(synced, d)
		return orig(d)
	}
	defer func() { fsyncDir = orig }()

	if err := WriteFile(filepath.Join(dir, "out.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("parent dirs synced = %v, want exactly [%s]", synced, dir)
	}

	// The streaming path must sync the parent too.
	synced = nil
	f, err := Create(filepath.Join(dir, "stream.txt"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 || synced[0] != dir {
		t.Fatalf("parent dirs synced = %v, want exactly [%s]", synced, dir)
	}

	// An aborted write must not sync anything: nothing was renamed.
	synced = nil
	g, err := Create(filepath.Join(dir, "aborted.txt"))
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if len(synced) != 0 {
		t.Fatalf("aborted write synced dirs %v, want none", synced)
	}
}

// TestCreateCommitsReadableMode pins the permission fix: files written
// via the streaming Create/Commit path end up with DefaultPerm (0644),
// not os.CreateTemp's private 0600 — metrics streams and figure outputs
// are readable artifacts.
func TestCreateCommitsReadableMode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.jsonl")
	f, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte(`{"type":"tick"}`)); err != nil {
		t.Fatal(err)
	}
	if err := f.Commit(); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.Mode().Perm(); got != DefaultPerm {
		t.Fatalf("committed mode = %o, want %o", got, DefaultPerm)
	}
}

// TestWriteFileAppliesCallerMode: the one-shot path keeps honoring an
// explicit caller mode, including one stricter than the default, and
// the mode is not subject to the process umask.
func TestWriteFileAppliesCallerMode(t *testing.T) {
	for _, perm := range []os.FileMode{0o600, 0o644} {
		path := filepath.Join(t.TempDir(), "out.bin")
		if err := WriteFile(path, []byte("x"), perm); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := info.Mode().Perm(); got != perm {
			t.Fatalf("mode = %o, want %o", got, perm)
		}
	}
}

// leftovers fails the test if the directory holds anything besides the
// named files: an aborted or committed write must not leak temp files.
func leftovers(t *testing.T, dir string, keep ...string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		ok := false
		for _, k := range keep {
			if e.Name() == k {
				ok = true
			}
		}
		if !ok || strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("leftover file %s", e.Name())
		}
	}
}
