package model

import (
	"math"

	"repro/internal/numeric"
)

// Homogeneous is the baseline homogeneous-mixing epidemic of Section 3:
//
//	dI/dt = β·I·(N−I)/N            (Equation 1)
//
// with solution I/N = e^{βt}/(c+e^{βt}) and time-to-level
// t ≐ ln(α)/β for low initial infection (Equation 2).
type Homogeneous struct {
	Beta float64 // average per-host contact (infection) rate β
	N    float64 // population size
	I0   float64 // initially infected hosts (0 < I0 < N)
}

// Validate checks the parameters.
func (m Homogeneous) Validate() error {
	if err := checkPopulation(m.N, m.I0); err != nil {
		return err
	}
	if m.Beta <= 0 {
		return errNonPositiveRate
	}
	return nil
}

// C returns the logistic constant fixed by the initial condition,
// c = (N − I0)/I0. For low initial infection c → N − 1 (paper, §3).
func (m Homogeneous) C() float64 { return numeric.LogisticC(m.I0 / m.N) }

// Fraction returns I(t)/N from the closed form.
func (m Homogeneous) Fraction(t float64) float64 {
	return numeric.Logistic(t, m.Beta, m.C())
}

// TimeToLevel returns the exact time at which the infected fraction
// reaches level ∈ (0,1). The paper's Equation 2 approximation
// t ≐ ln(αN... )/β is recovered for small levels and low I0.
func (m Homogeneous) TimeToLevel(level float64) float64 {
	return numeric.LogisticTimeToLevel(level, m.Beta, m.C())
}

// ApproxTimeToLevel is the paper's Equation 2: t ≐ ln(α)/β where α is
// the target infection level expressed as a multiple of the initial
// level (I/I0). It is the low-infection approximation of TimeToLevel.
func (m Homogeneous) ApproxTimeToLevel(alpha float64) float64 {
	if alpha <= 0 || m.Beta == 0 {
		return math.NaN()
	}
	return math.Log(alpha) / m.Beta
}

// RHS returns Equation 1. State: [I].
func (m Homogeneous) RHS() numeric.RHS {
	return func(t float64, y, dst []float64) {
		i := y[0]
		dst[0] = m.Beta * i * (m.N - i) / m.N
	}
}

// InitialState returns [I0].
func (m Homogeneous) InitialState() []float64 { return []float64{m.I0} }

// N0 returns the (fixed) population size.
func (m Homogeneous) N0() float64 { return m.N }

var (
	_ Curve     = Homogeneous{}
	_ Validator = Homogeneous{}
	_ ODE       = Homogeneous{}
)
