package model

import (
	"math"
	"testing"
)

func TestEdgeRLValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       EdgeRL
		wantErr bool
	}{
		{"ok", EdgeRL{Beta1: 0.8, Beta2: 0.01, SubnetSize: 50, NumSubnets: 20}, false},
		{"beta2 > beta1", EdgeRL{Beta1: 0.01, Beta2: 0.8, SubnetSize: 50, NumSubnets: 20}, true},
		{"negative", EdgeRL{Beta1: -0.8, Beta2: -0.9, SubnetSize: 50, NumSubnets: 20}, true},
		{"tiny subnet", EdgeRL{Beta1: 0.8, Beta2: 0.01, SubnetSize: 1, NumSubnets: 20}, true},
		{"one subnet", EdgeRL{Beta1: 0.8, Beta2: 0.01, SubnetSize: 50, NumSubnets: 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestEdgeRLTwoLevels(t *testing.T) {
	m := EdgeRL{Beta1: 0.8, Beta2: 0.01, SubnetSize: 50, NumSubnets: 20}
	// Within-subnet saturates long before subnets do (β1 >> β2).
	tWithin := 20.0
	if got := m.WithinFraction(tWithin); got < 0.95 {
		t.Errorf("within fraction at t=%v = %v, want near saturation", tWithin, got)
	}
	if got := m.SubnetFraction(tWithin); got > 0.1 {
		t.Errorf("subnet fraction at t=%v = %v, want still small", tWithin, got)
	}
	// Overall fraction is the product and bounded by both.
	f := m.Fraction(tWithin)
	if f > m.WithinFraction(tWithin) || f > m.SubnetFraction(tWithin) {
		t.Error("overall fraction must be bounded by both levels")
	}
}

func TestEdgeRLClosedFormVsODE(t *testing.T) {
	m := EdgeRL{Beta1: 0.8, Beta2: 0.05, SubnetSize: 50, NumSubnets: 20}
	// Check the within-subnet component (state[0]) against WithinFraction.
	ts, frac, err := Integrate(m, 30, 0.01)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	for k := 0; k < len(ts); k += 50 {
		want := frac[k]
		got := m.WithinFraction(ts[k])
		if math.Abs(got-want) > 1e-4 {
			t.Fatalf("t=%v: within closed form %v vs ODE %v", ts[k], got, want)
		}
	}
}

// The paper's §5.2 conclusion: edge-router rate limiting is more
// effective against random worms than local-preferential worms, because
// the local-preferential worm's large β1 is untouched by the filter.
func TestEdgeRLLocalPreferentialDefeatsEdgeFilter(t *testing.T) {
	// Same throttled cross-subnet rate; the local-pref worm scans its own
	// subnet at 0.8 while a random scanner hits its own /24-sized subnet
	// only rarely.
	localPref := EdgeRL{Beta1: 0.8, Beta2: 0.01, SubnetSize: 50, NumSubnets: 20}
	random := EdgeRL{Beta1: 0.08, Beta2: 0.01, SubnetSize: 50, NumSubnets: 20}
	// At a mid horizon the local-pref worm has saturated its subnets;
	// the random worm has not.
	const horizon = 40
	lp := localPref.WithinFraction(horizon)
	rd := random.WithinFraction(horizon)
	if lp < 2*rd {
		t.Errorf("local-pref within %v vs random %v: want local-pref >> random", lp, rd)
	}
}

func TestEdgeRLFractionMonotone(t *testing.T) {
	m := EdgeRL{Beta1: 0.8, Beta2: 0.01, SubnetSize: 50, NumSubnets: 20}
	prev := -1.0
	for tt := 0.0; tt <= 600; tt += 5 {
		v := m.Fraction(tt)
		if v < prev-1e-12 || v < 0 || v > 1 {
			t.Fatalf("non-monotone or out of range at t=%v: %v", tt, v)
		}
		prev = v
	}
	if got := m.Fraction(1e5); math.Abs(got-1) > 1e-6 {
		t.Errorf("saturation = %v, want 1", got)
	}
}
