package model

import (
	"fmt"

	"repro/internal/numeric"
)

// EdgeRL is the two-level subnet model of Section 5.2 for rate limiting
// at edge routers. Worms spread fast within a subnet (rate β1) and
// slower across subnets (rate β2 ≤ β1, throttled by the edge filter):
//
//	x = e^{β1·t}/(C1 + e^{β1·t})   infected fraction within a subnet
//	y = e^{β2·t}/(C2 + e^{β2·t})   fraction of subnets infected
//
// For a local-preferential worm β1 is substantially larger than for a
// random-propagation worm, which is why edge rate limiting loses its
// effectiveness against such worms: the cross-subnet throttle only
// touches β2, and the within-subnet rate dominates.
type EdgeRL struct {
	Beta1      float64 // intra-subnet contact rate β1
	Beta2      float64 // cross-subnet (Internet) contact rate β2 ≤ β1
	SubnetSize float64 // hosts per subnet (sets C1 via the seed host)
	NumSubnets float64 // number of subnets (sets C2 via the seed subnet)
}

// Validate checks the parameters.
func (m EdgeRL) Validate() error {
	if m.Beta1 < 0 || m.Beta2 < 0 {
		return errNegativeRate
	}
	if m.Beta2 > m.Beta1 {
		return fmt.Errorf("model: edge RL requires β2 (%v) <= β1 (%v)", m.Beta2, m.Beta1)
	}
	if m.SubnetSize < 2 || m.NumSubnets < 2 {
		return fmt.Errorf("model: need >= 2 hosts/subnet and >= 2 subnets, got %v/%v",
			m.SubnetSize, m.NumSubnets)
	}
	return nil
}

// WithinFraction returns x(t), the infected fraction within an infected
// subnet, seeded with one infected host.
func (m EdgeRL) WithinFraction(t float64) float64 {
	return numeric.Logistic(t, m.Beta1, numeric.LogisticC(1/m.SubnetSize))
}

// SubnetFraction returns y(t), the fraction of subnets with at least one
// infection, seeded with one infected subnet.
func (m EdgeRL) SubnetFraction(t float64) float64 {
	return numeric.Logistic(t, m.Beta2, numeric.LogisticC(1/m.NumSubnets))
}

// Fraction returns the overall infected fraction x(t)·y(t): the product
// of infected-subnet coverage and within-subnet penetration. (The paper
// plots x and y separately in Figures 3(a) and 3(b); the product is a
// convenient summary for tests and Curve compatibility.)
func (m EdgeRL) Fraction(t float64) float64 {
	return m.WithinFraction(t) * m.SubnetFraction(t)
}

// RHS returns the uncoupled two-level dynamics. State: [I, Y] where I is
// the infected host count within one subnet and Y the infected subnet
// count. Note state[0] is within-subnet infected hosts to keep the
// convention that component 0 is an infected count.
func (m EdgeRL) RHS() numeric.RHS {
	return func(t float64, y, dst []float64) {
		i, s := y[0], y[1]
		dst[0] = m.Beta1 * i * (m.SubnetSize - i) / m.SubnetSize
		dst[1] = m.Beta2 * s * (m.NumSubnets - s) / m.NumSubnets
	}
}

// InitialState returns [1 infected host, 1 infected subnet].
func (m EdgeRL) InitialState() []float64 { return []float64{1, 1} }

// N0 returns the subnet size (the normalizer for state[0]).
func (m EdgeRL) N0() float64 { return m.SubnetSize }

var (
	_ Curve     = EdgeRL{}
	_ Validator = EdgeRL{}
	_ ODE       = EdgeRL{}
)
