package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBackboneRLValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       BackboneRL
		wantErr bool
	}{
		{"ok", BackboneRL{Beta: 0.8, Alpha: 0.9, R: 100, N: 1000, I0: 1}, false},
		{"alpha over 1", BackboneRL{Beta: 0.8, Alpha: 1.5, R: 100, N: 1000, I0: 1}, true},
		{"negative r", BackboneRL{Beta: 0.8, Alpha: 0.9, R: -1, N: 1000, I0: 1}, true},
		{"bad pop", BackboneRL{Beta: 0.8, Alpha: 0.9, R: 100, N: -5, I0: 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestBackboneRLLambdaAndDelta(t *testing.T) {
	m := BackboneRL{Beta: 0.8, Alpha: 0.75, R: 1e10, N: 1000, I0: 1}
	if got := m.Lambda(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Lambda = %v, want 0.2", got)
	}
	// With small I the I·β·α term is the min (rN/2^32 ≈ 2328 here).
	if got := m.Delta(1); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Delta(1) = %v, want 0.6", got)
	}
	// With huge I the rN/2^32 cap binds.
	cap32 := m.R * m.N / IPv4Space
	if got := m.Delta(1e12); math.Abs(got-cap32) > 1e-15 {
		t.Errorf("Delta(huge) = %v, want %v", got, cap32)
	}
}

func TestBackboneRLClosedFormVsODE(t *testing.T) {
	// Small r: closed form (which drops δ) should track the exact ODE.
	m := BackboneRL{Beta: 0.8, Alpha: 0.9, R: 10, N: 1000, I0: 1}
	crossValidate(t, m, 200, 0.02)
}

func TestBackboneRLSlowdownFactor(t *testing.T) {
	// Covering α of paths slows the epidemic by 1/(1-α) in the small-r
	// approximation — at α=0.9 reaching 50% takes 10x as long.
	base := Homogeneous{Beta: 0.8, N: 1000, I0: 1}
	rl := BackboneRL{Beta: 0.8, Alpha: 0.9, R: 0, N: 1000, I0: 1}
	ratio := rl.TimeToLevel(0.5) / base.TimeToLevel(0.5)
	if math.Abs(ratio-10) > 0.01 {
		t.Errorf("slowdown = %v, want 10", ratio)
	}
}

func TestBackboneRLResidualTermMatters(t *testing.T) {
	// With a big residual rate r, the exact ODE runs ahead of the
	// small-r closed form: δ injects extra cross-path infections.
	m := BackboneRL{Beta: 0.8, Alpha: 0.95, R: 5e8, N: 1000, I0: 1}
	ts, frac, err := Integrate(m, 120, 0.05)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	ahead := false
	for k := range ts {
		if frac[k] > m.Fraction(ts[k])+0.02 {
			ahead = true
			break
		}
	}
	if !ahead {
		t.Error("large-r ODE should outrun the small-r closed form")
	}
}

// Property: infected fraction is monotone in t and decreasing in α.
func TestBackboneRLAlphaMonotoneProperty(t *testing.T) {
	f := func(a1Raw, a2Raw uint8) bool {
		a1 := float64(a1Raw) / 260 // keep < 1
		a2 := float64(a2Raw) / 260
		if a1 > a2 {
			a1, a2 = a2, a1
		}
		lo := BackboneRL{Beta: 0.8, Alpha: a1, R: 0, N: 1000, I0: 1}
		hi := BackboneRL{Beta: 0.8, Alpha: a2, R: 0, N: 1000, I0: 1}
		for tt := 0.0; tt <= 100; tt += 5 {
			if hi.Fraction(tt) > lo.Fraction(tt)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
