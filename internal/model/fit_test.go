package model

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

func TestFitLogisticRecoversParameters(t *testing.T) {
	m := Homogeneous{Beta: 0.8, N: 1000, I0: 1}
	ts := numeric.Linspace(0, 30, 120)
	fracs := Series(m, ts)
	fit, err := FitLogistic(ts, fracs, 0, 0) // defaults
	if err != nil {
		t.Fatalf("FitLogistic: %v", err)
	}
	if math.Abs(fit.Lambda-0.8) > 1e-6 {
		t.Errorf("lambda = %v, want 0.8", fit.Lambda)
	}
	if math.Abs(fit.C-999) > 1e-3 {
		t.Errorf("c = %v, want 999", fit.C)
	}
	if fit.R2 < 0.9999 {
		t.Errorf("R2 = %v, want ~1 for exact data", fit.R2)
	}
	// The fitted curve reproduces the original.
	curve := fit.Curve()
	for _, tt := range []float64{5, 10, 15} {
		if math.Abs(curve.Fraction(tt)-m.Fraction(tt)) > 1e-9 {
			t.Errorf("fitted curve deviates at t=%v", tt)
		}
	}
}

func TestFitLogisticRecoversRateLimitedExponent(t *testing.T) {
	// The point of the fit: recover λ = β(1−α) from a backbone-limited
	// curve without knowing α.
	m := BackboneRL{Beta: 0.8, Alpha: 0.75, R: 0, N: 1000, I0: 1}
	ts := numeric.Linspace(0, 120, 400)
	fit, err := FitLogistic(ts, Series(m, ts), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Lambda-0.2) > 1e-6 {
		t.Errorf("lambda = %v, want β(1−α) = 0.2", fit.Lambda)
	}
}

func TestFitLogisticErrors(t *testing.T) {
	if _, err := FitLogistic([]float64{1, 2}, []float64{0.5}, 0, 0); err == nil {
		t.Error("length mismatch should fail")
	}
	// All samples saturated: nothing in the usable band.
	ts := []float64{1, 2, 3, 4}
	ones := []float64{1, 1, 1, 1}
	if _, err := FitLogistic(ts, ones, 0, 0); err == nil {
		t.Error("saturated data should fail")
	}
	// Degenerate times.
	same := []float64{5, 5, 5, 5}
	mid := []float64{0.3, 0.4, 0.5, 0.6}
	if _, err := FitLogistic(same, mid, 0, 0); err == nil {
		t.Error("constant time samples should fail")
	}
}

func TestFitLogisticNoisyData(t *testing.T) {
	// Fit the growth phase only (t <= 16): noisy samples from the
	// saturated tail wobble back under the hi cutoff with a flat logit
	// and would bias the slope — the standard practice the FitLogistic
	// doc prescribes.
	m := Homogeneous{Beta: 0.5, N: 500, I0: 2}
	ts := numeric.Linspace(0, 16, 60)
	fracs := Series(m, ts)
	// Deterministic multiplicative wobble.
	for i := range fracs {
		fracs[i] *= 1 + 0.03*math.Sin(float64(i))
	}
	fit, err := FitLogistic(ts, fracs, 0.02, 0.98)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Lambda-0.5) > 0.05 {
		t.Errorf("lambda = %v, want ~0.5 under noise", fit.Lambda)
	}
	if fit.R2 < 0.95 {
		t.Errorf("R2 = %v, want high on the growth phase", fit.R2)
	}
}
