package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

// crossValidate checks a model's closed form against RK4 integration of
// its exact ODE over [0, t1] at tolerance tol.
func crossValidate(t *testing.T, m interface {
	Curve
	ODE
	N0() float64
}, t1, tol float64) {
	t.Helper()
	ts, frac, err := Integrate(m, t1, 0.01)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	for k := 0; k < len(ts); k += 10 {
		want := frac[k]
		got := m.Fraction(ts[k])
		if math.Abs(got-want) > tol {
			t.Fatalf("t=%.2f: closed form %.5f vs ODE %.5f (tol %v)", ts[k], got, want, tol)
		}
	}
}

func TestHomogeneousValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       Homogeneous
		wantErr bool
	}{
		{"ok", Homogeneous{Beta: 0.8, N: 1000, I0: 1}, false},
		{"zero beta", Homogeneous{Beta: 0, N: 1000, I0: 1}, true},
		{"zero N", Homogeneous{Beta: 0.8, N: 0, I0: 1}, true},
		{"I0 zero", Homogeneous{Beta: 0.8, N: 1000, I0: 0}, true},
		{"I0 = N", Homogeneous{Beta: 0.8, N: 10, I0: 10}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestHomogeneousClosedFormVsODE(t *testing.T) {
	m := Homogeneous{Beta: 0.8, N: 1000, I0: 1}
	crossValidate(t, m, 40, 1e-4)
}

func TestHomogeneousInitialAndSaturation(t *testing.T) {
	m := Homogeneous{Beta: 0.8, N: 200, I0: 2}
	if got := m.Fraction(0); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("Fraction(0) = %v, want 0.01", got)
	}
	if got := m.Fraction(1e4); math.Abs(got-1) > 1e-9 {
		t.Errorf("Fraction(inf) = %v, want 1", got)
	}
}

func TestHomogeneousTimeToLevel(t *testing.T) {
	m := Homogeneous{Beta: 0.8, N: 1000, I0: 1}
	for _, level := range []float64{0.2, 0.5, 0.8} {
		tt := m.TimeToLevel(level)
		if got := m.Fraction(tt); math.Abs(got-level) > 1e-9 {
			t.Errorf("roundtrip %v: got %v", level, got)
		}
	}
	// Paper's Eq 2 approximation: growing to α× initial count takes
	// ~ln(α)/β while infection is low.
	exact := m.TimeToLevel(0.05) // 50 infected = 50x initial
	approx := m.ApproxTimeToLevel(50)
	if math.Abs(exact-approx) > 0.3 {
		t.Errorf("Eq2 approx %v too far from exact %v", approx, exact)
	}
	if !math.IsNaN(m.ApproxTimeToLevel(0)) {
		t.Error("ApproxTimeToLevel(0) should be NaN")
	}
}

// Property: the infected fraction is non-decreasing in time and bounded
// by [0, 1] for any valid parameters.
func TestHomogeneousMonotoneProperty(t *testing.T) {
	f := func(betaRaw, i0Raw uint8) bool {
		beta := 0.05 + float64(betaRaw%100)/50 // (0.05, 2.05)
		i0 := 1 + float64(i0Raw%50)            // [1, 50]
		m := Homogeneous{Beta: beta, N: 1000, I0: i0}
		prev := -1.0
		for tt := 0.0; tt <= 60; tt += 0.5 {
			v := m.Fraction(tt)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeriesHelper(t *testing.T) {
	m := Homogeneous{Beta: 0.8, N: 100, I0: 1}
	ts := numeric.Linspace(0, 10, 11)
	s := Series(m, ts)
	if len(s) != 11 {
		t.Fatalf("len = %d", len(s))
	}
	for i, tt := range ts {
		if s[i] != m.Fraction(tt) {
			t.Fatalf("series[%d] mismatch", i)
		}
	}
}
