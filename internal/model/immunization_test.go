package model

import (
	"math"
	"testing"
)

func TestDelayedImmunizationValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       DelayedImmunization
		wantErr bool
	}{
		{"ok", DelayedImmunization{Beta: 0.8, Mu: 0.1, Delay: 6, N: 1000, I0: 1}, false},
		{"mu over 1", DelayedImmunization{Beta: 0.8, Mu: 1.1, Delay: 6, N: 1000, I0: 1}, true},
		{"negative delay", DelayedImmunization{Beta: 0.8, Mu: 0.1, Delay: -1, N: 1000, I0: 1}, true},
		{"zero beta", DelayedImmunization{Beta: 0, Mu: 0.1, Delay: 6, N: 1000, I0: 1}, true},
		{"bad pop", DelayedImmunization{Beta: 0.8, Mu: 0.1, Delay: 6, N: 1000, I0: 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestDelayedImmunizationBeforeDelayMatchesBaseline(t *testing.T) {
	m := DelayedImmunization{Beta: 0.8, Mu: 0.1, Delay: 8, N: 1000, I0: 1}
	base := Homogeneous{Beta: 0.8, N: 1000, I0: 1}
	for tt := 0.0; tt <= 8; tt += 0.5 {
		if math.Abs(m.Fraction(tt)-base.Fraction(tt)) > 1e-12 {
			t.Fatalf("pre-delay deviation at t=%v", tt)
		}
	}
}

func TestDelayedImmunizationContinuityAtDelay(t *testing.T) {
	m := DelayedImmunization{Beta: 0.8, Mu: 0.1, Delay: 7, N: 1000, I0: 1}
	before := m.Fraction(7 - 1e-9)
	after := m.Fraction(7 + 1e-9)
	if math.Abs(before-after) > 1e-6 {
		t.Errorf("discontinuity at delay: %v vs %v", before, after)
	}
}

func TestDelayedImmunizationEventualDecline(t *testing.T) {
	m := DelayedImmunization{Beta: 0.8, Mu: 0.1, Delay: 6, N: 1000, I0: 1}
	peak := 0.0
	for tt := 0.0; tt <= 100; tt += 0.5 {
		if v := m.Fraction(tt); v > peak {
			peak = v
		}
	}
	if peak > 0.999 {
		t.Errorf("peak = %v: immunization should prevent full saturation", peak)
	}
	// Infection eventually dies out (I/N0 -> 0).
	if tail := m.Fraction(300); tail > 0.01 {
		t.Errorf("tail = %v, want near 0", tail)
	}
}

func TestDelayedImmunizationClosedFormVsODE(t *testing.T) {
	// The paper's closed form is an approximation after t > d (it treats
	// N as N0 inside the logistic denominator) — so compare loosely, but
	// the two must agree on the peak location/height to a few percent.
	m := DelayedImmunization{Beta: 0.8, Mu: 0.1, Delay: 9, N: 1000, I0: 1}
	ts, frac, err := Integrate(m, 60, 0.01)
	if err != nil {
		t.Fatalf("Integrate: %v", err)
	}
	peakODE, peakCF := 0.0, 0.0
	for k, tt := range ts {
		if frac[k] > peakODE {
			peakODE = frac[k]
		}
		if v := m.Fraction(tt); v > peakCF {
			peakCF = v
		}
	}
	if math.Abs(peakODE-peakCF) > 0.08 {
		t.Errorf("peak mismatch: ODE %v vs closed form %v", peakODE, peakCF)
	}
}

func TestDelayForLevel(t *testing.T) {
	m := DelayedImmunization{Beta: 0.8, Mu: 0.1, N: 1000, I0: 1}
	// Paper: "for immunization starting at 20%, our analytical model
	// shows that it should happen around the 6th timetick" (β=0.8,
	// N=1000... with I0=1 the exact figure is ~lnα/β ≈ 6.9 + logistic
	// correction; accept the 6-10 band).
	d20 := m.DelayForLevel(0.2)
	if d20 < 5 || d20 > 10 {
		t.Errorf("delay for 20%% = %v, want ≈ 6-10 ticks", d20)
	}
	d50 := m.DelayForLevel(0.5)
	d80 := m.DelayForLevel(0.8)
	if !(d20 < d50 && d50 < d80) {
		t.Errorf("delays should increase with level: %v %v %v", d20, d50, d80)
	}
}

// Figure 8(a)'s headline: earlier immunization caps the total infected
// population lower — ~80% for a 20% start, ~90% for 50%, ~98% for 80%.
func TestEverInfectedOrdering(t *testing.T) {
	base := DelayedImmunization{Beta: 0.8, Mu: 0.1, N: 1000, I0: 1}
	var prev float64
	for i, level := range []float64{0.2, 0.5, 0.8} {
		m := base
		m.Delay = m.DelayForLevel(level)
		ever, err := m.EverInfected(100, 0.01)
		if err != nil {
			t.Fatalf("EverInfected: %v", err)
		}
		if ever <= level || ever > 1 {
			t.Errorf("start %v: ever-infected %v out of (level, 1]", level, ever)
		}
		if i > 0 && ever <= prev {
			t.Errorf("ever-infected should increase with delay: %v then %v", prev, ever)
		}
		prev = ever
	}
	// No immunization at all ever infects ~everyone.
	m := base
	m.Mu = 0
	m.Delay = 0
	ever, err := m.EverInfected(100, 0.01)
	if err != nil {
		t.Fatalf("EverInfected: %v", err)
	}
	if ever < 0.99 {
		t.Errorf("µ=0 ever-infected = %v, want ~1", ever)
	}
}

func TestBackboneRLImmunizationValidate(t *testing.T) {
	ok := BackboneRLImmunization{Beta: 0.8, Alpha: 0.5, R: 10, Mu: 0.1, Delay: 6, N: 1000, I0: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	bad := ok
	bad.Mu = 2
	if err := bad.Validate(); err == nil {
		t.Error("mu=2 should fail")
	}
	bad = ok
	bad.Delay = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative delay should fail")
	}
	bad = ok
	bad.Alpha = 3
	if err := bad.Validate(); err == nil {
		t.Error("alpha=3 should fail")
	}
}

func TestBackboneRLImmunizationGamma(t *testing.T) {
	m := BackboneRLImmunization{Beta: 0.8, Alpha: 0.75, R: 0, Mu: 0.1, Delay: 6, N: 1000, I0: 1}
	if got := m.Gamma(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Gamma = %v, want 0.2", got)
	}
}

func TestBackboneRLImmunizationReducesToDelayed(t *testing.T) {
	// α=0, r=0: exactly the plain delayed-immunization model.
	rl := BackboneRLImmunization{Beta: 0.8, Alpha: 0, R: 0, Mu: 0.1, Delay: 6, N: 1000, I0: 1}
	plain := DelayedImmunization{Beta: 0.8, Mu: 0.1, Delay: 6, N: 1000, I0: 1}
	for tt := 0.0; tt <= 40; tt += 1 {
		if math.Abs(rl.Fraction(tt)-plain.Fraction(tt)) > 1e-12 {
			t.Fatalf("α=0 deviates at t=%v", tt)
		}
	}
}

// Figure 8(b)'s headline: with backbone RL, immunization at the same
// wall-clock delay yields a lower total infected population (72% vs 80%
// in the paper's 20%-start scenario).
func TestRateLimitingBuysTime(t *testing.T) {
	noRL := DelayedImmunization{Beta: 0.8, Mu: 0.1, Delay: 6, N: 1000, I0: 1}
	withRL := BackboneRLImmunization{Beta: 0.8, Alpha: 0.3, R: 10, Mu: 0.1, Delay: 6, N: 1000, I0: 1}
	everNo, err := noRL.EverInfected(150, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	everRL, err := withRL.EverInfected(150, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if everRL >= everNo {
		t.Errorf("RL ever-infected %v should be below no-RL %v", everRL, everNo)
	}
	if everNo-everRL < 0.03 {
		t.Errorf("RL benefit %v too small to be meaningful", everNo-everRL)
	}
}

func TestVariableImmunizationValidate(t *testing.T) {
	ok := VariableImmunization{Beta: 0.8, Peak: 0.2, TPeak: 15, Width: 5, Delay: 5, N: 1000, I0: 1}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	for _, mod := range []func(*VariableImmunization){
		func(m *VariableImmunization) { m.Peak = 1.5 },
		func(m *VariableImmunization) { m.Width = 0 },
		func(m *VariableImmunization) { m.Delay = -1 },
		func(m *VariableImmunization) { m.Beta = 0 },
		func(m *VariableImmunization) { m.I0 = 0 },
	} {
		m := ok
		mod(&m)
		if err := m.Validate(); err == nil {
			t.Errorf("mutated model %+v should fail validation", m)
		}
	}
}

func TestVariableImmunizationBellCurve(t *testing.T) {
	m := VariableImmunization{Beta: 0.8, Peak: 0.2, TPeak: 15, Width: 5, Delay: 5, N: 1000, I0: 1}
	if got := m.Mu(3); got != 0 {
		t.Errorf("µ before delay = %v, want 0", got)
	}
	if got := m.Mu(15); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("µ at peak = %v, want 0.2", got)
	}
	if m.Mu(10) >= m.Mu(15) || m.Mu(40) >= m.Mu(15) {
		t.Error("µ should peak at TPeak")
	}
}

func TestVariableImmunizationVsConstant(t *testing.T) {
	// A bell with the same total patching mass should land in the same
	// ballpark of ever-infected as the constant-µ model; more usefully,
	// zero peak = no immunization at all.
	none := VariableImmunization{Beta: 0.8, Peak: 0, TPeak: 15, Width: 5, Delay: 5, N: 1000, I0: 1}
	ever, err := none.EverInfected(80, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ever < 0.99 {
		t.Errorf("peak=0 should infect ~everyone, got %v", ever)
	}
	bell := VariableImmunization{Beta: 0.8, Peak: 0.3, TPeak: 10, Width: 6, Delay: 5, N: 1000, I0: 1}
	everBell, err := bell.EverInfected(80, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if everBell >= ever {
		t.Errorf("bell-curve patching %v should beat no patching %v", everBell, ever)
	}
}
