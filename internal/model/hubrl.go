package model

import (
	"math"

	"repro/internal/numeric"
)

// HubRL models rate limiting at the hub of a star topology (Section 4),
// with both link-level and node-level limits. While the combined leaf
// demand is below the hub budget (γ·I ≤ β) the links limit propagation:
//
//	dI/dt = γ·I·(N−I)/N,   γI ≤ β     (Equation 4)
//
// once demand exceeds the hub budget the hub node rate limits:
//
//	dI/dt = β·(N−I)/N,     γI > β     (Equation 5)
//
// The closed form is the logistic e^{γt}/(c+e^{γt}) glued at the regime
// boundary I* = β/γ to the saturating exponential 1 − c′e^{−β(t−t*)/N}.
// This is also the model used (per §7) to approximate aggregate edge-
// router rate limiting of a single subnet in Figure 10.
type HubRL struct {
	Beta  float64 // hub node-level rate limit β (packets per tick through the hub)
	Gamma float64 // per-link rate limit γ
	N     float64 // number of leaf nodes
	I0    float64 // initially infected leaves
}

// Validate checks the parameters.
func (m HubRL) Validate() error {
	if err := checkPopulation(m.N, m.I0); err != nil {
		return err
	}
	if m.Beta < 0 || m.Gamma < 0 {
		return errNegativeRate
	}
	return nil
}

// SwitchFraction returns the infected fraction I*/N = β/(γN) at which
// the dynamics switch from link-limited to node-limited. +Inf when γ = 0
// (the node limit never binds).
func (m HubRL) SwitchFraction() float64 {
	if m.Gamma == 0 {
		return math.Inf(1)
	}
	return m.Beta / (m.Gamma * m.N)
}

// c returns the phase-1 logistic constant.
func (m HubRL) c() float64 { return numeric.LogisticC(m.I0 / m.N) }

// SwitchTime returns the time at which the link-limited logistic reaches
// the regime boundary, or +Inf if it never does (boundary ≥ 1), or 0 if
// the initial infection already exceeds it.
func (m HubRL) SwitchTime() float64 {
	istar := m.SwitchFraction()
	if m.I0/m.N >= istar {
		return 0
	}
	if istar >= 1 || m.Gamma == 0 {
		return math.Inf(1)
	}
	return numeric.LogisticTimeToLevel(istar, m.Gamma, m.c())
}

// Fraction returns I(t)/N from the glued closed form.
func (m HubRL) Fraction(t float64) float64 {
	ts := m.SwitchTime()
	if ts == 0 {
		// Node-limited from the start: anchor phase 2 at the initial
		// fraction, which may exceed the regime boundary.
		return m.phase2(t, 0, m.I0/m.N)
	}
	if t <= ts {
		return numeric.Logistic(t, m.Gamma, m.c())
	}
	istar := math.Min(m.SwitchFraction(), 1)
	return m.phase2(t, ts, istar)
}

// phase2 evaluates the node-limited regime anchored at (t0, i0):
// i(t) = 1 − (1−i0)·e^{−β(t−t0)/N}.
func (m HubRL) phase2(t, t0, i0 float64) float64 {
	return 1 - (1-i0)*math.Exp(-m.Beta*(t-t0)/m.N)
}

// TimeToLevel inverts the glued closed form.
func (m HubRL) TimeToLevel(level float64) float64 {
	if level <= 0 || level >= 1 {
		return math.NaN()
	}
	if level <= m.I0/m.N {
		return 0
	}
	ts := m.SwitchTime()
	istar := m.SwitchFraction()
	if level < istar || math.IsInf(ts, 1) {
		// Reached within the link-limited logistic.
		if m.Gamma == 0 {
			return math.Inf(1) // frozen epidemic never reaches the level
		}
		return numeric.LogisticTimeToLevel(level, m.Gamma, m.c())
	}
	// Node-limited: level = 1 − (1−anchor)e^{−β(t−ts)/N}.
	anchor := math.Min(istar, 1)
	if ts == 0 {
		anchor = m.I0 / m.N
	}
	if m.Beta == 0 {
		return math.Inf(1)
	}
	return ts + m.N/m.Beta*math.Log((1-anchor)/(1-level))
}

// RHS returns the exact piecewise dynamics (Equations 4 and 5).
// State: [I].
func (m HubRL) RHS() numeric.RHS {
	return numeric.PiecewiseRHS([]numeric.Piece{
		{
			While: func(t float64, y []float64) bool { return m.Gamma*y[0] <= m.Beta },
			F: func(t float64, y, dst []float64) {
				dst[0] = m.Gamma * y[0] * (m.N - y[0]) / m.N
			},
		},
		{
			F: func(t float64, y, dst []float64) {
				dst[0] = m.Beta * (m.N - y[0]) / m.N
			},
		},
	})
}

// InitialState returns [I0].
func (m HubRL) InitialState() []float64 { return []float64{m.I0} }

// N0 returns the population size.
func (m HubRL) N0() float64 { return m.N }

var (
	_ Curve     = HubRL{}
	_ Validator = HubRL{}
	_ ODE       = HubRL{}
)
