package model_test

import (
	"fmt"

	"repro/internal/model"
)

// The baseline homogeneous epidemic (Equation 1): how long until half
// the population is infected at β = 0.8?
func ExampleHomogeneous() {
	m := model.Homogeneous{Beta: 0.8, N: 1000, I0: 1}
	fmt.Printf("t50 = %.1f ticks\n", m.TimeToLevel(0.5))
	// Output: t50 = 8.6 ticks
}

// Host-based rate limiting (Equation 3) slows the worm linearly in the
// unfiltered fraction: even 80% deployment only buys ~5x.
func ExampleHostRL() {
	base := model.HostRL{Q: 0, Beta1: 0.8, Beta2: 0.01, N: 1000, I0: 1}
	deployed := base
	deployed.Q = 0.8
	fmt.Printf("slowdown at 80%% deployment: %.1fx\n",
		deployed.TimeToLevel(0.5)/base.TimeToLevel(0.5))
	// Output: slowdown at 80% deployment: 4.8x
}

// Backbone rate limiting (Equation 6): covering α of the paths divides
// the epidemic exponent by 1/(1−α).
func ExampleBackboneRL() {
	m := model.BackboneRL{Beta: 0.8, Alpha: 0.9, R: 0, N: 1000, I0: 1}
	fmt.Printf("effective exponent λ = %.2f\n", m.Lambda())
	// Output: effective exponent λ = 0.08
}

// Delayed immunization (Section 6.1): patching from the moment the
// epidemic hits 20% caps the total infected population near 80%.
func ExampleDelayedImmunization_EverInfected() {
	m := model.DelayedImmunization{Beta: 0.8, Mu: 0.1, N: 1000, I0: 1}
	m.Delay = m.DelayForLevel(0.2)
	ever, err := m.EverInfected(200, 0.01)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("total ever infected: %.0f%%\n", ever*100)
	// Output: total ever infected: 83%
}

// FitLogistic recovers the effective epidemic exponent from an observed
// curve — here the rate-limited exponent β(1−α) without knowing α.
func ExampleFitLogistic() {
	m := model.BackboneRL{Beta: 0.8, Alpha: 0.75, R: 0, N: 1000, I0: 1}
	var ts, fracs []float64
	for t := 0.0; t <= 120; t += 0.5 {
		ts = append(ts, t)
		fracs = append(fracs, m.Fraction(t))
	}
	fit, err := model.FitLogistic(ts, fracs, 0, 0)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("fitted λ = %.2f (true β(1−α) = %.2f)\n", fit.Lambda, m.Lambda())
	// Output: fitted λ = 0.20 (true β(1−α) = 0.20)
}
