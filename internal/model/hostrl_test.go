package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHostRLValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       HostRL
		wantErr bool
	}{
		{"ok", HostRL{Q: 0.5, Beta1: 0.8, Beta2: 0.01, N: 1000, I0: 1}, false},
		{"q over 1", HostRL{Q: 1.5, Beta1: 0.8, Beta2: 0.01, N: 1000, I0: 1}, true},
		{"q negative", HostRL{Q: -0.1, Beta1: 0.8, Beta2: 0.01, N: 1000, I0: 1}, true},
		{"negative rate", HostRL{Q: 0.5, Beta1: -1, Beta2: 0.01, N: 1000, I0: 1}, true},
		{"bad pop", HostRL{Q: 0.5, Beta1: 0.8, Beta2: 0.01, N: 0, I0: 1}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestHostRLLambda(t *testing.T) {
	m := HostRL{Q: 0.3, Beta1: 0.8, Beta2: 0.01, N: 1000, I0: 1}
	want := 0.3*0.01 + 0.7*0.8
	if got := m.Lambda(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Lambda = %v, want %v", got, want)
	}
}

func TestHostRLClosedFormVsODE(t *testing.T) {
	for _, q := range []float64{0, 0.05, 0.5, 0.8, 1} {
		m := HostRL{Q: q, Beta1: 0.8, Beta2: 0.01, N: 1000, I0: 1}
		crossValidate(t, m, 60, 1e-4)
	}
}

func TestHostRLReducesToHomogeneous(t *testing.T) {
	// q = 0 must match the baseline model exactly.
	h := Homogeneous{Beta: 0.8, N: 1000, I0: 1}
	m := HostRL{Q: 0, Beta1: 0.8, Beta2: 0.01, N: 1000, I0: 1}
	for tt := 0.0; tt < 40; tt += 1 {
		if math.Abs(h.Fraction(tt)-m.Fraction(tt)) > 1e-12 {
			t.Fatalf("q=0 deviates from homogeneous at t=%v", tt)
		}
	}
	// q = 1: everyone filtered, epidemic runs at β2.
	full := HostRL{Q: 1, Beta1: 0.8, Beta2: 0.01, N: 1000, I0: 1}
	slow := Homogeneous{Beta: 0.01, N: 1000, I0: 1}
	for tt := 0.0; tt < 40; tt += 1 {
		if math.Abs(full.Fraction(tt)-slow.Fraction(tt)) > 1e-12 {
			t.Fatalf("q=1 deviates from β2 epidemic at t=%v", tt)
		}
	}
}

// The paper's headline: the slowdown is linear in (1-q) — i.e.
// time-to-level scales as 1/(1-q) when β1 >> β2. Figure 2's observation
// that 80% deployment is barely 5x and only 100% is dramatic.
func TestHostRLLinearSlowdown(t *testing.T) {
	base := HostRL{Q: 0, Beta1: 0.8, Beta2: 0.001, N: 1000, I0: 1}
	t0 := base.TimeToLevel(0.5)
	for _, q := range []float64{0.05, 0.5, 0.8} {
		m := base
		m.Q = q
		ratio := m.TimeToLevel(0.5) / t0
		wantApprox := 1 / (1 - q) // linear slowdown
		if math.Abs(ratio-wantApprox)/wantApprox > 0.05 {
			t.Errorf("q=%v: slowdown %v, want ~%v", q, ratio, wantApprox)
		}
	}
	// 5% deployment is negligible (<6% slowdown)...
	m5 := base
	m5.Q = 0.05
	if s := m5.TimeToLevel(0.5) / t0; s > 1.06 {
		t.Errorf("5%% deployment slowdown %v, want negligible", s)
	}
	// ...while 100% is enormous (β1/β2 = 800x).
	m100 := base
	m100.Q = 1
	if s := m100.TimeToLevel(0.5) / t0; s < 100 {
		t.Errorf("100%% deployment slowdown %v, want >> 100x", s)
	}
}

func TestHostRLSlowdownAccessor(t *testing.T) {
	m := HostRL{Q: 0.5, Beta1: 0.8, Beta2: 0, N: 1000, I0: 1}
	if got := m.Slowdown(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Slowdown = %v, want 2", got)
	}
	z := HostRL{Q: 1, Beta1: 0.8, Beta2: 0, N: 1000, I0: 1}
	if got := z.Slowdown(); got != 0 {
		t.Errorf("Slowdown with λ=0 = %v, want 0", got)
	}
}

// Property: increasing q never speeds up the epidemic.
func TestHostRLMonotoneInQ(t *testing.T) {
	f := func(q1Raw, q2Raw uint8) bool {
		q1 := float64(q1Raw) / 255
		q2 := float64(q2Raw) / 255
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a := HostRL{Q: q1, Beta1: 0.8, Beta2: 0.01, N: 1000, I0: 1}
		b := HostRL{Q: q2, Beta1: 0.8, Beta2: 0.01, N: 1000, I0: 1}
		for tt := 0.0; tt <= 50; tt += 2.5 {
			if b.Fraction(tt) > a.Fraction(tt)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
