package model

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// DelayedImmunization is the dynamic-immunization model of Section 6.1.
// Immunization (patching) starts at time d; thereafter every host —
// susceptible or infected — is patched with probability µ per unit time:
//
//	dI/dt = β·I·(N−I)/N                 t ≤ d
//	dI/dt = β·I·(N−I)/N − µ·I           t > d
//	dN/dt = −µ·N                        t > d
//
// Closed form (paper, §6.1), with N0 the initial susceptible population:
//
//	I/N0 = e^{βt}/(c+e^{βt})                      t ≤ d
//	I/N0 = e^{(β−µ)(t−d)} / (c0 + e^{β(t−d)})     t > d
//
// where c0 is fixed by continuity at t = d.
type DelayedImmunization struct {
	Beta  float64 // contact rate β
	Mu    float64 // per-tick patch probability µ after the delay
	Delay float64 // immunization start time d
	N     float64 // initial susceptible population N0
	I0    float64 // initially infected hosts
}

// Validate checks the parameters.
func (m DelayedImmunization) Validate() error {
	if err := checkPopulation(m.N, m.I0); err != nil {
		return err
	}
	if m.Beta <= 0 {
		return errNonPositiveRate
	}
	if m.Mu < 0 || m.Mu > 1 {
		return fmt.Errorf("%w: mu=%v", errBadFraction, m.Mu)
	}
	if m.Delay < 0 {
		return fmt.Errorf("model: delay must be non-negative, got %v", m.Delay)
	}
	return nil
}

// DelayForLevel returns the start time d at which the *un-immunized*
// epidemic reaches the given infected fraction — the paper specifies
// immunization starts "at 20% infection" and derives the corresponding
// tick from the baseline model (e.g. ≈ tick 6 for 20% at β=0.8,N=1000).
func (m DelayedImmunization) DelayForLevel(level float64) float64 {
	base := Homogeneous{Beta: m.Beta, N: m.N, I0: m.I0}
	return base.TimeToLevel(level)
}

// fractionAtDelay returns I(d)/N0 from the pre-immunization logistic.
func (m DelayedImmunization) fractionAtDelay() float64 {
	return numeric.Logistic(m.Delay, m.Beta, numeric.LogisticC(m.I0/m.N))
}

// Fraction returns I(t)/N0 from the piecewise closed form.
func (m DelayedImmunization) Fraction(t float64) float64 {
	c := numeric.LogisticC(m.I0 / m.N)
	if t <= m.Delay {
		return numeric.Logistic(t, m.Beta, c)
	}
	fd := m.fractionAtDelay()
	c0 := 1/fd - 1 // continuity: e^0/(c0+e^0) = fd
	dt := t - m.Delay
	num := math.Exp((m.Beta - m.Mu) * dt)
	den := c0 + math.Exp(m.Beta*dt)
	if math.IsInf(den, 1) {
		// Large t: ratio tends to e^{−µ·dt} → 0 for µ>0.
		return math.Exp(-m.Mu * dt)
	}
	return num / den
}

// RHS returns the exact dynamics. State: [I, N, E] where E is the
// cumulative ever-infected count (dE/dt = rate of new infections), used
// to reproduce the "total percentage of nodes ever infected" metric of
// Figure 8.
func (m DelayedImmunization) RHS() numeric.RHS {
	return func(t float64, y, dst []float64) {
		i, n := y[0], y[1]
		if n <= 0 {
			dst[0], dst[1], dst[2] = 0, 0, 0
			return
		}
		newInf := m.Beta * i * (n - i) / n
		if newInf < 0 {
			newInf = 0
		}
		dst[2] = newInf
		if t <= m.Delay {
			dst[0] = newInf
			dst[1] = 0
			return
		}
		dst[0] = newInf - m.Mu*i
		dst[1] = -m.Mu * n
	}
}

// InitialState returns [I0, N0, I0].
func (m DelayedImmunization) InitialState() []float64 {
	return []float64{m.I0, m.N, m.I0}
}

// N0 returns the initial susceptible population.
func (m DelayedImmunization) N0() float64 { return m.N }

// EverInfected integrates the exact dynamics to t1 and returns the final
// ever-infected fraction E(t1)/N0 — the saturation value plotted in
// Figure 8(a) (≈ 0.80/0.90/0.98 for starts at 20/50/80% infection).
func (m DelayedImmunization) EverInfected(t1, dt float64) (float64, error) {
	sol, err := numeric.RK4(m.RHS(), m.InitialState(), 0, t1, dt)
	if err != nil {
		return 0, fmt.Errorf("model: ever-infected: %w", err)
	}
	e := sol.States[len(sol.States)-1][2]
	return math.Min(e/m.N, 1), nil
}

var (
	_ Curve     = DelayedImmunization{}
	_ Validator = DelayedImmunization{}
	_ ODE       = DelayedImmunization{}
)

// BackboneRLImmunization combines backbone rate limiting with delayed
// immunization (Section 6.2):
//
//	dI/dt = I·β(1−α)·(N−I)/N + δ(N−I)/N          t ≤ d
//	dI/dt = I·β(1−α)·(N−I)/N + δ(N−I)/N − µI     t > d
//	dN/dt = −µN                                   t > d
//
// with δ = min(Iβα, rN/2³²). For small r the closed form is the delayed-
// immunization solution with γ = β(1−α) in place of β.
type BackboneRLImmunization struct {
	Beta  float64 // raw contact rate β
	Alpha float64 // fraction of paths covered by backbone rate limiting
	R     float64 // aggregate allowed rate through limited routers
	Mu    float64 // per-tick patch probability after the delay
	Delay float64 // immunization start time d
	N     float64 // initial susceptible population
	I0    float64 // initially infected hosts
}

// Validate checks the parameters.
func (m BackboneRLImmunization) Validate() error {
	if err := (BackboneRL{Beta: m.Beta, Alpha: m.Alpha, R: m.R, N: m.N, I0: m.I0}).Validate(); err != nil {
		return err
	}
	if m.Mu < 0 || m.Mu > 1 {
		return fmt.Errorf("%w: mu=%v", errBadFraction, m.Mu)
	}
	if m.Delay < 0 {
		return fmt.Errorf("model: delay must be non-negative, got %v", m.Delay)
	}
	return nil
}

// Gamma returns the rate-limited epidemic exponent γ = β(1−α).
func (m BackboneRLImmunization) Gamma() float64 { return m.Beta * (1 - m.Alpha) }

// asDelayed returns the equivalent small-r delayed-immunization model
// with γ substituted for β.
func (m BackboneRLImmunization) asDelayed() DelayedImmunization {
	return DelayedImmunization{Beta: m.Gamma(), Mu: m.Mu, Delay: m.Delay, N: m.N, I0: m.I0}
}

// Fraction returns the small-r piecewise closed form with γ = β(1−α).
func (m BackboneRLImmunization) Fraction(t float64) float64 {
	return m.asDelayed().Fraction(t)
}

// RHS returns the exact dynamics including the δ term.
// State: [I, N, E] as for DelayedImmunization.
func (m BackboneRLImmunization) RHS() numeric.RHS {
	bb := BackboneRL{Beta: m.Beta, Alpha: m.Alpha, R: m.R, N: m.N, I0: m.I0}
	return func(t float64, y, dst []float64) {
		i, n := y[0], y[1]
		if n <= 0 {
			dst[0], dst[1], dst[2] = 0, 0, 0
			return
		}
		newInf := i*m.Beta*(1-m.Alpha)*(n-i)/n + bb.Delta(i)*(n-i)/n
		if newInf < 0 {
			newInf = 0
		}
		dst[2] = newInf
		if t <= m.Delay {
			dst[0] = newInf
			dst[1] = 0
			return
		}
		dst[0] = newInf - m.Mu*i
		dst[1] = -m.Mu * n
	}
}

// InitialState returns [I0, N0, I0].
func (m BackboneRLImmunization) InitialState() []float64 {
	return []float64{m.I0, m.N, m.I0}
}

// N0 returns the initial susceptible population.
func (m BackboneRLImmunization) N0() float64 { return m.N }

// EverInfected integrates the exact dynamics and returns E(t1)/N0 —
// e.g. ≈ 0.72 for the Figure 8(b) 20%-start scenario, vs 0.80 without
// rate limiting.
func (m BackboneRLImmunization) EverInfected(t1, dt float64) (float64, error) {
	sol, err := numeric.RK4(m.RHS(), m.InitialState(), 0, t1, dt)
	if err != nil {
		return 0, fmt.Errorf("model: ever-infected: %w", err)
	}
	e := sol.States[len(sol.States)-1][2]
	return math.Min(e/m.N, 1), nil
}

var (
	_ Curve     = BackboneRLImmunization{}
	_ Validator = BackboneRLImmunization{}
	_ ODE       = BackboneRLImmunization{}
)
