package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKephartWhiteValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       KephartWhite
		wantErr bool
	}{
		{"ok", KephartWhite{Beta: 0.8, Delta: 0.1, N: 1000, I0: 1}, false},
		{"zero beta", KephartWhite{Beta: 0, Delta: 0.1, N: 1000, I0: 1}, true},
		{"negative delta", KephartWhite{Beta: 0.8, Delta: -0.1, N: 1000, I0: 1}, true},
		{"bad pop", KephartWhite{Beta: 0.8, Delta: 0.1, N: 1000, I0: 0}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestKephartWhiteClosedFormVsODE(t *testing.T) {
	tests := []struct {
		name string
		m    KephartWhite
	}{
		{"above threshold", KephartWhite{Beta: 0.8, Delta: 0.1, N: 1000, I0: 1}},
		{"near threshold", KephartWhite{Beta: 0.8, Delta: 0.75, N: 1000, I0: 50}},
		{"at threshold", KephartWhite{Beta: 0.8, Delta: 0.8, N: 1000, I0: 100}},
		{"below threshold", KephartWhite{Beta: 0.4, Delta: 0.8, N: 1000, I0: 200}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			crossValidate(t, tt.m, 80, 1e-3)
		})
	}
}

func TestKephartWhiteEndemicLevel(t *testing.T) {
	m := KephartWhite{Beta: 0.8, Delta: 0.2, N: 1000, I0: 1}
	if got := m.EndemicLevel(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("endemic level = %v, want 0.75", got)
	}
	if got := m.Fraction(1e4); math.Abs(got-0.75) > 1e-6 {
		t.Errorf("long-run fraction = %v, want 0.75", got)
	}
	sub := KephartWhite{Beta: 0.2, Delta: 0.8, N: 1000, I0: 500}
	if !sub.BelowThreshold() || sub.EndemicLevel() != 0 {
		t.Error("δ>β should be below threshold")
	}
	if got := sub.Fraction(200); got > 1e-6 {
		t.Errorf("below-threshold infection should die out, got %v", got)
	}
}

func TestKephartWhiteReducesToHomogeneous(t *testing.T) {
	sis := KephartWhite{Beta: 0.8, Delta: 0, N: 1000, I0: 1}
	h := Homogeneous{Beta: 0.8, N: 1000, I0: 1}
	for tt := 0.0; tt <= 40; tt += 1 {
		if math.Abs(sis.Fraction(tt)-h.Fraction(tt)) > 1e-9 {
			t.Fatalf("δ=0 deviates from homogeneous at t=%v", tt)
		}
	}
}

func TestKephartWhiteTimeToLevel(t *testing.T) {
	m := KephartWhite{Beta: 0.8, Delta: 0.2, N: 1000, I0: 1}
	for _, level := range []float64{0.1, 0.5, 0.7} {
		tt := m.TimeToLevel(level)
		if got := m.Fraction(tt); math.Abs(got-level) > 1e-9 {
			t.Errorf("roundtrip %v: got %v at t=%v", level, got, tt)
		}
	}
	if !math.IsNaN(m.TimeToLevel(0.8)) {
		t.Error("level above endemic should be NaN")
	}
	if got := m.TimeToLevel(0.0005); got != 0 {
		t.Errorf("level below initial = %v, want 0", got)
	}
}

// The paper's §1 contrast with the traditional constant-rate model:
// before anyone patches, the real (delayed) epidemic grows at the full
// exponent β rather than β−δ, and after patching starts it declines to
// extinction, while the constant-δ model settles into a permanent
// endemic level. Both differences matter for defense planning.
func TestConstantVsDelayedImmunization(t *testing.T) {
	constant := KephartWhite{Beta: 0.8, Delta: 0.1, N: 1000, I0: 1}
	delayed := DelayedImmunization{Beta: 0.8, Mu: 0.1, Delay: 9, N: 1000, I0: 1}
	// Early on, the delayed epidemic runs ahead of the constant one.
	for tt := 2.0; tt <= 9; tt += 1 {
		if delayed.Fraction(tt) <= constant.Fraction(tt) {
			t.Fatalf("at t=%v delayed %v should exceed constant %v",
				tt, delayed.Fraction(tt), constant.Fraction(tt))
		}
	}
	// In the long run the constant model persists at its endemic level
	// while the delayed epidemic burns out.
	if got := constant.Fraction(500); math.Abs(got-constant.EndemicLevel()) > 1e-6 {
		t.Errorf("constant model long-run %v, want endemic %v", got, constant.EndemicLevel())
	}
	if got := delayed.Fraction(500); got > 1e-6 {
		t.Errorf("delayed model long-run %v, want extinction", got)
	}
}

// Property: the closed form stays within [0, max(i0, endemic)] and is
// monotone toward the endemic level.
func TestKephartWhiteBoundedProperty(t *testing.T) {
	f := func(bRaw, dRaw, i0Raw uint8) bool {
		beta := 0.1 + float64(bRaw%80)/100 // (0.1, 0.9)
		delta := float64(dRaw%100) / 100   // [0, 1)
		i0 := 1 + float64(i0Raw%200)       // [1, 200]
		m := KephartWhite{Beta: beta, Delta: delta, N: 1000, I0: i0}
		upper := math.Max(i0/1000, m.EndemicLevel()) + 1e-9
		for tt := 0.0; tt <= 200; tt += 2 {
			v := m.Fraction(tt)
			if v < -1e-9 || v > upper {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
