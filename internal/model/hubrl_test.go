package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHubRLValidate(t *testing.T) {
	tests := []struct {
		name    string
		m       HubRL
		wantErr bool
	}{
		{"ok", HubRL{Beta: 2, Gamma: 0.05, N: 200, I0: 1}, false},
		{"negative beta", HubRL{Beta: -1, Gamma: 0.05, N: 200, I0: 1}, true},
		{"negative gamma", HubRL{Beta: 2, Gamma: -0.05, N: 200, I0: 1}, true},
		{"bad pop", HubRL{Beta: 2, Gamma: 0.05, N: 200, I0: 200}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.m.Validate(); (err != nil) != tt.wantErr {
				t.Errorf("Validate() err=%v, wantErr=%v", err, tt.wantErr)
			}
		})
	}
}

func TestHubRLSwitchFraction(t *testing.T) {
	m := HubRL{Beta: 2, Gamma: 0.05, N: 200, I0: 1}
	// I* = β/γ = 40 hosts = 20% of 200.
	if got := m.SwitchFraction(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("SwitchFraction = %v, want 0.2", got)
	}
	noLink := HubRL{Beta: 2, Gamma: 0, N: 200, I0: 1}
	if !math.IsInf(noLink.SwitchFraction(), 1) {
		t.Error("γ=0 switch fraction should be +Inf")
	}
}

func TestHubRLClosedFormVsODE(t *testing.T) {
	tests := []struct {
		name string
		m    HubRL
	}{
		{"switches regimes", HubRL{Beta: 2, Gamma: 0.05, N: 200, I0: 1}},
		{"link only (boundary above 1)", HubRL{Beta: 500, Gamma: 0.1, N: 200, I0: 1}},
		{"node limited from t=0", HubRL{Beta: 0.01, Gamma: 1, N: 200, I0: 5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			// The glue point of the closed form is only first-order
			// continuous, so allow a slightly looser tolerance.
			crossValidate(t, tt.m, 300, 5e-3)
		})
	}
}

func TestHubRLContinuityAtSwitch(t *testing.T) {
	m := HubRL{Beta: 2, Gamma: 0.05, N: 200, I0: 1}
	ts := m.SwitchTime()
	if math.IsInf(ts, 1) || ts <= 0 {
		t.Fatalf("switch time = %v", ts)
	}
	before := m.Fraction(ts - 1e-9)
	after := m.Fraction(ts + 1e-9)
	if math.Abs(before-after) > 1e-6 {
		t.Errorf("discontinuity at switch: %v vs %v", before, after)
	}
	if math.Abs(before-m.SwitchFraction()) > 1e-6 {
		t.Errorf("switch value %v, want %v", before, m.SwitchFraction())
	}
}

func TestHubRLTimeToLevel(t *testing.T) {
	m := HubRL{Beta: 2, Gamma: 0.05, N: 200, I0: 1}
	for _, level := range []float64{0.1, 0.2, 0.5, 0.9} {
		tt := m.TimeToLevel(level)
		got := m.Fraction(tt)
		if math.Abs(got-level) > 1e-6 {
			t.Errorf("level %v: Fraction(TimeToLevel) = %v", level, got)
		}
	}
	if !math.IsNaN(m.TimeToLevel(0)) || !math.IsNaN(m.TimeToLevel(1)) {
		t.Error("degenerate levels should be NaN")
	}
	if got := m.TimeToLevel(0.001); got != 0 {
		t.Errorf("level below initial: got %v, want 0", got)
	}
}

func TestHubRLTimeToLevelZeroBeta(t *testing.T) {
	// β=0: hub forwards nothing once node-limited... in fact γI≤0 is
	// immediately false for I0>0, so the epidemic freezes.
	m := HubRL{Beta: 0, Gamma: 0.5, N: 100, I0: 1}
	if got := m.TimeToLevel(0.5); !math.IsInf(got, 1) {
		t.Errorf("β=0 time-to-level = %v, want +Inf", got)
	}
}

// The paper's comparison: hub rate limiting with node budget β is
// comparable to limiting ALL leaves to rate β2 — i.e. dramatically better
// than partial leaf deployment. Reaching 60% infection under 30%-leaf RL
// is ~3x quicker than under hub RL (Section 4, Figure 1).
func TestHubVsLeafDeployment(t *testing.T) {
	const n = 200
	// Parameters in the spirit of the paper's star analysis: unfiltered
	// rate 0.8, filtered rate 0.01; hub with an aggregate budget.
	leaf30 := HostRL{Q: 0.3, Beta1: 0.8, Beta2: 0.01, N: n, I0: 1}
	hub := HubRL{Beta: 2, Gamma: 0.8, N: n, I0: 1}
	tLeaf := leaf30.TimeToLevel(0.6)
	tHub := hub.TimeToLevel(0.6)
	ratio := tHub / tLeaf
	if ratio < 2 {
		t.Errorf("hub RL should be at least ~2-3x slower to 60%%: ratio %v", ratio)
	}
}

// Property: Fraction is non-decreasing and in [0, 1] across regimes.
func TestHubRLMonotoneProperty(t *testing.T) {
	f := func(betaRaw, gammaRaw uint8) bool {
		beta := 0.1 + float64(betaRaw%40)/10    // (0.1, 4.1)
		gamma := 0.01 + float64(gammaRaw%20)/20 // (0.01, 1.01)
		m := HubRL{Beta: beta, Gamma: gamma, N: 200, I0: 1}
		prev := -1.0
		for tt := 0.0; tt <= 400; tt += 4 {
			v := m.Fraction(tt)
			if v < prev-1e-9 || v < -1e-12 || v > 1+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
