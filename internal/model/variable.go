package model

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// VariableImmunization is the extension sketched in Section 6.1's
// closing remark: in reality the patch rate is not constant — it rises
// as the worm becomes publicized and falls as the infection becomes
// rare. The paper conjectures "the rate of immunization observes a bell
// curve" but keeps µ constant for lack of data; this model implements
// the bell-curve variant so the two can be compared:
//
//	µ(t) = Peak · exp(−(t − TPeak)² / (2·Width²))   for t > Delay, else 0
//
// Only the exact ODE face is provided (there is no simple closed form).
type VariableImmunization struct {
	Beta  float64 // contact rate β
	Peak  float64 // maximum patch probability (the bell's height)
	TPeak float64 // time of maximum patching activity
	Width float64 // bell standard deviation
	Delay float64 // no patching before this time
	N     float64 // initial susceptible population
	I0    float64 // initially infected hosts
}

// Validate checks the parameters.
func (m VariableImmunization) Validate() error {
	if err := checkPopulation(m.N, m.I0); err != nil {
		return err
	}
	if m.Beta <= 0 {
		return errNonPositiveRate
	}
	if m.Peak < 0 || m.Peak > 1 {
		return fmt.Errorf("%w: peak=%v", errBadFraction, m.Peak)
	}
	if m.Width <= 0 {
		return fmt.Errorf("model: bell width must be positive, got %v", m.Width)
	}
	if m.Delay < 0 {
		return fmt.Errorf("model: delay must be non-negative, got %v", m.Delay)
	}
	return nil
}

// Mu returns the instantaneous patch probability µ(t).
func (m VariableImmunization) Mu(t float64) float64 {
	if t <= m.Delay {
		return 0
	}
	d := t - m.TPeak
	return m.Peak * math.Exp(-d*d/(2*m.Width*m.Width))
}

// RHS returns the exact dynamics. State: [I, N, E] as for
// DelayedImmunization.
func (m VariableImmunization) RHS() numeric.RHS {
	return func(t float64, y, dst []float64) {
		i, n := y[0], y[1]
		if n <= 0 {
			dst[0], dst[1], dst[2] = 0, 0, 0
			return
		}
		newInf := m.Beta * i * (n - i) / n
		if newInf < 0 {
			newInf = 0
		}
		mu := m.Mu(t)
		dst[0] = newInf - mu*i
		dst[1] = -mu * n
		dst[2] = newInf
	}
}

// InitialState returns [I0, N0, I0].
func (m VariableImmunization) InitialState() []float64 {
	return []float64{m.I0, m.N, m.I0}
}

// N0 returns the initial susceptible population.
func (m VariableImmunization) N0() float64 { return m.N }

// EverInfected integrates the dynamics and returns E(t1)/N0.
func (m VariableImmunization) EverInfected(t1, dt float64) (float64, error) {
	sol, err := numeric.RK4(m.RHS(), m.InitialState(), 0, t1, dt)
	if err != nil {
		return 0, fmt.Errorf("model: ever-infected: %w", err)
	}
	e := sol.States[len(sol.States)-1][2]
	return math.Min(e/m.N, 1), nil
}

var (
	_ Validator = VariableImmunization{}
	_ ODE       = VariableImmunization{}
)
