package model

import (
	"fmt"
	"math"
)

// LogisticFit is the result of fitting the logistic epidemic form
// i(t) = e^{λt}/(c+e^{λt}) to an observed infection curve.
type LogisticFit struct {
	// Lambda is the fitted epidemic exponent (the models' λ).
	Lambda float64
	// C is the fitted initial-condition constant.
	C float64
	// R2 is the coefficient of determination of the logit regression.
	R2 float64
	// Points is how many samples entered the fit.
	Points int
}

// Curve returns the fitted curve as a model.
func (f LogisticFit) Curve() Curve { return fittedLogistic(f) }

type fittedLogistic LogisticFit

func (f fittedLogistic) Fraction(t float64) float64 {
	x := f.Lambda * t
	if x > 500 {
		return 1
	}
	e := math.Exp(x)
	return e / (f.C + e)
}

// FitLogistic estimates λ and c from observed (times, fracs) by linear
// regression on the logit: ln(i/(1−i)) = λt − ln c. Samples outside
// (lo, hi) are discarded (the logit blows up near 0 and 1; the defaults
// 0.01/0.99 apply when lo >= hi). Use it to recover the effective
// epidemic exponent of a simulated or measured curve and compare it
// against a model's prediction (e.g. β(1−α) under backbone limiting).
//
// Fit the growth phase only: noisy samples from the saturated plateau
// that wobble back below hi carry a flat logit and bias λ low. Truncate
// the series near saturation before fitting.
func FitLogistic(times, fracs []float64, lo, hi float64) (LogisticFit, error) {
	if len(times) != len(fracs) {
		return LogisticFit{}, fmt.Errorf("model: fit: %d times vs %d fracs", len(times), len(fracs))
	}
	if lo >= hi {
		lo, hi = 0.01, 0.99
	}
	var xs, ys []float64
	for i, f := range fracs {
		if f > lo && f < hi {
			xs = append(xs, times[i])
			ys = append(ys, math.Log(f/(1-f)))
		}
	}
	if len(xs) < 3 {
		return LogisticFit{}, fmt.Errorf("model: fit: only %d usable samples in (%v,%v)", len(xs), lo, hi)
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LogisticFit{}, fmt.Errorf("model: fit: degenerate time samples")
	}
	lambda := (n*sxy - sx*sy) / den
	intercept := (sy - lambda*sx) / n
	// intercept = −ln c.
	c := math.Exp(-intercept)
	// R² of the logit regression.
	var ssRes, ssTot float64
	meanY := sy / n
	for i := range xs {
		pred := lambda*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LogisticFit{Lambda: lambda, C: c, R2: r2, Points: len(xs)}, nil
}
