package model

import (
	"fmt"

	"repro/internal/numeric"
)

// HostRL models rate limiting at a fraction q of individual hosts (or,
// equivalently, leaf nodes of the star in Section 4):
//
//	dI/dt = x1·β1·(N−I)/N + x2·β2·(N−I)/N     (Equation 3)
//
// with x1 = I(1−q) unfiltered infected hosts at rate β1 and x2 = I·q
// filtered hosts at rate β2. The solution is logistic with effective
// exponent λ = q·β2 + (1−q)·β1; when β1 >> β2 this is ≈ β1(1−q), the
// paper's "linear slowdown proportional to the unfiltered fraction".
type HostRL struct {
	Q     float64 // fraction of hosts with the rate-limiting filter
	Beta1 float64 // contact rate of an unfiltered infected host
	Beta2 float64 // contact rate allowed by the filter (β2 << β1)
	N     float64 // population size
	I0    float64 // initially infected hosts
}

// Validate checks the parameters.
func (m HostRL) Validate() error {
	if err := checkPopulation(m.N, m.I0); err != nil {
		return err
	}
	if m.Beta1 < 0 || m.Beta2 < 0 {
		return errNegativeRate
	}
	if m.Q < 0 || m.Q > 1 {
		return fmt.Errorf("%w: q=%v", errBadFraction, m.Q)
	}
	return nil
}

// Lambda returns the effective epidemic exponent λ = qβ2 + (1−q)β1.
func (m HostRL) Lambda() float64 { return m.Q*m.Beta2 + (1-m.Q)*m.Beta1 }

// C returns the logistic constant fixed by the initial condition.
func (m HostRL) C() float64 { return numeric.LogisticC(m.I0 / m.N) }

// Fraction returns I(t)/N from the closed form.
func (m HostRL) Fraction(t float64) float64 {
	return numeric.Logistic(t, m.Lambda(), m.C())
}

// TimeToLevel returns the exact time to reach an infected fraction.
// The paper's approximation t = ln(α)/(β1(1−q)) follows for β1 >> β2.
func (m HostRL) TimeToLevel(level float64) float64 {
	return numeric.LogisticTimeToLevel(level, m.Lambda(), m.C())
}

// Slowdown returns the multiplicative slowdown in time-to-level relative
// to the unfiltered epidemic: λ(q=0)/λ(q) = β1/λ. Linear in 1/(1−q) for
// β1 >> β2 — the headline "linear slowdown" result.
func (m HostRL) Slowdown() float64 {
	l := m.Lambda()
	if l == 0 {
		return 0
	}
	return m.Beta1 / l
}

// RHS returns Equation 3. State: [I].
func (m HostRL) RHS() numeric.RHS {
	return func(t float64, y, dst []float64) {
		i := y[0]
		x1 := i * (1 - m.Q)
		x2 := i * m.Q
		dst[0] = (x1*m.Beta1 + x2*m.Beta2) * (m.N - i) / m.N
	}
}

// InitialState returns [I0].
func (m HostRL) InitialState() []float64 { return []float64{m.I0} }

// N0 returns the population size.
func (m HostRL) N0() float64 { return m.N }

var (
	_ Curve     = HostRL{}
	_ Validator = HostRL{}
	_ ODE       = HostRL{}
)
