package model

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// IPv4Space is the size of the IPv4 address space, the normalizer in the
// paper's residual-rate term δ = min(I·β·α, r·N/2³²).
const IPv4Space = 1 << 32

// BackboneRL models rate limiting at core routers covering a fraction α
// of all IP-to-IP paths (Section 5.3):
//
//	dI/dt = I·β·(1−α)·(N−I)/N + δ·(N−I)/N     (Equation 6)
//	δ = min(I·β·α, r·N/2³²)
//
// where r is the aggregate rate still allowed through the limited
// routers. When r is small the first term dominates and the solution is
// ≈ logistic with λ = β(1−α) — a slowdown factor 1/(1−α), i.e. covering
// most paths is comparable to rate limiting every host.
type BackboneRL struct {
	Beta  float64 // contact rate of one infected host
	Alpha float64 // fraction of IP-to-IP paths covered by limited routers
	R     float64 // aggregate allowed rate through the limited routers
	N     float64 // population size
	I0    float64 // initially infected hosts
}

// Validate checks the parameters.
func (m BackboneRL) Validate() error {
	if err := checkPopulation(m.N, m.I0); err != nil {
		return err
	}
	if m.Beta < 0 || m.R < 0 {
		return errNegativeRate
	}
	if m.Alpha < 0 || m.Alpha > 1 {
		return fmt.Errorf("%w: alpha=%v", errBadFraction, m.Alpha)
	}
	return nil
}

// Lambda returns the approximate epidemic exponent λ = β(1−α) used by
// the paper's small-r closed form.
func (m BackboneRL) Lambda() float64 { return m.Beta * (1 - m.Alpha) }

// Delta returns the residual-rate term δ = min(I·β·α, r·N/2³²) at
// infected count i.
func (m BackboneRL) Delta(i float64) float64 {
	return math.Min(i*m.Beta*m.Alpha, m.R*m.N/IPv4Space)
}

// Fraction returns the paper's small-r closed form
// I/N = e^{λt}/(c+e^{λt}) with λ = β(1−α).
func (m BackboneRL) Fraction(t float64) float64 {
	return numeric.Logistic(t, m.Lambda(), numeric.LogisticC(m.I0/m.N))
}

// TimeToLevel inverts the closed form.
func (m BackboneRL) TimeToLevel(level float64) float64 {
	return numeric.LogisticTimeToLevel(level, m.Lambda(), numeric.LogisticC(m.I0/m.N))
}

// RHS returns the exact Equation 6 including the δ term. State: [I].
func (m BackboneRL) RHS() numeric.RHS {
	return func(t float64, y, dst []float64) {
		i := y[0]
		dst[0] = i*m.Beta*(1-m.Alpha)*(m.N-i)/m.N + m.Delta(i)*(m.N-i)/m.N
	}
}

// InitialState returns [I0].
func (m BackboneRL) InitialState() []float64 { return []float64{m.I0} }

// N0 returns the population size.
func (m BackboneRL) N0() float64 { return m.N }

var (
	_ Curve     = BackboneRL{}
	_ Validator = BackboneRL{}
	_ ODE       = BackboneRL{}
)
