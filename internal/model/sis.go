package model

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// KephartWhite is the traditional epidemiological baseline the paper
// contrasts its dynamic-immunization model against (its refs [6,7]):
// the Kephart–White SIS-style model in which cure/immunization happens
// at a constant rate δ from the very start of the outbreak:
//
//	dI/dt = β·I·(N−I)/N − δ·I
//
// Closed form: a logistic with effective exponent β−δ saturating at the
// endemic level 1−δ/β (for δ < β), or exponential decay to extinction
// (for δ ≥ β — the epidemic threshold). The paper's point is that real
// immunization is *not* constant: nothing is patched until the worm is
// noticed, which is what DelayedImmunization models.
type KephartWhite struct {
	Beta  float64 // contact rate β
	Delta float64 // constant cure/immunization rate δ
	N     float64 // population size
	I0    float64 // initially infected hosts
}

// Validate checks the parameters.
func (m KephartWhite) Validate() error {
	if err := checkPopulation(m.N, m.I0); err != nil {
		return err
	}
	if m.Beta <= 0 {
		return errNonPositiveRate
	}
	if m.Delta < 0 {
		return fmt.Errorf("%w: delta=%v", errNegativeRate, m.Delta)
	}
	return nil
}

// EndemicLevel returns the steady-state infected fraction 1−δ/β (0 when
// the epidemic is below threshold).
func (m KephartWhite) EndemicLevel() float64 {
	if m.Delta >= m.Beta {
		return 0
	}
	return 1 - m.Delta/m.Beta
}

// BelowThreshold reports whether δ ≥ β, i.e. the infection dies out
// regardless of the initial level — the classic epidemic threshold.
func (m KephartWhite) BelowThreshold() bool { return m.Delta >= m.Beta }

// Fraction returns I(t)/N. Substituting i = I/N turns the ODE into
// di/dt = (β−δ)·i·(1 − i/s) with s = EndemicLevel, whose solution is a
// rescaled logistic; at threshold (β = δ) the decay is algebraic.
func (m KephartWhite) Fraction(t float64) float64 {
	i0 := m.I0 / m.N
	r := m.Beta - m.Delta
	if math.Abs(r) < 1e-9*m.Beta {
		// At (or within float noise of) the epidemic threshold the
		// logistic form degenerates (s → 0 cancels r → 0); use the
		// exact threshold solution di/dt = −β i² ⇒ i(t) = i0/(1+β·i0·t).
		return i0 / (1 + m.Beta*i0*t)
	}
	s := 1 - m.Delta/m.Beta
	// i(t) = s / (1 + (s/i0 − 1)·e^{−rt}); valid for r < 0 too (s < 0
	// cancels signs and the curve decays to 0).
	e := math.Exp(-r * t)
	return s / (1 + (s/i0-1)*e)
}

// TimeToLevel inverts the closed form for levels strictly between i0
// and the endemic level (NaN if unreachable).
func (m KephartWhite) TimeToLevel(level float64) float64 {
	i0 := m.I0 / m.N
	s := m.EndemicLevel()
	if level <= 0 || level >= 1 || m.BelowThreshold() || level >= s || level <= i0 {
		if level > i0 || level <= 0 {
			return math.NaN()
		}
		return 0
	}
	r := m.Beta - m.Delta
	// level = s / (1 + (s/i0 − 1) e^{−rt}).
	x := (s/level - 1) / (s/i0 - 1)
	return -math.Log(x) / r
}

// RHS returns the exact dynamics. State: [I].
func (m KephartWhite) RHS() numeric.RHS {
	return func(t float64, y, dst []float64) {
		i := y[0]
		dst[0] = m.Beta*i*(m.N-i)/m.N - m.Delta*i
	}
}

// InitialState returns [I0].
func (m KephartWhite) InitialState() []float64 { return []float64{m.I0} }

// N0 returns the population size.
func (m KephartWhite) N0() float64 { return m.N }

var (
	_ Curve     = KephartWhite{}
	_ Validator = KephartWhite{}
	_ ODE       = KephartWhite{}
)
