package model

import (
	"math"
	"testing"
)

func TestPeakInfectionMonotoneModel(t *testing.T) {
	m := Homogeneous{Beta: 0.8, N: 1000, I0: 1}
	p, err := PeakInfection(m, 40, 0.01)
	if err != nil {
		t.Fatalf("PeakInfection: %v", err)
	}
	// No removal: peak is the end of the horizon at ~full saturation.
	if math.Abs(p.Time-40) > 0.02 {
		t.Errorf("peak time = %v, want ~40", p.Time)
	}
	if p.Fraction < 0.99 {
		t.Errorf("peak fraction = %v, want ~1", p.Fraction)
	}
}

func TestPeakInfectionImmunization(t *testing.T) {
	m := DelayedImmunization{Beta: 0.8, Mu: 0.1, Delay: 7, N: 1000, I0: 1}
	p, err := PeakInfection(m, 120, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// The peak must come after the delay and below full saturation.
	if p.Time <= m.Delay {
		t.Errorf("peak at %v, want after delay %v", p.Time, m.Delay)
	}
	if p.Fraction >= 1 || p.Fraction <= m.Fraction(m.Delay) {
		t.Errorf("peak fraction %v implausible", p.Fraction)
	}
	// The ODE turning point is where β(N−I)/N ≈ µ, i.e. I/N ≈ 1−µ/β =
	// 0.875 — but N shrinks as patching proceeds, so the realized peak
	// sits below that bound.
	bound := 1 - m.Mu/m.Beta
	if p.Fraction > bound+0.02 {
		t.Errorf("peak %v exceeds turning-point bound %v", p.Fraction, bound)
	}
}

func TestPeakInfectionBadStep(t *testing.T) {
	m := Homogeneous{Beta: 0.8, N: 100, I0: 1}
	if _, err := PeakInfection(m, 10, 0); err == nil {
		t.Error("zero step should fail")
	}
}

func TestAnalyticPeakAgreesWithODE(t *testing.T) {
	m := DelayedImmunization{Beta: 0.8, Mu: 0.1, Delay: 7, N: 1000, I0: 1}
	ap := m.AnalyticPeak()
	op, err := PeakInfection(m, 120, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ap.Fraction-op.Fraction) > 0.1 {
		t.Errorf("analytic peak %v vs ODE peak %v", ap.Fraction, op.Fraction)
	}
	if math.Abs(ap.Time-op.Time) > 5 {
		t.Errorf("analytic peak time %v vs ODE %v", ap.Time, op.Time)
	}
}

func TestAnalyticPeakLateDelay(t *testing.T) {
	// If immunization starts after the epidemic passed the turning
	// level, the peak is at the delay itself.
	m := DelayedImmunization{Beta: 0.8, Mu: 0.7, Delay: 20, N: 1000, I0: 1}
	p := m.AnalyticPeak()
	if p.Time != m.Delay {
		t.Errorf("late-delay peak time = %v, want %v", p.Time, m.Delay)
	}
}
