package model

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Peak describes the maximum of an infection curve: when the infected
// population tops out and how high it gets. For the immunization models
// the peak marks the turning point where patching overtakes spreading
// (dI/dt = 0 ⇔ β(N−I)/N = µ in the delayed model).
type Peak struct {
	Time     float64
	Fraction float64
}

// PeakInfection integrates a model's exact dynamics over [0, t1] and
// returns the highest instantaneous infected fraction and when it
// occurs. For monotone (no-removal) models the peak is the final point.
func PeakInfection(m interface {
	ODE
	N0() float64
}, t1, dt float64) (Peak, error) {
	sol, err := numeric.RK4(m.RHS(), m.InitialState(), 0, t1, dt)
	if err != nil {
		return Peak{}, fmt.Errorf("model: peak: %w", err)
	}
	n0 := m.N0()
	best := Peak{Time: math.NaN(), Fraction: -1}
	for i, tt := range sol.Times {
		if f := sol.States[i][0] / n0; f > best.Fraction {
			best = Peak{Time: tt, Fraction: f}
		}
	}
	return best, nil
}

// AnalyticPeak returns the delayed-immunization model's peak from the
// turning-point condition of its ODE: after the delay, dI/dt = 0 when
// β·(N−I)/N = µ, i.e. I*/N = 1 − µ/β (taking N ≈ N0 at the peak, valid
// while few hosts have been patched). If the epidemic already exceeds
// that level at the delay, the peak is at the delay itself.
func (m DelayedImmunization) AnalyticPeak() Peak {
	turn := 1 - m.Mu/m.Beta
	atDelay := m.fractionAtDelay()
	if turn <= atDelay {
		return Peak{Time: m.Delay, Fraction: atDelay}
	}
	// Invert the pre-turn branch: before patching bites hard the curve
	// still follows roughly the logistic; find the crossing numerically
	// on the closed form.
	t := m.Delay
	peak := atDelay
	for step := 0.25; t < m.Delay+1000; t += step {
		f := m.Fraction(t)
		if f < peak {
			break
		}
		peak = f
	}
	return Peak{Time: t, Fraction: peak}
}
