// Package model implements the paper's analytical worm-propagation
// models. Every model exposes two faces:
//
//   - a closed form (the solution printed in the paper, often an
//     approximation valid when β1 >> β2 or when the backbone residual
//     rate r is small), via Fraction and Series, and
//   - the exact differential equation, via RHS and InitialState, which
//     can be integrated with the numeric package.
//
// Tests cross-validate the two faces; the experiment harness uses
// whichever face the corresponding paper figure used.
//
// Model inventory (paper section → type):
//
//	§3  Eq 1–2   Homogeneous        — baseline logistic epidemic
//	§4/5.1 Eq 3  HostRL             — rate limiting at q of hosts/leaves
//	§4  Eq 4–5   HubRL              — hub/link rate limiting on a star
//	§5.2         EdgeRL             — two-level subnet growth
//	§5.3 Eq 6    BackboneRL         — rate limiting on α of paths
//	§6.1         DelayedImmunization
//	§6.2         BackboneRLImmunization
//	extension    VariableImmunization — bell-curve µ(t) (§6.1 remark)
package model

import (
	"errors"
	"fmt"

	"repro/internal/numeric"
)

// Curve is the common read surface of every analytical model: the
// infected fraction as a function of time.
type Curve interface {
	// Fraction returns the infected fraction I/N at time t according to
	// the model's closed form.
	Fraction(t float64) float64
}

// Validator is implemented by all models; Validate reports parameter
// errors before any evaluation.
type Validator interface {
	Validate() error
}

// Series evaluates curve c at each time in ts.
func Series(c Curve, ts []float64) []float64 {
	out := make([]float64, len(ts))
	for i, t := range ts {
		out[i] = c.Fraction(t)
	}
	return out
}

// ODE is the exact-dynamics face of a model.
type ODE interface {
	// RHS returns the model's differential equation. The state layout is
	// model-specific; state[0] is always the infected count I.
	RHS() numeric.RHS
	// InitialState returns the ODE initial condition.
	InitialState() []float64
}

// Integrate solves a model's exact ODE over [0, t1] with step dt and
// returns the times and the infected fraction I/N0 at each sample, where
// N0 is the model's initial susceptible population.
func Integrate(m interface {
	ODE
	N0() float64
}, t1, dt float64) (ts, frac []float64, err error) {
	sol, err := numeric.RK4(m.RHS(), m.InitialState(), 0, t1, dt)
	if err != nil {
		return nil, nil, fmt.Errorf("model: integrate: %w", err)
	}
	n0 := m.N0()
	frac = sol.Component(0)
	for i := range frac {
		frac[i] /= n0
	}
	return sol.Times, frac, nil
}

// Common parameter errors.
var (
	errNonPositiveN    = errors.New("model: population N must be positive")
	errBadInitial      = errors.New("model: initial infected must be in (0, N)")
	errNegativeRate    = errors.New("model: contact rates must be non-negative")
	errBadFraction     = errors.New("model: fraction parameter must be in [0, 1]")
	errNonPositiveRate = errors.New("model: contact rate must be positive")
)

func checkPopulation(n, i0 float64) error {
	if n <= 0 {
		return errNonPositiveN
	}
	if i0 <= 0 || i0 >= n {
		return fmt.Errorf("%w: I0=%v N=%v", errBadInitial, i0, n)
	}
	return nil
}
