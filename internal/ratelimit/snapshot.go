package ratelimit

import (
	"container/list"
	"encoding/json"
	"fmt"
	"sort"
)

// StateMarshaler is implemented by every limiter in this package so an
// engine checkpoint can capture and restore limiter history. Map-shaped
// internals are serialized in sorted order, so the same state always
// produces the same bytes (checkpoints of identical runs are
// byte-comparable).
type StateMarshaler interface {
	// MarshalState serializes the limiter's mutable state. The static
	// configuration (window sizes, budgets) is not included: restore
	// targets a limiter freshly built with the same parameters.
	MarshalState() ([]byte, error)
	// UnmarshalState restores state produced by MarshalState.
	UnmarshalState(data []byte) error
}

func sortIPs(ips []IP) {
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
}

type uniqueIPState struct {
	WinStart int64 `json:"win_start"`
	Seen     []IP  `json:"seen"`
}

// MarshalState implements StateMarshaler.
func (l *UniqueIPWindow) MarshalState() ([]byte, error) {
	st := uniqueIPState{WinStart: l.winStart, Seen: make([]IP, 0, len(l.seen))}
	for ip := range l.seen {
		st.Seen = append(st.Seen, ip)
	}
	sortIPs(st.Seen)
	return json.Marshal(st)
}

// UnmarshalState implements StateMarshaler.
func (l *UniqueIPWindow) UnmarshalState(data []byte) error {
	var st uniqueIPState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	l.winStart = st.WinStart
	clear(l.seen)
	for _, ip := range st.Seen {
		l.seen[ip] = struct{}{}
	}
	return nil
}

type slidingEntryState struct {
	Tick int64 `json:"tick"`
	Dst  IP    `json:"dst"`
}

type slidingState struct {
	Admissions []slidingEntryState `json:"admissions"`
}

// MarshalState implements StateMarshaler. Only the admission log is
// stored; the recency index is replayed from it on restore.
func (l *SlidingUniqueIPWindow) MarshalState() ([]byte, error) {
	st := slidingState{Admissions: make([]slidingEntryState, len(l.admissions))}
	for i, e := range l.admissions {
		st.Admissions[i] = slidingEntryState{Tick: e.tick, Dst: e.dst}
	}
	return json.Marshal(st)
}

// UnmarshalState implements StateMarshaler.
func (l *SlidingUniqueIPWindow) UnmarshalState(data []byte) error {
	var st slidingState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	l.admissions = l.admissions[:0]
	clear(l.lastSeen)
	for _, e := range st.Admissions {
		l.admissions = append(l.admissions, slidingEntry{tick: e.Tick, dst: e.Dst})
		l.lastSeen[e.Dst] = e.Tick
	}
	return nil
}

type williamsonState struct {
	// LRU is the working set, most recent first.
	LRU       []IP  `json:"lru"`
	Queue     []IP  `json:"queue"`
	LastDrain int64 `json:"last_drain"`
}

// MarshalState implements StateMarshaler.
func (t *WilliamsonThrottle) MarshalState() ([]byte, error) {
	st := williamsonState{
		LRU:       make([]IP, 0, t.lru.Len()),
		Queue:     append([]IP{}, t.queue...),
		LastDrain: t.lastDrain,
	}
	for e := t.lru.Front(); e != nil; e = e.Next() {
		st.LRU = append(st.LRU, e.Value.(IP))
	}
	return json.Marshal(st)
}

// UnmarshalState implements StateMarshaler.
func (t *WilliamsonThrottle) UnmarshalState(data []byte) error {
	var st williamsonState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	t.lru = list.New()
	clear(t.inSet)
	for _, ip := range st.LRU {
		t.inSet[ip] = t.lru.PushBack(ip)
	}
	t.queue = append(t.queue[:0], st.Queue...)
	t.lastDrain = st.LastDrain
	return nil
}

type dnsEntryState struct {
	Addr   IP    `json:"addr"`
	Expiry int64 `json:"expiry"`
}

type dnsState struct {
	Inner json.RawMessage `json:"inner"`
	DNS   []dnsEntryState `json:"dns"`
	Peers []IP            `json:"peers"`
}

// MarshalState implements StateMarshaler.
func (t *DNSThrottle) MarshalState() ([]byte, error) {
	inner, err := t.inner.MarshalState()
	if err != nil {
		return nil, err
	}
	st := dnsState{Inner: inner, DNS: make([]dnsEntryState, 0, len(t.dnsValidUntil))}
	for addr, exp := range t.dnsValidUntil {
		st.DNS = append(st.DNS, dnsEntryState{Addr: addr, Expiry: exp})
	}
	sort.Slice(st.DNS, func(i, j int) bool { return st.DNS[i].Addr < st.DNS[j].Addr })
	st.Peers = make([]IP, 0, len(t.peers))
	for ip := range t.peers {
		st.Peers = append(st.Peers, ip)
	}
	sortIPs(st.Peers)
	return json.Marshal(st)
}

// UnmarshalState implements StateMarshaler.
func (t *DNSThrottle) UnmarshalState(data []byte) error {
	var st dnsState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if err := t.inner.UnmarshalState(st.Inner); err != nil {
		return fmt.Errorf("dns throttle inner window: %w", err)
	}
	clear(t.dnsValidUntil)
	for _, e := range st.DNS {
		t.dnsValidUntil[e.Addr] = e.Expiry
	}
	clear(t.peers)
	for _, ip := range st.Peers {
		t.peers[ip] = struct{}{}
	}
	return nil
}

type hybridState struct {
	Short json.RawMessage `json:"short"`
	Long  json.RawMessage `json:"long"`
}

// MarshalState implements StateMarshaler.
func (h *HybridWindow) MarshalState() ([]byte, error) {
	s, err := h.short.MarshalState()
	if err != nil {
		return nil, err
	}
	l, err := h.long.MarshalState()
	if err != nil {
		return nil, err
	}
	return json.Marshal(hybridState{Short: s, Long: l})
}

// UnmarshalState implements StateMarshaler.
func (h *HybridWindow) UnmarshalState(data []byte) error {
	var st hybridState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if err := h.short.UnmarshalState(st.Short); err != nil {
		return fmt.Errorf("hybrid short window: %w", err)
	}
	if err := h.long.UnmarshalState(st.Long); err != nil {
		return fmt.Errorf("hybrid long window: %w", err)
	}
	return nil
}

type tokenBucketState struct {
	Tokens float64 `json:"tokens"`
	Last   int64   `json:"last"`
	Primed bool    `json:"primed"`
}

// MarshalState implements StateMarshaler.
func (b *TokenBucket) MarshalState() ([]byte, error) {
	return json.Marshal(tokenBucketState{Tokens: b.tokens, Last: b.last, Primed: b.primed})
}

// UnmarshalState implements StateMarshaler.
func (b *TokenBucket) UnmarshalState(data []byte) error {
	var st tokenBucketState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	b.tokens, b.last, b.primed = st.Tokens, st.Last, st.Primed
	return nil
}

var (
	_ StateMarshaler = (*UniqueIPWindow)(nil)
	_ StateMarshaler = (*SlidingUniqueIPWindow)(nil)
	_ StateMarshaler = (*WilliamsonThrottle)(nil)
	_ StateMarshaler = (*DNSThrottle)(nil)
	_ StateMarshaler = (*HybridWindow)(nil)
	_ StateMarshaler = (*TokenBucket)(nil)
)
