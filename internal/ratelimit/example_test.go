package ratelimit_test

import (
	"fmt"

	"repro/internal/ratelimit"
)

// Williamson's virus throttle: local traffic flows, a scanner's fresh
// destinations pile up in the delay queue — the worm alarm.
func ExampleWilliamsonThrottle() {
	th, err := ratelimit.NewWilliamsonThrottle(5, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// A scanning worm: 30 fresh destinations in 3 ticks.
	dst := ratelimit.IP(1)
	allowed := 0
	for tick := int64(0); tick < 3; tick++ {
		for k := 0; k < 10; k++ {
			if th.Allow(tick, dst) {
				allowed++
			}
			dst++
		}
		th.Tick(tick)
	}
	fmt.Printf("allowed %d of 30, queue %d\n", allowed, th.QueueLen())
	// Output: allowed 5 of 30, queue 22
}

// The DNS-based throttle (Ganger et al.): destinations with a valid DNS
// translation are free; raw-IP contacts burn a tight budget.
func ExampleDNSThrottle() {
	th, err := ratelimit.NewDNSThrottle(1, 60)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	const webServer, scanTarget1, scanTarget2 = 10, 20, 30
	th.RecordDNS(webServer, 3600)
	fmt.Println("browse (DNS-resolved):", th.Allow(0, webServer))
	fmt.Println("first raw-IP scan:    ", th.Allow(1, scanTarget1))
	fmt.Println("second raw-IP scan:   ", th.Allow(1, scanTarget2))
	// Output:
	// browse (DNS-resolved): true
	// first raw-IP scan:     true
	// second raw-IP scan:    false
}

// The hybrid window the paper proposes: a short window for burst
// tolerance stacked on a long window for a tight long-term rate.
func ExampleHybridWindow() {
	h, err := ratelimit.NewHybridWindow(5, 1, 12, 5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	allowed := 0
	dst := ratelimit.IP(1)
	for tick := int64(0); tick < 5; tick++ {
		for k := 0; k < 5; k++ {
			if h.Allow(tick, dst) {
				allowed++
			}
			dst++
		}
	}
	fmt.Printf("allowed %d of 25 contacts over 5 ticks\n", allowed)
	// Output: allowed 12 of 25 contacts over 5 ticks
}
