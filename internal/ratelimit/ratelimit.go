// Package ratelimit implements the contact-rate limiting mechanisms the
// paper analyzes and measures: Williamson's virus throttle (a working
// set of recent destinations plus a delay queue), Ganger's DNS-based
// throttle (only contacts to addresses without a valid DNS translation
// and that did not initiate contact count against the budget), plain
// unique-IP window limits, the hybrid short+long window scheme the paper
// proposes as future work, and a token bucket.
//
// All limiters are driven by an explicit tick clock (no wall time) so
// simulations and trace replays are deterministic.
package ratelimit

import (
	"container/list"
	"errors"
	"fmt"
)

// IP is an IPv4 address in host byte order. The trace substrate uses
// anonymized addresses, so this is just an opaque 32-bit key.
type IP uint32

// ContactLimiter is the common decision surface: may a contact to dst be
// initiated at tick now? Implementations track their own history.
type ContactLimiter interface {
	// Allow reports whether a contact to dst at tick now passes the
	// limiter. A false result means the contact is blocked or delayed
	// this tick (the caller decides whether to retry later).
	Allow(now int64, dst IP) bool
}

// ErrBadConfig reports an invalid limiter configuration.
var ErrBadConfig = errors.New("ratelimit: invalid configuration")

// UniqueIPWindow allows at most Max *distinct* destination addresses per
// tumbling window of Window ticks. Contacts to an address already seen
// in the current window are always allowed — this is the "number of
// unique IP addresses contacted in a given period" limit of the paper's
// trace study (e.g. 16 per 5 seconds at the edge router, 4 per 5 seconds
// per host).
type UniqueIPWindow struct {
	max    int
	window int64

	winStart int64
	seen     map[IP]struct{}
}

// NewUniqueIPWindow builds the limiter; max >= 1 and window >= 1.
func NewUniqueIPWindow(max int, window int64) (*UniqueIPWindow, error) {
	if max < 1 || window < 1 {
		return nil, fmt.Errorf("%w: max=%d window=%d", ErrBadConfig, max, window)
	}
	return &UniqueIPWindow{
		max:    max,
		window: window,
		seen:   make(map[IP]struct{}, max),
	}, nil
}

// roll advances the tumbling window to contain now.
func (l *UniqueIPWindow) roll(now int64) {
	if now-l.winStart >= l.window {
		l.winStart = now - (now-l.winStart)%l.window
		clear(l.seen)
	}
}

// Allow implements ContactLimiter.
func (l *UniqueIPWindow) Allow(now int64, dst IP) bool {
	l.roll(now)
	if _, ok := l.seen[dst]; ok {
		return true
	}
	if len(l.seen) >= l.max {
		return false
	}
	l.seen[dst] = struct{}{}
	return true
}

// WouldAllow reports whether Allow would admit dst at tick now, without
// recording the contact. Used by composite limiters so a denial in one
// component does not consume budget in another.
func (l *UniqueIPWindow) WouldAllow(now int64, dst IP) bool {
	l.roll(now)
	if _, ok := l.seen[dst]; ok {
		return true
	}
	return len(l.seen) < l.max
}

// Distinct returns the number of distinct destinations contacted in the
// current window.
func (l *UniqueIPWindow) Distinct(now int64) int {
	l.roll(now)
	return len(l.seen)
}

var _ ContactLimiter = (*UniqueIPWindow)(nil)

// SlidingUniqueIPWindow allows at most Max distinct destinations per
// *sliding* window of Window ticks: a contact is admitted if fewer than
// Max distinct other destinations were admitted in the preceding Window
// ticks. Unlike the tumbling UniqueIPWindow it has no reset boundary a
// worm could straddle for a double burst, at the cost of remembering
// recent admissions.
type SlidingUniqueIPWindow struct {
	max    int
	window int64

	// admissions holds (tick, dst) of admitted contacts, oldest first.
	admissions []slidingEntry
	// lastSeen maps admitted destinations to their latest admission
	// tick, so repeats refresh instead of recount.
	lastSeen map[IP]int64
}

type slidingEntry struct {
	tick int64
	dst  IP
}

// NewSlidingUniqueIPWindow builds the limiter; max >= 1, window >= 1.
func NewSlidingUniqueIPWindow(max int, window int64) (*SlidingUniqueIPWindow, error) {
	if max < 1 || window < 1 {
		return nil, fmt.Errorf("%w: max=%d window=%d", ErrBadConfig, max, window)
	}
	return &SlidingUniqueIPWindow{
		max:      max,
		window:   window,
		lastSeen: make(map[IP]int64, max),
	}, nil
}

// expire drops admissions older than the window.
func (l *SlidingUniqueIPWindow) expire(now int64) {
	cut := 0
	for cut < len(l.admissions) && now-l.admissions[cut].tick >= l.window {
		e := l.admissions[cut]
		if l.lastSeen[e.dst] == e.tick {
			delete(l.lastSeen, e.dst)
		}
		cut++
	}
	if cut > 0 {
		l.admissions = append(l.admissions[:0], l.admissions[cut:]...)
	}
}

// Allow implements ContactLimiter.
func (l *SlidingUniqueIPWindow) Allow(now int64, dst IP) bool {
	l.expire(now)
	if _, ok := l.lastSeen[dst]; ok {
		// Refresh recency of an already-admitted destination.
		l.lastSeen[dst] = now
		l.admissions = append(l.admissions, slidingEntry{tick: now, dst: dst})
		return true
	}
	if len(l.lastSeen) >= l.max {
		return false
	}
	l.lastSeen[dst] = now
	l.admissions = append(l.admissions, slidingEntry{tick: now, dst: dst})
	return true
}

// Distinct returns the number of distinct destinations admitted within
// the window ending at now.
func (l *SlidingUniqueIPWindow) Distinct(now int64) int {
	l.expire(now)
	return len(l.lastSeen)
}

var _ ContactLimiter = (*SlidingUniqueIPWindow)(nil)

// WilliamsonThrottle is the virus throttle of HPL-2002-172: a working
// set of the n most recent distinct destinations. A contact to a
// destination in the working set proceeds immediately; anything else
// joins a delay queue drained at a fixed rate (one request per Period
// ticks), with each dequeue evicting the least-recently-used working-set
// entry. Legitimate traffic (high locality) rarely queues; scanning
// worms (no locality) are clamped to the drain rate.
type WilliamsonThrottle struct {
	workingSet int
	period     int64

	lru       *list.List // front = most recent; values are IP
	inSet     map[IP]*list.Element
	queue     []IP
	lastDrain int64
}

// NewWilliamsonThrottle builds a throttle with the given working-set
// size (Williamson's default: 5) and drain period in ticks (default:
// one per second).
func NewWilliamsonThrottle(workingSet int, period int64) (*WilliamsonThrottle, error) {
	if workingSet < 1 || period < 1 {
		return nil, fmt.Errorf("%w: workingSet=%d period=%d", ErrBadConfig, workingSet, period)
	}
	return &WilliamsonThrottle{
		workingSet: workingSet,
		period:     period,
		lru:        list.New(),
		inSet:      make(map[IP]*list.Element, workingSet),
		lastDrain:  -1,
	}, nil
}

// Allow implements ContactLimiter: contacts in the working set pass and
// refresh recency; new destinations are queued and blocked this tick.
// Call Tick once per tick to drain the queue.
func (t *WilliamsonThrottle) Allow(now int64, dst IP) bool {
	if e, ok := t.inSet[dst]; ok {
		t.lru.MoveToFront(e)
		return true
	}
	if t.lru.Len() < t.workingSet {
		// Working set not yet full: admit directly.
		t.inSet[dst] = t.lru.PushFront(dst)
		return true
	}
	t.queue = append(t.queue, dst)
	return false
}

// Tick drains the delay queue: at most one queued destination is
// admitted per drain period. Returns the destination released this tick
// and true, or false if none.
func (t *WilliamsonThrottle) Tick(now int64) (IP, bool) {
	if len(t.queue) == 0 {
		return 0, false
	}
	if t.lastDrain >= 0 && now-t.lastDrain < t.period {
		return 0, false
	}
	t.lastDrain = now
	dst := t.queue[0]
	t.queue = t.queue[1:]
	// Evict the LRU entry to make room.
	if t.lru.Len() >= t.workingSet {
		back := t.lru.Back()
		t.lru.Remove(back)
		delete(t.inSet, back.Value.(IP))
	}
	t.inSet[dst] = t.lru.PushFront(dst)
	return dst, true
}

// QueueLen returns the number of delayed requests — Williamson's worm
// detection signal (a persistently growing queue indicates scanning).
func (t *WilliamsonThrottle) QueueLen() int { return len(t.queue) }

var _ ContactLimiter = (*WilliamsonThrottle)(nil)

// DNSThrottle is Ganger et al.'s self-securing NIC policy: contacts to
// destinations with a valid DNS translation, or that previously
// initiated contact with us, are free; contacts to "unknown" addresses
// (pseudo-random 32-bit values picked by scanning worms perform no DNS
// lookup) are limited to Max per Window ticks.
type DNSThrottle struct {
	inner *UniqueIPWindow

	dnsValidUntil map[IP]int64
	peers         map[IP]struct{} // addresses that initiated contact
}

// NewDNSThrottle builds the throttle; the paper's default is six unknown
// addresses per minute per host.
func NewDNSThrottle(max int, window int64) (*DNSThrottle, error) {
	inner, err := NewUniqueIPWindow(max, window)
	if err != nil {
		return nil, err
	}
	return &DNSThrottle{
		inner:         inner,
		dnsValidUntil: make(map[IP]int64),
		peers:         make(map[IP]struct{}),
	}, nil
}

// RecordDNS notes a DNS response mapping some name to addr, valid until
// tick expiry (now + TTL).
func (t *DNSThrottle) RecordDNS(addr IP, expiry int64) {
	if cur, ok := t.dnsValidUntil[addr]; !ok || expiry > cur {
		t.dnsValidUntil[addr] = expiry
	}
}

// RecordInbound notes that src initiated contact with us; replying to it
// later is always legitimate.
func (t *DNSThrottle) RecordInbound(src IP) {
	t.peers[src] = struct{}{}
}

// Known reports whether dst would bypass the unknown-address budget at
// tick now.
func (t *DNSThrottle) Known(now int64, dst IP) bool {
	if _, ok := t.peers[dst]; ok {
		return true
	}
	if exp, ok := t.dnsValidUntil[dst]; ok {
		if now <= exp {
			return true
		}
		delete(t.dnsValidUntil, dst)
	}
	return false
}

// Allow implements ContactLimiter.
func (t *DNSThrottle) Allow(now int64, dst IP) bool {
	if t.Known(now, dst) {
		return true
	}
	return t.inner.Allow(now, dst)
}

var _ ContactLimiter = (*DNSThrottle)(nil)

// HybridWindow combines a short window (prevents long post-burst stalls)
// with a long window (enforces a tight long-term rate), the scheme the
// paper floats in Section 7: "one short window to prevent long delays
// and one longer window to provide better rate-limiting". A contact
// passes only if both windows pass.
type HybridWindow struct {
	short *UniqueIPWindow
	long  *UniqueIPWindow
}

// NewHybridWindow builds the combined limiter.
func NewHybridWindow(shortMax int, shortWindow int64, longMax int, longWindow int64) (*HybridWindow, error) {
	if longWindow <= shortWindow {
		return nil, fmt.Errorf("%w: long window %d must exceed short window %d",
			ErrBadConfig, longWindow, shortWindow)
	}
	s, err := NewUniqueIPWindow(shortMax, shortWindow)
	if err != nil {
		return nil, err
	}
	l, err := NewUniqueIPWindow(longMax, longWindow)
	if err != nil {
		return nil, err
	}
	return &HybridWindow{short: s, long: l}, nil
}

// Allow implements ContactLimiter. Both windows must admit the contact;
// a contact denied by either window consumes budget in neither (the
// contact never happens, so it should not count as seen).
func (h *HybridWindow) Allow(now int64, dst IP) bool {
	if !h.short.WouldAllow(now, dst) || !h.long.WouldAllow(now, dst) {
		return false
	}
	return h.short.Allow(now, dst) && h.long.Allow(now, dst)
}

var _ ContactLimiter = (*HybridWindow)(nil)

// TokenBucket is a classic token bucket: Rate tokens per tick up to
// Burst capacity; each allowed contact costs one token. It is the
// packets-per-tick abstraction used for link-level limits.
type TokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   int64
	primed bool
}

// NewTokenBucket builds a bucket that starts full.
func NewTokenBucket(rate, burst float64) (*TokenBucket, error) {
	if rate <= 0 || burst <= 0 {
		return nil, fmt.Errorf("%w: rate=%v burst=%v", ErrBadConfig, rate, burst)
	}
	return &TokenBucket{rate: rate, burst: burst, tokens: burst}, nil
}

// Allow implements ContactLimiter (the destination is ignored; the
// bucket prices every contact equally).
func (b *TokenBucket) Allow(now int64, _ IP) bool {
	if !b.primed {
		b.primed = true
		b.last = now
	}
	if now > b.last {
		b.tokens += float64(now-b.last) * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}

// Tokens returns the current token balance (for tests and metrics).
func (b *TokenBucket) Tokens() float64 { return b.tokens }

var _ ContactLimiter = (*TokenBucket)(nil)
