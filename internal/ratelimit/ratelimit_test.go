package ratelimit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniqueIPWindowBasics(t *testing.T) {
	l, err := NewUniqueIPWindow(3, 5)
	if err != nil {
		t.Fatalf("NewUniqueIPWindow: %v", err)
	}
	// Three distinct IPs pass, the fourth is blocked.
	for ip := IP(1); ip <= 3; ip++ {
		if !l.Allow(0, ip) {
			t.Fatalf("ip %d should pass", ip)
		}
	}
	if l.Allow(1, 4) {
		t.Error("fourth distinct ip should be blocked")
	}
	// Repeats to already-seen IPs are free.
	if !l.Allow(2, 1) || !l.Allow(3, 3) {
		t.Error("repeat contacts should pass")
	}
	if got := l.Distinct(3); got != 3 {
		t.Errorf("Distinct = %d, want 3", got)
	}
	// Window rolls: budget refreshes.
	if !l.Allow(5, 4) {
		t.Error("after window roll, new ip should pass")
	}
	if got := l.Distinct(5); got != 1 {
		t.Errorf("Distinct after roll = %d, want 1", got)
	}
}

func TestUniqueIPWindowConfigErrors(t *testing.T) {
	if _, err := NewUniqueIPWindow(0, 5); err == nil {
		t.Error("max=0 should fail")
	}
	if _, err := NewUniqueIPWindow(3, 0); err == nil {
		t.Error("window=0 should fail")
	}
}

// Property: in any single window, at most max distinct destinations are
// ever admitted.
func TestUniqueIPWindowCapProperty(t *testing.T) {
	f := func(seed int64, maxRaw, nReq uint8) bool {
		max := int(maxRaw%10) + 1
		l, err := NewUniqueIPWindow(max, 100)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		admitted := make(map[IP]struct{})
		for i := 0; i < int(nReq)+20; i++ {
			dst := IP(rng.Intn(50))
			if l.Allow(int64(rng.Intn(100)), dst) {
				admitted[dst] = struct{}{}
			}
		}
		return len(admitted) <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWilliamsonThrottleLocality(t *testing.T) {
	th, err := NewWilliamsonThrottle(5, 1)
	if err != nil {
		t.Fatalf("NewWilliamsonThrottle: %v", err)
	}
	// Normal behaviour: a handful of repeat destinations always pass.
	for now := int64(0); now < 100; now++ {
		dst := IP(now % 4)
		if !th.Allow(now, dst) {
			t.Fatalf("local traffic blocked at tick %d", now)
		}
	}
	if th.QueueLen() != 0 {
		t.Errorf("queue = %d, want 0 for local traffic", th.QueueLen())
	}
}

func TestWilliamsonThrottleScanClamped(t *testing.T) {
	th, err := NewWilliamsonThrottle(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A scanner contacting 100 fresh addresses per tick: only the drain
	// rate (1/tick) gets through after the working set fills.
	allowed := 0
	next := IP(1000)
	for now := int64(0); now < 50; now++ {
		for k := 0; k < 100; k++ {
			if th.Allow(now, next) {
				allowed++
			}
			next++
		}
		th.Tick(now)
	}
	// First 5 fill the working set; after that 0 direct admissions.
	if allowed != 5 {
		t.Errorf("directly allowed = %d, want 5 (working set size)", allowed)
	}
	if th.QueueLen() < 4000 {
		t.Errorf("queue = %d, want huge backlog (worm signal)", th.QueueLen())
	}
}

func TestWilliamsonThrottleDrain(t *testing.T) {
	th, err := NewWilliamsonThrottle(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !th.Allow(0, 1) || !th.Allow(0, 2) {
		t.Fatal("working set admissions failed")
	}
	if th.Allow(0, 3) {
		t.Fatal("third destination should queue")
	}
	// Drain at tick 1 admits 3 and evicts the LRU (1).
	if dst, ok := th.Tick(1); !ok || dst != 3 {
		t.Fatalf("Tick = (%v, %v), want (3, true)", dst, ok)
	}
	if !th.Allow(1, 3) {
		t.Error("3 should now be in the working set")
	}
	if th.Allow(1, 1) {
		t.Error("1 should have been evicted")
	}
	// Second drain within the period does nothing.
	if th.Allow(2, 9) {
		t.Error("9 should queue")
	}
	if _, ok := th.Tick(3); ok {
		t.Error("drain before period elapsed should do nothing")
	}
	if _, ok := th.Tick(6); !ok {
		t.Error("drain after period should release")
	}
	// Release the remaining queued destination (9), then verify an empty
	// queue drains nothing.
	if dst, ok := th.Tick(20); !ok || dst != 9 {
		t.Errorf("Tick = (%v, %v), want (9, true)", dst, ok)
	}
	if _, ok := th.Tick(100); ok {
		t.Error("empty queue drain should report false")
	}
}

func TestWilliamsonThrottleConfigErrors(t *testing.T) {
	if _, err := NewWilliamsonThrottle(0, 1); err == nil {
		t.Error("workingSet=0 should fail")
	}
	if _, err := NewWilliamsonThrottle(5, 0); err == nil {
		t.Error("period=0 should fail")
	}
}

func TestDNSThrottle(t *testing.T) {
	th, err := NewDNSThrottle(2, 60)
	if err != nil {
		t.Fatalf("NewDNSThrottle: %v", err)
	}
	// DNS-translated destinations are free.
	th.RecordDNS(10, 100)
	for i := 0; i < 20; i++ {
		if !th.Allow(int64(i), 10) {
			t.Fatal("DNS-translated contact blocked")
		}
	}
	// Peers that initiated contact are free.
	th.RecordInbound(20)
	if !th.Allow(0, 20) {
		t.Error("reply to inbound peer blocked")
	}
	// Unknown addresses: budget of 2 per window.
	if !th.Allow(1, 30) || !th.Allow(1, 31) {
		t.Error("unknown budget should admit 2")
	}
	if th.Allow(1, 32) {
		t.Error("third unknown address should be blocked")
	}
	// Expired DNS entries stop being free.
	th.RecordDNS(40, 5)
	if !th.Allow(3, 40) {
		t.Error("valid DNS entry should pass")
	}
	if th.Allow(50, 40) {
		t.Error("expired DNS entry should count as unknown (budget spent)")
	}
}

func TestDNSThrottleKnown(t *testing.T) {
	th, err := NewDNSThrottle(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if th.Known(0, 1) {
		t.Error("fresh address should be unknown")
	}
	th.RecordDNS(1, 5)
	if !th.Known(3, 1) {
		t.Error("address with valid DNS should be known")
	}
	if th.Known(6, 1) {
		t.Error("expired DNS should be unknown")
	}
	// Expiry extension keeps the later expiry.
	th.RecordDNS(2, 10)
	th.RecordDNS(2, 4)
	if !th.Known(9, 2) {
		t.Error("RecordDNS should keep the longest expiry")
	}
}

func TestHybridWindow(t *testing.T) {
	// Short: 5 per 1 tick. Long: 12 per 5 ticks (the paper's observed
	// 99.9% values for 1 s and 5 s windows).
	h, err := NewHybridWindow(5, 1, 12, 5)
	if err != nil {
		t.Fatalf("NewHybridWindow: %v", err)
	}
	// Burst of 5 in tick 0 passes (short cap), 6th blocked.
	next := IP(0)
	for i := 0; i < 5; i++ {
		if !h.Allow(0, next) {
			t.Fatalf("contact %d should pass", i)
		}
		next++
	}
	if h.Allow(0, next) {
		t.Error("6th contact in one tick should be blocked by short window")
	}
	next++
	// Ticks 1 and 2: 5 and 2 more — the long window (12/5) binds.
	allowed := 0
	for tick := int64(1); tick <= 2; tick++ {
		for i := 0; i < 5; i++ {
			if h.Allow(tick, next) {
				allowed++
			}
			next++
		}
	}
	if allowed != 7 { // 12 total - 5 already used
		t.Errorf("allowed in ticks 1-2 = %d, want 7 (long window cap)", allowed)
	}
	if _, err := NewHybridWindow(5, 10, 12, 5); err == nil {
		t.Error("long window <= short window should fail")
	}
}

func TestTokenBucket(t *testing.T) {
	b, err := NewTokenBucket(1, 3)
	if err != nil {
		t.Fatalf("NewTokenBucket: %v", err)
	}
	// Starts full: burst of 3 passes.
	for i := 0; i < 3; i++ {
		if !b.Allow(0, 0) {
			t.Fatalf("burst token %d should pass", i)
		}
	}
	if b.Allow(0, 0) {
		t.Error("bucket empty: should block")
	}
	// One tick later one token has refilled.
	if !b.Allow(1, 0) {
		t.Error("refilled token should pass")
	}
	if b.Allow(1, 0) {
		t.Error("only one token refilled")
	}
	// Long idle: capped at burst.
	if got := bAfterIdle(b); got > 3 {
		t.Errorf("tokens after idle = %v, want <= burst", got)
	}
	if _, err := NewTokenBucket(0, 1); err == nil {
		t.Error("rate=0 should fail")
	}
	if _, err := NewTokenBucket(1, 0); err == nil {
		t.Error("burst=0 should fail")
	}
}

func bAfterIdle(b *TokenBucket) float64 {
	b.Allow(1000, 0)
	return b.Tokens() + 1 // the Allow consumed one
}

// Property: a token bucket never admits more than burst + rate*elapsed
// contacts over any run.
func TestTokenBucketRateProperty(t *testing.T) {
	f := func(seed int64, rateRaw, burstRaw uint8) bool {
		rate := float64(rateRaw%5) + 1
		burst := float64(burstRaw%10) + 1
		b, err := NewTokenBucket(rate, burst)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		allowed := 0
		const horizon = 50
		for now := int64(0); now < horizon; now++ {
			for k := 0; k < rng.Intn(20); k++ {
				if b.Allow(now, 0) {
					allowed++
				}
			}
		}
		return float64(allowed) <= burst+rate*float64(horizon)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
