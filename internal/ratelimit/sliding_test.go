package ratelimit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSlidingWindowBasics(t *testing.T) {
	l, err := NewSlidingUniqueIPWindow(2, 10)
	if err != nil {
		t.Fatalf("NewSlidingUniqueIPWindow: %v", err)
	}
	if !l.Allow(0, 1) || !l.Allow(0, 2) {
		t.Fatal("first two destinations should pass")
	}
	if l.Allow(5, 3) {
		t.Error("third distinct destination within the window should block")
	}
	// Repeats are free and refresh recency.
	if !l.Allow(5, 1) {
		t.Error("repeat should pass")
	}
	if got := l.Distinct(5); got != 2 {
		t.Errorf("Distinct = %d, want 2", got)
	}
	// After 2's admission (tick 0) slides out at tick 10, a new
	// destination fits; 1 was refreshed at tick 5 so still counts.
	if !l.Allow(10, 3) {
		t.Error("expired slot should open up")
	}
	if l.Allow(10, 4) {
		t.Error("window full again")
	}
}

func TestSlidingWindowNoBoundaryStraddle(t *testing.T) {
	// The tumbling window's weakness: a burst just before the reset and
	// another just after passes 2×max in ~one window length. The
	// sliding window forbids that.
	sliding, err := NewSlidingUniqueIPWindow(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	tumbling, err := NewUniqueIPWindow(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	countAllowed := func(l ContactLimiter) int {
		n := 0
		dst := IP(100)
		// Burst at tick 9, burst at tick 10 (tumbling boundary).
		for _, tick := range []int64{9, 10} {
			for k := 0; k < 5; k++ {
				if l.Allow(tick, dst) {
					n++
				}
				dst++
			}
		}
		return n
	}
	if got := countAllowed(tumbling); got != 10 {
		t.Errorf("tumbling straddle admitted %d, expected the full 10", got)
	}
	if got := countAllowed(sliding); got != 5 {
		t.Errorf("sliding straddle admitted %d, want 5", got)
	}
}

func TestSlidingWindowConfigErrors(t *testing.T) {
	if _, err := NewSlidingUniqueIPWindow(0, 10); err == nil {
		t.Error("max=0 should fail")
	}
	if _, err := NewSlidingUniqueIPWindow(5, 0); err == nil {
		t.Error("window=0 should fail")
	}
}

// Property: at any instant, the number of distinct destinations
// admitted within the trailing window never exceeds max.
func TestSlidingWindowCapProperty(t *testing.T) {
	f := func(seed int64, maxRaw uint8) bool {
		max := int(maxRaw%8) + 1
		l, err := NewSlidingUniqueIPWindow(max, 20)
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		now := int64(0)
		for i := 0; i < 200; i++ {
			now += int64(rng.Intn(4))
			l.Allow(now, IP(rng.Intn(30)))
			if l.Distinct(now) > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
