package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/topology"
)

func mustStar(t *testing.T, n int) *topology.Graph {
	t.Helper()
	g, err := topology.Star(n)
	if err != nil {
		t.Fatalf("Star: %v", err)
	}
	return g
}

func TestStarRouting(t *testing.T) {
	g := mustStar(t, 5)
	tab := Build(g)
	if tab.N() != 5 {
		t.Fatalf("N = %d", tab.N())
	}
	// Leaf to leaf goes through the hub.
	if got := tab.NextHop(1, 2); got != topology.Hub {
		t.Errorf("NextHop(1,2) = %d, want hub", got)
	}
	if got := tab.Dist(1, 2); got != 2 {
		t.Errorf("Dist(1,2) = %d, want 2", got)
	}
	if got := tab.Dist(0, 3); got != 1 {
		t.Errorf("Dist(hub,3) = %d, want 1", got)
	}
	if got := tab.Dist(3, 3); got != 0 {
		t.Errorf("Dist(3,3) = %d, want 0", got)
	}
	path, err := tab.Path(1, 4)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	want := []int{1, 0, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestRoutingOutOfRange(t *testing.T) {
	tab := Build(mustStar(t, 3))
	if tab.NextHop(-1, 0) != -1 || tab.NextHop(0, 9) != -1 {
		t.Error("out-of-range NextHop should be -1")
	}
	if tab.Dist(-1, 0) != -1 || tab.Dist(0, 9) != -1 {
		t.Error("out-of-range Dist should be -1")
	}
	if _, err := tab.Path(0, 9); err == nil {
		t.Error("out-of-range Path should fail")
	}
}

func TestDisconnected(t *testing.T) {
	g := topology.New(4)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(2, 3); err != nil {
		t.Fatal(err)
	}
	tab := Build(g)
	if tab.Dist(0, 2) != -1 || tab.NextHop(0, 2) != -1 {
		t.Error("cross-component routing should be -1")
	}
	if _, err := tab.Path(0, 3); err == nil {
		t.Error("cross-component Path should fail")
	}
	if tab.Dist(2, 3) != 1 {
		t.Error("intra-component routing should work")
	}
}

func TestLinkLoadsStar(t *testing.T) {
	// In an n-star, link (hub, v): entries from v to all n-1 others, plus
	// entries from every other node to v (n-1 of them: hub->v and each
	// other leaf->v routes via hub, but only hop (hub, v) counts for the
	// hub's own table). Directed entries using link (v,hub): n-1 (v's
	// whole table). Directed entries using (hub,v): 1 (hub's entry for v).
	// Total per link: n.
	const n = 6
	tab := Build(mustStar(t, n))
	loads := tab.LinkLoads()
	if len(loads) != n-1 {
		t.Fatalf("links with load = %d, want %d", len(loads), n-1)
	}
	for id, l := range loads {
		if l != n {
			t.Errorf("link %v load = %d, want %d", id, l, n)
		}
	}
}

func TestLinkWeightsMeanOne(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, err := topology.BarabasiAlbert(300, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	tab := Build(g)
	weights := tab.LinkWeights(g)
	if len(weights) != g.M() {
		t.Fatalf("weights for %d links, want %d", len(weights), g.M())
	}
	var sum float64
	for _, w := range weights {
		if w <= 0 {
			t.Fatalf("non-positive weight %v", w)
		}
		sum += w
	}
	mean := sum / float64(len(weights))
	if mean < 0.99 || mean > 1.05 { // floor can push mean slightly above 1
		t.Errorf("mean weight = %v, want ~1", mean)
	}
}

func TestLinkWeightsEmptyGraph(t *testing.T) {
	g := topology.New(3)
	tab := Build(g)
	if w := tab.LinkWeights(g); len(w) != 0 {
		t.Errorf("weights on edgeless graph = %v", w)
	}
}

func TestMakeLinkID(t *testing.T) {
	if MakeLinkID(5, 2) != (LinkID{U: 2, V: 5}) {
		t.Error("MakeLinkID should normalize order")
	}
	if MakeLinkID(2, 5) != MakeLinkID(5, 2) {
		t.Error("LinkID should be order-independent")
	}
}

// Property: on random connected graphs, distances are symmetric, obey the
// triangle inequality through the next hop, and every path found is a
// valid walk of length Dist.
func TestRoutingProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.ErdosRenyi(30, 0.12, true, rng)
		if err != nil {
			return false
		}
		tab := Build(g)
		for u := 0; u < g.N(); u++ {
			for d := 0; d < g.N(); d++ {
				du := tab.Dist(u, d)
				if du != tab.Dist(d, u) {
					return false // symmetry on undirected graph
				}
				if u == d {
					if du != 0 {
						return false
					}
					continue
				}
				if du < 1 {
					return false // connected graph
				}
				nh := tab.NextHop(u, d)
				if nh < 0 || !g.HasEdge(u, nh) && nh != d {
					return false
				}
				if tab.Dist(nh, d) != du-1 {
					return false // next hop strictly decreases distance
				}
				p, err := tab.Path(u, d)
				if err != nil || len(p) != du+1 {
					return false
				}
				for i := 1; i < len(p); i++ {
					if !g.HasEdge(p[i-1], p[i]) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: total directed routing entries equals n*(n-1) on a connected
// graph, so link loads sum to that.
func TestLinkLoadsSumProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, err := topology.BarabasiAlbert(40, 2, rng)
		if err != nil {
			return false
		}
		tab := Build(g)
		total := 0
		for _, l := range tab.LinkLoads() {
			total += l
		}
		n := g.N()
		return total == n*(n-1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
