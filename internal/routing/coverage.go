package routing

import "fmt"

// PathCoverage returns the fraction α of ordered source–destination
// pairs whose shortest path (as realized by the next-hop tables)
// traverses at least one node of the given set, counting interior and
// endpoint transits of covered nodes but not pure endpoints: a path
// from u to d "is covered" if some covered node forwards its traffic —
// i.e. appears on the path as anything other than the final
// destination, with the source itself counting (its access link is
// covered when the source is).
//
// This is the α of Equation 6: deploying rate limiting on a node set
// that covers α of IP-to-IP paths yields the effective epidemic
// exponent β(1−α). Measuring it on the simulated topology lets the
// packet-level experiments be compared against the analytical
// BackboneRL model with no free parameter.
func (t *Table) PathCoverage(nodes []int) (float64, error) {
	covered := make([]bool, t.n)
	for _, u := range nodes {
		if u < 0 || u >= t.n {
			return 0, fmt.Errorf("routing: coverage node %d out of range [0,%d)", u, t.n)
		}
		covered[u] = true
	}
	if t.n < 2 {
		return 0, nil
	}
	hits, total := 0, 0
	for s := 0; s < t.n; s++ {
		for d := 0; d < t.n; d++ {
			if s == d || t.Dist(s, d) < 0 {
				continue
			}
			total++
			u := s
			for u != d {
				if covered[u] {
					hits++
					break
				}
				u = t.NextHop(u, d)
			}
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(hits) / float64(total), nil
}

// NodeTransit counts, for every node, the number of ordered
// source–destination shortest paths that transit it (pass through it as
// an intermediate hop, endpoints excluded) — the unnormalized
// betweenness the paper's degree-ranked "backbone" designation is a
// proxy for.
func (t *Table) NodeTransit() []int {
	transit := make([]int, t.n)
	for s := 0; s < t.n; s++ {
		for d := 0; d < t.n; d++ {
			if s == d || t.Dist(s, d) < 0 {
				continue
			}
			u := t.NextHop(s, d)
			for u != d {
				transit[u]++
				u = t.NextHop(u, d)
			}
		}
	}
	return transit
}

// MeanPathLength returns the average hop count over all connected
// ordered pairs (0 for graphs with fewer than 2 reachable pairs).
func (t *Table) MeanPathLength() float64 {
	sum, count := 0, 0
	for s := 0; s < t.n; s++ {
		for d := 0; d < t.n; d++ {
			if s == d {
				continue
			}
			if dist := t.Dist(s, d); dist > 0 {
				sum += dist
				count++
			}
		}
	}
	if count == 0 {
		return 0
	}
	return float64(sum) / float64(count)
}
