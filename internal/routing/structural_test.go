package routing

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

// structuralGraphs are small host-and-core topologies the structural
// router must handle; small enough that exhaustive all-pairs
// verification against the dense BFS table is cheap.
func structuralGraphs(t *testing.T) map[string]*topology.Graph {
	t.Helper()
	star, err := topology.Star(40)
	if err != nil {
		t.Fatal(err)
	}
	hg, _, _, err := topology.Hierarchical(topology.HierarchicalConfig{
		Backbones: 2, EdgesPer: 4, HostsPerSubnet: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	tl, _, _, err := topology.TwoLevel(topology.TwoLevelConfig{
		ASes: 24, AttachM: 2, TransitFraction: 0.25, HostsPerStub: 8,
	}, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	// An m=1 preferential-attachment tree: most nodes are degree-1
	// leaves, so it qualifies even without an explicit host tier.
	ba1, err := topology.BarabasiAlbert(150, 1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*topology.Graph{
		"star": star, "hierarchical": hg, "twolevel": tl, "ba-m1": ba1,
	}
}

// TestStructuralMatchesDense: every structural route must reach its
// destination in exactly the dense table's shortest-path hop count
// (tie-breaks may differ; optimality may not).
func TestStructuralMatchesDense(t *testing.T) {
	for name, g := range structuralGraphs(t) {
		t.Run(name, func(t *testing.T) {
			links := EnumerateLinks(g)
			s := NewStructural(g, links)
			if s == nil {
				t.Fatalf("%s: NewStructural returned nil for a qualifying graph", name)
			}
			if s.Hosts()+s.Core() != g.N() {
				t.Fatalf("hosts %d + core %d != n %d", s.Hosts(), s.Core(), g.N())
			}
			tab := Build(g)
			n := g.N()
			for u := 0; u < n; u++ {
				if s.HopLink(u, u) != -1 {
					t.Fatalf("HopLink(%d,%d) = %d, want -1", u, u, s.HopLink(u, u))
				}
				for d := 0; d < n; d++ {
					if d == u {
						continue
					}
					at, hops := u, 0
					for at != d {
						li := s.HopLink(at, d)
						if li < 0 {
							t.Fatalf("route %d->%d: stuck at %d after %d hops", u, d, at, hops)
						}
						if links.From(int(li)) != at {
							t.Fatalf("route %d->%d: hop link %d starts at %d, not %d",
								u, d, li, links.From(int(li)), at)
						}
						at = links.To(int(li))
						hops++
						if hops > n {
							t.Fatalf("route %d->%d: did not terminate", u, d)
						}
					}
					if want := tab.Dist(u, d); hops != want {
						t.Fatalf("route %d->%d: %d hops, shortest path has %d", u, d, hops, want)
					}
				}
			}
		})
	}
}

// TestStructuralPackedMatchesLegacy: on connected cores the
// bit-packed slot columns must decode to exactly the directed links
// the legacy dense int32 table stores — not merely equal-length
// routes. The engine's golden series pin byte-identical output, so the
// packed representation may not even change tie-breaks.
func TestStructuralPackedMatchesLegacy(t *testing.T) {
	for name, g := range structuralGraphs(t) {
		t.Run(name, func(t *testing.T) {
			links := EnumerateLinks(g)
			s := NewStructural(g, links)
			if s == nil {
				t.Fatalf("%s: NewStructural returned nil", name)
			}
			if !s.Packed() {
				t.Fatalf("%s: connected core should use the packed table", name)
			}
			legacy := *s
			legacy.hopBits = nil
			legacy.buildLegacy()
			n := g.N()
			for u := 0; u < n; u++ {
				for d := 0; d < n; d++ {
					if got, want := s.HopLink(u, d), legacy.HopLink(u, d); got != want {
						t.Fatalf("HopLink(%d,%d) packed %d, legacy %d", u, d, got, want)
					}
				}
			}
			if dense := 4 * s.Core() * s.Core(); s.Core() > 8 && s.CoreTableBytes() >= dense {
				t.Errorf("packed core table %d B not smaller than dense %d B",
					s.CoreTableBytes(), dense)
			}
		})
	}
}

// TestStructuralDisconnectedCoreFallsBack: a core split into two
// components has unreachable pairs, which the packed columns cannot
// represent — the dense int32 fallback with its -1 sentinel must kick
// in, and cross-component routes must report unreachable.
func TestStructuralDisconnectedCoreFallsBack(t *testing.T) {
	// Two disjoint stars: hubs 0 and 1, hosts 2-7 on hub 0, 8-13 on
	// hub 1. 12 of 14 nodes are degree-1 hosts, so it qualifies.
	g := topology.New(14)
	for h := 2; h < 8; h++ {
		if err := g.AddEdge(0, h); err != nil {
			t.Fatal(err)
		}
	}
	for h := 8; h < 14; h++ {
		if err := g.AddEdge(1, h); err != nil {
			t.Fatal(err)
		}
	}
	links := EnumerateLinks(g)
	s := NewStructural(g, links)
	if s == nil {
		t.Fatal("NewStructural returned nil for a host-majority graph")
	}
	if s.Packed() {
		t.Fatal("disconnected core must fall back to the dense table")
	}
	if li := s.HopLink(0, 1); li != -1 {
		t.Errorf("cross-component HopLink(0,1) = %d, want -1", li)
	}
	// Within a component, routes still work: host 2 -> host 7 via hub 0.
	li := s.HopLink(2, 7)
	if li < 0 || links.To(int(li)) != 0 {
		t.Errorf("HopLink(2,7) = %d, want uplink to hub 0", li)
	}
	if li := s.HopLink(0, 7); li < 0 || links.To(int(li)) != 7 {
		t.Errorf("HopLink(0,7) = %d, want direct link to host 7", li)
	}
}

// TestStructuralRejectsDenseCoreGraphs: graphs without a degree-1 host
// majority must fall back to the dense table (NewStructural returns
// nil) — structural routing would pay O(core²) for nothing.
func TestStructuralRejectsDenseCoreGraphs(t *testing.T) {
	g, err := topology.BarabasiAlbert(120, 2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if s := NewStructural(g, EnumerateLinks(g)); s != nil {
		t.Fatalf("NewStructural accepted an m=2 power-law graph (hosts %d of %d)",
			s.Hosts(), g.N())
	}
}
