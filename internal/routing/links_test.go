package routing

import (
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func TestEnumerateLinksStar(t *testing.T) {
	g, err := topology.Star(4) // center 0, leaves 1..3
	if err != nil {
		t.Fatal(err)
	}
	l := EnumerateLinks(g)
	if l.N() != 4 {
		t.Fatalf("N = %d, want 4", l.N())
	}
	if l.Count() != 6 {
		t.Fatalf("Count = %d, want 6 directed links", l.Count())
	}
	// Stable order: 0->1, 0->2, 0->3, 1->0, 2->0, 3->0.
	wantFrom := []int{0, 0, 0, 1, 2, 3}
	wantTo := []int{1, 2, 3, 0, 0, 0}
	for i := 0; i < l.Count(); i++ {
		if l.From(i) != wantFrom[i] || l.To(i) != wantTo[i] {
			t.Errorf("link %d = %d->%d, want %d->%d",
				i, l.From(i), l.To(i), wantFrom[i], wantTo[i])
		}
	}
	if got := l.Outgoing(0); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Outgoing(0) = %v", got)
	}
	if l.OutStart(2) != 4 {
		t.Errorf("OutStart(2) = %d, want 4", l.OutStart(2))
	}
}

func TestEnumerateLinksIndexRoundTrip(t *testing.T) {
	g, err := topology.BarabasiAlbert(200, 2, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	l := EnumerateLinks(g)
	if l.Count() != 2*g.M() {
		t.Fatalf("Count = %d, want %d", l.Count(), 2*g.M())
	}
	for i := 0; i < l.Count(); i++ {
		u, v := l.From(i), l.To(i)
		if got := l.Index(u, v); got != i {
			t.Fatalf("Index(%d,%d) = %d, want %d", u, v, got, i)
		}
		if !g.HasEdge(u, v) {
			t.Fatalf("link %d (%d->%d) not a graph edge", i, u, v)
		}
	}
	// Ascending (from, to) order is the contract the engine's series
	// determinism rests on.
	for i := 1; i < l.Count(); i++ {
		if l.From(i) < l.From(i-1) ||
			(l.From(i) == l.From(i-1) && l.To(i) <= l.To(i-1)) {
			t.Fatalf("link order not strictly ascending at %d", i)
		}
	}
	if got := l.Index(0, 0); got != -1 {
		t.Errorf("Index(0,0) = %d, want -1", got)
	}
	// A non-neighbor pair must report -1.
	for v := 0; v < g.N(); v++ {
		if !g.HasEdge(5, v) && v != 5 {
			if got := l.Index(5, v); got != -1 {
				t.Errorf("Index(5,%d) = %d for non-edge", v, got)
			}
			break
		}
	}
}
