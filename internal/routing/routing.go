// Package routing computes shortest-path routing state for a topology:
// per-node next-hop tables (BFS, hop-count metric, matching the paper's
// "shortest path algorithm"), distances, concrete paths, and per-link
// routing-table load. The load is what the paper calls "the number of
// routing table entries the link occupies" and is used to scale each
// rate-limited link's packet budget.
//
// Two next-hop representations exist. The dense form
// (Links.HopTable) stores every (source, destination) next hop in one
// O(N²) slice — exact, including tie-breaks, and the right choice for
// paper-sized graphs. Structural (NewStructural) serves host-majority
// graphs (star, hierarchical, two-level, m=1 power-law) with host
// up-links plus a core-only table — O(N + core²), same hop counts,
// possibly different equal-length tie-breaks; the simulation engine
// switches to it above a node-count threshold (DESIGN.md §9).
package routing

import (
	"fmt"

	"repro/internal/topology"
)

// Table holds all-pairs shortest-path routing state for a graph with n
// nodes. Construct with Build.
type Table struct {
	n int
	// next[u*n+d] is the neighbor of u on u's chosen shortest path to d;
	// next[u*n+u] = u; -1 if d is unreachable from u.
	next []int32
	// dist[u*n+d] is the hop count from u to d (-1 if unreachable).
	dist []int32
}

// Build runs a BFS from every node of g and records distances and
// next hops. Ties between equal-length paths are broken by BFS discovery
// order, which is deterministic for a given graph. Disconnected pairs
// get distance -1 and next hop -1.
func Build(g *topology.Graph) *Table {
	n := g.N()
	t := &Table{
		n:    n,
		next: make([]int32, n*n),
		dist: make([]int32, n*n),
	}
	for i := range t.next {
		t.next[i] = -1
		t.dist[i] = -1
	}
	// BFS from each destination d computes, for every node u, the parent
	// of u on a shortest u->d path — which is exactly u's next hop toward
	// d. One BFS per destination therefore fills column d for all u.
	queue := make([]int32, 0, n)
	for d := 0; d < n; d++ {
		t.next[d*n+d] = int32(d)
		t.dist[d*n+d] = 0
		queue = queue[:0]
		queue = append(queue, int32(d))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			dv := t.dist[int(v)*n+d]
			for _, w := range g.Neighbors(int(v)) {
				if t.next[int(w)*n+d] == -1 && int(w) != d {
					t.next[int(w)*n+d] = v
					t.dist[int(w)*n+d] = dv + 1
					queue = append(queue, w)
				}
			}
		}
	}
	return t
}

// N returns the node count the table was built for.
func (t *Table) N() int { return t.n }

// NextHop returns u's next hop toward dst, u itself if u == dst, and -1
// if dst is unreachable or either node is out of range.
func (t *Table) NextHop(u, dst int) int {
	if u < 0 || u >= t.n || dst < 0 || dst >= t.n {
		return -1
	}
	return int(t.next[u*t.n+dst])
}

// Dist returns the hop distance from u to dst (-1 if unreachable or out
// of range).
func (t *Table) Dist(u, dst int) int {
	if u < 0 || u >= t.n || dst < 0 || dst >= t.n {
		return -1
	}
	return int(t.dist[u*t.n+dst])
}

// Path returns the node sequence from u to dst inclusive, or an error if
// unreachable.
func (t *Table) Path(u, dst int) ([]int, error) {
	if u < 0 || u >= t.n || dst < 0 || dst >= t.n {
		return nil, fmt.Errorf("routing: path (%d,%d) out of range [0,%d)", u, dst, t.n)
	}
	if t.Dist(u, dst) < 0 {
		return nil, fmt.Errorf("routing: %d unreachable from %d", dst, u)
	}
	path := []int{u}
	for u != dst {
		u = t.NextHop(u, dst)
		path = append(path, u)
	}
	return path, nil
}

// LinkID identifies an undirected link by its endpoints with U < V.
type LinkID struct{ U, V int }

// MakeLinkID normalizes (a, b) into a LinkID.
func MakeLinkID(a, b int) LinkID {
	if a > b {
		a, b = b, a
	}
	return LinkID{U: a, V: b}
}

// LinkLoads counts, for every link, the number of routing-table entries
// that use it: entry (u, d) contributes to link (u, NextHop(u, d)). The
// count for an undirected link sums both directions. Links carrying no
// entries are absent from the map.
func (t *Table) LinkLoads() map[LinkID]int {
	loads := make(map[LinkID]int)
	for u := 0; u < t.n; u++ {
		row := t.next[u*t.n : (u+1)*t.n]
		for d, nh := range row {
			if d == u || nh < 0 {
				continue
			}
			loads[MakeLinkID(u, int(nh))]++
		}
	}
	return loads
}

// LinkWeights converts LinkLoads into multiplicative weights normalized
// so the mean weight over the given links is 1. The paper multiplies a
// base rate (10 packets/tick) by a weight proportional to routing-table
// load, so heavily used links get proportionally more budget. Links not
// present in loads get the minimum weight floor (1/mean of one entry).
func (t *Table) LinkWeights(g *topology.Graph) map[LinkID]float64 {
	loads := t.LinkLoads()
	edges := g.Edges()
	if len(edges) == 0 {
		return map[LinkID]float64{}
	}
	total := 0
	for _, e := range edges {
		total += loads[MakeLinkID(e[0], e[1])]
	}
	mean := float64(total) / float64(len(edges))
	weights := make(map[LinkID]float64, len(edges))
	for _, e := range edges {
		id := MakeLinkID(e[0], e[1])
		l := loads[id]
		if mean <= 0 {
			weights[id] = 1
			continue
		}
		w := float64(l) / mean
		if w < 1/mean { // floor: every live link can carry something
			w = 1 / mean
		}
		weights[id] = w
	}
	return weights
}
