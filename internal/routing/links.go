package routing

import (
	"sort"

	"repro/internal/topology"
)

// Links is a stable enumeration of every directed link of a graph:
// link indexes are assigned by source node ascending, then destination
// ascending within a node, so index order equals the deterministic
// per-tick iteration order the simulator fixes for its series. A Links
// is immutable after EnumerateLinks and safe to share across
// goroutines; the engine keys all per-link hot-path state (queues,
// rate-limit budgets) by these small-integer indexes instead of
// (src,dst) map keys.
type Links struct {
	n int
	// start[u] is the index of u's first outgoing link; start[n] is the
	// total directed-link count. Outgoing links of u occupy
	// [start[u], start[u+1]).
	start []int32
	// to[i] is the destination of directed link i, ascending within
	// each source node.
	to []int32
	// from[i] is the source of directed link i.
	from []int32
}

// EnumerateLinks assigns every directed link of g its stable index.
func EnumerateLinks(g *topology.Graph) *Links {
	n := g.N()
	l := &Links{
		n:     n,
		start: make([]int32, n+1),
		to:    make([]int32, 0, 2*g.M()),
		from:  make([]int32, 0, 2*g.M()),
	}
	for u := 0; u < n; u++ {
		l.start[u] = int32(len(l.to))
		adj := append([]int32(nil), g.Neighbors(u)...)
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		l.to = append(l.to, adj...)
		for range adj {
			l.from = append(l.from, int32(u))
		}
	}
	l.start[n] = int32(len(l.to))
	return l
}

// N returns the node count the enumeration was built for.
func (l *Links) N() int { return l.n }

// Count returns the number of directed links (2·edges).
func (l *Links) Count() int { return len(l.to) }

// Outgoing returns the destinations of u's outgoing links in ascending
// order. The slice aliases internal state: callers must not mutate it.
// Link OutStart(u)+k is the link u -> Outgoing(u)[k].
func (l *Links) Outgoing(u int) []int32 { return l.to[l.start[u]:l.start[u+1]] }

// OutStart returns the index of u's first outgoing link.
func (l *Links) OutStart(u int) int { return int(l.start[u]) }

// From returns the source node of directed link i.
func (l *Links) From(i int) int { return int(l.from[i]) }

// To returns the destination node of directed link i.
func (l *Links) To(i int) int { return int(l.to[i]) }

// HopTable fuses t's next-hop table with the link enumeration: entry
// u*N+d is the index of the directed link from u toward destination d,
// or -1 when d is unreachable or d == u. One lookup replaces the
// next-hop load plus neighbor search on the simulator's per-packet
// path. The table is immutable and safe to share across goroutines; at
// 4·N² bytes it is the same size as t's own tables.
func (l *Links) HopTable(t *Table) []int32 {
	hop := make([]int32, l.n*l.n)
	for u := 0; u < l.n; u++ {
		row := hop[u*l.n : (u+1)*l.n]
		for d := range row {
			nh := t.NextHop(u, d)
			if nh < 0 || d == u {
				row[d] = -1
				continue
			}
			row[d] = int32(l.Index(u, nh))
		}
	}
	return hop
}

// Index returns the index of directed link u -> v, or -1 when v is not
// a neighbor of u. Binary search over u's sorted destinations: O(log
// deg(u)), no allocation — cheap enough for per-packet routing.
func (l *Links) Index(u, v int) int {
	lo, hi := int(l.start[u]), int(l.start[u+1])
	v32 := int32(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if l.to[mid] < v32 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < int(l.start[u+1]) && l.to[lo] == v32 {
		return lo
	}
	return -1
}
