package routing

import "repro/internal/topology"

// Structural is the memory-lean routing mode for host-and-core
// topologies (topology.TwoLevel, Hierarchical, and any graph whose
// population is mostly degree-1 hosts hanging off a router core, which
// includes m=1 preferential-attachment trees). Instead of the dense
// per-pair hop table — 4·N² bytes, hopeless at 100k+ nodes — it stores
// next hops structurally: a host's only move is its uplink, so
// shortest paths decompose as host → edge router → (core path) → edge
// router → host, and only the core × core hop table is materialised.
// A degree-1 host can never be an intermediate node of a shortest path
// between other nodes, so core-subgraph shortest paths equal full-graph
// shortest paths and every Structural route has optimal hop count.
//
// Memory is O(N + C²) for C core nodes instead of O(N²); with the
// usual hundreds-of-hosts-per-router fan-out that is a ~10⁴× reduction.
// A Structural is immutable after NewStructural and safe to share
// across goroutines.
type Structural struct {
	links *Links
	nc    int
	// attach[u] is the core router a degree-1 host u hangs off, -1 for
	// core nodes; upLink[u] is the directed-link index u -> attach[u].
	attach []int32
	upLink []int32
	// coreID[v] is v's dense core index (-1 for hosts).
	coreID []int32
	// coreHop[ci*nc+cj] is the directed-link index of core node ci's
	// next hop toward core node cj (-1 when ci == cj or unreachable).
	coreHop []int32
}

// NewStructural builds the structural router for g, or returns nil when
// the graph does not qualify: structural routing pays O(core²) memory,
// so it requires at least half the nodes to be degree-1 hosts. Callers
// fall back to the dense HopTable on nil.
func NewStructural(g *topology.Graph, links *Links) *Structural {
	n := g.N()
	s := &Structural{
		links:  links,
		attach: make([]int32, n),
		upLink: make([]int32, n),
		coreID: make([]int32, n),
	}
	hosts := 0
	for u := 0; u < n; u++ {
		s.attach[u] = -1
		s.upLink[u] = -1
		s.coreID[u] = -1
		adj := g.Neighbors(u)
		if len(adj) == 1 && len(g.Neighbors(int(adj[0]))) > 1 {
			s.attach[u] = adj[0]
			s.upLink[u] = int32(links.OutStart(u))
			hosts++
		}
	}
	if hosts*2 < n {
		return nil
	}
	coreNode := make([]int32, 0, n-hosts)
	for u := 0; u < n; u++ {
		if s.attach[u] < 0 {
			s.coreID[u] = int32(len(coreNode))
			coreNode = append(coreNode, int32(u))
		}
	}
	nc := len(coreNode)
	s.nc = nc

	// CSR adjacency of the core-induced subgraph, in each node's
	// insertion order (matching Build's BFS tie-breaking discipline:
	// deterministic for a given graph). revLink[k] is the directed-link
	// index neighbor -> core node, the value a BFS from a destination
	// writes into the hop table.
	start := make([]int32, nc+1)
	adj := make([]int32, 0, nc*4)
	revLink := make([]int32, 0, nc*4)
	for ci, u := range coreNode {
		start[ci] = int32(len(adj))
		for _, v := range g.Neighbors(int(u)) {
			if cv := s.coreID[v]; cv >= 0 {
				adj = append(adj, cv)
				revLink = append(revLink, int32(links.Index(int(v), int(u))))
			}
		}
	}
	start[nc] = int32(len(adj))

	s.coreHop = make([]int32, nc*nc)
	for i := range s.coreHop {
		s.coreHop[i] = -1
	}
	// One BFS per core destination cd: discovering neighbor cw from cv
	// means cv is cw's parent toward cd, so cw's hop link is the
	// directed link cw -> cv.
	queue := make([]int32, 0, nc)
	for cd := 0; cd < nc; cd++ {
		queue = append(queue[:0], int32(cd))
		for len(queue) > 0 {
			cv := queue[0]
			queue = queue[1:]
			for k := start[cv]; k < start[cv+1]; k++ {
				cw := adj[k]
				if cw != int32(cd) && s.coreHop[int(cw)*nc+cd] < 0 {
					s.coreHop[int(cw)*nc+cd] = revLink[k]
					queue = append(queue, cw)
				}
			}
		}
	}
	return s
}

// HopLink returns the directed-link index of u's next hop toward
// destination d, or -1 when u == d or d is unreachable — the same
// contract as an entry of Links.HopTable, computed structurally.
func (s *Structural) HopLink(u, d int) int32 {
	if u == d {
		return -1
	}
	if s.attach[u] >= 0 {
		return s.upLink[u] // a host's only exit
	}
	cu := s.coreID[u]
	var cd int32
	if a := s.attach[d]; a >= 0 {
		if int(a) == u {
			return int32(s.links.Index(u, d)) // final hop down to the host
		}
		cd = s.coreID[a]
	} else {
		cd = s.coreID[d]
	}
	return s.coreHop[int(cu)*s.nc+int(cd)]
}

// Core returns the number of core (non-host) nodes.
func (s *Structural) Core() int { return s.nc }

// Hosts returns the number of degree-1 hosts routed structurally.
func (s *Structural) Hosts() int { return len(s.attach) - s.nc }
