package routing

import (
	"math/bits"

	"repro/internal/topology"
)

// Structural is the memory-lean routing mode for host-and-core
// topologies (topology.TwoLevel, Hierarchical, and any graph whose
// population is mostly degree-1 hosts hanging off a router core, which
// includes m=1 preferential-attachment trees). Instead of the dense
// per-pair hop table — 4·N² bytes, hopeless at 100k+ nodes — it stores
// next hops structurally: a host's only move is its uplink, so
// shortest paths decompose as host → edge router → (core path) → edge
// router → host, and only the core × core hop table is materialised.
// A degree-1 host can never be an intermediate node of a shortest path
// between other nodes, so core-subgraph shortest paths equal full-graph
// shortest paths and every Structural route has optimal hop count.
//
// The core table itself is slot-compressed: a core node's next hop
// toward any destination is one of its core neighbors, so instead of a
// 4-byte directed-link index per (node, destination) pair it stores the
// *position* of that neighbor within the node's core adjacency list,
// bit-packed at bits.Len(deg-1) bits per entry. Degree-1 core nodes
// (stub routers with a single transit uplink) cost zero bits — their
// next hop is always their only neighbor. On the two-level AS graphs
// the simulator scales on, this shrinks the core table from 4 B to a
// fraction of a bit per entry; at 10M hosts (~41k core nodes) the
// dense int32 table alone would be ~6.8 GB, the packed one a few
// hundred MB. The packed form requires a connected core (every slot
// must decode to a real hop); disconnected cores fall back to the
// dense int32 table, keeping the -1 "unreachable" sentinel.
//
// Memory is O(N + C²·w/8) for C core nodes and w packed bits instead
// of O(N²). A Structural is immutable after NewStructural and safe to
// share across goroutines.
type Structural struct {
	links *Links
	nc    int
	// attach[u] is the core router a degree-1 host u hangs off, -1 for
	// core nodes; upLink[u] is the directed-link index u -> attach[u].
	attach []int32
	upLink []int32
	// coreID[v] is v's dense core index (-1 for hosts).
	coreID []int32

	// CSR adjacency of the core-induced subgraph in each node's
	// insertion order (matching Build's BFS tie-breaking discipline).
	// fwdLink[k] is the directed-link index core node -> neighbor for
	// CSR entry k: the value a packed slot decodes to.
	coreStart []int32
	coreAdj   []int32
	fwdLink   []int32

	// Packed mode (connected core). Column cd holds, for every core
	// node cu, the slot of cu's next-hop neighbor toward cd within cu's
	// core adjacency list, at wbits[cu] bits (bits.Len(deg-1); zero for
	// degree<=1). rowOff[cu] is the bit offset of cu's field within a
	// column; colBits = rowOff[nc] is the column stride. The entry for
	// cu == cd is never read (HopLink short-circuits it).
	hopBits []uint64
	rowOff  []int32
	wbits   []uint8
	colBits int

	// Legacy mode (disconnected core): coreHop[ci*nc+cj] is the
	// directed-link index of ci's next hop toward cj (-1 when ci == cj
	// or unreachable). nil in packed mode.
	coreHop []int32
}

// NewStructural builds the structural router for g, or returns nil when
// the graph does not qualify: structural routing pays O(core²) memory,
// so it requires at least half the nodes to be degree-1 hosts. Callers
// fall back to the dense HopTable on nil.
func NewStructural(g *topology.Graph, links *Links) *Structural {
	n := g.N()
	s := &Structural{
		links:  links,
		attach: make([]int32, n),
		upLink: make([]int32, n),
		coreID: make([]int32, n),
	}
	hosts := 0
	for u := 0; u < n; u++ {
		s.attach[u] = -1
		s.upLink[u] = -1
		s.coreID[u] = -1
		adj := g.Neighbors(u)
		if len(adj) == 1 && len(g.Neighbors(int(adj[0]))) > 1 {
			s.attach[u] = adj[0]
			s.upLink[u] = int32(links.OutStart(u))
			hosts++
		}
	}
	if hosts*2 < n {
		return nil
	}
	coreNode := make([]int32, 0, n-hosts)
	for u := 0; u < n; u++ {
		if s.attach[u] < 0 {
			s.coreID[u] = int32(len(coreNode))
			coreNode = append(coreNode, int32(u))
		}
	}
	nc := len(coreNode)
	s.nc = nc

	s.coreStart = make([]int32, nc+1)
	s.coreAdj = make([]int32, 0, nc*4)
	s.fwdLink = make([]int32, 0, nc*4)
	for ci, u := range coreNode {
		s.coreStart[ci] = int32(len(s.coreAdj))
		for _, v := range g.Neighbors(int(u)) {
			if cv := s.coreID[v]; cv >= 0 {
				s.coreAdj = append(s.coreAdj, cv)
				s.fwdLink = append(s.fwdLink, int32(links.Index(int(u), int(v))))
			}
		}
	}
	s.coreStart[nc] = int32(len(s.coreAdj))

	if s.coreConnected() {
		s.buildPacked()
	} else {
		s.buildLegacy()
	}
	return s
}

// coreConnected reports whether the core-induced subgraph is connected
// — the precondition of the packed table (every non-self slot must
// decode to a real hop, so there is no room for an "unreachable"
// sentinel).
func (s *Structural) coreConnected() bool {
	nc := s.nc
	if nc <= 1 {
		return true
	}
	seen := make([]bool, nc)
	queue := make([]int32, 0, nc)
	seen[0] = true
	queue = append(queue, 0)
	visited := 1
	for len(queue) > 0 {
		cv := queue[0]
		queue = queue[1:]
		for k := s.coreStart[cv]; k < s.coreStart[cv+1]; k++ {
			if cw := s.coreAdj[k]; !seen[cw] {
				seen[cw] = true
				visited++
				queue = append(queue, cw)
			}
		}
	}
	return visited == nc
}

// buildPacked fills the slot-compressed hop columns. The BFS per
// destination visits neighbors in CSR (graph insertion) order — the
// same tie-breaking as the legacy dense build, so a decoded slot is
// always the identical directed link the dense table would store.
func (s *Structural) buildPacked() {
	nc := s.nc
	s.wbits = make([]uint8, nc)
	s.rowOff = make([]int32, nc+1)
	off := int32(0)
	for ci := 0; ci < nc; ci++ {
		if deg := int(s.coreStart[ci+1] - s.coreStart[ci]); deg > 1 {
			s.wbits[ci] = uint8(bits.Len(uint(deg - 1)))
		}
		s.rowOff[ci] = off
		off += int32(s.wbits[ci])
	}
	s.rowOff[nc] = off
	s.colBits = int(off)
	totalBits := nc * s.colBits
	s.hopBits = make([]uint64, (totalBits+63)/64)

	// twinSlot[k]: CSR entry k is (cu -> cv); twinSlot[k] is the
	// position of cu within cv's own adjacency list. When a BFS from a
	// destination discovers cv through entry k, cv's next hop is cu,
	// stored packed as cu's slot in cv's list.
	type edgeKey struct{ a, b int32 }
	pos := make(map[edgeKey]int32, len(s.coreAdj))
	for cu := 0; cu < nc; cu++ {
		for k := s.coreStart[cu]; k < s.coreStart[cu+1]; k++ {
			pos[edgeKey{int32(cu), s.coreAdj[k]}] = k - s.coreStart[cu]
		}
	}
	twinSlot := make([]int32, len(s.coreAdj))
	for cu := 0; cu < nc; cu++ {
		for k := s.coreStart[cu]; k < s.coreStart[cu+1]; k++ {
			twinSlot[k] = pos[edgeKey{s.coreAdj[k], int32(cu)}]
		}
	}

	// One BFS per core destination cd: discovering neighbor cw from cv
	// means cv is cw's parent toward cd, so cw's packed slot is cv's
	// position within cw's adjacency list.
	seen := make([]int32, nc)
	for ci := range seen {
		seen[ci] = -1
	}
	queue := make([]int32, 0, nc)
	for cd := 0; cd < nc; cd++ {
		colBase := cd * s.colBits
		seen[cd] = int32(cd)
		queue = append(queue[:0], int32(cd))
		for len(queue) > 0 {
			cv := queue[0]
			queue = queue[1:]
			for k := s.coreStart[cv]; k < s.coreStart[cv+1]; k++ {
				cw := s.coreAdj[k]
				if seen[cw] != int32(cd) {
					seen[cw] = int32(cd)
					packSlot(s.hopBits, colBase+int(s.rowOff[cw]), s.wbits[cw], twinSlot[k])
					queue = append(queue, cw)
				}
			}
		}
	}
}

// buildLegacy fills the dense int32 core hop table — the fallback for
// disconnected cores, where -1 entries mark unreachable pairs.
func (s *Structural) buildLegacy() {
	nc := s.nc
	s.coreHop = make([]int32, nc*nc)
	for i := range s.coreHop {
		s.coreHop[i] = -1
	}
	// revLink[k] is the directed-link index neighbor -> core node for
	// CSR entry k: the value a BFS from a destination writes into the
	// hop table.
	revLink := make([]int32, len(s.coreAdj))
	for cu := 0; cu < nc; cu++ {
		for k := s.coreStart[cu]; k < s.coreStart[cu+1]; k++ {
			cv := s.coreAdj[k]
			for j := s.coreStart[cv]; j < s.coreStart[cv+1]; j++ {
				if s.coreAdj[j] == int32(cu) {
					revLink[k] = s.fwdLink[j]
					break
				}
			}
		}
	}
	queue := make([]int32, 0, nc)
	for cd := 0; cd < nc; cd++ {
		queue = append(queue[:0], int32(cd))
		for len(queue) > 0 {
			cv := queue[0]
			queue = queue[1:]
			for k := s.coreStart[cv]; k < s.coreStart[cv+1]; k++ {
				cw := s.coreAdj[k]
				if cw != int32(cd) && s.coreHop[int(cw)*nc+cd] < 0 {
					s.coreHop[int(cw)*nc+cd] = revLink[k]
					queue = append(queue, cw)
				}
			}
		}
	}
}

// packSlot writes the w low bits of val at bit offset off. Fields may
// straddle a word boundary; words are assumed zero-initialised.
func packSlot(words []uint64, off int, w uint8, val int32) {
	if w == 0 {
		return
	}
	word, shift := off>>6, uint(off&63)
	words[word] |= uint64(val) << shift
	if shift+uint(w) > 64 {
		words[word+1] |= uint64(val) >> (64 - shift)
	}
}

// unpackSlot reads a w-bit field at bit offset off.
func unpackSlot(words []uint64, off int, w uint8) int32 {
	if w == 0 {
		return 0
	}
	word, shift := off>>6, uint(off&63)
	v := words[word] >> shift
	if shift+uint(w) > 64 {
		v |= words[word+1] << (64 - shift)
	}
	return int32(v & (1<<w - 1))
}

// HopLink returns the directed-link index of u's next hop toward
// destination d, or -1 when u == d or d is unreachable — the same
// contract as an entry of Links.HopTable, computed structurally.
func (s *Structural) HopLink(u, d int) int32 {
	if u == d {
		return -1
	}
	if s.attach[u] >= 0 {
		return s.upLink[u] // a host's only exit
	}
	cu := s.coreID[u]
	var cd int32
	if a := s.attach[d]; a >= 0 {
		if int(a) == u {
			return int32(s.links.Index(u, d)) // final hop down to the host
		}
		cd = s.coreID[a]
	} else {
		cd = s.coreID[d]
	}
	if cu == cd {
		return -1
	}
	if s.coreHop != nil {
		return s.coreHop[int(cu)*s.nc+int(cd)]
	}
	slot := unpackSlot(s.hopBits, int(cd)*s.colBits+int(s.rowOff[cu]), s.wbits[cu])
	return s.fwdLink[int(s.coreStart[cu])+int(slot)]
}

// Core returns the number of core (non-host) nodes.
func (s *Structural) Core() int { return s.nc }

// Hosts returns the number of degree-1 hosts routed structurally.
func (s *Structural) Hosts() int { return len(s.attach) - s.nc }

// Packed reports whether the core hop table is in the bit-packed slot
// form (connected core) rather than the dense int32 fallback.
func (s *Structural) Packed() bool { return s.coreHop == nil }

// CoreTableBytes returns the memory footprint of the core hop table in
// bytes — the quantity the packed representation exists to shrink.
// Exposed for benchmarks and the B/host accounting in BENCH_engine.json.
func (s *Structural) CoreTableBytes() int {
	if s.coreHop != nil {
		return 4 * len(s.coreHop)
	}
	return 8*len(s.hopBits) + 4*len(s.fwdLink) + 4*len(s.coreStart) +
		4*len(s.coreAdj) + 4*len(s.rowOff) + len(s.wbits)
}
