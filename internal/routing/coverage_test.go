package routing

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/topology"
)

func TestPathCoverageStar(t *testing.T) {
	// In an n-star, every leaf-to-leaf path transits the hub, and every
	// path out of the hub starts at a covered node when the hub is
	// covered. Pairs: n(n-1) ordered. Covered by {hub}: all pairs except
	// leaf->hub one-hop paths... leaf->hub: path [leaf, hub]; interior
	// nodes: none; source leaf not covered; destination hub is covered
	// but endpoints-as-destination don't count. So uncovered pairs are
	// exactly the (n-1) leaf->hub pairs.
	const n = 6
	g, err := topology.Star(n)
	if err != nil {
		t.Fatal(err)
	}
	tab := Build(g)
	alpha, err := tab.PathCoverage([]int{topology.Hub})
	if err != nil {
		t.Fatalf("PathCoverage: %v", err)
	}
	total := float64(n * (n - 1))
	want := (total - float64(n-1)) / total
	if math.Abs(alpha-want) > 1e-12 {
		t.Errorf("alpha = %v, want %v", alpha, want)
	}
	// Covering a single leaf covers only that leaf's outgoing paths.
	alpha, err = tab.PathCoverage([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	want = float64(n-1) / total
	if math.Abs(alpha-want) > 1e-12 {
		t.Errorf("leaf alpha = %v, want %v", alpha, want)
	}
}

func TestPathCoverageBounds(t *testing.T) {
	g, err := topology.Ring(8)
	if err != nil {
		t.Fatal(err)
	}
	tab := Build(g)
	if alpha, err := tab.PathCoverage(nil); err != nil || alpha != 0 {
		t.Errorf("empty cover: %v, %v", alpha, err)
	}
	all := make([]int, 8)
	for i := range all {
		all[i] = i
	}
	alpha, err := tab.PathCoverage(all)
	if err != nil || alpha != 1 {
		t.Errorf("full cover: %v, %v", alpha, err)
	}
	if _, err := tab.PathCoverage([]int{99}); err == nil {
		t.Error("out-of-range node should fail")
	}
}

func TestPathCoverageTrivialGraph(t *testing.T) {
	tab := Build(topology.New(1))
	alpha, err := tab.PathCoverage([]int{0})
	if err != nil || alpha != 0 {
		t.Errorf("single node: %v, %v", alpha, err)
	}
}

// The paper's premise: the degree-ranked backbone of a power-law graph
// covers nearly all paths — which is why backbone rate limiting acts
// like α ≈ 1 in Equation 6.
func TestBackboneCoversMostPaths(t *testing.T) {
	g, err := topology.BarabasiAlbert(500, 1, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	roles, err := topology.AssignRoles(g, topology.PaperRoles)
	if err != nil {
		t.Fatal(err)
	}
	tab := Build(g)
	alpha, err := tab.PathCoverage(topology.NodesWithRole(roles, topology.RoleBackbone))
	if err != nil {
		t.Fatal(err)
	}
	if alpha < 0.8 {
		t.Errorf("backbone path coverage = %v, want >= 0.8", alpha)
	}
	// Hosts cover almost nothing beyond their own outgoing paths.
	hosts := topology.NodesWithRole(roles, topology.RoleHost)
	hostAlpha, err := tab.PathCoverage(hosts[:len(hosts)/20]) // 5% of hosts
	if err != nil {
		t.Fatal(err)
	}
	if hostAlpha > 0.3 {
		t.Errorf("5%% host coverage = %v, want small", hostAlpha)
	}
	if hostAlpha >= alpha {
		t.Error("backbone must cover more than sparse hosts")
	}
}

func TestNodeTransitStar(t *testing.T) {
	const n = 5
	g, err := topology.Star(n)
	if err != nil {
		t.Fatal(err)
	}
	tab := Build(g)
	transit := tab.NodeTransit()
	// Hub transits every leaf-to-leaf pair: (n-1)(n-2) ordered pairs.
	if want := (n - 1) * (n - 2); transit[topology.Hub] != want {
		t.Errorf("hub transit = %d, want %d", transit[topology.Hub], want)
	}
	for v := 1; v < n; v++ {
		if transit[v] != 0 {
			t.Errorf("leaf %d transit = %d, want 0", v, transit[v])
		}
	}
}

func TestMeanPathLength(t *testing.T) {
	g, err := topology.Star(5)
	if err != nil {
		t.Fatal(err)
	}
	tab := Build(g)
	// Star: hub<->leaf = 1 (8 ordered pairs), leaf<->leaf = 2 (12 pairs).
	want := (8.0*1 + 12.0*2) / 20.0
	if got := tab.MeanPathLength(); math.Abs(got-want) > 1e-12 {
		t.Errorf("mean path length = %v, want %v", got, want)
	}
	if got := Build(topology.New(3)).MeanPathLength(); got != 0 {
		t.Errorf("edgeless mean path length = %v, want 0", got)
	}
}

// Transit correlates with degree on preferential-attachment graphs: the
// top-degree node should be among the top transit nodes.
func TestTransitDegreeCorrelation(t *testing.T) {
	g, err := topology.BarabasiAlbert(300, 1, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	tab := Build(g)
	transit := tab.NodeTransit()
	topDegree := g.NodesByDegreeDesc()[0]
	rank := 0
	for u, tr := range transit {
		if tr > transit[topDegree] && u != topDegree {
			rank++
		}
	}
	if rank > 10 {
		t.Errorf("top-degree node ranks %d by transit, want near the top", rank)
	}
}
