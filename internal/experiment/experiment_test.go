package experiment

import (
	"math"
	"strings"
	"testing"
)

// quick returns fast options for tests: small populations, few runs.
func quickOpts() Options {
	return Options{Runs: 3, Quick: true}
}

func runFig(t *testing.T, id string, opt Options) *Result {
	t.Helper()
	res, err := Run(id, opt)
	if err != nil {
		t.Fatalf("Run(%q): %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("result ID = %q, want %q", res.ID, id)
	}
	if len(res.Figure.Series) == 0 {
		t.Fatalf("%s: no series", id)
	}
	for i := range res.Figure.Series {
		if err := res.Figure.Series[i].Validate(); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	return res
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", quickOpts()); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 26 {
		t.Fatalf("IDs = %d entries, want 26", len(ids))
	}
	seen := make(map[string]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
	for _, want := range []string{
		"fig1a", "fig10", "tbl-rates", "tbl-claims",
		"abl-targeting", "abl-queue", "abl-weights", "abl-patch",
		"abl-probe", "abl-topology", "abl-hybrid", "fault-detector",
		"collateral",
	} {
		if !seen[want] {
			t.Errorf("missing id %q", want)
		}
	}
}

func TestAblationsQuick(t *testing.T) {
	opt := Options{Runs: 2, Quick: true}
	t.Run("targeting", func(t *testing.T) {
		res := runFig(t, "abl-targeting", opt)
		if !(res.Metrics["t50_sequential"] > res.Metrics["t50_random"]) {
			t.Errorf("sequential %v should be slower than random %v",
				res.Metrics["t50_sequential"], res.Metrics["t50_random"])
		}
	})
	t.Run("queue", func(t *testing.T) {
		res := runFig(t, "abl-queue", opt)
		if !(res.Metrics["backlog_queue"] > res.Metrics["backlog_drop"]) {
			t.Errorf("queueing backlog %v should exceed dropping %v",
				res.Metrics["backlog_queue"], res.Metrics["backlog_drop"])
		}
	})
	t.Run("weights", func(t *testing.T) {
		res := runFig(t, "abl-weights", opt)
		u, w := res.Metrics["t50_uniform"], res.Metrics["t50_weighted"]
		if u <= 0 || w <= 0 {
			t.Errorf("t50s = %v / %v", u, w)
		}
	})
	t.Run("patch", func(t *testing.T) {
		res := runFig(t, "abl-patch", opt)
		if res.Metrics["final_patch_all"] >= 0.05 {
			t.Errorf("patch-all should extinguish: final %v", res.Metrics["final_patch_all"])
		}
		if res.Metrics["final_patch_susceptible_only"] <= 0.1 {
			t.Errorf("susceptible-only should stay endemic: final %v",
				res.Metrics["final_patch_susceptible_only"])
		}
	})
	t.Run("probe", func(t *testing.T) {
		res := runFig(t, "abl-probe", opt)
		if !(res.Metrics["t50_probe"] > res.Metrics["t50_direct"]) {
			t.Errorf("probe-first %v should be slower than direct %v",
				res.Metrics["t50_probe"], res.Metrics["t50_direct"])
		}
	})
	t.Run("topology", func(t *testing.T) {
		res := runFig(t, "abl-topology", opt)
		for _, k := range []string{"slowdown_ba", "slowdown_twolevel", "slowdown_hier"} {
			if v := res.Metrics[k]; !(v > 1) {
				t.Errorf("%s = %v, want > 1", k, v)
			}
		}
	})
	t.Run("hybrid", func(t *testing.T) {
		res := runFig(t, "abl-hybrid", opt)
		if res.Metrics["worm_hybrid"] != res.Metrics["worm_long"] {
			t.Errorf("hybrid worm clamp %v should equal long %v",
				res.Metrics["worm_hybrid"], res.Metrics["worm_long"])
		}
		if !(res.Metrics["stall_hybrid_ticks"] < res.Metrics["stall_long_ticks"]) {
			t.Error("hybrid should reduce the legitimate stall")
		}
	})
}

func TestFig1aShape(t *testing.T) {
	res := runFig(t, "fig1a", quickOpts())
	// Hub RL must reach 60% substantially later than 30% leaf RL.
	ratio := res.Metrics["hub_over_leaf30"]
	if !(ratio > 2 && ratio < 6) {
		t.Errorf("hub/leaf30 ratio = %v, want ~3", ratio)
	}
	// Ordering: noRL fastest.
	if !(res.Metrics["t60_noRL"] < res.Metrics["t60_leaf30"]) {
		t.Error("no-RL should be fastest")
	}
}

func TestFig1bShape(t *testing.T) {
	res := runFig(t, "fig1b", Options{Runs: 5})
	t10 := res.Metrics["t60_10% leaf nodes RL"]
	t0 := res.Metrics["t60_No RL"]
	t30 := res.Metrics["t60_30% leaf nodes RL"]
	thub := res.Metrics["t60_Hub node RL"]
	if t10 > 1.4*t0 {
		t.Errorf("10%% leaf RL should be negligible: %v vs %v", t10, t0)
	}
	if !(t30 > t0 && thub > 1.8*t30) {
		t.Errorf("ordering wrong: t0=%v t30=%v thub=%v", t0, t30, thub)
	}
}

func TestFig2Shape(t *testing.T) {
	res := runFig(t, "fig2", quickOpts())
	// Linear slowdown: q=80% is ~5x; q=100% is enormous.
	if s := res.Metrics["slowdown_q80"]; s < 3 || s > 8 {
		t.Errorf("slowdown at 80%% = %v, want ~5", s)
	}
	if s := res.Metrics["slowdown_q100"]; s < 20 {
		t.Errorf("slowdown at 100%% = %v, want >> 20", s)
	}
}

func TestFig3Shape(t *testing.T) {
	a := runFig(t, "fig3a", quickOpts())
	if !(a.Metrics["t50_subnets_RL"] > 5*a.Metrics["t50_subnets_noRL"]) {
		t.Errorf("edge RL should slow cross-subnet spread: %v vs %v",
			a.Metrics["t50_subnets_RL"], a.Metrics["t50_subnets_noRL"])
	}
	b := runFig(t, "fig3b", quickOpts())
	if !(b.Metrics["t50_within_random"] > 3*b.Metrics["t50_within_localpref"]) {
		t.Errorf("within-subnet: local-pref should be much faster: %v vs %v",
			b.Metrics["t50_within_localpref"], b.Metrics["t50_within_random"])
	}
}

func TestFig4Shape(t *testing.T) {
	res := runFig(t, "fig4", Options{Runs: 3})
	host := res.Metrics["host5_over_noRL"]
	edge := res.Metrics["edge_over_noRL"]
	bb := res.Metrics["backbone_over_noRL"]
	if host > 1.3 {
		t.Errorf("5%% host RL should be negligible: %v", host)
	}
	if !(edge > 1.05 && edge < 2.5) {
		t.Errorf("edge RL should be a slight improvement: %v", edge)
	}
	if bb < 2.5 {
		t.Errorf("backbone RL should dominate (~5x): %v", bb)
	}
	if !(bb > edge && edge >= host*0.95) {
		t.Errorf("ordering wrong: host=%v edge=%v backbone=%v", host, edge, bb)
	}
}

func TestFig5Shape(t *testing.T) {
	res := runFig(t, "fig5", Options{Runs: 3})
	random := res.Metrics["random_slowdown"]
	local := res.Metrics["localpref_slowdown"]
	if random < 1.1 {
		t.Errorf("edge RL should slow random worms: %v", random)
	}
	if local > random {
		t.Errorf("edge RL should help less against local-pref: local=%v random=%v", local, random)
	}
}

func TestFig6Shape(t *testing.T) {
	res := runFig(t, "fig6", Options{Runs: 3})
	h30 := res.Metrics["host30_over_noRL"]
	bb := res.Metrics["backbone_over_noRL"]
	if h30 > 1.6 {
		t.Errorf("30%% host RL should be near-negligible: %v", h30)
	}
	if bb < 2 {
		t.Errorf("backbone RL should be substantially better: %v", bb)
	}
}

func TestFig7Shape(t *testing.T) {
	a := runFig(t, "fig7a", quickOpts())
	e20 := a.Metrics["ever_start20"]
	e50 := a.Metrics["ever_start50"]
	e80 := a.Metrics["ever_start80"]
	if !(e20 < e50 && e50 < e80 && e80 <= 1) {
		t.Errorf("ever-infected should grow with delay: %v %v %v", e20, e50, e80)
	}
	if e20 < 0.5 || e20 > 0.95 {
		t.Errorf("20%%-start total = %v, paper ~0.80", e20)
	}
	b := runFig(t, "fig7b", quickOpts())
	if !(b.Metrics["ever_d6"] < b.Metrics["ever_d8"] &&
		b.Metrics["ever_d8"] < b.Metrics["ever_d10"]) {
		t.Error("fig7b ever-infected should grow with delay")
	}
	// RL + the same wall-clock delay beats the no-RL totals of fig7a.
	if !(b.Metrics["ever_d6"] < e20) {
		t.Errorf("rate limiting should reduce total infected: %v vs %v",
			b.Metrics["ever_d6"], e20)
	}
}

func TestFig8Shape(t *testing.T) {
	a := runFig(t, "fig8a", Options{Runs: 3})
	e20 := a.Metrics["ever_Immunization at 20%"]
	e50 := a.Metrics["ever_Immunization at 50%"]
	e80 := a.Metrics["ever_Immunization at 80%"]
	none := a.Metrics["ever_No immunization"]
	if !(e20 < e50 && e50 < e80 && e80 <= none) {
		t.Errorf("ordering wrong: %v %v %v none=%v", e20, e50, e80, none)
	}
	if none < 0.98 {
		t.Errorf("no immunization should infect ~everyone: %v", none)
	}
	b := runFig(t, "fig8b", Options{Runs: 3})
	// Backbone RL lowers the 20%-tick total below fig8a's 20% total.
	if !(b.Metrics["ever_Immunization at 20%-tick"] < e20) {
		t.Errorf("RL should lower total infected: %v vs %v",
			b.Metrics["ever_Immunization at 20%-tick"], e20)
	}
}

func TestFig9Shape(t *testing.T) {
	a := runFig(t, "fig9a", quickOpts())
	// Refinements reduce the normal clients' 99.9% thresholds.
	if !(a.Metrics["p999_nonDNS"] <= a.Metrics["p999_noPrior"] &&
		a.Metrics["p999_noPrior"] <= a.Metrics["p999_all"]) {
		t.Errorf("refinements should be ordered: %v", a.Metrics)
	}
	b := runFig(t, "fig9b", quickOpts())
	if b.Metrics["p999_all"] < 20*a.Metrics["p999_all"] {
		t.Errorf("infected hosts should dwarf normal: %v vs %v",
			b.Metrics["p999_all"], a.Metrics["p999_all"])
	}
	// Worm traffic spikes all three metrics (lines are tight).
	if b.Metrics["p999_nonDNS"] < 0.9*b.Metrics["p999_all"] {
		t.Errorf("worm refinements should be tight: %v vs %v",
			b.Metrics["p999_nonDNS"], b.Metrics["p999_all"])
	}
	if !b.Figure.LogX {
		t.Error("fig9 should use a log x axis")
	}
}

func TestFig10Shape(t *testing.T) {
	res := runFig(t, "fig10", quickOpts())
	noRL := res.Metrics["t50_noRL"]
	host := res.Metrics["t50_host"]
	ip := res.Metrics["t50_ip"]
	dns := res.Metrics["t50_dns"]
	if !(noRL < host && host < ip && ip < dns) {
		t.Errorf("ordering wrong: noRL=%v host=%v ip=%v dns=%v", noRL, host, ip, dns)
	}
	if !res.Figure.LogX {
		t.Error("fig10 should use a log x axis")
	}
}

func TestTableRates(t *testing.T) {
	res := runFig(t, "tbl-rates", quickOpts())
	m := res.Metrics
	// Refinement ordering for both classes.
	if !(m["normal_nonDNS"] <= m["normal_noPrior"] && m["normal_noPrior"] <= m["normal_all"]) {
		t.Errorf("normal refinement ordering: %v", m)
	}
	if !(m["p2p_all"] > m["normal_all"]) {
		t.Errorf("p2p should need higher limits: %v vs %v", m["p2p_all"], m["normal_all"])
	}
	// Per-host limits are small.
	if m["perhost_all"] > 6 || m["perhost_nonDNS"] > 3 {
		t.Errorf("per-host limits too high: %v / %v", m["perhost_all"], m["perhost_nonDNS"])
	}
	// Longer windows admit sublinear growth of the limit.
	w1, w5, w60 := m["window1s_nonDNS"], m["window5s_nonDNS"], m["window60s_nonDNS"]
	if !(w1 <= w5 && w5 <= w60) {
		t.Errorf("window limits should grow: %v %v %v", w1, w5, w60)
	}
	if w60 >= 60*w1 {
		t.Errorf("burstiness should make growth sublinear: %v vs %v", w60, 60*w1)
	}
}

func TestTableClaims(t *testing.T) {
	res := runFig(t, "tbl-claims", quickOpts())
	m := res.Metrics
	if m["peak_welchia_per_min"] < 4*m["peak_blaster_per_min"] {
		t.Errorf("welchia peak %v should dwarf blaster %v",
			m["peak_welchia_per_min"], m["peak_blaster_per_min"])
	}
	// Classification recovers the chatty classes almost exactly; normal
	// clients browse so rarely that many are silent in a short trace, so
	// only an upper bound holds there.
	for _, class := range []string{"server", "p2p", "infected"} {
		got := m["classified_"+class]
		want := m["truth_"+class]
		if math.Abs(got-want) > 0.25*want+2 {
			t.Errorf("class %s: classified %v vs truth %v", class, got, want)
		}
	}
	if got, want := m["classified_normal"], m["truth_normal"]; got > want || got == 0 {
		t.Errorf("classified normal = %v, want in (0, %v]", got, want)
	}
}

func TestFiguresRenderable(t *testing.T) {
	// Every analytic figure must render to ASCII and .dat without error.
	for _, id := range []string{"fig1a", "fig2", "fig3a", "fig3b", "fig7a", "fig7b", "fig10"} {
		res := runFig(t, id, quickOpts())
		if _, err := res.Figure.RenderASCII(72, 16); err != nil {
			t.Errorf("%s: render: %v", id, err)
		}
		var b strings.Builder
		if err := res.Figure.WriteDat(&b); err != nil {
			t.Errorf("%s: dat: %v", id, err)
		}
		if b.Len() == 0 {
			t.Errorf("%s: empty dat", id)
		}
	}
}
