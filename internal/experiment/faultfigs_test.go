package experiment

import "testing"

func TestFaultDetectorShape(t *testing.T) {
	res := runFig(t, "fault-detector", Options{Runs: 2})
	m := res.Metrics
	if !(m["ever_perfect"] < m["ever_undefended"]) {
		t.Errorf("perfect detector should contain the worm: defended %v vs undefended %v",
			m["ever_perfect"], m["ever_undefended"])
	}
	if !(m["ever_miss95"] > m["ever_perfect"]) {
		t.Errorf("a 95%%-miss detector should erode containment: %v vs perfect %v",
			m["ever_miss95"], m["ever_perfect"])
	}
	if m["ever_miss95"] > m["ever_undefended"]+0.02 {
		t.Errorf("missed detections cannot do worse than no defense: %v vs %v",
			m["ever_miss95"], m["ever_undefended"])
	}
	if m["ever_falsealarm"] > m["ever_perfect"]+0.02 {
		t.Errorf("false alarms should not hurt containment: %v vs perfect %v",
			m["ever_falsealarm"], m["ever_perfect"])
	}
	for _, s := range res.Figure.Series {
		if len(s.X) != 6 || s.X[0] != 0 || s.X[len(s.X)-1] != 0.95 {
			t.Errorf("series %q grid wrong: %v", s.Label, s.X)
		}
	}
}
