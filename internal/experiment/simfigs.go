package experiment

import (
	"context"
	"fmt"

	"repro/internal/plot"
	"repro/internal/routing"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/worm"
)

// simSeries converts a per-tick fraction series to a plot series
// (tick i is time i+1).
func simSeries(label string, ys []float64) plot.Series {
	xs := make([]float64, len(ys))
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return plot.Series{Label: label, X: xs, Y: ys}
}

// Fig1b regenerates Figure 1(b): the simulated 200-node star. Leaf
// filters cut a filtered leaf's scan rate to β2 = 0.01 (Williamson-style
// host throttling); hub rate limiting caps the hub's forwarding at 2
// packets/tick (the paper's hub rate 0.01 × N).
func Fig1b(ctx context.Context, opt Options) (*Result, error) {
	n := 200
	ticks := 150
	if opt.Quick {
		ticks = 60
	}
	star, err := topology.Star(n)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig1b: %w", err)
	}
	base := sim.Config{
		Graph: star, Beta: simBeta, Strategy: worm.NewRandomFactory(),
		InitialInfected: 1, Ticks: ticks, Seed: opt.seed(),
	}
	leafOverride := func(frac float64) (map[int]float64, error) {
		hosts, err := sim.DeployHostFraction(star, nil, frac, opt.seed())
		if err != nil {
			return nil, err
		}
		o := make(map[int]float64, len(hosts))
		for _, h := range hosts {
			if h != topology.Hub {
				o[h] = hostFilteredRate
			}
		}
		return o, nil
	}
	o10, err := leafOverride(0.1)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig1b: %w", err)
	}
	o30, err := leafOverride(0.3)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig1b: %w", err)
	}

	cases := []struct {
		label string
		mod   func(*sim.Config)
	}{
		{"No RL", func(c *sim.Config) {}},
		{"10% leaf nodes RL", func(c *sim.Config) { c.ScanRateOverride = o10 }},
		{"30% leaf nodes RL", func(c *sim.Config) { c.ScanRateOverride = o30 }},
		{"Hub node RL", func(c *sim.Config) { c.NodeCaps = map[int]int{topology.Hub: 2} }},
	}
	fig := plot.Figure{
		Title:  "Fig 1(b): simulated rate limiting on a 200-node star (avg of runs)",
		XLabel: "time (ticks)",
		YLabel: "fraction infected",
	}
	metrics := make(map[string]float64)
	var t60leaf30 float64
	for _, cse := range cases {
		cfg := base
		cse.mod(&cfg)
		res, err := opt.multiRun(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig1b %q: %w", cse.label, err)
		}
		fig.Series = append(fig.Series, simSeries(cse.label, res.Infected))
		t60 := res.TimeToLevel(0.6)
		metrics["t60_"+cse.label] = t60
		if cse.label == "30% leaf nodes RL" {
			t60leaf30 = t60
		}
		if cse.label == "Hub node RL" {
			metrics["hub_over_leaf30"] = t60 / t60leaf30
		}
	}
	return &Result{
		ID:      "fig1b",
		Paper:   "Simulated star: 10% leaf RL negligible, 30% slight, hub RL ~3x slower to 60%",
		Figure:  fig,
		Metrics: metrics,
	}, nil
}

// Fig4 regenerates Figure 4: random-propagation worm on the 1000-node
// power-law graph under no RL / 5% host RL / edge-router RL / backbone
// RL. Congestion parameters (10 scans per tick against 0.4-packet/tick
// limited links with 50-packet DropTail buffers) are calibrated so the
// backbone deployment reproduces the paper's ~5x time-to-50% gap; see
// EXPERIMENTS.md.
func Fig4(ctx context.Context, opt Options) (*Result, error) {
	g, roles, _, err := powerLawTopology(opt)
	if err != nil {
		return nil, err
	}
	ticks := 150
	if opt.Quick {
		ticks = 100
	}
	base := sim.Config{
		Graph: g, Roles: roles, Beta: simBeta,
		Strategy:        worm.NewRandomFactory(),
		InitialInfected: 5, Ticks: ticks, Seed: opt.seed(),
		ScansPerTick: congestedScans, MaxQueue: dropTailQueue, BaseRate: limitedLinkRate,
	}
	hosts5, err := sim.DeployHostFraction(g, roles, 0.05, opt.seed())
	if err != nil {
		return nil, fmt.Errorf("experiment: fig4: %w", err)
	}
	cases := []struct {
		label string
		mod   func(*sim.Config)
	}{
		{"No RL", func(c *sim.Config) {}},
		{"5% end host RL", func(c *sim.Config) { c.ScanRateOverride = overrideFor(hosts5) }},
		{"Edge router RL", func(c *sim.Config) { c.LimitedNodes = sim.DeployEdgeRouters(roles) }},
		{"Backbone RL", func(c *sim.Config) { c.LimitedNodes = sim.DeployBackbone(roles) }},
	}
	fig := plot.Figure{
		Title:  "Fig 4: simulated rate limiting on a 1000-node power-law graph",
		XLabel: "time (ticks)",
		YLabel: "fraction infected",
	}
	metrics := make(map[string]float64)
	for _, cse := range cases {
		cfg := base
		cse.mod(&cfg)
		res, err := opt.multiRun(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig4 %q: %w", cse.label, err)
		}
		fig.Series = append(fig.Series, simSeries(cse.label, res.Infected))
		metrics["t50_"+cse.label] = res.TimeToLevel(0.5)
	}
	metrics["backbone_over_noRL"] = metrics["t50_Backbone RL"] / metrics["t50_No RL"]
	metrics["edge_over_noRL"] = metrics["t50_Edge router RL"] / metrics["t50_No RL"]
	metrics["host5_over_noRL"] = metrics["t50_5% end host RL"] / metrics["t50_No RL"]
	// Tie the simulation to Equation 6: measure the backbone's actual
	// path coverage α on this topology.
	alpha, err := routing.Build(g).PathCoverage(sim.DeployBackbone(roles))
	if err != nil {
		return nil, fmt.Errorf("experiment: fig4: %w", err)
	}
	metrics["alpha_measured"] = alpha
	return &Result{
		ID:      "fig4",
		Paper:   "Power-law sim: 5% host RL negligible, edge slight, backbone ~5x slower to 50%",
		Figure:  fig,
		Metrics: metrics,
	}, nil
}

// Fig5 regenerates Figure 5: edge-router rate limiting against random
// vs local-preferential worms. This figure is about subnet structure,
// so it runs on the explicit enterprise topology (backbone mesh, edge
// routers, subnets) where "edge filter" unambiguously means the subnet
// uplink: a local-preferential worm (95% of scans inside the subnet)
// barely notices the filters, while a random scanner's traffic almost
// always crosses two of them.
func Fig5(ctx context.Context, opt Options) (*Result, error) {
	hier := topology.HierarchicalConfig{Backbones: 4, EdgesPer: 5, HostsPerSubnet: 48}
	if opt.Quick {
		hier.HostsPerSubnet = 16
	}
	g, roles, subnet, err := topology.Hierarchical(hier)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig5: %w", err)
	}
	lp, err := worm.NewLocalPreferentialFactory(0.95)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig5: %w", err)
	}
	uplinks := sim.DeployEdgeUplinks(g, roles, subnet)
	ticks := 200
	if opt.Quick {
		ticks = 120
	}
	base := sim.Config{
		Graph: g, Roles: roles, Subnet: subnet, Beta: simBeta,
		InitialInfected: 10, Ticks: ticks, Seed: opt.seed(),
		ScansPerTick: congestedScans, MaxQueue: dropTailQueue, BaseRate: 0.2,
	}
	cases := []struct {
		label    string
		strategy worm.Factory
		limited  bool
	}{
		{"No RL random propagation", worm.NewRandomFactory(), false},
		{"Edge router RL for random propagation", worm.NewRandomFactory(), true},
		{"No RL local preferential", lp, false},
		{"Edge router RL for local preferential", lp, true},
	}
	fig := plot.Figure{
		Title:  "Fig 5: edge-router RL vs worm targeting strategy (simulation)",
		XLabel: "time (ticks)",
		YLabel: "fraction infected",
	}
	metrics := make(map[string]float64)
	for _, cse := range cases {
		cfg := base
		cfg.Strategy = cse.strategy
		if cse.limited {
			cfg.LimitedLinks = uplinks
		}
		res, err := opt.multiRun(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig5 %q: %w", cse.label, err)
		}
		fig.Series = append(fig.Series, simSeries(cse.label, res.Infected))
		metrics["t50_"+cse.label] = res.TimeToLevel(0.5)
	}
	metrics["random_slowdown"] =
		metrics["t50_Edge router RL for random propagation"] / metrics["t50_No RL random propagation"]
	metrics["localpref_slowdown"] =
		metrics["t50_Edge router RL for local preferential"] / metrics["t50_No RL local preferential"]
	return &Result{
		ID:      "fig5",
		Paper:   "Edge RL slows random worms (~50%) but gives little benefit vs local-preferential worms",
		Figure:  fig,
		Metrics: metrics,
	}, nil
}

// Fig6 regenerates Figure 6: a local-preferential worm under end-host
// (5%/30%) vs backbone rate limiting.
func Fig6(ctx context.Context, opt Options) (*Result, error) {
	g, roles, subnet, err := powerLawTopology(opt)
	if err != nil {
		return nil, err
	}
	lp, err := worm.NewLocalPreferentialFactory(0.8)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig6: %w", err)
	}
	ticks := 150
	if opt.Quick {
		ticks = 100
	}
	base := sim.Config{
		Graph: g, Roles: roles, Subnet: subnet, Beta: simBeta, Strategy: lp,
		InitialInfected: 5, Ticks: ticks, Seed: opt.seed(),
		ScansPerTick: congestedScans, MaxQueue: dropTailQueue, BaseRate: limitedLinkRate,
	}
	hosts5, err := sim.DeployHostFraction(g, roles, 0.05, opt.seed())
	if err != nil {
		return nil, fmt.Errorf("experiment: fig6: %w", err)
	}
	hosts30, err := sim.DeployHostFraction(g, roles, 0.30, opt.seed())
	if err != nil {
		return nil, fmt.Errorf("experiment: fig6: %w", err)
	}
	cases := []struct {
		label string
		mod   func(*sim.Config)
	}{
		{"No RL", func(c *sim.Config) {}},
		{"5% end host RL", func(c *sim.Config) { c.ScanRateOverride = overrideFor(hosts5) }},
		{"30% end host RL", func(c *sim.Config) { c.ScanRateOverride = overrideFor(hosts30) }},
		{"Backbone RL", func(c *sim.Config) { c.LimitedNodes = sim.DeployBackbone(roles) }},
	}
	fig := plot.Figure{
		Title:  "Fig 6: local-preferential worm: host vs backbone RL (simulation)",
		XLabel: "time (ticks)",
		YLabel: "fraction infected",
	}
	metrics := make(map[string]float64)
	for _, cse := range cases {
		cfg := base
		cse.mod(&cfg)
		res, err := opt.multiRun(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig6 %q: %w", cse.label, err)
		}
		fig.Series = append(fig.Series, simSeries(cse.label, res.Infected))
		metrics["t50_"+cse.label] = res.TimeToLevel(0.5)
	}
	metrics["host30_over_noRL"] = metrics["t50_30% end host RL"] / metrics["t50_No RL"]
	metrics["backbone_over_noRL"] = metrics["t50_Backbone RL"] / metrics["t50_No RL"]
	return &Result{
		ID:      "fig6",
		Paper:   "Even 30% host RL is negligible for local-pref worms; backbone RL is substantially better",
		Figure:  fig,
		Metrics: metrics,
	}, nil
}

// Fig8a regenerates Figure 8(a): simulated delayed immunization
// (µ = 0.05/tick) triggered when the infection reaches 20/50/80%,
// reporting the total ever-infected population.
func Fig8a(ctx context.Context, opt Options) (*Result, error) {
	g, roles, _, err := powerLawTopology(opt)
	if err != nil {
		return nil, err
	}
	ticks := 150
	if opt.Quick {
		ticks = 100
	}
	base := sim.Config{
		Graph: g, Roles: roles, Beta: simBeta, Strategy: worm.NewRandomFactory(),
		InitialInfected: 5, Ticks: ticks, Seed: opt.seed(),
	}
	fig := plot.Figure{
		Title:  "Fig 8(a): simulated delayed immunization (total ever infected)",
		XLabel: "time (ticks)",
		YLabel: "fraction ever infected",
	}
	metrics := make(map[string]float64)
	cases := []struct {
		label string
		level float64
	}{
		{"No immunization", 0},
		{"Immunization at 20%", 0.2},
		{"Immunization at 50%", 0.5},
		{"Immunization at 80%", 0.8},
	}
	for _, cse := range cases {
		cfg := base
		if cse.level > 0 {
			cfg.Immunize = &sim.Immunization{StartTick: -1, StartLevel: cse.level, Mu: immunizeMu}
		}
		res, err := opt.multiRun(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig8a %q: %w", cse.label, err)
		}
		fig.Series = append(fig.Series, simSeries(cse.label, res.EverInfected))
		metrics[fmt.Sprintf("ever_%s", cse.label)] = res.FinalEverInfected()
	}
	return &Result{
		ID:      "fig8a",
		Paper:   "Total infected caps at ~80/90/98% for immunization starting at 20/50/80%",
		Figure:  fig,
		Metrics: metrics,
	}, nil
}

// Fig8b regenerates Figure 8(b): the same immunization delays combined
// with backbone rate limiting (node caps on the core), starting at the
// wall-clock ticks where the *unlimited* epidemic reached 20/50/80%
// (≈20/25/30 here), as the paper does with its ticks 6/8/10.
func Fig8b(ctx context.Context, opt Options) (*Result, error) {
	g, roles, _, err := powerLawTopology(opt)
	if err != nil {
		return nil, err
	}
	ticks := 200
	if opt.Quick {
		ticks = 120
	}
	// Find the unlimited epidemic's times to 20/50/80%.
	probe := sim.Config{
		Graph: g, Roles: roles, Beta: simBeta, Strategy: worm.NewRandomFactory(),
		InitialInfected: 5, Ticks: ticks, Seed: opt.seed(),
	}
	probeRes, err := opt.multiRun(ctx, probe)
	if err != nil {
		return nil, fmt.Errorf("experiment: fig8b probe: %w", err)
	}
	caps := backboneCaps(roles, 40)
	fig := plot.Figure{
		Title:  "Fig 8(b): simulated delayed immunization with backbone RL (total ever infected)",
		XLabel: "time (ticks)",
		YLabel: "fraction ever infected",
	}
	metrics := make(map[string]float64)
	cases := []struct {
		label string
		level float64
	}{
		{"No immunization", 0},
		{"Immunization at 20%-tick", 0.2},
		{"Immunization at 50%-tick", 0.5},
		{"Immunization at 80%-tick", 0.8},
	}
	for _, cse := range cases {
		cfg := probe
		cfg.NodeCaps = caps
		if cse.level > 0 {
			start := int(probeRes.TimeToLevel(cse.level))
			if start < 1 {
				start = 1
			}
			cfg.Immunize = &sim.Immunization{StartTick: start, Mu: immunizeMu}
			metrics[fmt.Sprintf("start_%s", cse.label)] = float64(start)
		}
		res, err := opt.multiRun(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig8b %q: %w", cse.label, err)
		}
		fig.Series = append(fig.Series, simSeries(cse.label, res.EverInfected))
		metrics[fmt.Sprintf("ever_%s", cse.label)] = res.FinalEverInfected()
	}
	return &Result{
		ID:      "fig8b",
		Paper:   "Backbone RL drops the 20%-start total infected by ~10% (80% -> 72% in the paper)",
		Figure:  fig,
		Metrics: metrics,
	}, nil
}
