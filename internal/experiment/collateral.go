package experiment

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/internal/plot"
	"repro/internal/ratelimit"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/worm"
)

// Collateral regenerates the collateral-damage contrast behind the
// paper's Section 7 argument: rate limits are only defensible if they
// contain the worm *without* strangling the normal, server, and P2P
// hosts sharing the limiters. The figure replays the calibrated
// synthetic traffic profile (trace.Gen's four host classes, with
// Blaster/Welchia scanners) through the engine's workload seam, so
// benign flows and worm scans compete for the same per-host limiter
// credits, and contrasts two limiter designs:
//
//   - "Host contact throttle": the working-set throttle of the host
//     defense deployments (Williamson-style, working set 4). As
//     deployed by the engine the delay queue is never drained, so
//     once the working set fills, every contact outside it is
//     blocked — maximal containment, and maximal collateral.
//   - "Edge probe window": a sliding distinct-destination window —
//     the probe counter an edge monitor keeps per host. Two
//     parameterizations: the paper's derived per-host limit (4 new
//     destinations per 5 s, the 99.9th percentile of measured normal
//     traffic), and a tight 1-per-5 s variant pushed toward the
//     throttle's containment for the matched comparison.
//
// Collateral damage is the fraction of benign connection attempts the
// limiter falsely throttles (benign_throttled / benign_contacts). The
// paper's Section 7 claim shows up as the derived-limit window
// slowing the epidemic several-fold while leaving most benign traffic
// untouched; the matched comparison shows the probe window buying its
// containment at a lower false-throttle rate than the working-set
// throttle.
func Collateral(ctx context.Context, opt Options) (*Result, error) {
	hier := topology.HierarchicalConfig{Backbones: 2, EdgesPer: 4, HostsPerSubnet: 144}
	gen := trace.DefaultGenConfig(opt.collateralTicks()*trace.Second, opt.seed())
	if opt.Quick {
		hier = topology.HierarchicalConfig{Backbones: 1, EdgesPer: 2, HostsPerSubnet: 72}
		gen.NormalClients, gen.Servers, gen.P2PClients, gen.Infected = 120, 4, 8, 12
	}
	g, roles, subnet, err := topology.Hierarchical(hier)
	if err != nil {
		return nil, fmt.Errorf("experiment: collateral: %w", err)
	}
	hostNodes := topology.NodesWithRole(roles, topology.RoleHost)
	if len(hostNodes) < gen.NumHosts() {
		return nil, fmt.Errorf("experiment: collateral: %d topology hosts for %d trace hosts",
			len(hostNodes), gen.NumHosts())
	}
	hostMap := make([]int32, gen.NumHosts())
	for i := range hostMap {
		hostMap[i] = int32(hostNodes[i])
	}
	base := sim.Config{
		Graph: g, Roles: roles, Subnet: subnet,
		Strategy: worm.NewRandomFactory(),
		Ticks:    int(opt.collateralTicks()), Seed: opt.seed(),
		MaxQueue: dropTailQueue,
		Replay: &sim.ReplayConfig{
			NewWorkload: func() (sim.Workload, error) {
				return trace.NewSyntheticReplayer(gen, trace.Second)
			},
			Hosts:     hostMap,
			WormHosts: gen.HostsOfClass(trace.ClassInfected),
		},
	}
	limited := hostNodes[:gen.NumHosts()]
	window := func(max int, span int64) func() ratelimit.ContactLimiter {
		return func() ratelimit.ContactLimiter {
			l, err := ratelimit.NewSlidingUniqueIPWindow(max, span)
			if err != nil {
				panic(err)
			}
			return l
		}
	}
	cases := []struct {
		label   string
		key     string
		limiter func() ratelimit.ContactLimiter
	}{
		{"No rate limiting", "none", nil},
		{"Host contact throttle (WS=4)", "host", func() ratelimit.ContactLimiter {
			l, err := ratelimit.NewWilliamsonThrottle(4, 1)
			if err != nil {
				panic(err)
			}
			return l
		}},
		{"Edge probe window (derived, 4/5s)", "edge", window(4, 5)},
		{"Edge probe window (tight, 1/5s)", "edge_tight", window(1, 5)},
	}
	fig := plot.Figure{
		Title:  "Collateral damage: trace-replay workload under contact rate limits",
		XLabel: "time (ticks = trace seconds)",
		YLabel: "fraction infected",
	}
	metrics := make(map[string]float64)
	for _, cse := range cases {
		cfg := base
		if cse.limiter != nil {
			cfg.HostLimiterNodes = limited
			cfg.HostLimiterFactory = cse.limiter
		}
		// Collectors carry the benign/worm throttle counters out through
		// sim.Result.Counters regardless of the harness Metrics sink.
		cfg.CollectorFactory = func(int) obs.Collector { return obs.NewTally() }
		res, err := opt.multiRun(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("experiment: collateral %q: %w", cse.label, err)
		}
		fig.Series = append(fig.Series, simSeries(cse.label, res.Infected))
		metrics["t50_"+cse.key] = res.TimeToLevel(0.5)
		metrics["final_"+cse.key] = res.Infected[len(res.Infected)-1]
		if bc := res.Counters["benign_contacts"]; bc > 0 {
			metrics["collateral_"+cse.key] =
				float64(res.Counters["benign_throttled"]) / float64(bc)
		}
	}
	return &Result{
		ID:      "collateral",
		Paper:   "Section 7: derived limits slow the worm while normal/server/P2P hosts stay below them",
		Figure:  fig,
		Metrics: metrics,
	}, nil
}

// collateralTicks is the replay horizon: one engine tick per trace
// second, long enough for the trace-rate epidemic to saturate under
// no defense.
func (o Options) collateralTicks() int64 {
	if o.Quick {
		return 180
	}
	return 600
}
